package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{3.5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 3.5 || s.Max != 3.5 || s.Median != 3.5 || s.Mean != 3.5 {
		t.Fatalf("unexpected single-value summary: %+v", s)
	}
	if s.StdDev != 0 {
		t.Fatalf("single-value stddev = %v, want 0", s.StdDev)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// 1..9: median 5, q1 3, q3 7, mean 5.
	var in []float64
	for i := 1; i <= 9; i++ {
		in = append(in, float64(i))
	}
	s, err := Summarize(in)
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 5 || s.Q1 != 3 || s.Q3 != 7 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.IQR() != 4 {
		t.Fatalf("IQR = %v, want 4", s.IQR())
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Summarize(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("input mutated: %v", in)
	}
}

func TestSummaryInvariantsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		in := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				in = append(in, v)
			}
		}
		if len(in) == 0 {
			return true
		}
		s, err := Summarize(in)
		if err != nil {
			return false
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median &&
			s.Median <= s.Q3 && s.Q3 <= s.Max &&
			s.Mean >= s.Min-1e-9 && s.Mean <= s.Max+1e-9 &&
			s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		in := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				in = append(in, v)
			}
		}
		if len(in) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(in, q)
			if err != nil {
				return false
			}
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileClamp(t *testing.T) {
	in := []float64{1, 2, 3}
	lo, _ := Quantile(in, -1)
	hi, _ := Quantile(in, 2)
	if lo != 1 || hi != 3 {
		t.Fatalf("clamped quantiles = %v, %v", lo, hi)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) should be 0")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.AddAll(2, 3)
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	s := a.Summary()
	if s.Mean != 2 {
		t.Fatalf("mean = %v, want 2", s.Mean)
	}
	vs := a.Values()
	vs[0] = 99
	if a.Summary().Mean != 2 {
		t.Fatal("Values() must return a copy")
	}
}

func TestAccumulatorZeroValue(t *testing.T) {
	var a Accumulator
	s := a.Summary()
	if s.N != 0 {
		t.Fatalf("empty accumulator summary N = %d", s.N)
	}
}

func TestHistogramBasic(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	h.Add(10) // boundary goes to last bin
	if h.Total() != 11 {
		t.Fatalf("Total = %d, want 11", h.Total())
	}
	under, over := h.Outliers()
	if under != 1 || over != 1 {
		t.Fatalf("outliers = %d, %d", under, over)
	}
	for i, c := range h.Counts {
		want := 1
		if i == 9 {
			want = 2
		}
		if c != want {
			t.Fatalf("bin %d count = %d, want %d", i, c, want)
		}
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Fatal("expected error for lo == hi")
	}
}

func TestPercentDiff(t *testing.T) {
	if got := PercentDiff(0.99, 0.68); math.Abs(got-31.0) > 1e-9 {
		t.Fatalf("PercentDiff = %v, want 31", got)
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(3, 2); got != 0.5 {
		t.Fatalf("RelativeChange(3,2) = %v", got)
	}
	if got := RelativeChange(1, 0); !math.IsInf(got, 1) {
		t.Fatalf("RelativeChange(1,0) = %v, want +Inf", got)
	}
	if got := RelativeChange(0, 0); got != 0 {
		t.Fatalf("RelativeChange(0,0) = %v, want 0", got)
	}
}

func TestQuantileSortedAgainstSort(t *testing.T) {
	in := []float64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	med, err := Quantile(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sorted := append([]float64(nil), in...)
	sort.Float64s(sorted)
	if med != sorted[4] {
		t.Fatalf("median = %v, want %v", med, sorted[4])
	}
}
