// Package stats provides the summary statistics used throughout the
// characterization harness: success-rate distributions across row groups,
// box-and-whiskers summaries matching the paper's plots, and simple
// histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a summary is requested for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds the box-and-whiskers statistics the paper plots: the box is
// bounded by the first and third quartiles, whiskers show min and max, and
// we additionally record mean and standard deviation for the "average
// success rate" lines.
type Summary struct {
	N      int
	Min    float64
	Q1     float64
	Median float64
	Q3     float64
	Max    float64
	Mean   float64
	StdDev float64
}

// Summarize computes a Summary over the sample. The input slice is not
// modified. It returns ErrEmpty for an empty sample.
func Summarize(sample []float64) (Summary, error) {
	if len(sample) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)

	var sum, sumSq float64
	for _, v := range sorted {
		sum += v
		sumSq += v * v
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0 // guard against FP rounding
	}

	return Summary{
		N:      len(sorted),
		Min:    sorted[0],
		Q1:     quantileSorted(sorted, 0.25),
		Median: quantileSorted(sorted, 0.5),
		Q3:     quantileSorted(sorted, 0.75),
		Max:    sorted[len(sorted)-1],
		Mean:   mean,
		StdDev: math.Sqrt(variance),
	}, nil
}

// MustSummarize is like Summarize but returns a zero Summary for an empty
// sample instead of an error. It is intended for experiment code paths
// where an empty sample indicates a configuration with zero sampled groups
// and a zero row is an acceptable report.
func MustSummarize(sample []float64) Summary {
	s, err := Summarize(sample)
	if err != nil {
		return Summary{}
	}
	return s
}

// IQR returns the inter-quartile range (box size).
func (s Summary) IQR() float64 { return s.Q3 - s.Q1 }

// String renders the summary in a compact single-line form used by the
// characterization CLI.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f mean=%.3f",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// quantileSorted computes the q-th quantile (0<=q<=1) of an ascending
// sorted sample using linear interpolation between closest ranks.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile computes the q-th quantile of an unsorted sample. It returns
// ErrEmpty for an empty sample and clamps q into [0, 1].
func Quantile(sample []float64, q float64) (float64, error) {
	if len(sample) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range sample {
		sum += v
	}
	return sum / float64(len(sample))
}

// Accumulator incrementally collects sample values; it is the building
// block experiments use to gather per-row-group success rates without
// retaining intermediate structures. The zero value is ready to use.
type Accumulator struct {
	values []float64
}

// Add appends one observation.
func (a *Accumulator) Add(v float64) { a.values = append(a.values, v) }

// AddAll appends many observations.
func (a *Accumulator) AddAll(vs ...float64) { a.values = append(a.values, vs...) }

// Len reports the number of collected observations.
func (a *Accumulator) Len() int { return len(a.values) }

// Values returns a copy of the collected observations.
func (a *Accumulator) Values() []float64 {
	out := make([]float64, len(a.values))
	copy(out, a.values)
	return out
}

// Summary summarizes the collected observations.
func (a *Accumulator) Summary() Summary { return MustSummarize(a.values) }

// Histogram is a fixed-width-bin histogram over [Lo, Hi].
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with the given bounds and bin count.
// It returns an error for invalid configurations rather than panicking.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins must be positive, got %d", bins)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: invalid bounds [%v, %v]", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation; out-of-range values are tallied separately.
func (h *Histogram) Add(v float64) {
	if v < h.Lo {
		h.under++
		return
	}
	if v >= h.Hi {
		if v == h.Hi {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.over++
		return
	}
	idx := int((v - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Outliers returns the number of observations below Lo and above Hi.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// PercentDiff returns the difference a-b expressed in percentage points
// when a and b are rates in [0,1], i.e. (a-b)*100.
func PercentDiff(a, b float64) float64 { return (a - b) * 100 }

// RelativeChange returns (a-b)/b, guarding against division by zero: when b
// is zero it returns +Inf for positive a, 0 for zero a, and -Inf otherwise.
func RelativeChange(a, b float64) float64 {
	if b == 0 {
		switch {
		case a > 0:
			return math.Inf(1)
		case a < 0:
			return math.Inf(-1)
		default:
			return 0
		}
	}
	return (a - b) / b
}
