package dram

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// Pattern identifies a data pattern used to fill DRAM rows in the
// characterization experiments (§3.1 "Data Patterns").
type Pattern uint8

// The tested data patterns. For the paired fixed patterns the row's parity
// (even/odd position among the filled rows) selects which byte of the pair
// fills the row, mirroring the paper's "each activated row either with ..."
// methodology. Random fills every row with a distinct uniformly random
// pattern derived from the experiment seed.
const (
	PatternRandom Pattern = iota
	Pattern00FF
	PatternAA55
	PatternCC33
	Pattern6699
	PatternAll0
	PatternAll1
	// PatternSplit is the adversarial margin-1 composition used by the
	// case-study throughput measurements (§8.1): every column's majority
	// is decided by a single vote, which is what computation workloads
	// (AND gates, carry chains) exercise. Operand rows alternate between
	// a column-checkerboard and its complement, so exactly ⌈X/2⌉ of any
	// odd X operands agree in every column, in alternating directions.
	PatternSplit
)

// MAJPatterns lists the five data patterns of the MAJX characterization
// (Fig. 7), in the paper's order.
var MAJPatterns = []Pattern{Pattern00FF, PatternAA55, PatternCC33, Pattern6699, PatternRandom}

// CopyPatterns lists the three data patterns of the Multi-RowCopy
// characterization (Fig. 11).
var CopyPatterns = []Pattern{PatternAll0, PatternAll1, PatternRandom}

var patternNames = map[Pattern]string{
	PatternRandom: "Random",
	Pattern00FF:   "0x00/0xFF",
	PatternAA55:   "0xAA/0x55",
	PatternCC33:   "0xCC/0x33",
	Pattern6699:   "0x66/0x99",
	PatternAll0:   "All 0s",
	PatternAll1:   "All 1s",
	PatternSplit:  "Split (margin-1)",
}

// String returns the paper's label for the pattern.
func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", uint8(p))
}

// bytePair returns the two alternating fill bytes of a fixed pattern.
func (p Pattern) bytePair() (byte, byte, bool) {
	switch p {
	case Pattern00FF:
		return 0x00, 0xFF, true
	case PatternAA55:
		return 0xAA, 0x55, true
	case PatternCC33:
		return 0xCC, 0x33, true
	case Pattern6699:
		return 0x66, 0x99, true
	case PatternAll0:
		return 0x00, 0x00, true
	case PatternAll1:
		return 0xFF, 0xFF, true
	default:
		return 0, 0, false
	}
}

// Bit returns the bit the pattern stores at (rowOrdinal, col), where
// rowOrdinal is the row's position among the rows being filled and seed
// feeds the per-row choices. For paired fixed patterns, each filled row is
// given one byte of the pair ("we fill each activated row either with all
// 0x00 or all 0xFF", §3.1), chosen by a seeded per-row coin; Random fills
// each row with a distinct uniformly random pattern.
func (p Pattern) Bit(seed uint64, rowOrdinal, col int) bool {
	if p == PatternSplit {
		return (rowOrdinal%2 == 0) != (col%2 == 1)
	}
	if b0, b1, ok := p.bytePair(); ok {
		b := b0
		if b0 != b1 && xrand.Hash(seed, uint64(rowOrdinal), 0x77c)&1 == 1 {
			b = b1
		}
		return (b>>(7-uint(col%8)))&1 == 1
	}
	// Random: a distinct uniform pattern per row.
	return xrand.Hash(seed, uint64(rowOrdinal), uint64(col), 0x9a7)&1 == 1
}

// Random-fill registry: PatternRandom hashes three mixes per column, and
// the characterization harnesses re-fill the identical rows for every
// sweep cell (the fill is a pure function of (seed, rowOrdinal, cols) —
// the group data seed never depends on timings or environment). Sharing
// the packed words process-wide turns the per-cell re-fill into a
// few-word copy, mirroring the sampling and static-table registries.
// Cached word slices are read-only.
type fillRegKey struct {
	seed uint64
	row  int
	cols int
}

// fillRegMax bounds the registry; beyond it the map resets (fills are
// recomputable, eviction only costs re-derivation).
const fillRegMax = 1 << 15

var fillReg = struct {
	sync.Mutex
	m map[fillRegKey][]uint64
}{m: make(map[fillRegKey][]uint64)}

// FillRowVec materializes the pattern for one row as a packed vector.
// Fixed byte-pair patterns and the split checkerboard are periodic, so
// they fill whole 64-column words at a time; only Random hashes per
// column (each of its bits is an independent draw). Bit-for-bit equal to
// Bit over every column.
func (p Pattern) FillRowVec(seed uint64, rowOrdinal, cols int) bitvec.Vec {
	out := bitvec.New(cols)
	p.FillRowInto(out, seed, rowOrdinal)
	return out
}

// FillRowInto is the allocation-free form of FillRowVec: it fills a
// caller-owned vector (typically from a shard arena) with the same bits.
func (p Pattern) FillRowInto(out bitvec.Vec, seed uint64, rowOrdinal int) {
	if p == PatternSplit {
		// Column checkerboard: even rows store 1s on even columns, odd
		// rows the complement.
		if rowOrdinal%2 == 0 {
			out.FillWordPattern(0x5555555555555555)
		} else {
			out.FillWordPattern(0xaaaaaaaaaaaaaaaa)
		}
		return
	}
	if b0, b1, ok := p.bytePair(); ok {
		b := b0
		if b0 != b1 && xrand.Hash(seed, uint64(rowOrdinal), 0x77c)&1 == 1 {
			b = b1
		}
		out.FillByteMSB(b)
		return
	}
	// Random: a distinct uniform pattern per row, shared via fillReg.
	key := fillRegKey{seed: seed, row: rowOrdinal, cols: out.Len()}
	fillReg.Lock()
	cached, ok := fillReg.m[key]
	fillReg.Unlock()
	if ok {
		copy(out.Words(), cached)
		return
	}
	rowChain := xrand.Begin().Mix(seed).Mix(uint64(rowOrdinal))
	out.FillPattern(func(c int) bool {
		return rowChain.Mix(uint64(c)).Mix(0x9a7).Sum()&1 == 1
	})
	words := append([]uint64(nil), out.Words()...)
	fillReg.Lock()
	if len(fillReg.m) >= fillRegMax {
		fillReg.m = make(map[fillRegKey][]uint64)
	}
	fillReg.m[key] = words
	fillReg.Unlock()
}

// FillRow materializes the pattern for one row across cols columns.
func (p Pattern) FillRow(seed uint64, rowOrdinal, cols int) []bool {
	return p.FillRowVec(seed, rowOrdinal, cols).Bools()
}

// CouplingFactor returns the relative bitline-to-bitline coupling noise the
// pattern induces: 1 for fully random data (neighbouring bitlines swing
// independently), small values for structured patterns whose neighbour
// transitions are deterministic and largely common-mode. This is the
// mechanism behind Obs. 9 (random data significantly lowers MAJX success)
// and Obs. 16 (data pattern barely matters for Multi-RowCopy, whose
// margins dwarf the coupling noise).
func (p Pattern) CouplingFactor() float64 {
	switch p {
	case PatternRandom:
		return 1.0
	case PatternAA55:
		return 0.15
	case PatternCC33:
		return 0.12
	case Pattern6699:
		return 0.13
	case Pattern00FF:
		return 0.05
	case PatternAll0, PatternAll1:
		return 0.02
	case PatternSplit:
		return 0.10 // checkerboard-like deterministic neighbour transitions
	default:
		return 1.0
	}
}

// Invert returns the row bits flipped; used by experiments that need a
// pattern guaranteed to differ from the initialized one (§3.2 writes "a
// different data pattern from the predefined data pattern").
func Invert(bits []bool) []bool {
	out := make([]bool, len(bits))
	for i, b := range bits {
		out[i] = !b
	}
	return out
}
