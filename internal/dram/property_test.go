package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/analog"
	"repro/internal/timing"
)

// propertySubarray returns a small shared module/subarray for the quick
// checks.
func propertySubarray(t *testing.T) *Subarray {
	t.Helper()
	spec := NewSpec("property", ProfileH, 0xfade)
	spec.Columns = 64
	m, err := NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

// TestPropertyAPAInvariants: for any row pair and any in-envelope timing,
// the asserted set is a subset of the decoder's activation set, both rows
// are in the activation set, and the mode matches the timing regime.
func TestPropertyAPAInvariants(t *testing.T) {
	sa := propertySubarray(t)
	jedec := timing.DDR4()
	f := func(a, b uint16, t1Sel, t2Sel uint8, trial uint8) bool {
		rf := int(a) % sa.Rows()
		rs := int(b) % sa.Rows()
		t1 := []float64{1.5, 3, 18, 36}[t1Sel%4]
		t2 := []float64{1.5, 3, 4.5, 6, 13.5}[t2Sel%5]
		res, err := sa.APA(rf, rs, APAOptions{
			Timings: timing.APATimings{T1: t1, T2: t2},
			Env:     analog.NominalEnv(),
			Trial:   int(trial),
		})
		sa.Precharge()
		if err != nil {
			return false
		}
		// Mode must follow the timing regime.
		switch {
		case t2 >= jedec.TRP:
			if res.Mode != ModeSingle {
				return false
			}
		case t1 >= 15:
			if res.Mode != ModeCopy {
				return false
			}
		default:
			if res.Mode != ModeShare {
				return false
			}
		}
		// Asserted ⊆ Activated, and RF always asserts in violated modes.
		act := make(map[int]bool, len(res.Activated))
		for _, r := range res.Activated {
			act[r] = true
		}
		for _, r := range res.Asserted {
			if !act[r] {
				return false
			}
		}
		if res.Mode != ModeSingle {
			foundRF := false
			for _, r := range res.Asserted {
				if r == rf {
					foundRF = true
				}
			}
			if !foundRF {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCopyConservation: after a copy-mode APA, every asserted
// cell stores either the source bit or (rare weak cells) its previous
// value — never anything else, and charge levels stay in {0, 1}.
func TestPropertyCopyConservation(t *testing.T) {
	sa := propertySubarray(t)
	f := func(a, b uint16, seed uint64) bool {
		rf := int(a) % sa.Rows()
		rs := int(b) % sa.Rows()
		if rf == rs {
			return true
		}
		src := PatternRandom.FillRow(seed, 0, sa.Cols())
		prev := PatternRandom.FillRow(seed, 1, sa.Cols())
		if sa.WriteRow(rf, src) != nil {
			return false
		}
		rows, err := sa.mod.Decoder().ActivatedRows(rf, rs)
		if err != nil {
			return false
		}
		for _, r := range rows {
			if r != rf {
				if sa.WriteRow(r, prev) != nil {
					return false
				}
			}
		}
		res, err := sa.APA(rf, rs, APAOptions{
			Timings: timing.BestCopy(),
			Env:     analog.NominalEnv(),
		})
		sa.Precharge()
		if err != nil || res.Mode != ModeCopy {
			return false
		}
		for _, r := range res.Asserted {
			got, err := sa.ReadRow(r)
			if err != nil {
				return false
			}
			for c := range got {
				if got[c] != src[c] && got[c] != prev[c] {
					return false
				}
				lvl, err := sa.RawLevel(r, c)
				if err != nil || (lvl != 0 && lvl != 1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyShareWriteBackUniform: after a share-mode APA, all asserted
// rows store identical data (the sense amplifiers drive one value per
// bitline into every open cell).
func TestPropertyShareWriteBackUniform(t *testing.T) {
	sa := propertySubarray(t)
	f := func(a, b uint16, seed uint64, trial uint8) bool {
		rf := int(a) % sa.Rows()
		rs := int(b) % sa.Rows()
		rows, err := sa.mod.Decoder().ActivatedRows(rf, rs)
		if err != nil {
			return false
		}
		for i, r := range rows {
			if sa.WriteRow(r, PatternRandom.FillRow(seed, i, sa.Cols())) != nil {
				return false
			}
		}
		res, err := sa.APA(rf, rs, APAOptions{
			Timings: timing.BestMAJ(),
			Env:     analog.NominalEnv(),
			Trial:   int(trial),
		})
		sa.Precharge()
		if err != nil || res.Mode != ModeShare {
			return false
		}
		var ref []bool
		for _, r := range res.Asserted {
			got, err := sa.ReadRow(r)
			if err != nil {
				return false
			}
			if ref == nil {
				ref = got
				continue
			}
			for c := range got {
				if got[c] != ref[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySuccessRatesBounded: sweep success rates always land in
// [0, 1] and are reproducible.
func TestPropertySuccessRatesBounded(t *testing.T) {
	spec := NewSpec("bounded", ProfileM, 0xcafe)
	spec.Columns = 64
	m, err := NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed uint64, t1Sel, t2Sel uint8) bool {
		t1 := []float64{1.5, 3, 36}[t1Sel%3]
		t2 := []float64{1.5, 3, 6}[t2Sel%3]
		res, err := sa.APA(int(seed%uint64(sa.Rows())), int(seed>>8%uint64(sa.Rows())), APAOptions{
			Timings: timing.APATimings{T1: t1, T2: t2},
			Env:     analog.NominalEnv(),
		})
		sa.Precharge()
		if err != nil {
			return false
		}
		return len(res.Asserted) >= 1 && len(res.Asserted) <= 32
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
