package dram

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analog"
	"repro/internal/timing"
)

func testModule(t *testing.T, profile Profile) *Module {
	t.Helper()
	spec := NewSpec("test-module", profile, 0x1234)
	spec.Columns = 256 // keep tests fast
	m, err := NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func testSubarray(t *testing.T, profile Profile) *Subarray {
	t.Helper()
	m := testModule(t, profile)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return sa
}

func apaOpts(t1, t2 float64, trial int) APAOptions {
	return APAOptions{
		Timings: timing.APATimings{T1: t1, T2: t2},
		Env:     analog.NominalEnv(),
		Trial:   trial,
	}
}

func TestProfilesValid(t *testing.T) {
	for _, p := range []Profile{ProfileH, ProfileH640, ProfileM, ProfileS} {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	p := ProfileH
	p.Name = ""
	if err := p.Validate(); err == nil {
		t.Fatal("empty name should fail")
	}
	p = ProfileH
	p.MaxMAJ = 4
	if err := p.Validate(); err == nil {
		t.Fatal("even MaxMAJ should fail")
	}
}

func TestSpecValidate(t *testing.T) {
	good := NewSpec("m0", ProfileH, 1)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Columns = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero columns should fail")
	}
	bad = good
	bad.ID = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("empty ID should fail")
	}
	bad = good
	bad.Banks = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative banks should fail")
	}
}

func TestNewModuleRejectsBadParams(t *testing.T) {
	spec := NewSpec("m0", ProfileH, 1)
	p := analog.DefaultParams()
	p.VDD = 0
	if _, err := NewModule(spec, p); err == nil {
		t.Fatal("invalid analog params should fail")
	}
}

func TestSubarrayBounds(t *testing.T) {
	m := testModule(t, ProfileH)
	if _, err := m.Subarray(-1, 0); err == nil {
		t.Fatal("negative bank should fail")
	}
	if _, err := m.Subarray(16, 0); err == nil {
		t.Fatal("bank 16 should fail")
	}
	if _, err := m.Subarray(0, 999); err == nil {
		t.Fatal("subarray 999 should fail")
	}
	sa1, err := m.Subarray(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa2, err := m.Subarray(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sa1 != sa2 {
		t.Fatal("same coordinates must return the same subarray")
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	bits := PatternAA55.FillRow(7, 0, sa.Cols())
	if err := sa.WriteRow(5, bits); err != nil {
		t.Fatal(err)
	}
	got, err := sa.ReadRow(5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, bits) {
		t.Fatal("read does not match write")
	}
}

func TestWriteRowErrors(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if err := sa.WriteRow(-1, make([]bool, sa.Cols())); err == nil {
		t.Fatal("negative row should fail")
	}
	if err := sa.WriteRow(sa.Rows(), make([]bool, sa.Cols())); err == nil {
		t.Fatal("row beyond subarray should fail")
	}
	if err := sa.WriteRow(0, make([]bool, 3)); err == nil {
		t.Fatal("wrong width should fail")
	}
}

func TestFracRowReadsAsSABias(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if err := sa.SetFracRow(9); err != nil {
		t.Fatal(err)
	}
	r1, err := sa.ReadRow(9)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sa.ReadRow(9)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("Frac readout must be deterministic (static SA bias)")
	}
	ones := 0
	for _, b := range r1 {
		if b {
			ones++
		}
	}
	if ones == 0 || ones == len(r1) {
		t.Fatalf("SA bias should vary per column, got %d ones of %d", ones, len(r1))
	}
}

func TestFracUnsupportedOnMfrM(t *testing.T) {
	sa := testSubarray(t, ProfileM)
	if err := sa.SetFracRow(0); err == nil {
		t.Fatal("Mfr. M must reject Frac")
	}
}

func TestAPANominalTimingsSingleMode(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	res, err := sa.APA(0, 7, apaOpts(36, 13.5, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSingle {
		t.Fatalf("mode = %v, want single", res.Mode)
	}
	if !reflect.DeepEqual(res.Activated, []int{7}) {
		t.Fatalf("activated = %v", res.Activated)
	}
}

func TestAPASamsungGuarded(t *testing.T) {
	sa := testSubarray(t, ProfileS)
	res, err := sa.APA(0, 7, apaOpts(3, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeSingle || len(res.Activated) != 1 {
		t.Fatalf("Samsung chips must not multi-activate: %+v", res)
	}
}

func TestAPAActivatedSetMatchesDecoder(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	res, err := sa.APA(0, 7, apaOpts(3, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeShare {
		t.Fatalf("mode = %v, want share", res.Mode)
	}
	if !reflect.DeepEqual(res.Activated, []int{0, 1, 6, 7}) {
		t.Fatalf("activated = %v", res.Activated)
	}
	if len(res.Asserted) == 0 || len(res.Asserted) > 4 {
		t.Fatalf("asserted = %v", res.Asserted)
	}
}

func TestAPACopyModeAtLongT1(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	res, err := sa.APA(0, 1, apaOpts(36, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeCopy {
		t.Fatalf("mode = %v, want copy", res.Mode)
	}
}

func TestAPABoundsChecked(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if _, err := sa.APA(-1, 0, apaOpts(3, 3, 0)); err == nil {
		t.Fatal("negative rf should fail")
	}
	if _, err := sa.APA(0, 4096, apaOpts(3, 3, 0)); err == nil {
		t.Fatal("out-of-range rs should fail")
	}
}

// TestRowCloneCopiesData: the fundamental RowClone behaviour — at t1=tRAS
// and violated tRP, the second row receives the first row's data.
func TestRowCloneCopiesData(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	src := PatternRandom.FillRow(42, 0, sa.Cols())
	if err := sa.WriteRow(0, src); err != nil {
		t.Fatal(err)
	}
	if err := sa.WriteRow(1, Invert(src)); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.APA(0, 1, apaOpts(36, 3, 0)); err != nil {
		t.Fatal(err)
	}
	sa.Precharge()
	got, err := sa.ReadRow(1)
	if err != nil {
		t.Fatal(err)
	}
	match := 0
	for c := range got {
		if got[c] == src[c] {
			match++
		}
	}
	if frac := float64(match) / float64(len(got)); frac < 0.99 {
		t.Fatalf("RowClone copied %.2f%% of bits, want >99%%", frac*100)
	}
}

// TestMultiRowCopy31Destinations: one source to 31 destinations at the
// paper's best copy timings succeeds on ~all cells (Obs. 14).
func TestMultiRowCopy31Destinations(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	src := PatternRandom.FillRow(7, 0, sa.Cols())
	rf := 127
	rs, err := sa.mod.Decoder().PairForCount(rf, 32)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sa.mod.Decoder().ActivatedRows(rf, rs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sa.WriteRow(rf, src); err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r != rf {
			if err := sa.WriteRow(r, Invert(src)); err != nil {
				t.Fatal(err)
			}
		}
	}
	res, err := sa.APA(rf, rs, apaOpts(36, 3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeCopy || len(res.Activated) != 32 {
		t.Fatalf("unexpected result: %+v", res)
	}
	sa.Precharge()
	total, match := 0, 0
	for _, r := range rows {
		got, err := sa.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := range got {
			total++
			if got[c] == src[c] {
				match++
			}
		}
	}
	if frac := float64(match) / float64(total); frac < 0.97 {
		t.Fatalf("Multi-RowCopy success = %.3f, want >0.97", frac)
	}
}

// TestShareModeMAJ3Unanimous: three rows storing the same value always
// resolve to that value — the easiest majority.
func TestShareModeMAJ3Unanimous(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	ones := make([]bool, sa.Cols())
	for i := range ones {
		ones[i] = true
	}
	// Rows {0,1,6,7} activate together; fill all four with 1s.
	for _, r := range []int{0, 1, 6, 7} {
		if err := sa.WriteRow(r, ones); err != nil {
			t.Fatal(err)
		}
	}
	opts := apaOpts(1.5, 3, 0)
	opts.MAJ = &MAJSpec{X: 3, Copies: 1}
	res, err := sa.APA(0, 7, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != ModeShare {
		t.Fatalf("mode = %v", res.Mode)
	}
	sa.Precharge()
	got, err := sa.ReadRow(0)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, b := range got {
		if b {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(got)); frac < 0.95 && res.Viable {
		t.Fatalf("unanimous MAJ success = %.3f on a viable group", frac)
	}
}

func TestWriteOpenRowsRequiresAPA(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if err := sa.WriteOpenRows(make([]bool, sa.Cols())); err == nil {
		t.Fatal("WR without open rows should fail")
	}
}

// TestManyRowActivationWRUpdatesAllRows is the §3.2 methodology end to
// end: APA at best timings then WR; every activated row stores the WR data.
func TestManyRowActivationWRUpdatesAllRows(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	init := Pattern00FF.FillRow(1, 0, sa.Cols())
	wrData := Invert(init)
	rf := 0
	rs, err := sa.mod.Decoder().PairForCount(rf, 8)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := sa.mod.Decoder().ActivatedRows(rf, rs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := sa.WriteRow(r, init); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sa.APA(rf, rs, apaOpts(3, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := sa.WriteOpenRows(wrData); err != nil {
		t.Fatal(err)
	}
	sa.Precharge()
	total, match := 0, 0
	for _, r := range rows {
		got, err := sa.ReadRow(r)
		if err != nil {
			t.Fatal(err)
		}
		for c := range got {
			total++
			if got[c] == wrData[c] {
				match++
			}
		}
	}
	if frac := float64(match) / float64(total); frac < 0.99 {
		t.Fatalf("many-row activation success = %.4f, want >0.99", frac)
	}
}

// TestAPADeterministic: identical modules produce identical results.
func TestAPADeterministic(t *testing.T) {
	run := func() []bool {
		spec := NewSpec("det", ProfileH, 777)
		spec.Columns = 128
		m, err := NewModule(spec, analog.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		sa, err := m.Subarray(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{0, 1, 6, 7} {
			if err := sa.FillRow(r, PatternRandom, 5, r); err != nil {
				t.Fatal(err)
			}
		}
		opts := apaOpts(1.5, 3, 0)
		opts.MAJ = &MAJSpec{X: 3, Copies: 1}
		if _, err := sa.APA(0, 7, opts); err != nil {
			t.Fatal(err)
		}
		sa.Precharge()
		got, err := sa.ReadRow(0)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("simulation must be deterministic for a fixed seed")
	}
}

func TestPatternPairRowsUseBothBytes(t *testing.T) {
	// Each filled row of a paired pattern is solid (one byte repeated),
	// and both bytes of the pair appear across many rows.
	for _, p := range []Pattern{Pattern00FF, PatternAA55, PatternCC33, Pattern6699} {
		sawA, sawB := false, false
		first := p.Bit(1, 0, 0)
		_ = first
		for row := 0; row < 64; row++ {
			ref := p.FillRow(1, row, 8)
			// Solid along the row: every 8-column stride repeats.
			wide := p.FillRow(1, row, 64)
			for c := range wide {
				if wide[c] != ref[c%8] {
					t.Fatalf("pattern %v row %d not byte-periodic", p, row)
				}
			}
			if ref[0] == p.FillRow(1, 0, 8)[0] && reflect.DeepEqual(ref, p.FillRow(1, 0, 8)) {
				sawA = true
			} else {
				sawB = true
			}
		}
		if !sawA || !sawB {
			t.Fatalf("pattern %v never used both bytes of the pair", p)
		}
	}
}

func TestPatternRandomRowsDiffer(t *testing.T) {
	r0 := PatternRandom.FillRow(1, 0, 64)
	r1 := PatternRandom.FillRow(1, 1, 64)
	if reflect.DeepEqual(r0, r1) {
		t.Fatal("random rows should differ")
	}
	f := func(seed uint64, row uint8) bool {
		a := PatternRandom.FillRow(seed, int(row), 32)
		b := PatternRandom.FillRow(seed, int(row), 32)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternAll0All1(t *testing.T) {
	for c := 0; c < 64; c++ {
		if PatternAll0.Bit(0, 0, c) {
			t.Fatal("All0 produced a 1")
		}
		if !PatternAll1.Bit(0, 0, c) {
			t.Fatal("All1 produced a 0")
		}
	}
}

func TestPatternCouplingOrdering(t *testing.T) {
	if PatternRandom.CouplingFactor() != 1 {
		t.Fatal("random coupling factor must be 1")
	}
	for _, p := range []Pattern{Pattern00FF, PatternAA55, PatternCC33, Pattern6699, PatternAll0, PatternAll1} {
		if f := p.CouplingFactor(); f <= 0 || f >= 0.5 {
			t.Fatalf("pattern %v coupling factor %v out of expected range", p, f)
		}
	}
}

func TestInvert(t *testing.T) {
	in := []bool{true, false, true}
	got := Invert(in)
	if !reflect.DeepEqual(got, []bool{false, true, false}) {
		t.Fatalf("Invert = %v", got)
	}
	if !in[0] {
		t.Fatal("Invert must not mutate its input")
	}
}

func TestPatternString(t *testing.T) {
	if PatternRandom.String() != "Random" || Pattern00FF.String() != "0x00/0xFF" {
		t.Fatal("unexpected pattern names")
	}
	if Pattern(99).String() != "Pattern(99)" {
		t.Fatal("unknown pattern string")
	}
}

func TestRawLevel(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if err := sa.SetFracRow(3); err != nil {
		t.Fatal(err)
	}
	v, err := sa.RawLevel(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0.5 {
		t.Fatalf("Frac level = %v, want 0.5", v)
	}
	if _, err := sa.RawLevel(3, -1); err == nil {
		t.Fatal("negative column should fail")
	}
	if _, err := sa.RawLevel(9999, 0); err == nil {
		t.Fatal("bad row should fail")
	}
}

func TestOpenRowsLifecycle(t *testing.T) {
	sa := testSubarray(t, ProfileH)
	if rows := sa.OpenRows(); len(rows) != 0 {
		t.Fatalf("fresh subarray has open rows: %v", rows)
	}
	if _, err := sa.APA(0, 1, apaOpts(3, 3, 0)); err != nil {
		t.Fatal(err)
	}
	if rows := sa.OpenRows(); len(rows) == 0 {
		t.Fatal("APA should leave rows open")
	}
	sa.Precharge()
	if rows := sa.OpenRows(); len(rows) != 0 {
		t.Fatal("Precharge should close all rows")
	}
}
