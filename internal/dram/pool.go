package dram

import "repro/internal/analog"

// ModulePool recycles pre-built module instances across runs. Module
// construction itself is cheap, but the first touch of every subarray
// hoists large static-draw tables (per-column thresholds, per-row latch
// and wordline draws, lazily materialized per-cell gamma/Frac/weak tables
// and per-group coupling rows — see newSubarray); a pooled instance keeps
// those tables warm. Because every static table is a pure function of
// structural coordinates and Reset restores the dynamic cell state to the
// power-off state of a fresh instance, work on a pooled module is
// bit-identical to work on a freshly built one.
//
// Implementations must be safe for concurrent use and must hand each Get
// caller exclusive ownership of the returned instance until it is Put
// back. internal/jobs.Warmpool is the standard implementation.
type ModulePool interface {
	// Get returns an exclusively owned module for the spec, pooled or
	// freshly built.
	Get(spec Spec, params analog.Params) (*Module, error)
	// Put returns a module obtained from Get; the caller must not use it
	// afterwards.
	Put(m *Module)
}

// PoolModule returns a module for the spec — from pool when non-nil,
// freshly built otherwise — plus a release function that returns it to
// the pool (a no-op for unpooled instances). The release function is safe
// to call exactly once.
func PoolModule(pool ModulePool, spec Spec, params analog.Params) (*Module, func(), error) {
	if pool == nil {
		m, err := NewModule(spec, params)
		if err != nil {
			return nil, nil, err
		}
		return m, func() {}, nil
	}
	m, err := pool.Get(spec, params)
	if err != nil {
		return nil, nil, err
	}
	return m, func() { pool.Put(m) }, nil
}

// Reset restores every instantiated subarray to the power-off state of a
// freshly built module — cell planes cleared, wordlines de-asserted —
// while keeping the hoisted static-draw tables, which are pure functions
// of structural coordinates and therefore identical on a fresh instance.
// A reset module is indistinguishable from a new one to every operation;
// pools call it before recycling an instance.
func (m *Module) Reset() {
	for _, b := range m.banks {
		for _, sa := range b.subarrays {
			sa.reset()
		}
	}
}

// reset clears the subarray's dynamic state (cell charge planes, open
// rows, latch mode), preserving the static process-variation tables.
func (s *Subarray) reset() {
	clearWords(s.val)
	clearWords(s.frac)
	s.asserted = nil
	s.copyMode = false
}
