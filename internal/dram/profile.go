// Package dram models the DRAM devices under test: the structural
// hierarchy (module → bank → subarray → cells), per-manufacturer
// behavioural profiles, and the command-level execution engine that the
// tester drives — including the timing-violating ACT→PRE→ACT (APA)
// sequences that produce simultaneous many-row activation, in-DRAM
// majority, and multi-row copy.
package dram

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/cache"
	"repro/internal/decoder"
)

// Profile captures a manufacturer's behavioural characteristics as
// reverse-engineered by the paper.
type Profile struct {
	// Name is the paper's anonymized manufacturer tag: "H", "M" or "S".
	Name string
	// Manufacturer is the vendor name.
	Manufacturer string
	// Decoder is the subarray row-decoder geometry.
	Decoder decoder.Config
	// FracSupported reports whether the Frac operation (storing VDD/2 in a
	// cell) works on this vendor's chips. Mfr. M does not support Frac;
	// its neutral rows are instead initialized with solid values that the
	// (biased) sense amplifiers cancel out (paper footnote 5), which is
	// slightly noisier.
	FracSupported bool
	// APAGuarded reports whether the chip's control circuitry ignores
	// timing-violating APA sequences. The tested Samsung chips never
	// activate more than one row (§9, Limitation 1).
	APAGuarded bool
	// ViabilityBias shifts the group-viability z-score (see analog) for
	// majority operations. 0 for Mfr. H.
	ViabilityBias float64
	// MaxMAJ is the largest majority width with non-negligible success:
	// 9 for Mfr. H (MAJ11+ under 1%), 7 for Mfr. M (MAJ9+ under 1%).
	MaxMAJ int
}

// Built-in profiles matching §9 / Table 1.
var (
	// ProfileH models the SK Hynix chips (die revisions M and A).
	ProfileH = Profile{
		Name:          "H",
		Manufacturer:  "SK Hynix",
		Decoder:       decoder.Hynix512(),
		FracSupported: true,
		MaxMAJ:        9,
	}
	// ProfileH640 models the SK Hynix modules with 640-row subarrays.
	ProfileH640 = Profile{
		Name:          "H",
		Manufacturer:  "SK Hynix",
		Decoder:       decoder.Hynix640(),
		FracSupported: true,
		MaxMAJ:        9,
	}
	// ProfileM models the Micron chips (die revisions E and B).
	ProfileM = Profile{
		Name:          "M",
		Manufacturer:  "Micron",
		Decoder:       decoder.Micron1024(),
		FracSupported: false,
		ViabilityBias: -0.25,
		MaxMAJ:        7,
	}
	// ProfileS models the Samsung chips on which no PUD operation is
	// observable.
	ProfileS = Profile{
		Name:         "S",
		Manufacturer: "Samsung",
		Decoder:      decoder.Hynix512(),
		APAGuarded:   true,
		MaxMAJ:       0,
	}
)

// Validate reports whether the profile is internally consistent.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("dram: profile missing name")
	}
	if _, err := decoder.New(p.Decoder); err != nil {
		return fmt.Errorf("dram: profile %s: %w", p.Name, err)
	}
	if p.MaxMAJ < 0 || p.MaxMAJ%2 == 0 && p.MaxMAJ != 0 {
		return fmt.Errorf("dram: profile %s: MaxMAJ %d must be odd or zero", p.Name, p.MaxMAJ)
	}
	return nil
}

// Spec identifies one DRAM module under test (a row of Table 2).
type Spec struct {
	// ID is the module identifier used in reports.
	ID string
	// Profile is the manufacturer behavioural profile.
	Profile Profile
	// Chips is the number of DRAM chips on the module.
	Chips int
	// Banks per chip (DDR4 x8/x16 devices have 16 banks).
	Banks int
	// SubarraysPerBank is the number of subarrays in each bank.
	SubarraysPerBank int
	// Columns is the number of bitlines simulated per subarray. Real
	// chips have 8192 (x8) or 16384 (x16) per row; experiments simulate a
	// configurable slice (default 1024) and report success rates, which
	// are per-cell fractions and therefore insensitive to the slice width.
	Columns int
	// DensityGbit and DieRev are reporting metadata (Table 1/2).
	DensityGbit int
	DieRev      string
	// FreqMTps is the module's data rate in MT/s (reporting metadata).
	FreqMTps int
	// Seed determines all static process variation of this module.
	Seed uint64
}

// HashModule writes the spec's simulation-relevant identity — module ID,
// process-variation seed, geometry, behavioural profile, die revision —
// and the electrical parameters into a canonical hasher. It is the shared
// module block of every shard cache-key family (charexp sweep shards,
// workload module shards, scenario point shards): one place to extend
// when Spec, Profile or analog.Params gains a field, so no key family
// can silently fall out of date.
func (s Spec) HashModule(h *cache.Hasher, params analog.Params) *cache.Hasher {
	return h.
		Str(s.ID).U64(s.Seed).Int(s.Columns).
		Int(s.Banks).Int(s.SubarraysPerBank).
		Str(s.Profile.Name).Int(s.Profile.Decoder.Rows).
		Bool(s.Profile.FracSupported).F64(s.Profile.ViabilityBias).
		Int(s.Profile.MaxMAJ).Bool(s.Profile.APAGuarded).
		Str(s.DieRev).
		Str(fmt.Sprintf("%v", params))
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("dram: spec missing ID")
	}
	if err := s.Profile.Validate(); err != nil {
		return err
	}
	if s.Chips <= 0 || s.Banks <= 0 || s.SubarraysPerBank <= 0 {
		return fmt.Errorf("dram: spec %s: chips/banks/subarrays must be positive", s.ID)
	}
	if s.Columns <= 0 {
		return fmt.Errorf("dram: spec %s: columns must be positive", s.ID)
	}
	return nil
}

// DefaultColumns is the default simulated subarray slice width.
const DefaultColumns = 1024

// NewSpec returns a Spec with conventional defaults for the given profile:
// 16 banks, 128 subarrays per bank, the default column slice.
func NewSpec(id string, profile Profile, seed uint64) Spec {
	return Spec{
		ID:               id,
		Profile:          profile,
		Chips:            8,
		Banks:            16,
		SubarraysPerBank: 128,
		Columns:          DefaultColumns,
		DensityGbit:      4,
		DieRev:           "M",
		FreqMTps:         2666,
		Seed:             seed,
	}
}

// Module is one instantiated DRAM module: the unit the tester connects to.
type Module struct {
	spec   Spec
	dec    *decoder.Decoder
	params analog.Params
	banks  map[int]*bank
	// tabKey is the module's static-table identity (see saTables): two
	// modules with equal tabKey have identical process variation, so their
	// subarrays share derived tables.
	tabKey cache.Key
}

type bank struct {
	subarrays map[int]*Subarray
}

// NewModule builds a module from a spec with the given electrical model.
func NewModule(spec Spec, params analog.Params) (*Module, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dec, err := decoder.New(spec.Profile.Decoder)
	if err != nil {
		return nil, err
	}
	return &Module{
		spec:   spec,
		dec:    dec,
		params: params,
		banks:  make(map[int]*bank),
		tabKey: spec.HashModule(cache.NewHasher().Str("dram/subarray-tables/v1"), params).Sum(),
	}, nil
}

// Spec returns the module's identity.
func (m *Module) Spec() Spec { return m.spec }

// IdentityKey returns the module's simulation-identity digest: the same
// spec + electrical-params hash the static-table registry shares
// derivations by. Two modules with equal keys are bit-identical
// simulations, so derived pure-function results (tables, samplings) can
// be shared between them.
func (m *Module) IdentityKey() cache.Key { return m.tabKey }

// Decoder returns the module's subarray row decoder.
func (m *Module) Decoder() *decoder.Decoder { return m.dec }

// Params returns the electrical model parameters.
func (m *Module) Params() analog.Params { return m.params }

// RowsPerSubarray returns the subarray height.
func (m *Module) RowsPerSubarray() int { return m.dec.Rows() }

// Subarray returns (lazily allocating) the subarray at the given bank and
// index. Subarrays are independent: PUD operations never cross them.
func (m *Module) Subarray(bankIdx, saIdx int) (*Subarray, error) {
	if bankIdx < 0 || bankIdx >= m.spec.Banks {
		return nil, fmt.Errorf("dram: bank %d outside [0,%d)", bankIdx, m.spec.Banks)
	}
	if saIdx < 0 || saIdx >= m.spec.SubarraysPerBank {
		return nil, fmt.Errorf("dram: subarray %d outside [0,%d)", saIdx, m.spec.SubarraysPerBank)
	}
	b, ok := m.banks[bankIdx]
	if !ok {
		b = &bank{subarrays: make(map[int]*Subarray)}
		m.banks[bankIdx] = b
	}
	sa, ok := b.subarrays[saIdx]
	if !ok {
		sa = newSubarray(m, bankIdx, saIdx)
		b.subarrays[saIdx] = sa
	}
	return sa, nil
}
