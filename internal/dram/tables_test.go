package dram

import (
	"reflect"
	"testing"

	"repro/internal/analog"
	"repro/internal/bitvec"
)

// newTestModule builds a module with a caller-chosen seed so table-registry
// tests control whether they hit an existing entry.
func newTestModule(t *testing.T, profile Profile, seed uint64) *Module {
	t.Helper()
	spec := NewSpec("tables-test", profile, seed)
	spec.Columns = 256
	m, err := NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTablesSharedAcrossInstances(t *testing.T) {
	m1 := newTestModule(t, ProfileH, 0xfeed0001)
	m2 := newTestModule(t, ProfileH, 0xfeed0001)
	sa1, err := m1.Subarray(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sa2, err := m2.Subarray(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sa1.tab != sa2.tab {
		t.Fatal("identical module identities should share static tables")
	}
	// Lazy per-cell rows are derived once and shared by pointer.
	g1 := sa1.gammaRow(7)
	g2 := sa2.gammaRow(7)
	if &g1[0] != &g2[0] {
		t.Fatal("gamma row not shared between instances")
	}
}

func TestTablesDistinguishIdentity(t *testing.T) {
	base, err := newTestModule(t, ProfileH, 0xfeed0002).Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	otherSeed, err := newTestModule(t, ProfileH, 0xfeed0003).Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.tab == otherSeed.tab {
		t.Fatal("different seeds must not share tables")
	}
	otherSA, err := newTestModule(t, ProfileH, 0xfeed0002).Subarray(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if base.tab == otherSA.tab {
		t.Fatal("different subarray coordinates must not share tables")
	}
	params := analog.DefaultParams()
	params.CellCapSigma *= 2
	spec := NewSpec("tables-test", ProfileH, 0xfeed0002)
	spec.Columns = 256
	mp, err := NewModule(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	otherParams, err := mp.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.tab == otherParams.tab {
		t.Fatal("different electrical params must not share tables")
	}
}

// TestTableDerivationsPinned pins the reuse mechanism itself: building a
// second identical module instance and running the same operation must not
// re-derive any static table. This is the property scenario sharding and
// warmpool recycling rely on for the speedup.
func TestTableDerivationsPinned(t *testing.T) {
	run := func(m *Module) {
		sa, err := m.Subarray(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		data := PatternRandom.FillRowVec(9, 0, sa.Cols())
		for r := 0; r < 4; r++ {
			if err := sa.WriteRowVec(r, data); err != nil {
				t.Fatal(err)
			}
		}
		// Share mode touches gamma rows; copy mode touches weak-copy rows;
		// WR touches weak-write rows.
		if _, err := sa.APA(0, 384, apaOpts(6, 3, 0)); err != nil {
			t.Fatal(err)
		}
		if err := sa.WriteOpenRowsVec(data); err != nil {
			t.Fatal(err)
		}
		sa.Precharge()
		if _, err := sa.APA(0, 384, apaOpts(40, 3, 0)); err != nil {
			t.Fatal(err)
		}
		sa.Precharge()
	}

	m1 := newTestModule(t, ProfileH, 0xfeed0004)
	run(m1)
	statics0, cells0 := TableDerivations()
	if statics0 == 0 || cells0 == 0 {
		t.Fatal("first run should have derived tables")
	}

	// A fresh instance with the same identity: zero new derivations.
	m2 := newTestModule(t, ProfileH, 0xfeed0004)
	run(m2)
	statics1, cells1 := TableDerivations()
	if statics1 != statics0 || cells1 != cells0 {
		t.Fatalf("identical rerun re-derived tables: statics %d→%d, cell rows %d→%d",
			statics0, statics1, cells0, cells1)
	}

	// A different identity must derive its own.
	m3 := newTestModule(t, ProfileH, 0xfeed0005)
	run(m3)
	statics2, cells2 := TableDerivations()
	if statics2 == statics1 || cells2 == cells1 {
		t.Fatal("distinct identity should derive fresh tables")
	}
}

// TestPlanAPAMatchesScalar checks the plan's asserted-set partition and
// mode against per-trial scalar APA calls on an identically prepared
// subarray.
func TestPlanAPAMatchesScalar(t *testing.T) {
	const trials = 16
	for _, tc := range []struct {
		name   string
		t1, t2 float64
	}{
		{"share", 6, 3},
		{"copy", 40, 3},
		{"single", 6, 30},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sa := testSubarray(t, ProfileH)
			data := PatternRandom.FillRowVec(3, 0, sa.Cols())
			for r := 0; r < 8; r++ {
				if err := sa.WriteRowVec(r, data); err != nil {
					t.Fatal(err)
				}
			}
			plan, err := sa.PlanAPA(0, 384, trials, apaOpts(tc.t1, tc.t2, 0))
			if err != nil {
				t.Fatal(err)
			}
			if got := plan.Trials(); got != trials {
				t.Fatalf("plan covers %d trials, want %d", got, trials)
			}
			// Invert the partition: trial -> asserted rows.
			byTrial := make(map[int][]int)
			for _, set := range plan.Sets {
				for _, trial := range set.Trials {
					if _, dup := byTrial[trial]; dup {
						t.Fatalf("trial %d appears in two sets", trial)
					}
					byTrial[trial] = set.Rows
				}
			}
			for trial := 0; trial < trials; trial++ {
				res, err := sa.APA(0, 384, apaOpts(tc.t1, tc.t2, trial))
				if err != nil {
					t.Fatal(err)
				}
				sa.Precharge()
				if res.Mode != plan.Mode {
					t.Fatalf("trial %d: scalar mode %v, plan mode %v", trial, res.Mode, plan.Mode)
				}
				if res.Mode == ModeShare && res.Viable != plan.Viable {
					t.Fatalf("trial %d: scalar viable %v, plan viable %v", trial, res.Viable, plan.Viable)
				}
				if !reflect.DeepEqual(byTrial[trial], res.Asserted) {
					t.Fatalf("trial %d: plan set %v, scalar asserted %v", trial, byTrial[trial], res.Asserted)
				}
				// Re-prepare rows mutated by the scalar call.
				for _, r := range res.Asserted {
					if err := sa.WriteRowVec(r, data); err != nil {
						t.Fatal(err)
					}
				}
			}
		})
	}
}

// TestShareOutMatchesScalarAPA drives the plane primitives by hand for a
// share-mode plan and compares each trial's sensing outcome with the
// scalar path's array state.
func TestShareOutMatchesScalarAPA(t *testing.T) {
	const trials = 8
	sa := testSubarray(t, ProfileH)
	rows := []int{0, 384} // rf and rs; the H decoder activates more
	opts := apaOpts(6, 3, 0)

	fill := func(s *Subarray) {
		for ord, r := range rows {
			if err := s.FillRow(r, PatternRandom, 11, ord); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill(sa)
	plan, err := sa.PlanAPA(0, 384, trials, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Mode != ModeShare {
		t.Fatalf("mode %v, want share", plan.Mode)
	}

	scalar := testSubarray(t, ProfileH)
	out := bitvec.New(sa.Cols())
	det := bitvec.New(sa.Cols())
	meta := bitvec.New(sa.Cols())
	got := bitvec.New(sa.Cols())
	for _, set := range plan.Sets {
		// Plane side: resolve the set once against pristine contents.
		fill(sa)
		sa.ShareResolve(det, meta, set, plan, opts)
		for _, trial := range set.Trials {
			sa.ShareOut(out, det, meta, plan, trial)

			// Scalar side: fresh contents, same trial.
			fill(scalar)
			o := opts
			o.Trial = trial
			res, err := scalar.APA(0, 384, o)
			if err != nil {
				t.Fatal(err)
			}
			if err := scalar.ReadRowInto(got, res.Asserted[0]); err != nil {
				t.Fatal(err)
			}
			scalar.Precharge()
			if !out.Equal(got) {
				t.Fatalf("trial %d: plane out != scalar sensed row", trial)
			}
		}
	}
}
