package dram

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/bitvec"
	"repro/internal/cache"
	"repro/internal/xrand"
)

// saTables holds one subarray's static process-variation tables, shared by
// every Subarray instance with the same simulation identity (module spec +
// electrical params + subarray coordinates). Every entry is a pure
// function of structural coordinates, so sharing never changes a result —
// it only stops scenario grid points, warmpool recycles and cluster
// workers from re-deriving the same per-cell draws for every private
// module instance they build.
//
// The eager per-column/per-row tables are built once under init; the lazy
// per-cell rows and per-group coupling rows are guarded by mu. Rows are
// immutable once published, so instances memoize the returned slices
// locally and skip the lock on every later access.
type saTables struct {
	init sync.Once

	theta     []float64  // per-column reliable sensing threshold
	saBias    bitvec.Vec // per-column sense-amp bias sign (Frac readout)
	latchNorm []float64  // per-row predecoder latch draw
	wlNorm    []float64  // per-row wordline settle draw

	mu            sync.Mutex
	gammaRows     [][]float64 // per-cell capacitance draws, by row
	fracRows      [][]float64 // per-cell Frac residual draws, by row
	weakWRRows    [][]float64 // per-cell weak-write uniforms, by row
	weakCopyRows  [][]float64 // per-cell weak-copy uniforms, by row
	wbaseRows     [][]float64 // per-cell charge-share weight base, by row
	jitRows       [][]float64 // per-(row, trial) assertion jitter draws
	couplingNorms map[uint64][]float64
	wcRows        map[wcRowKey][]float64 // w·wbase[c], by (row, drive weight)
	metaPlanes    map[metaPlaneKey][]uint64
}

// tableKey identifies one subarray's static tables across module
// instances: the shared HashModule block (module identity, geometry,
// profile and electrical params) plus the subarray coordinates.
type tableKey struct {
	mod      cache.Key
	bank, sa int
}

// tableRegMax bounds the registry. Beyond it the registry resets: every
// entry is recomputable, and instances that already attached keep their
// pointers, so eviction only costs re-derivation for future attachments.
const tableRegMax = 4096

var tableReg = struct {
	sync.Mutex
	m map[tableKey]*saTables
}{m: make(map[tableKey]*saTables)}

// Derivation counters, exported through TableDerivations so tests can pin
// that table reuse actually happens (and stays happening).
var (
	statStaticSets atomic.Int64
	statCellRows   atomic.Int64
)

// TableDerivations reports how many eager per-subarray static table sets
// and lazy per-cell table rows have been derived process-wide. Deriving is
// the expensive part (one Norm/Uniform per cell); cache hits don't count.
func TableDerivations() (staticSets, cellRows int64) {
	return statStaticSets.Load(), statCellRows.Load()
}

// tablesFor returns the shared table set for the key, creating an
// unbuilt entry on first sight.
func tablesFor(k tableKey) *saTables {
	tableReg.Lock()
	defer tableReg.Unlock()
	if t, ok := tableReg.m[k]; ok {
		return t
	}
	if len(tableReg.m) >= tableRegMax {
		tableReg.m = make(map[tableKey]*saTables)
	}
	t := &saTables{}
	tableReg.m[k] = t
	return t
}

// attachTables binds the subarray to its shared static tables, building
// the eager per-column and per-row tables on first attachment.
func (s *Subarray) attachTables() {
	t := tablesFor(tableKey{mod: s.mod.tabKey, bank: s.bankIdx, sa: s.saIdx})
	t.init.Do(func() {
		t.theta = make([]float64, s.cols)
		t.saBias = bitvec.New(s.cols)
		t.latchNorm = make([]float64, s.rows)
		t.wlNorm = make([]float64, s.rows)
		for c := 0; c < s.cols; c++ {
			t.theta[c] = s.mod.params.SenseThreshold(s.colNorm(c, tagTheta))
			t.saBias.Set(c, s.colNorm(c, tagSABias) > 0)
		}
		for r := 0; r < s.rows; r++ {
			t.latchNorm[r] = s.rowNorm(r, tagLatch)
			t.wlNorm[r] = s.rowNorm(r, tagWL)
		}
		t.gammaRows = make([][]float64, s.rows)
		t.fracRows = make([][]float64, s.rows)
		t.weakWRRows = make([][]float64, s.rows)
		t.weakCopyRows = make([][]float64, s.rows)
		t.wbaseRows = make([][]float64, s.rows)
		t.jitRows = make([][]float64, s.rows)
		t.couplingNorms = make(map[uint64][]float64)
		t.wcRows = make(map[wcRowKey][]float64)
		t.metaPlanes = make(map[metaPlaneKey][]uint64)
		statStaticSets.Add(1)
	})
	s.tab = t
}

// cellRow returns one row of a lazy per-cell table, deriving and
// publishing it on first access. Published rows are immutable.
func (t *saTables) cellRow(s *Subarray, table [][]float64, row int, tag uint64, uniform bool) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := table[row]; r != nil {
		return r
	}
	r := make([]float64, s.cols)
	for c := range r {
		if uniform {
			r[c] = xrand.Uniform(s.key3(uint64(row), uint64(c), tag))
		} else {
			r[c] = s.cellNorm(row, c, tag)
		}
	}
	table[row] = r
	statCellRows.Add(1)
	return r
}

// wbaseRow returns one row's precomputed charge-share weight base,
// 1 + CellCapSigma·gamma[c] — the trial-invariant factor shareDetMeta
// multiplies by the row's drive weight. No fresh RNG derivation happens
// here (it is arithmetic over the gamma row), so it doesn't count toward
// the derivation counters. Published rows are immutable.
func (t *saTables) wbaseRow(s *Subarray, row int) []float64 {
	gamma := s.gammaRow(row) // derive outside t.mu: gammaRow locks too
	sigma := s.mod.params.CellCapSigma
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.wbaseRows[row]; r != nil {
		return r
	}
	r := make([]float64, s.cols)
	for c := range r {
		r[c] = 1 + sigma*gamma[c]
	}
	t.wbaseRows[row] = r
	return r
}

// jitRow returns the row's first `trials` assertion-jitter normal draws,
// extending the cached prefix on demand. The draws are pure functions of
// (row, trial), so the timing sweeps that replay the same trials at every
// grid cell share one Box-Muller evaluation per draw. Entries below the
// requested length are never rewritten, so the returned prefix is safe to
// read outside the lock. No fresh per-cell table derivation happens here
// (it is the same per-trial draw the scalar path makes inline), so it
// doesn't count toward the derivation counters.
func (t *saTables) jitRow(s *Subarray, row, trials int) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.jitRows[row]
	for len(r) < trials {
		r = append(r, xrand.Norm(s.key3(uint64(row), uint64(len(r)), tagJitter)))
	}
	t.jitRows[row] = r
	return r[:trials]
}

// wcRowKey identifies one charge-share weight row: the row index and the
// exact bits of the drive weight it is scaled by (a float64 key would
// admit no collisions either, but bits make the exactness explicit).
type wcRowKey struct {
	row int
	w   uint64
}

// wcRowMax bounds the weighted-row cache per table set; beyond it the map
// resets (entries are recomputable).
const wcRowMax = 4096

// wcRow returns the row's charge-share weights scaled by drive weight w:
// wc[c] = w·(1 + CellCapSigma·gamma[c]), the exact per-column multiply
// shareDetMeta performs. The product depends only on (row, w) — w takes
// one value per (timings, env) pair — so the accumulation loop reuses one
// multiplication pass across every asserted set, trial and data pattern.
// Published rows are immutable.
func (t *saTables) wcRow(s *Subarray, row int, w float64) []float64 {
	wb := s.wbaseRow(row) // derive outside t.mu: wbaseRow locks too
	key := wcRowKey{row: row, w: math.Float64bits(w)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.wcRows[key]; ok {
		return r
	}
	if len(t.wcRows) >= wcRowMax {
		t.wcRows = make(map[wcRowKey][]float64)
	}
	r := make([]float64, s.cols)
	for c := range r {
		r[c] = w * wb[c]
	}
	t.wcRows[key] = r
	return r
}

// metaPlaneKey addresses one packed metastable-coin plane: the group's
// draw key, the trial, and which draw family (metaResolve's bare chain or
// metaOverlay's Mix(1)-suffixed chain).
type metaPlaneKey struct {
	group   uint64
	trial   int
	overlay bool
}

// metaPlaneMax bounds the coin-plane cache; beyond it the map resets.
const metaPlaneMax = 1 << 14

// metaPlane returns the packed per-column metastable coin draws of one
// (group, trial): bit c is the exact Sum()&1 draw metaResolve (overlay
// false) or metaOverlay (overlay true) makes for column c. The draws are
// pure functions of (groupKey, column, trial), so sweeps that revisit a
// group share one hashing pass per trial. Published planes are read-only.
func (t *saTables) metaPlane(s *Subarray, groupKey uint64, trial int, overlay bool) []uint64 {
	key := metaPlaneKey{group: groupKey, trial: trial, overlay: overlay}
	t.mu.Lock()
	r, ok := t.metaPlanes[key]
	t.mu.Unlock()
	if ok {
		return r
	}
	r = make([]uint64, s.words)
	gc := xrand.Begin().Mix(groupKey)
	for wi := range r {
		var word uint64
		base := wi * 64
		nb := s.cols - base
		if nb > 64 {
			nb = 64
		}
		for b := 0; b < nb; b++ {
			ch := gc.Mix(uint64(base + b)).Mix(uint64(trial)).Mix(tagMeta)
			if overlay {
				ch = ch.Mix(1)
			}
			if ch.Sum()&1 == 1 {
				word |= 1 << uint(b)
			}
		}
		r[wi] = word
	}
	t.mu.Lock()
	if len(t.metaPlanes) >= metaPlaneMax {
		t.metaPlanes = make(map[metaPlaneKey][]uint64)
	}
	t.metaPlanes[key] = r
	t.mu.Unlock()
	return r
}

// couplingRow returns the per-column coupling-noise draws of one group,
// deriving and publishing them on first access.
func (t *saTables) couplingRow(cols int, groupKey uint64) []float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.couplingNorms[groupKey]; ok {
		return r
	}
	if len(t.couplingNorms) >= couplingCacheMax {
		t.couplingNorms = make(map[uint64][]float64)
	}
	r := make([]float64, cols)
	gc := xrand.Begin().Mix(groupKey)
	for c := range r {
		r[c] = xrand.NormOf(gc.Mix(uint64(c)).Mix(tagCoupling).Sum())
	}
	t.couplingNorms[groupKey] = r
	return r
}
