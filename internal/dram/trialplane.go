package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/timing"
)

// Trial-plane planning: the characterization kernels repeat one APA
// experiment for T trials, but almost every draw the subarray makes is
// trial-invariant — static process variation, decoder activation, mode
// selection, group viability, weak-cell failure masks, the whole
// charge-share accumulation. The only per-trial draws are the wordline
// assertion jitter (which partitions trials into a handful of distinct
// asserted sets) and the metastable resolutions (cheap word-op overlays).
//
// PlanAPA evaluates the trial-invariant part once and groups the T trials
// by their asserted set; the plane primitives below then let a kernel
// evaluate each distinct set once and materialize all of its trials as
// bit-planes, reducing the all-trials success criterion to word-wise AND
// across planes. The draws are stateless hashes of structural
// coordinates, so the restructured evaluation order produces bit-exact
// scalar results.

// AssertSet is one distinct wordline-assertion outcome and the trials
// that drew it.
type AssertSet struct {
	// Rows is the asserted row set (sorted; shares the plan's backing
	// storage — read-only).
	Rows []int
	// Trials lists the trial indices that drew this set, ascending.
	Trials []int
}

// APAPlan is the trial-invariant decomposition of T repetitions of one
// APA sequence. It is derived without touching array state; the kernels
// replay it against whatever row contents each repetition starts from.
type APAPlan struct {
	Mode   Mode
	RF, RS int
	// T is the quantized timing of the sequence.
	T timing.APATimings
	// GroupKey seeds the group's per-trial metastable draws.
	GroupKey uint64
	// Activated is the decoder's full activation set (read-only, shared
	// with the subarray's caches).
	Activated []int
	// Viable is the share-mode group viability (true in other modes).
	Viable bool
	// Sets partitions the trials by asserted set, in order of first
	// appearance. ModeSingle plans always have exactly one set {RS}.
	Sets []AssertSet
}

// Trials returns the planned trial count.
func (p *APAPlan) Trials() int {
	n := 0
	for _, s := range p.Sets {
		n += len(s.Trials)
	}
	return n
}

// PlanAPA computes the trial-plane plan of trials repetitions of
// APA(rf, rs, opts) without mutating the subarray's array state. The
// opts.Trial field is ignored: the plan covers trials 0..trials-1. Every
// draw matches what the scalar APA path would draw for the same trial
// index. The returned plan aliases subarray-owned scratch and is valid
// until the next PlanAPA call on this subarray.
func (s *Subarray) PlanAPA(rf, rs, trials int, opts APAOptions) (*APAPlan, error) {
	if err := s.checkRow(rf); err != nil {
		return nil, err
	}
	if err := s.checkRow(rs); err != nil {
		return nil, err
	}
	if trials < 1 {
		return nil, fmt.Errorf("dram: PlanAPA needs at least 1 trial, got %d", trials)
	}
	t := opts.Timings.Quantized()
	jedec := timing.DDR4()
	plan := &s.planBuf
	*plan = APAPlan{
		RF: rf, RS: rs, T: t,
		GroupKey: s.key2(uint64(rf), uint64(rs)),
		Viable:   true,
	}
	if cap(s.planTrials) < trials {
		s.planTrials = make([]int, trials)
	}
	trialsBuf := s.planTrials[:trials]

	if !t.ViolatesTRP(jedec) || s.mod.spec.Profile.APAGuarded {
		plan.Mode = ModeSingle
		if cap(s.planRows) < 1 {
			s.planRows = make([]int, 0, 1)
		}
		rows := append(s.planRows[:0], rs)
		for i := range trialsBuf {
			trialsBuf[i] = i
		}
		plan.Activated = rows
		if cap(s.planSets) < 1 {
			s.planSets = make([]AssertSet, 1)
		}
		s.planSets = s.planSets[:1]
		s.planSets[0] = AssertSet{Rows: rows, Trials: trialsBuf}
		plan.Sets = s.planSets
		return plan, nil
	}

	activated, err := s.activatedRows(rf, rs)
	if err != nil {
		return nil, err
	}
	plan.Activated = activated
	n := len(activated)

	// Partition trials by their jitter-drawn asserted set, encoded as a
	// bitmask over activated indices (the decoder asserts ≤ 32 wordlines).
	// The distinct-set count is tiny, so first-seen dedup is a linear
	// scan over scratch instead of a map.
	if cap(s.planMasks) < trials {
		s.planMasks = make([]uint64, trials)
	}
	masks := s.planMasks[:trials]
	for trial := range masks {
		masks[trial] = 0
	}
	// Rows outer, trials inner: the settling thresholds are trial-invariant,
	// so hoist them and replay only the cached per-trial jitter draws —
	// the same race rowAsserts decides, evaluated once per row.
	params := s.mod.params
	for i, r := range activated {
		if r == rf {
			for trial := range masks {
				masks[trial] |= 1 << uint(i)
			}
			continue
		}
		latchThresh := params.LatchThreshold(s.tab.latchNorm[r], n, opts.Env)
		wlThresh := params.WLThreshold(s.tab.wlNorm[r])
		sigma := params.AssertTransientSigma
		for trial, jn := range s.tab.jitRow(s, r, trials) {
			jit := sigma * jn
			if t.T2+jit >= latchThresh && t.Total()+jit >= wlThresh {
				masks[trial] |= 1 << uint(i)
			}
		}
	}
	uniq, counts := s.planUniq[:0], s.planCounts[:0]
	for trial := 0; trial < trials; trial++ {
		mask := masks[trial]
		found := false
		for k, m := range uniq {
			if m == mask {
				counts[k]++
				found = true
				break
			}
		}
		if !found {
			uniq = append(uniq, mask)
			counts = append(counts, 1)
		}
	}
	s.planUniq, s.planCounts = uniq, counts

	totalRows := 0
	for _, m := range uniq {
		totalRows += bits.OnesCount64(m)
	}
	if cap(s.planRows) < totalRows {
		s.planRows = make([]int, totalRows)
	}
	rowsBuf := s.planRows[:totalRows]
	if cap(s.planSets) < len(uniq) {
		s.planSets = make([]AssertSet, len(uniq))
	}
	sets := s.planSets[:len(uniq)]
	toff, roff := 0, 0
	for k, m := range uniq {
		rows := rowsBuf[roff:roff]
		for j, r := range activated {
			if m>>uint(j)&1 == 1 {
				rows = append(rows, r)
			}
		}
		roff += len(rows)
		sets[k] = AssertSet{Rows: rows, Trials: trialsBuf[toff : toff : toff+counts[k]]}
		toff += counts[k]
	}
	for trial, m := range masks {
		for k := range uniq {
			if uniq[k] == m {
				sets[k].Trials = append(sets[k].Trials, trial)
				break
			}
		}
	}
	s.planSets = sets
	plan.Sets = sets

	if t.T1 >= s.mod.params.SenseLatchTime {
		plan.Mode = ModeCopy
	} else {
		plan.Mode = ModeShare
		plan.Viable = s.shareViable(rf, rs, t, opts)
	}
	return plan, nil
}

// ShareResolve computes the trial-invariant det/meta decomposition of
// share-mode sensing for one asserted set, reading the subarray's current
// row contents without modifying them. det receives the bits that resolve
// deterministically to 1; meta the columns inside the reliable sensing
// margin, which flip per trial (see ShareOut).
func (s *Subarray) ShareResolve(det, meta bitvec.Vec, set AssertSet, plan *APAPlan, opts APAOptions) {
	s.shareDetMeta(det.Words(), meta.Words(), plan.RF, set.Rows, plan.T, opts, plan.GroupKey)
}

// ShareOut materializes one trial's share-mode sensing outcome into out:
// the det/meta decomposition overlaid with the trial's metastable coin
// flips, or — for non-viable groups — the fully metastable resolution
// (det/meta are ignored there).
func (s *Subarray) ShareOut(out, det, meta bitvec.Vec, plan *APAPlan, trial int) {
	if !plan.Viable {
		s.metaResolve(out.Words(), plan.GroupKey, trial)
		return
	}
	s.metaOverlay(out.Words(), det.Words(), meta.Words(), plan.GroupKey, trial)
}

// WRFail writes row's weak-write failure mask under a WR overdriving
// nAsserted open rows: bit c set means cell c misses the write. Static —
// identical for every trial of the plan.
func (s *Subarray) WRFail(fail bitvec.Vec, row, nAsserted int) {
	copy(fail.Words(), s.wrFailMask(row, nAsserted))
}

// CopyFail writes row's copy-failure mask for a latched copy of src into
// nAsserted open rows: bit c set means cell c keeps its old charge
// instead of taking src's bit. src must be the resolved source-row data
// (the sense amplifiers' latched value). Static per (row, set).
func (s *Subarray) CopyFail(fail bitvec.Vec, row int, src bitvec.Vec, nAsserted int, plan *APAPlan, opts APAOptions) {
	pTrue, pFalse := s.copyProbs(plan.RF, nAsserted, plan.T, opts)
	mt := s.copyFailMask(row, pTrue)
	mf := s.copyFailMask(row, pFalse)
	fw, sw := fail.Words(), src.Words()
	for i := range fw {
		fw[i] = sw[i]&mt[i] | ^sw[i]&mf[i]
	}
}
