package dram

import (
	"fmt"
	"testing"

	"repro/internal/analog"
)

// opSequence drives a module through a deterministic mix of writes, frac
// stores and APA activations, returning every row readback. Two modules
// in equivalent state must produce identical transcripts.
func opSequence(t *testing.T, m *Module) []string {
	t.Helper()
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 4; row++ {
		if err := sa.FillRow(row, PatternRandom, 0xfeed, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.SetFracRow(2); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.APA(0, 1, apaOpts(10, 4, 0)); err != nil {
		t.Fatal(err)
	}
	var out []string
	for row := 0; row < 4; row++ {
		v, err := sa.ReadRowVec(row)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprint(v.Bools()))
	}
	return out
}

func TestResetRestoresFreshState(t *testing.T) {
	spec := NewSpec("pool-reset", ProfileH, 0x9a7)
	spec.Columns = 256
	params := analog.DefaultParams()
	fresh, err := NewModule(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	recycled, err := NewModule(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	want := opSequence(t, fresh)

	// Dirty the recycled instance with a different op mix, then Reset: the
	// transcript of the canonical sequence must match the fresh module's.
	sa, err := recycled.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 6; row++ {
		if err := sa.FillRow(row, PatternAll1, 1, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sa.SetFracRow(0); err != nil {
		t.Fatal(err)
	}
	if _, err := sa.APA(1, 3, apaOpts(25, 9, 3)); err != nil {
		t.Fatal(err)
	}
	recycled.Reset()

	// Reset clears every subarray, not just the dirtied one.
	for b := 0; b < spec.Banks; b++ {
		for s := 0; s < spec.SubarraysPerBank; s++ {
			sa, err := recycled.Subarray(b, s)
			if err != nil {
				t.Fatal(err)
			}
			v, err := sa.ReadRowVec(0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < v.Len(); i++ {
				if v.Get(i) {
					t.Fatalf("bank %d subarray %d row 0 bit %d still set after Reset", b, s, i)
				}
			}
		}
	}

	got := opSequence(t, recycled)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d after Reset: got %s, fresh %s", i, got[i], want[i])
		}
	}
}

func TestPoolModuleWithoutPoolBuildsFresh(t *testing.T) {
	spec := NewSpec("pool-nil", ProfileH, 0x11)
	spec.Columns = 256
	m, release, err := PoolModule(nil, spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("nil module")
	}
	release() // must be a safe no-op
	if m.Spec().ID != "pool-nil" {
		t.Fatalf("unexpected spec %q", m.Spec().ID)
	}
}
