package dram

import (
	"fmt"
	"math/bits"

	"repro/internal/analog"
	"repro/internal/bitvec"
	"repro/internal/timing"
	"repro/internal/xrand"
)

// Static-draw tags: every source of per-cell/per-row/per-column static
// process variation hashes a distinct tag so draws are independent.
const (
	tagGamma      = 0x01 // per-cell capacitance variation
	tagFrac       = 0x02 // per-cell Frac residual level
	tagTheta      = 0x03 // per-column sense threshold
	tagCoupling   = 0x04 // per-(column, group) coupling noise
	tagLatch      = 0x05 // per-row predecoder latch settle threshold
	tagWL         = 0x06 // per-row wordline settle threshold
	tagWeakWR     = 0x07 // per-cell weak write cells
	tagWeakCopy   = 0x08 // per-cell weak copy destinations
	tagViab       = 0x09 // per-group viability draw
	tagSABias     = 0x0a // per-column sense-amp bias (Frac readout)
	tagJitter     = 0x0b // per-(row, trial) assertion jitter
	tagMeta       = 0x0c // per-(column, trial) metastable resolution
	tagShareLatch = 0x0d // per-group share-mode latch race threshold
)

// chargeFrac is the stored level of a Frac (VDD/2) cell.
const chargeFrac = 0.5

// couplingCacheMax bounds the per-group coupling-noise cache; beyond it
// the cache resets (entries are recomputable at any time).
const couplingCacheMax = 1 << 12

// Subarray is one DRAM subarray: a rows×columns array of cells sharing
// bitlines and sense amplifiers, addressed by a local row decoder. All PUD
// operations take place within a single subarray.
//
// Cell state is packed: every stored charge level is one of {0 V, VDD,
// VDD/2}, so a row is two uint64-packed bit planes — `val` holds the
// solid level and `frac` marks VDD/2 cells (a frac bit implies a zero val
// bit). Row I/O, copy, write-overdrive and sense-amplifier resolution all
// operate 64 columns per word; only the charge-sharing arithmetic of
// share mode is per-column, and it reads its static process-variation
// draws from precomputed tables instead of re-hashing every trial.
type Subarray struct {
	mod      *Module
	bankIdx  int
	saIdx    int
	rows     int
	cols     int
	words    int // uint64 words per row
	val      []uint64
	frac     []uint64
	asserted []int // rows left open by the last APA (until precharge)
	copyMode bool  // whether the last APA latched the sense amps

	// Static draws hoisted out of the trial loops. Per-column and per-row
	// tables are built eagerly (they are O(rows+cols)); per-cell tables
	// are built lazily one row at a time and per-group coupling rows are
	// cached by group key. All entries are pure functions of structural
	// coordinates, so caching never changes a result.
	theta     []float64  // per-column reliable sensing threshold
	saBias    bitvec.Vec // per-column sense-amp bias sign (Frac readout)
	latchNorm []float64  // per-row predecoder latch draw
	wlNorm    []float64  // per-row wordline settle draw

	gammaRows     [][]float64 // per-cell capacitance draws, by row
	fracRows      [][]float64 // per-cell Frac residual draws, by row
	weakWRRows    [][]float64 // per-cell weak-write uniforms, by row
	weakCopyRows  [][]float64 // per-cell weak-copy uniforms, by row
	couplingNorms map[uint64][]float64

	// Scratch reused by the kernels (a subarray is driven by one
	// goroutine at a time; the engine shards per subarray).
	numBuf, denBuf []float64
	rowBuf         bitvec.Vec
	failBuf        bitvec.Vec
}

func newSubarray(m *Module, bankIdx, saIdx int) *Subarray {
	rows := m.dec.Rows()
	cols := m.spec.Columns
	words := bitvec.WordsFor(cols)
	s := &Subarray{
		mod:           m,
		bankIdx:       bankIdx,
		saIdx:         saIdx,
		rows:          rows,
		cols:          cols,
		words:         words,
		val:           make([]uint64, rows*words),
		frac:          make([]uint64, rows*words),
		theta:         make([]float64, cols),
		saBias:        bitvec.New(cols),
		latchNorm:     make([]float64, rows),
		wlNorm:        make([]float64, rows),
		gammaRows:     make([][]float64, rows),
		fracRows:      make([][]float64, rows),
		weakWRRows:    make([][]float64, rows),
		weakCopyRows:  make([][]float64, rows),
		couplingNorms: make(map[uint64][]float64),
		numBuf:        make([]float64, cols),
		denBuf:        make([]float64, cols),
		rowBuf:        bitvec.New(cols),
		failBuf:       bitvec.New(cols),
	}
	for c := 0; c < cols; c++ {
		s.theta[c] = m.params.SenseThreshold(s.colNorm(c, tagTheta))
		s.saBias.Set(c, s.colNorm(c, tagSABias) > 0)
	}
	for r := 0; r < rows; r++ {
		s.latchNorm[r] = s.rowNorm(r, tagLatch)
		s.wlNorm[r] = s.rowNorm(r, tagWL)
	}
	return s
}

// Rows returns the subarray height.
func (s *Subarray) Rows() int { return s.rows }

// Cols returns the simulated bitline count.
func (s *Subarray) Cols() int { return s.cols }

// Bank returns the bank index this subarray belongs to.
func (s *Subarray) Bank() int { return s.bankIdx }

// Index returns the subarray's index within its bank.
func (s *Subarray) Index() int { return s.saIdx }

func (s *Subarray) checkRow(row int) error {
	if row < 0 || row >= s.rows {
		return fmt.Errorf("dram: row %d outside subarray of %d rows", row, s.rows)
	}
	return nil
}

// rowVal returns the packed solid-level plane of one row.
func (s *Subarray) rowVal(row int) []uint64 {
	return s.val[row*s.words : (row+1)*s.words]
}

// rowFrac returns the packed Frac-marker plane of one row.
func (s *Subarray) rowFrac(row int) []uint64 {
	return s.frac[row*s.words : (row+1)*s.words]
}

// key hashes a structural coordinate with the module seed.
func (s *Subarray) key(parts ...uint64) uint64 {
	all := append([]uint64{s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx)}, parts...)
	return xrand.Hash(all...)
}

// cellNorm returns the static standard-normal draw for a cell and tag.
func (s *Subarray) cellNorm(row, col int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		uint64(row), uint64(col), tag)
}

// colNorm returns the static standard-normal draw for a column and tag.
func (s *Subarray) colNorm(col int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		0xffff, uint64(col), tag)
}

// rowNorm returns the static standard-normal draw for a row and tag.
func (s *Subarray) rowNorm(row int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		uint64(row), 0xfffe, tag)
}

// cellRow lazily materializes one row of a per-cell static table.
func (s *Subarray) cellRow(table [][]float64, row int, tag uint64, uniform bool) []float64 {
	if t := table[row]; t != nil {
		return t
	}
	t := make([]float64, s.cols)
	for c := range t {
		if uniform {
			t[c] = xrand.Uniform(s.key(uint64(row), uint64(c), tag))
		} else {
			t[c] = s.cellNorm(row, c, tag)
		}
	}
	table[row] = t
	return t
}

func (s *Subarray) gammaRow(row int) []float64 {
	return s.cellRow(s.gammaRows, row, tagGamma, false)
}

func (s *Subarray) fracRow(row int) []float64 {
	return s.cellRow(s.fracRows, row, tagFrac, false)
}

func (s *Subarray) weakWRRow(row int) []float64 {
	return s.cellRow(s.weakWRRows, row, tagWeakWR, true)
}

func (s *Subarray) weakCopyRow(row int) []float64 {
	return s.cellRow(s.weakCopyRows, row, tagWeakCopy, true)
}

// couplingRow returns the per-column coupling-noise draws of one group.
func (s *Subarray) couplingRow(groupKey uint64) []float64 {
	if t, ok := s.couplingNorms[groupKey]; ok {
		return t
	}
	if len(s.couplingNorms) >= couplingCacheMax {
		s.couplingNorms = make(map[uint64][]float64)
	}
	t := make([]float64, s.cols)
	for c := range t {
		t[c] = xrand.Norm(groupKey, uint64(c), tagCoupling)
	}
	s.couplingNorms[groupKey] = t
	return t
}

// WriteRowVec performs a nominal-timing activate + write + precharge of
// one row from a packed vector: cells take solid charge levels.
func (s *Subarray) WriteRowVec(row int, v bitvec.Vec) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if v.Len() != s.cols {
		return fmt.Errorf("dram: row data has %d bits, want %d", v.Len(), s.cols)
	}
	copy(s.rowVal(row), v.Words())
	clearWords(s.rowFrac(row))
	return nil
}

// WriteRow is the []bool adapter over WriteRowVec.
func (s *Subarray) WriteRow(row int, bits []bool) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if len(bits) != s.cols {
		return fmt.Errorf("dram: row data has %d bits, want %d", len(bits), s.cols)
	}
	return s.WriteRowVec(row, bitvec.FromBools(bits))
}

// FillRow writes a pattern row (see Pattern.Bit) with nominal timing.
func (s *Subarray) FillRow(row int, p Pattern, seed uint64, rowOrdinal int) error {
	return s.WriteRowVec(row, p.FillRowVec(seed, rowOrdinal, s.cols))
}

// SetFracRow performs the Frac operation of FracDRAM on a row: every cell
// is left storing VDD/2, contributing (almost) nothing to later charge
// sharing. It returns an error on modules whose chips do not support Frac
// (Mfr. M, footnote 5); callers fall back to solid neutral rows there.
func (s *Subarray) SetFracRow(row int) error {
	if !s.mod.spec.Profile.FracSupported {
		return fmt.Errorf("dram: %s chips do not support the Frac operation",
			s.mod.spec.Profile.Manufacturer)
	}
	if err := s.checkRow(row); err != nil {
		return err
	}
	clearWords(s.rowVal(row))
	frac := s.rowFrac(row)
	for i := range frac {
		frac[i] = ^uint64(0)
	}
	s.maskRowTail(frac)
	return nil
}

// maskRowTail clears the unused high bits of a row's last word.
func (s *Subarray) maskRowTail(w []uint64) {
	if r := s.cols % 64; r != 0 {
		w[len(w)-1] &= 1<<uint(r) - 1
	}
}

// resolveRow writes the sensed value of a stored row into dst words:
// solid cells read their level, Frac cells resolve to the column's static
// sense-amplifier bias (the paper observes Mfr. M's amplifiers are
// "always biased to one or zero").
func (s *Subarray) resolveRow(dst []uint64, row int) {
	val, frac := s.rowVal(row), s.rowFrac(row)
	bias := s.saBias.Words()
	for i := range dst {
		dst[i] = val[i]&^frac[i] | frac[i]&bias[i]
	}
}

// ReadRowInto performs a nominal-timing read into a caller-owned vector.
func (s *Subarray) ReadRowInto(dst bitvec.Vec, row int) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if dst.Len() != s.cols {
		return fmt.Errorf("dram: read buffer has %d bits, want %d", dst.Len(), s.cols)
	}
	s.resolveRow(dst.Words(), row)
	return nil
}

// ReadRowVec performs a nominal-timing read, returning a packed vector.
func (s *Subarray) ReadRowVec(row int) (bitvec.Vec, error) {
	out := bitvec.New(s.cols)
	if err := s.ReadRowInto(out, row); err != nil {
		return bitvec.Vec{}, err
	}
	return out, nil
}

// ReadRow is the []bool adapter over ReadRowVec.
func (s *Subarray) ReadRow(row int) ([]bool, error) {
	v, err := s.ReadRowVec(row)
	if err != nil {
		return nil, err
	}
	return v.Bools(), nil
}

// RawLevel exposes a cell's stored charge level for tests and the TRNG
// extension.
func (s *Subarray) RawLevel(row, col int) (float64, error) {
	if err := s.checkRow(row); err != nil {
		return 0, err
	}
	if col < 0 || col >= s.cols {
		return 0, fmt.Errorf("dram: column %d outside subarray of %d columns", col, s.cols)
	}
	wi, b := col/64, uint(col%64)
	if s.rowFrac(row)[wi]>>b&1 == 1 {
		return chargeFrac, nil
	}
	return float64(s.rowVal(row)[wi] >> b & 1), nil
}

// MAJSpec tells the APA engine that the charge-share operation implements
// an X-input majority with the given replication factor, enabling the
// group-viability model. A nil spec (plain activation or copy attempts)
// is always viable.
type MAJSpec struct {
	X      int // number of majority inputs
	Copies int // replication factor ⌊N/X⌋
}

// APAOptions parameterizes one ACT→PRE→ACT command sequence.
type APAOptions struct {
	Timings timing.APATimings
	Env     analog.Env
	// Trial indexes the repetition of the experiment; it seeds the
	// per-trial transient draws (assertion jitter, metastable resolutions).
	Trial int
	// PatternCoupling is the data pattern's coupling factor (see
	// Pattern.CouplingFactor); zero for a quiet array.
	PatternCoupling float64
	// MAJ, when non-nil, enables the majority-group viability model.
	MAJ *MAJSpec
}

// Mode describes what the APA sequence did electrically.
type Mode uint8

// APA modes.
const (
	// ModeSingle: the sequence behaved like a normal activation of the
	// second row — either tRP was respected (the latches cleared properly)
	// or the chip's control circuitry guards against the violation
	// (Samsung, §9 Limitation 1).
	ModeSingle Mode = iota
	// ModeShare: charge-share (majority) mode — t1 below the sense-latch
	// point, all activated cells share charge and the amplifier resolves
	// their aggregate perturbation.
	ModeShare
	// ModeCopy: the sense amplifier latched the first row before the
	// second ACT and drives its data into every activated row.
	ModeCopy
)

func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeShare:
		return "share"
	case ModeCopy:
		return "copy"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// APAResult reports the outcome of one APA sequence.
type APAResult struct {
	Mode Mode
	// Activated is the decoder's asserted-wordline set (sorted).
	Activated []int
	// Asserted is the subset whose wordlines actually settled this trial.
	Asserted []int
	// Viable reports whether the majority group resolved deterministically
	// (always true outside share mode or without a MAJSpec).
	Viable bool
}

// APA issues ACT(rf) --t1--> PRE --t2--> ACT(rs) and applies its electrical
// consequences to the array. After APA the asserted rows remain open: a
// subsequent WriteOpenRows models the WR-overdrive step of §3.2, and
// Precharge closes the bank.
func (s *Subarray) APA(rf, rs int, opts APAOptions) (APAResult, error) {
	if err := s.checkRow(rf); err != nil {
		return APAResult{}, err
	}
	if err := s.checkRow(rs); err != nil {
		return APAResult{}, err
	}
	t := opts.Timings.Quantized()
	params := s.mod.params
	jedec := timing.DDR4()

	// Multi-row activation requires the tRP violation (so the predecoder
	// latches keep the first address) on an unguarded chip. Otherwise the
	// sequence is a normal back-to-back activation: only the second row
	// ends up open.
	if !t.ViolatesTRP(jedec) || s.mod.spec.Profile.APAGuarded {
		s.asserted = []int{rs}
		s.copyMode = false
		return APAResult{Mode: ModeSingle, Activated: []int{rs}, Asserted: []int{rs}, Viable: true}, nil
	}

	activated, err := s.mod.dec.ActivatedRows(rf, rs)
	if err != nil {
		return APAResult{}, err
	}

	// Per-row wordline assertion: rf stays asserted from the first ACT;
	// every other row in the set must win the settling race (§4 Obs. 2).
	asserted := make([]int, 0, len(activated))
	n := len(activated)
	for _, r := range activated {
		if r == rf {
			asserted = append(asserted, r)
			continue
		}
		latchThresh := params.LatchThreshold(s.latchNorm[r], n, opts.Env)
		wlThresh := params.WLThreshold(s.wlNorm[r])
		jit := params.AssertTransientSigma *
			xrand.Norm(s.key(uint64(r), uint64(opts.Trial), tagJitter))
		if t.T2+jit >= latchThresh && t.Total()+jit >= wlThresh {
			asserted = append(asserted, r)
		}
	}

	res := APAResult{Activated: activated, Asserted: asserted, Viable: true}
	if t.T1 >= params.SenseLatchTime {
		res.Mode = ModeCopy
		s.applyCopy(rf, asserted, t, opts)
	} else {
		res.Mode = ModeShare
		res.Viable = s.applyShare(rf, rs, asserted, t, opts)
	}
	s.asserted = append([]int(nil), asserted...)
	s.copyMode = res.Mode == ModeCopy
	return res, nil
}

// applyCopy drives the sense amplifiers' latched data (the first row's
// contents) into every asserted row. Weak destination cells keep their old
// charge.
func (s *Subarray) applyCopy(rf int, asserted []int, t timing.APATimings, opts APAOptions) {
	params := s.mod.params
	jedec := timing.DDR4()
	nAct := len(asserted)

	// Collective pull-up droop counts the source cells at solid VDD;
	// Frac cells sit at the midpoint and do not load the pull-ups, even
	// though their readout resolves to the amplifier bias below.
	ones := 0
	for _, w := range s.rowVal(rf) {
		ones += bits.OnesCount64(w)
	}
	onesFrac := float64(ones) / float64(s.cols)

	// Snapshot the resolved source bits (Frac cells take the amplifier
	// bias) before any destination write lands.
	src := s.rowBuf.Words()
	s.resolveRow(src, rf)

	// The failure probability is constant per driven bit value.
	pTrue := params.CopyFailProb(true, onesFrac, nAct, opts.Env, t.T1, jedec.TRAS)
	pFalse := params.CopyFailProb(false, onesFrac, nAct, opts.Env, t.T1, jedec.TRAS)

	fail := s.failBuf.Words()
	for _, r := range asserted {
		val, frac := s.rowVal(r), s.rowFrac(r)
		if r == rf {
			copy(val, src)
			clearWords(frac)
			continue
		}
		// Static weak-cell draws: a weak destination never takes the
		// copy, so it fails every trial (matching the all-trials success
		// metric).
		u := s.weakCopyRow(r)
		for wi := range fail {
			var m uint64
			sw := src[wi]
			base := wi * 64
			nb := s.cols - base
			if nb > 64 {
				nb = 64
			}
			for b := 0; b < nb; b++ {
				p := pFalse
				if sw>>uint(b)&1 == 1 {
					p = pTrue
				}
				if u[base+b] < p {
					m |= 1 << uint(b)
				}
			}
			fail[wi] = m
		}
		for wi := range val {
			val[wi] = src[wi]&^fail[wi] | val[wi]&fail[wi]
			frac[wi] &= fail[wi]
		}
	}
}

// applyShare performs charge-share (majority) resolution on every bitline
// and writes the sensed value back into all asserted cells. It returns
// whether the group was viable (see analog.Params.ViabilityZ); non-viable
// groups resolve metastably, differently on every trial.
//
// The kernel accumulates the per-column perturbation numerator and
// denominator row by row from the packed planes (reading the hoisted
// gamma/Frac tables instead of hashing), then resolves sense amplifiers
// one 64-column word block at a time, packing result bits directly.
func (s *Subarray) applyShare(rf, rs int, asserted []int, t timing.APATimings, opts APAOptions) bool {
	params := s.mod.params
	drive := params.DriveFactor(opts.Env)
	rfWeight := params.RFWeight(t.Total()) * drive

	// Share-mode group latch race: below the per-group t2 threshold the
	// whole group's sensing is metastable (Obs. 7's t2 = 1.5 ns cliff).
	shareThresh := params.ShareLatchThreshold(
		xrand.Norm(s.key(uint64(rf), uint64(rs), tagShareLatch)))
	viable := t.T2 >= shareThresh

	if viable && opts.MAJ != nil {
		bias := s.mod.spec.Profile.ViabilityBias
		if opts.MAJ.X > s.mod.spec.Profile.MaxMAJ {
			bias -= 3 // beyond the vendor's supported majority width
		}
		if !s.mod.spec.Profile.FracSupported {
			// Solid-value neutral rows rely on amplifier bias
			// cancellation, which is slightly less robust than Frac.
			bias -= 0.1
		}
		z := params.ViabilityZ(opts.MAJ.X, opts.MAJ.Copies, t.Total(),
			opts.PatternCoupling, bias)
		viable = xrand.Norm(s.key(uint64(rf), uint64(rs), tagViab)) < z
	}

	groupKey := s.key(uint64(rf), uint64(rs))
	out := s.rowBuf.Words()

	if !viable {
		// Metastable group: the amplifier race resolves arbitrarily,
		// differently every trial.
		for wi := range out {
			var word uint64
			base := wi * 64
			nb := s.cols - base
			if nb > 64 {
				nb = 64
			}
			for b := 0; b < nb; b++ {
				if xrand.Hash(groupKey, uint64(base+b), uint64(opts.Trial), tagMeta)&1 == 1 {
					word |= 1 << uint(b)
				}
			}
			out[wi] = word
		}
	} else {
		num, den := s.numBuf, s.denBuf
		for c := 0; c < s.cols; c++ {
			num[c] = 0
			den[c] = params.BitlineCapRatio
		}
		for _, r := range asserted {
			w := drive
			if r == rf {
				w = rfWeight
			}
			gamma := s.gammaRow(r)
			val, frac := s.rowVal(r), s.rowFrac(r)
			var fracTab []float64
			if anyWord(frac) {
				fracTab = s.fracRow(r)
			}
			for wi := 0; wi < s.words; wi++ {
				vw, fw := val[wi], frac[wi]
				base := wi * 64
				nb := s.cols - base
				if nb > 64 {
					nb = 64
				}
				for b := 0; b < nb; b++ {
					c := base + b
					var level float64
					switch {
					case fw>>uint(b)&1 == 1:
						level = params.FracSigma * fracTab[c]
					case vw>>uint(b)&1 == 1:
						level = 1
					default:
						level = -1
					}
					wc := w * (1 + params.CellCapSigma*gamma[c])
					num[c] += wc * level
					den[c] += wc
				}
			}
		}
		coup := s.couplingRow(groupKey)
		for wi := 0; wi < s.words; wi++ {
			var word uint64
			base := wi * 64
			nb := s.cols - base
			if nb > 64 {
				nb = 64
			}
			for b := 0; b < nb; b++ {
				c := base + b
				delta := 0.0
				if den[c] > 0 {
					delta = params.VDD / 2 * num[c] / den[c]
				}
				coupling := params.CouplingNoise(coup[c], opts.PatternCoupling)
				theta := s.theta[c]
				v := delta + coupling
				switch {
				case v > theta:
					word |= 1 << uint(b)
				case v < -theta:
					// resolves to 0
				case xrand.Hash(groupKey, uint64(c), uint64(opts.Trial), tagMeta, 1)&1 == 1:
					// Below the reliable sensing margin: metastable per
					// trial.
					word |= 1 << uint(b)
				}
			}
			out[wi] = word
		}
	}
	for _, r := range asserted {
		copy(s.rowVal(r), out)
		clearWords(s.rowFrac(r))
	}
	return viable
}

// WriteOpenRowsVec models the WR command of the §3.2 methodology: the
// write drivers overdrive the bitlines, updating the cells of every row
// still asserted from the preceding APA. Weak cells (static, rare) miss
// the update. It returns an error if no rows are open.
func (s *Subarray) WriteOpenRowsVec(v bitvec.Vec) error {
	if len(s.asserted) == 0 {
		return fmt.Errorf("dram: WR with no open rows (issue APA first)")
	}
	if v.Len() != s.cols {
		return fmt.Errorf("dram: WR data has %d bits, want %d", v.Len(), s.cols)
	}
	pFail := s.mod.params.WriteFailProb(len(s.asserted))
	data := v.Words()
	fail := s.failBuf.Words()
	for _, r := range s.asserted {
		u := s.weakWRRow(r)
		for wi := range fail {
			var m uint64
			base := wi * 64
			nb := s.cols - base
			if nb > 64 {
				nb = 64
			}
			for b := 0; b < nb; b++ {
				if u[base+b] < pFail {
					m |= 1 << uint(b)
				}
			}
			fail[wi] = m
		}
		val, frac := s.rowVal(r), s.rowFrac(r)
		for wi := range val {
			val[wi] = data[wi]&^fail[wi] | val[wi]&fail[wi]
			frac[wi] &= fail[wi]
		}
	}
	return nil
}

// WriteOpenRows is the []bool adapter over WriteOpenRowsVec.
func (s *Subarray) WriteOpenRows(bits []bool) error {
	return s.WriteOpenRowsVec(bitvec.FromBools(bits))
}

// OpenRows returns the rows currently asserted (open) after an APA.
func (s *Subarray) OpenRows() []int { return append([]int(nil), s.asserted...) }

// Precharge closes the bank: wordlines de-assert and the bitlines return
// to VDD/2. Cell contents are unaffected (they were restored or
// overwritten while open).
func (s *Subarray) Precharge() {
	s.asserted = nil
	s.copyMode = false
}

// clearWords zeroes a word slice.
func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// anyWord reports whether any bit is set in the word slice.
func anyWord(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return true
		}
	}
	return false
}
