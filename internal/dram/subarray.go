package dram

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/analog"
	"repro/internal/bitvec"
	"repro/internal/timing"
	"repro/internal/xrand"
)

// Static-draw tags: every source of per-cell/per-row/per-column static
// process variation hashes a distinct tag so draws are independent.
const (
	tagGamma      = 0x01 // per-cell capacitance variation
	tagFrac       = 0x02 // per-cell Frac residual level
	tagTheta      = 0x03 // per-column sense threshold
	tagCoupling   = 0x04 // per-(column, group) coupling noise
	tagLatch      = 0x05 // per-row predecoder latch settle threshold
	tagWL         = 0x06 // per-row wordline settle threshold
	tagWeakWR     = 0x07 // per-cell weak write cells
	tagWeakCopy   = 0x08 // per-cell weak copy destinations
	tagViab       = 0x09 // per-group viability draw
	tagSABias     = 0x0a // per-column sense-amp bias (Frac readout)
	tagJitter     = 0x0b // per-(row, trial) assertion jitter
	tagMeta       = 0x0c // per-(column, trial) metastable resolution
	tagShareLatch = 0x0d // per-group share-mode latch race threshold
)

// chargeFrac is the stored level of a Frac (VDD/2) cell.
const chargeFrac = 0.5

// couplingCacheMax bounds the per-group coupling-noise cache; beyond it
// the cache resets (entries are recomputable at any time).
const couplingCacheMax = 1 << 12

// copyMaskCacheMax bounds the per-(row, probability) copy fail-mask
// cache: envelope searches sweep t1 continuously, so the probability
// coordinate is unbounded. Entries are recomputable.
const copyMaskCacheMax = 1 << 12

// Subarray is one DRAM subarray: a rows×columns array of cells sharing
// bitlines and sense amplifiers, addressed by a local row decoder. All PUD
// operations take place within a single subarray.
//
// Cell state is packed: every stored charge level is one of {0 V, VDD,
// VDD/2}, so a row is two uint64-packed bit planes — `val` holds the
// solid level and `frac` marks VDD/2 cells (a frac bit implies a zero val
// bit). Row I/O, copy, write-overdrive and sense-amplifier resolution all
// operate 64 columns per word; only the charge-sharing arithmetic of
// share mode is per-column, and it reads its static process-variation
// draws from precomputed tables instead of re-hashing every trial.
//
// Static process-variation tables are shared across every Subarray
// instance with the same simulation identity (see saTables); the fields
// below memoize the shared rows locally so the hot path never locks. The
// hot path is also allocation-free: structural keys extend a precomputed
// hash chain, decoder activation sets and weak-cell failure masks are
// cached, and the kernels reuse per-subarray scratch (a subarray is
// driven by one goroutine at a time; the engine shards per subarray).
type Subarray struct {
	mod      *Module
	bankIdx  int
	saIdx    int
	rows     int
	cols     int
	words    int         // uint64 words per row
	keyChain xrand.Chain // Hash(seed, bank, sa, ...) prefix
	val      []uint64
	frac     []uint64
	asserted []int // rows left open by the last APA (until precharge)
	copyMode bool  // whether the last APA latched the sense amps

	// Shared static tables plus local memos of their immutable rows.
	tab           *saTables
	gammaLocal    [][]float64
	fracLocal     [][]float64
	weakWRLocal   [][]float64
	weakCopyLocal [][]float64
	wbaseLocal    [][]float64
	couplingLocal map[uint64][]float64
	// Local memo of the drive-weighted rows, one slot per weight role
	// (non-RF drive, RF weight); a slot resets when its weight changes
	// (once per sweep cell at most).
	wcW     [2]uint64
	wcLocal [2][][]float64

	// Derived caches: decoder activation sets per (rf, rs) and packed
	// weak-cell failure masks per (row, probability coordinate). All are
	// pure functions of structural coordinates.
	actCache      map[uint64][]int
	wrMaskCache   map[uint32][]uint64
	copyMaskCache map[maskKey][]uint64

	// Cached charge-share denominators per asserted set (see
	// shareDetMeta): the denominator accumulation is data-independent, so
	// the sweeps' per-pattern calls over the same set reuse one pass. A
	// small ring with exact (rf, rows, weight-bits) matching — never a
	// hash — so a hit is guaranteed to be the identical accumulation.
	denCache []denEntry
	denNext  int

	// Scratch reused by the kernels.
	assertedBuf     []int
	numBuf, denBuf  []float64
	rowBuf, failBuf bitvec.Vec
	detBuf, metaBuf bitvec.Vec

	// PlanAPA scratch: a plan aliases these buffers and stays valid until
	// the next PlanAPA call on this subarray.
	planBuf    APAPlan
	planSets   []AssertSet
	planMasks  []uint64 // per-trial asserted bitmask
	planUniq   []uint64 // distinct masks, first-seen order
	planCounts []int    // trials per distinct mask
	planTrials []int    // backing for the sets' Trials slices
	planRows   []int    // backing for the sets' Rows slices
}

// maskKey addresses one cached weak-copy failure mask.
type maskKey struct {
	row   int
	pBits uint64
}

// intsEqual reports whether two int slices are element-wise equal.
func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// denEntry is one cached charge-share denominator accumulation.
type denEntry struct {
	rf         int
	rows       []int // copy of the asserted set, exact-match key
	drive, rfW uint64
	den        []float64
}

// denCacheCap bounds the per-subarray denominator ring: large enough to
// cover every (group, set) of one sweep cell so the next pattern hits.
const denCacheCap = 16

func newSubarray(m *Module, bankIdx, saIdx int) *Subarray {
	rows := m.dec.Rows()
	cols := m.spec.Columns
	words := bitvec.WordsFor(cols)
	s := &Subarray{
		mod:      m,
		bankIdx:  bankIdx,
		saIdx:    saIdx,
		rows:     rows,
		cols:     cols,
		words:    words,
		keyChain: xrand.Begin().Mix(m.spec.Seed).Mix(uint64(bankIdx)).Mix(uint64(saIdx)),
		val:      make([]uint64, rows*words),
		frac:     make([]uint64, rows*words),

		gammaLocal:    make([][]float64, rows),
		fracLocal:     make([][]float64, rows),
		weakWRLocal:   make([][]float64, rows),
		weakCopyLocal: make([][]float64, rows),
		wbaseLocal:    make([][]float64, rows),
		couplingLocal: make(map[uint64][]float64),

		actCache:      make(map[uint64][]int),
		wrMaskCache:   make(map[uint32][]uint64),
		copyMaskCache: make(map[maskKey][]uint64),

		assertedBuf: make([]int, 0, m.dec.MaxSimultaneousRows()),
		numBuf:      make([]float64, cols),
		denBuf:      make([]float64, cols),
		rowBuf:      bitvec.New(cols),
		failBuf:     bitvec.New(cols),
		detBuf:      bitvec.New(cols),
		metaBuf:     bitvec.New(cols),
	}
	s.attachTables()
	return s
}

// Rows returns the subarray height.
func (s *Subarray) Rows() int { return s.rows }

// Cols returns the simulated bitline count.
func (s *Subarray) Cols() int { return s.cols }

// Bank returns the bank index this subarray belongs to.
func (s *Subarray) Bank() int { return s.bankIdx }

// Index returns the subarray's index within its bank.
func (s *Subarray) Index() int { return s.saIdx }

func (s *Subarray) checkRow(row int) error {
	if row < 0 || row >= s.rows {
		return fmt.Errorf("dram: row %d outside subarray of %d rows", row, s.rows)
	}
	return nil
}

// rowVal returns the packed solid-level plane of one row.
func (s *Subarray) rowVal(row int) []uint64 {
	return s.val[row*s.words : (row+1)*s.words]
}

// rowFrac returns the packed Frac-marker plane of one row.
func (s *Subarray) rowFrac(row int) []uint64 {
	return s.frac[row*s.words : (row+1)*s.words]
}

// key2 and key3 hash structural coordinates with the module seed by
// extending the precomputed (seed, bank, subarray) chain — equal to
// xrand.Hash(seed, bank, sa, parts...) without building a parts slice.
func (s *Subarray) key2(a, b uint64) uint64 {
	return s.keyChain.Mix(a).Mix(b).Sum()
}

func (s *Subarray) key3(a, b, c uint64) uint64 {
	return s.keyChain.Mix(a).Mix(b).Mix(c).Sum()
}

// cellNorm returns the static standard-normal draw for a cell and tag.
func (s *Subarray) cellNorm(row, col int, tag uint64) float64 {
	return xrand.NormOf(s.key3(uint64(row), uint64(col), tag))
}

// colNorm returns the static standard-normal draw for a column and tag.
func (s *Subarray) colNorm(col int, tag uint64) float64 {
	return xrand.NormOf(s.key3(0xffff, uint64(col), tag))
}

// rowNorm returns the static standard-normal draw for a row and tag.
func (s *Subarray) rowNorm(row int, tag uint64) float64 {
	return xrand.NormOf(s.key3(uint64(row), 0xfffe, tag))
}

// gammaRow returns the per-cell capacitance draws of one row, memoizing
// the shared immutable row locally so later accesses skip the table lock.
func (s *Subarray) gammaRow(row int) []float64 {
	if r := s.gammaLocal[row]; r != nil {
		return r
	}
	r := s.tab.cellRow(s, s.tab.gammaRows, row, tagGamma, false)
	s.gammaLocal[row] = r
	return r
}

func (s *Subarray) fracRow(row int) []float64 {
	if r := s.fracLocal[row]; r != nil {
		return r
	}
	r := s.tab.cellRow(s, s.tab.fracRows, row, tagFrac, false)
	s.fracLocal[row] = r
	return r
}

func (s *Subarray) wbaseRow(row int) []float64 {
	if r := s.wbaseLocal[row]; r != nil {
		return r
	}
	r := s.tab.wbaseRow(s, row)
	s.wbaseLocal[row] = r
	return r
}

// wcRow returns the row's drive-weighted charge-share weights
// (w·wbase[c]), memoizing the shared immutable rows locally per weight
// slot so the accumulation loop's accesses skip the table lock.
func (s *Subarray) wcRow(row int, w float64, slot int) []float64 {
	wb := math.Float64bits(w)
	if s.wcW[slot] != wb || s.wcLocal[slot] == nil {
		s.wcW[slot] = wb
		s.wcLocal[slot] = make([][]float64, s.rows)
	}
	if r := s.wcLocal[slot][row]; r != nil {
		return r
	}
	r := s.tab.wcRow(s, row, w)
	s.wcLocal[slot][row] = r
	return r
}

func (s *Subarray) weakWRRow(row int) []float64 {
	if r := s.weakWRLocal[row]; r != nil {
		return r
	}
	r := s.tab.cellRow(s, s.tab.weakWRRows, row, tagWeakWR, true)
	s.weakWRLocal[row] = r
	return r
}

func (s *Subarray) weakCopyRow(row int) []float64 {
	if r := s.weakCopyLocal[row]; r != nil {
		return r
	}
	r := s.tab.cellRow(s, s.tab.weakCopyRows, row, tagWeakCopy, true)
	s.weakCopyLocal[row] = r
	return r
}

// couplingRow returns the per-column coupling-noise draws of one group.
func (s *Subarray) couplingRow(groupKey uint64) []float64 {
	if r, ok := s.couplingLocal[groupKey]; ok {
		return r
	}
	if len(s.couplingLocal) >= couplingCacheMax {
		s.couplingLocal = make(map[uint64][]float64)
	}
	r := s.tab.couplingRow(s.cols, groupKey)
	s.couplingLocal[groupKey] = r
	return r
}

// activatedRows returns the decoder's activation set for the APA pair,
// cached per subarray. The returned slice is shared: callers must not
// mutate it.
func (s *Subarray) activatedRows(rf, rs int) ([]int, error) {
	k := uint64(rf)<<32 | uint64(uint32(rs))
	if rows, ok := s.actCache[k]; ok {
		return rows, nil
	}
	rows, err := s.mod.dec.ActivatedRows(rf, rs)
	if err != nil {
		return nil, err
	}
	s.actCache[k] = rows
	return rows, nil
}

// uniformMask packs "uniform draw below p" per column into words: the
// static weak-cell selection for probability p.
func (s *Subarray) uniformMask(u []float64, p float64) []uint64 {
	m := make([]uint64, s.words)
	for wi := range m {
		var word uint64
		base := wi * 64
		nb := s.cols - base
		if nb > 64 {
			nb = 64
		}
		for b := 0; b < nb; b++ {
			if u[base+b] < p {
				word |= 1 << uint(b)
			}
		}
		m[wi] = word
	}
	return m
}

// wrFailMask returns the packed weak-write failure mask of one row under
// a WR that overdrives nAsserted open rows. Pure function of the two
// coordinates (the failure probability depends only on the open-row
// count), cached; callers must not mutate the returned words.
func (s *Subarray) wrFailMask(row, nAsserted int) []uint64 {
	k := uint32(row)<<8 | uint32(nAsserted)
	if m, ok := s.wrMaskCache[k]; ok {
		return m
	}
	m := s.uniformMask(s.weakWRRow(row), s.mod.params.WriteFailProb(nAsserted))
	s.wrMaskCache[k] = m
	return m
}

// copyFailMask returns the packed weak-copy mask of one destination row
// at failure probability p (one of the two per-bit-value probabilities).
// Cached per (row, probability bits); callers must not mutate it.
func (s *Subarray) copyFailMask(row int, p float64) []uint64 {
	k := maskKey{row: row, pBits: math.Float64bits(p)}
	if m, ok := s.copyMaskCache[k]; ok {
		return m
	}
	if len(s.copyMaskCache) >= copyMaskCacheMax {
		s.copyMaskCache = make(map[maskKey][]uint64)
	}
	m := s.uniformMask(s.weakCopyRow(row), p)
	s.copyMaskCache[k] = m
	return m
}

// WriteRowVec performs a nominal-timing activate + write + precharge of
// one row from a packed vector: cells take solid charge levels.
func (s *Subarray) WriteRowVec(row int, v bitvec.Vec) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if v.Len() != s.cols {
		return fmt.Errorf("dram: row data has %d bits, want %d", v.Len(), s.cols)
	}
	copy(s.rowVal(row), v.Words())
	clearWords(s.rowFrac(row))
	return nil
}

// WriteRow is the []bool adapter over WriteRowVec.
func (s *Subarray) WriteRow(row int, bits []bool) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if len(bits) != s.cols {
		return fmt.Errorf("dram: row data has %d bits, want %d", len(bits), s.cols)
	}
	return s.WriteRowVec(row, bitvec.FromBools(bits))
}

// FillRow writes a pattern row (see Pattern.Bit) with nominal timing.
func (s *Subarray) FillRow(row int, p Pattern, seed uint64, rowOrdinal int) error {
	return s.WriteRowVec(row, p.FillRowVec(seed, rowOrdinal, s.cols))
}

// SetFracRow performs the Frac operation of FracDRAM on a row: every cell
// is left storing VDD/2, contributing (almost) nothing to later charge
// sharing. It returns an error on modules whose chips do not support Frac
// (Mfr. M, footnote 5); callers fall back to solid neutral rows there.
func (s *Subarray) SetFracRow(row int) error {
	if !s.mod.spec.Profile.FracSupported {
		return fmt.Errorf("dram: %s chips do not support the Frac operation",
			s.mod.spec.Profile.Manufacturer)
	}
	if err := s.checkRow(row); err != nil {
		return err
	}
	clearWords(s.rowVal(row))
	frac := s.rowFrac(row)
	for i := range frac {
		frac[i] = ^uint64(0)
	}
	s.maskRowTail(frac)
	return nil
}

// maskRowTail clears the unused high bits of a row's last word.
func (s *Subarray) maskRowTail(w []uint64) {
	if r := s.cols % 64; r != 0 {
		w[len(w)-1] &= 1<<uint(r) - 1
	}
}

// resolveRow writes the sensed value of a stored row into dst words:
// solid cells read their level, Frac cells resolve to the column's static
// sense-amplifier bias (the paper observes Mfr. M's amplifiers are
// "always biased to one or zero").
func (s *Subarray) resolveRow(dst []uint64, row int) {
	val, frac := s.rowVal(row), s.rowFrac(row)
	bias := s.tab.saBias.Words()
	for i := range dst {
		dst[i] = val[i]&^frac[i] | frac[i]&bias[i]
	}
}

// ReadRowInto performs a nominal-timing read into a caller-owned vector.
func (s *Subarray) ReadRowInto(dst bitvec.Vec, row int) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if dst.Len() != s.cols {
		return fmt.Errorf("dram: read buffer has %d bits, want %d", dst.Len(), s.cols)
	}
	s.resolveRow(dst.Words(), row)
	return nil
}

// ReadRowVec performs a nominal-timing read, returning a packed vector.
func (s *Subarray) ReadRowVec(row int) (bitvec.Vec, error) {
	out := bitvec.New(s.cols)
	if err := s.ReadRowInto(out, row); err != nil {
		return bitvec.Vec{}, err
	}
	return out, nil
}

// ReadRow is the []bool adapter over ReadRowVec.
func (s *Subarray) ReadRow(row int) ([]bool, error) {
	v, err := s.ReadRowVec(row)
	if err != nil {
		return nil, err
	}
	return v.Bools(), nil
}

// RawLevel exposes a cell's stored charge level for tests and the TRNG
// extension.
func (s *Subarray) RawLevel(row, col int) (float64, error) {
	if err := s.checkRow(row); err != nil {
		return 0, err
	}
	if col < 0 || col >= s.cols {
		return 0, fmt.Errorf("dram: column %d outside subarray of %d columns", col, s.cols)
	}
	wi, b := col/64, uint(col%64)
	if s.rowFrac(row)[wi]>>b&1 == 1 {
		return chargeFrac, nil
	}
	return float64(s.rowVal(row)[wi] >> b & 1), nil
}

// MAJSpec tells the APA engine that the charge-share operation implements
// an X-input majority with the given replication factor, enabling the
// group-viability model. A nil spec (plain activation or copy attempts)
// is always viable.
type MAJSpec struct {
	X      int // number of majority inputs
	Copies int // replication factor ⌊N/X⌋
}

// APAOptions parameterizes one ACT→PRE→ACT command sequence.
type APAOptions struct {
	Timings timing.APATimings
	Env     analog.Env
	// Trial indexes the repetition of the experiment; it seeds the
	// per-trial transient draws (assertion jitter, metastable resolutions).
	Trial int
	// PatternCoupling is the data pattern's coupling factor (see
	// Pattern.CouplingFactor); zero for a quiet array.
	PatternCoupling float64
	// MAJ, when non-nil, enables the majority-group viability model.
	MAJ *MAJSpec
}

// Mode describes what the APA sequence did electrically.
type Mode uint8

// APA modes.
const (
	// ModeSingle: the sequence behaved like a normal activation of the
	// second row — either tRP was respected (the latches cleared properly)
	// or the chip's control circuitry guards against the violation
	// (Samsung, §9 Limitation 1).
	ModeSingle Mode = iota
	// ModeShare: charge-share (majority) mode — t1 below the sense-latch
	// point, all activated cells share charge and the amplifier resolves
	// their aggregate perturbation.
	ModeShare
	// ModeCopy: the sense amplifier latched the first row before the
	// second ACT and drives its data into every activated row.
	ModeCopy
)

func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeShare:
		return "share"
	case ModeCopy:
		return "copy"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// APAResult reports the outcome of one APA sequence.
type APAResult struct {
	Mode Mode
	// Activated is the decoder's asserted-wordline set (sorted). The
	// slice is shared with the subarray's caches: read-only, valid until
	// the next APA.
	Activated []int
	// Asserted is the subset whose wordlines actually settled this trial.
	// Like Activated it aliases reused storage: read-only, valid until
	// the next APA.
	Asserted []int
	// Viable reports whether the majority group resolved deterministically
	// (always true outside share mode or without a MAJSpec).
	Viable bool
}

// APA issues ACT(rf) --t1--> PRE --t2--> ACT(rs) and applies its electrical
// consequences to the array. After APA the asserted rows remain open: a
// subsequent WriteOpenRows models the WR-overdrive step of §3.2, and
// Precharge closes the bank.
func (s *Subarray) APA(rf, rs int, opts APAOptions) (APAResult, error) {
	if err := s.checkRow(rf); err != nil {
		return APAResult{}, err
	}
	if err := s.checkRow(rs); err != nil {
		return APAResult{}, err
	}
	t := opts.Timings.Quantized()
	params := s.mod.params
	jedec := timing.DDR4()

	// Multi-row activation requires the tRP violation (so the predecoder
	// latches keep the first address) on an unguarded chip. Otherwise the
	// sequence is a normal back-to-back activation: only the second row
	// ends up open.
	if !t.ViolatesTRP(jedec) || s.mod.spec.Profile.APAGuarded {
		s.asserted = append(s.assertedBuf[:0], rs)
		s.copyMode = false
		return APAResult{Mode: ModeSingle, Activated: s.asserted, Asserted: s.asserted, Viable: true}, nil
	}

	activated, err := s.activatedRows(rf, rs)
	if err != nil {
		return APAResult{}, err
	}

	// Per-row wordline assertion: rf stays asserted from the first ACT;
	// every other row in the set must win the settling race (§4 Obs. 2).
	asserted := s.assertedBuf[:0]
	n := len(activated)
	for _, r := range activated {
		if r == rf {
			asserted = append(asserted, r)
			continue
		}
		if s.rowAsserts(r, n, opts.Trial, t, opts.Env) {
			asserted = append(asserted, r)
		}
	}

	res := APAResult{Activated: activated, Asserted: asserted, Viable: true}
	if t.T1 >= params.SenseLatchTime {
		res.Mode = ModeCopy
		s.applyCopy(rf, asserted, t, opts)
	} else {
		res.Mode = ModeShare
		res.Viable = s.applyShare(rf, rs, asserted, t, opts)
	}
	s.asserted = asserted
	s.copyMode = res.Mode == ModeCopy
	return res, nil
}

// rowAsserts draws one row's wordline settling race for one trial. The
// per-trial jitter draw comes from the shared jitRow cache — the same
// value the hash would produce inline.
func (s *Subarray) rowAsserts(r, nActivated, trial int, t timing.APATimings, env analog.Env) bool {
	params := s.mod.params
	latchThresh := params.LatchThreshold(s.tab.latchNorm[r], nActivated, env)
	wlThresh := params.WLThreshold(s.tab.wlNorm[r])
	jit := params.AssertTransientSigma * s.tab.jitRow(s, r, trial+1)[trial]
	return t.T2+jit >= latchThresh && t.Total()+jit >= wlThresh
}

// copyProbs returns the per-driven-bit-value failure probabilities of a
// latched copy into nAct open rows, reading the source row's current
// pull-up load. Trial-invariant.
func (s *Subarray) copyProbs(rf, nAct int, t timing.APATimings, opts APAOptions) (pTrue, pFalse float64) {
	params := s.mod.params
	jedec := timing.DDR4()

	// Collective pull-up droop counts the source cells at solid VDD;
	// Frac cells sit at the midpoint and do not load the pull-ups, even
	// though their readout resolves to the amplifier bias below.
	ones := 0
	for _, w := range s.rowVal(rf) {
		ones += bits.OnesCount64(w)
	}
	onesFrac := float64(ones) / float64(s.cols)
	pTrue = params.CopyFailProb(true, onesFrac, nAct, opts.Env, t.T1, jedec.TRAS)
	pFalse = params.CopyFailProb(false, onesFrac, nAct, opts.Env, t.T1, jedec.TRAS)
	return pTrue, pFalse
}

// applyCopy drives the sense amplifiers' latched data (the first row's
// contents) into every asserted row. Weak destination cells keep their old
// charge. The per-bit-value failure draws are static, so the weak-cell
// masks come from the (row, probability) cache and the write collapses to
// word ops.
func (s *Subarray) applyCopy(rf int, asserted []int, t timing.APATimings, opts APAOptions) {
	pTrue, pFalse := s.copyProbs(rf, len(asserted), t, opts)

	// Snapshot the resolved source bits (Frac cells take the amplifier
	// bias) before any destination write lands.
	src := s.rowBuf.Words()
	s.resolveRow(src, rf)

	for _, r := range asserted {
		val, frac := s.rowVal(r), s.rowFrac(r)
		if r == rf {
			copy(val, src)
			clearWords(frac)
			continue
		}
		// Static weak-cell draws: a weak destination never takes the
		// copy, so it fails every trial (matching the all-trials success
		// metric).
		mt := s.copyFailMask(r, pTrue)
		mf := s.copyFailMask(r, pFalse)
		for wi := range val {
			fail := src[wi]&mt[wi] | ^src[wi]&mf[wi]
			val[wi] = src[wi]&^fail | val[wi]&fail
			frac[wi] &= fail
		}
	}
}

// shareViable draws the share-mode group viability: the group latch race
// (Obs. 7's t2 cliff) and, for majority operations, the viability model.
// Trial-invariant: both draws hash only group coordinates.
func (s *Subarray) shareViable(rf, rs int, t timing.APATimings, opts APAOptions) bool {
	params := s.mod.params

	// Share-mode group latch race: below the per-group t2 threshold the
	// whole group's sensing is metastable (Obs. 7's t2 = 1.5 ns cliff).
	shareThresh := params.ShareLatchThreshold(
		xrand.Norm(s.key3(uint64(rf), uint64(rs), tagShareLatch)))
	viable := t.T2 >= shareThresh

	if viable && opts.MAJ != nil {
		bias := s.mod.spec.Profile.ViabilityBias
		if opts.MAJ.X > s.mod.spec.Profile.MaxMAJ {
			bias -= 3 // beyond the vendor's supported majority width
		}
		if !s.mod.spec.Profile.FracSupported {
			// Solid-value neutral rows rely on amplifier bias
			// cancellation, which is slightly less robust than Frac.
			bias -= 0.1
		}
		z := params.ViabilityZ(opts.MAJ.X, opts.MAJ.Copies, t.Total(),
			opts.PatternCoupling, bias)
		viable = xrand.Norm(s.key3(uint64(rf), uint64(rs), tagViab)) < z
	}
	return viable
}

// shareDetMeta computes the trial-invariant decomposition of share-mode
// sensing for one asserted set: det gets the bits the amplifiers resolve
// deterministically to 1, meta the columns within the reliable sensing
// margin (metastable, resolved per trial by metaOverlay). Everything here
// — charge accumulation, coupling noise, thresholds — depends only on the
// asserted rows' current contents and static draws.
//
// The kernel accumulates the per-column perturbation numerator and
// denominator row by row from the packed planes (reading the hoisted
// gamma/Frac tables instead of hashing), then resolves sense amplifiers
// one 64-column word block at a time, packing result bits directly.
func (s *Subarray) shareDetMeta(det, meta []uint64, rf int, asserted []int,
	t timing.APATimings, opts APAOptions, groupKey uint64) {

	params := s.mod.params
	drive := params.DriveFactor(opts.Env)
	rfWeight := params.RFWeight(t.Total()) * drive
	// Retention stress decays stored levels toward VDD/2. The factor is
	// exactly 1 at Retention = 0, which keeps the solid-level fast path
	// below eligible and the kernel bit-identical to the pre-retention
	// model there.
	ret := 1.0
	if opts.Env.Retention != 0 {
		ret = params.RetentionLevelFactor(opts.Env)
	}

	num, den := s.numBuf, s.denBuf
	// The denominator accumulation is data-independent — per column it is
	// BitlineCapRatio plus the asserted rows' weights in row order — so a
	// ring entry matching (rf, rows, weight bits) exactly holds the
	// bit-identical result of the den side of the loop below, and the
	// accumulation can skip it.
	denHit := false
	db, wbits := math.Float64bits(drive), math.Float64bits(rfWeight)
	for i := range s.denCache {
		e := &s.denCache[i]
		if e.rf == rf && e.drive == db && e.rfW == wbits && intsEqual(e.rows, asserted) {
			copy(den, e.den)
			denHit = true
			break
		}
	}
	for c := 0; c < s.cols; c++ {
		num[c] = 0
		if !denHit {
			den[c] = params.BitlineCapRatio
		}
	}
	for _, r := range asserted {
		w, slot := drive, 0
		if r == rf {
			w, slot = rfWeight, 1
		}
		// wcw[c] is the cached w·(1 + CellCapSigma·gamma[c]) — the
		// identical multiply the inline expression did, shared across
		// sets, trials and data patterns (see saTables.wcRow).
		wcw := s.wcRow(r, w, slot)
		val, frac := s.rowVal(r), s.rowFrac(r)
		var fracTab []float64
		if anyWord(frac) {
			fracTab = s.fracRow(r)
		}
		for wi := 0; wi < s.words; wi++ {
			vw, fw := val[wi], frac[wi]
			base := wi * 64
			nb := s.cols - base
			if nb > 64 {
				nb = 64
			}
			// Word-local subslices let the compiler elide the per-column
			// bounds checks; the arithmetic is unchanged.
			nm, dn, wcs := num[base:base+nb], den[base:base+nb], wcw[base:base+nb]
			if fw == 0 && ret == 1 {
				// Fast path: no Frac cells in the word, so level is ±1 and
				// the sign multiply collapses to a sign-bit flip — wc is
				// positive, and IEEE multiplication by exact ±1.0 only
				// toggles the sign bit, so this is bit-identical to the
				// general path below.
				if denHit {
					for b := range nm {
						sb := (vw>>uint(b)&1 ^ 1) << 63
						nm[b] += math.Float64frombits(math.Float64bits(wcs[b]) | sb)
					}
					continue
				}
				for b := range nm {
					wc := wcs[b]
					sb := (vw>>uint(b)&1 ^ 1) << 63
					nm[b] += math.Float64frombits(math.Float64bits(wc) | sb)
					dn[b] += wc
				}
				continue
			}
			for b := range nm {
				var level float64
				switch {
				case fw>>uint(b)&1 == 1:
					level = params.FracSigma * fracTab[base+b]
				case vw>>uint(b)&1 == 1:
					level = 1
				default:
					level = -1
				}
				wc := wcs[b]
				nm[b] += wc * level * ret
				if !denHit {
					dn[b] += wc
				}
			}
		}
	}
	if !denHit {
		// Publish this set's denominators to the ring (round-robin evict).
		if s.denCache == nil {
			s.denCache = make([]denEntry, 0, denCacheCap)
		}
		e := denEntry{rf: rf, rows: append([]int(nil), asserted...),
			drive: db, rfW: wbits, den: append([]float64(nil), den...)}
		if len(s.denCache) < denCacheCap {
			s.denCache = append(s.denCache, e)
		} else {
			s.denCache[s.denNext] = e
			s.denNext = (s.denNext + 1) % denCacheCap
		}
	}
	coup := s.couplingRow(groupKey)
	theta := s.tab.theta
	// VDD/2 and CouplingSigma·patternFactor are loop-invariant prefixes of
	// left-associative products — hoisting them performs the identical
	// float sequence.
	half := params.VDD / 2
	cs := params.CouplingSigma * opts.PatternCoupling
	if opts.Env.Disturb != 0 {
		// Aggressor bitlines swing during the victim's sensing window,
		// amplifying the static coupling offsets. Gated so the quiet-array
		// zero point performs the identical float sequence.
		cs *= params.CouplingDisturbFactor(opts.Env)
	}
	for wi := 0; wi < s.words; wi++ {
		var dw, mw uint64
		base := wi * 64
		nb := s.cols - base
		if nb > 64 {
			nb = 64
		}
		nm, dn := num[base:base+nb], den[base:base+nb]
		cp, th := coup[base:base+nb], theta[base:base+nb]
		for b := range nm {
			delta := 0.0
			if dn[b] > 0 {
				delta = half * nm[b] / dn[b]
			}
			v := delta + cs*cp[b]
			switch {
			case v > th[b]:
				dw |= 1 << uint(b)
			case v < -th[b]:
				// resolves to 0
			default:
				// Below the reliable sensing margin: metastable per trial.
				mw |= 1 << uint(b)
			}
		}
		det[wi] = dw
		meta[wi] = mw
	}
}

// metaOverlay materializes one trial's sensing outcome from the det/meta
// decomposition: deterministic bits pass through, metastable columns take
// their per-trial coin from the cached coin plane — the identical draw
// the per-bit hash made, assembled with word ops.
func (s *Subarray) metaOverlay(out, det, meta []uint64, groupKey uint64, trial int) {
	coin := s.tab.metaPlane(s, groupKey, trial, true)
	for wi := range out {
		out[wi] = det[wi] | meta[wi]&coin[wi]
	}
}

// metaResolve fills one trial's sensing outcome of a non-viable group:
// the amplifier race resolves arbitrarily, differently every trial (the
// cached plane holds exactly the per-column draws of this trial).
func (s *Subarray) metaResolve(out []uint64, groupKey uint64, trial int) {
	copy(out, s.tab.metaPlane(s, groupKey, trial, false))
}

// applyShare performs charge-share (majority) resolution on every bitline
// and writes the sensed value back into all asserted cells. It returns
// whether the group was viable (see analog.Params.ViabilityZ); non-viable
// groups resolve metastably, differently on every trial.
func (s *Subarray) applyShare(rf, rs int, asserted []int, t timing.APATimings, opts APAOptions) bool {
	viable := s.shareViable(rf, rs, t, opts)
	groupKey := s.key2(uint64(rf), uint64(rs))
	out := s.rowBuf.Words()

	if !viable {
		s.metaResolve(out, groupKey, opts.Trial)
	} else {
		det, meta := s.detBuf.Words(), s.metaBuf.Words()
		s.shareDetMeta(det, meta, rf, asserted, t, opts, groupKey)
		s.metaOverlay(out, det, meta, groupKey, opts.Trial)
	}
	for _, r := range asserted {
		copy(s.rowVal(r), out)
		clearWords(s.rowFrac(r))
	}
	return viable
}

// WriteOpenRowsVec models the WR command of the §3.2 methodology: the
// write drivers overdrive the bitlines, updating the cells of every row
// still asserted from the preceding APA. Weak cells (static, rare) miss
// the update — their masks come from the (row, open-row count) cache, so
// the write is pure word ops. It returns an error if no rows are open.
func (s *Subarray) WriteOpenRowsVec(v bitvec.Vec) error {
	if len(s.asserted) == 0 {
		return fmt.Errorf("dram: WR with no open rows (issue APA first)")
	}
	if v.Len() != s.cols {
		return fmt.Errorf("dram: WR data has %d bits, want %d", v.Len(), s.cols)
	}
	data := v.Words()
	for _, r := range s.asserted {
		fail := s.wrFailMask(r, len(s.asserted))
		val, frac := s.rowVal(r), s.rowFrac(r)
		for wi := range val {
			val[wi] = data[wi]&^fail[wi] | val[wi]&fail[wi]
			frac[wi] &= fail[wi]
		}
	}
	return nil
}

// WriteOpenRows is the []bool adapter over WriteOpenRowsVec.
func (s *Subarray) WriteOpenRows(bits []bool) error {
	return s.WriteOpenRowsVec(bitvec.FromBools(bits))
}

// OpenRows returns the rows currently asserted (open) after an APA.
func (s *Subarray) OpenRows() []int { return append([]int(nil), s.asserted...) }

// Precharge closes the bank: wordlines de-assert and the bitlines return
// to VDD/2. Cell contents are unaffected (they were restored or
// overwritten while open).
func (s *Subarray) Precharge() {
	s.asserted = nil
	s.copyMode = false
}

// clearWords zeroes a word slice.
func clearWords(w []uint64) {
	for i := range w {
		w[i] = 0
	}
}

// anyWord reports whether any bit is set in the word slice.
func anyWord(w []uint64) bool {
	for _, x := range w {
		if x != 0 {
			return true
		}
	}
	return false
}
