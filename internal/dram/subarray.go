package dram

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/timing"
	"repro/internal/xrand"
)

// Static-draw tags: every source of per-cell/per-row/per-column static
// process variation hashes a distinct tag so draws are independent.
const (
	tagGamma      = 0x01 // per-cell capacitance variation
	tagFrac       = 0x02 // per-cell Frac residual level
	tagTheta      = 0x03 // per-column sense threshold
	tagCoupling   = 0x04 // per-(column, group) coupling noise
	tagLatch      = 0x05 // per-row predecoder latch settle threshold
	tagWL         = 0x06 // per-row wordline settle threshold
	tagWeakWR     = 0x07 // per-cell weak write cells
	tagWeakCopy   = 0x08 // per-cell weak copy destinations
	tagViab       = 0x09 // per-group viability draw
	tagSABias     = 0x0a // per-column sense-amp bias (Frac readout)
	tagJitter     = 0x0b // per-(row, trial) assertion jitter
	tagMeta       = 0x0c // per-(column, trial) metastable resolution
	tagShareLatch = 0x0d // per-group share-mode latch race threshold
)

// chargeFrac is the stored level of a Frac (VDD/2) cell.
const chargeFrac = 0.5

// Subarray is one DRAM subarray: a rows×columns array of cells sharing
// bitlines and sense amplifiers, addressed by a local row decoder. All PUD
// operations take place within a single subarray.
type Subarray struct {
	mod      *Module
	bankIdx  int
	saIdx    int
	rows     int
	cols     int
	charge   []float32 // rows*cols stored levels: 0, 1, or chargeFrac
	asserted []int     // rows left open by the last APA (until precharge)
	copyMode bool      // whether the last APA latched the sense amps
}

func newSubarray(m *Module, bankIdx, saIdx int) *Subarray {
	rows := m.dec.Rows()
	cols := m.spec.Columns
	return &Subarray{
		mod:     m,
		bankIdx: bankIdx,
		saIdx:   saIdx,
		rows:    rows,
		cols:    cols,
		charge:  make([]float32, rows*cols),
	}
}

// Rows returns the subarray height.
func (s *Subarray) Rows() int { return s.rows }

// Cols returns the simulated bitline count.
func (s *Subarray) Cols() int { return s.cols }

// Bank returns the bank index this subarray belongs to.
func (s *Subarray) Bank() int { return s.bankIdx }

// Index returns the subarray's index within its bank.
func (s *Subarray) Index() int { return s.saIdx }

func (s *Subarray) checkRow(row int) error {
	if row < 0 || row >= s.rows {
		return fmt.Errorf("dram: row %d outside subarray of %d rows", row, s.rows)
	}
	return nil
}

func (s *Subarray) idx(row, col int) int { return row*s.cols + col }

// key hashes a structural coordinate with the module seed.
func (s *Subarray) key(parts ...uint64) uint64 {
	all := append([]uint64{s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx)}, parts...)
	return xrand.Hash(all...)
}

// cellNorm returns the static standard-normal draw for a cell and tag.
func (s *Subarray) cellNorm(row, col int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		uint64(row), uint64(col), tag)
}

// colNorm returns the static standard-normal draw for a column and tag.
func (s *Subarray) colNorm(col int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		0xffff, uint64(col), tag)
}

// rowNorm returns the static standard-normal draw for a row and tag.
func (s *Subarray) rowNorm(row int, tag uint64) float64 {
	return xrand.Norm(s.mod.spec.Seed, uint64(s.bankIdx), uint64(s.saIdx),
		uint64(row), 0xfffe, tag)
}

// WriteRow performs a nominal-timing activate + write + precharge of one
// row: cells take solid charge levels.
func (s *Subarray) WriteRow(row int, bits []bool) error {
	if err := s.checkRow(row); err != nil {
		return err
	}
	if len(bits) != s.cols {
		return fmt.Errorf("dram: row data has %d bits, want %d", len(bits), s.cols)
	}
	base := s.idx(row, 0)
	for c, b := range bits {
		if b {
			s.charge[base+c] = 1
		} else {
			s.charge[base+c] = 0
		}
	}
	return nil
}

// FillRow writes a pattern row (see Pattern.Bit) with nominal timing.
func (s *Subarray) FillRow(row int, p Pattern, seed uint64, rowOrdinal int) error {
	return s.WriteRow(row, p.FillRow(seed, rowOrdinal, s.cols))
}

// SetFracRow performs the Frac operation of FracDRAM on a row: every cell
// is left storing VDD/2, contributing (almost) nothing to later charge
// sharing. It returns an error on modules whose chips do not support Frac
// (Mfr. M, footnote 5); callers fall back to solid neutral rows there.
func (s *Subarray) SetFracRow(row int) error {
	if !s.mod.spec.Profile.FracSupported {
		return fmt.Errorf("dram: %s chips do not support the Frac operation",
			s.mod.spec.Profile.Manufacturer)
	}
	if err := s.checkRow(row); err != nil {
		return err
	}
	base := s.idx(row, 0)
	for c := 0; c < s.cols; c++ {
		s.charge[base+c] = chargeFrac
	}
	return nil
}

// ReadRow performs a nominal-timing read. Frac cells resolve to the
// column's static sense-amplifier bias (the paper observes Mfr. M's
// amplifiers are "always biased to one or zero").
func (s *Subarray) ReadRow(row int) ([]bool, error) {
	if err := s.checkRow(row); err != nil {
		return nil, err
	}
	out := make([]bool, s.cols)
	base := s.idx(row, 0)
	for c := range out {
		ch := s.charge[base+c]
		switch {
		case ch > 0.5+1e-6:
			out[c] = true
		case ch < 0.5-1e-6:
			out[c] = false
		default:
			out[c] = s.colNorm(c, tagSABias) > 0
		}
	}
	return out, nil
}

// RawLevel exposes a cell's stored charge level for tests and the TRNG
// extension.
func (s *Subarray) RawLevel(row, col int) (float64, error) {
	if err := s.checkRow(row); err != nil {
		return 0, err
	}
	if col < 0 || col >= s.cols {
		return 0, fmt.Errorf("dram: column %d outside subarray of %d columns", col, s.cols)
	}
	return float64(s.charge[s.idx(row, col)]), nil
}

// MAJSpec tells the APA engine that the charge-share operation implements
// an X-input majority with the given replication factor, enabling the
// group-viability model. A nil spec (plain activation or copy attempts)
// is always viable.
type MAJSpec struct {
	X      int // number of majority inputs
	Copies int // replication factor ⌊N/X⌋
}

// APAOptions parameterizes one ACT→PRE→ACT command sequence.
type APAOptions struct {
	Timings timing.APATimings
	Env     analog.Env
	// Trial indexes the repetition of the experiment; it seeds the
	// per-trial transient draws (assertion jitter, metastable resolutions).
	Trial int
	// PatternCoupling is the data pattern's coupling factor (see
	// Pattern.CouplingFactor); zero for a quiet array.
	PatternCoupling float64
	// MAJ, when non-nil, enables the majority-group viability model.
	MAJ *MAJSpec
}

// Mode describes what the APA sequence did electrically.
type Mode uint8

// APA modes.
const (
	// ModeSingle: the sequence behaved like a normal activation of the
	// second row — either tRP was respected (the latches cleared properly)
	// or the chip's control circuitry guards against the violation
	// (Samsung, §9 Limitation 1).
	ModeSingle Mode = iota
	// ModeShare: charge-share (majority) mode — t1 below the sense-latch
	// point, all activated cells share charge and the amplifier resolves
	// their aggregate perturbation.
	ModeShare
	// ModeCopy: the sense amplifier latched the first row before the
	// second ACT and drives its data into every activated row.
	ModeCopy
)

func (m Mode) String() string {
	switch m {
	case ModeSingle:
		return "single"
	case ModeShare:
		return "share"
	case ModeCopy:
		return "copy"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// APAResult reports the outcome of one APA sequence.
type APAResult struct {
	Mode Mode
	// Activated is the decoder's asserted-wordline set (sorted).
	Activated []int
	// Asserted is the subset whose wordlines actually settled this trial.
	Asserted []int
	// Viable reports whether the majority group resolved deterministically
	// (always true outside share mode or without a MAJSpec).
	Viable bool
}

// APA issues ACT(rf) --t1--> PRE --t2--> ACT(rs) and applies its electrical
// consequences to the array. After APA the asserted rows remain open: a
// subsequent WriteOpenRows models the WR-overdrive step of §3.2, and
// Precharge closes the bank.
func (s *Subarray) APA(rf, rs int, opts APAOptions) (APAResult, error) {
	if err := s.checkRow(rf); err != nil {
		return APAResult{}, err
	}
	if err := s.checkRow(rs); err != nil {
		return APAResult{}, err
	}
	t := opts.Timings.Quantized()
	params := s.mod.params
	jedec := timing.DDR4()

	// Multi-row activation requires the tRP violation (so the predecoder
	// latches keep the first address) on an unguarded chip. Otherwise the
	// sequence is a normal back-to-back activation: only the second row
	// ends up open.
	if !t.ViolatesTRP(jedec) || s.mod.spec.Profile.APAGuarded {
		s.asserted = []int{rs}
		s.copyMode = false
		return APAResult{Mode: ModeSingle, Activated: []int{rs}, Asserted: []int{rs}, Viable: true}, nil
	}

	activated, err := s.mod.dec.ActivatedRows(rf, rs)
	if err != nil {
		return APAResult{}, err
	}

	// Per-row wordline assertion: rf stays asserted from the first ACT;
	// every other row in the set must win the settling race (§4 Obs. 2).
	asserted := make([]int, 0, len(activated))
	n := len(activated)
	for _, r := range activated {
		if r == rf {
			asserted = append(asserted, r)
			continue
		}
		latchThresh := params.LatchThreshold(s.rowNorm(r, tagLatch), n, opts.Env)
		wlThresh := params.WLThreshold(s.rowNorm(r, tagWL))
		jit := params.AssertTransientSigma *
			xrand.Norm(s.key(uint64(r), uint64(opts.Trial), tagJitter))
		if t.T2+jit >= latchThresh && t.Total()+jit >= wlThresh {
			asserted = append(asserted, r)
		}
	}

	res := APAResult{Activated: activated, Asserted: asserted, Viable: true}
	if t.T1 >= params.SenseLatchTime {
		res.Mode = ModeCopy
		s.applyCopy(rf, asserted, t, opts)
	} else {
		res.Mode = ModeShare
		res.Viable = s.applyShare(rf, rs, asserted, t, opts)
	}
	s.asserted = append([]int(nil), asserted...)
	s.copyMode = res.Mode == ModeCopy
	return res, nil
}

// applyCopy drives the sense amplifiers' latched data (the first row's
// contents) into every asserted row. Weak destination cells keep their old
// charge.
func (s *Subarray) applyCopy(rf int, asserted []int, t timing.APATimings, opts APAOptions) {
	params := s.mod.params
	jedec := timing.DDR4()
	nAct := len(asserted)
	srcBase := s.idx(rf, 0)
	// Collective pull-up droop depends on the fraction of 1s driven
	// across the amplifier stripe.
	ones := 0
	for c := 0; c < s.cols; c++ {
		if s.charge[srcBase+c] > 0.5 {
			ones++
		}
	}
	onesFrac := float64(ones) / float64(s.cols)
	for c := 0; c < s.cols; c++ {
		ch := s.charge[srcBase+c]
		var bit bool
		switch {
		case ch > 0.5+1e-6:
			bit = true
		case ch < 0.5-1e-6:
			bit = false
		default:
			bit = s.colNorm(c, tagSABias) > 0
		}
		pFail := params.CopyFailProb(bit, onesFrac, nAct, opts.Env, t.T1, jedec.TRAS)
		var level float32
		if bit {
			level = 1
		}
		for _, r := range asserted {
			if r != rf {
				// Static weak-cell draw: a weak destination never takes
				// the copy, so it fails every trial (matching the
				// all-trials success metric).
				u := xrand.Uniform(s.key(uint64(r), uint64(c), tagWeakCopy))
				if u < pFail {
					continue
				}
			}
			s.charge[s.idx(r, c)] = level
		}
	}
}

// applyShare performs charge-share (majority) resolution on every bitline
// and writes the sensed value back into all asserted cells. It returns
// whether the group was viable (see analog.Params.ViabilityZ); non-viable
// groups resolve metastably, differently on every trial.
func (s *Subarray) applyShare(rf, rs int, asserted []int, t timing.APATimings, opts APAOptions) bool {
	params := s.mod.params
	drive := params.DriveFactor(opts.Env)
	rfWeight := params.RFWeight(t.Total()) * drive

	// Share-mode group latch race: below the per-group t2 threshold the
	// whole group's sensing is metastable (Obs. 7's t2 = 1.5 ns cliff).
	shareThresh := params.ShareLatchThreshold(
		xrand.Norm(s.key(uint64(rf), uint64(rs), tagShareLatch)))
	viable := t.T2 >= shareThresh

	if viable && opts.MAJ != nil {
		bias := s.mod.spec.Profile.ViabilityBias
		if opts.MAJ.X > s.mod.spec.Profile.MaxMAJ {
			bias -= 3 // beyond the vendor's supported majority width
		}
		if !s.mod.spec.Profile.FracSupported {
			// Solid-value neutral rows rely on amplifier bias
			// cancellation, which is slightly less robust than Frac.
			bias -= 0.1
		}
		z := params.ViabilityZ(opts.MAJ.X, opts.MAJ.Copies, t.Total(),
			opts.PatternCoupling, bias)
		viable = xrand.Norm(s.key(uint64(rf), uint64(rs), tagViab)) < z
	}

	groupKey := s.key(uint64(rf), uint64(rs))
	terms := make([]analog.CellTerm, 0, len(asserted))
	for c := 0; c < s.cols; c++ {
		var bit bool
		if !viable {
			// Metastable group: the amplifier race resolves arbitrarily,
			// differently every trial.
			bit = xrand.Hash(groupKey, uint64(c), uint64(opts.Trial), tagMeta)&1 == 1
		} else {
			terms = terms[:0]
			for _, r := range asserted {
				ch := float64(s.charge[s.idx(r, c)])
				var level float64
				switch {
				case ch > 0.5+1e-6:
					level = 1
				case ch < 0.5-1e-6:
					level = -1
				default:
					level = params.FracSigma * s.cellNorm(r, c, tagFrac)
				}
				w := drive
				if r == rf {
					w = rfWeight
				}
				terms = append(terms, analog.CellTerm{
					Level:     level,
					CapFactor: 1 + params.CellCapSigma*s.cellNorm(r, c, tagGamma),
					Weight:    w,
				})
			}
			delta := params.Perturbation(terms)
			coupling := params.CouplingNoise(
				xrand.Norm(groupKey, uint64(c), tagCoupling), opts.PatternCoupling)
			theta := params.SenseThreshold(s.colNorm(c, tagTheta))
			v := delta + coupling
			if v > theta {
				bit = true
			} else if v < -theta {
				bit = false
			} else {
				// Below the reliable sensing margin: metastable per trial.
				bit = xrand.Hash(groupKey, uint64(c), uint64(opts.Trial), tagMeta, 1)&1 == 1
			}
		}
		var level float32
		if bit {
			level = 1
		}
		for _, r := range asserted {
			s.charge[s.idx(r, c)] = level
		}
	}
	return viable
}

// WriteOpenRows models the WR command of the §3.2 methodology: the write
// drivers overdrive the bitlines, updating the cells of every row still
// asserted from the preceding APA. Weak cells (static, rare) miss the
// update. It returns an error if no rows are open.
func (s *Subarray) WriteOpenRows(bits []bool) error {
	if len(s.asserted) == 0 {
		return fmt.Errorf("dram: WR with no open rows (issue APA first)")
	}
	if len(bits) != s.cols {
		return fmt.Errorf("dram: WR data has %d bits, want %d", len(bits), s.cols)
	}
	pFail := s.mod.params.WriteFailProb(len(s.asserted))
	for _, r := range s.asserted {
		base := s.idx(r, 0)
		for c, b := range bits {
			if xrand.Uniform(s.key(uint64(r), uint64(c), tagWeakWR)) < pFail {
				continue
			}
			if b {
				s.charge[base+c] = 1
			} else {
				s.charge[base+c] = 0
			}
		}
	}
	return nil
}

// OpenRows returns the rows currently asserted (open) after an APA.
func (s *Subarray) OpenRows() []int { return append([]int(nil), s.asserted...) }

// Precharge closes the bank: wordlines de-assert and the bitlines return
// to VDD/2. Cell contents are unaffected (they were restored or
// overwritten while open).
func (s *Subarray) Precharge() {
	s.asserted = nil
	s.copyMode = false
}
