package colenc

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

// sample builds a representative typed table with nulls in every
// nullable column type.
func sample(rows int) *Table {
	t := &Table{
		Name: "sample",
		Meta: [][2]string{{"title", "a sample table"}, {"op", "maj"}},
		Cols: []Column{
			{Field: Field{Name: "id", Type: TypeInt64}},
			{Field: Field{Name: "rate", Type: TypeFloat64, Nullable: true}},
			{Field: Field{Name: "module", Type: TypeString}},
			{Field: Field{Name: "note", Type: TypeString, Nullable: true}},
			{Field: Field{Name: "ok", Type: TypeBool, Nullable: true}},
		},
	}
	for i := 0; i < rows; i++ {
		t.Cols[0].Int64s = append(t.Cols[0].Int64s, int64(i*i-3))
		t.Cols[1].Float64s = append(t.Cols[1].Float64s, float64(i)/7)
		t.Cols[1].Valid = append(t.Cols[1].Valid, i%3 != 0)
		t.Cols[2].Strings = append(t.Cols[2].Strings, strings.Repeat("m", i%5)+"x")
		t.Cols[3].Strings = append(t.Cols[3].Strings, "n")
		t.Cols[3].Valid = append(t.Cols[3].Valid, i%2 == 0)
		t.Cols[4].Bools = append(t.Cols[4].Bools, i%2 == 1)
		t.Cols[4].Valid = append(t.Cols[4].Valid, i%4 != 1)
	}
	return t
}

// normalize canonicalizes a table the way Encode does (zero values at
// null slots, materialized validity) so DeepEqual comparisons hold.
func normalize(t *Table) *Table {
	out := &Table{Name: t.Name, Meta: t.Meta}
	n := t.NumRows()
	for _, c := range t.Cols {
		nc := Column{Field: c.Field}
		if c.Field.Nullable {
			nc.Valid = make([]bool, n)
			for i := 0; i < n; i++ {
				nc.Valid[i] = c.valid(i)
			}
		}
		for i := 0; i < n; i++ {
			v := c.valid(i)
			switch c.Field.Type {
			case TypeInt64:
				x := int64(0)
				if v {
					x = c.Int64s[i]
				}
				nc.Int64s = append(nc.Int64s, x)
			case TypeFloat64:
				x := 0.0
				if v {
					x = c.Float64s[i]
				}
				nc.Float64s = append(nc.Float64s, x)
			case TypeString:
				x := ""
				if v {
					x = c.Strings[i]
				}
				nc.Strings = append(nc.Strings, x)
			default:
				nc.Bools = append(nc.Bools, v && c.Bools[i])
			}
		}
		out.Cols = append(out.Cols, nc)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	for _, rows := range []int{0, 1, 63, 64, 65, 1000} {
		for _, batch := range []int{0, 1, 7, 64, 4096} {
			tab := sample(rows)
			enc, err := Encode(tab, batch)
			if err != nil {
				t.Fatalf("rows=%d batch=%d: %v", rows, batch, err)
			}
			if !bytes.HasPrefix(enc, []byte(Magic)) {
				t.Fatalf("stream does not start with magic")
			}
			dec, err := Decode(enc)
			if err != nil {
				t.Fatalf("rows=%d batch=%d: decode: %v", rows, batch, err)
			}
			if !reflect.DeepEqual(dec, normalize(tab)) {
				t.Fatalf("rows=%d batch=%d: round trip diverged:\n got %+v\nwant %+v", rows, batch, dec, normalize(tab))
			}
		}
	}
}

// TestDeterministicEncoding pins that equal logical tables — regardless
// of garbage values in null slots or a nil vs all-true validity — encode
// to identical bytes, and that chunking is the only thing batch size
// changes.
func TestDeterministicEncoding(t *testing.T) {
	a := sample(100)
	b := sample(100)
	// Garbage in null slots must not leak into the encoding.
	for i := range b.Cols[1].Valid {
		if !b.Cols[1].Valid[i] {
			b.Cols[1].Float64s[i] = math.NaN()
		}
		if !b.Cols[3].Valid[i] {
			b.Cols[3].Strings[i] = "garbage"
		}
	}
	ea, _ := Encode(a, 32)
	eb, _ := Encode(b, 32)
	if !bytes.Equal(ea, eb) {
		t.Fatal("null-slot values leaked into the encoding")
	}
	e2, _ := Encode(a, 32)
	if !bytes.Equal(ea, e2) {
		t.Fatal("encoding is not deterministic")
	}
	e3, _ := Encode(a, 7)
	if bytes.Equal(ea, e3) {
		t.Fatal("different batch sizes should frame differently")
	}
	da, _ := Decode(ea)
	d3, _ := Decode(e3)
	if !reflect.DeepEqual(da, d3) {
		t.Fatal("chunking changed the decoded table")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	enc, _ := Encode(sample(10), 4)
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOTACOLS stream"),
		"truncated":    enc[:len(enc)-3],
		"trailing":     append(append([]byte{}, enc...), 0xff),
		"bad version":  append([]byte(Magic), 0xff, 0xff, 0xff, 0xff),
		"footer rows":  flip(enc, len(enc)-10),
		"footer count": flip(enc, len(enc)-2),
	}
	for name, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// flip returns a copy of b with one byte inverted.
func flip(b []byte, i int) []byte {
	out := append([]byte{}, b...)
	out[i] ^= 0xff
	return out
}

func TestValidate(t *testing.T) {
	bad := sample(4)
	bad.Cols[0].Int64s = bad.Cols[0].Int64s[:2]
	if _, err := Encode(bad, 0); err == nil {
		t.Fatal("Encode accepted ragged columns")
	}
	bad2 := sample(4)
	bad2.Cols[0].Valid = []bool{true, true, false, true} // not nullable
	if _, err := Encode(bad2, 0); err == nil {
		t.Fatal("Encode accepted nulls on a non-nullable column")
	}
}

func TestPage(t *testing.T) {
	tab := sample(25)
	enc, _ := Encode(tab, 0)
	info, err := Info(enc)
	if err != nil || info.TotalRows != 25 || info.BatchCount != 1 {
		t.Fatalf("Info: %+v, %v", info, err)
	}
	var got []Column
	for b := 0; ; b++ {
		page, pi, err := Page(enc, b, 10)
		if err != nil {
			t.Fatal(err)
		}
		if pi.TotalRows != 25 || pi.BatchCount != 3 {
			t.Fatalf("page %d info %+v", b, pi)
		}
		dec, err := Decode(page)
		if err != nil {
			t.Fatalf("page %d: %v", b, err)
		}
		if dec.NumRows() != pi.Rows {
			t.Fatalf("page %d: %d rows; header said %d", b, dec.NumRows(), pi.Rows)
		}
		if got == nil {
			got = dec.Cols
		} else {
			for i := range got {
				got[i].Int64s = append(got[i].Int64s, dec.Cols[i].Int64s...)
				got[i].Float64s = append(got[i].Float64s, dec.Cols[i].Float64s...)
				got[i].Strings = append(got[i].Strings, dec.Cols[i].Strings...)
				got[i].Bools = append(got[i].Bools, dec.Cols[i].Bools...)
				got[i].Valid = append(got[i].Valid, dec.Cols[i].Valid...)
			}
		}
		if pi.Batch == pi.BatchCount-1 {
			break
		}
	}
	want := normalize(tab)
	if !reflect.DeepEqual(got, want.Cols) {
		t.Fatal("concatenated pages diverged from the full table")
	}
	if _, _, err := Page(enc, 3, 10); err == nil {
		t.Fatal("out-of-range page accepted")
	}
	if _, _, err := Page(enc, -1, 10); err == nil {
		t.Fatal("negative page accepted")
	}
}

func TestFromStringsInference(t *testing.T) {
	cols := []string{"n", "t2", "rate", "module", "digest"}
	rows := [][]string{
		{"32", "1.5", "97.50%", "H1", "0016a4ffde12aa00"},
		{"64", "2", "-", "M0", "1234567890123456"},
		{"-", "2.5", "12.00%", "S2", "00ff00ff00ff00ff"},
	}
	tab := FromStrings("fig", [][2]string{{"title", "t"}}, cols, rows)
	wantTypes := []Type{TypeInt64, TypeFloat64, TypeString, TypeString, TypeString}
	wantNullable := []bool{true, false, true, false, false}
	for i, c := range tab.Cols {
		if c.Field.Type != wantTypes[i] {
			t.Errorf("column %q: type %v; want %v", c.Field.Name, c.Field.Type, wantTypes[i])
		}
		if c.Field.Nullable != wantNullable[i] {
			t.Errorf("column %q: nullable %v; want %v", c.Field.Name, c.Field.Nullable, wantNullable[i])
		}
	}
	// The digest column must stay a string: zero-padded hex would not
	// round-trip through integer parsing.
	if tab.Cols[4].Field.Type != TypeString {
		t.Fatal("zero-padded digests must not be inferred as integers")
	}
	gotCols, gotRows := tab.Strings()
	if !reflect.DeepEqual(gotCols, cols) || !reflect.DeepEqual(gotRows, rows) {
		t.Fatalf("Strings() did not invert FromStrings:\n got %v %v\nwant %v %v", gotCols, gotRows, cols, rows)
	}
	// And the encoding survives a byte round trip.
	enc, err := Encode(tab, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	_, decRows := dec.Strings()
	if !reflect.DeepEqual(decRows, rows) {
		t.Fatalf("decoded rows %v; want %v", decRows, rows)
	}
}

func TestTableAccessors(t *testing.T) {
	tab := sample(3)
	if tab.MetaValue("op") != "maj" || tab.MetaValue("nope") != "" {
		t.Fatal("MetaValue")
	}
	if tab.Col("rate") == nil || tab.Col("nope") != nil {
		t.Fatal("Col")
	}
	if got := tab.Col("id").CellString(1); got != "-2" {
		t.Fatalf("CellString(id,1) = %q", got)
	}
	if got := tab.Col("rate").CellString(0); got != NullCell {
		t.Fatalf("CellString(rate,0) = %q; want null cell", got)
	}
}
