// Package colenc is the columnar bulk-result encoding of the serving
// stack: a dependency-free, Arrow-style IPC format for the tabular
// result families (scenario grid points, charexp sweep rows, workload
// fleet reports). A stream carries a schema block, an optional metadata
// block, and one or more record batches of per-column typed buffers —
// int64, float64, string and bool — each with a validity bitmap packed
// on internal/bitvec words. All framing integers are little-endian.
//
// The encoding is fully deterministic: row order is the producer's
// deterministic merge order (the same order the text tables print), null
// slots encode as the column's zero value, and chunking at a given batch
// size is a pure function of the row count — so a columnar payload gets
// a committed byte-level golden exactly like the text render paths
// (DESIGN.md §14).
//
// Stream layout (version 1):
//
//	stream   := magic version schema meta batch* footer
//	magic    := "SIMRACOL" (8 bytes)
//	version  := u32 = 1
//	schema   := u32 ncols { str name, u8 type, u8 nullable }*
//	meta     := u32 npairs { str key, str value }*
//	str      := u32 len, len bytes (UTF-8)
//	batch    := u8 0x01, u32 nrows, column-data* (schema order)
//	column-data := [bitmap]            validity; nullable columns only
//	              int64:   nrows × i64
//	              float64: nrows × u64 (IEEE-754 bits)
//	              bool:    bitmap
//	              string:  u32 nbytes, (nrows+1) × u32 offsets, nbytes bytes
//	bitmap   := u32 nwords, nwords × u64 (bit i = row i, LSB first)
//	footer   := u8 0x00, u64 total_rows, u32 batch_count
package colenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// Magic opens every columnar stream; servers and clients sniff it to
// tell a columnar payload from a rendered text one.
const Magic = "SIMRACOL"

// Version is the framing revision this package reads and writes.
const Version = 1

// DefaultBatchRows is the record-batch chunk size used when the caller
// passes batchRows <= 0.
const DefaultBatchRows = 1024

// Type identifies a column's value encoding.
type Type uint8

const (
	// TypeInt64 is a signed 64-bit integer column.
	TypeInt64 Type = iota
	// TypeFloat64 is an IEEE-754 double column.
	TypeFloat64
	// TypeString is a UTF-8 string column (offset + data buffers).
	TypeString
	// TypeBool is a bit-packed boolean column.
	TypeBool
)

// String names the type for error messages and specs.
func (t Type) String() string {
	switch t {
	case TypeInt64:
		return "int64"
	case TypeFloat64:
		return "float64"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Field describes one column of a schema.
type Field struct {
	Name string
	Type Type
	// Nullable columns carry a validity bitmap per batch; null rows
	// encode as the zero value.
	Nullable bool
}

// Column is one column's field descriptor plus its values. Exactly the
// slice matching Field.Type is populated, with one element per row.
type Column struct {
	Field Field
	// Int64s, Float64s, Strings and Bools hold the values for the
	// corresponding Field.Type; the others stay nil.
	Int64s   []int64
	Float64s []float64
	Strings  []string
	Bools    []bool
	// Valid marks non-null rows; nil means every row is valid. Only
	// meaningful on nullable fields.
	Valid []bool
}

// rows returns the column's row count.
func (c *Column) rows() int {
	switch c.Field.Type {
	case TypeInt64:
		return len(c.Int64s)
	case TypeFloat64:
		return len(c.Float64s)
	case TypeString:
		return len(c.Strings)
	default:
		return len(c.Bools)
	}
}

// valid reports whether row i is non-null.
func (c *Column) valid(i int) bool { return c.Valid == nil || c.Valid[i] }

// Table is a decoded or to-be-encoded columnar result: a name, ordered
// metadata pairs, and the columns. All columns must have equal row
// counts.
type Table struct {
	Name string
	Meta [][2]string
	Cols []Column
}

// NumRows returns the table's row count.
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].rows()
}

// MetaValue returns the first metadata value for key ("" when absent).
func (t *Table) MetaValue(key string) string {
	for _, kv := range t.Meta {
		if kv[0] == key {
			return kv[1]
		}
	}
	return ""
}

// Col returns the column named name, or nil.
func (t *Table) Col(name string) *Column {
	for i := range t.Cols {
		if t.Cols[i].Field.Name == name {
			return &t.Cols[i]
		}
	}
	return nil
}

// Validate checks structural invariants: equal row counts, populated
// buffers matching the field types, and validity slices sized to the
// rows.
func (t *Table) Validate() error {
	n := t.NumRows()
	for i := range t.Cols {
		c := &t.Cols[i]
		if c.Field.Type > TypeBool {
			return fmt.Errorf("colenc: column %q: unknown type %d", c.Field.Name, c.Field.Type)
		}
		if got := c.rows(); got != n {
			return fmt.Errorf("colenc: column %q has %d rows; want %d", c.Field.Name, got, n)
		}
		if c.Valid != nil && len(c.Valid) != n {
			return fmt.Errorf("colenc: column %q validity has %d entries; want %d", c.Field.Name, len(c.Valid), n)
		}
		if c.Valid != nil && !c.Field.Nullable {
			return fmt.Errorf("colenc: column %q carries nulls but is not nullable", c.Field.Name)
		}
	}
	return nil
}

// Slice returns a shallow copy of rows [lo, hi).
func (t *Table) Slice(lo, hi int) *Table {
	out := &Table{Name: t.Name, Meta: t.Meta, Cols: make([]Column, len(t.Cols))}
	for i := range t.Cols {
		c := t.Cols[i]
		s := Column{Field: c.Field}
		switch c.Field.Type {
		case TypeInt64:
			s.Int64s = c.Int64s[lo:hi]
		case TypeFloat64:
			s.Float64s = c.Float64s[lo:hi]
		case TypeString:
			s.Strings = c.Strings[lo:hi]
		default:
			s.Bools = c.Bools[lo:hi]
		}
		if c.Valid != nil {
			s.Valid = c.Valid[lo:hi]
		}
		out.Cols[i] = s
	}
	return out
}

// writer accumulates the little-endian stream.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// bitmap packs bits[lo:hi] as a length-prefixed word run, reusing the
// bitvec packing (bit i of the run = bits[lo+i]). A nil bits slice
// packs all-ones (every row valid / true).
func (w *writer) bitmap(bits []bool, lo, hi int) {
	n := hi - lo
	v := bitvec.New(n)
	if bits == nil {
		v.Fill(true)
	} else {
		for i := 0; i < n; i++ {
			if bits[lo+i] {
				v.Set(i, true)
			}
		}
	}
	words := v.Words()
	w.u32(uint32(len(words)))
	for _, word := range words {
		w.u64(word)
	}
}

// Encode frames the table as one columnar stream, chunked into record
// batches of batchRows rows (<= 0 selects DefaultBatchRows). Null slots
// of nullable columns encode as the zero value, so equal logical tables
// always produce identical bytes.
func Encode(t *Table, batchRows int) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	w := &writer{b: make([]byte, 0, 256)}
	w.b = append(w.b, Magic...)
	w.u32(Version)
	w.str(t.Name)
	w.u32(uint32(len(t.Cols)))
	for i := range t.Cols {
		f := t.Cols[i].Field
		w.str(f.Name)
		w.u8(uint8(f.Type))
		if f.Nullable {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.u32(uint32(len(t.Meta)))
	for _, kv := range t.Meta {
		w.str(kv[0])
		w.str(kv[1])
	}

	total := t.NumRows()
	batches := 0
	for lo := 0; lo < total || (total == 0 && batches == 0); lo += batchRows {
		hi := lo + batchRows
		if hi > total {
			hi = total
		}
		w.u8(0x01)
		w.u32(uint32(hi - lo))
		for i := range t.Cols {
			encodeColumn(w, &t.Cols[i], lo, hi)
		}
		batches++
		if total == 0 {
			break
		}
	}
	w.u8(0x00)
	w.u64(uint64(total))
	w.u32(uint32(batches))
	return w.b, nil
}

// encodeColumn writes one column's buffers for rows [lo, hi).
func encodeColumn(w *writer, c *Column, lo, hi int) {
	if c.Field.Nullable {
		if c.Valid == nil {
			w.bitmap(nil, lo, hi)
		} else {
			w.bitmap(c.Valid, lo, hi)
		}
	}
	switch c.Field.Type {
	case TypeInt64:
		for i := lo; i < hi; i++ {
			var v int64
			if c.valid(i) {
				v = c.Int64s[i]
			}
			w.u64(uint64(v))
		}
	case TypeFloat64:
		for i := lo; i < hi; i++ {
			var v float64
			if c.valid(i) {
				v = c.Float64s[i]
			}
			w.u64(math.Float64bits(v))
		}
	case TypeString:
		nbytes := 0
		for i := lo; i < hi; i++ {
			if c.valid(i) {
				nbytes += len(c.Strings[i])
			}
		}
		w.u32(uint32(nbytes))
		off := uint32(0)
		w.u32(off)
		for i := lo; i < hi; i++ {
			if c.valid(i) {
				off += uint32(len(c.Strings[i]))
			}
			w.u32(off)
		}
		for i := lo; i < hi; i++ {
			if c.valid(i) {
				w.b = append(w.b, c.Strings[i]...)
			}
		}
	default: // TypeBool
		if c.Valid == nil {
			w.bitmap(c.Bools, lo, hi)
			return
		}
		// Mask null slots to false so equal logical tables encode
		// identically.
		masked := make([]bool, hi-lo)
		for i := lo; i < hi; i++ {
			masked[i-lo] = c.Bools[i] && c.Valid[i]
		}
		w.bitmap(masked, 0, hi-lo)
	}
}
