package colenc

import "strconv"

// NullCell is the text tables' not-applicable sentinel; FromStrings maps
// it to a null slot and Strings maps nulls back to it.
const NullCell = "-"

// FromStrings builds a columnar table from a rendered string table (the
// charexp.Table shape) with deterministic, round-trip-safe type
// inference: a column whose every non-null cell formats back identically
// from strconv.ParseInt (base 10) becomes TypeInt64, else from
// strconv.ParseFloat ('g', -1) becomes TypeFloat64, else it stays
// TypeString. Cells equal to NullCell become null slots. The inference
// depends only on the cell contents, so the encoding of a given table is
// stable enough to pin with a byte-level golden.
func FromStrings(name string, meta [][2]string, columns []string, rows [][]string) *Table {
	t := &Table{Name: name, Meta: meta, Cols: make([]Column, len(columns))}
	for ci, colName := range columns {
		cells := make([]string, len(rows))
		valid := make([]bool, len(rows))
		nullable := false
		for ri, row := range rows {
			cell := ""
			if ci < len(row) {
				cell = row[ci]
			}
			if cell == NullCell {
				nullable = true
				continue
			}
			cells[ri], valid[ri] = cell, true
		}
		c := inferColumn(colName, cells, valid)
		c.Field.Nullable = nullable
		if !nullable {
			c.Valid = nil
		}
		t.Cols[ci] = c
	}
	return t
}

// inferColumn types one column from its non-null cells.
func inferColumn(name string, cells []string, valid []bool) Column {
	ints := make([]int64, len(cells))
	isInt := true
	for i, cell := range cells {
		if !valid[i] {
			continue
		}
		v, err := strconv.ParseInt(cell, 10, 64)
		if err != nil || strconv.FormatInt(v, 10) != cell {
			isInt = false
			break
		}
		ints[i] = v
	}
	if isInt {
		return Column{Field: Field{Name: name, Type: TypeInt64}, Int64s: ints, Valid: valid}
	}
	floats := make([]float64, len(cells))
	isFloat := true
	for i, cell := range cells {
		if !valid[i] {
			continue
		}
		v, err := strconv.ParseFloat(cell, 64)
		if err != nil || strconv.FormatFloat(v, 'g', -1, 64) != cell {
			isFloat = false
			break
		}
		floats[i] = v
	}
	if isFloat {
		return Column{Field: Field{Name: name, Type: TypeFloat64}, Float64s: floats, Valid: valid}
	}
	return Column{Field: Field{Name: name, Type: TypeString}, Strings: cells, Valid: valid}
}

// Strings renders the table back into string cells: the inverse of
// FromStrings for tables it produced (ints via FormatInt, floats via
// FormatFloat 'g' -1, nulls as NullCell). Typed tables built directly by
// the result families also render losslessly; their report formatting is
// applied by the family's own reverse formatter instead.
func (t *Table) Strings() (columns []string, rows [][]string) {
	columns = make([]string, len(t.Cols))
	for i := range t.Cols {
		columns[i] = t.Cols[i].Field.Name
	}
	n := t.NumRows()
	rows = make([][]string, n)
	for ri := 0; ri < n; ri++ {
		row := make([]string, len(t.Cols))
		for ci := range t.Cols {
			row[ci] = t.Cols[ci].CellString(ri)
		}
		rows[ri] = row
	}
	return columns, rows
}

// CellString renders row i of the column as the text tables would print
// it (NullCell for null slots).
func (c *Column) CellString(i int) string {
	if !c.valid(i) {
		return NullCell
	}
	switch c.Field.Type {
	case TypeInt64:
		return strconv.FormatInt(c.Int64s[i], 10)
	case TypeFloat64:
		return strconv.FormatFloat(c.Float64s[i], 'g', -1, 64)
	case TypeString:
		return c.Strings[i]
	default:
		return strconv.FormatBool(c.Bools[i])
	}
}
