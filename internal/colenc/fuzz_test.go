package colenc

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzColencRoundTrip derives a deterministic table from the fuzz input
// and checks Encode → Decode is the identity (after null-slot
// canonicalization) at a fuzzed batch size.
func FuzzColencRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, uint16(1))
	f.Add([]byte("SIMRACOL fuzz seed with some text cells"), uint16(3))
	f.Add(bytes.Repeat([]byte{0xff, 0x00}, 200), uint16(64))
	f.Fuzz(func(t *testing.T, data []byte, batch uint16) {
		tab := tableFrom(data)
		enc, err := Encode(tab, int(batch))
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode of our own encoding failed: %v", err)
		}
		want := normalize(tab)
		if !reflect.DeepEqual(dec, want) {
			t.Fatalf("round trip diverged:\n got %+v\nwant %+v", dec, want)
		}
		// Re-encoding the decoded table at the same batch size must
		// reproduce the bytes exactly.
		re, err := Encode(dec, int(batch))
		if err != nil {
			t.Fatalf("re-Encode: %v", err)
		}
		if !bytes.Equal(re, enc) {
			t.Fatal("re-encoding the decoded table changed the bytes")
		}
	})
}

// FuzzColencDecode feeds arbitrary bytes to Decode: it must never panic,
// and anything it accepts must survive encode → decode unchanged.
func FuzzColencDecode(f *testing.F) {
	for _, rows := range []int{0, 5, 70} {
		enc, err := Encode(sample(rows), 16)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := Encode(tab, 16)
		if err != nil {
			t.Fatalf("Encode of a decoded table failed: %v", err)
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(decoded)) failed: %v", err)
		}
		if !reflect.DeepEqual(dec, normalize(tab)) {
			t.Fatal("accepted stream did not round trip")
		}
	})
}

// tableFrom builds a deterministic mixed-type table from fuzz bytes.
func tableFrom(data []byte) *Table {
	at := func(i int) byte {
		if len(data) == 0 {
			return 0
		}
		return data[i%len(data)]
	}
	rows := len(data) / 2
	t := &Table{
		Name: "fuzz",
		Meta: [][2]string{{"len", string(rune('a' + at(0)%26))}},
		Cols: []Column{
			{Field: Field{Name: "i", Type: TypeInt64}},
			{Field: Field{Name: "f", Type: TypeFloat64, Nullable: true}},
			{Field: Field{Name: "s", Type: TypeString, Nullable: true}},
			{Field: Field{Name: "b", Type: TypeBool}},
		},
	}
	for r := 0; r < rows; r++ {
		b0, b1 := at(2*r), at(2*r+1)
		t.Cols[0].Int64s = append(t.Cols[0].Int64s, int64(b0)<<8|int64(b1))
		fv := math.Float64frombits(uint64(b0)<<56 | uint64(b1)<<40 | uint64(r))
		if math.IsNaN(fv) {
			fv = 0 // NaN payloads are not canonical; keep floats comparable
		}
		t.Cols[1].Float64s = append(t.Cols[1].Float64s, fv)
		t.Cols[1].Valid = append(t.Cols[1].Valid, b0%3 != 0)
		t.Cols[2].Strings = append(t.Cols[2].Strings, string(data[:int(b1)%(len(data)+1)]))
		t.Cols[2].Valid = append(t.Cols[2].Valid, b1%4 != 0)
		t.Cols[3].Bools = append(t.Cols[3].Bools, b0&1 == 1)
	}
	return t
}
