package colenc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/bitvec"
)

// reader walks a little-endian stream with bounds checks; every read
// error is sticky and surfaces from finish().
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("colenc: "+format, args...)
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated stream at offset %d (want %d bytes, have %d)", r.off, n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) str() string {
	n := r.u32()
	// A length prefix can never exceed the remaining input; checking
	// before allocating keeps hostile inputs from forcing huge copies.
	b := r.take(int(n))
	return string(b)
}

// bitmap reads a length-prefixed word run into n bools.
func (r *reader) bitmap(n int) []bool {
	words := int(r.u32())
	if r.err == nil && words != bitvec.WordsFor(n) {
		r.fail("bitmap has %d words; want %d for %d rows", words, bitvec.WordsFor(n), n)
	}
	v := bitvec.New(n)
	w := v.Words()
	for i := 0; i < words && r.err == nil; i++ {
		word := r.u64()
		if i < len(w) {
			w[i] = word
		}
	}
	if r.err != nil {
		return nil
	}
	v.MaskTail()
	out := make([]bool, n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// header holds the decoded schema and metadata blocks.
type header struct {
	name   string
	fields []Field
	meta   [][2]string
}

// readHeader decodes magic, version, schema and metadata.
func (r *reader) readHeader() header {
	if string(r.take(len(Magic))) != Magic {
		r.fail("bad magic (not a columnar stream)")
		return header{}
	}
	if v := r.u32(); r.err == nil && v != Version {
		r.fail("unsupported version %d (want %d)", v, Version)
		return header{}
	}
	h := header{name: r.str()}
	ncols := int(r.u32())
	if r.err == nil && ncols > len(r.b) {
		r.fail("schema declares %d columns for a %d-byte stream", ncols, len(r.b))
		return header{}
	}
	for i := 0; i < ncols && r.err == nil; i++ {
		f := Field{Name: r.str(), Type: Type(r.u8()), Nullable: r.u8() != 0}
		if r.err == nil && f.Type > TypeBool {
			r.fail("column %q: unknown type %d", f.Name, f.Type)
			return header{}
		}
		h.fields = append(h.fields, f)
	}
	npairs := int(r.u32())
	if r.err == nil && npairs > len(r.b) {
		r.fail("metadata declares %d pairs for a %d-byte stream", npairs, len(r.b))
		return header{}
	}
	for i := 0; i < npairs && r.err == nil; i++ {
		h.meta = append(h.meta, [2]string{r.str(), r.str()})
	}
	return h
}

// readBatch decodes one record batch into cols (appending rows).
func (r *reader) readBatch(fields []Field, cols []Column) int {
	nrows := int(r.u32())
	// Each row costs at least one byte in some buffer; a count beyond
	// the remaining input is malformed.
	if r.err == nil && nrows > 8*(len(r.b)-r.off)+64 {
		r.fail("batch declares %d rows for %d remaining bytes", nrows, len(r.b)-r.off)
		return 0
	}
	for i := range fields {
		if r.err != nil {
			return 0
		}
		c := &cols[i]
		var valid []bool
		if fields[i].Nullable {
			valid = r.bitmap(nrows)
		}
		switch fields[i].Type {
		case TypeInt64:
			for j := 0; j < nrows && r.err == nil; j++ {
				c.Int64s = append(c.Int64s, int64(r.u64()))
			}
		case TypeFloat64:
			for j := 0; j < nrows && r.err == nil; j++ {
				c.Float64s = append(c.Float64s, math.Float64frombits(r.u64()))
			}
		case TypeString:
			nbytes := int(r.u32())
			offs := make([]uint32, 0, nrows+1)
			for j := 0; j <= nrows && r.err == nil; j++ {
				offs = append(offs, r.u32())
			}
			data := r.take(nbytes)
			if r.err != nil {
				return 0
			}
			prev := uint32(0)
			for j := 0; j < nrows; j++ {
				lo, hi := offs[j], offs[j+1]
				if lo != prev || hi < lo || int(hi) > nbytes {
					r.fail("string column %q: bad offsets [%d, %d) at row %d", fields[i].Name, lo, hi, j)
					return 0
				}
				c.Strings = append(c.Strings, string(data[lo:hi]))
				prev = hi
			}
			if r.err == nil && nrows >= 0 && int(offs[nrows]) != nbytes {
				r.fail("string column %q: offsets end at %d; want %d", fields[i].Name, offs[nrows], nbytes)
				return 0
			}
		default: // TypeBool
			c.Bools = append(c.Bools, r.bitmap(nrows)...)
		}
		if fields[i].Nullable {
			c.Valid = append(c.Valid, valid...)
		}
	}
	return nrows
}

// Decode parses one columnar stream, concatenating its record batches
// into a single table. It is strict: framing errors, unknown types and
// inconsistent footers are all rejected.
func Decode(data []byte) (*Table, error) {
	r := &reader{b: data}
	h := r.readHeader()
	if r.err != nil {
		return nil, r.err
	}
	t := &Table{Name: h.name, Meta: h.meta, Cols: make([]Column, len(h.fields))}
	for i, f := range h.fields {
		t.Cols[i].Field = f
		if f.Nullable {
			// Decoded nullable columns always materialize validity, even
			// for zero rows, so decoded tables compare canonically.
			t.Cols[i].Valid = []bool{}
		}
	}
	total, batches := 0, 0
	for {
		tag := r.u8()
		if r.err != nil {
			return nil, r.err
		}
		if tag == 0x00 {
			break
		}
		if tag != 0x01 {
			return nil, fmt.Errorf("colenc: unknown chunk tag 0x%02x at offset %d", tag, r.off-1)
		}
		total += r.readBatch(h.fields, t.Cols)
		batches++
		if r.err != nil {
			return nil, r.err
		}
	}
	footRows, footBatches := r.u64(), r.u32()
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("colenc: %d trailing bytes after footer", len(data)-r.off)
	}
	if footRows != uint64(total) || int(footBatches) != batches {
		return nil, fmt.Errorf("colenc: footer (%d rows, %d batches) disagrees with stream (%d rows, %d batches)",
			footRows, footBatches, total, batches)
	}
	return t, nil
}

// StreamInfo summarizes a stream's chunking for pagination headers.
type StreamInfo struct {
	// TotalRows is the row count across every batch.
	TotalRows int
	// BatchCount is the number of record batches framed in the stream.
	BatchCount int
}

// Info returns the stream's row and batch counts (from the footer,
// verified against the batches).
func Info(data []byte) (StreamInfo, error) {
	t, err := Decode(data)
	if err != nil {
		return StreamInfo{}, err
	}
	// Re-derive the batch count from the footer: Decode already verified
	// consistency, so reading the trailing 12 bytes is safe here.
	batches := int(binary.LittleEndian.Uint32(data[len(data)-4:]))
	return StreamInfo{TotalRows: t.NumRows(), BatchCount: batches}, nil
}

// PageInfo describes one served page of a columnar stream.
type PageInfo struct {
	// TotalRows and BatchCount describe the full result at the page's
	// batchRows chunking.
	TotalRows  int
	BatchCount int
	// Batch is the served page index; Rows its row count.
	Batch int
	Rows  int
}

// Page re-frames one page of a full columnar stream as a standalone
// stream: rows [batch*batchRows, (batch+1)*batchRows) with the original
// schema and metadata. batchRows <= 0 selects DefaultBatchRows. The page
// index must be in range.
func Page(data []byte, batch, batchRows int) ([]byte, PageInfo, error) {
	if batchRows <= 0 {
		batchRows = DefaultBatchRows
	}
	t, err := Decode(data)
	if err != nil {
		return nil, PageInfo{}, err
	}
	total := t.NumRows()
	count := (total + batchRows - 1) / batchRows
	if count == 0 {
		count = 1
	}
	if batch < 0 || batch >= count {
		return nil, PageInfo{}, fmt.Errorf("colenc: batch %d out of range; valid: 0 .. %d", batch, count-1)
	}
	lo := batch * batchRows
	hi := lo + batchRows
	if hi > total {
		hi = total
	}
	page, err := Encode(t.Slice(lo, hi), batchRows)
	if err != nil {
		return nil, PageInfo{}, err
	}
	return page, PageInfo{TotalRows: total, BatchCount: count, Batch: batch, Rows: hi - lo}, nil
}
