package analog

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	mutations := []func(*Params){
		func(p *Params) { p.VDD = 0 },
		func(p *Params) { p.VPPNominal = -1 },
		func(p *Params) { p.BitlineCapRatio = 0 },
		func(p *Params) { p.SenseThresholdMedian = 0 },
		func(p *Params) { p.SenseThresholdSigmaLn = 0 },
		func(p *Params) { p.TransientNoiseSigma = -1 },
		func(p *Params) { p.SenseLatchTime = 0 },
		func(p *Params) { p.CellCapSigma = -0.1 },
		func(p *Params) { p.WriteWeakProb = 1.5 },
		func(p *Params) { p.CopyWeakBase = -0.1 },
	}
	for i, mut := range mutations {
		p := DefaultParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestEnvValidate(t *testing.T) {
	if err := NominalEnv().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Env{{TempC: -10, VPP: 2.5}, {TempC: 200, VPP: 2.5}, {TempC: 50, VPP: 1.0}, {TempC: 50, VPP: 5}}
	for _, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("Env %+v should be invalid", e)
		}
	}
}

func TestPerturbationBalancedCellsCancel(t *testing.T) {
	p := DefaultParams()
	cells := []CellTerm{
		{Level: 1, CapFactor: 1, Weight: 1},
		{Level: -1, CapFactor: 1, Weight: 1},
	}
	if d := p.Perturbation(cells); math.Abs(d) > 1e-12 {
		t.Fatalf("balanced perturbation = %v, want 0", d)
	}
}

func TestPerturbationSingleCellMatchesUnit(t *testing.T) {
	p := DefaultParams()
	d := p.Perturbation([]CellTerm{{Level: 1, CapFactor: 1, Weight: 1}})
	if math.Abs(d-p.UnitSwing(1)) > 1e-12 {
		t.Fatalf("single-cell perturbation %v != unit swing %v", d, p.UnitSwing(1))
	}
}

func TestPerturbationSignFollowsMajority(t *testing.T) {
	p := DefaultParams()
	f := func(nOnes, nZeros uint8) bool {
		o, z := int(nOnes%16), int(nZeros%16)
		if o == z {
			return true
		}
		cells := make([]CellTerm, 0, o+z)
		for i := 0; i < o; i++ {
			cells = append(cells, CellTerm{Level: 1, CapFactor: 1, Weight: 1})
		}
		for i := 0; i < z; i++ {
			cells = append(cells, CellTerm{Level: -1, CapFactor: 1, Weight: 1})
		}
		d := p.Perturbation(cells)
		if o > z {
			return d > 0
		}
		return d < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbationFracCellNeutral(t *testing.T) {
	p := DefaultParams()
	withFrac := p.Perturbation([]CellTerm{
		{Level: 1, CapFactor: 1, Weight: 1},
		{Level: 0, CapFactor: 1, Weight: 1}, // perfect Frac cell
	})
	// The Frac cell contributes no charge but loads the bitline, so the
	// perturbation is smaller than a lone cell but still positive.
	alone := p.Perturbation([]CellTerm{{Level: 1, CapFactor: 1, Weight: 1}})
	if !(withFrac > 0 && withFrac < alone) {
		t.Fatalf("frac-loaded %v vs alone %v", withFrac, alone)
	}
}

// TestReplicationIncreasesPerturbation reproduces the §7.2 SPICE claim:
// MAJ3(1,1,0) with 32-row activation perturbs the bitline far more than
// with 4-row activation (the paper measures +159%).
func TestReplicationIncreasesPerturbation(t *testing.T) {
	p := DefaultParams()
	maj3 := func(n int) float64 {
		copies := n / 3
		cells := make([]CellTerm, 0, n)
		for i := 0; i < 2*copies; i++ {
			cells = append(cells, CellTerm{Level: 1, CapFactor: 1, Weight: 1})
		}
		for i := 0; i < copies; i++ {
			cells = append(cells, CellTerm{Level: -1, CapFactor: 1, Weight: 1})
		}
		for i := 0; i < n-3*copies; i++ {
			cells = append(cells, CellTerm{Level: 0, CapFactor: 1, Weight: 1})
		}
		return p.Perturbation(cells)
	}
	d4, d32 := maj3(4), maj3(32)
	gain := (d32 - d4) / d4
	if gain < 1.0 || gain > 3.0 {
		t.Fatalf("32-row vs 4-row perturbation gain = %.2f, want within [1,3] (paper: 1.59)", gain)
	}
}

func TestUnitSwingDecreasesWithN(t *testing.T) {
	p := DefaultParams()
	prev := math.Inf(1)
	for _, n := range []int{1, 2, 4, 8, 16, 32} {
		u := p.UnitSwing(n)
		if u <= 0 || u >= prev {
			t.Fatalf("UnitSwing(%d) = %v not decreasing", n, u)
		}
		prev = u
	}
}

func TestSenseThresholdLognormal(t *testing.T) {
	p := DefaultParams()
	if got := p.SenseThreshold(0); math.Abs(got-p.SenseThresholdMedian) > 1e-12 {
		t.Fatalf("median draw = %v", got)
	}
	if p.SenseThreshold(1) <= p.SenseThreshold(0) {
		t.Fatal("threshold must increase with the draw")
	}
	if p.SenseThreshold(-10) <= 0 {
		t.Fatal("lognormal threshold must stay positive")
	}
}

func TestStaticSenseMargin(t *testing.T) {
	// Correct-1 sensing: margin positive when perturbation clears threshold.
	if m := StaticSenseMargin(0.1, 0, 0.05, 1); m != 0.05 {
		t.Fatalf("margin = %v", m)
	}
	// Correct-0 sensing of a negative perturbation.
	if m := StaticSenseMargin(-0.1, 0, 0.05, -1); m != 0.05 {
		t.Fatalf("margin = %v", m)
	}
	// Wrong-direction perturbation yields a negative margin.
	if m := StaticSenseMargin(-0.1, 0, 0.05, 1); m >= 0 {
		t.Fatalf("margin = %v, want negative", m)
	}
}

func TestStableProbMonotone(t *testing.T) {
	p := DefaultParams()
	prev := 0.0
	for _, m := range []float64{-0.02, -0.01, 0, 0.005, 0.01, 0.02, 0.05} {
		got := p.StableProb(m, 8)
		if got < prev {
			t.Fatalf("StableProb not monotone at margin %v", m)
		}
		prev = got
	}
	if p.StableProb(0.05, 8) < 0.999 {
		t.Fatal("large margin should be ~always stable")
	}
	if p.StableProb(-0.05, 8) > 1e-6 {
		t.Fatal("large negative margin should be ~never stable")
	}
}

func TestStableProbZeroNoise(t *testing.T) {
	p := DefaultParams()
	p.TransientNoiseSigma = 0
	if p.StableProb(0.001, 100) != 1 || p.StableProb(-0.001, 100) != 0 {
		t.Fatal("zero-noise StableProb should be a step function")
	}
}

func TestDriveFactorTrends(t *testing.T) {
	p := DefaultParams()
	base := p.DriveFactor(NominalEnv())
	if math.Abs(base-1) > 1e-12 {
		t.Fatalf("nominal drive factor = %v, want 1", base)
	}
	hot := p.DriveFactor(Env{TempC: 90, VPP: 2.5})
	if hot <= base {
		t.Fatal("higher temperature must strengthen drive (Obs. 11)")
	}
	lowVPP := p.DriveFactor(Env{TempC: 50, VPP: 2.1})
	if lowVPP >= base {
		t.Fatal("VPP underscaling must weaken drive (Obs. 13)")
	}
	// Both effects are small: a few percent at the envelope edges.
	if hot > 1.15 || lowVPP < 0.9 {
		t.Fatalf("env effects too large: hot=%v lowVPP=%v", hot, lowVPP)
	}
}

func TestRFWeightGrowsWithTime(t *testing.T) {
	p := DefaultParams()
	if p.RFWeight(4.5) <= 1 {
		t.Fatal("RF weight must exceed 1")
	}
	if p.RFWeight(9) <= p.RFWeight(4.5) {
		t.Fatal("RF weight must grow with connect time")
	}
}

func TestLatchThresholdTrends(t *testing.T) {
	p := DefaultParams()
	e := NominalEnv()
	base := p.LatchThreshold(0, 2, e)
	if p.LatchThreshold(0, 32, e) <= base {
		t.Fatal("more rows must raise the latch threshold (decoder load)")
	}
	if p.LatchThreshold(0, 2, Env{TempC: 90, VPP: 2.5}) <= base {
		t.Fatal("heat must slightly raise the latch threshold (Obs. 3)")
	}
	if p.LatchThreshold(0, 2, Env{TempC: 50, VPP: 2.1}) <= base {
		t.Fatal("VPP underscaling must raise the latch threshold (Obs. 4)")
	}
	if p.LatchThreshold(1, 2, e) <= p.LatchThreshold(-1, 2, e) {
		t.Fatal("threshold must follow the static draw")
	}
}

func TestAssertsAllTrials(t *testing.T) {
	noJitter := func(int) float64 { return 0 }
	always, never := AssertsAllTrials(3.0, 6.0, 1.0, 2.0, 0, 8, noJitter)
	if !always || never {
		t.Fatal("comfortable timings should always assert")
	}
	always, never = AssertsAllTrials(0.5, 1.0, 1.0, 2.0, 0, 8, noJitter)
	if always || !never {
		t.Fatal("hopeless timings should never assert")
	}
	// A row exactly at threshold flickers with alternating jitter.
	alternating := func(trial int) float64 {
		if trial%2 == 0 {
			return 1
		}
		return -1
	}
	always, never = AssertsAllTrials(1.0, 6.0, 1.0, 2.0, 0.1, 8, alternating)
	if always || never {
		t.Fatal("borderline row should be flaky, not always/never")
	}
}

func TestViabilityZTrends(t *testing.T) {
	p := DefaultParams()
	best := 4.5
	// More replication surplus → more viable.
	if p.ViabilityZ(3, 10, best, 1, 0) <= p.ViabilityZ(3, 1, best, 1, 0) {
		t.Fatal("replication must improve viability")
	}
	// Higher X at same copies → less viable.
	if p.ViabilityZ(9, 3, best, 1, 0) >= p.ViabilityZ(3, 3, best, 1, 0) {
		t.Fatal("higher X must hurt viability")
	}
	// Longer APA total → skew penalty.
	if p.ViabilityZ(3, 10, 6.0, 1, 0) >= p.ViabilityZ(3, 10, best, 1, 0) {
		t.Fatal("longer APA must hurt viability")
	}
	// No penalty below the best total.
	if p.ViabilityZ(3, 10, 3.0, 1, 0) != p.ViabilityZ(3, 10, best, 1, 0) {
		t.Fatal("no skew penalty below the best total")
	}
	// Manufacturer bias shifts viability.
	if p.ViabilityZ(9, 3, best, 1, -3) >= p.ViabilityZ(9, 3, best, 1, 0) {
		t.Fatal("negative profile bias must reduce viability")
	}
	// Structured data (low coupling factor) improves viability (Obs. 9).
	if p.ViabilityZ(7, 4, best, 0.05, 0) <= p.ViabilityZ(7, 4, best, 1, 0) {
		t.Fatal("structured data must improve viability")
	}
}

func TestShareLatchThreshold(t *testing.T) {
	p := DefaultParams()
	if got := p.ShareLatchThreshold(0); got != p.ShareLatchMean {
		t.Fatalf("median threshold = %v", got)
	}
	// t2 = 3 ns clears essentially every group; t2 = 1.5 ns almost none.
	if thr := p.ShareLatchThreshold(3); thr >= 3.0 {
		t.Fatalf("+3σ threshold %v should stay below 3 ns", thr)
	}
	if thr := p.ShareLatchThreshold(-1.5); thr <= 1.5 {
		t.Fatalf("-1.5σ threshold %v should stay above 1.5 ns", thr)
	}
}

func TestWriteFailProb(t *testing.T) {
	p := DefaultParams()
	base := p.WriteFailProb(8)
	if base != p.WriteWeakProb {
		t.Fatalf("no load expected at 8 rows: %v", base)
	}
	if p.WriteFailProb(32) <= base {
		t.Fatal("32 open rows must raise WR failures (Obs. 1's 99.85%)")
	}
	if p.WriteFailProb(32) > 0.01 {
		t.Fatal("WR failures must stay small")
	}
	extreme := p
	extreme.WriteWeakProb = 0.5
	extreme.WriteLoadPerRow = 100
	if extreme.WriteFailProb(32) > 1 {
		t.Fatal("probability must clamp to 1")
	}
}

func TestCopyFailProbTrends(t *testing.T) {
	p := DefaultParams()
	e := NominalEnv()
	tras := 36.0
	base := p.CopyFailProb(false, 0, 2, e, 36, tras)
	if base <= 0 || base > 1e-3 {
		t.Fatalf("base copy failure = %v, want tiny but positive", base)
	}
	if p.CopyFailProb(false, 0, 32, e, 36, tras) <= base {
		t.Fatal("row load must increase copy failures")
	}
	// All-1s rows at high row counts are the weak direction (Obs. 16).
	ones := p.CopyFailProb(true, 1.0, 32, e, 36, tras)
	zeros := p.CopyFailProb(false, 0.0, 32, e, 36, tras)
	if ones <= zeros {
		t.Fatal("all-1s must fail more than all-0s at 32-row load")
	}
	// Balanced random rows pay no collective droop.
	if p.CopyFailProb(true, 0.5, 32, e, 36, tras) != zeros {
		t.Fatal("balanced rows should not pay the droop penalty")
	}
	if p.CopyFailProb(true, 1.0, 8, e, 36, tras) != p.CopyFailProb(false, 0, 8, e, 36, tras) {
		t.Fatal("at low load, 1s and 0s should fail equally")
	}
	// VPP underscaling increases failures (Obs. 18).
	if p.CopyFailProb(false, 0, 32, Env{TempC: 50, VPP: 2.1}, 36, tras) <= zeros {
		t.Fatal("VPP underscaling must increase copy failures")
	}
	// Short restore (t1=18 < tRAS) adds a penalty (Fig. 10).
	if p.CopyFailProb(false, 0, 32, e, 18, tras) <= zeros {
		t.Fatal("short restore must add failures")
	}
	// Probabilities are clamped to 1.
	extreme := p
	extreme.CopyWeakBase = 0.9
	extreme.CopyLoadCoeff = 10
	if got := extreme.CopyFailProb(false, 0, 32, e, 36, tras); got > 1 {
		t.Fatalf("failure probability %v > 1", got)
	}
}

func TestNormCDF(t *testing.T) {
	if math.Abs(NormCDF(0)-0.5) > 1e-12 {
		t.Fatal("Φ(0) != 0.5")
	}
	if math.Abs(NormCDF(1.96)-0.975) > 1e-3 {
		t.Fatalf("Φ(1.96) = %v", NormCDF(1.96))
	}
	if NormCDF(-5) > 1e-6 || NormCDF(5) < 1-1e-6 {
		t.Fatal("tails wrong")
	}
}
