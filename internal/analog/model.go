package analog

import "math"

// CellTerm is one activated cell's contribution to a bitline.
type CellTerm struct {
	// Level is the signed stored level: +1 for a fully charged cell (VDD),
	// -1 for a discharged cell (0 V), and a small residual for a Frac
	// (VDD/2) neutral cell.
	Level float64
	// CapFactor is the cell's relative capacitance, 1+γ with γ the static
	// process variation.
	CapFactor float64
	// Weight is the charge-transfer weight (wordline drive × connect time),
	// 1 for a nominally connected cell.
	Weight float64
}

// Perturbation computes the bitline voltage deviation (V) from VDD/2 after
// charge sharing with the given cells:
//
//	δ = (VDD/2) · Σ wᵢ·cᵢ·sᵢ / (Cb/Cc + Σ wᵢ·cᵢ)
//
// A positive δ means the sense amplifier resolves toward VDD (logic 1).
func (p Params) Perturbation(cells []CellTerm) float64 {
	num := 0.0
	den := p.BitlineCapRatio
	for _, c := range cells {
		wc := c.Weight * c.CapFactor
		num += wc * c.Level
		den += wc
	}
	if den <= 0 {
		return 0
	}
	return p.VDD / 2 * num / den
}

// UnitSwing returns the bitline deviation contributed by a single nominal
// cell when n rows are simultaneously activated: the margin quantum of an
// n-row PUD operation.
func (p Params) UnitSwing(n int) float64 {
	return p.VDD / 2 / (p.BitlineCapRatio + float64(n))
}

// SenseThreshold maps a static standard-normal draw to a per-column
// reliable sensing margin (V), lognormally distributed around the median.
func (p Params) SenseThreshold(norm float64) float64 {
	return p.SenseThresholdMedian * math.Exp(p.SenseThresholdSigmaLn*norm)
}

// CouplingNoise maps a static standard-normal draw to a per-column
// bitline coupling-noise offset (V) for a data pattern with the given
// coupling factor (1 for fully random data, ~0 for solid patterns).
func (p Params) CouplingNoise(norm, patternFactor float64) float64 {
	return p.CouplingSigma * patternFactor * norm
}

// StaticSenseMargin combines the static quantities of a sensing event: the
// margin by which the bitline perturbation (with coupling) clears the
// column's sensing threshold in the expected direction. expectedSign is
// +1 when the correct result is logic 1, -1 for logic 0.
//
// A trial succeeds iff margin + transient noise > 0, so a cell is stable
// (correct in all trials) only when the static margin exceeds the largest
// adverse transient excursion.
func StaticSenseMargin(delta, coupling, threshold, expectedSign float64) float64 {
	return expectedSign*(delta+coupling) - threshold
}

// StableProb returns the probability that a sensing event with the given
// static margin passes all `trials` independent trials under transient
// noise. It is the closed form the trial loop converges to; used by the
// analytical fast path and tests.
func (p Params) StableProb(margin float64, trials int) float64 {
	if p.TransientNoiseSigma == 0 {
		if margin > 0 {
			return 1
		}
		return 0
	}
	single := normCDF(margin / p.TransientNoiseSigma)
	return math.Pow(single, float64(trials))
}

// RFWeight returns the charge-transfer weight of the first-activated row,
// which remains connected for t1+t2 ns before the remaining rows join.
func (p Params) RFWeight(totalNS float64) float64 {
	return 1 + p.RFShareRate*totalNS
}

// LatchThreshold maps a static standard-normal draw to a per-row
// predecoder-latch settling threshold (ns): the row's local wordline
// asserts only if t2 meets it. The threshold rises with the number of
// simultaneously asserted rows (decoder load) and shifts slightly with
// temperature, VPP underscaling and operational aging.
func (p Params) LatchThreshold(norm float64, nRows int, e Env) float64 {
	mean := p.LatchSettleMean
	if nRows > 1 {
		mean += p.LatchLoadPerLog2N * math.Log2(float64(nRows))
	}
	mean += p.LatchTempCoeff * (e.TempC - 50)
	mean += p.LatchVPPCoeff * (p.VPPNominal - e.VPP)
	mean += p.AgingLatchPerYear * e.Aging
	mean += p.DisturbLatchPerUnit * e.Disturb
	return mean + p.LatchSettleSigma*norm
}

// WLThreshold maps a static standard-normal draw to a per-row wordline
// settling threshold (ns) that t1+t2 must meet.
func (p Params) WLThreshold(norm float64) float64 {
	return p.WLSettleMean + p.WLSettleSigma*norm
}

// AssertsAllTrials reports whether a row with the given static thresholds
// asserts in every one of `trials` trials, given per-trial jitter draws
// produced by the jitter function (indexed by trial). It also reports
// whether it asserts in none of them; rows in between are flaky.
func AssertsAllTrials(t2, totalNS, latchThresh, wlThresh, jitterSigma float64,
	trials int, jitter func(trial int) float64) (always, never bool) {

	okCount := 0
	for t := 0; t < trials; t++ {
		j := jitterSigma * jitter(t)
		if t2+j >= latchThresh && totalNS+j >= wlThresh {
			okCount++
		}
	}
	return okCount == trials, okCount == 0
}

// ViabilityZ computes the z-score bound of the group-viability draw for a
// majority operation with X operands replicated `copies` times under the
// given APA total time (t1+t2, ns) and data-pattern coupling factor.
// profileBias is the manufacturer's adjustment (0 for Mfr. H). A group
// whose static normal draw is below the returned z resolves
// deterministically; otherwise it is metastable.
func (p Params) ViabilityZ(x, copies int, totalNS, couplingFactor, profileBias float64) float64 {
	z := p.ViabilityBase + p.ViabilityPerCopy*float64(copies) -
		p.ViabilityPerX*float64(x) + profileBias
	z += p.PatternViabilityBonus * (1 - couplingFactor)
	if extra := totalNS - p.ViabilityBestTotal; extra > 0 {
		z -= p.SkewPenaltyPerNS * extra
	}
	return z
}

// ShareLatchThreshold maps a static standard-normal draw to a per-group
// minimum t2 (ns) below which share-mode sensing is metastable.
func (p Params) ShareLatchThreshold(norm float64) float64 {
	return p.ShareLatchMean + p.ShareLatchSigma*norm
}

// WriteFailProb returns the per-cell probability that a WR overdrive
// misses a cell while nOpen rows are simultaneously open.
func (p Params) WriteFailProb(nOpen int) float64 {
	f := p.WriteWeakProb
	if nOpen > p.WriteLoadRows {
		f *= 1 + p.WriteLoadPerRow*float64(nOpen-p.WriteLoadRows)
	}
	if f > 1 {
		f = 1
	}
	return f
}

// CopyFailProb returns the per-cell failure probability of a driven
// (sense-amp-latched) copy into one of nAct simultaneously activated rows,
// for a destination bit of the given value, given the fraction of 1s in
// the copied row (collective pull-up droop), under the environment, with
// the given t1 (to model the short-restore penalty of t1 < tRAS).
func (p Params) CopyFailProb(value bool, onesFrac float64, nAct int, e Env, t1, tRAS float64) float64 {
	f := p.CopyWeakBase * (1 + p.CopyLoadCoeff*float64(nAct-2))
	if value && nAct > p.CopyOnesLoadRows && onesFrac > p.CopyOnesFracKnee {
		loadScale := float64(nAct-p.CopyOnesLoadRows) / float64(p.CopyOnesLoadRows)
		fracScale := (onesFrac - p.CopyOnesFracKnee) / (1 - p.CopyOnesFracKnee)
		f += p.CopyOnesExtra * loadScale * fracScale
	}
	if under := p.VPPNominal - e.VPP; under > 0 {
		f += p.CopyVPPCoeff * under * float64(nAct) / 32
	}
	if dt := e.TempC - 50; dt > 0 {
		f += p.CopyTempCoeff * dt
	}
	if t1 < tRAS {
		f += p.CopyShortRestorePenalty
	}
	f += p.RetentionCopyPerUnit * e.Retention
	if f > 1 {
		f = 1
	}
	return f
}

// normCDF is the standard normal CDF via erf.
func normCDF(z float64) float64 {
	return 0.5 * (1 + math.Erf(z/math.Sqrt2))
}

// NormCDF exposes the standard normal CDF for analytical harness code.
func NormCDF(z float64) float64 { return normCDF(z) }
