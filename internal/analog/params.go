// Package analog implements the electrical model that stands in for the
// real DRAM chips of the paper: bitline charge sharing across
// simultaneously activated cells, sense-amplifier resolution with process
// variation, wordline/predecoder assertion timing, and the group-level
// activation-skew ("viability") behaviour that governs high-X majority
// operations.
//
// The model follows the paper's own hypotheses (§7): a MAJX operation
// perturbs the bitline by the charge-weighted sum of the activated cells'
// stored values, and the sense amplifier produces a correct result only
// when that perturbation exceeds its (process-varied) reliable sensing
// margin. Constants are calibrated so the paper's headline success rates
// are reproduced in shape (see DESIGN.md §4 and params_test.go); they are
// not claimed to be physical device parameters.
package analog

import (
	"fmt"
	"math"
)

// Params holds every constant of the electrical model. The zero value is
// not useful; start from DefaultParams.
type Params struct {
	// VDD is the DRAM core voltage (V). DDR4 uses 1.2 V.
	VDD float64
	// VPPNominal is the nominal wordline boost voltage (V): 2.5 V.
	VPPNominal float64
	// BitlineCapRatio is Cb/Cc, the bitline-to-cell capacitance ratio.
	// It sets how the per-cell perturbation scales with the number of
	// simultaneously activated rows: one cell's full differential swing is
	// (VDD/2)/(BitlineCapRatio + N).
	BitlineCapRatio float64

	// CellCapSigma is the relative standard deviation of per-cell
	// capacitance (static process variation).
	CellCapSigma float64
	// FracSigma is the standard deviation of a Frac (VDD/2) cell's residual
	// stored level, in units of a full cell swing. A perfect Frac cell
	// contributes 0 to the bitline perturbation.
	FracSigma float64

	// SenseThresholdMedian is the median reliable sensing margin (V): a
	// perturbation below the (lognormally distributed) per-column threshold
	// cannot be resolved reliably.
	SenseThresholdMedian float64
	// SenseThresholdSigmaLn is the lognormal sigma (in ln-space) of the
	// per-column sensing threshold.
	SenseThresholdSigmaLn float64
	// TransientNoiseSigma is the per-trial sensing noise (V). A cell whose
	// static margin is within a few of these of zero is "unstable": it
	// fails at least one trial out of many.
	TransientNoiseSigma float64
	// CouplingSigma is the per-column static bitline-to-bitline coupling
	// noise (V) at full data-pattern randomness. Structured data patterns
	// scale it down via PatternCouplingFactor.
	CouplingSigma float64

	// TempWeightCoeff is the relative increase of charge-transfer strength
	// per °C above the 50 °C baseline (lower access-transistor Vth at
	// higher temperature makes charge sharing faster and stronger, the
	// paper's Obs. 11 hypothesis).
	TempWeightCoeff float64
	// VPPWeightExponent scales charge-transfer strength as
	// (VPP/VPPNominal)^exponent (weaker wordline drive under VPP
	// underscaling, Obs. 13).
	VPPWeightExponent float64
	// AgingDrivePerYear is the relative charge-transfer weakening per year
	// of operational aging (access-transistor wearout and retention
	// degradation). Env.Aging = 0 — fresh silicon, the paper's tested
	// condition — leaves the drive strength exactly unchanged.
	AgingDrivePerYear float64
	// AgingLatchPerYear shifts the predecoder-latch settle mean (ns) per
	// year of aging: aged peripheral circuitry settles slower, moving the
	// §4 timing cliffs toward larger t2.
	AgingLatchPerYear float64
	// DisturbDrivePerUnit is the relative charge-transfer weakening per
	// unit of disturbance-interaction stress (Env.Disturb): aggressor
	// activity on neighbouring rows partially discharges the accessed
	// cells before the share, reducing their effective drive. Disturb = 0
	// — a quiet array, the paper's tested condition — leaves the drive
	// strength exactly unchanged.
	DisturbDrivePerUnit float64
	// DisturbLatchPerUnit shifts the predecoder-latch settle mean (ns)
	// per unit of disturbance stress: aggressor traffic loads the shared
	// wordline drivers during the settling race.
	DisturbLatchPerUnit float64
	// DisturbCouplingPerUnit amplifies the static bitline-to-bitline
	// coupling noise per unit of disturbance stress (aggressor bitlines
	// swing during the victim's sensing window).
	DisturbCouplingPerUnit float64
	// RetentionLevelPerUnit is the relative stored-level decay per unit
	// of retention stress (Env.Retention, in multiples of the nominal
	// refresh interval beyond spec): leaky cells drift toward VDD/2,
	// shrinking the charge-share perturbation they contribute.
	// Retention = 0 — in-spec refresh — leaves levels exactly unchanged.
	RetentionLevelPerUnit float64
	// RetentionCopyPerUnit is the additional per-cell copy-mode failure
	// probability per unit of retention stress (destination cells that
	// decayed below the restore margin miss the driven copy).
	RetentionCopyPerUnit float64
	// RFShareRate is the extra charge-transfer weight the first-activated
	// row gains per nanosecond it is connected before the second ACT.
	RFShareRate float64

	// Wordline/predecoder assertion model (§4's timing cliffs).
	// A row's local wordline asserts only if t2 exceeds a per-row latch
	// settling threshold ~ N(LatchSettleMean + LatchLoadPerLog2N·log2(N),
	// LatchSettleSigma), and t1+t2 exceeds a per-row wordline settling
	// threshold ~ N(WLSettleMean, WLSettleSigma). All in ns.
	LatchSettleMean   float64
	LatchSettleSigma  float64
	LatchLoadPerLog2N float64
	WLSettleMean      float64
	WLSettleSigma     float64
	// LatchTempCoeff shifts the latch settle mean per °C above 50 °C
	// (peripheral circuitry slows slightly when hot: Obs. 3's small
	// negative effect on many-row activation).
	LatchTempCoeff float64
	// LatchVPPCoeff shifts the latch settle mean per volt of VPP
	// underscaling below nominal (Obs. 4).
	LatchVPPCoeff float64
	// AssertTransientSigma is the per-trial jitter (ns) on assertion
	// thresholds; rows near the timing cliff flicker between trials and
	// render their cells unstable.
	AssertTransientSigma float64

	// WriteWeakProb is the baseline probability that a cell fails to take a
	// WR overdrive even with a fully asserted wordline (weak cells).
	WriteWeakProb float64
	// WriteLoadPerRow scales WR weak-cell failures when the write drivers
	// must overdrive more than WriteLoadRows simultaneously open rows:
	// prob = WriteWeakProb · (1 + WriteLoadPerRow·(N − WriteLoadRows)).
	// This produces the paper's slight 32-row dip (99.85% vs 99.99%).
	WriteLoadPerRow float64
	WriteLoadRows   int

	// Share-mode group latch race: with t2 below a per-group threshold
	// ~ N(ShareLatchMean, ShareLatchSigma) ns, the second ACT races the
	// in-flight precharge inside the charge-share window and the whole
	// group's sensing is metastable (the paper's "too small a delay
	// between PRE and ACT may prevent the assertion of intermediate
	// signals", Obs. 7). The later WR of the activation experiment is not
	// affected — slow wordlines still assert before the write drivers
	// fire.
	ShareLatchMean  float64
	ShareLatchSigma float64

	// Group viability model: a majority operation's row group resolves
	// deterministically only if the activation-timing skew across the X
	// operand sub-groups is small enough. The viability z-score is
	// ViabilityBase + ViabilityPerCopy·copies − ViabilityPerX·X
	// − SkewPenaltyPerNS·max(0, t1+t2−ViabilityBestTotal)
	// + PatternViabilityBonus·(1−couplingFactor) + profile bias,
	// and the group is viable iff its static standard-normal draw is below
	// that z. Non-viable groups are metastable: their sensed results vary
	// across trials, so every cell fails the all-trials-correct criterion.
	// The constants are fitted to the paper's MAJ3/5/7/9 success rates
	// (99.00/79.64/33.87/5.91% at 32-row activation, Obs. 8).
	ViabilityBase      float64
	ViabilityPerCopy   float64
	ViabilityPerX      float64
	SkewPenaltyPerNS   float64
	ViabilityBestTotal float64
	// PatternViabilityBonus raises the viability z by
	// bonus·(1 − couplingFactor): structured data swings the bitlines
	// coherently during the skewed activation race, disturbing the shared
	// wordline drivers less than random data does. This is the dominant
	// component of Obs. 9's random-vs-fixed gap for MAJ5/7/9.
	PatternViabilityBonus float64

	// SenseLatchTime (ns): if t1 is at least this long, the sense amplifier
	// has latched the first row's data before the second ACT, so the APA
	// degenerates to a driven copy (RowClone / Multi-RowCopy mode) instead
	// of charge-share majority mode.
	SenseLatchTime float64

	// Copy-mode failure model (margins are rail-to-rail, so failures are
	// rare weak-cell events rather than sensing errors).
	CopyWeakBase float64 // per-cell base failure probability
	// CopyLoadCoeff scales failures with activated-row count (sense
	// amplifier drives more wordlines' worth of cells).
	CopyLoadCoeff float64
	// CopyOnesExtra is the additional failure probability for writing 1s
	// when more than CopyOnesLoadRows rows are driven AND most of the row
	// is 1s (collective pull-up supply droop across the amplifier stripe;
	// Obs. 16's all-1s-to-31-rows dip). The extra applies proportionally
	// to how far the row's ones-fraction exceeds CopyOnesFracKnee.
	CopyOnesExtra    float64
	CopyOnesLoadRows int
	CopyOnesFracKnee float64
	// CopyVPPCoeff scales extra copy failures per volt of VPP
	// underscaling, proportionally to row load (Obs. 18).
	CopyVPPCoeff float64
	// CopyTempCoeff scales extra copy failures per °C above 50 °C
	// (Obs. 17's very small effect).
	CopyTempCoeff float64
	// CopyShortRestorePenalty is the extra failure probability when t1 is
	// long enough to latch the sense amp but shorter than tRAS (t1=18 ns in
	// Fig. 10).
	CopyShortRestorePenalty float64
}

// DefaultParams returns the calibrated model. See DESIGN.md §4 for the
// calibration targets and EXPERIMENTS.md for measured-vs-paper numbers.
func DefaultParams() Params {
	return Params{
		VDD:             1.2,
		VPPNominal:      2.5,
		BitlineCapRatio: 4.0,

		CellCapSigma: 0.12,
		FracSigma:    0.35,

		SenseThresholdMedian:  0.060,
		SenseThresholdSigmaLn: 0.45,
		TransientNoiseSigma:   0.0035,
		CouplingSigma:         0.016,

		TempWeightCoeff:   0.0020,
		VPPWeightExponent: 0.15,
		AgingDrivePerYear: 0.008,
		AgingLatchPerYear: 0.015,
		RFShareRate:       0.02,

		DisturbDrivePerUnit:    0.006,
		DisturbLatchPerUnit:    0.012,
		DisturbCouplingPerUnit: 0.05,
		RetentionLevelPerUnit:  0.010,
		RetentionCopyPerUnit:   2e-4,

		LatchSettleMean:      0.80,
		LatchSettleSigma:     0.42,
		LatchLoadPerLog2N:    0.10,
		WLSettleMean:         1.80,
		WLSettleSigma:        0.50,
		LatchTempCoeff:       0.0006,
		LatchVPPCoeff:        0.12,
		AssertTransientSigma: 0.02,

		WriteWeakProb:   1e-4,
		WriteLoadPerRow: 0.875,
		WriteLoadRows:   16,

		ShareLatchMean:  2.0,
		ShareLatchSigma: 0.25,

		ViabilityBase:         2.53,
		ViabilityPerCopy:      0.20,
		ViabilityPerX:         0.50,
		SkewPenaltyPerNS:      1.90,
		ViabilityBestTotal:    4.5,
		PatternViabilityBonus: 0.80,

		SenseLatchTime: 15.0,

		CopyWeakBase:            4e-5,
		CopyLoadCoeff:           0.004,
		CopyOnesExtra:           0.008,
		CopyOnesLoadRows:        16,
		CopyOnesFracKnee:        0.6,
		CopyVPPCoeff:            0.033,
		CopyTempCoeff:           1e-5,
		CopyShortRestorePenalty: 5e-4,
	}
}

// Validate reports whether the parameters are internally consistent.
func (p Params) Validate() error {
	switch {
	case p.VDD <= 0:
		return fmt.Errorf("analog: VDD must be positive")
	case p.VPPNominal <= 0:
		return fmt.Errorf("analog: VPPNominal must be positive")
	case p.BitlineCapRatio <= 0:
		return fmt.Errorf("analog: BitlineCapRatio must be positive")
	case p.SenseThresholdMedian <= 0:
		return fmt.Errorf("analog: SenseThresholdMedian must be positive")
	case p.SenseThresholdSigmaLn <= 0:
		return fmt.Errorf("analog: SenseThresholdSigmaLn must be positive")
	case p.TransientNoiseSigma < 0 || p.CouplingSigma < 0:
		return fmt.Errorf("analog: noise sigmas must be non-negative")
	case p.SenseLatchTime <= 0:
		return fmt.Errorf("analog: SenseLatchTime must be positive")
	case p.CellCapSigma < 0 || p.FracSigma < 0:
		return fmt.Errorf("analog: variation sigmas must be non-negative")
	case !(p.WriteWeakProb >= 0 && p.WriteWeakProb < 1):
		return fmt.Errorf("analog: WriteWeakProb must be in [0,1)")
	case !(p.CopyWeakBase >= 0 && p.CopyWeakBase < 1):
		return fmt.Errorf("analog: CopyWeakBase must be in [0,1)")
	}
	return nil
}

// Env describes the operating conditions of an experiment. It is a
// first-class swept input of the harness: the scenario subsystem
// (internal/scenario) crosses every field as an axis of an operating
// envelope, so shard cache keys must always capture the whole struct.
type Env struct {
	TempC float64 // DRAM chip temperature, °C
	VPP   float64 // wordline voltage, V
	// Aging is the equivalent years of operational aging/retention
	// degradation. 0 models the paper's fresh parts; positive values
	// weaken charge transfer (AgingDrivePerYear) and slow the predecoder
	// latches (AgingLatchPerYear).
	Aging float64
	// Disturb is the disturbance-interaction stress level (unitless):
	// sustained aggressor activity on rows adjacent to the operands.
	// 0 models the paper's quiet-array methodology and is exactly
	// neutral; positive values weaken charge transfer
	// (DisturbDrivePerUnit), slow the predecoder latches
	// (DisturbLatchPerUnit) and amplify bitline coupling noise
	// (DisturbCouplingPerUnit).
	Disturb float64
	// Retention is the retention stress in multiples of the nominal
	// refresh interval elapsed beyond spec. 0 models in-spec refresh and
	// is exactly neutral; positive values decay stored levels toward
	// VDD/2 (RetentionLevelPerUnit) and add copy-restore failures
	// (RetentionCopyPerUnit).
	Retention float64
}

// NominalEnv returns the default operating point of the study: 50 °C and
// nominal VPP.
func NominalEnv() Env { return Env{TempC: 50, VPP: 2.5} }

// Validate checks the environment lies in the tested envelope (the tester
// hardware supports 50–90 °C and 2.1–2.5 V; values outside are likely
// mistakes).
func (e Env) Validate() error {
	if e.TempC < 0 || e.TempC > 120 {
		return fmt.Errorf("analog: temperature %.1f °C outside supported range", e.TempC)
	}
	if e.VPP < 1.5 || e.VPP > 3.0 {
		return fmt.Errorf("analog: VPP %.2f V outside supported range", e.VPP)
	}
	if e.Aging < 0 || e.Aging > 50 {
		return fmt.Errorf("analog: aging %.1f years outside supported range [0, 50]", e.Aging)
	}
	if e.Disturb < 0 || e.Disturb > 100 {
		return fmt.Errorf("analog: disturb %.1f outside supported range [0, 100]", e.Disturb)
	}
	if e.Retention < 0 || e.Retention > 100 {
		return fmt.Errorf("analog: retention %.1f outside supported range [0, 100]", e.Retention)
	}
	return nil
}

// DriveFactor returns the multiplicative charge-transfer strength under
// the environment, relative to the fresh 50 °C / nominal-VPP baseline.
// Higher temperature strengthens charge sharing; lower VPP and aging
// weaken it.
func (p Params) DriveFactor(e Env) float64 {
	temp := 1 + p.TempWeightCoeff*(e.TempC-50)
	vpp := math.Pow(e.VPP/p.VPPNominal, p.VPPWeightExponent)
	aging := 1 - p.AgingDrivePerYear*e.Aging
	if aging < 0 {
		aging = 0
	}
	disturb := 1 - p.DisturbDrivePerUnit*e.Disturb
	if disturb < 0 {
		disturb = 0
	}
	// disturb is exactly 1.0 at Disturb = 0, so the product is
	// bit-identical to the pre-disturb model there (IEEE ×1.0 identity).
	return temp * vpp * aging * disturb
}

// RetentionLevelFactor returns the multiplicative stored-level decay under
// the environment's retention stress: exactly 1 at Retention = 0 (the
// share kernel's fast path relies on that to stay bit-identical).
func (p Params) RetentionLevelFactor(e Env) float64 {
	f := 1 - p.RetentionLevelPerUnit*e.Retention
	if f < 0 {
		f = 0
	}
	return f
}

// CouplingDisturbFactor returns the multiplicative coupling-noise
// amplification under the environment's disturbance stress: exactly 1 at
// Disturb = 0.
func (p Params) CouplingDisturbFactor(e Env) float64 {
	return 1 + p.DisturbCouplingPerUnit*e.Disturb
}
