package analog

import "math"

// PredictMAJSuccess returns the closed-form expected success rate of a
// MAJX operation with n-row activation under this model, for a data
// pattern with the given coupling factor and a manufacturer viability
// bias. It composes the same three stages the simulator executes —
// composition mixture, margin-vs-threshold sensing, and group viability —
// analytically, and is used to cross-check the simulator (predict_test.go)
// and for quick what-if sweeps without running experiments.
//
// Assumptions: best majority timings (no skew penalty, no share-latch
// metastability), random-per-column operand compositions (the paper's
// random pattern; fixed patterns share the composition mixture at group
// granularity, so the expectation is identical), and Frac-style neutral
// rows.
func (p Params) PredictMAJSuccess(x, n int, couplingFactor, profileBias float64) float64 {
	if x < 3 || x%2 == 0 || n < x {
		return 0
	}
	copies := n / x
	unit := p.UnitSwing(n)
	active := copies * x

	// Per-column margin noise: cell-capacitance variation across the
	// active cells plus the pattern-scaled coupling noise.
	sigma := math.Hypot(
		unit*p.CellCapSigma*math.Sqrt(float64(active)),
		p.CouplingSigma*couplingFactor,
	)
	// Frac neutral rows contribute residual-level noise.
	if neutral := n % x; neutral > 0 {
		sigma = math.Hypot(sigma, unit*p.FracSigma*math.Sqrt(float64(neutral)))
	}

	// Composition mixture: k of the X operand bits are 1 with binomial
	// weight; the sensing margin is |2k−X|·copies·unit.
	pCol := 0.0
	total := math.Pow(2, float64(x))
	for k := 0; k <= x; k++ {
		weight := binomial(x, k) / total
		margin := math.Abs(float64(2*k-x)) * float64(copies) * unit
		pCol += weight * p.senseSuccessProb(margin, sigma)
	}

	z := p.ViabilityZ(x, copies, p.ViabilityBestTotal, couplingFactor, profileBias)
	return normCDF(z) * pCol
}

// senseSuccessProb integrates P(margin + noise clears the lognormal
// threshold in the right direction) over the Gaussian noise.
func (p Params) senseSuccessProb(margin, sigma float64) float64 {
	if sigma <= 0 {
		return p.thresholdCDF(margin)
	}
	// Gauss–Hermite-style fixed grid over ±4σ.
	const steps = 41
	sum, wsum := 0.0, 0.0
	for i := 0; i < steps; i++ {
		zn := -4 + 8*float64(i)/float64(steps-1)
		w := math.Exp(-zn * zn / 2)
		sum += w * p.thresholdCDF(margin+zn*sigma)
		wsum += w
	}
	return sum / wsum
}

// thresholdCDF is P(threshold < v) for the lognormal sensing threshold;
// non-positive effective margins cannot clear it.
func (p Params) thresholdCDF(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return normCDF(math.Log(v/p.SenseThresholdMedian) / p.SenseThresholdSigmaLn)
}

// binomial returns C(n, k) as a float64 (n <= 9 here, exact).
func binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res = res * float64(n-i) / float64(i+1)
	}
	return res
}
