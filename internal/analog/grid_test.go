package analog

import (
	"fmt"
	"testing"
)

// envGrid is the temperature × VPP × aging grid the scenario runner
// sweeps (internal/scenario): the paper's tested envelope of 50–90 °C and
// 2.1–2.5 V, plus the aging extension. The tests below pin the model's
// monotone structure on this grid so the envelope search's bisection
// (which assumes success crosses its target once per axis) rests on
// tested behavior.
var (
	gridTemps = []float64{50, 60, 70, 80, 90}
	gridVPPs  = []float64{2.5, 2.4, 2.3, 2.2, 2.1}
	gridAges  = []float64{0, 2, 4, 8, 16}
)

// TestEnvGridValidates: every grid point is a legal environment.
func TestEnvGridValidates(t *testing.T) {
	for _, temp := range gridTemps {
		for _, vpp := range gridVPPs {
			for _, age := range gridAges {
				e := Env{TempC: temp, VPP: vpp, Aging: age}
				if err := e.Validate(); err != nil {
					t.Fatalf("%+v: %v", e, err)
				}
			}
		}
	}
	for _, bad := range []Env{
		{TempC: -10, VPP: 2.5}, {TempC: 150, VPP: 2.5},
		{TempC: 50, VPP: 1.0}, {TempC: 50, VPP: 3.5},
		{TempC: 50, VPP: 2.5, Aging: -1}, {TempC: 50, VPP: 2.5, Aging: 99},
	} {
		if bad.Validate() == nil {
			t.Fatalf("%+v must be rejected", bad)
		}
	}
}

// TestDriveFactorGridMonotone pins the drive-strength slopes across the
// grid: stronger with temperature (Obs. 11), weaker under VPP
// underscaling (Obs. 13), weaker with aging, and exactly 1 at the fresh
// nominal point (so Aging = 0 keeps every pre-aging result bit-identical).
func TestDriveFactorGridMonotone(t *testing.T) {
	p := DefaultParams()
	if got := p.DriveFactor(NominalEnv()); got != 1 {
		t.Fatalf("nominal drive factor = %v, want exactly 1", got)
	}
	for _, vpp := range gridVPPs {
		for _, age := range gridAges {
			prev := 0.0
			for _, temp := range gridTemps {
				got := p.DriveFactor(Env{TempC: temp, VPP: vpp, Aging: age})
				if got <= prev {
					t.Fatalf("drive not rising with temperature at vpp=%g age=%g: %v then %v",
						vpp, age, prev, got)
				}
				prev = got
			}
		}
	}
	for _, temp := range gridTemps {
		for _, age := range gridAges {
			prev := 2.0
			for _, vpp := range gridVPPs { // descending voltages
				got := p.DriveFactor(Env{TempC: temp, VPP: vpp, Aging: age})
				if got >= prev {
					t.Fatalf("drive not falling with VPP underscaling at temp=%g age=%g", temp, age)
				}
				prev = got
			}
		}
	}
	for _, temp := range gridTemps {
		for _, vpp := range gridVPPs {
			prev := 2.0
			for _, age := range gridAges {
				got := p.DriveFactor(Env{TempC: temp, VPP: vpp, Aging: age})
				if got >= prev {
					t.Fatalf("drive not falling with aging at temp=%g vpp=%g", temp, vpp)
				}
				prev = got
			}
		}
	}
	// The aging factor clamps at zero rather than going negative.
	if got := p.DriveFactor(Env{TempC: 50, VPP: 2.5, Aging: 1e6}); got != 0 {
		t.Fatalf("extreme aging drive factor = %v, want 0", got)
	}
}

// TestLatchThresholdGridMonotone pins the timing-cliff slopes: the latch
// settling threshold rises with temperature (Obs. 3), with VPP
// underscaling (Obs. 4), with decoder load, and with aging — and is
// unchanged at Aging = 0.
func TestLatchThresholdGridMonotone(t *testing.T) {
	p := DefaultParams()
	base := p.LatchThreshold(0, 32, NominalEnv())
	if got := p.LatchThreshold(0, 32, Env{TempC: 50, VPP: 2.5, Aging: 0}); got != base {
		t.Fatalf("zero aging shifted the latch threshold: %v vs %v", got, base)
	}
	for _, vpp := range gridVPPs {
		prev := -1.0
		for _, temp := range gridTemps {
			got := p.LatchThreshold(0, 32, Env{TempC: temp, VPP: vpp})
			if got <= prev {
				t.Fatalf("latch threshold not rising with temperature at vpp=%g", vpp)
			}
			prev = got
		}
	}
	for _, temp := range gridTemps {
		prev := -1.0
		for _, vpp := range gridVPPs { // descending voltages
			got := p.LatchThreshold(0, 32, Env{TempC: temp, VPP: vpp})
			if got <= prev {
				t.Fatalf("latch threshold not rising with VPP underscaling at temp=%g", temp)
			}
			prev = got
		}
	}
	prev := -1.0
	for _, age := range gridAges {
		got := p.LatchThreshold(0, 32, Env{TempC: 50, VPP: 2.5, Aging: age})
		if got <= prev {
			t.Fatal("latch threshold not rising with aging")
		}
		prev = got
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		if n > 2 {
			lo := p.LatchThreshold(0, n/2, NominalEnv())
			hi := p.LatchThreshold(0, n, NominalEnv())
			if hi <= lo {
				t.Fatalf("latch threshold not rising with decoder load: N=%d", n)
			}
		}
	}
}

// TestStableProbTimingMarginMonotone pins the envelope search's core
// assumption: all-trials success is non-increasing as the static timing/
// sensing margin shrinks, at every trial count, and non-increasing in the
// trial count at every margin.
func TestStableProbTimingMarginMonotone(t *testing.T) {
	p := DefaultParams()
	margins := []float64{-0.02, -0.005, 0, 0.002, 0.005, 0.01, 0.03, 0.08}
	for _, trials := range []int{1, 4, 16} {
		prev := -1.0
		for _, m := range margins {
			got := p.StableProb(m, trials)
			if got < prev {
				t.Fatalf("StableProb not monotone in margin at trials=%d (margin %g)", trials, m)
			}
			prev = got
		}
	}
	for _, m := range margins {
		if p.StableProb(m, 16) > p.StableProb(m, 1) {
			t.Fatalf("more trials must not raise all-trials success (margin %g)", m)
		}
	}
}

// TestViabilityZTimingMarginMonotone: group viability is non-increasing
// as the APA total time stretches past the best operating point (the
// skew penalty behind the paper's MAJX timing cliff).
func TestViabilityZTimingMarginMonotone(t *testing.T) {
	p := DefaultParams()
	prev := 1e9
	for _, total := range []float64{3.0, 4.5, 6.0, 9.0, 13.5} {
		got := p.ViabilityZ(3, 10, total, 1, 0)
		if got > prev {
			t.Fatalf("viability rising with total time at %g ns", total)
		}
		prev = got
	}
	// And strictly falling once past ViabilityBestTotal.
	if p.ViabilityZ(3, 10, p.ViabilityBestTotal+2, 1, 0) >= p.ViabilityZ(3, 10, p.ViabilityBestTotal, 1, 0) {
		t.Fatal("skew penalty not applied past the best total time")
	}
}

// TestCopyFailProbGridMonotone pins the copy-mode slopes across the same
// grid: failures rise (weakly) with temperature (Obs. 17) and with VPP
// underscaling (Obs. 18), at every activation load.
func TestCopyFailProbGridMonotone(t *testing.T) {
	p := DefaultParams()
	for _, n := range []int{2, 8, 32} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for _, vpp := range gridVPPs {
				prev := -1.0
				for _, temp := range gridTemps {
					got := p.CopyFailProb(true, 0.5, n, Env{TempC: temp, VPP: vpp}, 36, 36)
					if got < prev {
						t.Fatalf("copy failures falling with temperature at vpp=%g", vpp)
					}
					prev = got
				}
			}
			for _, temp := range gridTemps {
				prev := -1.0
				for _, vpp := range gridVPPs { // descending voltages
					got := p.CopyFailProb(true, 0.5, n, Env{TempC: temp, VPP: vpp}, 36, 36)
					if got < prev {
						t.Fatalf("copy failures falling with VPP underscaling at temp=%g", temp)
					}
					prev = got
				}
			}
		})
	}
}
