package analog

import (
	"math"
	"testing"
)

func TestPredictMAJSuccessDegenerate(t *testing.T) {
	p := DefaultParams()
	if p.PredictMAJSuccess(2, 32, 1, 0) != 0 {
		t.Fatal("even X should predict 0")
	}
	if p.PredictMAJSuccess(5, 4, 1, 0) != 0 {
		t.Fatal("n < X should predict 0")
	}
}

// TestPredictOrderings: the predictor reproduces the paper's qualitative
// structure without running any simulation.
func TestPredictOrderings(t *testing.T) {
	p := DefaultParams()
	// Success falls with X at fixed N.
	prev := 2.0
	for _, x := range []int{3, 5, 7, 9} {
		s := p.PredictMAJSuccess(x, 32, 1, 0)
		if s >= prev {
			t.Fatalf("MAJ%d prediction %.3f not below previous %.3f", x, s, prev)
		}
		prev = s
	}
	// Replication helps at fixed X.
	if p.PredictMAJSuccess(3, 32, 1, 0) <= p.PredictMAJSuccess(3, 4, 1, 0) {
		t.Fatal("replication must raise the prediction")
	}
	// Structured data beats random.
	if p.PredictMAJSuccess(7, 32, 0.05, 0) <= p.PredictMAJSuccess(7, 32, 1, 0) {
		t.Fatal("low coupling must raise the prediction")
	}
	// Manufacturer bias lowers it.
	if p.PredictMAJSuccess(7, 32, 1, -0.5) >= p.PredictMAJSuccess(7, 32, 1, 0) {
		t.Fatal("negative bias must lower the prediction")
	}
}

// TestPredictBands: the closed form lands near the paper's calibration
// targets (which the simulator is tuned to).
func TestPredictBands(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		x      int
		lo, hi float64
	}{
		{3, 0.90, 1.00},  // paper 0.9900
		{5, 0.60, 0.92},  // paper 0.7964
		{7, 0.18, 0.55},  // paper 0.3387
		{9, 0.005, 0.20}, // paper 0.0591
	}
	for _, c := range cases {
		got := p.PredictMAJSuccess(c.x, 32, 1, 0)
		if got < c.lo || got > c.hi {
			t.Errorf("MAJ%d prediction %.4f outside [%.2f, %.2f]", c.x, got, c.lo, c.hi)
		}
	}
}

func TestSenseSuccessProbMonotone(t *testing.T) {
	p := DefaultParams()
	prev := -1.0
	for _, m := range []float64{0, 0.01, 0.03, 0.06, 0.1, 0.2} {
		got := p.senseSuccessProb(m, 0.02)
		if got < prev {
			t.Fatalf("not monotone at margin %v", m)
		}
		prev = got
	}
	if p.senseSuccessProb(0.2, 0.001) < 0.99 {
		t.Fatal("large margin should be near certain")
	}
}

func TestThresholdCDF(t *testing.T) {
	p := DefaultParams()
	if p.thresholdCDF(-1) != 0 || p.thresholdCDF(0) != 0 {
		t.Fatal("non-positive margins cannot clear the threshold")
	}
	if got := p.thresholdCDF(p.SenseThresholdMedian); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("median margin CDF = %v", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := map[[2]int]float64{
		{9, 0}: 1, {9, 4}: 126, {9, 5}: 126, {5, 2}: 10, {3, 3}: 1,
	}
	for in, want := range cases {
		if got := binomial(in[0], in[1]); got != want {
			t.Fatalf("C(%d,%d) = %v, want %v", in[0], in[1], got, want)
		}
	}
	if binomial(5, 6) != 0 || binomial(5, -1) != 0 {
		t.Fatal("out-of-range binomial should be 0")
	}
}
