// Package bitserial implements the paper's §8.1 case study: bulk bitwise
// and arithmetic computation built from in-DRAM majority operations.
//
// Two layers are provided:
//
//   - Computer: a functional bit-serial SIMD machine executing on the
//     simulated DRAM. Vectors are stored bit-sliced (bit i of every element
//     lives in one DRAM row), logic is computed with real MAJX operations
//     on a reserved many-row activation group, and correctness is verified
//     against a CPU reference in the tests and examples.
//   - CostModel (costs.go): the analytical execution-time model behind
//     Fig. 16's microbenchmark speedups.
//
// Operand staging into the compute group is modeled functionally through
// the row buffer (always possible on any (src, dst) pair) and *costed* as
// RowClone/Multi-RowCopy operations, exactly how the paper's evaluation
// schedules them.
package bitserial

import (
	"errors"
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/timing"
)

// ErrNoReliableGroup reports that no candidate activation group kept
// enough reliable columns at the computer's operating point. At stressed
// environments this is a legitimate physical outcome (the mitigation
// co-simulation maps it to a zero success rate), so callers can
// discriminate it from programming errors with errors.Is.
var ErrNoReliableGroup = errors.New("bitserial: no reliable compute group found")

// Computer executes majority-based bit-serial computation on one subarray.
// Register rows move through the machine as packed bit vectors: gates,
// copies and the construction-time reliability probe all run 64 SIMD
// lanes per word.
type Computer struct {
	sa      *dram.Subarray
	mod     *dram.Module
	env     analog.Env
	timings timing.APATimings // APA timings every MAJ executes with
	group   bender.Group      // the many-row activation group used for MAJ ops
	maxX    int               // widest usable majority operation

	reliable bitvec.Vec // per-column mask probed at construction
	regs     map[int]bool
	freeRegs []int
	nextReg  int

	// Reusable scratch. A Computer is single-threaded, so gates, copies
	// and the construction-time probe all run allocation-free on these
	// buffers: rowBufs backs operand staging (rows method), rowBuf is the
	// single-row scratch for complemented/neutral fills, outBuf receives
	// APA readbacks. Values handed out alias this storage and are only
	// valid until the next operation.
	rowBufs []bitvec.Vec
	rowBuf  bitvec.Vec
	outBuf  bitvec.Vec

	zeroReg int // constant all-0s register
	oneReg  int // constant all-1s register

	counts OpCounts
	trial  int
}

// OpCounts tallies the in-DRAM operations a computation issued; the cost
// model converts them to execution time.
type OpCounts struct {
	MAJ   map[int]int // majority width → count
	NOT   int         // inverted row copies
	Stage int         // operand placements (RowClone-equivalent)
}

// add merges other into o.
func (o *OpCounts) add(x int) {
	if o.MAJ == nil {
		o.MAJ = make(map[int]int)
	}
	o.MAJ[x]++
}

// NewComputer reserves a 32-row activation group in the subarray, probes
// its per-column reliability with worst-case-margin test vectors, and sets
// up constant rows. maxX bounds the majority width used (the module's
// profile may bound it further).
func NewComputer(mod *dram.Module, sa *dram.Subarray, maxX int) (*Computer, error) {
	return NewComputerAt(mod, sa, maxX, analog.NominalEnv(), timing.BestMAJ())
}

// NewComputerAt is NewComputer under explicit operating conditions: every
// majority operation — including the construction-time reliability probe —
// executes with the given environment and APA timings. The scenario
// mitigation axis uses this to co-simulate redundancy schemes across the
// operating envelope; NewComputer is the nominal-point special case.
func NewComputerAt(mod *dram.Module, sa *dram.Subarray, maxX int,
	env analog.Env, at timing.APATimings) (*Computer, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	if maxX < 3 || maxX%2 == 0 {
		return nil, fmt.Errorf("bitserial: maxX %d must be odd and >= 3", maxX)
	}
	if lim := mod.Spec().Profile.MaxMAJ; maxX > lim {
		maxX = lim
	}
	if maxX < 3 {
		return nil, fmt.Errorf("bitserial: %s chips cannot perform majority operations",
			mod.Spec().Profile.Manufacturer)
	}
	groups, err := bender.SampleGroups(sa, mod, 32, 8, 0xc0117)
	if err != nil {
		return nil, err
	}
	c := &Computer{
		sa:      sa,
		mod:     mod,
		env:     env,
		timings: at,
		maxX:    maxX,
		regs:    make(map[int]bool),
		rowBuf:  bitvec.New(sa.Cols()),
		outBuf:  bitvec.New(sa.Cols()),
	}
	// Probe every candidate group at every width and pick the one
	// supporting the widest majority with the most reliable columns — the
	// paper's "row group producing the highest throughput" selection
	// (§8.1). A width is usable only if it leaves more than a third of
	// the columns reliable; MAJ7/MAJ9 often are not (Obs. 8), in which
	// case the computer falls back to narrower fused operations.
	bestWidth, bestCount := 0, -1
	for _, g := range groups {
		width, mask, err := c.scoreGroup(g)
		if err != nil {
			return nil, err
		}
		count := 0
		if width > 0 {
			count = mask.PopCount()
		}
		if width > bestWidth || width == bestWidth && count > bestCount {
			bestWidth, bestCount = width, count
			c.group = g
			c.reliable = mask
		}
	}
	if bestWidth == 0 {
		return nil, fmt.Errorf("%w (best %d/%d columns)", ErrNoReliableGroup, bestCount, sa.Cols())
	}
	c.maxX = bestWidth

	c.zeroReg, err = c.AllocReg()
	if err != nil {
		return nil, err
	}
	c.oneReg, err = c.AllocReg()
	if err != nil {
		return nil, err
	}
	zero := bitvec.New(sa.Cols())
	ones := bitvec.New(sa.Cols())
	ones.Fill(true)
	if err := sa.WriteRowVec(c.zeroReg, zero); err != nil {
		return nil, err
	}
	if err := sa.WriteRowVec(c.oneReg, ones); err != nil {
		return nil, err
	}
	return c, nil
}

// scoreGroup probes a candidate group at widths 3, 5, ... up to the
// computer's bound, intersecting per-width reliability masks, and returns
// the widest usable majority (0 if even MAJ3 is unusable) with its mask.
func (c *Computer) scoreGroup(g bender.Group) (int, bitvec.Vec, error) {
	threshold := c.sa.Cols() / 3
	width := 0
	var reliable bitvec.Vec
	for x := 3; x <= c.maxX; x += 2 {
		mask, err := c.probeGroup(g, x)
		if err != nil {
			return 0, bitvec.Vec{}, err
		}
		if width > 0 {
			mask.And(mask, reliable)
		}
		if mask.PopCount() <= threshold {
			break
		}
		width = x
		reliable = mask
	}
	return width, reliable, nil
}

// probeGroup tests MAJX with minimal margins on a candidate group: every
// rotation of the one-vote-margin operand pattern, in both directions. A
// column passing all probes resolves any MAJX with at least that margin
// correctly: margins only grow with higher vote differences, and all
// per-column variation (sense threshold, coupling, cell capacitance,
// group viability) is static.
func (c *Computer) probeGroup(g bender.Group, x int) (bitvec.Vec, error) {
	saved := c.group
	c.group = g
	defer func() { c.group = saved }()

	cols := c.sa.Cols()
	mask := bitvec.New(cols)
	mask.Fill(true)
	// Every operand bitmask with a one-vote majority, in both directions:
	// C(x, (x+1)/2) · 2 compositions (6 for MAJ3, 252 for MAJ9). Each
	// composition is additionally probed in a *weakened* form with one
	// replica row of the winning side flipped: a column that still
	// resolves correctly keeps a margin reserve that survives a group row
	// dropping out of a later activation (wordline-assertion flicker).
	winners := (x + 1) / 2
	copies := c.group.N() / x
	for m := 0; m < 1<<x; m++ {
		pop := popcount(m)
		if pop != winners && pop != x-winners {
			continue
		}
		expectOne := pop == winners
		operands := c.rows(x)
		winnerSlot := -1
		for j := range operands {
			bit := m>>j&1 == 1
			if bit == expectOne && winnerSlot < 0 {
				winnerSlot = j
			}
			operands[j].Fill(bit)
		}
		// With replication available, probe two weakened variants (the
		// handicap lands on different replica rows, so two independent
		// capacitance draws would both have to sit in the tail for a
		// dropout to escape); without replication, probe plain.
		variants := []int{-1}
		if copies > 1 {
			variants = []int{weakenRowIndex(copies-1, x, winnerSlot),
				weakenRowIndex(0, x, winnerSlot)}
		}
		for _, weakenRow := range variants {
			// Repeat each probe: a metastable column resolves randomly per
			// trial and would pass a single look half the time.
			for rep := 0; rep < probeRepeats; rep++ {
				got, _, err := c.execMAJWeakened(operands, weakenRow)
				if err != nil {
					return bitvec.Vec{}, err
				}
				// Columns that missed the expected constant drop out of
				// the mask, one word-parallel step.
				if expectOne {
					mask.And(mask, got)
				} else {
					mask.AndNot(mask, got)
				}
			}
		}
	}
	return mask, nil
}

// rows returns n reusable column-width scratch rows, growing the
// computer's pool on demand. Contents are unspecified — callers overwrite
// them — and the slice is only valid until the next rows call.
func (c *Computer) rows(n int) []bitvec.Vec {
	for len(c.rowBufs) < n {
		c.rowBufs = append(c.rowBufs, bitvec.New(c.sa.Cols()))
	}
	return c.rowBufs[:n]
}

// popcount counts set bits.
func popcount(m int) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}

// Reliable returns the number of columns the compute group can use.
func (c *Computer) Reliable() int { return c.reliable.PopCount() }

// ReliableMask returns a copy of the per-column reliability mask.
func (c *Computer) ReliableMask() []bool { return c.reliable.Bools() }

// ReliableVec returns a packed copy of the per-column reliability mask.
func (c *Computer) ReliableVec() bitvec.Vec {
	out := bitvec.New(c.reliable.Len())
	out.Or(out, c.reliable)
	return out
}

// Counts returns the operation tallies so far.
func (c *Computer) Counts() OpCounts {
	out := c.counts
	out.MAJ = make(map[int]int, len(c.counts.MAJ))
	for k, v := range c.counts.MAJ {
		out.MAJ[k] = v
	}
	return out
}

// Group returns the compute group's rows.
func (c *Computer) Group() bender.Group { return c.group }

// Module returns the module the computer executes on.
func (c *Computer) Module() *dram.Module { return c.mod }

// Cols returns the number of SIMD lanes (subarray columns).
func (c *Computer) Cols() int { return c.sa.Cols() }

// WriteRowDirect writes a register row over the memory channel (a normal
// WR, not a PUD operation).
func (c *Computer) WriteRowDirect(reg int, bits []bool) error {
	return c.sa.WriteRow(reg, bits)
}

// ReadRowDirect reads a register row over the memory channel.
func (c *Computer) ReadRowDirect(reg int) ([]bool, error) {
	return c.sa.ReadRow(reg)
}

// WriteRowVecDirect is the packed form of WriteRowDirect: no []bool
// round trip on the fast path.
func (c *Computer) WriteRowVecDirect(reg int, v bitvec.Vec) error {
	return c.sa.WriteRowVec(reg, v)
}

// ReadRowVecDirect is the packed form of ReadRowDirect.
func (c *Computer) ReadRowVecDirect(reg int) (bitvec.Vec, error) {
	return c.sa.ReadRowVec(reg)
}

// MaxX returns the widest majority operation in use.
func (c *Computer) MaxX() int { return c.maxX }

// Zero and One return the constant registers.
func (c *Computer) Zero() int { return c.zeroReg }

// One returns the constant all-1s register.
func (c *Computer) One() int { return c.oneReg }

// AllocReg reserves a free row outside the compute group as a register.
func (c *Computer) AllocReg() (int, error) {
	if n := len(c.freeRegs); n > 0 {
		r := c.freeRegs[n-1]
		c.freeRegs = c.freeRegs[:n-1]
		c.regs[r] = true
		return r, nil
	}
	inGroup := make(map[int]bool, len(c.group.Rows))
	for _, r := range c.group.Rows {
		inGroup[r] = true
	}
	for ; c.nextReg < c.sa.Rows(); c.nextReg++ {
		if !inGroup[c.nextReg] && !c.regs[c.nextReg] {
			c.regs[c.nextReg] = true
			r := c.nextReg
			c.nextReg++
			return r, nil
		}
	}
	return 0, fmt.Errorf("bitserial: out of registers (%d rows)", c.sa.Rows())
}

// FreeReg releases a register for reuse.
func (c *Computer) FreeReg(r int) {
	if c.regs[r] {
		delete(c.regs, r)
		c.freeRegs = append(c.freeRegs, r)
	}
}

// execMAJ stages the operand rows into the compute group with replication
// and neutral fill, fires the APA, and returns the sensed result.
func (c *Computer) execMAJ(operands []bitvec.Vec) (bitvec.Vec, bool, error) {
	return c.execMAJWeakened(operands, -1)
}

// probeRepeats is how many times each probe composition is re-executed to
// screen metastable (trial-dependent) columns.
const probeRepeats = 3

// weakenRowIndex returns the staged-row index of replica `copy` of slot
// `slot` in the round-robin operand layout.
func weakenRowIndex(copy, x, slot int) int { return copy*x + slot }

// execMAJWeakened is execMAJ with an optional handicap used by the
// reliability probe: the staged row at index `weakenRow` is written with
// complemented data, reducing its side's vote margin by two.
func (c *Computer) execMAJWeakened(operands []bitvec.Vec, weakenRow int) (bitvec.Vec, bool, error) {
	x := len(operands)
	n := c.group.N()
	copies := n / x
	fracOK := c.mod.Spec().Profile.FracSupported
	if weakenRow >= copies*x {
		weakenRow = -1
	}
	scratch := c.rowBuf
	for i, r := range c.group.Rows {
		switch {
		case i == weakenRow:
			scratch.Not(operands[i%x])
			if err := c.sa.WriteRowVec(r, scratch); err != nil {
				return bitvec.Vec{}, false, err
			}
		case i < copies*x:
			if err := c.sa.WriteRowVec(r, operands[i%x]); err != nil {
				return bitvec.Vec{}, false, err
			}
		case fracOK:
			if err := c.sa.SetFracRow(r); err != nil {
				return bitvec.Vec{}, false, err
			}
		default:
			scratch.Fill((i-copies*x)%2 == 1)
			if err := c.sa.WriteRowVec(r, scratch); err != nil {
				return bitvec.Vec{}, false, err
			}
		}
	}
	c.trial++
	res, err := c.sa.APA(c.group.RF, c.group.RS, dram.APAOptions{
		Timings: c.timings,
		Env:     c.env,
		Trial:   c.trial,
		// Compute data is arbitrary: assume full coupling like the random
		// pattern, the paper's worst case.
		PatternCoupling: dram.PatternRandom.CouplingFactor(),
		MAJ:             &dram.MAJSpec{X: x, Copies: copies},
	})
	if err != nil {
		return bitvec.Vec{}, false, err
	}
	c.sa.Precharge()
	// The result aliases outBuf: callers consume it (mask fold, WriteRowVec)
	// before the next operation.
	if err := c.sa.ReadRowInto(c.outBuf, c.group.RF); err != nil {
		return bitvec.Vec{}, false, err
	}
	return c.outBuf, res.Viable, nil
}

// MAJ computes dst = MAJX(srcs...) across all columns. len(srcs) must be
// odd, at least 3, and at most the computer's usable width.
func (c *Computer) MAJ(dst int, srcs ...int) error {
	x := len(srcs)
	if x < 3 || x%2 == 0 || x > c.maxX {
		return fmt.Errorf("bitserial: MAJ%d unsupported (max %d)", x, c.maxX)
	}
	operands := c.rows(x)
	for j, s := range srcs {
		if err := c.sa.ReadRowInto(operands[j], s); err != nil {
			return err
		}
		c.counts.Stage++
	}
	got, _, err := c.execMAJ(operands)
	if err != nil {
		return err
	}
	c.counts.add(x)
	return c.sa.WriteRowVec(dst, got)
}

// NOT computes dst = ¬src (an inverted row copy, as Ambit's dual-contact
// rows provide; costed as one RowClone).
func (c *Computer) NOT(dst, src int) error {
	row := c.rowBuf
	if err := c.sa.ReadRowInto(row, src); err != nil {
		return err
	}
	row.Not(row)
	c.counts.NOT++
	return c.sa.WriteRowVec(dst, row)
}

// AND computes dst = a ∧ b = MAJ3(a, b, 0).
func (c *Computer) AND(dst, a, b int) error { return c.MAJ(dst, a, b, c.zeroReg) }

// OR computes dst = a ∨ b = MAJ3(a, b, 1).
func (c *Computer) OR(dst, a, b int) error { return c.MAJ(dst, a, b, c.oneReg) }

// ANDWide computes dst = AND(srcs...) using the widest available fused
// majority: ANDk(s₁..s_k) = MAJ(2k−1)(s₁..s_k, 0×(k−1)).
func (c *Computer) ANDWide(dst int, srcs ...int) error {
	return c.reduceWide(dst, c.zeroReg, srcs)
}

// ORWide computes dst = OR(srcs...) via ORk = MAJ(2k−1)(s₁..s_k, 1×(k−1)).
func (c *Computer) ORWide(dst int, srcs ...int) error {
	return c.reduceWide(dst, c.oneReg, srcs)
}

// reduceWide folds srcs with fan-in (maxX+1)/2 fused majority steps.
func (c *Computer) reduceWide(dst, fill int, srcs []int) error {
	if len(srcs) == 0 {
		return fmt.Errorf("bitserial: empty reduction")
	}
	if len(srcs) == 1 {
		row := c.rowBuf
		if err := c.sa.ReadRowInto(row, srcs[0]); err != nil {
			return err
		}
		c.counts.Stage++
		return c.sa.WriteRowVec(dst, row)
	}
	fanIn := (c.maxX + 1) / 2
	pending := append([]int(nil), srcs...)
	tmp, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(tmp)
	args := make([]int, 0, 2*fanIn-1)
	for len(pending) > 1 {
		k := fanIn
		if k > len(pending) {
			k = len(pending)
		}
		args = append(args[:0], pending[:k]...)
		for i := 0; i < k-1; i++ {
			args = append(args, fill)
		}
		out := tmp
		if len(pending) == k {
			out = dst
		}
		if err := c.MAJ(out, args...); err != nil {
			return err
		}
		pending = append([]int{out}, pending[k:]...)
	}
	return nil
}

// XOR computes dst = a ⊕ b = AND(NAND(a,b), OR(a,b)).
func (c *Computer) XOR(dst, a, b int) error {
	nand, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(nand)
	or, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(or)
	if err := c.AND(nand, a, b); err != nil {
		return err
	}
	if err := c.NOT(nand, nand); err != nil {
		return err
	}
	if err := c.OR(or, a, b); err != nil {
		return err
	}
	return c.AND(dst, nand, or)
}

// FullAdder computes (sum, carry) = a + b + cin. With MAJ5 available the
// sum uses the single-step majority identity
// SUM = MAJ5(a, b, cin, ¬carry, ¬carry); otherwise it falls back to two
// XOR gates.
func (c *Computer) FullAdder(sum, carry, a, b, cin int) error {
	tmpCarry, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(tmpCarry)
	if err := c.MAJ(tmpCarry, a, b, cin); err != nil {
		return err
	}
	if c.maxX >= 5 {
		ncarry, err := c.AllocReg()
		if err != nil {
			return err
		}
		defer c.FreeReg(ncarry)
		if err := c.NOT(ncarry, tmpCarry); err != nil {
			return err
		}
		if err := c.MAJ(sum, a, b, cin, ncarry, ncarry); err != nil {
			return err
		}
	} else {
		t, err := c.AllocReg()
		if err != nil {
			return err
		}
		defer c.FreeReg(t)
		if err := c.XOR(t, a, b); err != nil {
			return err
		}
		if err := c.XOR(sum, t, cin); err != nil {
			return err
		}
	}
	// Publish the carry after the sum consumed the operands (sum may alias
	// a, b or cin; carry must not be clobbered early).
	row, err := c.sa.ReadRowVec(tmpCarry)
	if err != nil {
		return err
	}
	c.counts.Stage++
	return c.sa.WriteRowVec(carry, row)
}
