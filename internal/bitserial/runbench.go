package bitserial

import (
	"fmt"
)

// RunResult reports a functionally executed microbenchmark: the in-DRAM
// operations it actually issued, the modeled execution time for those
// operations, and how many reliable lanes matched the CPU reference.
type RunResult struct {
	Benchmark Benchmark
	Width     int
	Lanes     int
	Counts    OpCounts
	ModeledNS float64
	Correct   int // reliable lanes matching the CPU reference
	Reliable  int // reliable lanes checked
}

// RunBenchmark executes one §8.1 microbenchmark functionally on the
// computer — real majority operations on the simulated DRAM — verifies
// the result against a CPU reference on the reliable lanes, and prices the
// issued operations with the latency model. Width is the element width in
// bits (the paper evaluates 32; smaller widths keep the functional run
// fast). The vectors are filled with deterministic pseudo-random data
// derived from seed.
func RunBenchmark(c *Computer, b Benchmark, width int, seed uint64) (RunResult, error) {
	if width <= 0 || width > 32 {
		return RunResult{}, fmt.Errorf("bitserial: width %d outside (0,32]", width)
	}
	lanes := c.Cols()
	av := pseudoValues(lanes, width, seed)
	bv := pseudoValues(lanes, width, seed+1)
	mask := uint64(1)<<uint(width) - 1
	// Avoid division by zero lanes.
	if b == BenchDIV {
		for i := range bv {
			if bv[i] == 0 {
				bv[i] = 1 + av[i]%5
			}
		}
	}

	a, err := c.NewVec(width)
	if err != nil {
		return RunResult{}, err
	}
	defer c.FreeVec(a)
	bvec, err := c.NewVec(width)
	if err != nil {
		return RunResult{}, err
	}
	defer c.FreeVec(bvec)
	d, err := c.NewVec(width)
	if err != nil {
		return RunResult{}, err
	}
	defer c.FreeVec(d)
	if err := c.Store(a, av); err != nil {
		return RunResult{}, err
	}
	if err := c.Store(bvec, bv); err != nil {
		return RunResult{}, err
	}

	before := c.Counts()
	var ref func(x, y uint64) uint64
	switch b {
	case BenchAND:
		err = c.VecAND(d, a, bvec)
		ref = func(x, y uint64) uint64 { return x & y }
	case BenchOR:
		err = c.VecOR(d, a, bvec)
		ref = func(x, y uint64) uint64 { return x | y }
	case BenchXOR:
		err = c.VecXOR(d, a, bvec)
		ref = func(x, y uint64) uint64 { return x ^ y }
	case BenchADD:
		err = c.VecADD(d, a, bvec)
		ref = func(x, y uint64) uint64 { return (x + y) & mask }
	case BenchSUB:
		err = c.VecSUB(d, a, bvec)
		ref = func(x, y uint64) uint64 { return (x - y) & mask }
	case BenchMUL:
		err = c.VecMUL(d, a, bvec)
		ref = func(x, y uint64) uint64 { return x * y & mask }
	case BenchDIV:
		err = c.VecDIV(d, Vec{}, a, bvec)
		ref = func(x, y uint64) uint64 { return x / y }
	default:
		return RunResult{}, fmt.Errorf("bitserial: unknown benchmark %q", b)
	}
	if err != nil {
		return RunResult{}, err
	}
	after := c.Counts()

	counts := OpCounts{
		NOT:   after.NOT - before.NOT,
		Stage: after.Stage - before.Stage,
		MAJ:   make(map[int]int),
	}
	for x, n := range after.MAJ {
		if delta := n - before.MAJ[x]; delta > 0 {
			counts.MAJ[x] = delta
		}
	}

	got, err := c.Load(d, lanes)
	if err != nil {
		return RunResult{}, err
	}
	maskLanes := c.ReliableMask()
	res := RunResult{
		Benchmark: b, Width: width, Lanes: lanes,
		Counts: counts, ModeledNS: ModeledTime(c, counts),
	}
	for i := 0; i < lanes; i++ {
		if !maskLanes[i] {
			continue
		}
		res.Reliable++
		if got[i] == ref(av[i], bv[i]) {
			res.Correct++
		}
	}
	return res, nil
}

// ModeledTime prices issued operations with the §8.1 latency model: each
// MAJX pays operand placement + replication + neutralization + the APA;
// NOTs and staging copies each pay a RowClone.
func ModeledTime(c *Computer, counts OpCounts) float64 {
	m := NewCostModel()
	fracOK := c.mod.Spec().Profile.FracSupported
	n := c.Group().N()
	t := 0.0
	for x, ops := range counts.MAJ {
		t += float64(ops) * m.MAJOpLatency(x, n, fracOK)
	}
	t += float64(counts.NOT) * m.Latency.RowClone()
	t += float64(counts.Stage) * m.Latency.RowClone()
	return t
}

// pseudoValues yields deterministic pseudo-random width-bit values.
func pseudoValues(n, width int, seed uint64) []uint64 {
	out := make([]uint64, n)
	mask := uint64(1)<<uint(width) - 1
	state := seed*0x9e3779b97f4a7c15 + 0x1234
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = state & mask
	}
	return out
}
