package bitserial

import (
	"math/bits"
	"testing"

	"repro/internal/dram"
)

// predVals reads a predicate register into booleans.
func predVals(t *testing.T, c *Computer, reg, n int) []bool {
	t.Helper()
	row, err := c.ReadRowDirect(reg)
	if err != nil {
		t.Fatal(err)
	}
	return row[:n]
}

func setupCompare(t *testing.T) (*Computer, Vec, Vec, []uint64, []uint64, int) {
	t.Helper()
	c := newComputer(t, dram.ProfileH, 3)
	const n = 48
	const w = 10
	av := randValues(n, w, 21)
	bv := randValues(n, w, 22)
	// Force some equal lanes so EQ has positives.
	for i := 0; i < n; i += 7 {
		bv[i] = av[i]
	}
	a, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		t.Fatal(err)
	}
	return c, a, b, av, bv, n
}

func TestVecEQ(t *testing.T) {
	c, a, b, av, bv, n := setupCompare(t)
	dst, err := c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VecEQ(dst, a, b); err != nil {
		t.Fatal(err)
	}
	got := predVals(t, c, dst, n)
	mask := c.ReliableMask()
	for i := 0; i < n; i++ {
		if !mask[i] {
			continue
		}
		if got[i] != (av[i] == bv[i]) {
			t.Fatalf("lane %d: EQ=%v for %d vs %d", i, got[i], av[i], bv[i])
		}
	}
}

func TestVecLTAndGE(t *testing.T) {
	c, a, b, av, bv, n := setupCompare(t)
	lt, err := c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	ge, err := c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VecLT(lt, a, b); err != nil {
		t.Fatal(err)
	}
	if err := c.VecGE(ge, a, b); err != nil {
		t.Fatal(err)
	}
	gotLT := predVals(t, c, lt, n)
	gotGE := predVals(t, c, ge, n)
	mask := c.ReliableMask()
	for i := 0; i < n; i++ {
		if !mask[i] {
			continue
		}
		if gotLT[i] != (av[i] < bv[i]) {
			t.Fatalf("lane %d: LT=%v for %d vs %d", i, gotLT[i], av[i], bv[i])
		}
		if gotGE[i] == gotLT[i] {
			t.Fatalf("lane %d: GE must complement LT", i)
		}
	}
}

func TestVecMinMax(t *testing.T) {
	c, a, b, av, bv, n := setupCompare(t)
	d, err := c.NewVec(a.Width())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VecMin(d, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = min(av[i], bv[i])
	}
	checkVec(t, c, got, want, "MIN")

	if err := c.VecMax(d, a, b); err != nil {
		t.Fatal(err)
	}
	got, err = c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = max(av[i], bv[i])
	}
	checkVec(t, c, got, want, "MAX")
}

func TestVecSelect(t *testing.T) {
	c, a, b, av, bv, n := setupCompare(t)
	sel, err := c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	// Alternate selector.
	row := make([]bool, c.Cols())
	for i := range row {
		row[i] = i%2 == 0
	}
	if err := c.WriteRowDirect(sel, row); err != nil {
		t.Fatal(err)
	}
	d, err := c.NewVec(a.Width())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VecSelect(d, sel, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		if i%2 == 0 {
			want[i] = av[i]
		} else {
			want[i] = bv[i]
		}
	}
	checkVec(t, c, got, want, "SELECT")
}

func TestPopCount(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	const n = 32
	const w = 12
	av := randValues(n, w, 33)
	a, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.PopCount(d, a); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = uint64(bits.OnesCount64(av[i]))
	}
	checkVec(t, c, got, want, "POPCOUNT")
}

func TestCompareValidation(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	a, _ := c.NewVec(8)
	b, _ := c.NewVec(16)
	r, _ := c.AllocReg()
	if err := c.VecEQ(r, a, b); err == nil {
		t.Fatal("width mismatch should fail")
	}
	if err := c.VecLT(r, a, b); err == nil {
		t.Fatal("width mismatch should fail")
	}
}
