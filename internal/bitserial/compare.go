package bitserial

import "fmt"

// Predicate operations: each writes a one-row result register holding the
// per-lane truth value, suitable as a mux selector (VecSelect) or bitmap.

// VecEQ computes dst[lane] = (a[lane] == b[lane]): the wide AND of the
// bitwise XNORs.
func (c *Computer) VecEQ(dst int, a, b Vec) error {
	if err := checkSameWidth(a, b); err != nil {
		return err
	}
	xnors := make([]int, a.width)
	defer func() {
		for _, r := range xnors {
			if r != 0 {
				c.FreeReg(r)
			}
		}
	}()
	for bit := 0; bit < a.width; bit++ {
		r, err := c.AllocReg()
		if err != nil {
			return err
		}
		xnors[bit] = r
		if err := c.XOR(r, a.Regs[bit], b.Regs[bit]); err != nil {
			return err
		}
		if err := c.NOT(r, r); err != nil {
			return err
		}
	}
	return c.ANDWide(dst, xnors...)
}

// VecLT computes dst[lane] = (a[lane] < b[lane]) unsigned: a − b borrows
// iff a < b, and the borrow is the complement of the ripple adder's final
// carry when computing a + ¬b + 1.
func (c *Computer) VecLT(dst int, a, b Vec) error {
	if err := checkSameWidth(a, b); err != nil {
		return err
	}
	nb, err := c.NewVec(b.width)
	if err != nil {
		return err
	}
	defer c.FreeVec(nb)
	if err := c.VecNOT(nb, b); err != nil {
		return err
	}
	diff, err := c.NewVec(a.width)
	if err != nil {
		return err
	}
	defer c.FreeVec(diff)
	carry, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(carry)
	if err := c.copyReg(carry, c.One()); err != nil {
		return err
	}
	if err := c.addWithCarry(diff, a, nb, carry); err != nil {
		return err
	}
	return c.NOT(dst, carry)
}

// VecGE computes dst[lane] = (a[lane] >= b[lane]) unsigned.
func (c *Computer) VecGE(dst int, a, b Vec) error {
	if err := c.VecLT(dst, a, b); err != nil {
		return err
	}
	return c.NOT(dst, dst)
}

// VecSelect computes dst[lane] = sel[lane] ? a[lane] : b[lane] per bit,
// with sel a predicate register.
func (c *Computer) VecSelect(dst Vec, sel int, a, b Vec) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	for bit := 0; bit < dst.width; bit++ {
		if err := c.mux(dst.Regs[bit], sel, a.Regs[bit], b.Regs[bit]); err != nil {
			return err
		}
	}
	return nil
}

// VecMin computes dst = min(a, b) element-wise (unsigned).
func (c *Computer) VecMin(dst, a, b Vec) error {
	return c.minMax(dst, a, b, true)
}

// VecMax computes dst = max(a, b) element-wise (unsigned).
func (c *Computer) VecMax(dst, a, b Vec) error {
	return c.minMax(dst, a, b, false)
}

func (c *Computer) minMax(dst, a, b Vec, min bool) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	sel, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(sel)
	if err := c.VecLT(sel, a, b); err != nil {
		return err
	}
	if min {
		return c.VecSelect(dst, sel, a, b)
	}
	return c.VecSelect(dst, sel, b, a)
}

// PopCount computes dst = number of set bits in a, as a vector of the same
// width (the count always fits). It adds the bit rows with a balanced
// adder tree over single-bit vectors.
func (c *Computer) PopCount(dst, a Vec) error {
	if err := checkSameWidth(dst, a); err != nil {
		return err
	}
	if a.width == 0 {
		return fmt.Errorf("bitserial: empty vector")
	}
	acc, err := c.NewVec(dst.width)
	if err != nil {
		return err
	}
	defer c.FreeVec(acc)
	operand, err := c.NewVec(dst.width)
	if err != nil {
		return err
	}
	defer c.FreeVec(operand)
	for bit := 0; bit < dst.width; bit++ {
		if err := c.copyReg(acc.Regs[bit], c.Zero()); err != nil {
			return err
		}
		if err := c.copyReg(operand.Regs[bit], c.Zero()); err != nil {
			return err
		}
	}
	for bit := 0; bit < a.width; bit++ {
		if err := c.copyReg(operand.Regs[0], a.Regs[bit]); err != nil {
			return err
		}
		if err := c.VecADD(acc, acc, operand); err != nil {
			return err
		}
	}
	for bit := 0; bit < dst.width; bit++ {
		if err := c.copyReg(dst.Regs[bit], acc.Regs[bit]); err != nil {
			return err
		}
	}
	return nil
}
