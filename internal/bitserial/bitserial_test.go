package bitserial

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/xrand"
)

func newComputer(t *testing.T, profile dram.Profile, maxX int) *Computer {
	t.Helper()
	spec := dram.NewSpec("bitserial-test", profile, 0xbead)
	spec.Columns = 128
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewComputer(mod, sa, maxX)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkVec compares DRAM results against a CPU reference on the reliable
// columns, requiring at least `minFrac` of all elements to match.
func checkVec(t *testing.T, c *Computer, got, want []uint64, label string) {
	t.Helper()
	mask := c.ReliableMask()
	total, match := 0, 0
	for e := range got {
		reliable := true
		if e < len(mask) {
			reliable = mask[e]
		}
		if !reliable {
			continue
		}
		total++
		if got[e] == want[e] {
			match++
		}
	}
	if total == 0 {
		t.Fatalf("%s: no reliable columns", label)
	}
	if match != total {
		t.Fatalf("%s: %d/%d reliable elements correct", label, match, total)
	}
}

func randValues(n int, width int, seed uint64) []uint64 {
	src := xrand.NewSource(seed)
	out := make([]uint64, n)
	mask := uint64(1)<<uint(width) - 1
	for i := range out {
		out[i] = src.Uint64() & mask
	}
	return out
}

func TestNewComputerValidation(t *testing.T) {
	spec := dram.NewSpec("v", dram.ProfileH, 1)
	spec.Columns = 64
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewComputer(mod, sa, 4); err == nil {
		t.Fatal("even maxX should fail")
	}
	if _, err := NewComputer(mod, sa, 1); err == nil {
		t.Fatal("maxX below 3 should fail")
	}
}

func TestComputerRejectsSamsung(t *testing.T) {
	spec := dram.NewSpec("s", dram.ProfileS, 1)
	spec.Columns = 64
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewComputer(mod, sa, 3); err == nil {
		t.Fatal("Samsung chips cannot compute")
	}
}

func TestReliabilityProbe(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	if c.Reliable() < c.sa.Cols()*3/4 {
		t.Fatalf("only %d/%d columns reliable", c.Reliable(), c.sa.Cols())
	}
}

func TestGatesMatchCPU(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 5)
	const n = 64
	av := randValues(n, 16, 1)
	bv := randValues(n, 16, 2)
	a, err := c.NewVec(16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewVec(16)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewVec(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		op   func(dst, x, y Vec) error
		ref  func(x, y uint64) uint64
	}{
		{"AND", c.VecAND, func(x, y uint64) uint64 { return x & y }},
		{"OR", c.VecOR, func(x, y uint64) uint64 { return x | y }},
		{"XOR", c.VecXOR, func(x, y uint64) uint64 { return x ^ y }},
	}
	for _, tc := range cases {
		if err := tc.op(d, a, b); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := c.Load(d, n)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]uint64, n)
		for i := range want {
			want[i] = tc.ref(av[i], bv[i])
		}
		checkVec(t, c, got, want, tc.name)
	}
}

func TestNOT(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	const n = 32
	av := randValues(n, 8, 3)
	a, err := c.NewVec(8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewVec(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.VecNOT(d, a); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = ^av[i] & 0xff
	}
	checkVec(t, c, got, want, "NOT")
}

func testArith(t *testing.T, profile dram.Profile, maxX int) {
	c := newComputer(t, profile, maxX)
	const n = 48
	const w = 12
	av := randValues(n, w, 4)
	bv := randValues(n, w, 5)
	mask := uint64(1)<<w - 1
	a, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	d, err := c.NewVec(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		t.Fatal(err)
	}

	if err := c.VecADD(d, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = (av[i] + bv[i]) & mask
	}
	checkVec(t, c, got, want, "ADD")

	if err := c.VecSUB(d, a, b); err != nil {
		t.Fatal(err)
	}
	got, err = c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		want[i] = (av[i] - bv[i]) & mask
	}
	checkVec(t, c, got, want, "SUB")
}

func TestArithMAJ3Only(t *testing.T) { testArith(t, dram.ProfileH, 3) }
func TestArithMAJ5(t *testing.T)     { testArith(t, dram.ProfileH, 5) }

func TestMUL(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 5)
	const n = 32
	const w = 8
	av := randValues(n, w, 6)
	bv := randValues(n, w, 7)
	mask := uint64(1)<<w - 1
	a, _ := c.NewVec(w)
	b, _ := c.NewVec(w)
	d, _ := c.NewVec(w)
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		t.Fatal(err)
	}
	if err := c.VecMUL(d, a, b); err != nil {
		t.Fatal(err)
	}
	got, err := c.Load(d, n)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]uint64, n)
	for i := range want {
		want[i] = av[i] * bv[i] & mask
	}
	checkVec(t, c, got, want, "MUL")
}

func TestDIV(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 5)
	const n = 24
	const w = 8
	av := randValues(n, w, 8)
	bv := randValues(n, w, 9)
	for i := range bv {
		if bv[i] == 0 {
			bv[i] = 1 + av[i]%7
		}
	}
	a, _ := c.NewVec(w)
	b, _ := c.NewVec(w)
	q, _ := c.NewVec(w)
	rm, _ := c.NewVec(w)
	if err := c.Store(a, av); err != nil {
		t.Fatal(err)
	}
	if err := c.Store(b, bv); err != nil {
		t.Fatal(err)
	}
	if err := c.VecDIV(q, rm, a, b); err != nil {
		t.Fatal(err)
	}
	gotQ, err := c.Load(q, n)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := c.Load(rm, n)
	if err != nil {
		t.Fatal(err)
	}
	wantQ := make([]uint64, n)
	wantR := make([]uint64, n)
	for i := range wantQ {
		wantQ[i] = av[i] / bv[i]
		wantR[i] = av[i] % bv[i]
	}
	checkVec(t, c, gotQ, wantQ, "DIV quotient")
	checkVec(t, c, gotR, wantR, "DIV remainder")
}

func TestWideReduction(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 7)
	const n = 32
	vals := make([][]uint64, 8)
	regs := make([]int, 8)
	for v := range vals {
		vals[v] = randValues(n, 1, uint64(10+v))
		r, err := c.AllocReg()
		if err != nil {
			t.Fatal(err)
		}
		regs[v] = r
		row := make([]bool, c.sa.Cols())
		for e, val := range vals[v] {
			row[e] = val == 1
		}
		if err := c.sa.WriteRow(r, row); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.ANDWide(dst, regs...); err != nil {
		t.Fatal(err)
	}
	row, err := c.sa.ReadRow(dst)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint64, n)
	want := make([]uint64, n)
	for e := 0; e < n; e++ {
		if row[e] {
			got[e] = 1
		}
		want[e] = 1
		for v := range vals {
			want[e] &= vals[v][e]
		}
	}
	checkVec(t, c, got, want, "ANDWide")

	if err := c.ORWide(dst, regs...); err != nil {
		t.Fatal(err)
	}
	row, err = c.sa.ReadRow(dst)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < n; e++ {
		got[e] = 0
		if row[e] {
			got[e] = 1
		}
		want[e] = 0
		for v := range vals {
			want[e] |= vals[v][e]
		}
	}
	checkVec(t, c, got, want, "ORWide")
}

func TestOpCountsTracked(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 5)
	before := c.Counts()
	a, _ := c.AllocReg()
	b, _ := c.AllocReg()
	d, _ := c.AllocReg()
	zero := make([]bool, c.sa.Cols())
	if err := c.sa.WriteRow(a, zero); err != nil {
		t.Fatal(err)
	}
	if err := c.sa.WriteRow(b, zero); err != nil {
		t.Fatal(err)
	}
	if err := c.AND(d, a, b); err != nil {
		t.Fatal(err)
	}
	after := c.Counts()
	if after.MAJ[3] != before.MAJ[3]+1 {
		t.Fatalf("MAJ3 count: %d -> %d", before.MAJ[3], after.MAJ[3])
	}
}

func TestVecValidation(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	if _, err := c.NewVec(0); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := c.NewVec(65); err == nil {
		t.Fatal("width > 64 should fail")
	}
	a, _ := c.NewVec(8)
	b, _ := c.NewVec(16)
	if err := c.VecADD(a, a, b); err == nil {
		t.Fatal("width mismatch should fail")
	}
	if err := c.Store(a, make([]uint64, c.sa.Cols()+1)); err == nil {
		t.Fatal("too many values should fail")
	}
}

func TestMAJWidthBoundedByProfile(t *testing.T) {
	c := newComputer(t, dram.ProfileM, 9) // Mfr. M caps at MAJ7
	if c.MaxX() > 7 {
		t.Fatalf("maxX = %d, must be capped at 7 on Mfr. M", c.MaxX())
	}
	a, _ := c.AllocReg()
	if err := c.MAJ(a, a, a, a, a, a, a, a, a, a); err == nil {
		t.Fatal("MAJ9 should fail on Mfr. M")
	}
}

func TestCostModelBasics(t *testing.T) {
	m := NewCostModel()
	for _, b := range Benchmarks {
		for _, x := range []int{3, 5, 7, 9} {
			ops, err := OpsPerElementOp(b, x, 32)
			if err != nil {
				t.Fatal(err)
			}
			if ops <= 0 {
				t.Fatalf("%s MAJ%d: %v ops", b, x, ops)
			}
		}
		// Wider majority must reduce op counts.
		o3, _ := OpsPerElementOp(b, 3, 32)
		o9, _ := OpsPerElementOp(b, 9, 32)
		if o9 >= o3 {
			t.Fatalf("%s: MAJ9 ops %v not below MAJ3 ops %v", b, o9, o3)
		}
	}
	if _, err := OpsPerElementOp(BenchADD, 11, 32); err == nil {
		t.Fatal("MAJ11 should fail")
	}
	if _, err := m.BenchmarkTime(BenchADD, 5, 2048, 1024, 0, true); err == nil {
		t.Fatal("zero success should fail")
	}
	if _, err := m.BenchmarkTime(BenchADD, 5, 0, 1024, 0.9, true); err == nil {
		t.Fatal("zero elements should fail")
	}
}

// TestSpeedupShape: with comparable success rates, MAJ5 and MAJ7 beat the
// MAJ3 baseline; a collapsed MAJ9 success rate (Mfr. H's ~best-group 30%)
// turns MAJ9 into a slowdown (Fig. 16's third observation).
func TestSpeedupShape(t *testing.T) {
	m := NewCostModel()
	s5, err := m.Speedup(BenchADD, 5, 2048, 1024, 0.95, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	if s5 <= 1 {
		t.Fatalf("MAJ5 ADD speedup = %.2f, want > 1", s5)
	}
	s7, err := m.Speedup(BenchADD, 7, 2048, 1024, 0.9, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	if s7 <= s5 {
		t.Fatalf("MAJ7 speedup %.2f should beat MAJ5's %.2f", s7, s5)
	}
	s9, err := m.Speedup(BenchADD, 9, 2048, 1024, 0.3, 0.9, true)
	if err != nil {
		t.Fatal(err)
	}
	if s9 >= 1 {
		t.Fatalf("MAJ9 with 30%% success should degrade, got %.2f", s9)
	}
}
