package bitserial

import (
	"testing"

	"repro/internal/dram"
)

func TestRunBenchmarkAllSeven(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 5)
	for _, b := range Benchmarks {
		width := 10
		if b == BenchMUL || b == BenchDIV {
			width = 6 // keep the O(w²) benchmarks quick
		}
		res, err := RunBenchmark(c, b, width, 42)
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if res.Reliable == 0 {
			t.Fatalf("%s: no reliable lanes", b)
		}
		if res.Correct != res.Reliable {
			t.Fatalf("%s: %d/%d reliable lanes correct", b, res.Correct, res.Reliable)
		}
		if res.ModeledNS <= 0 {
			t.Fatalf("%s: non-positive modeled time", b)
		}
		total := res.Counts.NOT + res.Counts.Stage
		for _, n := range res.Counts.MAJ {
			total += n
		}
		if total == 0 {
			t.Fatalf("%s: no operations recorded", b)
		}
	}
}

// TestRunBenchmarkCostOrdering: functionally measured op counts reproduce
// the analytic ordering — MUL and DIV dwarf ADD, which dwarfs AND.
func TestRunBenchmarkCostOrdering(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	times := make(map[Benchmark]float64)
	for _, b := range []Benchmark{BenchAND, BenchADD, BenchMUL} {
		res, err := RunBenchmark(c, b, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		times[b] = res.ModeledNS
	}
	if !(times[BenchAND] < times[BenchADD] && times[BenchADD] < times[BenchMUL]) {
		t.Fatalf("cost ordering violated: %v", times)
	}
}

// TestRunBenchmarkMAJ5CheaperAdders: with MAJ5 available the adder chain
// issues fewer majority operations than the MAJ3-only construction.
func TestRunBenchmarkMAJ5CheaperAdders(t *testing.T) {
	run := func(maxX int) int {
		c := newComputer(t, dram.ProfileH, maxX)
		if c.MaxX() < maxX {
			t.Skipf("no MAJ%d-capable group at this seed", maxX)
		}
		res, err := RunBenchmark(c, BenchADD, 10, 5)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, n := range res.Counts.MAJ {
			total += n
		}
		return total
	}
	maj3Only := run(3)
	withMAJ5 := run(5)
	if withMAJ5 >= maj3Only {
		t.Fatalf("MAJ5 adders issued %d MAJ ops, MAJ3-only %d", withMAJ5, maj3Only)
	}
}

func TestRunBenchmarkValidation(t *testing.T) {
	c := newComputer(t, dram.ProfileH, 3)
	if _, err := RunBenchmark(c, BenchADD, 0, 1); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := RunBenchmark(c, Benchmark("NOP"), 8, 1); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}
