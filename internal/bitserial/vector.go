package bitserial

import (
	"fmt"

	"repro/internal/bitvec"
)

// Vec is a bit-sliced vector of W-bit unsigned integers: bit i of every
// element lives in DRAM row Regs[i] (least-significant bit first). One Vec
// holds as many elements as the subarray has columns.
type Vec struct {
	Regs  []int
	width int
}

// Width returns the element width in bits.
func (v Vec) Width() int { return v.width }

// NewVec allocates a W-bit vector.
func (c *Computer) NewVec(width int) (Vec, error) {
	if width <= 0 || width > 64 {
		return Vec{}, fmt.Errorf("bitserial: vector width %d outside (0,64]", width)
	}
	regs := make([]int, width)
	for i := range regs {
		r, err := c.AllocReg()
		if err != nil {
			return Vec{}, err
		}
		regs[i] = r
	}
	return Vec{Regs: regs, width: width}, nil
}

// FreeVec releases the vector's registers.
func (c *Computer) FreeVec(v Vec) {
	for _, r := range v.Regs {
		c.FreeReg(r)
	}
}

// Store loads element values into the vector (element e in column e).
// Missing elements are zero; excess values are rejected.
func (c *Computer) Store(v Vec, values []uint64) error {
	cols := c.sa.Cols()
	if len(values) > cols {
		return fmt.Errorf("bitserial: %d values exceed %d columns", len(values), cols)
	}
	row := bitvec.New(cols)
	for bit := 0; bit < v.width; bit++ {
		row.Fill(false)
		for e, val := range values {
			if (val>>uint(bit))&1 == 1 {
				row.Set(e, true)
			}
		}
		if err := c.sa.WriteRowVec(v.Regs[bit], row); err != nil {
			return err
		}
	}
	return nil
}

// Load reads the vector's first n elements back.
func (c *Computer) Load(v Vec, n int) ([]uint64, error) {
	if n > c.sa.Cols() {
		n = c.sa.Cols()
	}
	out := make([]uint64, n)
	row := bitvec.New(c.sa.Cols())
	for bit := 0; bit < v.width; bit++ {
		if err := c.sa.ReadRowInto(row, v.Regs[bit]); err != nil {
			return nil, err
		}
		for e := 0; e < n; e++ {
			if row.Get(e) {
				out[e] |= 1 << uint(bit)
			}
		}
	}
	return out, nil
}

// checkSameWidth validates operand widths match.
func checkSameWidth(vs ...Vec) error {
	for i := 1; i < len(vs); i++ {
		if vs[i].width != vs[0].width {
			return fmt.Errorf("bitserial: width mismatch %d vs %d", vs[i].width, vs[0].width)
		}
	}
	return nil
}

// VecAND computes dst = a & b element-wise.
func (c *Computer) VecAND(dst, a, b Vec) error { return c.vecGate(dst, a, b, c.AND) }

// VecOR computes dst = a | b element-wise.
func (c *Computer) VecOR(dst, a, b Vec) error { return c.vecGate(dst, a, b, c.OR) }

// VecXOR computes dst = a ^ b element-wise.
func (c *Computer) VecXOR(dst, a, b Vec) error { return c.vecGate(dst, a, b, c.XOR) }

func (c *Computer) vecGate(dst, a, b Vec, gate func(d, x, y int) error) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	for bit := 0; bit < dst.width; bit++ {
		if err := gate(dst.Regs[bit], a.Regs[bit], b.Regs[bit]); err != nil {
			return err
		}
	}
	return nil
}

// VecNOT computes dst = ^a element-wise.
func (c *Computer) VecNOT(dst, a Vec) error {
	if err := checkSameWidth(dst, a); err != nil {
		return err
	}
	for bit := 0; bit < dst.width; bit++ {
		if err := c.NOT(dst.Regs[bit], a.Regs[bit]); err != nil {
			return err
		}
	}
	return nil
}

// VecADD computes dst = a + b (mod 2^W) with a ripple-carry majority adder.
func (c *Computer) VecADD(dst, a, b Vec) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	carry, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(carry)
	// carry starts at 0.
	if err := c.copyReg(carry, c.Zero()); err != nil {
		return err
	}
	return c.addWithCarry(dst, a, b, carry)
}

// addWithCarry ripples a+b+carry into dst, leaving the final carry in the
// carry register.
func (c *Computer) addWithCarry(dst, a, b Vec, carry int) error {
	sum, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(sum)
	for bit := 0; bit < dst.width; bit++ {
		if err := c.FullAdder(sum, carry, a.Regs[bit], b.Regs[bit], carry); err != nil {
			return err
		}
		if err := c.copyReg(dst.Regs[bit], sum); err != nil {
			return err
		}
	}
	return nil
}

// VecSUB computes dst = a - b (mod 2^W) as a + ¬b + 1.
func (c *Computer) VecSUB(dst, a, b Vec) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	nb, err := c.NewVec(b.width)
	if err != nil {
		return err
	}
	defer c.FreeVec(nb)
	if err := c.VecNOT(nb, b); err != nil {
		return err
	}
	carry, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(carry)
	if err := c.copyReg(carry, c.One()); err != nil { // +1 via carry-in
		return err
	}
	return c.addWithCarry(dst, a, nb, carry)
}

// VecMUL computes dst = a * b (mod 2^W) with shift-and-add over majority
// adders: for each bit j of b, the partial product (a << j) & b_j is
// accumulated.
func (c *Computer) VecMUL(dst, a, b Vec) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	w := dst.width
	acc, err := c.NewVec(w)
	if err != nil {
		return err
	}
	defer c.FreeVec(acc)
	partial, err := c.NewVec(w)
	if err != nil {
		return err
	}
	defer c.FreeVec(partial)
	for bit := 0; bit < w; bit++ {
		if err := c.copyReg(acc.Regs[bit], c.Zero()); err != nil {
			return err
		}
	}
	for j := 0; j < w; j++ {
		// partial = (a << j) masked by b's bit j.
		for bit := 0; bit < w; bit++ {
			if bit < j {
				if err := c.copyReg(partial.Regs[bit], c.Zero()); err != nil {
					return err
				}
				continue
			}
			if err := c.AND(partial.Regs[bit], a.Regs[bit-j], b.Regs[j]); err != nil {
				return err
			}
		}
		if err := c.VecADD(acc, acc, partial); err != nil {
			return err
		}
	}
	for bit := 0; bit < w; bit++ {
		if err := c.copyReg(dst.Regs[bit], acc.Regs[bit]); err != nil {
			return err
		}
	}
	return nil
}

// VecDIV computes dst = a / b (unsigned restoring division; elements with
// b == 0 produce all-1s, the conventional saturating result). rem, when
// non-empty, receives the remainder.
func (c *Computer) VecDIV(dst, rem, a, b Vec) error {
	if err := checkSameWidth(dst, a, b); err != nil {
		return err
	}
	w := dst.width
	// Remainder accumulator with one headroom bit to catch the SUB borrow.
	r, err := c.NewVec(w + 1)
	if err != nil {
		return err
	}
	defer c.FreeVec(r)
	bw, err := c.NewVec(w + 1)
	if err != nil {
		return err
	}
	defer c.FreeVec(bw)
	diff, err := c.NewVec(w + 1)
	if err != nil {
		return err
	}
	defer c.FreeVec(diff)
	for bit := 0; bit <= w; bit++ {
		if err := c.copyReg(r.Regs[bit], c.Zero()); err != nil {
			return err
		}
		src := c.Zero()
		if bit < w {
			src = b.Regs[bit]
		}
		if err := c.copyReg(bw.Regs[bit], src); err != nil {
			return err
		}
	}
	noBorrow, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(noBorrow)

	for j := w - 1; j >= 0; j-- {
		// r = (r << 1) | a_j : shift up and bring in the next dividend bit.
		for bit := w; bit >= 1; bit-- {
			if err := c.copyReg(r.Regs[bit], r.Regs[bit-1]); err != nil {
				return err
			}
		}
		if err := c.copyReg(r.Regs[0], a.Regs[j]); err != nil {
			return err
		}
		// diff = r - b; the top bit of diff is the borrow indicator.
		if err := c.VecSUB(diff, r, bw); err != nil {
			return err
		}
		// noBorrow = ¬diff[w] (diff >= 0) is the quotient bit.
		if err := c.NOT(noBorrow, diff.Regs[w]); err != nil {
			return err
		}
		if err := c.copyReg(dst.Regs[j], noBorrow); err != nil {
			return err
		}
		// r = noBorrow ? diff : r, per bit: MAJ3-based mux.
		for bit := 0; bit <= w; bit++ {
			if err := c.mux(r.Regs[bit], noBorrow, diff.Regs[bit], r.Regs[bit]); err != nil {
				return err
			}
		}
	}
	if len(rem.Regs) > 0 {
		if err := checkSameWidth(rem, a); err != nil {
			return err
		}
		for bit := 0; bit < w; bit++ {
			if err := c.copyReg(rem.Regs[bit], r.Regs[bit]); err != nil {
				return err
			}
		}
	}
	return nil
}

// mux computes dst = sel ? t : f = OR(AND(sel, t), AND(¬sel, f)).
func (c *Computer) mux(dst, sel, t, f int) error {
	nsel, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(nsel)
	at, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(at)
	af, err := c.AllocReg()
	if err != nil {
		return err
	}
	defer c.FreeReg(af)
	if err := c.NOT(nsel, sel); err != nil {
		return err
	}
	if err := c.AND(at, sel, t); err != nil {
		return err
	}
	if err := c.AND(af, nsel, f); err != nil {
		return err
	}
	return c.OR(dst, at, af)
}

// copyReg copies one register row to another (a RowClone-equivalent).
func (c *Computer) copyReg(dst, src int) error {
	if dst == src {
		return nil
	}
	row, err := c.sa.ReadRowVec(src)
	if err != nil {
		return err
	}
	c.counts.Stage++
	return c.sa.WriteRowVec(dst, row)
}
