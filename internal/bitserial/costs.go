package bitserial

import (
	"fmt"

	"repro/internal/bender"
)

// Benchmark names the seven §8.1 microbenchmarks, in Fig. 16's order.
type Benchmark string

// The microbenchmarks: 32-bit logic and arithmetic over 8 KB of elements.
// AND/OR/XOR are the bulk multi-vector reductions the paper's bitmap-index
// motivation implies (8-way); ADD/SUB/MUL/DIV are element-wise 32-bit
// arithmetic.
const (
	BenchAND Benchmark = "AND"
	BenchOR  Benchmark = "OR"
	BenchXOR Benchmark = "XOR"
	BenchADD Benchmark = "ADD"
	BenchSUB Benchmark = "SUB"
	BenchMUL Benchmark = "MUL"
	BenchDIV Benchmark = "DIV"
)

// Benchmarks lists the microbenchmarks in the paper's order.
var Benchmarks = []Benchmark{
	BenchAND, BenchOR, BenchXOR, BenchADD, BenchSUB, BenchMUL, BenchDIV,
}

// gateCosts holds per-construct operation counts for a majority width.
// The constructions:
//
//   - reduceOps: ops to fold an 8-way bulk AND/OR reduction per bit-slice
//     (fan-in (X+1)/2 fused majority tree).
//   - xorOps: majority ops per 2-input XOR (MAJ3: AND+NAND+OR+AND = 3 MAJ
//   - 1 NOT; MAJ5+: half-adder identity cuts one level; MAJ7/9: fused
//     three-input parity [Alkaldy+, AJSE'14]).
//   - faOps: majority ops per full adder (MAJ3: carry + 2 XORs ≈ 7 MAJ;
//     MAJ5: carry + SUM=MAJ5(a,b,c,¬cout,¬cout) = 2 MAJ + 1 NOT; MAJ7/9:
//     (5;2)/(7;2) parallel-counter fusion amortizes the carry chain over
//     multiple bit positions).
type gateCosts struct {
	reduceOps float64
	xorOps    float64
	faOps     float64
}

// costsFor returns the construct costs for a majority width. The MAJ3
// column is exact from the constructions in computer.go; the wider columns
// follow the fused majority-logic constructions referenced above.
func costsFor(x int) (gateCosts, error) {
	switch x {
	case 3:
		return gateCosts{reduceOps: 7, xorOps: 4.5, faOps: 12}, nil
	case 5:
		return gateCosts{reduceOps: 4, xorOps: 3, faOps: 3}, nil
	case 7:
		return gateCosts{reduceOps: 2, xorOps: 1.5, faOps: 1.2}, nil
	case 9:
		// MAJ9 fuses no further than MAJ7's constructions (the extra
		// operands buy fault tolerance, not arithmetic fan-in), so its
		// higher setup cost and lower success rate make it a net loss —
		// the paper's Fig. 16 degradation observation.
		return gateCosts{reduceOps: 2, xorOps: 1.5, faOps: 1.2}, nil
	default:
		return gateCosts{}, fmt.Errorf("bitserial: no cost model for MAJ%d", x)
	}
}

// OpsPerElementOp returns the number of in-DRAM majority operations one
// 32-bit microbenchmark operation costs when built from MAJX.
func OpsPerElementOp(b Benchmark, x, width int) (float64, error) {
	g, err := costsFor(x)
	if err != nil {
		return 0, err
	}
	w := float64(width)
	switch b {
	case BenchAND, BenchOR:
		return w * g.reduceOps, nil
	case BenchXOR:
		return w * g.xorOps * 2, nil // 8-way parity ≈ 7 XOR2 ≈ 2·xorOps·w/… folded tree
	case BenchADD:
		return w * g.faOps, nil
	case BenchSUB:
		return w*g.faOps + w*0.25, nil // + inverted-copy staging
	case BenchMUL:
		// Shift-and-add: width partial products (1 AND per bit) + width adds.
		return w*(w*g.faOps) + w*w*1, nil
	case BenchDIV:
		// Restoring division: width iterations of SUB + per-bit mux (3 MAJ).
		return w*(w+1)*g.faOps + w*(w+1)*3, nil
	default:
		return 0, fmt.Errorf("bitserial: unknown benchmark %q", b)
	}
}

// CostModel converts operation counts into execution time, following the
// §8.1 methodology: RowClone places each MAJX input, Multi-RowCopy
// replicates it across the activation group, Frac neutralizes leftovers,
// and the measured best-group success rate sets the retry factor.
type CostModel struct {
	Latency bender.LatencyModel
	// RowsPerMAJ is the activation group size used for MAJX (32 in §8.1).
	RowsPerMAJ int
	// BaselineRows is the activation group of the MAJ3 baseline (4-row
	// activation, the state of the art prior to this paper).
	BaselineRows int
}

// NewCostModel returns the §8.1 configuration.
func NewCostModel() CostModel {
	return CostModel{
		Latency:      bender.NewLatencyModel(),
		RowsPerMAJ:   32,
		BaselineRows: 4,
	}
}

// MAJOpLatency returns the latency (ns) of one MAJX operation with n-row
// activation including input placement, replication and neutralization.
func (m CostModel) MAJOpLatency(x, n int, fracSupported bool) float64 {
	return m.Latency.MAJSetup(x, n, fracSupported) + m.Latency.MAJ()
}

// BenchmarkTime returns the modeled execution time (ns) of one 32-bit
// microbenchmark over `elements` elements laid out `lanes` elements per
// row, built from MAJX ops with the given best-group success rate.
// Failed operations are retried, so the effective latency scales with
// 1/success.
func (m CostModel) BenchmarkTime(b Benchmark, x int, elements, lanes int,
	success float64, fracSupported bool) (float64, error) {

	if success <= 0 || success > 1 {
		return 0, fmt.Errorf("bitserial: success rate %v outside (0,1]", success)
	}
	if lanes <= 0 || elements <= 0 {
		return 0, fmt.Errorf("bitserial: elements and lanes must be positive")
	}
	ops, err := OpsPerElementOp(b, x, 32)
	if err != nil {
		return 0, err
	}
	batches := (elements + lanes - 1) / lanes
	perOp := m.MAJOpLatency(x, m.RowsPerMAJ, fracSupported) / success
	return float64(batches) * ops * perOp, nil
}

// BaselineTime returns the execution time of the state-of-the-art
// baseline: MAJ3 with 4-row activation (no replication).
func (m CostModel) BaselineTime(b Benchmark, elements, lanes int,
	success float64, fracSupported bool) (float64, error) {

	base := m
	base.RowsPerMAJ = m.BaselineRows
	return base.BenchmarkTime(b, 3, elements, lanes, success, fracSupported)
}

// Speedup returns baselineTime / majXTime for one microbenchmark.
func (m CostModel) Speedup(b Benchmark, x int, elements, lanes int,
	successX, successBase float64, fracSupported bool) (float64, error) {

	tx, err := m.BenchmarkTime(b, x, elements, lanes, successX, fracSupported)
	if err != nil {
		return 0, err
	}
	tb, err := m.BaselineTime(b, elements, lanes, successBase, fracSupported)
	if err != nil {
		return 0, err
	}
	return tb / tx, nil
}
