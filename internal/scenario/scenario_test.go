package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/bender"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fleet"
)

// smallConfig keeps scenario tests fast: two modules, minimal sampling.
func smallConfig() Config {
	cfg := DefaultConfig()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	reps := fleet.Representative(fc)
	cfg.Fleet = []fleet.Entry{reps[0], reps[3]} // one H, one M
	cfg.Trials = 2
	cfg.GroupsPerSubarray = 2
	cfg.Banks = 1
	return cfg
}

// smallGrid is a 2×2 t2 × temperature matrix.
func smallGrid() Grid {
	return Grid{T2: []float64{1.5, 3.0}, Temp: []float64{50, 90}}
}

func TestPointsEnumeration(t *testing.T) {
	g := Grid{
		T2:       []float64{1.5, 3.0},
		Rows:     []int{16, 32},
		Patterns: []dram.Pattern{dram.PatternRandom, dram.PatternAll0},
	}.withDefaults(core.OpManyRowActivation)
	pts := g.points(core.OpManyRowActivation)
	if len(pts) != 2*2*2 {
		t.Fatalf("got %d points, want 8", len(pts))
	}
	// Canonical nesting: rows outermost, then pattern, then t2.
	if pts[0].N != 16 || pts[4].N != 32 {
		t.Fatalf("rows not outermost: %+v", pts)
	}
	if pts[0].T2 != 1.5 || pts[1].T2 != 3.0 {
		t.Fatalf("t2 not innermost among the set: %+v", pts[:2])
	}
	// Unset axes collapse to the nominal point.
	if pts[0].TempC != 50 || pts[0].VPP != 2.5 || pts[0].Aging != 0 {
		t.Fatalf("unset axes not nominal: %+v", pts[0])
	}
	if pts[0].T1 != 3.0 { // BestSiMRA
		t.Fatalf("t1 default not BestSiMRA: %+v", pts[0])
	}
}

func TestGridDefaultsPerOp(t *testing.T) {
	maj := Grid{}.withDefaults(core.OpMAJ).points(core.OpMAJ)[0]
	if maj.T1 != 1.5 || maj.T2 != 3.0 || maj.X != 3 {
		t.Fatalf("MAJ defaults: %+v", maj)
	}
	cp := Grid{}.withDefaults(core.OpMultiRowCopy).points(core.OpMultiRowCopy)[0]
	if cp.T1 != 36.0 || cp.T2 != 3.0 {
		t.Fatalf("copy defaults: %+v", cp)
	}
}

func TestGridScan(t *testing.T) {
	cfg := smallConfig()
	cfg.Grid = smallGrid()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("got %d points, want 4", len(res.Points))
	}
	for _, pr := range res.Points {
		if pr.Pooled.N == 0 {
			t.Fatalf("point %+v pooled no groups", pr.Point)
		}
		if len(pr.Modules) != 2 {
			t.Fatalf("point %+v has %d module cells, want 2", pr.Point, len(pr.Modules))
		}
	}
	// The t2 = 1.5 ns cliff (Obs. 2): success at t2=1.5 must sit well
	// below t2=3.0 at the same temperature.
	lo, hi := res.Points[0], res.Points[2]
	if lo.Point.T2 != 1.5 || hi.Point.T2 != 3.0 || lo.Point.TempC != hi.Point.TempC {
		t.Fatalf("unexpected point order: %+v vs %+v", lo.Point, hi.Point)
	}
	if lo.Pooled.Mean >= hi.Pooled.Mean {
		t.Fatalf("no t2 cliff: mean %.4f at t2=1.5 vs %.4f at t2=3.0",
			lo.Pooled.Mean, hi.Pooled.Mean)
	}
	if res.Stats.ShardsTotal == 0 || res.Stats.ShardsDone != res.Stats.ShardsTotal {
		t.Fatalf("stats %+v: want all shards done", res.Stats)
	}
}

// TestGridScanMemo is the PR's acceptance criterion at the subsystem
// level: repeating a grid scan against a shared shard memo reports cached
// shards and returns bit-identical results in all three modes (off, cold,
// warm).
func TestGridScanMemo(t *testing.T) {
	run := func(memo *cache.Typed[[]core.GroupOutcome]) (*Result, string) {
		cfg := smallConfig()
		cfg.Grid = smallGrid()
		cfg.Engine.Workers = 4
		if memo != nil {
			cfg.Memo = memo
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := WriteReport(&b, res, "text"); err != nil {
			t.Fatal(err)
		}
		return res, b.String()
	}

	plain, plainOut := run(nil)
	store := cache.New(0)
	memo := cache.NewTyped[[]core.GroupOutcome](store, nil)
	cold, coldOut := run(memo)
	warm, warmOut := run(memo)

	if plainOut != coldOut || plainOut != warmOut {
		t.Fatal("report bytes differ across cache modes")
	}
	if !reflect.DeepEqual(plain.Points, cold.Points) || !reflect.DeepEqual(plain.Points, warm.Points) {
		t.Fatal("structured results differ across cache modes")
	}
	if cold.Stats.ShardsCached != 0 {
		t.Fatalf("cold run reported %d cached shards; want 0", cold.Stats.ShardsCached)
	}
	if warm.Stats.ShardsCached == 0 || warm.Stats.ShardsCached != warm.Stats.ShardsTotal {
		t.Fatalf("warm run stats %+v; want every shard served from the memo", warm.Stats)
	}
	if warm.Stats.Activations != 0 {
		t.Fatalf("warm run issued %d activations; want 0 (pure cache)", warm.Stats.Activations)
	}
}

func TestEnvelopeMinViableT2(t *testing.T) {
	cfg := smallConfig()
	cfg.Envelope = &Envelope{Axis: "t2", Target: 0.9}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 2 {
		t.Fatalf("got %d cells, want one per module", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Status != StatusMinViable {
			t.Fatalf("module %s: status %q, want %q (rates %.4f → %.4f)",
				c.Module, c.Status, StatusMinViable, c.RateLo, c.RateHi)
		}
		if c.Boundary <= c.Lo || c.Boundary >= c.Hi {
			t.Fatalf("module %s: boundary %.3f outside (%g, %g)", c.Module, c.Boundary, c.Lo, c.Hi)
		}
		if c.RateLo >= 0.9 || c.RateHi < 0.9 {
			t.Fatalf("module %s: endpoint rates %.4f/%.4f inconsistent with a rising cliff",
				c.Module, c.RateLo, c.RateHi)
		}
	}
}

func TestEnvelopeStatuses(t *testing.T) {
	run := func(target float64) []EnvelopeCell {
		cfg := smallConfig()
		cfg.Envelope = &Envelope{Axis: "t2", Target: target}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cells
	}
	// A target below every measured rate: the whole range passes.
	for _, c := range run(0.01) {
		if c.Status != StatusPass {
			t.Fatalf("target 1%%: status %q, want pass", c.Status)
		}
		if c.Boundary != c.Lo {
			t.Fatalf("pass cell boundary %.3f, want lo %g", c.Boundary, c.Lo)
		}
	}
	// An unreachable target: every cell fails.
	for _, c := range run(0.999999) {
		if c.Status != StatusFail {
			t.Fatalf("target ~100%%: status %q, want fail", c.Status)
		}
	}
}

// TestEnvelopeSharesGridCache pins the key-family claim: a grid scan that
// visited the envelope's endpoint probes warms the envelope search, which
// then reports cached shards.
func TestEnvelopeSharesGridCache(t *testing.T) {
	store := cache.New(0)
	memo := cache.NewTyped[[]core.GroupOutcome](store, nil)

	grid := smallConfig()
	grid.Grid = Grid{T2: []float64{1.5, 12}}
	grid.Memo = memo
	if _, err := Run(context.Background(), grid); err != nil {
		t.Fatal(err)
	}

	env := smallConfig()
	env.Envelope = &Envelope{Axis: "t2"} // default bounds [1.5, 12]
	env.Memo = memo
	res, err := Run(context.Background(), env)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ShardsCached == 0 {
		t.Fatalf("envelope search hit no grid-scan shards: %+v", res.Stats)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"bad rows", func(c *Config) { c.Grid.Rows = []int{3} }, "powers of two"},
		{"maj too wide for rows", func(c *Config) {
			c.Op = core.OpMAJ
			c.Grid.Rows = []int{4}
			c.Grid.MAJX = []int{5}
		}, "at least"},
		{"even maj", func(c *Config) {
			c.Op = core.OpMAJ
			c.Grid.MAJX = []int{4}
		}, "odd"},
		{"bad env", func(c *Config) { c.Grid.Temp = []float64{200} }, "outside supported range"},
		{"bad aging", func(c *Config) { c.Grid.Aging = []float64{99} }, "aging"},
		{"bad envelope axis", func(c *Config) { c.Envelope = &Envelope{Axis: "frequency"} }, "unknown envelope axis"},
		{"bad target", func(c *Config) { c.Envelope = &Envelope{Axis: "t2", Target: 1.5} }, "target"},
		{"empty bounds", func(c *Config) { c.Envelope = &Envelope{Axis: "t2", Lo: 5, Hi: 2} }, "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig()
			tc.mut(&cfg)
			_, err := Run(context.Background(), cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestShardKeySensitivity(t *testing.T) {
	cfg := smallConfig()
	spec := cfg.Fleet[0].Spec
	p := Point{N: 8, X: 3, T1: 3, T2: 3, TempC: 50, VPP: 2.5}
	at := func(p Point, bank int) [32]byte {
		return shardKey(spec, cfg.Params, core.OpManyRowActivation, p,
			cfg.Trials, cfg.SubarraysPerBank, cfg.GroupsPerSubarray, cfg.Banks,
			cfg.Seed, sampleAt(bank, 0))
	}
	base := at(p, 0)
	if at(p, 0) != base {
		t.Fatal("shard key is not deterministic")
	}
	if at(p, 1) == base {
		t.Fatal("key ignores the bank coordinate")
	}
	for name, mut := range map[string]func(Point) Point{
		"t2":    func(p Point) Point { p.T2 += 1.5; return p },
		"temp":  func(p Point) Point { p.TempC = 90; return p },
		"vpp":   func(p Point) Point { p.VPP = 2.1; return p },
		"aging": func(p Point) Point { p.Aging = 5; return p },
		"n":     func(p Point) Point { p.N = 16; return p },
	} {
		if at(mut(p), 0) == base {
			t.Fatalf("key ignores the %s axis", name)
		}
	}
}

func sampleAt(bank, subarray int) bender.SubarraySample {
	return bender.SubarraySample{Bank: bank, Subarray: subarray}
}

// TestGridTableReuse pins the static-table sharing the grid relies on:
// every (point, module, bank, subarray) shard builds a private module
// instance, but instances with the same simulation identity share one
// derived table set in dram's registry. A repeated scan — all-fresh
// private instances — must therefore derive nothing new; before the
// registry, every shard of every point re-derived its per-cell tables.
func TestGridTableReuse(t *testing.T) {
	cfg := smallConfig()
	cfg.Grid = smallGrid()
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	statics0, cells0 := dram.TableDerivations()
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	statics1, cells1 := dram.TableDerivations()
	if statics1 != statics0 || cells1 != cells0 {
		t.Fatalf("repeat scan re-derived static tables: sets %d→%d, cell rows %d→%d",
			statics0, statics1, cells0, cells1)
	}
}
