package scenario

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dram"
)

func TestResolveDefaults(t *testing.T) {
	cfg, err := Options{}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Op != core.OpManyRowActivation {
		t.Fatalf("default op %v", cfg.Op)
	}
	if cfg.Envelope != nil {
		t.Fatal("default must be a grid scan")
	}
	if len(cfg.Fleet) == 0 {
		t.Fatal("no fleet resolved")
	}
	// The "" grid is the nominal preset; the explicit default grid of the
	// CLI is "timing".
	timingCfg, err := Options{Grid: "timing"}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	pts := timingCfg.Grid.withDefaults(timingCfg.Op).points(timingCfg.Op)
	if len(pts) != 8 { // 2 t1 × 4 t2
		t.Fatalf("timing grid has %d points, want 8", len(pts))
	}
}

func TestResolveAxesOverride(t *testing.T) {
	cfg, err := Options{
		Grid: "nominal",
		Axes: " t2 = 1.5, 3 ; temp=50,90 ; pattern = random , all0 ; n=16",
	}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Grid
	if len(g.T2) != 2 || g.T2[1] != 3 {
		t.Fatalf("t2 axis: %v", g.T2)
	}
	if len(g.Temp) != 2 || g.Temp[1] != 90 {
		t.Fatalf("temp axis: %v", g.Temp)
	}
	if len(g.Patterns) != 2 || g.Patterns[1] != dram.PatternAll0 {
		t.Fatalf("pattern axis: %v", g.Patterns)
	}
	if len(g.Rows) != 1 || g.Rows[0] != 16 {
		t.Fatalf("rows axis: %v", g.Rows)
	}
}

// TestPatternOverrideDoesNotAliasPresets is the regression test for the
// preset-corruption bug: overriding the pattern axis on the "pattern"
// preset (whose Grid aliases dram.MAJPatterns) must not mutate the
// package-level pattern list.
func TestPatternOverrideDoesNotAliasPresets(t *testing.T) {
	before := append([]dram.Pattern(nil), dram.MAJPatterns...)
	if _, err := (Options{Grid: "pattern", Axes: "pattern=all0,all1"}).Resolve(); err != nil {
		t.Fatal(err)
	}
	for i, p := range dram.MAJPatterns {
		if p != before[i] {
			t.Fatalf("dram.MAJPatterns[%d] corrupted: %v, want %v", i, p, before[i])
		}
	}
}

func TestResolveEnvelope(t *testing.T) {
	cfg, err := Options{Envelope: "temp", Target: 0.75}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Envelope == nil || cfg.Envelope.Axis != "temp" || cfg.Envelope.Target != 0.75 {
		t.Fatalf("envelope: %+v", cfg.Envelope)
	}
}

func TestResolveErrors(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string
	}{
		{"op", Options{Op: "refresh"}, "valid: activation, maj, copy"},
		{"grid", Options{Grid: "galactic"}, "valid: nominal, timing"},
		{"modules", Options{Modules: "samsung"}, "valid: representative, full"},
		{"axis", Options{Axes: "freq=1,2"}, "unknown axis"},
		{"axis value", Options{Axes: "t2=fast"}, "bad value"},
		{"axis shape", Options{Axes: "t2:1.5"}, "malformed axis entry"},
		{"pattern", Options{Axes: "pattern=zebra"}, "unknown pattern"},
		{"envelope axis", Options{Envelope: "pattern"}, "unknown envelope axis"},
		{"stray target", Options{Target: 0.5}, "-target only applies"},
		{"bad maj point", Options{Op: "maj", X: 4}, "odd"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.o.Resolve()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestWriteReportFormats(t *testing.T) {
	cfg := smallConfig()
	cfg.Grid = Grid{T2: []float64{1.5, 3.0}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var text, csv strings.Builder
	if err := WriteReport(&text, res, "text"); err != nil {
		t.Fatal(err)
	}
	if err := WriteReport(&csv, res, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "operating-envelope scan") ||
		!strings.Contains(text.String(), "scenario points across") {
		t.Fatalf("text report malformed:\n%s", text.String())
	}
	if !strings.HasPrefix(csv.String(), "n,x,pattern,") {
		t.Fatalf("csv report malformed:\n%s", csv.String())
	}
	if err := WriteReport(&text, res, "yaml"); err == nil ||
		!strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("format validation: %v", err)
	}
}

func TestEnvelopeReportFormats(t *testing.T) {
	cfg := smallConfig()
	cfg.Envelope = &Envelope{Axis: "t2"}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	if err := WriteReport(&text, res, "text"); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	if !strings.Contains(out, "adaptive envelope") || !strings.Contains(out, "envelope cells:") {
		t.Fatalf("envelope report malformed:\n%s", out)
	}
	// The bisected axis renders as "*" in the base-point columns.
	if !strings.Contains(out, "*") {
		t.Fatalf("bisected axis not masked:\n%s", out)
	}
}
