package scenario

import (
	"fmt"
	"strconv"

	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/core"
)

// Columnar metadata keys: the table identity plus the counts the text
// footer prints, so a columnar payload carries everything the text
// report does.
const (
	metaID     = "id"
	metaTitle  = "title"
	metaOp     = "op"
	metaAxis   = "axis"
	metaTarget = "target"
)

// axisColumn maps an envelope axis name onto its table column.
var axisColumn = map[string]string{
	"t1": "t1(ns)", "t2": "t2(ns)", "temp": "temp(C)", "vpp": "vpp(V)", "aging": "aging(y)",
	"disturb": "disturb", "retention": "retention",
}

// Columnar builds the typed columnar table for a scenario result: the
// same rows, in the same deterministic merge order, as Table() — but
// with raw values (success rates in [0, 1], unformatted axis floats)
// instead of rendered cells. Nulls encode the text tables' sentinels:
// the x column on non-MAJ ops ("-") and, in envelope mode, the bisected
// axis column ("*").
func (r *Result) Columnar() *colenc.Table {
	tab := r.Table()
	t := &colenc.Table{
		Name: tab.ID,
		Meta: [][2]string{{metaID, tab.ID}, {metaTitle, tab.Title}, {metaOp, r.Op.String()}},
	}
	if r.Axis != "" {
		t.Meta = append(t.Meta,
			[2]string{metaAxis, r.Axis},
			[2]string{metaTarget, strconv.FormatFloat(r.Target, 'g', -1, 64)})
		counts := map[string]int{}
		for _, c := range r.Cells {
			counts[c.Status]++
		}
		t.Meta = append(t.Meta,
			[2]string{"cells", strconv.Itoa(len(r.Cells))},
			[2]string{"min_viable", strconv.Itoa(counts[StatusMinViable])},
			[2]string{"max_viable", strconv.Itoa(counts[StatusMaxViable])},
			[2]string{"pass", strconv.Itoa(counts[StatusPass])},
			[2]string{"fail", strconv.Itoa(counts[StatusFail])})
	} else {
		t.Meta = append(t.Meta,
			[2]string{"points", strconv.Itoa(len(r.Points))},
			[2]string{"applicable", strconv.Itoa(r.applicable)})
	}

	ex := r.extras()
	if r.Axis != "" {
		module := str("module")
		mfr := str("mfr")
		cols := pointColumnsTyped(r.Op, r.Axis, ex)
		lo, hi := f64("lo"), f64("hi")
		rateLo, rateHi := f64("rate@lo"), f64("rate@hi")
		boundary := f64("boundary")
		status := str("status")
		for _, c := range r.Cells {
			module.Strings = append(module.Strings, c.Module)
			mfr.Strings = append(mfr.Strings, c.Mfr)
			cols.push(r.Op, c.Base, r.Axis)
			lo.Float64s = append(lo.Float64s, c.Lo)
			hi.Float64s = append(hi.Float64s, c.Hi)
			rateLo.Float64s = append(rateLo.Float64s, c.RateLo)
			rateHi.Float64s = append(rateHi.Float64s, c.RateHi)
			boundary.Float64s = append(boundary.Float64s, c.Boundary)
			status.Strings = append(status.Strings, c.Status)
		}
		t.Cols = append([]colenc.Column{module, mfr}, cols.cols...)
		t.Cols = append(t.Cols, lo, hi, rateLo, rateHi, boundary, status)
		return t
	}

	cols := pointColumnsTyped(r.Op, "", ex)
	groups := i64("groups")
	summary := []colenc.Column{
		f64("mean"), f64("min"), f64("q1"),
		f64("median"), f64("q3"), f64("max"),
	}
	for _, pr := range r.Points {
		cols.push(r.Op, pr.Point, "")
		groups.Int64s = append(groups.Int64s, int64(pr.Pooled.N))
		for i, v := range []float64{pr.Pooled.Mean, pr.Pooled.Min, pr.Pooled.Q1,
			pr.Pooled.Median, pr.Pooled.Q3, pr.Pooled.Max} {
			summary[i].Float64s = append(summary[i].Float64s, v)
		}
	}
	t.Cols = append(cols.cols, groups)
	t.Cols = append(t.Cols, summary...)
	return t
}

func i64(name string) colenc.Column {
	return colenc.Column{Field: colenc.Field{Name: name, Type: colenc.TypeInt64}}
}
func f64(name string) colenc.Column {
	return colenc.Column{Field: colenc.Field{Name: name, Type: colenc.TypeFloat64}}
}
func str(name string) colenc.Column {
	return colenc.Column{Field: colenc.Field{Name: name, Type: colenc.TypeString}}
}

// pointCols accumulates the shared axis columns of a point row: the eight
// fixed ones plus any gated extras (disturb, retention, mitigation).
type pointCols struct {
	cols []colenc.Column // n, x, pattern, t1, t2, temp, vpp, aging, extras...
	skip string
	ex   axisExtras
}

// pointColumnsTyped builds the typed axis columns matching the text
// table's headers. The x column is nullable unless the op is MAJ; the
// skipped (envelope) axis column is nullable.
func pointColumnsTyped(op core.OpKind, skip string, ex axisExtras) *pointCols {
	p := &pointCols{skip: skip, ex: ex}
	x := i64("x")
	x.Field.Nullable = op != core.OpMAJ
	p.cols = []colenc.Column{
		i64("n"), x, str("pattern"),
		f64("t1(ns)"), f64("t2(ns)"),
		f64("temp(C)"), f64("vpp(V)"), f64("aging(y)"),
	}
	if ex.disturb {
		p.cols = append(p.cols, f64("disturb"))
	}
	if ex.retention {
		p.cols = append(p.cols, f64("retention"))
	}
	if ex.mit {
		p.cols = append(p.cols, str("mitigation"))
	}
	if col := axisColumn[skip]; col != "" {
		for i := range p.cols {
			if p.cols[i].Field.Name == col {
				p.cols[i].Field.Nullable = true
			}
		}
	}
	return p
}

// push appends one point's axis cells.
func (p *pointCols) push(op core.OpKind, pt Point, skip string) {
	c := p.cols
	c[0].Int64s = append(c[0].Int64s, int64(pt.N))
	c[1].Int64s = append(c[1].Int64s, int64(pt.X))
	if c[1].Field.Nullable {
		c[1].Valid = append(c[1].Valid, op == core.OpMAJ)
	}
	c[2].Strings = append(c[2].Strings, pt.Pattern.String())
	skipCol := axisColumn[skip]
	vals := []float64{pt.T1, pt.T2, pt.TempC, pt.VPP, pt.Aging}
	if p.ex.disturb {
		vals = append(vals, pt.Disturb)
	}
	if p.ex.retention {
		vals = append(vals, pt.Retention)
	}
	for i, v := range vals {
		col := &c[3+i]
		col.Float64s = append(col.Float64s, v)
		if col.Field.Nullable {
			col.Valid = append(col.Valid, col.Field.Name != skipCol)
		}
	}
	if p.ex.mit {
		mc := &c[len(c)-1]
		mc.Strings = append(mc.Strings, pt.Mit.String())
	}
}

// ColumnarStrings is the reverse formatter: it re-renders a scenario
// columnar table into the exact charexp.Table the text/CSV paths print,
// re-applying the report's format verbs (pct for rates, 'g' floats for
// axes, "%.3f" for boundaries, "-"/"*" for the null sentinels). It is
// the metamorphic bridge the invariance suite uses to assert
// text-rows ≡ columnar-rows.
func ColumnarStrings(t *colenc.Table) (charexp.Table, error) {
	out := charexp.Table{
		ID:      t.MetaValue(metaID),
		Title:   t.MetaValue(metaTitle),
		Columns: make([]string, len(t.Cols)),
	}
	axisCol := axisColumn[t.MetaValue(metaAxis)]
	for i := range t.Cols {
		out.Columns[i] = t.Cols[i].Field.Name
	}
	n := t.NumRows()
	for ri := 0; ri < n; ri++ {
		row := make([]string, len(t.Cols))
		for ci := range t.Cols {
			c := &t.Cols[ci]
			cell, err := scenarioCell(c, ri, axisCol)
			if err != nil {
				return charexp.Table{}, err
			}
			row[ci] = cell
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// scenarioCell renders one cell with the scenario report's format verbs.
func scenarioCell(c *colenc.Column, ri int, axisCol string) (string, error) {
	name := c.Field.Name
	if !c.Field.Nullable || len(c.Valid) == 0 || c.Valid[ri] {
		switch name {
		case "mean", "min", "q1", "median", "q3", "max", "rate@lo", "rate@hi":
			if c.Field.Type != colenc.TypeFloat64 {
				return "", fmt.Errorf("scenario: column %q: want float64, got %v", name, c.Field.Type)
			}
			return pct(c.Float64s[ri]), nil
		case "boundary":
			if c.Field.Type != colenc.TypeFloat64 {
				return "", fmt.Errorf("scenario: column %q: want float64, got %v", name, c.Field.Type)
			}
			return fmt.Sprintf("%.3f", c.Float64s[ri]), nil
		}
		switch c.Field.Type {
		case colenc.TypeFloat64:
			return fnum(c.Float64s[ri]), nil
		case colenc.TypeInt64:
			return strconv.FormatInt(c.Int64s[ri], 10), nil
		case colenc.TypeString:
			return c.Strings[ri], nil
		default:
			return "", fmt.Errorf("scenario: column %q: unexpected type %v", name, c.Field.Type)
		}
	}
	// Null sentinels: the bisected envelope axis prints "*"; everything
	// else (the x column on non-MAJ ops) prints "-".
	if name == axisCol {
		return "*", nil
	}
	return colenc.NullCell, nil
}
