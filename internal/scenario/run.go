package scenario

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/stats"
)

// ModulePoint is one module's aggregate at one scenario point.
type ModulePoint struct {
	Module string
	Mfr    string
	Mean   float64
	Groups int
}

// PointResult aggregates one scenario point across the applicable fleet.
type PointResult struct {
	Point Point
	// Pooled summarizes the per-group success rates across every
	// applicable module (sorted before aggregation, so it is invariant to
	// fleet order).
	Pooled stats.Summary
	// Modules carries per-module means in fleet order. A module's value
	// depends only on its spec, the electrical model, the point and the
	// seed — never on sibling modules or worker count.
	Modules []ModulePoint
}

// Result is a completed scenario run: grid mode fills Points, envelope
// mode fills Cells.
type Result struct {
	Op         core.OpKind
	Target     float64 // envelope mode only
	Axis       string  // envelope mode only
	Points     []PointResult
	Cells      []EnvelopeCell
	Stats      engine.Snapshot
	applicable int // module×point cells that ran (grid mode)
}

// shardKey hashes everything one (point, module, bank, subarray) shard's
// outcome depends on: the module's identity and electrical model (the
// shared dram.Spec.HashModule block), the full scenario point (timings,
// environment including aging, pattern, widths), the sampling bounds,
// trial count and seed, and the shard's coordinates. The engine worker
// count and the module's fleet position are deliberately absent —
// results are invariant to both, so including them would only fragment
// the cache.
func shardKey(spec dram.Spec, params analog.Params, op core.OpKind, p Point,
	trials, subarrays, groups, banks int, seed uint64, s bender.SubarraySample) engine.ShardKey {

	return spec.HashModule(cache.NewHasher().Str("scenario/point-shard/v1"), params).
		Int(int(op)).Int(p.X).Int(p.N).
		F64(p.T1).F64(p.T2).Int(int(p.Pattern)).
		F64(p.TempC).F64(p.VPP).F64(p.Aging).
		F64(p.Disturb).F64(p.Retention).
		Str(p.Mit.Kind).Int(p.Mit.Level).
		Int(subarrays).Int(groups).Int(banks).
		Int(trials).U64(seed).
		Int(s.Bank).Int(s.Subarray).
		Sum()
}

// pointShard binds one engine shard to its scenario coordinates.
type pointShard struct {
	pi, mi int
	point  Point
	spec   dram.Spec
	sample bender.SubarraySample
	key    engine.ShardKey
}

// runShard characterizes one (point, module, bank, subarray) cell on a
// private module instance: shards never share mutable subarray state, so
// every cell of the matrix can execute concurrently. The subarray's
// static tables derive deterministically from the spec seed and are
// shared process-wide by simulation identity (dram's table registry), so
// grid points over the same module reuse one derivation instead of
// re-deriving per private instance — bit-identical either way, and, with
// Config.Pool set, identical on a recycled warmpool instance too (pools
// reset dynamic state on Put; scenario_test pins the derivation counts).
func (cfg Config) runShard(sh pointShard, st *engine.Stats) ([]core.GroupOutcome, error) {
	mod, release, err := dram.PoolModule(cfg.Pool, sh.spec, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: module %s: %w", sh.spec.ID, err)
	}
	defer release()
	tester, err := core.NewTester(mod,
		core.WithEnv(sh.point.Env()), core.WithTrials(cfg.Trials),
		core.WithSeed(cfg.Seed), core.WithWorkers(1))
	if err != nil {
		return nil, fmt.Errorf("scenario: module %s: %w", sh.spec.ID, err)
	}
	out, err := tester.SweepShard(cfg.sweepConfig(sh.point), sh.sample)
	if err != nil {
		return nil, fmt.Errorf("scenario: module %s: %w", sh.spec.ID, err)
	}
	if st != nil {
		st.AddActivations(len(out) * cfg.Trials)
	}
	return out, nil
}

// shardTask builds the engine task of one point shard: the in-process
// shard body, or — with Config.Dispatch set — a fan-out to the worker
// fleet carrying the shard's serialized core.ShardSpec. Both paths
// produce bit-identical outcomes (the cluster invariance suite asserts
// it).
func (cfg Config) shardTask(sh pointShard, st *engine.Stats) engine.Task[[]core.GroupOutcome] {
	d := cfg.Dispatch
	if d == nil {
		return func(context.Context) ([]core.GroupOutcome, error) {
			return cfg.runShard(sh, st)
		}
	}
	spec := core.ShardSpec{
		Spec:   sh.spec,
		Params: cfg.Params,
		Env:    sh.point.Env(),
		Sweep:  cfg.sweepConfig(sh.point),
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
		Sample: sh.sample,
	}
	return func(ctx context.Context) ([]core.GroupOutcome, error) {
		b, err := d.ExecShard(ctx, sh.key, "core", spec)
		if err != nil {
			return nil, fmt.Errorf("scenario: module %s: %w", sh.spec.ID, err)
		}
		var out []core.GroupOutcome
		if err := json.Unmarshal(b, &out); err != nil {
			return nil, fmt.Errorf("scenario: module %s: decode shard: %w", sh.spec.ID, err)
		}
		if st != nil {
			st.AddActivations(len(out) * cfg.Trials)
		}
		return out, nil
	}
}

// statsAccumulator returns the run's progress accumulator: the externally
// supplied Config.Stats when set (live job-tier progress), otherwise a
// fresh run-private one.
func (cfg Config) statsAccumulator() *engine.Stats {
	if cfg.Stats != nil {
		return cfg.Stats
	}
	return new(engine.Stats)
}

// samples enumerates the deterministic (bank, subarray) samples of one
// module, mirroring core.Tester.SweepSamples without instantiating cell
// state.
func (cfg Config) samples(mod *dram.Module) []bender.SubarraySample {
	all := bender.SampleSubarrays(mod, cfg.SubarraysPerBank, cfg.Seed)
	if cfg.Banks <= 0 {
		return all
	}
	// SampleSubarrays returns a shared read-only slice — filter into a
	// fresh one.
	filtered := make([]bender.SubarraySample, 0, len(all))
	for _, s := range all {
		if s.Bank < cfg.Banks {
			filtered = append(filtered, s)
		}
	}
	return filtered
}

// Run executes the scenario configuration: a grid scan over
// Config.Grid's cross product, or — with Config.Envelope set — an
// adaptive envelope search on the chosen axis. Results are bit-identical
// for every worker count and cache mode.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("scenario: empty fleet")
	}
	// One instantiated module per entry for sampling and validation only;
	// shard work runs on private instances.
	mods, err := fleet.Build(cfg.Fleet, cfg.Params)
	if err != nil {
		return nil, err
	}
	if cfg.Envelope != nil {
		return cfg.runEnvelope(ctx, mods)
	}
	return cfg.runGrid(ctx, mods)
}

// runGrid executes the full scenario matrix as one engine run: every
// (point, module, bank, subarray) cell is an independent shard.
func (cfg Config) runGrid(ctx context.Context, mods []*dram.Module) (*Result, error) {
	points := cfg.Grid.withDefaults(cfg.Op).points(cfg.Op)
	if err := cfg.validate(points); err != nil {
		return nil, err
	}

	var shards []pointShard
	applicable := 0
	for pi, p := range points {
		for mi, mod := range mods {
			if !applies(mod.Spec().Profile, cfg.Op, p) {
				continue
			}
			applicable++
			for _, s := range cfg.samples(mod) {
				sh := pointShard{pi: pi, mi: mi, point: p, spec: mod.Spec(), sample: s}
				if cfg.Memo != nil || cfg.Dispatch != nil {
					sh.key = shardKey(mod.Spec(), cfg.Params, cfg.Op, p,
						cfg.Trials, cfg.SubarraysPerBank, cfg.GroupsPerSubarray, cfg.Banks,
						cfg.Seed, s)
				}
				shards = append(shards, sh)
			}
		}
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("scenario: no module in the fleet can run any scenario point")
	}

	st := cfg.statsAccumulator()
	tasks := make([]engine.Task[[]core.GroupOutcome], len(shards))
	keys := make([]engine.ShardKey, len(shards))
	for i, sh := range shards {
		tasks[i] = cfg.shardTask(sh, st)
		keys[i] = sh.key
	}
	outcomes, err := engine.RunKeyed(ctx, cfg.Engine, st, cfg.Memo, keys, tasks)
	if err != nil {
		return nil, err
	}

	res := &Result{Op: cfg.Op, applicable: applicable}
	for pi, p := range points {
		pr := PointResult{Point: p}
		var pooled []float64
		perMod := make(map[int][]float64)
		for i, sh := range shards {
			if sh.pi != pi {
				continue
			}
			for _, o := range outcomes[i] {
				rate := o.Result.Rate()
				pooled = append(pooled, rate)
				perMod[sh.mi] = append(perMod[sh.mi], rate)
			}
		}
		if len(pooled) == 0 {
			return nil, fmt.Errorf("scenario: point %+v sampled no groups; check the sampling bounds", p)
		}
		pr.Pooled = stats.MustSummarize(pooled)
		for mi, mod := range mods {
			rates, ok := perMod[mi]
			if !ok {
				continue
			}
			pr.Modules = append(pr.Modules, ModulePoint{
				Module: mod.Spec().ID,
				Mfr:    mod.Spec().Profile.Name,
				Mean:   stats.MustSummarize(rates).Mean,
				Groups: len(rates),
			})
		}
		res.Points = append(res.Points, pr)
	}
	res.Stats = st.Snapshot()
	return res, nil
}
