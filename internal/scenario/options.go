package scenario

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/timing"
)

// Options mirrors the cmd/simra-scan CLI surface and the serving layer's
// scenario-request parameters. Resolving options to a Config here — and
// rendering through WriteReport — is what makes a served /v1/scenario
// response byte-identical to the CLI's stdout for the same parameters.
type Options struct {
	// Op is the operation family: "activation" (default), "maj" or "copy".
	Op string
	// Grid names a preset axis matrix: "nominal", "timing" (default),
	// "thermal", "voltage", "pattern", "aging", "mitigation" or "full".
	Grid string
	// Axes overrides preset axes: a ';'-separated list of
	// "axis=v1,v2,..." entries, e.g. "t2=1.5,3;temp=50,90;pattern=random,all0"
	// or "mitigation=none,tmr:3,ecc:2". Valid axes: t1, t2, temp, vpp,
	// aging, disturb, retention, n, x, pattern, mitigation.
	Axes string
	// Envelope switches to adaptive envelope search on the named axis
	// ("t1", "t2", "temp", "vpp", "aging", "disturb" or "retention";
	// "" = grid scan).
	Envelope string
	// Target is the envelope success threshold in (0, 1] (0 = 0.9).
	Target float64
	// Modules selects the population: "representative" (default) or "full".
	Modules string
	// X and N fix the majority width and activation row count when the
	// corresponding axis is not swept (0 = defaults 3 and 32).
	X, N int
	// Trials, Groups, Banks, Columns and Seed override the reduced-scale
	// defaults (0 = default).
	Trials  int
	Groups  int
	Banks   int
	Columns int
	Seed    uint64
	// Workers bounds the engine parallelism (0 = GOMAXPROCS). It never
	// affects result bytes.
	Workers int
}

// patternsByName maps CLI/API pattern tokens onto dram patterns.
var patternsByName = map[string]dram.Pattern{
	"random": dram.PatternRandom,
	"00ff":   dram.Pattern00FF,
	"aa55":   dram.PatternAA55,
	"cc33":   dram.PatternCC33,
	"6699":   dram.Pattern6699,
	"all0":   dram.PatternAll0,
	"all1":   dram.PatternAll1,
	"split":  dram.PatternSplit,
}

// patternNames lists the accepted pattern tokens, sorted for error
// messages.
func patternNames() string {
	names := make([]string, 0, len(patternsByName))
	for n := range patternsByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// GridNames lists the preset grid names in canonical order.
func GridNames() []string {
	return []string{"nominal", "timing", "thermal", "voltage", "pattern", "aging", "mitigation", "full"}
}

// presetGrid resolves a named axis matrix.
func presetGrid(name string) (Grid, error) {
	switch name {
	case "", "nominal":
		return Grid{}, nil
	case "timing":
		return Grid{T1: timing.SweepT1SiMRA, T2: timing.SweepT2}, nil
	case "thermal":
		return Grid{Temp: timing.SweepTemperature, T2: []float64{1.5, 3.0}}, nil
	case "voltage":
		return Grid{VPP: timing.SweepVPP, T2: []float64{1.5, 3.0}}, nil
	case "pattern":
		return Grid{Patterns: dram.MAJPatterns}, nil
	case "aging":
		return Grid{Aging: []float64{0, 2, 4, 8, 16}}, nil
	case "mitigation":
		// Redundancy sweep across a timing cliff: bare operation vs TMR
		// voting vs parity reconstruction at a tight and a relaxed t2.
		return Grid{
			T2:          []float64{1.5, 3.0},
			Mitigations: []Mitigation{{}, {Kind: "tmr", Level: 3}, {Kind: "ecc", Level: 2}},
		}, nil
	case "full":
		return Grid{
			T1:   timing.SweepT1SiMRA,
			T2:   timing.SweepT2,
			Temp: []float64{50, 70, 90},
			VPP:  []float64{2.5, 2.3, 2.1},
		}, nil
	default:
		return Grid{}, fmt.Errorf("scenario: unknown grid %q; valid: %s",
			name, strings.Join(GridNames(), ", "))
	}
}

// applyAxes parses an axis-override specification onto the grid.
func applyAxes(g Grid, spec string) (Grid, error) {
	for _, entry := range strings.Split(spec, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		axis, vals, ok := strings.Cut(entry, "=")
		if !ok {
			return g, fmt.Errorf("scenario: malformed axis entry %q; want axis=v1,v2,...", entry)
		}
		axis = strings.TrimSpace(axis)
		parts := strings.Split(vals, ",")
		floats := func() ([]float64, error) {
			out := make([]float64, 0, len(parts))
			for _, s := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
				if err != nil {
					return nil, fmt.Errorf("scenario: axis %s: bad value %q", axis, s)
				}
				out = append(out, v)
			}
			return out, nil
		}
		ints := func() ([]int, error) {
			out := make([]int, 0, len(parts))
			for _, s := range parts {
				v, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return nil, fmt.Errorf("scenario: axis %s: bad value %q", axis, s)
				}
				out = append(out, v)
			}
			return out, nil
		}
		var err error
		switch axis {
		case "t1":
			g.T1, err = floats()
		case "t2":
			g.T2, err = floats()
		case "temp":
			g.Temp, err = floats()
		case "vpp":
			g.VPP, err = floats()
		case "aging":
			g.Aging, err = floats()
		case "disturb":
			g.Disturb, err = floats()
		case "retention":
			g.Retention, err = floats()
		case "n":
			g.Rows, err = ints()
		case "x":
			g.MAJX, err = ints()
		case "pattern":
			// Fresh slice: the preset may alias a package-level pattern
			// list (dram.MAJPatterns), which an in-place reset would
			// corrupt for every later caller.
			g.Patterns = nil
			for _, s := range parts {
				p, ok := patternsByName[strings.ToLower(strings.TrimSpace(s))]
				if !ok {
					return g, fmt.Errorf("scenario: unknown pattern %q; valid: %s",
						strings.TrimSpace(s), patternNames())
				}
				g.Patterns = append(g.Patterns, p)
			}
		case "mitigation":
			g.Mitigations = nil
			for _, s := range parts {
				m, err := ParseMitigation(s)
				if err != nil {
					return g, err
				}
				g.Mitigations = append(g.Mitigations, m)
			}
		default:
			return g, fmt.Errorf("scenario: unknown axis %q; valid: t1, t2, temp, vpp, aging, disturb, retention, n, x, pattern, mitigation", axis)
		}
		if err != nil {
			return g, err
		}
	}
	return g, nil
}

// Resolve validates the options and builds the run configuration.
func (o Options) Resolve() (Config, error) {
	cfg := DefaultConfig()

	switch o.Op {
	case "", "activation":
		cfg.Op = core.OpManyRowActivation
	case "maj":
		cfg.Op = core.OpMAJ
	case "copy":
		cfg.Op = core.OpMultiRowCopy
	default:
		return Config{}, fmt.Errorf("scenario: unknown op %q; valid: activation, maj, copy", o.Op)
	}

	fleetCfg := fleet.DefaultConfig()
	fleetCfg.Columns = 512
	if o.Columns > 0 {
		fleetCfg.Columns = o.Columns
	}
	switch o.Modules {
	case "", "representative":
		cfg.Fleet = fleet.Representative(fleetCfg)
	case "full":
		cfg.Fleet = fleet.Modules(fleetCfg)
	default:
		return Config{}, fmt.Errorf("scenario: unknown modules %q; valid: representative, full", o.Modules)
	}

	grid, err := presetGrid(o.Grid)
	if err != nil {
		return Config{}, err
	}
	if o.Axes != "" {
		if grid, err = applyAxes(grid, o.Axes); err != nil {
			return Config{}, err
		}
	}
	if o.N > 0 && len(grid.Rows) == 0 {
		grid.Rows = []int{o.N}
	}
	if o.X > 0 && len(grid.MAJX) == 0 {
		grid.MAJX = []int{o.X}
	}
	cfg.Grid = grid

	if o.Envelope != "" {
		if _, _, err := AxisBounds(o.Envelope); err != nil {
			return Config{}, err
		}
		cfg.Envelope = &Envelope{Axis: o.Envelope, Target: o.Target}
	} else if o.Target != 0 {
		return Config{}, fmt.Errorf("scenario: -target only applies to envelope search")
	}

	if o.Trials > 0 {
		cfg.Trials = o.Trials
	}
	if o.Groups > 0 {
		cfg.GroupsPerSubarray = o.Groups
	}
	if o.Banks > 0 {
		cfg.Banks = o.Banks
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Engine.Workers = o.Workers

	// Fail fast on malformed grids (the same check Run performs).
	points := cfg.Grid.withDefaults(cfg.Op).points(cfg.Op)
	if cfg.Envelope != nil {
		env, err := cfg.Envelope.withDefaults()
		if err != nil {
			return Config{}, err
		}
		probes := make([]Point, 0, 2*len(points))
		for _, p := range points {
			probes = append(probes,
				p.withAxis(env.Axis, env.Lo), p.withAxis(env.Axis, env.Hi))
		}
		points = probes
	}
	if err := cfg.validate(points); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// fnum renders an axis value the way the tables print it.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// pct formats a rate as a percentage.
func pct(rate float64) string { return fmt.Sprintf("%.2f%%", rate*100) }

// axisExtras reports which optional axis columns (disturb, retention,
// mitigation) a result renders: only axes swept away from their neutral
// defaults appear, so pre-mitigation reports keep their exact column set
// and bytes.
type axisExtras struct{ disturb, retention, mit bool }

// extras scans the result for non-neutral optional axes. In envelope mode
// the bisected axis always renders (its "*" sentinel needs a column) even
// though the stored base points keep the neutral value.
func (r *Result) extras() axisExtras {
	var ex axisExtras
	mark := func(p Point) {
		if p.Disturb != 0 {
			ex.disturb = true
		}
		if p.Retention != 0 {
			ex.retention = true
		}
		if p.Mit.Kind != "" {
			ex.mit = true
		}
	}
	for _, pr := range r.Points {
		mark(pr.Point)
	}
	for _, c := range r.Cells {
		mark(c.Base)
	}
	switch r.Axis {
	case "disturb":
		ex.disturb = true
	case "retention":
		ex.retention = true
	}
	return ex
}

// columns returns the point column headers including the gated extras.
func (ex axisExtras) columns() []string {
	cols := append([]string{}, pointColumns...)
	if ex.disturb {
		cols = append(cols, "disturb")
	}
	if ex.retention {
		cols = append(cols, "retention")
	}
	if ex.mit {
		cols = append(cols, "mitigation")
	}
	return cols
}

// pointCells renders a point's axis columns; the skipped axis (envelope
// mode's bisected one) prints "*".
func pointCells(op core.OpKind, p Point, skip string, ex axisExtras) []string {
	cell := func(axis string, v string) string {
		if axis == skip {
			return "*"
		}
		return v
	}
	x := "-"
	if op == core.OpMAJ {
		x = fmt.Sprint(p.X)
	}
	out := []string{
		fmt.Sprint(p.N), x, p.Pattern.String(),
		cell("t1", fnum(p.T1)), cell("t2", fnum(p.T2)),
		cell("temp", fnum(p.TempC)), cell("vpp", fnum(p.VPP)), cell("aging", fnum(p.Aging)),
	}
	if ex.disturb {
		out = append(out, cell("disturb", fnum(p.Disturb)))
	}
	if ex.retention {
		out = append(out, cell("retention", fnum(p.Retention)))
	}
	if ex.mit {
		out = append(out, p.Mit.String())
	}
	return out
}

var pointColumns = []string{"n", "x", "pattern", "t1(ns)", "t2(ns)", "temp(C)", "vpp(V)", "aging(y)"}

// Table renders the result as the shared experiment table: the single
// source of truth behind cmd/simra-scan and the serving layer's
// /v1/scenario responses.
func (r *Result) Table() charexp.Table {
	ex := r.extras()
	if r.Axis != "" {
		t := charexp.Table{
			ID: "Envelope",
			Title: fmt.Sprintf("%v adaptive envelope: %s boundary at target %s",
				r.Op, r.Axis, pct(r.Target)),
			Columns: append(append([]string{"module", "mfr"}, ex.columns()...),
				"lo", "hi", "rate@lo", "rate@hi", "boundary", "status"),
		}
		for _, c := range r.Cells {
			row := append([]string{c.Module, c.Mfr}, pointCells(r.Op, c.Base, r.Axis, ex)...)
			row = append(row,
				fnum(c.Lo), fnum(c.Hi), pct(c.RateLo), pct(c.RateHi),
				fmt.Sprintf("%.3f", c.Boundary), c.Status)
			t.Rows = append(t.Rows, row)
		}
		return t
	}
	t := charexp.Table{
		ID:    "Scan",
		Title: fmt.Sprintf("%v operating-envelope scan", r.Op),
		Columns: append(ex.columns(),
			"groups", "mean", "min", "q1", "median", "q3", "max"),
	}
	for _, pr := range r.Points {
		row := pointCells(r.Op, pr.Point, "", ex)
		row = append(row, fmt.Sprint(pr.Pooled.N),
			pct(pr.Pooled.Mean), pct(pr.Pooled.Min), pct(pr.Pooled.Q1),
			pct(pr.Pooled.Median), pct(pr.Pooled.Q3), pct(pr.Pooled.Max))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// WriteReport renders a scenario result to w in the given format ("text"
// or "csv"): the byte-exact output contract shared by cmd/simra-scan and
// the serving layer (engine statistics are deliberately excluded — they
// vary with cache state, and served bytes must equal CLI stdout for every
// cache mode and worker count).
func WriteReport(w io.Writer, r *Result, format string) error {
	table := r.Table()
	switch format {
	case "columnar":
		enc, err := colenc.Encode(r.Columnar(), 0)
		if err != nil {
			return err
		}
		_, err = w.Write(enc)
		return err
	case "csv":
		_, err := io.WriteString(w, table.CSV())
		return err
	case "text":
		if _, err := io.WriteString(w, table.Render()); err != nil {
			return err
		}
		if r.Axis != "" {
			counts := map[string]int{}
			for _, c := range r.Cells {
				counts[c.Status]++
			}
			_, err := fmt.Fprintf(w, "\n%d envelope cells: %d min-viable, %d max-viable, %d pass, %d fail\n",
				len(r.Cells), counts[StatusMinViable], counts[StatusMaxViable],
				counts[StatusPass], counts[StatusFail])
			return err
		}
		_, err := fmt.Fprintf(w, "\n%d scenario points across %d module cells\n",
			len(r.Points), r.applicable)
		return err
	default:
		return fmt.Errorf("scenario: unknown format %q; valid: text, csv, columnar", format)
	}
}
