// Package scenario is the operating-envelope subsystem of the harness: a
// declarative scenario-matrix runner that crosses environment axes
// (temperature, VPP, timing margin, aging, data pattern, activation width
// and majority width) against the module fleet, plus an adaptive envelope
// search that bisects a chosen axis to locate, per module, the reliability
// cliff where all-trials success crosses a target threshold.
//
// Where internal/charexp replays the paper's fixed figure grids, scenario
// explores arbitrary operating envelopes: every (point, module, bank,
// subarray) cell is an independent engine shard with a content-hashed memo
// key (`scenario/point-shard/v1`), so results obey the repository's
// determinism contracts (bit-identical for every worker count, fleet
// composition and cache mode — DESIGN.md §2/§6/§9/§10) and repeated or
// overlapping scans are served from cache instead of re-simulating.
package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/timing"
)

// Mitigation selects the redundancy co-simulation layered on a scenario
// point (see internal/core's mitigation kernel): the zero value is
// "none" — the bare operation, exactly the pre-mitigation behaviour.
type Mitigation struct {
	// Kind is "" (none), "tmr" (in-DRAM majority voting over replicated
	// copies, internal/tmr) or "ecc" (parity-based reconstruction over
	// bit-serial lanes, internal/bitserial).
	Kind string
	// Level is the redundancy degree: the vote width for tmr (odd, 3–9)
	// or the data registers per parity row for ecc (2–4).
	Level int
}

// String renders the canonical mitigation token ("none", "tmr:3", "ecc:2").
func (m Mitigation) String() string {
	if m.Kind == "" {
		return "none"
	}
	return fmt.Sprintf("%s:%d", m.Kind, m.Level)
}

// MitigationNames lists the accepted mitigation tokens in canonical order
// (the valid-options list of the serving layer's 422 envelope).
func MitigationNames() []string {
	return []string{"none", "tmr:3", "tmr:5", "tmr:7", "tmr:9", "ecc:2", "ecc:3", "ecc:4"}
}

func mitigationErr(tok string) error {
	return fmt.Errorf("scenario: unknown mitigation %q; valid: %s",
		tok, strings.Join(MitigationNames(), ", "))
}

// ParseMitigation parses a mitigation token: "none", "tmr"/"tmr:X" (odd
// vote width 3–9, default 3) or "ecc"/"ecc:L" (data lanes 2–4, default 2).
// Unknown names and out-of-range redundancy levels report the canonical
// valid-options list.
func ParseMitigation(s string) (Mitigation, error) {
	tok := strings.ToLower(strings.TrimSpace(s))
	kind, lvl, hasLvl := strings.Cut(tok, ":")
	level := 0
	if hasLvl {
		v, err := strconv.Atoi(strings.TrimSpace(lvl))
		if err != nil {
			return Mitigation{}, mitigationErr(s)
		}
		level = v
	}
	switch kind {
	case "none":
		if hasLvl {
			return Mitigation{}, mitigationErr(s)
		}
		return Mitigation{}, nil
	case "tmr":
		if !hasLvl {
			level = 3
		}
		if level < 3 || level > 9 || level%2 == 0 {
			return Mitigation{}, mitigationErr(s)
		}
		return Mitigation{Kind: "tmr", Level: level}, nil
	case "ecc":
		if !hasLvl {
			level = 2
		}
		if level < 2 || level > 4 {
			return Mitigation{}, mitigationErr(s)
		}
		return Mitigation{Kind: "ecc", Level: level}, nil
	}
	return Mitigation{}, mitigationErr(s)
}

// requiredMAJ returns the majority width the mitigation's in-DRAM
// computation needs (0 = no mitigation).
func (m Mitigation) requiredMAJ() int {
	switch m.Kind {
	case "tmr":
		return m.Level
	case "ecc":
		return 3 // XOR chains are built from MAJ3
	}
	return 0
}

// Grid declares the swept axes of a scenario matrix. A nil axis collapses
// to the operation's nominal value, so the zero Grid is the single
// best-operating-point scenario.
type Grid struct {
	// Temp lists DRAM temperatures (°C; default {50}).
	Temp []float64
	// VPP lists wordline voltages (V; default {2.5}).
	VPP []float64
	// T1 and T2 list APA timing delays (ns; default: the operation's best
	// timings — BestSiMRA, BestMAJ or BestCopy).
	T1 []float64
	T2 []float64
	// Aging lists operational-aging offsets (years; default {0}).
	Aging []float64
	// Disturb lists disturbance-interaction stress levels (unitless;
	// default {0}, the quiet-array zero point).
	Disturb []float64
	// Retention lists retention stress levels (refresh-interval
	// multiples beyond spec; default {0}, in-spec refresh).
	Retention []float64
	// Rows lists simultaneously-activated-row counts (powers of two;
	// default {32}).
	Rows []int
	// MAJX lists majority widths (odd, ≥3; MAJ operations only;
	// default {3}).
	MAJX []int
	// Patterns lists data patterns (default {PatternRandom}).
	Patterns []dram.Pattern
	// Mitigations lists redundancy mitigations co-simulated at every
	// point (default {none}).
	Mitigations []Mitigation
}

// withDefaults collapses unset axes to the operation's nominal point.
func (g Grid) withDefaults(op core.OpKind) Grid {
	best := timing.BestSiMRA()
	switch op {
	case core.OpMAJ:
		best = timing.BestMAJ()
	case core.OpMultiRowCopy:
		best = timing.BestCopy()
	}
	if len(g.Temp) == 0 {
		g.Temp = []float64{50}
	}
	if len(g.VPP) == 0 {
		g.VPP = []float64{2.5}
	}
	if len(g.T1) == 0 {
		g.T1 = []float64{best.T1}
	}
	if len(g.T2) == 0 {
		g.T2 = []float64{best.T2}
	}
	if len(g.Aging) == 0 {
		g.Aging = []float64{0}
	}
	if len(g.Disturb) == 0 {
		g.Disturb = []float64{0}
	}
	if len(g.Retention) == 0 {
		g.Retention = []float64{0}
	}
	if len(g.Mitigations) == 0 {
		g.Mitigations = []Mitigation{{}}
	}
	if len(g.Rows) == 0 {
		g.Rows = []int{32}
	}
	if len(g.MAJX) == 0 || op != core.OpMAJ {
		g.MAJX = []int{3}
	}
	if len(g.Patterns) == 0 {
		g.Patterns = []dram.Pattern{dram.PatternRandom}
	}
	return g
}

// Point is one fully resolved scenario point: an operating condition the
// fleet is characterized under.
type Point struct {
	N         int // simultaneously activated rows
	X         int // majority width (MAJ operations only)
	Pattern   dram.Pattern
	T1, T2    float64 // APA timings, ns
	TempC     float64 // °C
	VPP       float64 // V
	Aging     float64 // years
	Disturb   float64 // disturbance-interaction stress
	Retention float64 // retention stress, refresh-interval multiples
	// Mit is the redundancy mitigation co-simulated at the point (zero =
	// none: the bare operation).
	Mit Mitigation
}

// Env returns the point's operating environment.
func (p Point) Env() analog.Env {
	return analog.Env{TempC: p.TempC, VPP: p.VPP, Aging: p.Aging,
		Disturb: p.Disturb, Retention: p.Retention}
}

// Timings returns the point's APA timing pair.
func (p Point) Timings() timing.APATimings {
	return timing.APATimings{T1: p.T1, T2: p.T2}
}

// points enumerates the grid's cross product in canonical nested order
// (rows → majority width → pattern → t1 → t2 → temperature → VPP →
// aging → disturb → retention → mitigation): the deterministic scan and
// table order. The three trailing axes default to single neutral values,
// so pre-mitigation grids enumerate the identical point sequence.
func (g Grid) points(op core.OpKind) []Point {
	var out []Point
	for _, n := range g.Rows {
		for _, x := range g.MAJX {
			for _, pat := range g.Patterns {
				for _, t1 := range g.T1 {
					for _, t2 := range g.T2 {
						for _, temp := range g.Temp {
							for _, vpp := range g.VPP {
								for _, aging := range g.Aging {
									for _, dist := range g.Disturb {
										for _, ret := range g.Retention {
											for _, mit := range g.Mitigations {
												out = append(out, Point{
													N: n, X: x, Pattern: pat,
													T1: t1, T2: t2,
													TempC: temp, VPP: vpp, Aging: aging,
													Disturb: dist, Retention: ret, Mit: mit,
												})
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// Envelope switches a scenario run from grid scan to adaptive envelope
// search: instead of sweeping Axis over fixed values, the runner bisects
// it per (module, base point) to locate the boundary where the module's
// mean all-trials success crosses Target.
type Envelope struct {
	// Axis is the bisected axis: "t1", "t2", "temp", "vpp", "aging",
	// "disturb" or "retention".
	Axis string
	// Lo and Hi bound the search (0/0 = the axis default, see AxisBounds).
	Lo, Hi float64
	// Target is the success-rate threshold in (0, 1] (0 = 0.9).
	Target float64
	// Steps is the number of bisection iterations after the two endpoint
	// probes (0 = 6, resolving the boundary to (Hi-Lo)/2⁶).
	Steps int
}

// EnvelopeAxes lists the bisectable axes in canonical order.
func EnvelopeAxes() []string {
	return []string{"t1", "t2", "temp", "vpp", "aging", "disturb", "retention"}
}

// AxisBounds returns the default search range of a bisectable axis,
// spanning the envelope the simulated tester supports.
func AxisBounds(axis string) (lo, hi float64, err error) {
	switch axis {
	case "t1":
		return 1.5, 36, nil
	case "t2":
		// Capped at 12 ns: one tester tick below the nominal tRP of
		// 13.5 ns, so every probe still violates tRP and can trigger
		// multi-row activation at all.
		return 1.5, 12, nil
	case "temp":
		return 50, 90, nil
	case "vpp":
		return 2.1, 2.5, nil
	case "aging":
		return 0, 20, nil
	case "disturb":
		return 0, 32, nil
	case "retention":
		return 0, 32, nil
	default:
		return 0, 0, fmt.Errorf("scenario: unknown envelope axis %q; valid: %s",
			axis, strings.Join(EnvelopeAxes(), ", "))
	}
}

// withDefaults resolves zero-value envelope fields.
func (e Envelope) withDefaults() (Envelope, error) {
	lo, hi, err := AxisBounds(e.Axis)
	if err != nil {
		return e, err
	}
	if e.Lo == 0 && e.Hi == 0 {
		e.Lo, e.Hi = lo, hi
	}
	if e.Lo >= e.Hi {
		return e, fmt.Errorf("scenario: envelope bounds [%g, %g] are empty", e.Lo, e.Hi)
	}
	if e.Target == 0 {
		e.Target = 0.9
	}
	if e.Target <= 0 || e.Target > 1 {
		return e, fmt.Errorf("scenario: envelope target %g outside (0, 1]", e.Target)
	}
	if e.Steps == 0 {
		e.Steps = 6
	}
	if e.Steps < 1 || e.Steps > 32 {
		return e, fmt.Errorf("scenario: envelope steps %d outside [1, 32]", e.Steps)
	}
	return e, nil
}

// withAxis returns the point with the bisected axis set to v.
func (p Point) withAxis(axis string, v float64) Point {
	switch axis {
	case "t1":
		p.T1 = v
	case "t2":
		p.T2 = v
	case "temp":
		p.TempC = v
	case "vpp":
		p.VPP = v
	case "aging":
		p.Aging = v
	case "disturb":
		p.Disturb = v
	case "retention":
		p.Retention = v
	}
	return p
}

// Config scopes a scenario run. The zero value of every field takes the
// documented default.
type Config struct {
	// Op selects the characterized operation family (default:
	// many-row activation).
	Op core.OpKind
	// Grid declares the swept axes; unset axes collapse to the operation's
	// nominal point.
	Grid Grid
	// Envelope, when non-nil, switches from grid scan to adaptive envelope
	// search on Envelope.Axis (whose Grid values, if any, are ignored: the
	// base points cross the remaining axes).
	Envelope *Envelope
	// Fleet is the module population (default: fleet.Representative on
	// 512-column slices).
	Fleet []fleet.Entry
	// Params is the electrical model (default: analog.DefaultParams).
	Params analog.Params
	// Trials per row group (default 4).
	Trials int
	// GroupsPerSubarray, SubarraysPerBank and Banks bound the sampling per
	// module point (defaults 4, 1, 2).
	GroupsPerSubarray int
	SubarraysPerBank  int
	Banks             int
	// Seed feeds group sampling and data generation (default 0xd5a, the
	// charexp default — shared so overlapping cells hit the same physics).
	Seed uint64
	// Engine bounds the shard parallelism (0 = GOMAXPROCS); results are
	// bit-identical for every worker count.
	Engine engine.Config
	// Memo optionally memoizes per-(point, module, bank, subarray) shards
	// across runs under `scenario/point-shard/v1` keys
	// (internal/cache.NewTyped over a shared cache satisfies it). nil
	// disables memoization.
	Memo engine.Memo[[]core.GroupOutcome]
	// Dispatch, when non-nil, routes point-shard execution through a
	// worker fleet (internal/cluster's Coordinator satisfies it) instead
	// of running shard bodies in-process. Shards travel as serialized
	// core.ShardSpec values keyed by the same `scenario/point-shard/v1`
	// content hashes Memo uses, so a dispatched run — grid scan or
	// envelope search — is bit-identical to a local one. nil executes
	// every shard in-process.
	Dispatch engine.Dispatcher
	// Stats, when non-nil, accumulates the run's engine progress counters
	// in an externally observable place — the job tier polls it for live
	// per-shard progress while the run executes. nil keeps a run-private
	// accumulator. Never affects result bytes.
	Stats *engine.Stats
	// Pool, when non-nil, supplies the private module instances shard work
	// runs on (the job executor's warmpool). Pooled instances are reset to
	// the power-off state before reuse, so results are bit-identical to
	// freshly built modules (verified by the job-vs-blocking invariance
	// suite).
	Pool dram.ModulePool
}

// DefaultConfig returns the standard reduced-scale scenario configuration.
func DefaultConfig() Config {
	fc := fleet.DefaultConfig()
	fc.Columns = 512
	return Config{
		Fleet:             fleet.Representative(fc),
		Params:            analog.DefaultParams(),
		Trials:            4,
		GroupsPerSubarray: 4,
		SubarraysPerBank:  1,
		Banks:             2,
		Seed:              0xd5a,
	}
}

// withDefaults resolves zero-value fields.
func (cfg Config) withDefaults() Config {
	def := DefaultConfig()
	if len(cfg.Fleet) == 0 {
		cfg.Fleet = def.Fleet
	}
	if cfg.Params == (analog.Params{}) {
		cfg.Params = def.Params
	}
	if cfg.Trials == 0 {
		cfg.Trials = def.Trials
	}
	if cfg.GroupsPerSubarray == 0 {
		cfg.GroupsPerSubarray = def.GroupsPerSubarray
	}
	if cfg.SubarraysPerBank == 0 {
		cfg.SubarraysPerBank = def.SubarraysPerBank
	}
	if cfg.Banks == 0 {
		cfg.Banks = def.Banks
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return cfg
}

// validate rejects malformed configurations before any simulation.
func (cfg Config) validate(points []Point) error {
	if cfg.Trials <= 0 {
		return fmt.Errorf("scenario: trials must be positive")
	}
	for _, p := range points {
		if p.N < 2 || p.N&(p.N-1) != 0 {
			return fmt.Errorf("scenario: %d rows not activatable (powers of two ≥ 2 only)", p.N)
		}
		if cfg.Op == core.OpMAJ {
			if p.X < 3 || p.X%2 == 0 {
				return fmt.Errorf("scenario: majority width %d must be odd and >= 3", p.X)
			}
			if p.N < p.X {
				return fmt.Errorf("scenario: MAJ%d needs at least %d rows, point has %d", p.X, p.X, p.N)
			}
		}
		if err := p.Env().Validate(); err != nil {
			return err
		}
		// Round-trip through the parser: one source of truth for kind and
		// redundancy-level bounds.
		if _, err := ParseMitigation(p.Mit.String()); err != nil {
			return err
		}
	}
	return nil
}

// applies reports whether a module profile can run the operation at the
// point (guarded chips and over-wide MAJ are skipped, as in charexp).
func applies(profile dram.Profile, op core.OpKind, p Point) bool {
	if profile.APAGuarded {
		return false
	}
	if op == core.OpMAJ && p.X > profile.MaxMAJ {
		return false
	}
	if len(profile.Decoder.FieldBits) > 0 && p.N > 1<<len(profile.Decoder.FieldBits) {
		return false
	}
	if w := p.Mit.requiredMAJ(); w > 0 && w > profile.MaxMAJ {
		return false
	}
	return true
}

// sweepConfig maps a point onto the core sweep cell it characterizes.
func (cfg Config) sweepConfig(p Point) core.SweepConfig {
	return core.SweepConfig{
		Op:                cfg.Op,
		X:                 p.X,
		N:                 p.N,
		Timings:           p.Timings(),
		Pattern:           p.Pattern,
		SubarraysPerBank:  cfg.SubarraysPerBank,
		GroupsPerSubarray: cfg.GroupsPerSubarray,
		Banks:             cfg.Banks,
		Mitigation:        p.Mit.Kind,
		MitLevel:          p.Mit.Level,
	}
}
