package scenario

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/stats"
)

// Envelope-cell statuses: the shape of a module's reliability boundary on
// the bisected axis.
const (
	// StatusMinViable: success rises with the axis; Boundary is the
	// smallest probed value meeting the target (e.g. minimum viable t2).
	StatusMinViable = "min-viable"
	// StatusMaxViable: success falls with the axis; Boundary is the
	// largest probed value meeting the target (e.g. maximum viable aging).
	StatusMaxViable = "max-viable"
	// StatusPass: the whole search range meets the target — no cliff.
	StatusPass = "pass"
	// StatusFail: no probed value meets the target.
	StatusFail = "fail"
)

// EnvelopeCell is one module's adaptive envelope-search outcome at one
// base point: the machine-readable rendering of the paper's reliability
// "cliff".
type EnvelopeCell struct {
	Module string
	Mfr    string
	// Base is the scenario point the search was anchored at; the bisected
	// axis field is overwritten per probe.
	Base Point
	// Lo/Hi are the search bounds; RateLo/RateHi the mean all-trials
	// success rates measured at them.
	Lo, Hi         float64
	RateLo, RateHi float64
	// Boundary is the axis value where success crosses the target,
	// resolved to (Hi-Lo)/2^Steps (NaN-free: for pass/fail cells it holds
	// the passing/failing bound).
	Boundary float64
	// Status is one of StatusMinViable, StatusMaxViable, StatusPass,
	// StatusFail.
	Status string
}

// runEnvelope bisects the envelope axis per (module, base point). Outer
// (module, base point) tasks run on the engine's worker pool; each
// bisection probes points sequentially, with every probe's (bank,
// subarray) shards memoized under the same scenario/point-shard/v1 keys
// the grid scan uses — so a scan warms the envelope search and vice
// versa.
func (cfg Config) runEnvelope(ctx context.Context, mods []*dram.Module) (*Result, error) {
	env, err := cfg.Envelope.withDefaults()
	if err != nil {
		return nil, err
	}
	// The bisected axis is removed from the grid: base points cross the
	// remaining axes only.
	grid := cfg.Grid
	switch env.Axis {
	case "t1":
		grid.T1 = nil
	case "t2":
		grid.T2 = nil
	case "temp":
		grid.Temp = nil
	case "vpp":
		grid.VPP = nil
	case "aging":
		grid.Aging = nil
	case "disturb":
		grid.Disturb = nil
	case "retention":
		grid.Retention = nil
	}
	base := grid.withDefaults(cfg.Op).points(cfg.Op)
	probes := make([]Point, 0, 2*len(base))
	for _, p := range base {
		probes = append(probes, p.withAxis(env.Axis, env.Lo), p.withAxis(env.Axis, env.Hi))
	}
	if err := cfg.validate(probes); err != nil {
		return nil, err
	}

	type outerTask struct {
		point Point
		mi    int
	}
	var outer []outerTask
	for _, p := range base {
		for mi, mod := range mods {
			if !applies(mod.Spec().Profile, cfg.Op, p) {
				continue
			}
			outer = append(outer, outerTask{point: p, mi: mi})
		}
	}
	if len(outer) == 0 {
		return nil, fmt.Errorf("scenario: no module in the fleet can run any envelope base point")
	}

	st := cfg.statsAccumulator()
	tasks := make([]engine.Task[EnvelopeCell], len(outer))
	for i, ot := range outer {
		ot := ot
		tasks[i] = func(ctx context.Context) (EnvelopeCell, error) {
			return cfg.bisectModule(ctx, ot.point, cfg.Fleet[ot.mi].Spec, env, st)
		}
	}
	cells, err := engine.Run(ctx, cfg.Engine, nil, tasks)
	if err != nil {
		return nil, err
	}
	res := &Result{Op: cfg.Op, Axis: env.Axis, Target: env.Target, Cells: cells}
	res.Stats = st.Snapshot()
	return res, nil
}

// evalPoint measures one module's mean all-trials success at one point:
// an inner sequential engine run over the module's (bank, subarray)
// shards, served from the shard memo when warm.
func (cfg Config) evalPoint(ctx context.Context, spec dram.Spec, p Point, st *engine.Stats) (float64, error) {
	mod, release, err := dram.PoolModule(cfg.Pool, spec, cfg.Params)
	if err != nil {
		return 0, err
	}
	samples := cfg.samples(mod)
	release() // only needed for sampling; shard work checks out its own
	if len(samples) == 0 {
		return 0, fmt.Errorf("scenario: module %s sampled no subarrays", spec.ID)
	}
	tasks := make([]engine.Task[[]core.GroupOutcome], len(samples))
	keys := make([]engine.ShardKey, len(samples))
	for i, s := range samples {
		sh := pointShard{point: p, spec: spec, sample: s}
		if cfg.Memo != nil || cfg.Dispatch != nil {
			sh.key = shardKey(spec, cfg.Params, cfg.Op, p,
				cfg.Trials, cfg.SubarraysPerBank, cfg.GroupsPerSubarray, cfg.Banks,
				cfg.Seed, s)
			keys[i] = sh.key
		}
		tasks[i] = cfg.shardTask(sh, st)
	}
	outcomes, err := engine.RunKeyed(ctx, engine.Config{Workers: 1}, st, cfg.Memo, keys, tasks)
	if err != nil {
		return 0, err
	}
	var rates []float64
	for _, out := range outcomes {
		for _, o := range out {
			rates = append(rates, o.Result.Rate())
		}
	}
	if len(rates) == 0 {
		return 0, fmt.Errorf("scenario: module %s sampled no groups at %+v", spec.ID, p)
	}
	return stats.MustSummarize(rates).Mean, nil
}

// bisectModule locates one module's reliability boundary on the envelope
// axis at one base point. The search is purely deterministic: endpoint
// probes classify the cell, then Steps bisection iterations shrink the
// bracket that contains the target crossing.
func (cfg Config) bisectModule(ctx context.Context, base Point, spec dram.Spec,
	env Envelope, st *engine.Stats) (EnvelopeCell, error) {

	eval := func(v float64) (float64, error) {
		return cfg.evalPoint(ctx, spec, base.withAxis(env.Axis, v), st)
	}
	cell := EnvelopeCell{
		Module: spec.ID,
		Mfr:    spec.Profile.Name,
		Base:   base,
		Lo:     env.Lo,
		Hi:     env.Hi,
	}
	rateLo, err := eval(env.Lo)
	if err != nil {
		return cell, err
	}
	rateHi, err := eval(env.Hi)
	if err != nil {
		return cell, err
	}
	cell.RateLo, cell.RateHi = rateLo, rateHi

	okLo, okHi := rateLo >= env.Target, rateHi >= env.Target
	lo, hi := env.Lo, env.Hi
	switch {
	case okLo && okHi:
		cell.Status = StatusPass
		cell.Boundary = env.Lo
	case !okLo && !okHi:
		cell.Status = StatusFail
		cell.Boundary = env.Hi
	case !okLo && okHi:
		// Success rises with the axis: shrink [lo, hi] keeping
		// rate(lo) < target <= rate(hi); hi converges on the smallest
		// viable value.
		for i := 0; i < env.Steps; i++ {
			mid := (lo + hi) / 2
			r, err := eval(mid)
			if err != nil {
				return cell, err
			}
			if r >= env.Target {
				hi = mid
			} else {
				lo = mid
			}
		}
		cell.Status = StatusMinViable
		cell.Boundary = hi
	default:
		// Success falls with the axis: keep rate(lo) >= target > rate(hi);
		// lo converges on the largest viable value.
		for i := 0; i < env.Steps; i++ {
			mid := (lo + hi) / 2
			r, err := eval(mid)
			if err != nil {
				return cell, err
			}
			if r >= env.Target {
				lo = mid
			} else {
				hi = mid
			}
		}
		cell.Status = StatusMaxViable
		cell.Boundary = lo
	}
	return cell, nil
}
