package scenario

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/invariance"
)

// invariantConfig builds a small scenario configuration under one harness
// variant.
func invariantConfig(v invariance.Variant) Config {
	cfg := smallConfig()
	cfg.Engine.Workers = v.Workers
	if v.Store != nil {
		cfg.Memo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
	}
	if v.Permute {
		for i, j := 0, len(cfg.Fleet)-1; i < j; i, j = i+1, j-1 {
			cfg.Fleet[i], cfg.Fleet[j] = cfg.Fleet[j], cfg.Fleet[i]
		}
	}
	if v.Subset {
		cfg.Fleet = cfg.Fleet[:1]
	}
	return cfg
}

// TestInvariances runs the shared metamorphic suite over both scenario
// modes. Per-module cells are keyed by module identity, so they must
// survive fleet permutation and composition changes; the grid scan's
// pooled table sorts before summarizing, so its bytes must too.
func TestInvariances(t *testing.T) {
	subjects := []invariance.Subject{
		{
			Name: "scenario/grid",
			Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
				t.Helper()
				cfg := invariantConfig(v)
				cfg.Grid = smallGrid()
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				var b strings.Builder
				if err := WriteReport(&b, res, "text"); err != nil {
					t.Fatal(err)
				}
				units := make(map[string]string)
				for _, pr := range res.Points {
					for _, m := range pr.Modules {
						units[invariance.UnitKey(m.Module, invariance.Sprint(pr.Point))] =
							invariance.Sprint(m)
					}
				}
				return b.String(), units
			},
			Cacheable:              true,
			Permutable:             true,
			PermutationKeepsOutput: true, // pooled table sorts before summarizing
			Subsettable:            true,
		},
		{
			Name: "scenario/mitigation-grid",
			Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
				t.Helper()
				cfg := invariantConfig(v)
				cfg.Grid = Grid{
					T2:          []float64{1.5, 3.0},
					Mitigations: []Mitigation{{}, {Kind: "tmr", Level: 3}, {Kind: "ecc", Level: 2}},
				}
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				var b strings.Builder
				if err := WriteReport(&b, res, "text"); err != nil {
					t.Fatal(err)
				}
				units := make(map[string]string)
				for _, pr := range res.Points {
					for _, m := range pr.Modules {
						units[invariance.UnitKey(m.Module, invariance.Sprint(pr.Point))] =
							invariance.Sprint(m)
					}
				}
				return b.String(), units
			},
			Cacheable:              true,
			Permutable:             true,
			PermutationKeepsOutput: true,
			Subsettable:            true,
		},
		{
			Name: "scenario/envelope",
			Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
				t.Helper()
				cfg := invariantConfig(v)
				cfg.Envelope = &Envelope{Axis: "t2", Target: 0.9}
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				var b strings.Builder
				if err := WriteReport(&b, res, "text"); err != nil {
					t.Fatal(err)
				}
				units := make(map[string]string, len(res.Cells))
				for _, c := range res.Cells {
					units[invariance.UnitKey(c.Module, invariance.Sprint(c.Base))] =
						invariance.Sprint(c)
				}
				return b.String(), units
			},
			Cacheable:   true,
			Permutable:  true, // row order follows the fleet; cells must not
			Subsettable: true,
		},
	}
	for _, s := range subjects {
		t.Run(s.Name, func(t *testing.T) { invariance.Check(t, s) })
	}
}
