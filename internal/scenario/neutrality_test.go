package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// renderText runs cfg and returns the text report (neutrality-test
// helper).
func renderText(t *testing.T, cfg Config) (*Result, string) {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, res, "text"); err != nil {
		t.Fatal(err)
	}
	return res, b.String()
}

// TestZeroPointNeutrality pins the contract that lets this PR's new axes
// land without touching a single pre-existing golden: sweeping disturb,
// retention or mitigation explicitly at the zero point must be
// byte-identical to not mentioning the axis at all. Every result the
// repo pinned before these axes existed enumerates the same points,
// hashes to the same shard keys and renders the same bytes.
func TestZeroPointNeutrality(t *testing.T) {
	base := smallConfig()
	base.Grid = smallGrid()
	resBase, textBase := renderText(t, base)

	explicit := smallConfig()
	explicit.Grid = smallGrid()
	explicit.Grid.Disturb = []float64{0}
	explicit.Grid.Retention = []float64{0}
	explicit.Grid.Mitigations = []Mitigation{{}}
	resExplicit, textExplicit := renderText(t, explicit)

	if textExplicit != textBase {
		t.Fatalf("explicit zero axes changed the report:\n--- default\n%s\n--- explicit\n%s",
			textBase, textExplicit)
	}
	if !reflect.DeepEqual(resExplicit.Points, resBase.Points) {
		t.Fatal("explicit zero axes changed the point results")
	}

	// Shard keys must collapse too — an explicit zero that re-keyed the
	// shards would silently cold-start every fleet cache on upgrade.
	pBase := base.Grid.withDefaults(base.Op).points(base.Op)
	pExplicit := explicit.Grid.withDefaults(explicit.Op).points(explicit.Op)
	if !reflect.DeepEqual(pExplicit, pBase) {
		t.Fatal("explicit zero axes changed the enumerated point sequence")
	}
}

// TestMitigationNoneIsBareOperation: inside a mixed mitigation sweep the
// "none" rows must be identical — point results and all — to a sweep
// that never heard of mitigations. The redundancy co-simulation is a
// strict overlay: selecting it for some points cannot perturb the bare
// characterization sitting next to it in the same grid.
func TestMitigationNoneIsBareOperation(t *testing.T) {
	bare := smallConfig()
	bare.Grid = Grid{T2: []float64{1.5, 3.0}}
	resBare, _ := renderText(t, bare)

	mixed := smallConfig()
	mixed.Grid = Grid{
		T2:          []float64{1.5, 3.0},
		Mitigations: []Mitigation{{}, {Kind: "tmr", Level: 3}, {Kind: "ecc", Level: 2}},
	}
	resMixed, _ := renderText(t, mixed)

	var nonePoints []PointResult
	for _, pr := range resMixed.Points {
		if pr.Point.Mit == (Mitigation{}) {
			nonePoints = append(nonePoints, pr)
		}
	}
	if len(nonePoints) != len(resBare.Points) {
		t.Fatalf("mixed sweep has %d none-mitigation points; bare sweep has %d",
			len(nonePoints), len(resBare.Points))
	}
	if !reflect.DeepEqual(nonePoints, resBare.Points) {
		t.Fatal("none-mitigation rows diverged from the bare sweep")
	}

	// The mitigated points must actually differ from the bare rows —
	// otherwise the co-simulation silently fell through to the bare path
	// and this whole test proves nothing.
	distinct := false
	for _, pr := range resMixed.Points {
		if pr.Point.Mit == (Mitigation{}) {
			continue
		}
		for _, bp := range resBare.Points {
			if bp.Point.T2 == pr.Point.T2 && bp.Pooled != pr.Pooled {
				distinct = true
			}
		}
	}
	if !distinct {
		t.Fatal("every mitigated point matched its bare row exactly; co-simulation inert?")
	}
}
