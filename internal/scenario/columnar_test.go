package scenario

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/colenc"
)

// runColumnar executes one small scenario config and returns both the
// text-path table and the decoded columnar stream.
func runColumnar(t *testing.T, envelope bool) (*Result, *colenc.Table, []byte) {
	t.Helper()
	cfg := smallConfig()
	cfg.Grid = smallGrid()
	if envelope {
		cfg.Grid = Grid{Temp: []float64{50}}
		cfg.Envelope = &Envelope{Axis: "t2", Target: 0.9}
	}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, res, "columnar"); err != nil {
		t.Fatal(err)
	}
	enc := []byte(b.String())
	dec, err := colenc.Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	return res, dec, enc
}

// TestColumnarMetamorphic pins the text-rows ≡ columnar-rows contract for
// both scenario modes: decoding the columnar stream and re-applying the
// report's format verbs must reproduce the exact charexp table the
// text/CSV paths print.
func TestColumnarMetamorphic(t *testing.T) {
	for _, envelope := range []bool{false, true} {
		res, dec, enc := runColumnar(t, envelope)
		got, err := ColumnarStrings(dec)
		if err != nil {
			t.Fatal(err)
		}
		want := res.Table()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("envelope=%v: columnar rows diverged from text rows:\n got %+v\nwant %+v",
				envelope, got, want)
		}
		// The stream is deterministic: re-encoding the same result gives
		// the same bytes.
		var b strings.Builder
		if err := WriteReport(&b, res, "columnar"); err != nil {
			t.Fatal(err)
		}
		if b.String() != string(enc) {
			t.Fatalf("envelope=%v: columnar encoding is not deterministic", envelope)
		}
	}
}

// TestColumnarMeta pins the stream metadata: identity plus the counts the
// text footer prints.
func TestColumnarMeta(t *testing.T) {
	res, dec, _ := runColumnar(t, false)
	if dec.MetaValue("id") != "Scan" || dec.MetaValue("points") == "" ||
		dec.MetaValue("applicable") == "" {
		t.Fatalf("grid meta incomplete: %v", dec.Meta)
	}
	if dec.NumRows() != len(res.Points) {
		t.Fatalf("got %d rows; want %d points", dec.NumRows(), len(res.Points))
	}
	// Raw rates live in [0, 1]; the text path formats them as percents.
	mean := dec.Col("mean")
	for i := 0; i < dec.NumRows(); i++ {
		if v := mean.Float64s[i]; v < 0 || v > 1 {
			t.Fatalf("row %d: mean %v outside [0, 1]; columnar must carry raw rates", i, v)
		}
	}
	_, envDec, _ := runColumnar(t, true)
	if envDec.MetaValue("id") != "Envelope" || envDec.MetaValue("axis") != "t2" ||
		envDec.MetaValue("cells") == "" {
		t.Fatalf("envelope meta incomplete: %v", envDec.Meta)
	}
	// The bisected axis column is all-null ("*" in text).
	axis := envDec.Col("t2(ns)")
	if axis == nil || !axis.Field.Nullable {
		t.Fatal("bisected axis column must be nullable")
	}
	for i := 0; i < envDec.NumRows(); i++ {
		if axis.Valid[i] {
			t.Fatal("bisected axis column must be all-null")
		}
	}
}
