// Package campaign is the fleet-design campaign runner: it searches
// compositions of the Table-2 module die groups for the mix that
// maximizes reliable throughput per watt on a target workload. Every
// candidate mix is evaluated in two phases — the union of its modules
// runs the workload once each (the per-module shards of
// internal/workload, shared with every other candidate that uses the
// same module), then each candidate's aggregate score is itself an
// engine shard with its own content-addressed memo key
// (`campaign/candidate/v1`) — so campaigns are deterministic,
// cache-addressed, and bit-identical for every worker count, cache mode
// and cluster fan-out.
package campaign

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/analog"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/workload"
)

// DefaultFleetSize is the number of modules a candidate mix deploys.
const DefaultFleetSize = 3

// DefaultTop is how many ranked candidates the report shows.
const DefaultTop = 10

// MaxFleetSize bounds the candidate enumeration (compositions grow
// combinatorially with the fleet size).
const MaxFleetSize = 6

// Group is one Table-2 die group: the modules sharing a (manufacturer,
// die revision, subarray geometry) identity, in fleet order.
type Group struct {
	// Label identifies the group: "mfr/dieRev/decoderRows" (the same
	// identity key fleet.Representative dedupes on).
	Label string
	// Entries are the group's modules, in Table-2 order. Distinct entries
	// carry distinct process-variation seeds, so deploying k copies from a
	// group means k physically distinct modules.
	Entries []fleet.Entry
}

// Eval is one candidate's memoized evaluation: the aggregate over its
// modules' workload results. Non-viable (guarded) modules contribute
// nothing to either sum.
type Eval struct {
	// ThroughputMbps is Σ over viable modules of throughput × success
	// rate: the mix's reliable throughput.
	ThroughputMbps float64
	// PowerW is Σ over viable modules of energy/time (nJ/ns = W).
	PowerW float64
	// Score is reliable throughput per watt (0 when no module is viable).
	Score float64
	// Viable counts the mix's viable modules.
	Viable int
}

// Candidate is one ranked row of the campaign report.
type Candidate struct {
	// Rank is the candidate's 1-based position in the score ordering
	// (ties broken by enumeration order).
	Rank int
	// Counts is the mix: how many modules the candidate deploys from each
	// group, indexed like Result.Groups.
	Counts []int
	// Modules are the deployed module IDs (the first Counts[i] entries of
	// each group), in fleet order.
	Modules []string
	Eval
}

// Result is a completed campaign: the ranked top candidates plus the
// search's shape.
type Result struct {
	// Workload is the target workload's name.
	Workload string
	// FleetSize is the size of every candidate mix.
	FleetSize int
	// Groups are the die groups the search composes over.
	Groups []Group
	// Total is how many candidate mixes were evaluated.
	Total int
	// Candidates are the ranked top candidates (at most Config.Top).
	Candidates []Candidate
	// Stats snapshots the engine counters across both phases.
	Stats engine.Snapshot
}

// Config scopes one campaign run. Create via Options.Resolve (the CLI and
// serving layer's shared path) or fill the fields directly.
type Config struct {
	// Workload is the target workload the mix is designed for.
	Workload workload.Workload
	// FleetSize is the number of modules per candidate mix (0 =
	// DefaultFleetSize; at most MaxFleetSize).
	FleetSize int
	// Top bounds the ranked candidates in the result (0 = DefaultTop).
	Top int
	// Params is the electrical model (zero value = analog.DefaultParams).
	Params analog.Params
	// Columns is the simulated subarray slice width (0 = 512).
	Columns int
	// MaxX caps the majority width (0 = workload.DefaultMaxX).
	MaxX int
	// Seed is the root experiment seed (0 = workload.DefaultSeed).
	Seed uint64
	// Engine bounds the shard parallelism; results are bit-identical for
	// every worker count.
	Engine engine.Config
	// ModMemo memoizes phase-1 per-module workload shards (the same
	// `workload/module-shard/v1` keys cmd/simra-work and /v1/workload
	// use, so a campaign warms workload requests and vice versa).
	ModMemo engine.Memo[[]workload.Result]
	// Memo memoizes phase-2 candidate evaluations under their
	// `campaign/candidate/v1` content keys.
	Memo engine.Memo[Eval]
	// Dispatch, when non-nil, fans phase-1 module shards out over a worker
	// fleet (candidate aggregation is pure arithmetic and always runs
	// locally). Dispatched runs are bit-identical to local ones.
	Dispatch engine.Dispatcher
	// Stats, when non-nil, accumulates engine progress across both phases
	// (the job tier polls it). Never affects result bytes.
	Stats *engine.Stats
	// Pool, when non-nil, supplies warm module instances for phase-1 shard
	// work.
	Pool dram.ModulePool
}

// withDefaults resolves zero-value fields.
func (cfg Config) withDefaults() Config {
	if cfg.FleetSize == 0 {
		cfg.FleetSize = DefaultFleetSize
	}
	if cfg.Top == 0 {
		cfg.Top = DefaultTop
	}
	if cfg.Params == (analog.Params{}) {
		cfg.Params = analog.DefaultParams()
	}
	if cfg.Columns == 0 {
		cfg.Columns = 512
	}
	if cfg.MaxX == 0 {
		cfg.MaxX = workload.DefaultMaxX
	}
	if cfg.Seed == 0 {
		cfg.Seed = workload.DefaultSeed
	}
	return cfg
}

// ModuleGroups partitions the Table-2 fleet into its die groups,
// preserving fleet order within and across groups.
func ModuleGroups(fc fleet.Config) []Group {
	var out []Group
	index := map[string]int{}
	for _, e := range fleet.Modules(fc) {
		key := fmt.Sprintf("%s/%s/%d",
			e.Spec.Profile.Name, e.Spec.DieRev, e.Spec.Profile.Decoder.Rows)
		i, ok := index[key]
		if !ok {
			i = len(out)
			index[key] = i
			out = append(out, Group{Label: key})
		}
		out[i].Entries = append(out[i].Entries, e)
	}
	return out
}

// compositions enumerates every way to split total modules across the
// groups without exceeding any group's capacity, in lexicographic order
// of the count vector. The order is the candidate enumeration index —
// the deterministic tiebreaker of the final ranking.
func compositions(caps []int, total int) [][]int {
	var out [][]int
	counts := make([]int, len(caps))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(caps)-1 {
			if remaining <= caps[i] {
				counts[i] = remaining
				out = append(out, append([]int(nil), counts...))
			}
			return
		}
		max := remaining
		if max > caps[i] {
			max = caps[i]
		}
		for c := 0; c <= max; c++ {
			counts[i] = c
			rec(i+1, remaining-c)
		}
	}
	rec(0, total)
	return out
}

// candidateEntries resolves a count vector to its module entries: the
// first Counts[i] entries of each group. Distinct entries carry distinct
// spec seeds, so every deployed copy has its own physics.
func candidateEntries(groups []Group, counts []int) []fleet.Entry {
	var out []fleet.Entry
	for gi, n := range counts {
		out = append(out, groups[gi].Entries[:n]...)
	}
	return out
}

// candidateKey hashes everything one candidate's evaluation depends on:
// the identity and electrical model of every deployed module (the shared
// dram.Spec.HashModule block, which also covers the mix's counts — the
// module sets of distinct mixes differ), the target workload, the
// majority-width cap and the root seed. Worker count and cache mode are
// deliberately absent: the evaluation is invariant to both.
func candidateKey(entries []fleet.Entry, params analog.Params, wl string, maxX int, seed uint64) engine.ShardKey {
	h := cache.NewHasher().Str("campaign/candidate/v1")
	for _, e := range entries {
		h = e.Spec.HashModule(h, params)
	}
	return h.Str(wl).Int(maxX).U64(seed).Sum()
}

// evalCandidate aggregates one candidate mix from the phase-1 per-module
// results: reliable throughput (throughput × success), power
// (energy/time), and their ratio. Addition runs in fleet order, so the
// floats are bit-identical across runs.
func evalCandidate(entries []fleet.Entry, byModule map[string]workload.Result) (Eval, error) {
	var ev Eval
	for _, e := range entries {
		r, ok := byModule[e.Spec.ID]
		if !ok {
			return Eval{}, fmt.Errorf("campaign: module %s missing from the workload phase", e.Spec.ID)
		}
		if !r.Viable {
			continue
		}
		ev.Viable++
		ev.ThroughputMbps += r.ThroughputMbps * r.SuccessRate()
		ev.PowerW += r.EnergyNJ / r.TimeNS
	}
	if ev.PowerW > 0 {
		ev.Score = ev.ThroughputMbps / ev.PowerW
	}
	return ev, nil
}

// Run executes the campaign: enumerate candidate mixes, run the target
// workload once per distinct module (phase 1), evaluate every candidate
// as a keyed engine shard (phase 2), and rank by reliable throughput per
// watt (score descending, enumeration order breaking ties).
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if cfg.Workload == nil {
		return nil, fmt.Errorf("campaign: no target workload")
	}
	if cfg.FleetSize < 1 || cfg.FleetSize > MaxFleetSize {
		return nil, fmt.Errorf("campaign: fleet size %d out of range; valid: %s",
			cfg.FleetSize, fleetSizeList())
	}
	if cfg.Top < 0 {
		return nil, fmt.Errorf("campaign: top %d must be >= 0", cfg.Top)
	}

	fc := fleet.DefaultConfig()
	fc.Columns = cfg.Columns
	groups := ModuleGroups(fc)
	caps := make([]int, len(groups))
	for i, g := range groups {
		caps[i] = len(g.Entries)
	}
	mixes := compositions(caps, cfg.FleetSize)
	if len(mixes) == 0 {
		return nil, fmt.Errorf("campaign: no candidate mix of %d modules fits the group capacities", cfg.FleetSize)
	}
	st := cfg.Stats
	if st == nil {
		st = new(engine.Stats)
	}

	// Phase 1: the union of modules any candidate deploys (the first
	// min(capacity, fleet size) entries of each group) runs the target
	// workload, one engine shard per module under the shared
	// workload/module-shard keys.
	var union []fleet.Entry
	for _, g := range groups {
		n := cfg.FleetSize
		if n > len(g.Entries) {
			n = len(g.Entries)
		}
		union = append(union, g.Entries[:n]...)
	}
	wcfg := workload.FleetConfig{
		Entries:   union,
		Params:    cfg.Params,
		Workloads: []workload.Workload{cfg.Workload},
		MaxX:      cfg.MaxX,
		Seed:      cfg.Seed,
		Engine:    cfg.Engine,
		Memo:      cfg.ModMemo,
		Dispatch:  cfg.Dispatch,
		Stats:     st,
		Pool:      cfg.Pool,
	}
	results, err := workload.RunFleet(ctx, wcfg)
	if err != nil {
		return nil, err
	}
	byModule := make(map[string]workload.Result, len(results))
	for _, r := range results {
		byModule[r.Module] = r
	}

	// Phase 2: every candidate evaluation is a keyed engine shard —
	// memoized under campaign/candidate/v1, bit-identical for any worker
	// count, and pure arithmetic over the phase-1 results.
	keys := make([]engine.ShardKey, len(mixes))
	tasks := make([]engine.Task[Eval], len(mixes))
	wlName := cfg.Workload.Name()
	for i, counts := range mixes {
		entries := candidateEntries(groups, counts)
		if cfg.Memo != nil {
			keys[i] = candidateKey(entries, cfg.Params, wlName, cfg.MaxX, cfg.Seed)
		}
		tasks[i] = func(context.Context) (Eval, error) {
			return evalCandidate(entries, byModule)
		}
	}
	evals, err := engine.RunKeyed(ctx, cfg.Engine, st, cfg.Memo, keys, tasks)
	if err != nil {
		return nil, err
	}

	ranked := make([]Candidate, len(mixes))
	for i, counts := range mixes {
		entries := candidateEntries(groups, counts)
		ids := make([]string, len(entries))
		for j, e := range entries {
			ids[j] = e.Spec.ID
		}
		ranked[i] = Candidate{Counts: counts, Modules: ids, Eval: evals[i]}
	}
	order := make([]int, len(ranked))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ranked[order[a]].Score > ranked[order[b]].Score
	})
	top := cfg.Top
	if top > len(order) {
		top = len(order)
	}
	out := &Result{
		Workload:  wlName,
		FleetSize: cfg.FleetSize,
		Groups:    groups,
		Total:     len(mixes),
	}
	for rank, oi := range order[:top] {
		c := ranked[oi]
		c.Rank = rank + 1
		out.Candidates = append(out.Candidates, c)
	}
	out.Stats = st.Snapshot()
	return out, nil
}
