package campaign

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/workload"
)

// Options mirrors the cmd/simra-campaign CLI surface and the serving
// layer's campaign-request parameters. Resolving options to a Config here
// — rather than in each front end — is what makes a served campaign
// response byte-identical to the CLI's output for the same parameters.
type Options struct {
	// Workload is the target workload's name (default "bitmap-scan").
	Workload string
	// FleetSize is the number of modules per candidate mix (0 =
	// DefaultFleetSize; at most MaxFleetSize).
	FleetSize int
	// Top bounds the ranked candidates in the report (0 = DefaultTop).
	Top int
	// Workers bounds the engine parallelism (0 = GOMAXPROCS). It never
	// affects result bytes.
	Workers int
	// MaxX caps the majority width (0 = default).
	MaxX int
	// Columns is the simulated subarray slice width (0 = 512).
	Columns int
	// Seed overrides the experiment seed (0 = default).
	Seed uint64
}

// workloadList renders the registered workload names for error messages
// (the "; valid: ..." convention the 422 envelope parses).
func workloadList() string {
	var names []string
	for _, w := range workload.All() {
		names = append(names, w.Name())
	}
	return strings.Join(names, ", ")
}

// fleetSizeList renders the accepted fleet sizes for error messages.
func fleetSizeList() string {
	var sizes []string
	for n := 1; n <= MaxFleetSize; n++ {
		sizes = append(sizes, strconv.Itoa(n))
	}
	return strings.Join(sizes, ", ")
}

// Resolve validates the options and builds the campaign configuration.
func (o Options) Resolve() (Config, error) {
	cfg := Config{
		FleetSize: o.FleetSize,
		Top:       o.Top,
		MaxX:      o.MaxX,
		Columns:   o.Columns,
		Seed:      o.Seed,
	}
	name := o.Workload
	if name == "" {
		name = "bitmap-scan"
	}
	w, err := workload.Get(name)
	if err != nil {
		return Config{}, fmt.Errorf("campaign: unknown workload %q; valid: %s", name, workloadList())
	}
	cfg.Workload = w
	if o.FleetSize < 0 || o.FleetSize > MaxFleetSize {
		return Config{}, fmt.Errorf("campaign: fleet size %d out of range; valid: %s",
			o.FleetSize, fleetSizeList())
	}
	if o.Top < 0 {
		return Config{}, fmt.Errorf("campaign: top %d must be >= 0", o.Top)
	}
	cfg.Engine.Workers = o.Workers
	return cfg, nil
}

// Table renders the campaign result as a charexp-style table: one row per
// ranked candidate, one column per die group carrying the mix's count.
// Every cell is deterministic; the golden tests pin the rendering byte
// for byte.
func (r *Result) Table() charexp.Table {
	t := charexp.Table{
		ID: "campaign",
		Title: fmt.Sprintf("fleet-design campaign: reliable throughput per watt (workload %s, fleet size %d)",
			r.Workload, r.FleetSize),
	}
	t.Columns = []string{"rank"}
	for _, g := range r.Groups {
		t.Columns = append(t.Columns, g.Label)
	}
	t.Columns = append(t.Columns, "modules", "viable", "tput-mbps", "power-w", "score")
	for _, c := range r.Candidates {
		row := []string{strconv.Itoa(c.Rank)}
		for _, n := range c.Counts {
			row = append(row, strconv.Itoa(n))
		}
		row = append(row,
			strconv.Itoa(len(c.Modules)),
			strconv.Itoa(c.Viable),
			fmt.Sprintf("%.2f", c.ThroughputMbps),
			fmt.Sprintf("%.4f", c.PowerW),
			fmt.Sprintf("%.2f", c.Score),
		)
		t.Rows = append(t.Rows, row)
	}
	return t
}

// WriteReport renders a campaign result to w in the given format ("text",
// "csv" or "columnar"), plus — text only — the search summary line. This
// is the byte-exact output contract of cmd/simra-campaign and the serving
// layer's campaign responses.
func WriteReport(w io.Writer, r *Result, format string) error {
	switch format {
	case "columnar":
		enc, err := colenc.Encode(r.Columnar(), 0)
		if err != nil {
			return err
		}
		_, err = w.Write(enc)
		return err
	case "csv":
		_, err := io.WriteString(w, r.Table().CSV())
		return err
	case "text":
		if _, err := io.WriteString(w, r.Table().Render()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "\ntop %d of %d candidate mixes (workload %s, fleet size %d over %d module groups)\n",
			len(r.Candidates), r.Total, r.Workload, r.FleetSize, len(r.Groups))
		return err
	default:
		return fmt.Errorf("campaign: unknown format %q; valid: text, csv, columnar", format)
	}
}
