package campaign

import (
	"fmt"
	"strconv"

	"repro/internal/charexp"
	"repro/internal/colenc"
)

// Columnar builds the typed columnar table for a campaign result: the
// same ranked rows, in the same order, as Table() — but with raw values
// (unrounded throughput, power and score) instead of rendered cells.
// Group columns carry the mix counts under the group labels; the meta
// block carries the search's shape, so a columnar payload is as
// self-describing as the text report.
func (r *Result) Columnar() *colenc.Table {
	tab := r.Table()
	t := &colenc.Table{
		Name: tab.ID,
		Meta: [][2]string{
			{"id", tab.ID}, {"title", tab.Title},
			{"workload", r.Workload},
			{"fleet_size", strconv.Itoa(r.FleetSize)},
			{"total", strconv.Itoa(r.Total)},
			{"shown", strconv.Itoa(len(r.Candidates))},
		},
	}
	i64 := func(name string) colenc.Column {
		return colenc.Column{Field: colenc.Field{Name: name, Type: colenc.TypeInt64}}
	}
	f64 := func(name string) colenc.Column {
		return colenc.Column{Field: colenc.Field{Name: name, Type: colenc.TypeFloat64}}
	}
	cols := []colenc.Column{i64("rank")}
	for _, g := range r.Groups {
		cols = append(cols, i64(g.Label))
	}
	cols = append(cols, i64("modules"), i64("viable"),
		f64("tput-mbps"), f64("power-w"), f64("score"))
	for _, c := range r.Candidates {
		cols[0].Int64s = append(cols[0].Int64s, int64(c.Rank))
		for gi, n := range c.Counts {
			cols[1+gi].Int64s = append(cols[1+gi].Int64s, int64(n))
		}
		base := 1 + len(r.Groups)
		cols[base].Int64s = append(cols[base].Int64s, int64(len(c.Modules)))
		cols[base+1].Int64s = append(cols[base+1].Int64s, int64(c.Viable))
		cols[base+2].Float64s = append(cols[base+2].Float64s, c.ThroughputMbps)
		cols[base+3].Float64s = append(cols[base+3].Float64s, c.PowerW)
		cols[base+4].Float64s = append(cols[base+4].Float64s, c.Score)
	}
	t.Cols = cols
	return t
}

// ColumnarStrings is the reverse formatter: it re-renders a campaign
// columnar table into the exact charexp.Table the text/CSV paths print,
// re-applying the report's format verbs ("%.2f" throughput and score,
// "%.4f" power). It is the metamorphic bridge the invariance suite uses
// to assert text-rows ≡ columnar-rows.
func ColumnarStrings(t *colenc.Table) (charexp.Table, error) {
	out := charexp.Table{
		ID:      t.MetaValue("id"),
		Title:   t.MetaValue("title"),
		Columns: make([]string, len(t.Cols)),
	}
	for i := range t.Cols {
		out.Columns[i] = t.Cols[i].Field.Name
	}
	n := t.NumRows()
	for ri := 0; ri < n; ri++ {
		row := make([]string, len(t.Cols))
		for ci := range t.Cols {
			c := &t.Cols[ci]
			switch c.Field.Type {
			case colenc.TypeInt64:
				row[ci] = strconv.FormatInt(c.Int64s[ri], 10)
			case colenc.TypeFloat64:
				verb := "%.2f"
				if c.Field.Name == "power-w" {
					verb = "%.4f"
				}
				row[ci] = fmt.Sprintf(verb, c.Float64s[ri])
			default:
				return charexp.Table{}, fmt.Errorf(
					"campaign: column %q: unexpected type %v", c.Field.Name, c.Field.Type)
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
