package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/invariance"
	"repro/internal/workload"
)

// testConfig is the reduced campaign every test in this file runs: the
// default Table-2 search at 128 columns, all candidates ranked.
func testConfig(workers int) Config {
	cfg, err := (Options{Columns: 128, Top: 34, Workers: workers}).Resolve()
	if err != nil {
		panic(err)
	}
	return cfg
}

// TestInvariances runs the shared metamorphic suite over the campaign
// runner: report bytes must be identical across worker counts and cache
// modes, and every candidate's evaluation — keyed by its mix vector —
// must be unchanged. Both memo tiers (phase-1 module shards and phase-2
// candidate evaluations) share the variant's store.
func TestInvariances(t *testing.T) {
	invariance.Check(t, invariance.Subject{
		Name: "campaign",
		Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
			t.Helper()
			cfg := testConfig(v.Workers)
			if v.Store != nil {
				cfg.ModMemo = cache.NewTyped[[]workload.Result](v.Store, nil)
				cfg.Memo = cache.NewTyped[Eval](v.Store, nil)
			}
			res, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if err := WriteReport(&b, res, "text"); err != nil {
				t.Fatal(err)
			}
			units := make(map[string]string, len(res.Candidates))
			for _, c := range res.Candidates {
				key := make([]string, len(c.Counts))
				for i, n := range c.Counts {
					key[i] = string(rune('0' + n))
				}
				units[invariance.UnitKey(key...)] = invariance.Sprint(c.Eval)
			}
			return b.String(), units
		},
		Cacheable: true,
	})
}

// TestWarmCampaignSkipsCandidateShards is the cache-addressing contract:
// a second campaign over a warmed store must serve every phase-1 module
// shard and every phase-2 candidate evaluation from the memo, executing
// nothing.
func TestWarmCampaignSkipsCandidateShards(t *testing.T) {
	store := cache.New(0)
	run := func() *Result {
		cfg := testConfig(1)
		cfg.ModMemo = cache.NewTyped[[]workload.Result](store, nil)
		cfg.Memo = cache.NewTyped[Eval](store, nil)
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := run()
	if cold.Stats.ShardsCached != 0 {
		t.Fatalf("cold campaign reported %d cached shards", cold.Stats.ShardsCached)
	}
	warm := run()
	if warm.Stats.ShardsCached != warm.Stats.ShardsDone {
		t.Fatalf("warm campaign executed %d of %d shards; want all served from the memo",
			warm.Stats.ShardsDone-warm.Stats.ShardsCached, warm.Stats.ShardsDone)
	}
	if len(warm.Candidates) != len(cold.Candidates) {
		t.Fatalf("warm campaign ranked %d candidates, cold ranked %d",
			len(warm.Candidates), len(cold.Candidates))
	}
	for i := range warm.Candidates {
		if warm.Candidates[i].Eval != cold.Candidates[i].Eval {
			t.Fatalf("candidate %d drifted between cold and warm runs", i)
		}
	}
}

// TestModuleGroups pins the Table-2 die-group partition the search
// composes over.
func TestModuleGroups(t *testing.T) {
	groups := ModuleGroups(fleet.DefaultConfig())
	wantCaps := map[string]int{
		"H/M/512": 4, "H/M/640": 3, "H/A/512": 5, "M/E/1024": 4, "M/B/1024": 2,
	}
	if len(groups) != len(wantCaps) {
		t.Fatalf("got %d die groups, want %d", len(groups), len(wantCaps))
	}
	for _, g := range groups {
		if want, ok := wantCaps[g.Label]; !ok || len(g.Entries) != want {
			t.Fatalf("group %q has %d entries, want %d", g.Label, len(g.Entries), want)
		}
	}
}

// TestCompositions checks the candidate enumeration: every count vector
// sums to the total, respects its group capacity, appears once, and the
// sequence is lexicographic (the deterministic ranking tiebreaker).
func TestCompositions(t *testing.T) {
	caps := []int{4, 3, 5, 4, 2}
	mixes := compositions(caps, 3)
	if len(mixes) != 34 {
		t.Fatalf("got %d compositions of 3 over %v, want 34", len(mixes), caps)
	}
	seen := map[string]bool{}
	prev := ""
	for _, m := range mixes {
		sum := 0
		var key strings.Builder
		for i, n := range m {
			if n < 0 || n > caps[i] {
				t.Fatalf("composition %v exceeds capacity %v", m, caps)
			}
			sum += n
			key.WriteByte(byte('0' + n))
		}
		if sum != 3 {
			t.Fatalf("composition %v sums to %d, want 3", m, sum)
		}
		k := key.String()
		if seen[k] {
			t.Fatalf("composition %v enumerated twice", m)
		}
		seen[k] = true
		if k <= prev {
			t.Fatalf("enumeration not lexicographic: %q after %q", k, prev)
		}
		prev = k
	}
}

// TestCandidateKeys asserts content addressing: equal mixes hash to equal
// shard keys, distinct mixes to distinct keys.
func TestCandidateKeys(t *testing.T) {
	cfg := testConfig(1)
	groups := ModuleGroups(fleet.DefaultConfig())
	a := candidateKey(candidateEntries(groups, []int{3, 0, 0, 0, 0}),
		cfg.Params, "bitmap-scan", 5, 1)
	b := candidateKey(candidateEntries(groups, []int{3, 0, 0, 0, 0}),
		cfg.Params, "bitmap-scan", 5, 1)
	c := candidateKey(candidateEntries(groups, []int{2, 1, 0, 0, 0}),
		cfg.Params, "bitmap-scan", 5, 1)
	if a != b {
		t.Fatal("identical mixes hashed to different candidate keys")
	}
	if a == c {
		t.Fatal("distinct mixes hashed to the same candidate key")
	}
	if d := candidateKey(candidateEntries(groups, []int{3, 0, 0, 0, 0}),
		cfg.Params, "image-filter", 5, 1); d == a {
		t.Fatal("workload name not part of the candidate key")
	}
}

// TestRanking checks the report contract: ranks are 1..N, scores
// non-increasing, and equal scores keep enumeration order.
func TestRanking(t *testing.T) {
	res, err := Run(context.Background(), testConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 34 || len(res.Candidates) != 34 {
		t.Fatalf("ranked %d of %d candidates, want 34 of 34", len(res.Candidates), res.Total)
	}
	for i, c := range res.Candidates {
		if c.Rank != i+1 {
			t.Fatalf("candidate %d carries rank %d", i, c.Rank)
		}
		if len(c.Modules) != res.FleetSize {
			t.Fatalf("rank %d deploys %d modules, want %d", c.Rank, len(c.Modules), res.FleetSize)
		}
		if c.Score < 0 {
			t.Fatalf("rank %d has negative score %v", c.Rank, c.Score)
		}
		if i > 0 && c.Score > res.Candidates[i-1].Score {
			t.Fatalf("rank %d score %v exceeds rank %d score %v",
				c.Rank, c.Score, i, res.Candidates[i-1].Score)
		}
	}
}

// TestErrors exercises the validation surface of both Run and Resolve —
// every message carries the "; valid: ..." suffix the serving layer's 422
// envelope parses into valid_options.
func TestErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil ||
		!strings.Contains(err.Error(), "no target workload") {
		t.Fatalf("Run without workload: %v", err)
	}
	cfg := testConfig(1)
	cfg.FleetSize = MaxFleetSize + 1
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "valid: 1, 2, 3, 4, 5, 6") {
		t.Fatalf("oversized fleet: %v", err)
	}
	if _, err := (Options{Workload: "quantum-sort"}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), "valid: ") ||
		!strings.Contains(err.Error(), "bitmap-scan") {
		t.Fatalf("unknown workload: %v", err)
	}
	if _, err := (Options{FleetSize: -1}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), "out of range") {
		t.Fatalf("negative fleet size: %v", err)
	}
	if _, err := (Options{Top: -1}).Resolve(); err == nil ||
		!strings.Contains(err.Error(), ">= 0") {
		t.Fatalf("negative top: %v", err)
	}
	var b bytes.Buffer
	if err := WriteReport(&b, &Result{}, "yaml"); err == nil ||
		!strings.Contains(err.Error(), "valid: text, csv, columnar") {
		t.Fatalf("unknown format: %v", err)
	}
}
