// Package fleet builds the tested DRAM module population of Table 1 and
// Table 2: 18 DDR4 modules (120 chips) from SK Hynix and Micron across
// four die revisions, plus the Samsung control modules of §9 on which no
// PUD operation is observable.
package fleet

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/dram"
)

// Entry is one row of Table 2: a module's identity and reporting metadata.
type Entry struct {
	Spec             dram.Spec
	ModuleVendor     string
	ModuleIdentifier string
	ChipIdentifier   string
	MfrDate          string // week-year, "Unknown" where the paper says so
}

// Config bounds the simulated fleet.
type Config struct {
	// Columns is the simulated subarray slice width per module.
	Columns int
	// Seed feeds every module's static process variation.
	Seed uint64
}

// DefaultConfig returns the standard fleet configuration.
func DefaultConfig() Config {
	return Config{Columns: dram.DefaultColumns, Seed: 0x51a17}
}

// tableRow describes one Table 2 aggregate line.
type tableRow struct {
	vendor    string
	moduleID  string
	chipID    string
	mfrDate   string
	modules   int
	chips     int
	freq      int
	densityGb int
	dieRev    string
	profile   dram.Profile
}

// table2 is the paper's Table 2, with the SK Hynix M-die modules split
// between the 512- and 640-row subarray variants Table 1 reports.
func table2() []tableRow {
	return []tableRow{
		{
			vendor: "TimeTec", moduleID: "TLRD44G2666HC18F-SBK",
			chipID: "H5AN4G8NMFR-TFC", mfrDate: "Unknown",
			modules: 4, chips: 8, freq: 2666, densityGb: 4, dieRev: "M",
			profile: dram.ProfileH,
		},
		{
			vendor: "TimeTec", moduleID: "TLRD44G2666HC18F-SBK",
			chipID: "H5AN4G8NMFR-TFC", mfrDate: "Unknown",
			modules: 3, chips: 8, freq: 2666, densityGb: 4, dieRev: "M",
			profile: dram.ProfileH640,
		},
		{
			vendor: "TeamGroup", moduleID: "76TT21NUS1R8-4G",
			chipID: "H5AN4G8NAFR-TFC", mfrDate: "Unknown",
			modules: 5, chips: 8, freq: 2133, densityGb: 4, dieRev: "A",
			profile: dram.ProfileH,
		},
		{
			vendor: "Micron", moduleID: "MTA4ATF1G64HZ-3G2E1",
			chipID: "MT40A1G16KD-062E:E", mfrDate: "46-20",
			modules: 4, chips: 4, freq: 3200, densityGb: 16, dieRev: "E",
			profile: dram.ProfileM,
		},
		{
			vendor: "Micron", moduleID: "MTA4ATF1G64HZ-3G2B2",
			chipID: "MT40A1G16RC-062E:B", mfrDate: "26-21",
			modules: 2, chips: 4, freq: 2666, densityGb: 16, dieRev: "B",
			profile: dram.ProfileM,
		},
	}
}

// Modules returns the 18 PUD-capable modules of Table 1/2 (120 chips).
func Modules(cfg Config) []Entry {
	var out []Entry
	idx := 0
	for _, row := range table2() {
		for i := 0; i < row.modules; i++ {
			id := fmt.Sprintf("%s-%s-%d", row.profile.Name, row.dieRev, idx)
			spec := dram.NewSpec(id, row.profile, cfg.Seed+uint64(idx)*0x9e37)
			spec.Chips = row.chips
			spec.Columns = cfg.Columns
			spec.DensityGbit = row.densityGb
			spec.DieRev = row.dieRev
			spec.FreqMTps = row.freq
			out = append(out, Entry{
				Spec:             spec,
				ModuleVendor:     row.vendor,
				ModuleIdentifier: row.moduleID,
				ChipIdentifier:   row.chipID,
				MfrDate:          row.mfrDate,
			})
			idx++
		}
	}
	return out
}

// SamsungModules returns the §9 control population: 8 modules (64 chips)
// whose control circuitry guards against timing-violating APA sequences.
func SamsungModules(cfg Config) []Entry {
	out := make([]Entry, 0, 8)
	for i := 0; i < 8; i++ {
		id := fmt.Sprintf("S-ctl-%d", i)
		spec := dram.NewSpec(id, dram.ProfileS, cfg.Seed+0xabcd+uint64(i)*0x9e37)
		spec.Columns = cfg.Columns
		out = append(out, Entry{
			Spec:             spec,
			ModuleVendor:     "Samsung",
			ModuleIdentifier: "control",
			ChipIdentifier:   "control",
			MfrDate:          "Unknown",
		})
	}
	return out
}

// TotalChips sums the chip count over entries.
func TotalChips(entries []Entry) int {
	total := 0
	for _, e := range entries {
		total += e.Spec.Chips
	}
	return total
}

// ByManufacturer filters entries by the paper's manufacturer tag
// ("H" or "M").
func ByManufacturer(entries []Entry, name string) []Entry {
	var out []Entry
	for _, e := range entries {
		if e.Spec.Profile.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// Build instantiates the modules of the given entries.
func Build(entries []Entry, params analog.Params) ([]*dram.Module, error) {
	return BuildFrom(nil, entries, params)
}

// BuildFrom is Build drawing instances from a module pool (nil = fresh
// construction). On error the already-checked-out instances are returned
// to the pool; on success the caller owns every instance and is
// responsible for Put-ting them back when done.
func BuildFrom(pool dram.ModulePool, entries []Entry, params analog.Params) ([]*dram.Module, error) {
	out := make([]*dram.Module, 0, len(entries))
	for _, e := range entries {
		var m *dram.Module
		var err error
		if pool != nil {
			m, err = pool.Get(e.Spec, params)
		} else {
			m, err = dram.NewModule(e.Spec, params)
		}
		if err != nil {
			Release(pool, out)
			return nil, fmt.Errorf("fleet: module %s: %w", e.Spec.ID, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// Release returns a batch of BuildFrom instances to the pool (nil pool or
// nil slice entries are ignored).
func Release(pool dram.ModulePool, mods []*dram.Module) {
	if pool == nil {
		return
	}
	for _, m := range mods {
		if m != nil {
			pool.Put(m)
		}
	}
}

// Representative returns a small deterministic subset of the fleet — one
// module per (manufacturer, die revision) — used by experiments that
// cannot afford the full population (the paper itself restricts voltage
// experiments to two modules, footnote 9).
func Representative(cfg Config) []Entry {
	all := Modules(cfg)
	seen := make(map[string]bool)
	var out []Entry
	for _, e := range all {
		key := e.Spec.Profile.Name + "/" + e.Spec.DieRev + "/" +
			fmt.Sprint(e.Spec.Profile.Decoder.Rows)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, e)
	}
	return out
}
