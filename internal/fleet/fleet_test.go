package fleet

import (
	"testing"

	"repro/internal/analog"
)

// TestTable1Population checks the headline population numbers: 18 modules
// and 120 chips from two manufacturers.
func TestTable1Population(t *testing.T) {
	entries := Modules(DefaultConfig())
	if len(entries) != 18 {
		t.Fatalf("modules = %d, want 18", len(entries))
	}
	if chips := TotalChips(entries); chips != 120 {
		t.Fatalf("chips = %d, want 120", chips)
	}
}

// TestTable1Manufacturers checks the per-manufacturer breakdown of
// Table 1: SK Hynix 12 modules / 96 chips, Micron 6 modules / 24 chips.
func TestTable1Manufacturers(t *testing.T) {
	entries := Modules(DefaultConfig())
	h := ByManufacturer(entries, "H")
	m := ByManufacturer(entries, "M")
	if len(h) != 12 || TotalChips(h) != 96 {
		t.Fatalf("Mfr. H: %d modules, %d chips; want 12/96", len(h), TotalChips(h))
	}
	if len(m) != 6 || TotalChips(m) != 24 {
		t.Fatalf("Mfr. M: %d modules, %d chips; want 6/24", len(m), TotalChips(m))
	}
}

// TestTable1DieRevisions verifies all four die revisions are present with
// the right subarray sizes and organizations.
func TestTable1DieRevisions(t *testing.T) {
	entries := Modules(DefaultConfig())
	type key struct {
		mfr, rev string
		rows     int
	}
	counts := make(map[key]int)
	for _, e := range entries {
		counts[key{e.Spec.Profile.Name, e.Spec.DieRev, e.Spec.Profile.Decoder.Rows}]++
	}
	want := map[key]int{
		{"H", "M", 512}:  4,
		{"H", "M", 640}:  3,
		{"H", "A", 512}:  5,
		{"M", "E", 1024}: 4,
		{"M", "B", 1024}: 2,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("die group %+v: %d modules, want %d", k, counts[k], n)
		}
	}
}

func TestSamsungControlPopulation(t *testing.T) {
	entries := SamsungModules(DefaultConfig())
	if len(entries) != 8 || TotalChips(entries) != 64 {
		t.Fatalf("Samsung: %d modules / %d chips, want 8/64", len(entries), TotalChips(entries))
	}
	for _, e := range entries {
		if !e.Spec.Profile.APAGuarded {
			t.Fatal("Samsung modules must be APA-guarded")
		}
	}
}

func TestModuleSeedsDistinct(t *testing.T) {
	entries := Modules(DefaultConfig())
	seen := make(map[uint64]bool)
	for _, e := range entries {
		if seen[e.Spec.Seed] {
			t.Fatalf("duplicate module seed %x", e.Spec.Seed)
		}
		seen[e.Spec.Seed] = true
	}
}

func TestModuleIDsDistinct(t *testing.T) {
	entries := Modules(DefaultConfig())
	seen := make(map[string]bool)
	for _, e := range entries {
		if seen[e.Spec.ID] {
			t.Fatalf("duplicate module ID %s", e.Spec.ID)
		}
		seen[e.Spec.ID] = true
	}
}

func TestBuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Columns = 64
	entries := Modules(cfg)
	mods, err := Build(entries, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != len(entries) {
		t.Fatalf("built %d modules", len(mods))
	}
	for i, m := range mods {
		if m.Spec().ID != entries[i].Spec.ID {
			t.Fatal("module order mismatch")
		}
	}
}

func TestBuildRejectsBadParams(t *testing.T) {
	p := analog.DefaultParams()
	p.VDD = -1
	if _, err := Build(Modules(DefaultConfig())[:1], p); err == nil {
		t.Fatal("bad params should fail")
	}
}

func TestRepresentativeCoversDieGroups(t *testing.T) {
	reps := Representative(DefaultConfig())
	if len(reps) != 5 {
		t.Fatalf("representative set = %d entries, want 5 die groups", len(reps))
	}
	seen := make(map[string]bool)
	for _, e := range reps {
		seen[e.Spec.Profile.Name+e.Spec.DieRev] = true
	}
	for _, k := range []string{"HM", "HA", "ME", "MB"} {
		if !seen[k] {
			t.Fatalf("missing die group %s", k)
		}
	}
}

func TestDeterministicFleet(t *testing.T) {
	a := Modules(DefaultConfig())
	b := Modules(DefaultConfig())
	for i := range a {
		if a[i].Spec.ID != b[i].Spec.ID || a[i].Spec.Seed != b[i].Spec.Seed ||
			a[i].ChipIdentifier != b[i].ChipIdentifier {
			t.Fatal("fleet must be deterministic")
		}
	}
}
