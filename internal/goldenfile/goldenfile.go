// Package goldenfile is the golden-file comparison harness shared by the
// regression tests: rendered output is compared byte for byte against a
// committed file, and rewritten when the test binary runs with -update.
package goldenfile

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// Update selects rewrite mode. The flag registers once in every test
// binary whose tests import this package.
var Update = flag.Bool("update", false, "rewrite golden files")

// Check compares got against the golden file dir/name, rewriting it under
// -update. The failure message names the -update invocation that
// regenerates the file.
func Check(t *testing.T, dir, name, got string) {
	t.Helper()
	path := filepath.Join(dir, name)
	if *Update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (regenerate with go test -run Golden -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted from golden (regenerate intended changes with -update).\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}
