// Package goldenfile is the golden-file comparison harness shared by the
// regression tests: rendered output is compared byte for byte against a
// committed file, and rewritten when the test binary runs with -update.
package goldenfile

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Update selects rewrite mode. The flag registers once in every test
// binary whose tests import this package.
var Update = flag.Bool("update", false, "rewrite golden files")

// Check compares got against the golden file dir/name, rewriting it under
// -update. The failure message names the -update invocation that
// regenerates the file.
func Check(t *testing.T, dir, name, got string) {
	t.Helper()
	if err := check(*Update, dir, name, got); err != nil {
		t.Fatal(err)
	}
}

// check is the testable core of Check: in update mode it (re)writes the
// golden, otherwise it returns an error for a missing golden (naming the
// -update invocation) or a mismatch (carrying both byte streams).
func check(update bool, dir, name, got string) error {
	path := filepath.Join(dir, name)
	if update {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(got), 0o644)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("missing golden %s (regenerate with go test -run Golden -update): %w", path, err)
	}
	if got != string(want) {
		return fmt.Errorf("%s drifted from golden (regenerate intended changes with -update).\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
	return nil
}
