package goldenfile

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUpdateWritesGolden(t *testing.T) {
	// Update mode creates missing directories and writes the bytes
	// verbatim, including a trailing newline and non-ASCII content.
	dir := filepath.Join(t.TempDir(), "testdata", "nested")
	content := "line one\nμ-second line\n"
	if err := check(true, dir, "out.golden", content); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "out.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != content {
		t.Fatalf("written golden %q, want %q", b, content)
	}
	// A second update overwrites in place.
	if err := check(true, dir, "out.golden", "v2"); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(filepath.Join(dir, "out.golden")); string(b) != "v2" {
		t.Fatalf("golden not overwritten: %q", b)
	}
}

func TestMatchPasses(t *testing.T) {
	dir := t.TempDir()
	if err := check(true, dir, "ok.golden", "stable bytes"); err != nil {
		t.Fatal(err)
	}
	if err := check(false, dir, "ok.golden", "stable bytes"); err != nil {
		t.Fatalf("matching bytes must pass: %v", err)
	}
}

func TestMismatchReportsBothStreams(t *testing.T) {
	dir := t.TempDir()
	if err := check(true, dir, "drift.golden", "committed bytes"); err != nil {
		t.Fatal(err)
	}
	err := check(false, dir, "drift.golden", "freshly rendered bytes")
	if err == nil {
		t.Fatal("mismatch must fail")
	}
	msg := err.Error()
	for _, want := range []string{
		"drift.golden", "-update",
		"--- got ---", "freshly rendered bytes",
		"--- want ---", "committed bytes",
	} {
		if !strings.Contains(msg, want) {
			t.Fatalf("mismatch error %q does not mention %q", msg, want)
		}
	}
}

func TestMissingGoldenError(t *testing.T) {
	err := check(false, t.TempDir(), "never-written.golden", "anything")
	if err == nil {
		t.Fatal("missing golden must fail")
	}
	msg := err.Error()
	if !strings.Contains(msg, "missing golden") || !strings.Contains(msg, "-update") {
		t.Fatalf("missing-golden error %q must name the file and the -update recipe", msg)
	}
	if !strings.Contains(msg, "never-written.golden") {
		t.Fatalf("missing-golden error %q does not name the path", msg)
	}
}

func TestCheckPassesThrough(t *testing.T) {
	// The exported wrapper must succeed on a match without touching the
	// Update flag (left false by default in this test binary).
	dir := t.TempDir()
	if err := check(true, dir, "wrap.golden", "bytes"); err != nil {
		t.Fatal(err)
	}
	Check(t, dir, "wrap.golden", "bytes")
}
