package workload

import (
	"repro/internal/bitserial"
	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// PopCountChecksum is the analytics workload: four 16-bit data columns are
// folded in-DRAM into a per-lane checksum,
//
//	chk = (d0 + d1) ⊕ (d2 + d3)   (mod 2^16)
//
// with majority ripple adders and majority-built XOR gates, and the
// result's bit-planes are population-counted on the memory-controller
// side — the aggregate a scan-and-summarize analytics query returns. The
// output is the per-lane checksum plus one popcount per bit-plane, all of
// which must match the software reference bit for bit.
type PopCountChecksum struct{}

// checksumBits is the element width of the data columns.
const checksumBits = 16

// Name returns the registry key.
func (PopCountChecksum) Name() string { return "popcount-checksum" }

// Description summarizes the workload for tables and docs.
func (PopCountChecksum) Description() string {
	return "16-bit add/xor checksum folding + per-bit-plane population counts"
}

// Run executes the checksum fold on the computer and in software.
func (PopCountChecksum) Run(c *bitserial.Computer, seed uint64) (Outcome, error) {
	cols := c.Cols()
	src := xrand.NewSource(seed, 0xc45c)
	mask := uint64(1)<<checksumBits - 1

	data := make([][]uint64, 4)
	for k := range data {
		col := make([]uint64, cols)
		for i := range col {
			col[i] = src.Uint64() & mask
		}
		data[k] = col
	}

	vecs := make([]bitserial.Vec, 4)
	for k := range vecs {
		v, err := c.NewVec(checksumBits)
		if err != nil {
			return Outcome{}, err
		}
		defer c.FreeVec(v)
		if err := c.Store(v, data[k]); err != nil {
			return Outcome{}, err
		}
		vecs[k] = v
	}
	sum0, err := c.NewVec(checksumBits)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(sum0)
	sum1, err := c.NewVec(checksumBits)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(sum1)
	chk, err := c.NewVec(checksumBits)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(chk)

	if err := c.VecADD(sum0, vecs[0], vecs[1]); err != nil {
		return Outcome{}, err
	}
	if err := c.VecADD(sum1, vecs[2], vecs[3]); err != nil {
		return Outcome{}, err
	}
	if err := c.VecXOR(chk, sum0, sum1); err != nil {
		return Outcome{}, err
	}

	// Read the checksum bit-planes once; lanes and popcounts both come
	// from them. The popcount is restricted to reliable lanes with one
	// packed AND per plane — the memory-controller side of the query.
	reliable := bitvec.FromBools(c.ReliableMask())
	planePop := make([]uint64, checksumBits)
	got := make([]uint64, cols)
	plane := bitvec.New(cols)
	for bit := 0; bit < checksumBits; bit++ {
		v, err := c.ReadRowVecDirect(chk.Regs[bit])
		if err != nil {
			return Outcome{}, err
		}
		plane.And(v, reliable)
		planePop[bit] = uint64(plane.PopCount())
		for i := 0; i < cols; i++ {
			if v.Get(i) {
				got[i] |= 1 << uint(bit)
			}
		}
	}

	// Software reference.
	want := make([]uint64, cols)
	refPop := make([]uint64, checksumBits)
	laneMask := c.ReliableMask()
	for i := 0; i < cols; i++ {
		want[i] = ((data[0][i] + data[1][i]) ^ (data[2][i] + data[3][i])) & mask
		if i < len(laneMask) && !laneMask[i] {
			continue
		}
		for bit := 0; bit < checksumBits; bit++ {
			if want[i]>>uint(bit)&1 == 1 {
				refPop[bit]++
			}
		}
	}

	out := Outcome{InputBits: 4 * checksumBits * cols}
	for i := 0; i < cols; i++ {
		if i < len(laneMask) && !laneMask[i] {
			continue
		}
		out.Lanes++
		out.Got = append(out.Got, got[i])
		out.Want = append(out.Want, want[i])
	}
	out.Got = append(out.Got, planePop...)
	out.Want = append(out.Want, refPop...)
	return out, nil
}
