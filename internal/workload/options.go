package workload

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/colenc"
	"repro/internal/fleet"
)

// Options mirrors the cmd/simra-work CLI surface and the serving layer's
// workload-request parameters. Resolving options to a FleetConfig here —
// rather than in each front end — is what makes a served workload
// response byte-identical to the CLI's output for the same parameters.
type Options struct {
	// Workloads selects what runs: "all" (or empty) for every registered
	// workload, else a comma-separated list of names.
	Workloads string
	// Modules is the population: "representative" (default), "full",
	// "samsung" or "all".
	Modules string
	// Workers bounds the engine parallelism (0 = GOMAXPROCS). It never
	// affects result bytes.
	Workers int
	// MaxX caps the majority width (0 = default).
	MaxX int
	// Columns is the simulated subarray slice width (0 = 512).
	Columns int
	// Seed overrides the experiment seed (0 = default).
	Seed uint64
}

// Resolve validates the options and builds the fleet-run configuration.
func (o Options) Resolve() (FleetConfig, error) {
	cfg := DefaultFleetConfig()

	fleetCfg := fleet.DefaultConfig()
	fleetCfg.Columns = 512
	if o.Columns > 0 {
		fleetCfg.Columns = o.Columns
	}
	switch o.Modules {
	case "", "representative":
		cfg.Entries = fleet.Representative(fleetCfg)
	case "full":
		cfg.Entries = fleet.Modules(fleetCfg)
	case "samsung":
		cfg.Entries = fleet.SamsungModules(fleetCfg)
	case "all":
		cfg.Entries = append(fleet.Modules(fleetCfg), fleet.SamsungModules(fleetCfg)...)
	default:
		return FleetConfig{}, fmt.Errorf(
			"workload: unknown modules %q; valid: representative, full, samsung, all", o.Modules)
	}

	if o.Workloads != "all" && o.Workloads != "" {
		cfg.Workloads = cfg.Workloads[:0]
		for _, name := range strings.Split(o.Workloads, ",") {
			w, err := Get(strings.TrimSpace(name))
			if err != nil {
				return FleetConfig{}, err
			}
			cfg.Workloads = append(cfg.Workloads, w)
		}
	}
	if o.MaxX > 0 {
		cfg.MaxX = o.MaxX
	}
	if o.Seed != 0 {
		cfg.Seed = o.Seed
	}
	cfg.Engine.Workers = o.Workers
	return cfg, nil
}

// WriteReport renders fleet-run results to w: the report table in the
// given format ("text" or "csv"), plus — text only — the summary line.
// This is the byte-exact output contract of cmd/simra-work and the
// serving layer's workload responses (asserted by the golden tests and
// the CI e2e job).
func WriteReport(w io.Writer, results []Result, format string) error {
	table := Report(results)
	switch format {
	case "columnar":
		enc, err := colenc.Encode(Columnar(results), 0)
		if err != nil {
			return err
		}
		_, err = w.Write(enc)
		return err
	case "csv":
		_, err := io.WriteString(w, table.CSV())
		return err
	case "text":
		if _, err := io.WriteString(w, table.Render()); err != nil {
			return err
		}
		viable, matched := 0, 0
		for _, r := range results {
			if !r.Viable {
				continue
			}
			viable++
			if r.RefMatch() {
				matched++
			}
		}
		_, err := fmt.Fprintf(w, "\n%d results (%d viable, %d bit-exact vs software reference)\n",
			len(results), viable, matched)
		return err
	default:
		return fmt.Errorf("workload: unknown format %q; valid: text, csv, columnar", format)
	}
}
