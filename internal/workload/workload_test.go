package workload

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/analog"
	"repro/internal/bitserial"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
)

func testComputer(t *testing.T, profile dram.Profile, cols, maxX int) *bitserial.Computer {
	t.Helper()
	spec := dram.NewSpec("wl-test-"+profile.Name, profile, 0xfeed)
	spec.Columns = cols
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := bitserial.NewComputer(mod, sa, maxX)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) < 3 {
		t.Fatalf("want at least 3 built-in workloads, have %d", len(all))
	}
	seen := map[string]bool{}
	for _, w := range all {
		if w.Name() == "" || w.Description() == "" {
			t.Fatalf("workload %T missing name or description", w)
		}
		if seen[w.Name()] {
			t.Fatalf("duplicate workload name %q", w.Name())
		}
		seen[w.Name()] = true
		got, err := Get(w.Name())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != w.Name() {
			t.Fatalf("Get(%q) returned %q", w.Name(), got.Name())
		}
	}
	if _, err := Get("no-such-workload"); err == nil {
		t.Fatal("Get of unknown workload should fail")
	}
	for _, name := range []string{"bitmap-scan", "image-filter", "popcount-checksum"} {
		if !seen[name] {
			t.Fatalf("built-in workload %q missing (have %s)", name, Names())
		}
	}
}

// TestDifferentialAgainstReference is the differential satellite: at the
// nominal operating point (best timings, probed reliable lanes) every
// workload's in-DRAM output must equal its software reference bit for bit
// on every PUD-capable fleet profile.
func TestDifferentialAgainstReference(t *testing.T) {
	profiles := []dram.Profile{dram.ProfileH, dram.ProfileH640, dram.ProfileM}
	for _, p := range profiles {
		c := testComputer(t, p, 128, DefaultMaxX)
		for _, w := range All() {
			out, err := w.Run(c, 0xd1ff+nameSeed(w.Name()))
			if err != nil {
				t.Fatalf("%s/%s: %v", p.Name, w.Name(), err)
			}
			if len(out.Got) == 0 || len(out.Got) != len(out.Want) {
				t.Fatalf("%s/%s: got %d elements, want %d", p.Name, w.Name(),
					len(out.Got), len(out.Want))
			}
			if out.Lanes == 0 {
				t.Fatalf("%s/%s: no reliable lanes", p.Name, w.Name())
			}
			for i := range out.Got {
				if out.Got[i] != out.Want[i] {
					t.Fatalf("%s/%s: element %d diverged: got %#x want %#x",
						p.Name, w.Name(), i, out.Got[i], out.Want[i])
				}
			}
			if Digest(out.Got) != Digest(out.Want) {
				t.Fatalf("%s/%s: digests diverged", p.Name, w.Name())
			}
		}
	}
}

// TestSamsungGuarded covers the third fleet profile: APA-guarded modules
// must yield non-viable results (with a reason) instead of failing the run.
func TestSamsungGuarded(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	cfg := DefaultFleetConfig()
	cfg.Entries = fleet.SamsungModules(fc)[:2]
	results, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * len(All()); len(results) != want {
		t.Fatalf("want %d results, got %d", want, len(results))
	}
	for _, r := range results {
		if r.Viable {
			t.Fatalf("%s on %s: guarded module must not be viable", r.Workload, r.Module)
		}
		if r.Reason == "" {
			t.Fatalf("%s on %s: missing non-viability reason", r.Workload, r.Module)
		}
		if r.RefMatch() {
			t.Fatalf("%s on %s: non-viable result cannot match the reference", r.Workload, r.Module)
		}
	}
}

// TestFleetWorkerInvariance asserts the engine contract at the workload
// level: the full result set is bit-identical for 1 and 8 workers.
func TestFleetWorkerInvariance(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	base := DefaultFleetConfig()
	base.Entries = append(fleet.Representative(fc), fleet.SamsungModules(fc)[:1]...)

	cfg1 := base
	cfg1.Engine = engine.Config{Workers: 1}
	r1, err := RunFleet(context.Background(), cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg8 := base
	cfg8.Engine = engine.Config{Workers: 8}
	r8, err := RunFleet(context.Background(), cfg8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("results differ between 1 and 8 workers")
	}
	if Report(r1).Render() != Report(r8).Render() {
		t.Fatal("rendered reports differ between 1 and 8 workers")
	}
}

// TestWorkloadSelectionInvariance asserts that a workload's result does
// not depend on which other workloads ran on the module before it.
func TestWorkloadSelectionInvariance(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	base := DefaultFleetConfig()
	base.Entries = fleet.Representative(fc)[:1]

	all, err := RunFleet(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	solo := base
	solo.Workloads = []Workload{All()[len(All())-1]}
	one, err := RunFleet(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 {
		t.Fatalf("want 1 result, got %d", len(one))
	}
	if !reflect.DeepEqual(all[len(all)-1], one[0]) {
		t.Fatalf("result of %s changed with workload selection", one[0].Workload)
	}
}

// TestFleetCompositionInvariance asserts that a module's result does not
// depend on which sibling modules share the fleet: sub-seeds hash the
// module identity, not its fleet position.
func TestFleetCompositionInvariance(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	rep := fleet.Representative(fc)

	full := DefaultFleetConfig()
	full.Entries = rep
	full.Workloads = []Workload{BitmapScan{}}
	all, err := RunFleet(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	last := full
	last.Entries = rep[len(rep)-1:]
	solo, err := RunFleet(context.Background(), last)
	if err != nil {
		t.Fatal(err)
	}
	if len(solo) != 1 {
		t.Fatalf("want 1 result, got %d", len(solo))
	}
	if !reflect.DeepEqual(all[len(all)-1], solo[0]) {
		t.Fatalf("result of %s changed with fleet composition", solo[0].Module)
	}
}

func TestRunFleetValidation(t *testing.T) {
	cfg := DefaultFleetConfig()
	cfg.MaxX = 4
	if _, err := RunFleet(context.Background(), cfg); err == nil {
		t.Fatal("even MaxX should fail")
	}
	cfg.MaxX = 1
	if _, err := RunFleet(context.Background(), cfg); err == nil {
		t.Fatal("MaxX below 3 should fail")
	}
}

func TestResultAccounting(t *testing.T) {
	c := testComputer(t, dram.ProfileH, 128, 3)
	w := BitmapScan{}
	before := c.Counts()
	out, err := w.Run(c, 0xacc)
	if err != nil {
		t.Fatal(err)
	}
	out.Counts = countsDelta(before, c.Counts())
	r := newResult(w, "m", "H", "M", c, out)
	if !r.Viable {
		t.Fatal("result must be viable")
	}
	if r.TimeNS <= 0 || r.EnergyNJ <= 0 || r.ThroughputMbps <= 0 {
		t.Fatalf("accounting must be positive: time=%v energy=%v tput=%v",
			r.TimeNS, r.EnergyNJ, r.ThroughputMbps)
	}
	majOps := 0
	for _, n := range r.Counts.MAJ {
		majOps += n
	}
	if majOps == 0 {
		t.Fatal("bitmap scan must issue majority operations")
	}
	if r.SuccessRate() != 1 {
		t.Fatalf("success rate %v at nominal parameters", r.SuccessRate())
	}
	// Energy sanity: mW-scale draw over the modeled time implies
	// pJ-scale × count magnitudes; the total must sit between 1 pJ and
	// 1 mJ for any workload this size.
	if r.EnergyNJ < 1e-3 || r.EnergyNJ > 1e6 {
		t.Fatalf("energy %v nJ outside plausible range", r.EnergyNJ)
	}
}

func TestDigest(t *testing.T) {
	if Digest(nil) != Digest([]uint64{}) {
		t.Fatal("empty digests must agree")
	}
	a := Digest([]uint64{1, 2, 3})
	if a != Digest([]uint64{1, 2, 3}) {
		t.Fatal("digest must be deterministic")
	}
	if a == Digest([]uint64{1, 2, 4}) || a == Digest([]uint64{3, 2, 1}) {
		t.Fatal("digest must be value- and order-sensitive")
	}
}

func TestNamesListsAll(t *testing.T) {
	names := Names()
	for _, w := range All() {
		if !strings.Contains(names, w.Name()) {
			t.Fatalf("Names() %q missing %q", names, w.Name())
		}
	}
}
