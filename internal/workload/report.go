package workload

import (
	"fmt"

	"repro/internal/charexp"
)

// Report renders fleet-run results as a charexp-style table (one row per
// (module, workload) cell), printable as text or CSV by cmd/simra-work.
// Every cell is deterministic for a given configuration; the golden tests
// assert the rendering byte for byte.
func Report(results []Result) charexp.Table {
	t := charexp.Table{
		ID:    "workloads",
		Title: "end-to-end in-DRAM workloads (bit-serial MAJX execution, reliable lanes)",
		Columns: []string{
			"workload", "module", "mfr", "die", "majx", "lanes", "elems",
			"success", "match", "digest", "maj-ops", "copies", "time-us",
			"energy-uj", "tput-mbps",
		},
	}
	for _, r := range results {
		if !r.Viable {
			t.Rows = append(t.Rows, []string{
				r.Workload, r.Module, r.Profile, r.DieRev, "-", "-", "-",
				"-", "guarded", "-", "-", "-", "-", "-", "-",
			})
			continue
		}
		majOps := 0
		for _, n := range r.Counts.MAJ {
			majOps += n
		}
		match := "ok"
		if !r.RefMatch() {
			match = "DIVERGED"
		}
		t.Rows = append(t.Rows, []string{
			r.Workload,
			r.Module,
			r.Profile,
			r.DieRev,
			fmt.Sprintf("%d", r.MaxX),
			fmt.Sprintf("%d", r.Lanes),
			fmt.Sprintf("%d", r.Elements),
			fmt.Sprintf("%.2f%%", r.SuccessRate()*100),
			match,
			fmt.Sprintf("%016x", r.Digest),
			fmt.Sprintf("%d", majOps),
			fmt.Sprintf("%d", r.Counts.NOT+r.Counts.Stage),
			fmt.Sprintf("%.2f", r.TimeNS/1e3),
			fmt.Sprintf("%.3f", r.EnergyNJ/1e3),
			fmt.Sprintf("%.2f", r.ThroughputMbps),
		})
	}
	return t
}
