package workload

import (
	"repro/internal/bitserial"
	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// BitmapScan is the bitmap-index query workload: the motivating
// application of the paper's bulk bitwise case study (§8.1). Eight packed
// column bitmaps (one bit per record, one record per SIMD lane) are
// combined with a fixed multi-predicate query,
//
//	hits = (p0 ∧ p1 ∧ ¬p2) ∨ (p3 ∧ ¬p4) ∨ (p5 ∧ p6 ∧ p7)
//
// executed in-DRAM with inverted row copies (NOT) and fused wide
// majority reductions (ANDWide/ORWide). The output is one hit bit per
// record plus the query cardinality (the popcount the index returns).
type BitmapScan struct{}

// predicates is the number of column bitmaps the query touches.
const bitmapPredicates = 8

// Name returns the registry key.
func (BitmapScan) Name() string { return "bitmap-scan" }

// Description summarizes the workload for tables and docs.
func (BitmapScan) Description() string {
	return "multi-predicate bitmap-index query (AND/OR/NOT over packed column bitmaps)"
}

// Run executes the query on the computer and in software.
func (BitmapScan) Run(c *bitserial.Computer, seed uint64) (Outcome, error) {
	cols := c.Cols()
	src := xrand.NewSource(seed, 0xb17a)

	// Deterministic predicate bitmaps with varied selectivity: predicate k
	// matches with probability (k+2)/12, so products and unions exercise
	// both sparse and dense rows.
	maps := make([]bitvec.Vec, bitmapPredicates)
	for k := range maps {
		m := bitvec.New(cols)
		density := float64(k+2) / 12
		for i := 0; i < cols; i++ {
			if src.Float64() < density {
				m.Set(i, true)
			}
		}
		maps[k] = m
	}

	// Stage the bitmaps into register rows.
	regs := make([]int, bitmapPredicates)
	for k, m := range maps {
		r, err := c.AllocReg()
		if err != nil {
			return Outcome{}, err
		}
		defer c.FreeReg(r)
		regs[k] = r
		if err := c.WriteRowVecDirect(r, m); err != nil {
			return Outcome{}, err
		}
	}
	n2, err := c.AllocReg()
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeReg(n2)
	n4, err := c.AllocReg()
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeReg(n4)
	if err := c.NOT(n2, regs[2]); err != nil {
		return Outcome{}, err
	}
	if err := c.NOT(n4, regs[4]); err != nil {
		return Outcome{}, err
	}

	terms := make([]int, 3)
	for i := range terms {
		r, err := c.AllocReg()
		if err != nil {
			return Outcome{}, err
		}
		defer c.FreeReg(r)
		terms[i] = r
	}
	if err := c.ANDWide(terms[0], regs[0], regs[1], n2); err != nil {
		return Outcome{}, err
	}
	if err := c.ANDWide(terms[1], regs[3], n4); err != nil {
		return Outcome{}, err
	}
	if err := c.ANDWide(terms[2], regs[5], regs[6], regs[7]); err != nil {
		return Outcome{}, err
	}
	hits, err := c.AllocReg()
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeReg(hits)
	if err := c.ORWide(hits, terms[0], terms[1], terms[2]); err != nil {
		return Outcome{}, err
	}
	gotRow, err := c.ReadRowVecDirect(hits)
	if err != nil {
		return Outcome{}, err
	}

	// Software reference over the same bitmaps.
	ref := bitvec.New(cols)
	t0 := bitvec.New(cols)
	t1 := bitvec.New(cols)
	t0.And(maps[0], maps[1])
	t0.AndNot(t0, maps[2])
	t1.AndNot(maps[3], maps[4])
	ref.Or(t0, t1)
	t0.And(maps[5], maps[6])
	t0.And(t0, maps[7])
	ref.Or(ref, t0)

	// Per reliable record: the hit bit. The final element on both sides is
	// the query cardinality over those records — the answer a bitmap index
	// returns to the query engine.
	mask := c.ReliableMask()
	out := Outcome{InputBits: bitmapPredicates * cols}
	var gotCard, wantCard uint64
	for i := 0; i < cols; i++ {
		if i < len(mask) && !mask[i] {
			continue
		}
		out.Lanes++
		var g, w uint64
		if gotRow.Get(i) {
			g, gotCard = 1, gotCard+1
		}
		if ref.Get(i) {
			w, wantCard = 1, wantCard+1
		}
		out.Got = append(out.Got, g)
		out.Want = append(out.Want, w)
	}
	out.Got = append(out.Got, gotCard)
	out.Want = append(out.Want, wantCard)
	return out, nil
}
