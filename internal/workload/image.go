package workload

import (
	"repro/internal/bitserial"
	"repro/internal/bitvec"
	"repro/internal/xrand"
)

// ImageFilter is the bit-serial image-processing workload: an 8-bit
// grayscale image (one pixel column per SIMD lane, imageRows scanlines)
// is binarized against a fixed threshold with a borrow-chain comparison
// (pixel − T computed by a majority ripple subtractor; the sign bit is the
// comparator output), then denoised with a vertical 3-tap median filter —
// the textbook MAJ3 application: the median of three binary samples is
// their bitwise majority.
type ImageFilter struct{}

const (
	// imageRows is the number of scanlines processed per lane.
	imageRows = 8
	// imageBits is the pixel depth.
	imageBits = 8
	// imageThreshold is the binarization threshold (pixel >= T → 1).
	imageThreshold = 128
)

// Name returns the registry key.
func (ImageFilter) Name() string { return "image-filter" }

// Description summarizes the workload for tables and docs.
func (ImageFilter) Description() string {
	return "8-bit image thresholding + vertical 3-tap median filtering via MAJ3"
}

// Run executes the filter pipeline on the computer and in software.
func (ImageFilter) Run(c *bitserial.Computer, seed uint64) (Outcome, error) {
	cols := c.Cols()
	src := xrand.NewSource(seed, 0x17a9e)

	// Deterministic pixel data: smooth vertical gradient plus per-pixel
	// noise, so threshold crossings cluster the way real scanlines do.
	pixels := make([][]uint64, imageRows)
	for r := range pixels {
		row := make([]uint64, cols)
		base := 64 + 16*r
		for i := range row {
			row[i] = uint64((base + src.Intn(128)) % 256)
		}
		pixels[r] = row
	}

	// Bit-serial vectors: one headroom bit catches the subtraction borrow.
	hw := imageBits + 1
	pix, err := c.NewVec(hw)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(pix)
	thr, err := c.NewVec(hw)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(thr)
	diff, err := c.NewVec(hw)
	if err != nil {
		return Outcome{}, err
	}
	defer c.FreeVec(diff)
	thrVals := make([]uint64, cols)
	for i := range thrVals {
		thrVals[i] = imageThreshold
	}
	if err := c.Store(thr, thrVals); err != nil {
		return Outcome{}, err
	}

	bin := make([]int, imageRows)
	med := make([]int, imageRows)
	for r := range bin {
		b, err := c.AllocReg()
		if err != nil {
			return Outcome{}, err
		}
		defer c.FreeReg(b)
		bin[r] = b
		m, err := c.AllocReg()
		if err != nil {
			return Outcome{}, err
		}
		defer c.FreeReg(m)
		med[r] = m
	}

	// Threshold each scanline: bin[r] = ¬sign(pixel − T).
	for r := 0; r < imageRows; r++ {
		if err := c.Store(pix, pixels[r]); err != nil {
			return Outcome{}, err
		}
		if err := c.VecSUB(diff, pix, thr); err != nil {
			return Outcome{}, err
		}
		if err := c.NOT(bin[r], diff.Regs[imageBits]); err != nil {
			return Outcome{}, err
		}
	}

	// Vertical 3-tap median with edge clamping: med[r] = MAJ3 of the
	// binary scanline and its two vertical neighbours.
	clamp := func(r int) int {
		if r < 0 {
			return 0
		}
		if r >= imageRows {
			return imageRows - 1
		}
		return r
	}
	for r := 0; r < imageRows; r++ {
		if err := c.MAJ(med[r], bin[clamp(r-1)], bin[r], bin[clamp(r+1)]); err != nil {
			return Outcome{}, err
		}
	}

	// Read the filtered image back and pack each lane's column of output
	// bits into one element.
	gotRows := make([]bitvec.Vec, imageRows)
	for r := range gotRows {
		row, err := c.ReadRowVecDirect(med[r])
		if err != nil {
			return Outcome{}, err
		}
		gotRows[r] = row
	}

	// Software reference: same threshold and clamped median.
	refBin := make([][]bool, imageRows)
	for r := range refBin {
		row := make([]bool, cols)
		for i := range row {
			row[i] = pixels[r][i] >= imageThreshold
		}
		refBin[r] = row
	}
	refMed := func(r, i int) bool {
		a, b, d := refBin[clamp(r-1)][i], refBin[r][i], refBin[clamp(r+1)][i]
		return a && b || a && d || b && d
	}

	mask := c.ReliableMask()
	out := Outcome{InputBits: imageRows * imageBits * cols}
	for i := 0; i < cols; i++ {
		if i < len(mask) && !mask[i] {
			continue
		}
		out.Lanes++
		var g, w uint64
		for r := 0; r < imageRows; r++ {
			if gotRows[r].Get(i) {
				g |= 1 << uint(r)
			}
			if refMed(r, i) {
				w |= 1 << uint(r)
			}
		}
		out.Got = append(out.Got, g)
		out.Want = append(out.Want, w)
	}
	return out, nil
}
