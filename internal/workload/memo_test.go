package workload

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/cache"
	"repro/internal/fleet"
)

// TestMemoByteIdentity is the serving layer's guarantee at the workload
// level: a fleet run with the module-shard memo enabled returns results —
// and report bytes — identical to an unmemoized run, both on the all-miss
// first pass and on a repeat pass served entirely from the cache.
func TestMemoByteIdentity(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	base := DefaultFleetConfig()
	base.Entries = append(fleet.Representative(fc), fleet.SamsungModules(fc)[:1]...)
	base.Engine.Workers = 4

	plain, err := RunFleet(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}

	store := cache.New(0)
	cfg := base
	cfg.Memo = cache.NewTyped[[]Result](store, nil)
	cold, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, cold) {
		t.Fatal("memoized (cold) results differ from unmemoized results")
	}
	if !reflect.DeepEqual(plain, warm) {
		t.Fatal("memoized (warm) results differ from unmemoized results")
	}
	render := func(rs []Result) string {
		var b bytes.Buffer
		if err := WriteReport(&b, rs, "text"); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if render(plain) != render(warm) {
		t.Fatal("report bytes differ between cache-off and cache-hit runs")
	}
	s := store.Stats()
	if s.Entries != len(base.Entries) {
		t.Fatalf("cache holds %d entries; want one per module (%d)", s.Entries, len(base.Entries))
	}
	if s.Hits != int64(len(base.Entries)) {
		t.Fatalf("warm run hit the cache %d times; want %d", s.Hits, len(base.Entries))
	}
}

// TestMemoSharedAcrossFleetCompositions pins the identity-keying claim:
// a module's cache entry populated by a representative-fleet run is
// reused verbatim when the same module appears in a different fleet.
func TestMemoSharedAcrossFleetCompositions(t *testing.T) {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	reps := fleet.Representative(fc)

	store := cache.New(0)
	memo := cache.NewTyped[[]Result](store, nil)

	solo := DefaultFleetConfig()
	solo.Entries = reps[:1]
	solo.Memo = memo
	first, err := RunFleet(context.Background(), solo)
	if err != nil {
		t.Fatal(err)
	}

	full := DefaultFleetConfig()
	full.Entries = reps
	full.Memo = memo
	all, err := RunFleet(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if store.Stats().Hits == 0 {
		t.Fatal("module entry was not shared across fleet compositions")
	}
	perModule := len(all) / len(reps)
	if !reflect.DeepEqual(first, all[:perModule]) {
		t.Fatal("shared module's results differ between fleet compositions")
	}
}
