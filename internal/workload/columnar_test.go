package workload

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/colenc"
)

// TestColumnarMetamorphic pins the text-rows ≡ columnar-rows contract for
// fleet reports: decoding the columnar stream and re-applying the
// report's format verbs must reproduce the exact charexp table the
// text/CSV paths print — including the guarded rows' "-" sentinels.
func TestColumnarMetamorphic(t *testing.T) {
	results, err := RunFleet(context.Background(), goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, results, "columnar"); err != nil {
		t.Fatal(err)
	}
	dec, err := colenc.Decode([]byte(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ColumnarStrings(dec)
	if err != nil {
		t.Fatal(err)
	}
	want := Report(results)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("columnar rows diverged from text rows:\n got %+v\nwant %+v", got, want)
	}
	// Meta carries the identity and the text footer's counts.
	if dec.MetaValue("id") != "workloads" || dec.MetaValue("results") == "" ||
		dec.MetaValue("viable") == "" || dec.MetaValue("matched") == "" {
		t.Fatalf("meta incomplete: %v", dec.Meta)
	}
	// Digests stay zero-padded strings — integer inference would corrupt
	// them.
	dg := dec.Col("digest")
	if dg == nil || dg.Field.Type != colenc.TypeString {
		t.Fatal("digest column must be a string column")
	}
	// Guarded (non-viable) rows are null across the numeric columns.
	for i, r := range results {
		if r.Viable {
			continue
		}
		if dec.Col("majx").Valid[i] || dec.Col("success").Valid[i] {
			t.Fatalf("row %d: guarded result must be null in numeric columns", i)
		}
	}
}
