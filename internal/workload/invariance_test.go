package workload

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/invariance"
)

// TestInvariances runs the shared metamorphic suite over the fleet-wide
// workload runner: report bytes must be identical across worker counts
// and cache modes, and every (module, workload) cell — keyed by module
// identity, not fleet position — must be unchanged under fleet
// permutation and composition changes (the sub-seed and memo-key scheme
// of DESIGN.md §8/§9). This replaces the former per-package memo tests.
func TestInvariances(t *testing.T) {
	invariance.Check(t, invariance.Subject{
		Name: "workload/fleet",
		Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
			t.Helper()
			fc := fleet.DefaultConfig()
			fc.Columns = 128
			cfg := DefaultFleetConfig()
			cfg.Entries = append(fleet.Representative(fc), fleet.SamsungModules(fc)[:1]...)
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]Result](v.Store, nil)
			}
			if v.Permute {
				for i, j := 0, len(cfg.Entries)-1; i < j; i, j = i+1, j-1 {
					cfg.Entries[i], cfg.Entries[j] = cfg.Entries[j], cfg.Entries[i]
				}
			}
			if v.Subset {
				cfg.Entries = cfg.Entries[:1]
			}
			results, err := RunFleet(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if err := WriteReport(&b, results, "text"); err != nil {
				t.Fatal(err)
			}
			units := make(map[string]string, len(results))
			for _, r := range results {
				units[invariance.UnitKey(r.Module, r.Workload)] = invariance.Sprint(r)
			}
			return b.String(), units
		},
		Cacheable:   true,
		Permutable:  true, // report row order follows the fleet; cells must not
		Subsettable: true,
	})
}
