package workload

import (
	"fmt"
	"strconv"

	"repro/internal/charexp"
	"repro/internal/colenc"
)

// Columnar builds the typed columnar table for a fleet report: the same
// rows, in the same fleet × workload merge order, as Report() — but with
// raw values (success rate in [0, 1], time in µs, energy in µJ) instead
// of rendered cells. Non-viable (guarded) rows carry nulls in every
// numeric column and "guarded" in the match column, mirroring the text
// report's "-" sentinels.
func Columnar(results []Result) *colenc.Table {
	tab := Report(results)
	viable, matched := 0, 0
	for _, r := range results {
		if !r.Viable {
			continue
		}
		viable++
		if r.RefMatch() {
			matched++
		}
	}
	t := &colenc.Table{
		Name: tab.ID,
		Meta: [][2]string{
			{"id", tab.ID}, {"title", tab.Title},
			{"results", strconv.Itoa(len(results))},
			{"viable", strconv.Itoa(viable)},
			{"matched", strconv.Itoa(matched)},
		},
	}
	mk := func(name string, typ colenc.Type, nullable bool) colenc.Column {
		return colenc.Column{Field: colenc.Field{Name: name, Type: typ, Nullable: nullable}}
	}
	cols := []colenc.Column{
		mk("workload", colenc.TypeString, false),
		mk("module", colenc.TypeString, false),
		mk("mfr", colenc.TypeString, false),
		mk("die", colenc.TypeString, false),
		mk("majx", colenc.TypeInt64, true),
		mk("lanes", colenc.TypeInt64, true),
		mk("elems", colenc.TypeInt64, true),
		mk("success", colenc.TypeFloat64, true),
		mk("match", colenc.TypeString, false),
		mk("digest", colenc.TypeString, true),
		mk("maj-ops", colenc.TypeInt64, true),
		mk("copies", colenc.TypeInt64, true),
		mk("time-us", colenc.TypeFloat64, true),
		mk("energy-uj", colenc.TypeFloat64, true),
		mk("tput-mbps", colenc.TypeFloat64, true),
	}
	for _, r := range results {
		cols[0].Strings = append(cols[0].Strings, r.Workload)
		cols[1].Strings = append(cols[1].Strings, r.Module)
		cols[2].Strings = append(cols[2].Strings, r.Profile)
		cols[3].Strings = append(cols[3].Strings, r.DieRev)
		v := r.Viable
		majOps := 0
		for _, n := range r.Counts.MAJ {
			majOps += n
		}
		match := "guarded"
		if v {
			match = "ok"
			if !r.RefMatch() {
				match = "DIVERGED"
			}
		}
		cols[4].Int64s = append(cols[4].Int64s, int64(r.MaxX))
		cols[5].Int64s = append(cols[5].Int64s, int64(r.Lanes))
		cols[6].Int64s = append(cols[6].Int64s, int64(r.Elements))
		cols[7].Float64s = append(cols[7].Float64s, r.SuccessRate())
		cols[8].Strings = append(cols[8].Strings, match)
		cols[9].Strings = append(cols[9].Strings, fmt.Sprintf("%016x", r.Digest))
		cols[10].Int64s = append(cols[10].Int64s, int64(majOps))
		cols[11].Int64s = append(cols[11].Int64s, int64(r.Counts.NOT+r.Counts.Stage))
		cols[12].Float64s = append(cols[12].Float64s, r.TimeNS/1e3)
		cols[13].Float64s = append(cols[13].Float64s, r.EnergyNJ/1e3)
		cols[14].Float64s = append(cols[14].Float64s, r.ThroughputMbps)
		for i := range cols {
			if cols[i].Field.Nullable {
				cols[i].Valid = append(cols[i].Valid, v)
			}
		}
	}
	t.Cols = cols
	return t
}

// ColumnarStrings is the reverse formatter: it re-renders a workload
// columnar table into the exact charexp.Table the text/CSV paths print,
// re-applying the report's format verbs ("%.2f%%" success, "%.2f" µs,
// "%.3f" µJ, "%.2f" Mbps, "-" null sentinels). It is the metamorphic
// bridge the invariance suite uses to assert text-rows ≡ columnar-rows.
func ColumnarStrings(t *colenc.Table) (charexp.Table, error) {
	out := charexp.Table{
		ID:      t.MetaValue("id"),
		Title:   t.MetaValue("title"),
		Columns: make([]string, len(t.Cols)),
	}
	for i := range t.Cols {
		out.Columns[i] = t.Cols[i].Field.Name
	}
	n := t.NumRows()
	for ri := 0; ri < n; ri++ {
		row := make([]string, len(t.Cols))
		for ci := range t.Cols {
			c := &t.Cols[ci]
			if c.Field.Nullable && len(c.Valid) > ri && !c.Valid[ri] {
				row[ci] = colenc.NullCell
				continue
			}
			switch c.Field.Name {
			case "success":
				row[ci] = fmt.Sprintf("%.2f%%", c.Float64s[ri]*100)
			case "time-us", "tput-mbps":
				row[ci] = fmt.Sprintf("%.2f", c.Float64s[ri])
			case "energy-uj":
				row[ci] = fmt.Sprintf("%.3f", c.Float64s[ri])
			default:
				switch c.Field.Type {
				case colenc.TypeInt64:
					row[ci] = strconv.FormatInt(c.Int64s[ri], 10)
				case colenc.TypeString:
					row[ci] = c.Strings[ri]
				default:
					return charexp.Table{}, fmt.Errorf(
						"workload: column %q: unexpected type %v", c.Field.Name, c.Field.Type)
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
