package workload

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/analog"
	"repro/internal/bitserial"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/xrand"
)

// DefaultSeed feeds workload input generation when FleetConfig.Seed is 0.
const DefaultSeed = 0x307cad

// DefaultMaxX is the default majority-width cap. MAJ5 keeps the fused
// full-adder constructions available everywhere (both H and M profiles
// support it) while avoiding the reliability cliff of MAJ7/9 (Obs. 8).
const DefaultMaxX = 5

// FleetConfig scopes a fleet-wide workload run. Zero-value fields take the
// defaults documented per field.
type FleetConfig struct {
	// Entries is the module population (default: fleet.Representative over
	// 512-column subarray slices; use fleet.Modules for the full Table-2
	// run).
	Entries []fleet.Entry
	// Params is the electrical model (default: analog.DefaultParams).
	Params analog.Params
	// Workloads selects what runs on each module (default: All()).
	Workloads []Workload
	// MaxX bounds the majority width (default: DefaultMaxX; profiles may
	// bound it further).
	MaxX int
	// Seed is the root experiment seed (default: DefaultSeed). Per-module
	// sub-seeds hash the module's spec ID (not its fleet position),
	// per-workload streams additionally the workload name — so a result
	// is invariant to the worker count, to fleet composition (the same
	// module reports the same digest under -modules representative and
	// full), and to which other workloads were selected.
	Seed uint64
	// Engine bounds the shard parallelism; the zero value uses GOMAXPROCS
	// workers. Results are bit-identical for every worker count.
	Engine engine.Config
	// Memo optionally memoizes per-module workload shards across runs
	// (internal/cache.NewTyped over a shared cache satisfies it; see
	// DESIGN.md §9). Keys capture the module's identity — not its fleet
	// position — plus the electrical model, workload selection, MaxX and
	// seed, matching the sub-seed scheme: a cached result is bit-identical
	// to a recomputed one under any fleet composition. nil disables
	// memoization.
	Memo engine.Memo[[]Result]
	// Dispatch, when non-nil, routes per-module shard execution through a
	// worker fleet (internal/cluster's Coordinator satisfies it) instead
	// of running shard bodies in-process. Shards travel as serialized
	// ShardSpec values keyed by the same `workload/module-shard/v1`
	// content hashes Memo uses, so a dispatched run is bit-identical to a
	// local one. nil executes every shard in-process.
	Dispatch engine.Dispatcher
	// Stats, when non-nil, accumulates engine progress counters in an
	// externally observable place — the job tier polls it for live
	// per-module progress. Never affects result bytes.
	Stats *engine.Stats
	// Pool, when non-nil, supplies the module instances shard work runs on
	// (the job executor's warmpool). Pooled instances are reset before
	// reuse, so results are bit-identical to freshly built modules.
	Pool dram.ModulePool
}

// DefaultFleetConfig returns the standard reduced-scale configuration: the
// representative fleet (one module per die group) on 512-column slices.
func DefaultFleetConfig() FleetConfig {
	fc := fleet.DefaultConfig()
	fc.Columns = 512
	return FleetConfig{
		Entries:   fleet.Representative(fc),
		Params:    analog.DefaultParams(),
		Workloads: All(),
		MaxX:      DefaultMaxX,
		Seed:      DefaultSeed,
	}
}

// withDefaults resolves zero-value fields.
func (cfg FleetConfig) withDefaults() FleetConfig {
	def := DefaultFleetConfig()
	if len(cfg.Entries) == 0 {
		cfg.Entries = def.Entries
	}
	if cfg.Params == (analog.Params{}) {
		cfg.Params = def.Params
	}
	if len(cfg.Workloads) == 0 {
		cfg.Workloads = def.Workloads
	}
	if cfg.MaxX == 0 {
		cfg.MaxX = def.MaxX
	}
	if cfg.Seed == 0 {
		cfg.Seed = def.Seed
	}
	return cfg
}

// shardKey hashes everything one module's workload results depend on: the
// module's identity and electrical model (the shared dram.Spec.HashModule
// block), the selected workloads in execution order, the majority-width
// cap and the root seed. Like the sub-seed scheme, the key hashes the
// module's identity rather than its fleet position, and excludes the
// worker count (results are worker-invariant), so cache entries are
// shared across fleet selections.
func shardKey(e fleet.Entry, cfg FleetConfig) engine.ShardKey {
	h := e.Spec.HashModule(cache.NewHasher().Str("workload/module-shard/v1"), cfg.Params).
		Int(cfg.MaxX).U64(cfg.Seed)
	for _, w := range cfg.Workloads {
		h.Str(w.Name())
	}
	return h.Sum()
}

// nameSeed hashes an identity string (workload name, module ID) into a
// seed coordinate (FNV-1a).
func nameSeed(name string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	return h
}

// RunFleet executes every configured workload on every module of the
// fleet. Modules are independent engine shards on the worker pool; within
// a shard, workloads execute in registry order, each on a freshly probed
// compute group. The shard sub-seed hashes the module's identity rather
// than its fleet index, so a result depends only on (module spec, root
// seed, workload) — not on worker count, sibling modules, or which other
// workloads were selected. Results are returned in (fleet order ×
// workload order).
func RunFleet(ctx context.Context, cfg FleetConfig) ([]Result, error) {
	cfg = cfg.withDefaults()
	if cfg.MaxX < 3 || cfg.MaxX%2 == 0 {
		return nil, fmt.Errorf("workload: MaxX %d must be odd and >= 3", cfg.MaxX)
	}
	tasks := make([]engine.Task[[]Result], len(cfg.Entries))
	keys := make([]engine.ShardKey, len(cfg.Entries))
	names := make([]string, len(cfg.Workloads))
	for i, w := range cfg.Workloads {
		names[i] = w.Name()
	}
	for mi, e := range cfg.Entries {
		seed := xrand.Hash(cfg.Seed, nameSeed(e.Spec.ID))
		e := e
		if cfg.Memo != nil || cfg.Dispatch != nil {
			keys[mi] = shardKey(e, cfg)
		}
		if d := cfg.Dispatch; d != nil {
			key := keys[mi]
			spec := ShardSpec{Entry: e, Params: cfg.Params, Workloads: names, MaxX: cfg.MaxX, Seed: cfg.Seed}
			tasks[mi] = func(ctx context.Context) ([]Result, error) {
				b, err := d.ExecShard(ctx, key, "workload", spec)
				if err != nil {
					return nil, fmt.Errorf("workload: module %s: %w", e.Spec.ID, err)
				}
				var out []Result
				if err := json.Unmarshal(b, &out); err != nil {
					return nil, fmt.Errorf("workload: module %s: decode shard: %w", e.Spec.ID, err)
				}
				return out, nil
			}
			continue
		}
		tasks[mi] = func(context.Context) ([]Result, error) {
			return runModule(e, cfg, seed)
		}
	}
	perModule, err := engine.RunKeyed(ctx, cfg.Engine, cfg.Stats, cfg.Memo, keys, tasks)
	if err != nil {
		return nil, err
	}
	var out []Result
	for _, rs := range perModule {
		out = append(out, rs...)
	}
	return out, nil
}

// runModule executes the configured workloads on one module (the compute
// subarray is bank 0, subarray 0). shardSeed is the module's
// identity-keyed sub-seed.
func runModule(e fleet.Entry, cfg FleetConfig, shardSeed uint64) ([]Result, error) {
	profile := e.Spec.Profile
	if profile.APAGuarded || profile.MaxMAJ < 3 {
		reason := "profile supports no usable majority width"
		if profile.APAGuarded {
			reason = "control circuitry guards against timing-violating APA (§9)"
		}
		out := make([]Result, 0, len(cfg.Workloads))
		for _, w := range cfg.Workloads {
			out = append(out, Result{
				Workload: w.Name(),
				Module:   e.Spec.ID,
				Profile:  profile.Name,
				DieRev:   e.Spec.DieRev,
				Viable:   false,
				Reason:   reason,
			})
		}
		return out, nil
	}
	mod, release, err := dram.PoolModule(cfg.Pool, e.Spec, cfg.Params)
	if err != nil {
		return nil, fmt.Errorf("workload: module %s: %w", e.Spec.ID, err)
	}
	defer release()
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		return nil, fmt.Errorf("workload: module %s: %w", e.Spec.ID, err)
	}
	out := make([]Result, 0, len(cfg.Workloads))
	for _, w := range cfg.Workloads {
		// A fresh computer per workload: the probe re-selects the compute
		// group deterministically, so each result is independent of which
		// other workloads ran before it.
		c, err := bitserial.NewComputer(mod, sa, cfg.MaxX)
		if err != nil {
			return nil, fmt.Errorf("workload: module %s: %w", e.Spec.ID, err)
		}
		before := c.Counts()
		res, err := w.Run(c, xrand.Hash(shardSeed, nameSeed(w.Name())))
		if err != nil {
			return nil, fmt.Errorf("workload: module %s: %s: %w", e.Spec.ID, w.Name(), err)
		}
		res.Counts = countsDelta(before, c.Counts())
		out = append(out, newResult(w, e.Spec.ID, profile.Name, e.Spec.DieRev, c, res))
	}
	return out, nil
}

// countsDelta subtracts two op-count snapshots.
func countsDelta(before, after bitserial.OpCounts) bitserial.OpCounts {
	d := bitserial.OpCounts{
		NOT:   after.NOT - before.NOT,
		Stage: after.Stage - before.Stage,
		MAJ:   make(map[int]int),
	}
	for x, n := range after.MAJ {
		if delta := n - before.MAJ[x]; delta > 0 {
			d.MAJ[x] = delta
		}
	}
	return d
}
