package workload

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/goldenfile"
)

// goldenConfig is the fixed fleet configuration behind the committed
// golden: representative fleet plus one Samsung control on 128-column
// slices. Changing anything here (or any layer under it — kernels, analog
// model, probe, seeds) legitimately regenerates the golden via -update.
func goldenConfig() FleetConfig {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	cfg := DefaultFleetConfig()
	cfg.Entries = append(fleet.Representative(fc), fleet.SamsungModules(fc)[:1]...)
	return cfg
}

// TestGoldenFleetReport pins the full rendered fleet report — every
// workload row, digest, and accounting column — and asserts it is
// byte-identical for 1 and 8 workers before comparing against the golden.
// This is the regression anchor for the whole stack: a change anywhere in
// the kernels, electrical model, probe or seeds shows up here first.
func TestGoldenFleetReport(t *testing.T) {
	render := func(workers int) string {
		cfg := goldenConfig()
		cfg.Engine = engine.Config{Workers: workers}
		results, err := RunFleet(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return Report(results).Render()
	}
	r1 := render(1)
	r8 := render(8)
	if r1 != r8 {
		t.Fatal("rendered report differs between 1 and 8 workers")
	}
	goldenfile.Check(t, "testdata", "fleet_report.golden", r1)
}

// TestGoldenPerWorkload pins each workload's output digest individually on
// one H module, so a drift report names the workload that moved.
func TestGoldenPerWorkload(t *testing.T) {
	cfg := goldenConfig()
	cfg.Entries = cfg.Entries[:1]
	results, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		r := r
		t.Run(r.Workload, func(t *testing.T) {
			row := Report([]Result{r}).CSV()
			goldenfile.Check(t, "testdata", r.Workload+".golden", row)
		})
	}
}
