package workload

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/xrand"
)

// ShardSpec is the serializable form of one per-module workload shard:
// the wire format of the cluster fan-out for the workload family.
// Workloads travel by registry name (the code is identical on every
// node); everything else is exported plain data, so the JSON round trip
// is exact.
type ShardSpec struct {
	// Entry is the fleet entry this shard runs on.
	Entry fleet.Entry
	// Params is the electrical model.
	Params analog.Params
	// Workloads names the selected workloads in execution order.
	Workloads []string
	// MaxX and Seed are the resolved run parameters (post-defaults).
	MaxX int
	Seed uint64
}

// Exec recomputes the shard exactly as RunFleet's in-process task body
// does: resolve the named workloads against the registry, derive the
// module's identity-keyed sub-seed, and run the module. The sub-seed
// hashes the module's spec ID — not its fleet position — so the result
// is bit-identical no matter which worker (or fleet composition)
// computes it.
func (s ShardSpec) Exec(pool dram.ModulePool) ([]Result, error) {
	ws := make([]Workload, 0, len(s.Workloads))
	for _, name := range s.Workloads {
		w, err := Get(name)
		if err != nil {
			return nil, fmt.Errorf("workload: shard: %w", err)
		}
		ws = append(ws, w)
	}
	cfg := FleetConfig{Params: s.Params, Workloads: ws, MaxX: s.MaxX, Seed: s.Seed, Pool: pool}
	return runModule(s.Entry, cfg, xrand.Hash(s.Seed, nameSeed(s.Entry.Spec.ID)))
}
