package workload

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/fleet"
	"repro/internal/xrand"
)

// testWorkloadSpec builds a shard spec over one representative module.
func testWorkloadSpec() ShardSpec {
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	cfg := DefaultFleetConfig()
	return ShardSpec{
		Entry:     fleet.Representative(fc)[0],
		Params:    cfg.Params,
		Workloads: []string{All()[0].Name()},
		MaxX:      cfg.MaxX,
		Seed:      cfg.Seed,
	}
}

// TestWorkloadShardSpecExecMatchesDirect: Exec must reproduce runModule's
// results exactly, including the identity-keyed sub-seed derivation.
func TestWorkloadShardSpecExecMatchesDirect(t *testing.T) {
	s := testWorkloadSpec()
	got, err := s.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFleetConfig()
	cfg.Entries = []fleet.Entry{s.Entry}
	cfg.Workloads = All()[:1]
	want, err := runModule(s.Entry, cfg, xrand.Hash(cfg.Seed, nameSeed(s.Entry.Spec.ID)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shard spec exec diverged from direct run\n got: %+v\nwant: %+v", got, want)
	}
	// And from the full RunFleet path over the same single-module fleet.
	fleetResults, err := RunFleet(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, fleetResults) {
		t.Fatal("shard spec exec diverged from RunFleet")
	}
}

// TestWorkloadShardSpecJSONRoundTrip: the wire codec is exact — digests
// (uint64), floats and counts survive serialization bit for bit.
func TestWorkloadShardSpecJSONRoundTrip(t *testing.T) {
	s := testWorkloadSpec()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("spec round trip drifted\n got: %+v\nwant: %+v", back, s)
	}
	want, err := s.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var decoded []Result
	if err := json.Unmarshal(wb, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatal("result JSON round trip drifted")
	}
	if len(want) == 0 || want[0].Digest == 0 {
		t.Fatalf("result %+v carries no digest; round-trip assertion is vacuous", want)
	}
	if _, err := (ShardSpec{Entry: s.Entry, Workloads: []string{"martian"}, MaxX: 3, Seed: 1}).Exec(nil); err == nil {
		t.Fatal("unknown workload name should fail")
	}
}

// TestWorkloadShardSpecBadName pins the error surface for unresolvable
// workload names.
func TestWorkloadShardSpecBadName(t *testing.T) {
	s := testWorkloadSpec()
	s.Workloads = []string{"no-such-workload"}
	if _, err := s.Exec(nil); err == nil {
		t.Fatal("unresolvable workload name should fail Exec")
	}
}
