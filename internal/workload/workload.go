// Package workload composes the paper's in-DRAM computation primitives
// (§8.1 majority-based bit-serial logic on simultaneous many-row
// activation) into end-to-end application workloads, and runs them across
// the Table-2 module fleet on the parallel execution engine.
//
// A Workload is one application: it derives its input data
// deterministically from a seed, executes in-DRAM on a bitserial.Computer
// (real MAJX operations on the simulated device), computes the same answer
// with a pure-software reference, and reports both restricted to the
// computer's reliable SIMD lanes. The surrounding harness turns the raw
// Outcome into a Result with success-rate, modeled execution-time, energy
// and throughput accounting (internal/power + bitserial costs), and
// RunFleet executes every workload on every fleet module through
// internal/engine shards with stable sub-seeds — results are bit-identical
// for any worker count.
//
// See DESIGN.md §8 for the architecture and how to add a workload.
package workload

import (
	"fmt"

	"repro/internal/bender"
	"repro/internal/bitserial"
	"repro/internal/power"
)

// Workload is one end-to-end in-DRAM application.
type Workload interface {
	// Name is the stable registry key (used by the -workload CLI flag and
	// in reports).
	Name() string
	// Description is a one-line summary for tables and docs.
	Description() string
	// Run executes the workload on the computer. All input data must be
	// derived deterministically from seed, so the same (module, seed) pair
	// always produces the same Outcome regardless of scheduling.
	Run(c *bitserial.Computer, seed uint64) (Outcome, error)
}

// Outcome is the raw result of one workload execution on one module: the
// per-element in-DRAM and software-reference outputs, index-aligned and
// restricted to the computer's reliable lanes (unreliable columns carry no
// contract and are excluded from both sides).
type Outcome struct {
	// Got and Want are the in-DRAM and reference outputs. Element i of
	// both describes the same unit of work; at 100%-success operating
	// points they match bit for bit.
	Got, Want []uint64
	// Lanes is the number of reliable SIMD lanes the run used.
	Lanes int
	// InputBits is the number of input payload bits the workload
	// processed (sizes the throughput metric).
	InputBits int
	// Counts tallies the in-DRAM operations the run issued. Workload
	// implementations leave it zero; the harness fills it with the
	// computer's count delta around Run.
	Counts bitserial.OpCounts
}

// builtin lists the registered workloads in their stable execution order.
// Add new workloads here (and a golden file, see DESIGN.md §8).
var builtin = []Workload{
	BitmapScan{},
	ImageFilter{},
	PopCountChecksum{},
}

// All returns the registered workloads in stable order.
func All() []Workload {
	return append([]Workload(nil), builtin...)
}

// Get returns the workload registered under name.
func Get(name string) (Workload, error) {
	for _, w := range builtin {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q (have %s)", name, Names())
}

// Names returns the registered workload names, comma-separated.
func Names() string {
	s := ""
	for i, w := range builtin {
		if i > 0 {
			s += ", "
		}
		s += w.Name()
	}
	return s
}

// FNV-1a parameters shared by Digest and nameSeed.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// Digest folds values into a 64-bit FNV-1a digest: the compact
// bit-exactness fingerprint reported by tables and asserted by the golden
// tests.
func Digest(values []uint64) uint64 {
	h := uint64(fnvOffset)
	for _, v := range values {
		for b := 0; b < 8; b++ {
			h ^= v >> uint(8*b) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// costModels bundles the latency and power models the accounting uses.
type costModels struct {
	lat bender.LatencyModel
	pow power.Model
}

// defaultCostModels returns the calibrated DDR4 models.
func defaultCostModels() costModels {
	return costModels{lat: bender.NewLatencyModel(), pow: power.Default()}
}

// price converts issued operation counts into modeled execution time (ns)
// and energy (nJ) for a computer using an n-row activation group. Each
// MAJX pays its setup (RowClone placement, Multi-RowCopy replication, Frac
// or solid-fill neutralization) at standard ACT+PRE power and the APA
// itself at the n-row SiMRA draw (Fig. 5); NOTs and staging copies each
// pay one RowClone at ACT+PRE power.
func (m costModels) price(counts bitserial.OpCounts, n int, fracOK bool) (ns, nj float64) {
	simraMW, err := m.pow.SiMRA(n)
	if err != nil {
		// Group sizes outside the decoder's reach fall back to the
		// standard activation draw.
		simraMW = m.pow.ActPreMW
	}
	// mW × ns = pJ; ×1e-3 → nJ.
	for x, ops := range counts.MAJ {
		setup := m.lat.MAJSetup(x, n, fracOK)
		apa := m.lat.MAJ()
		ns += float64(ops) * (setup + apa)
		nj += float64(ops) * (setup*m.pow.ActPreMW + apa*simraMW) * 1e-3
	}
	clone := m.lat.RowClone()
	copies := float64(counts.NOT + counts.Stage)
	ns += copies * clone
	nj += copies * clone * m.pow.ActPreMW * 1e-3
	return ns, nj
}

// Result is one (module, workload) cell of a fleet run.
type Result struct {
	// Workload and module identity.
	Workload string
	Module   string
	Profile  string
	DieRev   string

	// Viable is false on modules that cannot execute PUD workloads
	// (APA-guarded chips, profiles without MAJ support); Reason says why.
	Viable bool
	Reason string

	// MaxX is the widest majority operation the compute group supports.
	MaxX int
	// Lanes is the number of reliable SIMD lanes used.
	Lanes int
	// Elements and Correct count output elements and how many match the
	// software reference.
	Elements int
	Correct  int
	// Digest and RefDigest fingerprint the in-DRAM and reference outputs.
	Digest    uint64
	RefDigest uint64

	// Modeled execution time, energy and input throughput.
	TimeNS         float64
	EnergyNJ       float64
	ThroughputMbps float64

	// Counts tallies the issued in-DRAM operations.
	Counts bitserial.OpCounts
}

// SuccessRate is the fraction of output elements matching the reference.
func (r Result) SuccessRate() float64 {
	if r.Elements == 0 {
		return 0
	}
	return float64(r.Correct) / float64(r.Elements)
}

// RefMatch reports whether the in-DRAM output equals the software
// reference bit for bit.
func (r Result) RefMatch() bool { return r.Viable && r.Digest == r.RefDigest }

// newResult scores an outcome into a result with full accounting.
func newResult(w Workload, module, profile, dieRev string, c *bitserial.Computer, out Outcome) Result {
	r := Result{
		Workload:  w.Name(),
		Module:    module,
		Profile:   profile,
		DieRev:    dieRev,
		Viable:    true,
		MaxX:      c.MaxX(),
		Lanes:     out.Lanes,
		Elements:  len(out.Got),
		Digest:    Digest(out.Got),
		RefDigest: Digest(out.Want),
		Counts:    out.Counts,
	}
	for i := range out.Got {
		if out.Got[i] == out.Want[i] {
			r.Correct++
		}
	}
	models := defaultCostModels()
	fracOK := c.Module().Spec().Profile.FracSupported
	r.TimeNS, r.EnergyNJ = models.price(out.Counts, c.Group().N(), fracOK)
	if r.TimeNS > 0 {
		// bits / ns = Gbit/s; ×1000 → Mbit/s.
		r.ThroughputMbps = float64(out.InputBits) / r.TimeNS * 1000
	}
	return r
}
