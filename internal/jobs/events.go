package jobs

import (
	"encoding/json"
	"fmt"
	"sync"
)

// Event is one entry of a job's progress stream. IDs are assigned
// sequentially from 1 when the event is appended, so a reconnecting
// subscriber can resume from its Last-Event-ID without missing a tick.
type Event struct {
	// ID is the event's position in the job's stream (1-based).
	ID int64
	// Type is the SSE event name: "state", "progress", "result" or "done".
	Type string
	// Data is the event payload, pre-marshaled JSON.
	Data string
}

// eventLog is an append-only per-job event history with change
// notification: subscribers poll since with their cursor and park on the
// returned channel until the next append. The full history is retained
// for Last-Event-ID replay — progress events are coalesced by the
// monitor's poll interval and the job store's TTL bounds a log's
// lifetime, so the log stays small.
type eventLog struct {
	mu      sync.Mutex
	events  []Event
	changed chan struct{}
	closed  bool
}

func newEventLog() *eventLog {
	return &eventLog{changed: make(chan struct{})}
}

// append marshals data and appends it as the next event. Appends after
// close are dropped (the stream has already announced its end).
func (l *eventLog) append(typ string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		// Event payloads are plain structs; a marshal failure is a
		// programming error, reported in-band so the stream stays ordered.
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, Event{
		ID:   int64(len(l.events) + 1),
		Type: typ,
		Data: string(payload),
	})
	close(l.changed)
	l.changed = make(chan struct{})
}

// close ends the stream: subscribers drain the remaining events and
// return instead of parking.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.changed)
	l.changed = make(chan struct{})
}

// since returns every event with ID > after, a channel closed on the next
// append or close, and whether the stream has ended. A subscriber loop
// alternates since and a select on the channel (or its own context).
func (l *eventLog) since(after int64) (evs []Event, changed <-chan struct{}, closed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after < int64(len(l.events)) {
		evs = append(evs, l.events[after:]...)
	}
	return evs, l.changed, l.closed
}
