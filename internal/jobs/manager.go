// Package jobs is the asynchronous execution tier: expensive operations
// (sweeps, workloads, TRNG draws, scenario grids, envelope searches)
// become submittable, observable, cancelable jobs. A job's identity is
// content-addressed — derived from the same canonical request key the
// blocking routes and the response cache use — so resubmitting identical
// work dedupes onto the live job, and submitting work whose result is
// already cached completes instantly without executing. Execution runs on
// a bounded worker pool backed by a warmpool of reusable module
// instances; progress streams over an append-only per-job event log (the
// SSE feed), and completion can fire a signed webhook. See DESIGN.md §11.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrBusy is returned by Submit when the job queue is full. The HTTP
// layer maps it to 503 + Retry-After, like the blocking routes' shed.
var ErrBusy = errors.New("jobs: queue full")

// ErrNotFound is returned for unknown (or expired) job IDs.
var ErrNotFound = errors.New("jobs: not found")

// Config bounds the manager. Zero values take the documented defaults.
type Config struct {
	// Workers is the executor pool size (default 2). Each worker runs one
	// job at a time; the pool — not the server's inflight slots — is the
	// concurrency bound for the job tier.
	Workers int
	// QueueDepth bounds jobs admitted but not yet executing (default 64);
	// beyond it Submit returns ErrBusy.
	QueueDepth int
	// TTL is how long a terminal job (and its events/result) stays
	// queryable before GC (default 15m).
	TTL time.Duration
	// Poll is the progress monitor's sampling interval (default 100ms).
	// Progress events coalesce to this rate.
	Poll time.Duration
	// MaxSSE caps concurrent event-stream subscribers across all jobs
	// (default 32); beyond it the events route sheds with Retry-After.
	MaxSSE int
	// MaxSSEPerClient caps concurrent event-stream subscribers per client
	// identity (default 8), so one client cannot exhaust the global pool
	// and 503 every other tenant.
	MaxSSEPerClient int
	// Webhook configures completion callbacks (zero value: 3 attempts,
	// 250ms initial backoff, 10s request timeout).
	Webhook WebhookConfig
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TTL <= 0 {
		c.TTL = 15 * time.Minute
	}
	if c.Poll <= 0 {
		c.Poll = 100 * time.Millisecond
	}
	if c.MaxSSE <= 0 {
		c.MaxSSE = 32
	}
	if c.MaxSSEPerClient <= 0 {
		c.MaxSSEPerClient = 8
	}
	c.Webhook = c.Webhook.withDefaults()
	return c
}

// Request is one submission.
type Request struct {
	// ID is the job's content-addressed identity: kind + the canonical
	// request cache key. Two requests with the same ID are the same work.
	ID string
	// Kind is the request family ("sweep", "workload", "trng", "scenario").
	Kind string
	// Exec produces the rendered result. Ignored when Cached is set.
	Exec Exec
	// Cached, when non-nil, is the already-cached result for this ID: the
	// job completes instantly without touching the queue.
	Cached *string
	// Webhook, when non-nil, receives the signed terminal Status.
	Webhook *WebhookSpec
}

// Metrics is a point-in-time counter snapshot for /metrics.
type Metrics struct {
	Submitted int64 // submissions accepted (including dedupes onto live jobs)
	Deduped   int64 // submissions that joined an existing job
	Queued    int64 // jobs currently waiting for a worker
	Running   int64 // jobs currently executing
	Completed int64 // jobs that reached succeeded
	Failed    int64 // jobs that reached failed
	Canceled  int64 // jobs that reached canceled
	CacheHits int64 // submissions completed instantly from the result cache

	SSEConnections    int64 // live event-stream subscribers
	SSERejected       int64 // subscribers shed at either connection cap (client + global)
	SSERejectedClient int64 // subscribers shed at their per-client cap
	SSERejectedGlobal int64 // subscribers shed at the global ceiling

	WebhookDeliveries int64 // callbacks acknowledged 2xx
	WebhookRetries    int64 // delivery attempts after the first
	WebhookFailures   int64 // callbacks abandoned after max attempts
}

// Manager owns the job store, the executor pool and the GC loop.
type Manager struct {
	cfg     Config
	webhook *webhookSender

	mu     sync.Mutex
	jobs   map[string]*Job
	closed bool

	queue  chan *Job
	base   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	// whCtx governs webhook deliveries. It is separate from base so
	// Close can cancel running jobs yet still let in-flight terminal
	// callbacks (bounded by attempts × timeout + backoff) complete.
	whCtx    context.Context
	whCancel context.CancelFunc

	counters struct {
		submitted, deduped                   int64
		completed, failed, canceled          int64
		cacheHits                            int64
		queued, running                      int64
		sseConnections                       int64
		sseRejectedClient, sseRejectedGlobal int64
	}
	// sseByClient tracks live event-stream subscribers per client
	// identity (the per-client connection cap's state).
	sseByClient map[string]int
}

// NewManager starts the executor pool and GC loop.
func NewManager(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	base, cancel := context.WithCancel(context.Background())
	whCtx, whCancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:         cfg,
		webhook:     newWebhookSender(cfg.Webhook),
		jobs:        make(map[string]*Job),
		sseByClient: make(map[string]int),
		queue:       make(chan *Job, cfg.QueueDepth),
		base:        base,
		cancel:      cancel,
		whCtx:       whCtx,
		whCancel:    whCancel,
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	m.wg.Add(1)
	go m.gcLoop()
	return m
}

// Close cancels running jobs, stops the workers and the GC loop, and
// waits for in-flight webhook deliveries to settle. Deliveries run under
// their own context (not the one Close cancels), so terminal callbacks
// racing shutdown still complete — bounded by the webhook attempt
// budget, backoff and per-request timeout.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	m.webhook.wait()
	m.whCancel()
}

// Submit registers the request. When a live or succeeded job already
// exists under the same ID, it is returned with existing=true (failed and
// canceled jobs are replaced — a resubmission is a retry). When the
// request carries a cached result, the job completes instantly.
func (m *Manager) Submit(req Request) (*Job, bool, error) {
	if req.ID == "" || req.Kind == "" {
		return nil, false, fmt.Errorf("jobs: submission needs an ID and kind")
	}
	if req.Cached == nil && req.Exec == nil {
		return nil, false, fmt.Errorf("jobs: submission needs an Exec")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, fmt.Errorf("jobs: manager closed")
	}
	if prev, ok := m.jobs[req.ID]; ok {
		if s := prev.State(); s != StateFailed && s != StateCanceled {
			m.counters.submitted++
			m.counters.deduped++
			// A deduped resubmission's webhook must still fire: attach it
			// to the live job, or — when the job is already terminal, so
			// no future notify will run — deliver its status now.
			if req.Webhook != nil && !prev.addWebhook(*req.Webhook) {
				m.webhook.deliver(m.whCtx, *req.Webhook, prev.Status())
			}
			return prev, true, nil
		}
	}
	j := newJob(req.ID, req.Kind, req.Exec, req.Webhook)
	if req.Cached != nil {
		m.counters.submitted++
		m.counters.cacheHits++
		m.counters.completed++
		m.jobs[req.ID] = j
		j.completeCached(*req.Cached)
		m.notify(j)
		return j, false, nil
	}
	select {
	case m.queue <- j:
	default:
		return nil, false, ErrBusy
	}
	m.counters.submitted++
	m.counters.queued++
	m.jobs[req.ID] = j
	return j, false, nil
}

// Get returns the job for an ID.
func (m *Manager) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns a status snapshot of every stored job, newest first.
func (m *Manager) Jobs() []Status {
	m.mu.Lock()
	js := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		js = append(js, j)
	}
	m.mu.Unlock()
	out := make([]Status, len(js))
	for i, j := range js {
		out[i] = j.Status()
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.After(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel requests cancellation. Queued jobs finish as canceled
// immediately; running jobs have their context cancelled and settle
// through the worker. Cancel of a terminal job is a no-op.
func (m *Manager) Cancel(id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	// requestCancel observes the state and sets the canceled flag in one
	// critical section: (StateQueued, true) guarantees no worker will
	// start this job (start checks the flag under the same lock), so
	// settling it here cannot race a concurrent finish. Deciding from a
	// separate State() read would allow a worker to start the job in
	// between, double-settling it when the execution returned.
	if prior, ok := j.requestCancel(); ok && prior == StateQueued {
		// The worker that eventually drains the queue entry sees the
		// canceled flag and skips it; settle the job now so watchers and
		// webhooks don't wait for that drain.
		j.cancelQueued()
		m.mu.Lock()
		m.counters.queued--
		m.counters.canceled++
		m.mu.Unlock()
		m.notify(j)
	}
	return j.Status(), nil
}

// Wait blocks until the job is terminal or ctx is done.
func (m *Manager) Wait(ctx context.Context, id string) (Status, error) {
	j, err := m.Get(id)
	if err != nil {
		return Status{}, err
	}
	// An already-terminal job wins over an already-done context.
	select {
	case <-j.Done():
		return j.Status(), nil
	default:
	}
	select {
	case <-j.Done():
		return j.Status(), nil
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// AcquireSSE reserves an event-stream slot for the given client identity;
// release returns it. ok=false means a connection cap is reached (the
// caller sheds with Retry-After): reason is "client" when the client sits
// at its per-client cap — the global pool may still have room for other
// tenants — and "global" when the whole pool is exhausted.
func (m *Manager) AcquireSSE(client string) (release func(), reason string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sseByClient[client] >= m.cfg.MaxSSEPerClient {
		m.counters.sseRejectedClient++
		return nil, "client", false
	}
	if m.counters.sseConnections >= int64(m.cfg.MaxSSE) {
		m.counters.sseRejectedGlobal++
		return nil, "global", false
	}
	m.counters.sseConnections++
	m.sseByClient[client]++
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			m.counters.sseConnections--
			if m.sseByClient[client]--; m.sseByClient[client] <= 0 {
				delete(m.sseByClient, client)
			}
			m.mu.Unlock()
		})
	}, "", true
}

// Metrics snapshots the manager's counters.
func (m *Manager) Metrics() Metrics {
	m.mu.Lock()
	c := m.counters
	m.mu.Unlock()
	wd, wr, wf := m.webhook.counts()
	return Metrics{
		Submitted:         c.submitted,
		Deduped:           c.deduped,
		Queued:            c.queued,
		Running:           c.running,
		Completed:         c.completed,
		Failed:            c.failed,
		Canceled:          c.canceled,
		CacheHits:         c.cacheHits,
		SSEConnections:    c.sseConnections,
		SSERejected:       c.sseRejectedClient + c.sseRejectedGlobal,
		SSERejectedClient: c.sseRejectedClient,
		SSERejectedGlobal: c.sseRejectedGlobal,
		WebhookDeliveries: wd,
		WebhookRetries:    wr,
		WebhookFailures:   wf,
	}
}

// SweepExpired drops terminal jobs whose TTL elapsed before now,
// returning how many were dropped. The GC loop calls it periodically;
// tests call it directly.
func (m *Manager) SweepExpired(now time.Time) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for id, j := range m.jobs {
		st := j.Status()
		if st.State.Terminal() && st.Finished != nil && now.Sub(*st.Finished) > m.cfg.TTL {
			delete(m.jobs, id)
			n++
		}
	}
	return n
}

// worker drains the queue, executing one job at a time.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.base.Done():
			return
		case j := <-m.queue:
			m.execute(j)
		}
	}
}

// execute runs one job: start (unless cancellation won), monitor progress
// into the event log, run the exec, settle counters and fire the webhook.
func (m *Manager) execute(j *Job) {
	ctx, cancel := context.WithCancel(m.base)
	defer cancel()
	if !j.start(cancel) {
		// Canceled while queued; Cancel already settled it.
		return
	}
	m.mu.Lock()
	m.counters.queued--
	m.counters.running++
	m.mu.Unlock()

	stopMonitor := make(chan struct{})
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		m.monitor(j, stopMonitor)
	}()

	out, err := j.exec(ctx, j.stats)
	if err == nil && ctx.Err() != nil {
		err = ctx.Err()
	}
	close(stopMonitor)
	<-monitorDone
	j.finish(out, err)

	m.mu.Lock()
	m.counters.running--
	switch j.State() {
	case StateSucceeded:
		m.counters.completed++
	case StateCanceled:
		m.counters.canceled++
	default:
		m.counters.failed++
	}
	m.mu.Unlock()
	m.notify(j)
}

// monitor polls the job's stats at the configured interval and appends a
// progress event whenever completed-shard work advanced, coalescing
// between ticks. The terminal progress event is emitted by finish.
func (m *Manager) monitor(j *Job, stop <-chan struct{}) {
	t := time.NewTicker(m.cfg.Poll)
	defer t.Stop()
	var last Progress
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p := j.progress()
			if p != last {
				j.log.append("progress", p)
				last = p
			}
		}
	}
}

// notify dispatches the terminal status to every webhook the job
// registered (its own submission's plus any attached by deduped
// resubmissions).
func (m *Manager) notify(j *Job) {
	st := j.Status()
	for _, spec := range j.webhookSpecs() {
		m.webhook.deliver(m.whCtx, spec, st)
	}
}

// gcLoop periodically sweeps expired terminal jobs.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	interval := m.cfg.TTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.base.Done():
			return
		case now := <-t.C:
			m.SweepExpired(now)
		}
	}
}
