package jobs

import (
	"sync"

	"repro/internal/analog"
	"repro/internal/cache"
	"repro/internal/dram"
)

// Warmpool keeps built dram.Module instances warm between jobs,
// implementing dram.ModulePool. Building a module is cheap, but its
// static electrical-draw tables (per-column theta and sense-amp bias,
// per-row latch and wordline norms, cached per-cell draws, coupling
// norms) are populated on first touch; recycling an instance keeps those
// tables hot across jobs over the same fleet. Instances are keyed by the
// same module-identity hash block the shard memos use (spec + electrical
// parameters), and Put resets a returned instance's dynamic state, so a
// pooled checkout is state-equivalent to a freshly built module by
// construction — results stay bit-identical.
type Warmpool struct {
	maxPerKey int

	mu        sync.Mutex
	idle      map[cache.Key][]*dram.Module
	hits      int64
	misses    int64
	discarded int64
}

// WarmpoolStats is a point-in-time snapshot for /metrics.
type WarmpoolStats struct {
	Hits      int64 // checkouts served from an idle instance
	Misses    int64 // checkouts that built a fresh instance
	Discarded int64 // returns dropped at the per-key idle cap
	Idle      int64 // instances currently parked
}

// NewWarmpool returns a pool keeping at most maxPerKey idle instances per
// (spec, params) identity (default 4 when maxPerKey <= 0).
func NewWarmpool(maxPerKey int) *Warmpool {
	if maxPerKey <= 0 {
		maxPerKey = 4
	}
	return &Warmpool{
		maxPerKey: maxPerKey,
		idle:      make(map[cache.Key][]*dram.Module),
	}
}

// poolKey is the module-identity hash: the shared HashModule block under
// a pool-private tag.
func poolKey(spec dram.Spec, params analog.Params) cache.Key {
	return spec.HashModule(cache.NewHasher().Str("warmpool/v1"), params).Sum()
}

// Get checks out an instance for exclusive use: an idle one when
// available, freshly built otherwise.
func (p *Warmpool) Get(spec dram.Spec, params analog.Params) (*dram.Module, error) {
	k := poolKey(spec, params)
	p.mu.Lock()
	if q := p.idle[k]; len(q) > 0 {
		m := q[len(q)-1]
		p.idle[k] = q[:len(q)-1]
		p.hits++
		p.mu.Unlock()
		return m, nil
	}
	p.misses++
	p.mu.Unlock()
	return dram.NewModule(spec, params)
}

// Put resets the instance's dynamic state and parks it for reuse,
// discarding it beyond the per-key cap.
func (p *Warmpool) Put(m *dram.Module) {
	if m == nil {
		return
	}
	m.Reset()
	k := poolKey(m.Spec(), m.Params())
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.idle[k]) >= p.maxPerKey {
		p.discarded++
		return
	}
	p.idle[k] = append(p.idle[k], m)
}

// Stats snapshots the pool counters.
func (p *Warmpool) Stats() WarmpoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var idle int64
	for _, q := range p.idle {
		idle += int64(len(q))
	}
	return WarmpoolStats{Hits: p.hits, Misses: p.misses, Discarded: p.discarded, Idle: idle}
}
