package jobs

import (
	"context"
	"sync"
	"time"

	"repro/internal/engine"
)

// State is a job's lifecycle position. The machine is
//
//	queued → running → succeeded | failed | canceled
//	queued → succeeded            (result already cached at submission)
//	queued → canceled             (canceled before a worker picked it up)
//
// Terminal states never transition again; every transition is recorded in
// the job's audit trail.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateSucceeded State = "succeeded"
	StateFailed    State = "failed"
	StateCanceled  State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// Transition is one audit-trail entry: when the job entered a state and
// why.
type Transition struct {
	State State     `json:"state"`
	At    time.Time `json:"at"`
	Note  string    `json:"note,omitempty"`
}

// Progress is a point-in-time view of a job's per-shard progress, sourced
// from the engine stats the job's execution accumulates into.
type Progress struct {
	// ShardsTotal and ShardsDone count submitted and completed engine
	// shards. Totals grow while adaptive searches submit follow-up probes,
	// but ShardsDone only ever increases.
	ShardsTotal int64 `json:"shards_total"`
	ShardsDone  int64 `json:"shards_done"`
	// ShardsCached counts shards served from the shard memo.
	ShardsCached int64 `json:"shards_cached"`
	// Runs counts completed engine runs (envelope probes each run once).
	Runs int64 `json:"runs"`
	// Activations counts issued APA activations.
	Activations int64 `json:"activations"`
}

// Status is the externally visible job snapshot: the /v1/jobs/{id}
// response body and the webhook payload.
type Status struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State State  `json:"state"`
	// Cached reports the job completed without executing: its result was
	// already in the response cache at submission.
	Cached   bool       `json:"cached"`
	Progress Progress   `json:"progress"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Audit is the terminal-state audit trail: every transition the job
	// took, in order.
	Audit []Transition `json:"audit"`
}

// Exec is a job's unit of work. The context is cancelled on job
// cancellation or manager shutdown; st is the job's live progress
// accumulator (the same counters the blocking routes keep per-run).
type Exec func(ctx context.Context, st *engine.Stats) (string, error)

// Job is one submitted asynchronous execution. All methods are safe for
// concurrent use.
type Job struct {
	id   string
	kind string

	stats *engine.Stats
	log   *eventLog

	mu       sync.Mutex
	state    State
	cached   bool
	output   string
	errMsg   string
	audit    []Transition
	canceled bool // cancellation requested (maybe before running)
	cancel   context.CancelFunc
	created  time.Time
	started  time.Time
	finished time.Time
	// webhooks holds every completion callback registered for this job:
	// the submission's own spec plus any attached by deduped
	// resubmissions. All fire on the terminal state.
	webhooks []WebhookSpec

	exec Exec
	done chan struct{}
}

func newJob(id, kind string, exec Exec, webhook *WebhookSpec) *Job {
	j := &Job{
		id:      id,
		kind:    kind,
		stats:   new(engine.Stats),
		log:     newEventLog(),
		exec:    exec,
		created: time.Now(),
		done:    make(chan struct{}),
	}
	if webhook != nil {
		j.webhooks = append(j.webhooks, *webhook)
	}
	j.transitionLocked(StateQueued, "submitted")
	return j
}

// ID returns the job's content-addressed identifier.
func (j *Job) ID() string { return j.id }

// Kind returns the request family ("sweep", "workload", "trng",
// "scenario").
func (j *Job) Kind() string { return j.kind }

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Stats exposes the job's live progress accumulator: the executing
// pipeline adds to it, the SSE monitor and status endpoint snapshot it.
func (j *Job) Stats() *engine.Stats { return j.stats }

// progress converts the engine snapshot into the job progress view.
func (j *Job) progress() Progress {
	s := j.stats.Snapshot()
	return Progress{
		ShardsTotal:  s.ShardsTotal,
		ShardsDone:   s.ShardsDone,
		ShardsCached: s.ShardsCached,
		Runs:         s.Runs,
		Activations:  s.Activations,
	}
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.id,
		Kind:     j.kind,
		State:    j.state,
		Cached:   j.cached,
		Progress: j.progress(),
		Error:    j.errMsg,
		Created:  j.created,
		Audit:    append([]Transition(nil), j.audit...),
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// Output returns the rendered result once the job has succeeded.
func (j *Job) Output() (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.state == StateSucceeded
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// EventsSince exposes the job's event log for SSE subscribers.
func (j *Job) EventsSince(after int64) (evs []Event, changed <-chan struct{}, closed bool) {
	return j.log.since(after)
}

// transitionLocked appends an audit entry and state event. Callers hold
// j.mu (or, in newJob, exclusive ownership).
func (j *Job) transitionLocked(s State, note string) {
	j.state = s
	j.audit = append(j.audit, Transition{State: s, At: time.Now(), Note: note})
	j.log.append("state", map[string]string{"state": string(s), "note": note})
}

// start moves the job to running and installs its cancel hook. It
// returns false when cancellation won the race: the job is already
// terminal and must not execute.
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.canceled || j.state.Terminal() {
		return false
	}
	j.cancel = cancel
	j.started = time.Now()
	j.transitionLocked(StateRunning, "executing")
	return true
}

// finish records the execution outcome, emits the final events and closes
// the stream. A requested cancellation wins over the execution error it
// induced. An already-terminal job (e.g. one Cancel settled while it was
// still queued) is left untouched.
func (j *Job) finish(output string, err error) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	j.cancel = nil
	switch {
	case j.canceled:
		j.transitionLocked(StateCanceled, "canceled")
	case err != nil:
		j.errMsg = err.Error()
		j.transitionLocked(StateFailed, err.Error())
	default:
		j.output = output
		j.transitionLocked(StateSucceeded, "completed")
	}
	j.finishLocked()
	j.mu.Unlock()
}

// completeCached finishes a job whose result was already in the response
// cache at submission: no execution, instant terminal state.
func (j *Job) completeCached(output string) {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.cached = true
	j.output = output
	j.finished = time.Now()
	j.transitionLocked(StateSucceeded, "served from result cache")
	j.finishLocked()
	j.mu.Unlock()
}

// cancelQueued finishes a job that was canceled before any worker picked
// it up.
func (j *Job) cancelQueued() {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	j.transitionLocked(StateCanceled, "canceled before execution")
	j.finishLocked()
	j.mu.Unlock()
}

// finishLocked emits the terminal progress/result/done events, ends the
// event stream and releases waiters.
func (j *Job) finishLocked() {
	j.log.append("progress", j.progress())
	if j.state == StateSucceeded {
		j.log.append("result", map[string]string{"output": j.output})
	}
	j.log.append("done", map[string]string{"state": string(j.state), "error": j.errMsg})
	j.log.close()
	close(j.done)
}

// requestCancel marks the job canceled and interrupts a running
// execution. It returns the state it observed when setting the flag and
// whether the request took effect (false once terminal). The observation
// and the flag set share one critical section, so a caller that sees
// (StateQueued, true) knows no worker will ever start this job — start
// checks the flag under the same lock — and may settle it itself.
func (j *Job) requestCancel() (State, bool) {
	j.mu.Lock()
	if j.state.Terminal() {
		s := j.state
		j.mu.Unlock()
		return s, false
	}
	j.canceled = true
	prior := j.state
	cancel := j.cancel
	j.mu.Unlock()
	if prior == StateRunning && cancel != nil {
		cancel()
	}
	return prior, true
}

// addWebhook registers an additional completion callback on a live job
// (a deduped resubmission carrying a webhook). It reports false when the
// job is already terminal: no future notify will run, so the caller must
// deliver the callback itself.
func (j *Job) addWebhook(spec WebhookSpec) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.webhooks = append(j.webhooks, spec)
	return true
}

// webhookSpecs snapshots the registered completion callbacks.
func (j *Job) webhookSpecs() []WebhookSpec {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]WebhookSpec(nil), j.webhooks...)
}
