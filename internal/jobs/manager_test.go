package jobs

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
)

func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m := NewManager(cfg)
	t.Cleanup(m.Close)
	return m
}

func waitState(t *testing.T, j *Job, want State) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish (state %s)", j.ID(), j.State())
	}
	st := j.Status()
	if st.State != want {
		t.Fatalf("job %s finished %s (error %q), want %s", j.ID(), st.State, st.Error, want)
	}
	return st
}

func TestSubmitRunsToSuccess(t *testing.T) {
	m := testManager(t, Config{Poll: time.Millisecond})
	j, existing, err := m.Submit(Request{
		ID:   "trng-abc",
		Kind: "trng",
		Exec: func(ctx context.Context, st *engine.Stats) (string, error) {
			tasks := []engine.Task[int]{
				func(context.Context) (int, error) { return 1, nil },
				func(context.Context) (int, error) { return 2, nil },
			}
			if _, err := engine.Run(ctx, engine.Config{Workers: 1}, st, tasks); err != nil {
				return "", err
			}
			return "payload", nil
		},
	})
	if err != nil || existing {
		t.Fatalf("Submit: existing=%v err=%v", existing, err)
	}
	st := waitState(t, j, StateSucceeded)
	if st.Cached {
		t.Fatal("executed job reported cached")
	}
	if st.Progress.ShardsDone != 2 || st.Progress.ShardsTotal != 2 {
		t.Fatalf("progress %+v, want 2/2 shards", st.Progress)
	}
	out, ok := j.Output()
	if !ok || out != "payload" {
		t.Fatalf("Output() = %q, %v", out, ok)
	}
	// The audit trail records the full path.
	var states []State
	for _, tr := range st.Audit {
		states = append(states, tr.State)
	}
	want := []State{StateQueued, StateRunning, StateSucceeded}
	if fmt.Sprint(states) != fmt.Sprint(want) {
		t.Fatalf("audit states %v, want %v", states, want)
	}
	// The event stream ends with progress, result, done.
	evs, _, closed := j.EventsSince(0)
	if !closed {
		t.Fatal("event log still open after terminal state")
	}
	if n := len(evs); n < 4 ||
		evs[n-1].Type != "done" || evs[n-2].Type != "result" || evs[n-3].Type != "progress" {
		t.Fatalf("unexpected event tail: %+v", evs)
	}
}

func TestSubmitDedupesLiveAndSucceededJobs(t *testing.T) {
	m := testManager(t, Config{})
	release := make(chan struct{})
	exec := func(ctx context.Context, st *engine.Stats) (string, error) {
		<-release
		return "x", nil
	}
	j1, _, err := m.Submit(Request{ID: "sweep-1", Kind: "sweep", Exec: exec})
	if err != nil {
		t.Fatal(err)
	}
	j2, existing, err := m.Submit(Request{ID: "sweep-1", Kind: "sweep", Exec: exec})
	if err != nil || !existing || j1 != j2 {
		t.Fatalf("live dedupe: existing=%v same=%v err=%v", existing, j1 == j2, err)
	}
	close(release)
	waitState(t, j1, StateSucceeded)
	j3, existing, err := m.Submit(Request{ID: "sweep-1", Kind: "sweep", Exec: exec})
	if err != nil || !existing || j3 != j1 {
		t.Fatalf("succeeded dedupe: existing=%v same=%v err=%v", existing, j3 == j1, err)
	}
	met := m.Metrics()
	if met.Submitted != 3 || met.Deduped != 2 {
		t.Fatalf("metrics %+v, want 3 submitted / 2 deduped", met)
	}
}

func TestSubmitFailedJobIsRetried(t *testing.T) {
	m := testManager(t, Config{})
	boom := errors.New("boom")
	j1, _, err := m.Submit(Request{ID: "wl-1", Kind: "workload",
		Exec: func(context.Context, *engine.Stats) (string, error) { return "", boom }})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j1, StateFailed)
	if st.Error != "boom" {
		t.Fatalf("error %q", st.Error)
	}
	j2, existing, err := m.Submit(Request{ID: "wl-1", Kind: "workload",
		Exec: func(context.Context, *engine.Stats) (string, error) { return "ok", nil }})
	if err != nil || existing || j2 == j1 {
		t.Fatalf("failed job not replaced: existing=%v err=%v", existing, err)
	}
	waitState(t, j2, StateSucceeded)
}

func TestSubmitCachedCompletesInstantly(t *testing.T) {
	m := testManager(t, Config{})
	cached := "from-cache"
	j, existing, err := m.Submit(Request{ID: "scenario-1", Kind: "scenario", Cached: &cached})
	if err != nil || existing {
		t.Fatalf("existing=%v err=%v", existing, err)
	}
	// No Done() wait needed: the job is terminal at submission return.
	st := j.Status()
	if st.State != StateSucceeded || !st.Cached {
		t.Fatalf("status %+v, want instant cached success", st)
	}
	if out, ok := j.Output(); !ok || out != cached {
		t.Fatalf("Output() = %q, %v", out, ok)
	}
	met := m.Metrics()
	if met.CacheHits != 1 || met.Completed != 1 {
		t.Fatalf("metrics %+v", met)
	}
}

func TestSubmitShedsWhenQueueFull(t *testing.T) {
	m := testManager(t, Config{Workers: 1, QueueDepth: 1})
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, st *engine.Stats) (string, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "", ctx.Err()
	}
	// First fills the worker, second the queue; third must shed.
	if _, _, err := m.Submit(Request{ID: "a", Kind: "trng", Exec: block}); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker drained "a" so "b" surely fits the queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if j, err := m.Get("a"); err == nil && j.State() == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job a never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := m.Submit(Request{ID: "b", Kind: "trng", Exec: block}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Submit(Request{ID: "c", Kind: "trng", Exec: block}); !errors.Is(err, ErrBusy) {
		t.Fatalf("third submit err = %v, want ErrBusy", err)
	}
	if _, err := m.Get("c"); !errors.Is(err, ErrNotFound) {
		t.Fatal("shed submission must not be stored")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1, QueueDepth: 2})
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, st *engine.Stats) (string, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "", ctx.Err()
	}
	if _, _, err := m.Submit(Request{ID: "running", Kind: "trng", Exec: block}); err != nil {
		t.Fatal(err)
	}
	jq, _, err := m.Submit(Request{ID: "queued", Kind: "trng", Exec: block})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Cancel("queued")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	waitState(t, jq, StateCanceled)
	if _, err := m.Cancel("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Cancel(unknown) err = %v", err)
	}
}

func TestCancelRunningJob(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	started := make(chan struct{})
	j, _, err := m.Submit(Request{ID: "r", Kind: "scenario",
		Exec: func(ctx context.Context, st *engine.Stats) (string, error) {
			close(started)
			<-ctx.Done()
			return "", ctx.Err()
		}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel("r"); err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateCanceled)
	if st.Error != "" {
		t.Fatalf("canceled job carries error %q", st.Error)
	}
	// Cancel of a terminal job is a no-op, not an error.
	st2, err := m.Cancel("r")
	if err != nil || st2.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", st2, err)
	}
	if m.Metrics().Canceled != 1 {
		t.Fatalf("canceled counter %d", m.Metrics().Canceled)
	}
}

// TestCancelStartRaceSettlesOnce hammers the Cancel-vs-worker-start
// window: with the cancel decision and flag set split across two lock
// acquisitions, a worker starting the job in between double-settled it
// (close of closed done channel → panic) and double-adjusted the
// counters. Every job must settle exactly once, in exactly one terminal
// state, with the gauges back at zero.
func TestCancelStartRaceSettlesOnce(t *testing.T) {
	m := testManager(t, Config{Workers: 4, QueueDepth: 256})
	const n = 200
	submitted := make([]*Job, 0, n)
	for i := 0; i < n; i++ {
		j, _, err := m.Submit(Request{ID: fmt.Sprintf("race-%d", i), Kind: "trng",
			Exec: func(context.Context, *engine.Stats) (string, error) { return "ok", nil }})
		if err != nil {
			t.Fatal(err)
		}
		submitted = append(submitted, j)
		go m.Cancel(j.ID())
	}
	for _, j := range submitted {
		select {
		case <-j.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("job %s never settled (state %s)", j.ID(), j.State())
		}
		if st := j.Status(); st.State != StateSucceeded && st.State != StateCanceled {
			t.Fatalf("job %s settled %s (error %q)", j.ID(), st.State, st.Error)
		}
	}
	met := m.Metrics()
	if met.Queued != 0 || met.Running != 0 {
		t.Fatalf("gauges queued=%d running=%d after all jobs settled", met.Queued, met.Running)
	}
	if total := met.Completed + met.Canceled + met.Failed; total != n {
		t.Fatalf("terminal counters sum %d (completed=%d canceled=%d failed=%d), want %d",
			total, met.Completed, met.Canceled, met.Failed, n)
	}
}

// waitHits polls the sink until it has recorded want deliveries.
func waitHits(t *testing.T, sink *webhookSink, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(sink.snapshot()) < want {
		if time.Now().After(deadline) {
			t.Fatalf("webhook deliveries %d, want %d", len(sink.snapshot()), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDedupedResubmissionWebhookFires covers the webhook path through
// dedupe: a resubmission that joins a live job attaches its webhook (it
// fires on completion alongside any the job already had), and one that
// joins an already-terminal job gets its callback delivered immediately.
func TestDedupedResubmissionWebhookFires(t *testing.T) {
	sink := &webhookSink{}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()
	m := testManager(t, Config{})
	release := make(chan struct{})
	exec := func(context.Context, *engine.Stats) (string, error) { <-release; return "x", nil }
	if _, _, err := m.Submit(Request{ID: "d", Kind: "trng", Exec: exec}); err != nil {
		t.Fatal(err)
	}
	j, existing, err := m.Submit(Request{ID: "d", Kind: "trng", Exec: exec,
		Webhook: &WebhookSpec{URL: srv.URL}})
	if err != nil || !existing {
		t.Fatalf("live dedupe: existing=%v err=%v", existing, err)
	}
	close(release)
	waitState(t, j, StateSucceeded)
	waitHits(t, sink, 1)
	if _, existing, err := m.Submit(Request{ID: "d", Kind: "trng", Exec: exec,
		Webhook: &WebhookSpec{URL: srv.URL}}); err != nil || !existing {
		t.Fatalf("terminal dedupe: existing=%v err=%v", existing, err)
	}
	waitHits(t, sink, 2)
	for i, h := range sink.snapshot() {
		if h.job != "d" || h.event != "succeeded" {
			t.Fatalf("delivery %d: job=%q event=%q", i, h.job, h.event)
		}
	}
}

// TestCloseAllowsInflightWebhookToComplete pins the Close contract:
// deliveries run under their own context, so a terminal callback racing
// shutdown completes instead of being abandoned by the base-context
// cancel.
func TestCloseAllowsInflightWebhookToComplete(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(200 * time.Millisecond)
		mu.Lock()
		hits++
		mu.Unlock()
	}))
	defer srv.Close()
	m := NewManager(Config{})
	cached := "x"
	if _, _, err := m.Submit(Request{ID: "c", Kind: "trng", Cached: &cached,
		Webhook: &WebhookSpec{URL: srv.URL}}); err != nil {
		t.Fatal(err)
	}
	m.Close()
	mu.Lock()
	defer mu.Unlock()
	if hits != 1 {
		t.Fatalf("deliveries completed at Close return: %d, want 1", hits)
	}
	if d, _, f := m.webhook.counts(); d != 1 || f != 0 {
		t.Fatalf("counts deliveries=%d failures=%d, want 1/0", d, f)
	}
}

func TestWait(t *testing.T) {
	m := testManager(t, Config{})
	j, _, err := m.Submit(Request{ID: "w", Kind: "trng",
		Exec: func(context.Context, *engine.Stats) (string, error) { return "done", nil }})
	if err != nil {
		t.Fatal(err)
	}
	st, err := m.Wait(context.Background(), "w")
	if err != nil || st.State != StateSucceeded {
		t.Fatalf("Wait: %+v, %v", st, err)
	}
	_ = j
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Wait(ctx, "w"); err != nil {
		t.Fatalf("Wait on terminal job must not block: %v", err)
	}
	if _, err := m.Wait(context.Background(), "missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Wait(unknown) err = %v", err)
	}
}

func TestSweepExpired(t *testing.T) {
	m := testManager(t, Config{TTL: time.Minute})
	cached := "x"
	if _, _, err := m.Submit(Request{ID: "old", Kind: "trng", Cached: &cached}); err != nil {
		t.Fatal(err)
	}
	if n := m.SweepExpired(time.Now()); n != 0 {
		t.Fatalf("fresh job swept (%d)", n)
	}
	if n := m.SweepExpired(time.Now().Add(2 * time.Minute)); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if _, err := m.Get("old"); !errors.Is(err, ErrNotFound) {
		t.Fatal("expired job still retrievable")
	}
}

func TestAcquireSSECap(t *testing.T) {
	m := testManager(t, Config{MaxSSE: 2})
	rel1, _, ok := m.AcquireSSE("a")
	if !ok {
		t.Fatal("first acquire refused")
	}
	rel2, _, ok := m.AcquireSSE("b")
	if !ok {
		t.Fatal("second acquire refused")
	}
	if _, reason, ok := m.AcquireSSE("c"); ok || reason != "global" {
		t.Fatalf("third acquire: ok=%v reason=%q, want global shed", ok, reason)
	}
	met := m.Metrics()
	if met.SSEConnections != 2 || met.SSERejected != 1 || met.SSERejectedGlobal != 1 {
		t.Fatalf("metrics %+v", met)
	}
	rel1()
	rel1() // release is idempotent
	if m.Metrics().SSEConnections != 1 {
		t.Fatalf("connections %d after release", m.Metrics().SSEConnections)
	}
	if _, _, ok := m.AcquireSSE("a"); !ok {
		t.Fatal("slot not reusable after release")
	}
	rel2()
}

// TestAcquireSSEPerClientCap asserts the fairness fix: a client at its
// per-client cap sheds with reason "client" while a second client still
// gets a slot from the global pool.
func TestAcquireSSEPerClientCap(t *testing.T) {
	m := testManager(t, Config{MaxSSE: 8, MaxSSEPerClient: 2})
	var releases []func()
	for i := 0; i < 2; i++ {
		rel, _, ok := m.AcquireSSE("greedy")
		if !ok {
			t.Fatalf("acquire %d for greedy refused", i)
		}
		releases = append(releases, rel)
	}
	if _, reason, ok := m.AcquireSSE("greedy"); ok || reason != "client" {
		t.Fatalf("over-cap acquire: ok=%v reason=%q, want client shed", ok, reason)
	}
	rel, _, ok := m.AcquireSSE("other")
	if !ok {
		t.Fatal("second client shed although the global pool has room")
	}
	met := m.Metrics()
	if met.SSERejectedClient != 1 || met.SSERejectedGlobal != 0 || met.SSEConnections != 3 {
		t.Fatalf("metrics %+v", met)
	}
	// Releasing one greedy stream frees that client's slot.
	releases[0]()
	if _, _, ok := m.AcquireSSE("greedy"); !ok {
		t.Fatal("per-client slot not reusable after release")
	}
	rel()
	releases[1]()
}

func TestJobsListsNewestFirst(t *testing.T) {
	m := testManager(t, Config{})
	a, b := "a", "b"
	if _, _, err := m.Submit(Request{ID: "first", Kind: "trng", Cached: &a}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond)
	if _, _, err := m.Submit(Request{ID: "second", Kind: "trng", Cached: &b}); err != nil {
		t.Fatal(err)
	}
	js := m.Jobs()
	if len(js) != 2 || js[0].ID != "second" || js[1].ID != "first" {
		t.Fatalf("order: %v", []string{js[0].ID, js[1].ID})
	}
}

func TestSubmitValidation(t *testing.T) {
	m := testManager(t, Config{})
	if _, _, err := m.Submit(Request{Kind: "trng"}); err == nil {
		t.Fatal("missing ID accepted")
	}
	if _, _, err := m.Submit(Request{ID: "x", Kind: "trng"}); err == nil {
		t.Fatal("missing Exec accepted")
	}
}
