package jobs

import (
	"context"
	"crypto/hmac"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// sinkHit is one delivery observed by the test sink.
type sinkHit struct {
	body      []byte
	signature string
	job       string
	event     string
}

// webhookSink records deliveries, failing the first fail requests.
type webhookSink struct {
	mu   sync.Mutex
	fail int
	hits []sinkHit
}

func (s *webhookSink) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.fail > 0 {
			s.fail--
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		s.hits = append(s.hits, sinkHit{
			body:      body,
			signature: r.Header.Get("X-Simra-Signature"),
			job:       r.Header.Get("X-Simra-Job"),
			event:     r.Header.Get("X-Simra-Event"),
		})
	}
}

func (s *webhookSink) snapshot() []sinkHit {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]sinkHit(nil), s.hits...)
}

func TestWebhookDeliverySignedAndVerified(t *testing.T) {
	sink := &webhookSink{}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	s := newWebhookSender(WebhookConfig{MaxAttempts: 1})
	status := Status{ID: "trng-1", Kind: "trng", State: StateSucceeded}
	s.deliver(context.Background(), WebhookSpec{URL: srv.URL, Secret: "s3cret"}, status)
	s.wait()

	hits := sink.snapshot()
	if len(hits) != 1 {
		t.Fatalf("got %d deliveries, want 1", len(hits))
	}
	h := hits[0]
	if h.job != "trng-1" || h.event != "succeeded" {
		t.Fatalf("headers job=%q event=%q", h.job, h.event)
	}
	want := "sha256=" + Sign("s3cret", h.body)
	if !hmac.Equal([]byte(h.signature), []byte(want)) {
		t.Fatalf("signature %q, want %q", h.signature, want)
	}
	var got Status
	if err := json.Unmarshal(h.body, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != status.ID || got.State != status.State {
		t.Fatalf("payload %+v", got)
	}
	if d, r, f := s.counts(); d != 1 || r != 0 || f != 0 {
		t.Fatalf("counts %d/%d/%d", d, r, f)
	}
}

func TestWebhookRetriesWithBackoffThenSucceeds(t *testing.T) {
	sink := &webhookSink{fail: 2}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	s := newWebhookSender(WebhookConfig{MaxAttempts: 3, Backoff: time.Millisecond})
	s.deliver(context.Background(), WebhookSpec{URL: srv.URL}, Status{ID: "j", State: StateFailed})
	s.wait()

	if hits := sink.snapshot(); len(hits) != 1 {
		t.Fatalf("got %d successful deliveries, want 1", len(hits))
	} else if hits[0].signature != "" {
		t.Fatal("unsigned webhook carried a signature")
	}
	if d, r, f := s.counts(); d != 1 || r != 2 || f != 0 {
		t.Fatalf("counts deliveries=%d retries=%d failures=%d, want 1/2/0", d, r, f)
	}
}

func TestWebhookGivesUpAfterMaxAttempts(t *testing.T) {
	sink := &webhookSink{fail: 99}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	s := newWebhookSender(WebhookConfig{MaxAttempts: 2, Backoff: time.Millisecond})
	s.deliver(context.Background(), WebhookSpec{URL: srv.URL}, Status{ID: "j"})
	s.wait()
	if d, r, f := s.counts(); d != 0 || r != 1 || f != 1 {
		t.Fatalf("counts deliveries=%d retries=%d failures=%d, want 0/1/1", d, r, f)
	}
}

func TestWebhookStopsOnContextCancel(t *testing.T) {
	sink := &webhookSink{fail: 99}
	srv := httptest.NewServer(sink.handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	s := newWebhookSender(WebhookConfig{MaxAttempts: 10, Backoff: time.Hour})
	s.deliver(ctx, WebhookSpec{URL: srv.URL}, Status{ID: "j"})
	cancel()
	done := make(chan struct{})
	go func() { s.wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("delivery goroutine did not stop on cancel")
	}
	if _, _, f := s.counts(); f != 1 {
		t.Fatalf("failures %d, want 1", f)
	}
}

func TestSignIsStable(t *testing.T) {
	a := Sign("k", []byte("body"))
	b := Sign("k", []byte("body"))
	if a != b || len(a) != 64 || strings.ToLower(a) != a {
		t.Fatalf("Sign not a stable lowercase hex digest: %q vs %q", a, b)
	}
	if Sign("k2", []byte("body")) == a {
		t.Fatal("secret not mixed into signature")
	}
}
