package jobs

import (
	"encoding/json"
	"testing"
)

func TestEventLogSequentialIDsAndReplay(t *testing.T) {
	l := newEventLog()
	l.append("state", map[string]string{"state": "queued"})
	l.append("progress", Progress{ShardsDone: 1, ShardsTotal: 4})
	l.append("progress", Progress{ShardsDone: 4, ShardsTotal: 4})

	evs, _, closed := l.since(0)
	if closed {
		t.Fatal("log should still be open")
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.ID != int64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, i+1)
		}
		if !json.Valid([]byte(e.Data)) {
			t.Fatalf("event %d payload is not JSON: %q", i, e.Data)
		}
	}

	// Replay from a Last-Event-ID cursor skips already-seen events.
	evs, _, _ = l.since(2)
	if len(evs) != 1 || evs[0].ID != 3 || evs[0].Type != "progress" {
		t.Fatalf("since(2) = %+v, want just event 3", evs)
	}
	// Cursors past the end (and negative ones) are tolerated.
	if evs, _, _ := l.since(99); len(evs) != 0 {
		t.Fatalf("since(99) returned %d events", len(evs))
	}
	if evs, _, _ := l.since(-5); len(evs) != 3 {
		t.Fatalf("since(-5) returned %d events, want full replay", len(evs))
	}
}

func TestEventLogChangeNotification(t *testing.T) {
	l := newEventLog()
	_, changed, _ := l.since(0)
	select {
	case <-changed:
		t.Fatal("change channel closed before any append")
	default:
	}
	l.append("state", map[string]string{"state": "running"})
	select {
	case <-changed:
	default:
		t.Fatal("append did not signal the change channel")
	}
}

func TestEventLogClose(t *testing.T) {
	l := newEventLog()
	l.append("done", map[string]string{"state": "succeeded"})
	_, changed, _ := l.since(0)
	l.close()
	select {
	case <-changed:
	default:
		t.Fatal("close did not signal the change channel")
	}
	if _, _, closed := l.since(0); !closed {
		t.Fatal("log should report closed")
	}
	l.append("state", nil) // dropped
	if evs, _, _ := l.since(0); len(evs) != 1 {
		t.Fatalf("append after close extended the log: %d events", len(evs))
	}
	l.close() // idempotent
}
