package jobs

import (
	"fmt"
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/timing"
)

func warmSpec(id string) dram.Spec {
	spec := dram.NewSpec(id, dram.ProfileH, 0x77)
	spec.Columns = 256
	return spec
}

// transcript runs a deterministic write + APA sequence and returns the
// readbacks: pooled reuse must be bit-identical to a fresh build.
func transcript(t *testing.T, m *dram.Module) []string {
	t.Helper()
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 3; row++ {
		if err := sa.FillRow(row, dram.PatternRandom, 0xc0de, row); err != nil {
			t.Fatal(err)
		}
	}
	opts := dram.APAOptions{
		Timings: timing.APATimings{T1: 10, T2: 4},
		Env:     analog.NominalEnv(),
	}
	if _, err := sa.APA(0, 1, opts); err != nil {
		t.Fatal(err)
	}
	var out []string
	for row := 0; row < 3; row++ {
		v, err := sa.ReadRowVec(row)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, fmt.Sprint(v.Bools()))
	}
	return out
}

func TestWarmpoolReuseIsBitIdentical(t *testing.T) {
	params := analog.DefaultParams()
	spec := warmSpec("wp-identical")
	fresh, err := dram.NewModule(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	want := transcript(t, fresh)

	p := NewWarmpool(2)
	m1, err := p.Get(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	got := transcript(t, m1)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("first checkout row %d differs from fresh build", i)
		}
	}
	p.Put(m1)
	m2, err := p.Get(spec, params)
	if err != nil {
		t.Fatal(err)
	}
	if m2 != m1 {
		t.Fatal("second Get did not reuse the parked instance")
	}
	got = transcript(t, m2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recycled checkout row %d differs from fresh build", i)
		}
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
}

func TestWarmpoolKeysBySpecAndParams(t *testing.T) {
	params := analog.DefaultParams()
	p := NewWarmpool(2)
	a, err := p.Get(warmSpec("wp-a"), params)
	if err != nil {
		t.Fatal(err)
	}
	p.Put(a)
	// A different spec must not receive wp-a's instance.
	b, err := p.Get(warmSpec("wp-b"), params)
	if err != nil {
		t.Fatal(err)
	}
	if b == a {
		t.Fatal("pool crossed module identities")
	}
	// Same spec, different electrical params: also distinct.
	params2 := params
	params2.VPPNominal += 0.1
	c, err := p.Get(warmSpec("wp-a"), params2)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("pool crossed electrical parameter sets")
	}
	if st := p.Stats(); st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 0 hits / 3 misses", st)
	}
}

func TestWarmpoolDiscardsBeyondCap(t *testing.T) {
	params := analog.DefaultParams()
	spec := warmSpec("wp-cap")
	p := NewWarmpool(1)
	m1, _ := p.Get(spec, params)
	m2, _ := p.Get(spec, params)
	p.Put(m1)
	p.Put(m2) // over the cap: discarded
	p.Put(nil)
	st := p.Stats()
	if st.Idle != 1 || st.Discarded != 1 {
		t.Fatalf("stats %+v, want 1 idle / 1 discarded", st)
	}
}

func TestWarmpoolSatisfiesModulePool(t *testing.T) {
	var _ dram.ModulePool = NewWarmpool(0)
}
