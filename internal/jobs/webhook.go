package jobs

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// WebhookSpec is a job's completion callback: the terminal Status is
// POSTed to URL as JSON, signed with Secret.
type WebhookSpec struct {
	URL string `json:"url"`
	// Secret keys the HMAC-SHA256 body signature carried in
	// X-Simra-Signature ("sha256=<hex>"). Empty means unsigned.
	Secret string `json:"secret,omitempty"`
}

// WebhookConfig bounds delivery.
type WebhookConfig struct {
	// MaxAttempts bounds delivery tries per callback (default 3).
	MaxAttempts int
	// Backoff is the wait before the first retry; it doubles per retry
	// (default 250ms).
	Backoff time.Duration
	// Timeout bounds each delivery request (default 10s).
	Timeout time.Duration
	// Client overrides the HTTP client (tests inject one; default
	// http.DefaultClient with Timeout applied per request).
	Client *http.Client
}

func (c WebhookConfig) withDefaults() WebhookConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = 250 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// Sign computes the hex HMAC-SHA256 of body under secret — the value
// carried (prefixed "sha256=") in X-Simra-Signature. Receivers recompute
// it to authenticate the callback.
func Sign(secret string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// webhookSender delivers terminal-status callbacks with bounded retry.
type webhookSender struct {
	cfg WebhookConfig
	wg  sync.WaitGroup

	mu         sync.Mutex
	deliveries int64
	retries    int64
	failures   int64
}

func newWebhookSender(cfg WebhookConfig) *webhookSender {
	return &webhookSender{cfg: cfg.withDefaults()}
}

func (s *webhookSender) counts() (deliveries, retries, failures int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deliveries, s.retries, s.failures
}

// wait blocks until in-flight deliveries settle (manager shutdown).
func (s *webhookSender) wait() { s.wg.Wait() }

// deliver dispatches the callback asynchronously: attempts are retried
// with doubling backoff until a 2xx, the attempt budget is spent, or ctx
// is cancelled.
func (s *webhookSender) deliver(ctx context.Context, spec WebhookSpec, status Status) {
	body, err := json.Marshal(status)
	if err != nil {
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		backoff := s.cfg.Backoff
		for attempt := 1; attempt <= s.cfg.MaxAttempts; attempt++ {
			if attempt > 1 {
				s.mu.Lock()
				s.retries++
				s.mu.Unlock()
			}
			if s.post(ctx, spec, status, body) {
				s.mu.Lock()
				s.deliveries++
				s.mu.Unlock()
				return
			}
			if attempt == s.cfg.MaxAttempts {
				break
			}
			select {
			case <-ctx.Done():
				s.mu.Lock()
				s.failures++
				s.mu.Unlock()
				return
			case <-time.After(backoff):
				backoff *= 2
			}
		}
		s.mu.Lock()
		s.failures++
		s.mu.Unlock()
	}()
}

// post performs one delivery attempt; true means acknowledged 2xx.
func (s *webhookSender) post(ctx context.Context, spec WebhookSpec, status Status, body []byte) bool {
	reqCtx, cancel := context.WithTimeout(ctx, s.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, http.MethodPost, spec.URL, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Simra-Job", status.ID)
	req.Header.Set("X-Simra-Event", string(status.State))
	if spec.Secret != "" {
		req.Header.Set("X-Simra-Signature", "sha256="+Sign(spec.Secret, body))
	}
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}
