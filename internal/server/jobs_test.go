package server

import (
	"bufio"
	"context"
	"crypto/hmac"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// envelopeJobBody is the acceptance submission: the same envelope search
// the committed simra-scan golden pins.
const envelopeJobBody = `{"kind":"scenario","scenario":{"envelope":"t2","grid":"nominal","cols":128,"groups":2,"banks":1,"trials":2}}`

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	ID    int64
	Type  string
	Data  string
	PData jobs.Progress
}

// readSSE consumes an SSE stream to its end, parsing frames and progress
// payloads.
func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var out []sseEvent
	var ev sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			fmt.Sscanf(line, "id: %d", &ev.ID)
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if ev.Type == "" && ev.Data == "" {
				continue
			}
			if ev.Type == "progress" {
				if err := json.Unmarshal([]byte(ev.Data), &ev.PData); err != nil {
					t.Fatalf("progress payload %q: %v", ev.Data, err)
				}
			}
			out = append(out, ev)
			ev = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("SSE read: %v", err)
	}
	return out
}

// submitJob posts a job body and returns the decoded status.
func submitJob(t *testing.T, url, body string) (int, jobs.Status) {
	t.Helper()
	code, resp := postJSON(t, url+"/v1/jobs", body)
	var st jobs.Status
	if code < 300 {
		if err := json.Unmarshal([]byte(resp), &st); err != nil {
			t.Fatalf("job status decode: %v (%s)", err, resp)
		}
	}
	return code, st
}

// TestEnvelopeJobEndToEnd is the tentpole acceptance test: an
// envelope-search job streams monotonically increasing shard progress
// over SSE; its result bytes are identical to the blocking POST
// /v1/scenario and to the committed simra-scan golden; and a second
// identical submission completes instantly from the cache without a new
// execution.
func TestEnvelopeJobEndToEnd(t *testing.T) {
	golden, err := os.ReadFile("../../cmd/simra-scan/testdata/envelope.golden")
	if err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{JobPoll: time.Millisecond})

	code, st := submitJob(t, ts.URL, envelopeJobBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", code)
	}
	if st.Kind != "scenario" || !strings.HasPrefix(st.ID, "scenario-") {
		t.Fatalf("job identity %s/%s", st.ID, st.Kind)
	}

	// A second subscriber that disconnects mid-stream must not disturb the
	// job or leak its SSE slot.
	discCtx, disconnect := context.WithCancel(context.Background())
	discReq, _ := http.NewRequestWithContext(discCtx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	discResp, err := http.DefaultClient.Do(discReq)
	if err != nil {
		t.Fatal(err)
	}
	defer discResp.Body.Close()

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events status %d", resp.StatusCode)
	}
	buf := make([]byte, 1)
	if _, err := discResp.Body.Read(buf); err != nil {
		t.Fatalf("disconnecting subscriber read nothing: %v", err)
	}
	disconnect()

	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, ev := range events {
		if ev.ID != int64(i+1) {
			t.Fatalf("event %d has ID %d; want sequential from 1", i, ev.ID)
		}
	}
	var progress []jobs.Progress
	for _, ev := range events {
		if ev.Type == "progress" {
			progress = append(progress, ev.PData)
		}
	}
	if len(progress) == 0 {
		t.Fatal("no progress events in the stream")
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].ShardsDone < progress[i-1].ShardsDone {
			t.Fatalf("shard progress regressed: %d after %d",
				progress[i].ShardsDone, progress[i-1].ShardsDone)
		}
	}
	last := progress[len(progress)-1]
	if last.ShardsDone == 0 || last.ShardsDone != last.ShardsTotal {
		t.Fatalf("terminal progress %+v; want all shards done", last)
	}
	final := events[len(events)-1]
	if final.Type != "done" || !strings.Contains(final.Data, string(jobs.StateSucceeded)) {
		t.Fatalf("stream ended with %s %s", final.Type, final.Data)
	}

	// Result bytes: golden ≡ job result ≡ blocking route.
	res, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", res.StatusCode, body)
	}
	if string(body) != string(golden) {
		t.Fatal("job result bytes differ from the simra-scan envelope golden")
	}
	if got := s.Executions("scenario"); got != 1 {
		t.Fatalf("scenario executions after job = %d, want 1", got)
	}
	blockCode, blockBody := postJSON(t, ts.URL+"/v1/scenario?raw=1",
		`{"envelope":"t2","grid":"nominal","cols":128,"groups":2,"banks":1,"trials":2}`)
	if blockCode != http.StatusOK {
		t.Fatalf("blocking status %d", blockCode)
	}
	if blockBody != string(body) {
		t.Fatal("blocking POST bytes differ from the job result")
	}
	if got := s.Executions("scenario"); got != 1 {
		t.Fatalf("blocking POST after job re-executed: %d executions", got)
	}

	// Resubmission while the job is stored dedupes onto it.
	code, dup := submitJob(t, ts.URL, envelopeJobBody)
	if code != http.StatusOK || dup.ID != st.ID || dup.State != jobs.StateSucceeded {
		t.Fatalf("dedupe: code %d, %s/%s", code, dup.ID, dup.State)
	}

	// After the job expires, a fresh submission completes instantly from
	// the response cache: no queueing, no execution.
	if n := s.jobs.SweepExpired(time.Now().Add(24 * time.Hour)); n == 0 {
		t.Fatal("expiry sweep dropped nothing")
	}
	code, inst := submitJob(t, ts.URL, envelopeJobBody)
	if code != http.StatusOK {
		t.Fatalf("cached submit status %d, want 200", code)
	}
	if inst.State != jobs.StateSucceeded || !inst.Cached {
		t.Fatalf("cached submit state %s cached=%v; want instant cached success", inst.State, inst.Cached)
	}
	if got := s.Executions("scenario"); got != 1 {
		t.Fatalf("cached resubmission executed: %d executions, want 1", got)
	}

	// The disconnected subscriber's slot must have been released.
	deadline := time.Now().Add(5 * time.Second)
	for s.JobMetrics().SSEConnections != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("SSE connections still %d after streams closed", s.JobMetrics().SSEConnections)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// heavyGridBody is a deliberately slow (~hundreds of ms) scenario grid,
// long enough for the monitor to stream live progress and for
// cancellation to land mid-run.
const heavyGridBody = `{"kind":"scenario","scenario":{"axes":"t2=1.5,2,2.5,3","cols":256,"groups":4,"banks":2,"trials":600}}`

// TestJobProgressStreaming attaches an SSE subscriber while a long grid
// job is still executing and asserts the monitor streams monotonically
// increasing shard progress live — several intermediate snapshots, not
// just the terminal one.
func TestJobProgressStreaming(t *testing.T) {
	_, ts := testServer(t, Config{JobPoll: time.Millisecond})
	code, st := submitJob(t, ts.URL, heavyGridBody)
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	var progress []jobs.Progress
	for _, ev := range events {
		if ev.Type == "progress" {
			progress = append(progress, ev.PData)
		}
	}
	if len(progress) < 3 {
		t.Fatalf("only %d progress events; want live intermediate snapshots", len(progress))
	}
	distinct := 1
	for i := 1; i < len(progress); i++ {
		if progress[i].ShardsDone < progress[i-1].ShardsDone {
			t.Fatalf("shard progress regressed: %d after %d",
				progress[i].ShardsDone, progress[i-1].ShardsDone)
		}
		if progress[i].ShardsDone > progress[i-1].ShardsDone {
			distinct++
		}
	}
	if distinct < 2 {
		t.Fatal("progress never advanced across events")
	}
	if final := events[len(events)-1]; final.Type != "done" || !strings.Contains(final.Data, string(jobs.StateSucceeded)) {
		t.Fatalf("stream ended with %s %s", final.Type, final.Data)
	}
}

// TestJobCancellation covers both cancellation paths: a queued job (the
// single worker is busy) cancels instantly; the running job cancels via
// its execution context. /result reflects cancellation with 410.
func TestJobCancellation(t *testing.T) {
	_, ts := testServer(t, Config{JobWorkers: 1, JobPoll: time.Millisecond})
	// The same grid under a distinct module seed: the process-wide
	// registries (static tables, samplings, data fills, shard memo) are
	// all keyed by module identity, so the fresh seed guarantees this job
	// computes cold even after sibling tests ran the default-seed grid —
	// the cancel must land mid-run, not on a cache replay.
	running := `{"kind":"scenario","scenario":{"axes":"t2=1.5,2,2.5,3","cols":256,"groups":4,"banks":2,"trials":600,"seed":777}}`
	queued := `{"kind":"sweep","sweep":{"figure":"3","trials":1,"groups":1,"banks":1,"cols":64}}`

	code, stRun := submitJob(t, ts.URL, running)
	if code != http.StatusAccepted {
		t.Fatalf("submit running: %d", code)
	}
	code, stQueued := submitJob(t, ts.URL, queued)
	if code != http.StatusAccepted {
		t.Fatalf("submit queued: %d", code)
	}

	del := func(id string) (int, jobs.Status) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st jobs.Status
		json.NewDecoder(resp.Body).Decode(&st)
		return resp.StatusCode, st
	}

	if code, st := del(stQueued.ID); code != http.StatusOK || st.State != jobs.StateCanceled {
		t.Fatalf("cancel queued: %d %s", code, st.State)
	}
	code, _ = del(stRun.ID)
	if code != http.StatusOK {
		t.Fatalf("cancel running: %d", code)
	}
	// The running job settles as canceled once its context unwinds.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + stRun.ID)
		if err != nil {
			t.Fatal(err)
		}
		var st jobs.Status
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if st.State.Terminal() {
			if st.State != jobs.StateCanceled {
				t.Fatalf("running job settled as %s, want canceled", st.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("running job never settled after cancel")
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, err := http.Get(ts.URL + "/v1/jobs/" + stQueued.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusGone {
		t.Fatalf("result of canceled job: %d, want 410", res.StatusCode)
	}
}

// TestJobValidation pins the submission contract: malformed bodies 400,
// unknown kinds and invalid inner requests 422 (reusing the blocking
// routes' messages), unknown IDs 404 on every job route.
func TestJobValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"kind":`); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"nope"}`); code != http.StatusUnprocessableEntity ||
		!strings.Contains(body, "valid: sweep, workload, trng, scenario") {
		t.Fatalf("unknown kind: %d %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"sweep","sweep":{"figure":"99"}}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("unknown figure: %d %s", code, body)
	}
	if code, body := postJSON(t, ts.URL+"/v1/jobs",
		`{"kind":"trng","trng":{"bytes":8},"webhook":{"secret":"s"}}`); code != http.StatusUnprocessableEntity ||
		!strings.Contains(body, "webhook needs a url") {
		t.Fatalf("webhook without url: %d %s", code, body)
	}
	for _, route := range []string{"/v1/jobs/nope", "/v1/jobs/nope/result", "/v1/jobs/nope/events"} {
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", route, resp.StatusCode)
		}
	}
}

// TestJobSSECapAndReplay pins the event-stream edge cases: beyond the
// connection cap subscribers shed with 503 + Retry-After, and a
// reconnecting subscriber resumes from Last-Event-ID without replaying
// already-seen events.
func TestJobSSECapAndReplay(t *testing.T) {
	s, ts := testServer(t, Config{MaxSSE: 1})
	code, st := submitJob(t, ts.URL, `{"kind":"trng","trng":{"bytes":16}}`)
	if code >= 300 {
		t.Fatalf("submit: %d", code)
	}
	if _, err := s.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	release, _, ok := s.jobs.AcquireSSE("test-probe")
	if !ok {
		t.Fatal("test could not claim the only SSE slot")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscriber got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-cap rejection missing Retry-After")
	}
	release()

	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	full := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(full) < 2 {
		t.Fatalf("full stream has %d events", len(full))
	}

	// Resume after the penultimate event: exactly the tail replays. Both
	// the standard header and the query-parameter fallback work.
	cursor := full[len(full)-2].ID
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	tail := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(tail) != 1 || tail[0].ID != full[len(full)-1].ID || tail[0].Type != "done" {
		t.Fatalf("header replay from %d returned %+v; want just the done event", cursor, tail)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events?last_event_id=" + fmt.Sprint(cursor))
	if err != nil {
		t.Fatal(err)
	}
	tail = readSSE(t, resp.Body)
	resp.Body.Close()
	if len(tail) != 1 || tail[0].ID != full[len(full)-1].ID {
		t.Fatalf("query replay from %d returned %+v", cursor, tail)
	}
	if s.JobMetrics().SSERejected == 0 {
		t.Fatal("sse_rejected counter never moved")
	}
}

// TestJobSSEPerClientCap is the fairness acceptance test: with client
// auth on, one tenant sitting at its per-client SSE cap sheds with 503 +
// Retry-After (reason "client") while a second authenticated client
// still opens its stream from the global pool, and the rejection metric
// splits by reason.
func TestJobSSEPerClientCap(t *testing.T) {
	s, ts := testServer(t, Config{
		MaxSSE:          4,
		MaxSSEPerClient: 1,
		AuthTokens:      map[string]string{"alice-token": "alice", "bob-token": "bob"},
	})
	get := func(token, path string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("Authorization", "Bearer "+token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"kind":"trng","trng":{"bytes":16}}`))
	req.Header.Set("Authorization", "Bearer alice-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st jobs.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := s.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}

	// Alice holds her only per-client slot.
	release, _, ok := s.jobs.AcquireSSE("alice")
	if !ok {
		t.Fatal("test could not claim alice's SSE slot")
	}
	defer release()

	resp = get("alice-token", "/v1/jobs/"+st.ID+"/events")
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("alice over her cap got %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("per-client rejection missing Retry-After")
	}
	if !strings.Contains(string(body), "client") {
		t.Fatalf("rejection envelope does not name the client cap: %s", body)
	}

	// Bob — a different authenticated client — still streams.
	resp = get("bob-token", "/v1/jobs/"+st.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bob got %d although the global pool has room", resp.StatusCode)
	}
	evs := readSSE(t, resp.Body)
	resp.Body.Close()
	if len(evs) == 0 || evs[len(evs)-1].Type != "done" {
		t.Fatalf("bob's stream malformed: %+v", evs)
	}

	jm := s.JobMetrics()
	if jm.SSERejectedClient != 1 || jm.SSERejectedGlobal != 0 {
		t.Fatalf("rejection split client=%d global=%d, want 1/0", jm.SSERejectedClient, jm.SSERejectedGlobal)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), `simra_jobs_sse_rejected_total{reason="client"} 1`) ||
		!strings.Contains(string(metrics), `simra_jobs_sse_rejected_total{reason="global"} 0`) {
		t.Fatalf("metrics page missing the split rejection counters:\n%s", metrics)
	}
}

// TestJobWebhookDelivery asserts the completion callback arrives signed:
// the sink recomputes the HMAC over the received body and the payload
// identifies the job and terminal state.
func TestJobWebhookDelivery(t *testing.T) {
	type delivery struct {
		body []byte
		sig  string
		job  string
	}
	got := make(chan delivery, 1)
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got <- delivery{body: body, sig: r.Header.Get("X-Simra-Signature"), job: r.Header.Get("X-Simra-Job")}
	}))
	defer sink.Close()

	s, ts := testServer(t, Config{})
	body := fmt.Sprintf(`{"kind":"trng","trng":{"bytes":16},"webhook":{"url":%q,"secret":"s3cret"}}`, sink.URL)
	code, st := submitJob(t, ts.URL, body)
	if code >= 300 {
		t.Fatalf("submit: %d", code)
	}
	select {
	case d := <-got:
		want := "sha256=" + jobs.Sign("s3cret", d.body)
		if !hmac.Equal([]byte(d.sig), []byte(want)) {
			t.Fatalf("signature %q, want %q", d.sig, want)
		}
		if d.job != st.ID {
			t.Fatalf("delivery names job %q, want %q", d.job, st.ID)
		}
		var payload jobs.Status
		if err := json.Unmarshal(d.body, &payload); err != nil {
			t.Fatal(err)
		}
		if payload.State != jobs.StateSucceeded {
			t.Fatalf("payload state %s", payload.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("webhook never delivered")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.JobMetrics().WebhookDeliveries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("webhook delivery counter never moved")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestJobsListAndMetrics covers GET /v1/jobs and the /metrics additions.
func TestJobsListAndMetrics(t *testing.T) {
	s, ts := testServer(t, Config{})
	code, st := submitJob(t, ts.URL, `{"kind":"trng","trng":{"bytes":16}}`)
	if code >= 300 {
		t.Fatalf("submit: %d", code)
	}
	if _, err := s.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []jobs.Status `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID {
		t.Fatalf("list %+v", list)
	}
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{
		"simra_jobs_submitted_total 1",
		"simra_jobs_completed_total 1",
		"simra_jobs_queued 0",
		"simra_jobs_running 0",
		"simra_jobs_sse_connections 0",
		"simra_serve_max_inflight",
		"simra_serve_max_queue",
		"simra_warmpool_misses_total",
	} {
		if !strings.Contains(string(page), metric) {
			t.Fatalf("/metrics missing %q:\n%s", metric, page)
		}
	}
}

// TestSubmitJobFacade covers the in-process facade surface the root
// package re-exports.
func TestSubmitJobFacade(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)
	st, existing, err := s.SubmitJob(JobRequest{Kind: "trng", TRNG: &TRNGRequest{Bytes: 16}})
	if err != nil || existing {
		t.Fatalf("SubmitJob: existing=%v err=%v", existing, err)
	}
	final, err := s.WaitJob(context.Background(), st.ID)
	if err != nil || final.State != jobs.StateSucceeded {
		t.Fatalf("WaitJob: %+v, %v", final, err)
	}
	again, err := s.JobStatus(st.ID)
	if err != nil || again.State != jobs.StateSucceeded {
		t.Fatalf("JobStatus: %+v, %v", again, err)
	}
	if _, err := s.JobStatus("missing"); err == nil {
		t.Fatal("JobStatus(unknown) succeeded")
	}
}
