package server

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/colenc"
)

// ColumnarContentType is the media type of columnar bulk-result payloads
// (the colenc framing, DESIGN.md §14). Requests negotiate it either with
// "format":"columnar" in the body or an Accept header naming this type.
const ColumnarContentType = "application/vnd.simra.columnar"

// wantsColumnar reports whether the request's Accept header asks for the
// columnar media type. It only applies when the body leaves the format
// empty — an explicit "format" always wins.
func wantsColumnar(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt, _, _ := strings.Cut(strings.TrimSpace(part), ";")
		if strings.TrimSpace(mt) == ColumnarContentType {
			return true
		}
	}
	return false
}

// acceptFormat defaults an empty body format from the Accept header
// before normalization.
func acceptFormat(r *http.Request, format string) string {
	if format == "" && wantsColumnar(r) {
		return "columnar"
	}
	return format
}

// keyTag is the whole-response cache key namespace for one request kind:
// columnar responses live under their own serve/<kind>/columnar/v1 tag,
// so the two formats never collide while the per-shard engine memos stay
// shared (neither format recomputes the other's shards).
func keyTag(kind, format string) string {
	if format == "columnar" {
		return "serve/" + kind + "/columnar/v1"
	}
	return "serve/" + kind + "/v1"
}

// columnarPage parses the ?batch / ?batch_rows continuation parameters.
// absent batch means the full stream; batch_rows defaults to
// colenc.DefaultBatchRows and requires batch.
func columnarPage(r *http.Request) (batch, batchRows int, paged bool, err error) {
	q := r.URL.Query()
	rawBatch, rawRows := q.Get("batch"), q.Get("batch_rows")
	if rawBatch == "" {
		if rawRows != "" {
			return 0, 0, false, fmt.Errorf("batch_rows requires a batch parameter")
		}
		return 0, 0, false, nil
	}
	batch, err = strconv.Atoi(rawBatch)
	if err != nil {
		return 0, 0, false, fmt.Errorf("malformed batch %q: want an integer", rawBatch)
	}
	batchRows = colenc.DefaultBatchRows
	if rawRows != "" {
		batchRows, err = strconv.Atoi(rawRows)
		if err != nil || batchRows <= 0 {
			return 0, 0, false, fmt.Errorf("malformed batch_rows %q: want a positive integer", rawRows)
		}
	}
	return batch, batchRows, true, nil
}

// writeColumnar serves one columnar payload: the full stream, or — under
// ?batch=N (&batch_rows=M) — one page re-framed as a standalone stream,
// with X-Simra-Batch-* continuation headers. Binary payloads never ride
// the JSON envelope (JSON would mangle the bytes); response metadata
// travels in headers instead.
func writeColumnar(w http.ResponseWriter, r *http.Request, output string, headers map[string]string) {
	batch, batchRows, paged, err := columnarPage(r)
	if err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	h := w.Header()
	body := []byte(output)
	if paged {
		page, pi, err := colenc.Page(body, batch, batchRows)
		if err != nil {
			status := http.StatusInternalServerError
			if strings.Contains(err.Error(), "out of range") {
				status = http.StatusUnprocessableEntity
			}
			writeError(w, r, err, status)
			return
		}
		body = page
		h.Set("X-Simra-Total-Rows", strconv.Itoa(pi.TotalRows))
		h.Set("X-Simra-Batch-Count", strconv.Itoa(pi.BatchCount))
		h.Set("X-Simra-Batch", strconv.Itoa(pi.Batch))
		h.Set("X-Simra-Batch-Rows", strconv.Itoa(pi.Rows))
		if pi.Batch < pi.BatchCount-1 {
			h.Set("X-Simra-Batch-Next", strconv.Itoa(pi.Batch+1))
		}
	} else {
		info, err := colenc.Info(body)
		if err != nil {
			writeError(w, r, err, http.StatusInternalServerError)
			return
		}
		h.Set("X-Simra-Total-Rows", strconv.Itoa(info.TotalRows))
		h.Set("X-Simra-Batch-Count", strconv.Itoa(info.BatchCount))
	}
	h.Set("Content-Type", ColumnarContentType)
	for k, v := range headers {
		h.Set(k, v)
	}
	w.Write(body)
}
