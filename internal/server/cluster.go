package server

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
)

// APIRevision names the served API surface (docs/api-spec.md documents
// it); /v1/version reports it so clients can pin against it.
const APIRevision = "v1"

// VersionInfo is the GET /v1/version document.
type VersionInfo struct {
	// Service is the serving binary's identity.
	Service string `json:"service"`
	// APIRevision is the served API surface ("v1").
	APIRevision string `json:"api_revision"`
	// GoVersion is the toolchain the binary was built with.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit the binary was built from (empty outside
	// a VCS build).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the build's working tree.
	Dirty bool `json:"dirty,omitempty"`
}

// Version reports the build and API revision of the running binary.
func Version() VersionInfo {
	v := VersionInfo{
		Service:     "simra-serve",
		APIRevision: APIRevision,
		GoVersion:   runtime.Version(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				v.Revision = kv.Value
			case "vcs.modified":
				v.Dirty = kv.Value == "true"
			}
		}
	}
	return v
}

// handleVersion is GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Version())
}

// role names this node's place in the fleet: "coordinator" when it fans
// shards out (in-process groups count), "worker" when it only serves
// shard executions for someone else's fleet, "single" otherwise.
func (s *Server) role() string {
	switch {
	case s.coord != nil:
		return "coordinator"
	case s.cfg.CachePeer != "":
		return "worker"
	default:
		return "single"
	}
}

// peerHealth is one peer's probe outcome in the /healthz document.
type peerHealth struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	Error   string `json:"error,omitempty"`
}

// healthResponse is the GET /healthz document. Status stays the leading
// field so existing `"status":"ok"` substring probes keep working.
type healthResponse struct {
	Status        string       `json:"status"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Role          string       `json:"role"`
	Groups        int          `json:"groups"`
	Peers         []peerHealth `json:"peers,omitempty"`
}

// handleHealth is GET /healthz: liveness plus the node's cluster role and
// — on a coordinator — each peer's probed health. A degraded peer never
// degrades this node's status: the coordinator falls back to local
// execution, so it stays "ok" and reports the peer individually.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := healthResponse{
		Status:        "ok",
		UptimeSeconds: math.Round(time.Since(s.start).Seconds()),
		Role:          s.role(),
		Groups:        len(s.groups),
	}
	if len(s.peers) > 0 {
		h.Peers = make([]peerHealth, len(s.peers))
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		var wg sync.WaitGroup
		for i, p := range s.peers {
			wg.Add(1)
			go func(i int, p *cluster.Peer) {
				defer wg.Done()
				ph := peerHealth{Name: p.Name(), Healthy: true}
				if err := p.Health(ctx); err != nil {
					ph.Healthy = false
					ph.Error = err.Error()
				}
				h.Peers[i] = ph
			}(i, p)
		}
		wg.Wait()
	}
	writeJSON(w, http.StatusOK, h)
}

// handleInternalShard is POST /v1/internal/shard: one shard execution on
// behalf of a coordinator. Execution is bounded by the shard-slot pool
// (independent of the public MaxInflight bound) and runs through the
// worker group's local-cache → shared-tier → compute path, so repeated
// shards are cache hits here too.
func (s *Server) handleInternalShard(w http.ResponseWriter, r *http.Request) {
	var req cluster.Request
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	if _, err := req.ParseKey(); err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	select {
	case s.shardSlots <- struct{}{}:
	case <-r.Context().Done():
		writeError(w, r, r.Context().Err(), http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.shardSlots }()
	out, err := s.worker.Exec(r.Context(), req)
	if err != nil {
		status := http.StatusInternalServerError
		if req.Kind != cluster.KindCore && req.Kind != cluster.KindWorkload {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, r, err, status)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(out)
}

// cacheKeyParam decodes the {key} path element of the internal cache
// routes.
func cacheKeyParam(r *http.Request) (cache.Key, error) {
	var k cache.Key
	b, err := hex.DecodeString(r.PathValue("key"))
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("bad cache key %q", r.PathValue("key"))
	}
	copy(k[:], b)
	return k, nil
}

// handleCacheGet is GET /v1/internal/cache/{key}: this node's hosted
// shared-tier store. Peers configured with -cache-peer pointing here
// read fleet-shared entries from it.
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	k, err := cacheKeyParam(r)
	if err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	b, ok := s.hosted.Get(k)
	if !ok {
		writeError(w, r, fmt.Errorf("cache entry not found"), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(b)
}

// handleCachePut is PUT /v1/internal/cache/{key}.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	k, err := cacheKeyParam(r)
	if err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	b, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	s.hosted.Put(k, b)
	w.WriteHeader(http.StatusNoContent)
}
