package server

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
)

// TestOpenAPIDocument checks the generated spec: deterministic bytes,
// valid JSON, every public route present with its verb, the columnar
// media type advertised on the bulk-result routes, and internal cluster
// routes excluded.
func TestOpenAPIDocument(t *testing.T) {
	s, ts := testServer(t, Config{})
	spec := s.OpenAPI()
	if string(spec) != string(s.OpenAPI()) {
		t.Fatal("OpenAPI() is not deterministic")
	}
	if !strings.HasSuffix(string(spec), "\n") {
		t.Fatal("spec does not end with a newline")
	}

	var doc struct {
		OpenAPI string                                `json:"openapi"`
		Info    struct{ Version string }              `json:"info"`
		Paths   map[string]map[string]json.RawMessage `json:"paths"`
	}
	if err := json.Unmarshal(spec, &doc); err != nil {
		t.Fatalf("spec is not valid JSON: %v", err)
	}
	if doc.OpenAPI == "" || doc.Info.Version != Version().APIRevision {
		t.Fatalf("spec header: openapi=%q version=%q", doc.OpenAPI, doc.Info.Version)
	}
	for path, verb := range map[string]string{
		"/v1/sweep":            "post",
		"/v1/workload":         "post",
		"/v1/trng":             "post",
		"/v1/scenario":         "post",
		"/v1/batch":            "post",
		"/v1/jobs":             "post",
		"/v1/jobs/{id}":        "get",
		"/v1/jobs/{id}/events": "get",
		"/v1/jobs/{id}/result": "get",
		"/v1/version":          "get",
		"/v1/openapi.json":     "get",
		"/healthz":             "get",
		"/metrics":             "get",
	} {
		if _, ok := doc.Paths[path][verb]; !ok {
			t.Errorf("spec is missing %s %s", verb, path)
		}
	}
	for path := range doc.Paths {
		if strings.Contains(path, "/internal/") {
			t.Errorf("fleet-internal route %s leaked into the public spec", path)
		}
	}
	for _, path := range []string{"/v1/sweep", "/v1/workload", "/v1/scenario", "/v1/jobs/{id}/result"} {
		if !strings.Contains(string(doc.Paths[path]["post"])+string(doc.Paths[path]["get"]),
			ColumnarContentType) {
			t.Errorf("%s does not advertise the columnar media type", path)
		}
	}

	// The spec serves live at GET /v1/openapi.json, byte-identical.
	resp, err := http.Get(ts.URL + "/v1/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	served, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != string(spec) {
		t.Fatal("GET /v1/openapi.json differs from OpenAPI()")
	}
}

// TestOpenAPISpecCommitted is the in-repo half of CI's spec-sync job:
// the committed docs/openapi.json must match the live route table.
// Regenerate with: go run ./cmd/simra-serve -dump-openapi > docs/openapi.json
func TestOpenAPISpecCommitted(t *testing.T) {
	committed, err := os.ReadFile("../../docs/openapi.json")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{})
	defer s.Close()
	if string(committed) != string(s.OpenAPI()) {
		t.Fatal("docs/openapi.json is stale; regenerate with: go run ./cmd/simra-serve -dump-openapi > docs/openapi.json")
	}
}
