package server

import (
	"fmt"
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/charexp"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/trng"
	"repro/internal/workload"
)

// SweepRequest asks for one characterization figure/table, with the same
// parameter surface as cmd/simra-char. The engine worker count is a
// server-level setting, not a request parameter: results are
// bit-identical for every worker count, so exposing it would only
// fragment the cache.
type SweepRequest struct {
	// Figure is a charexp figure/table id ("3", "4a", …, "table1", "14",
	// "modules"); default "3".
	Figure string `json:"figure"`
	// Full selects the full 18-module Table-2 fleet instead of the
	// representative subset.
	Full bool `json:"full,omitempty"`
	// Trials, Groups, Banks, Columns and Seed override the reduced-scale
	// defaults (0 = default), exactly as the CLI flags do.
	Trials  int    `json:"trials,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Banks   int    `json:"banks,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Sets bounds the Fig. 15 Monte-Carlo sampling (0 = 200).
	Sets int `json:"sets,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// normalizeFormat defaults an empty render format to "text".
func normalizeFormat(f string) string {
	if f == "" {
		return "text"
	}
	return f
}

// validFormat accepts the three render formats every tabular family
// serves. The message convention "valid: text, csv, columnar" feeds the
// 422 error envelope's valid_options list.
func validFormat(f string) bool {
	return f == "text" || f == "csv" || f == "columnar"
}

// normalize fills defaults and validates the request.
func (q SweepRequest) normalize() (SweepRequest, error) {
	if q.Figure == "" {
		q.Figure = "3"
	}
	if q.Format = normalizeFormat(q.Format); !validFormat(q.Format) {
		return q, fmt.Errorf("unknown format %q; valid: text, csv, columnar", q.Format)
	}
	known := q.Figure == "13" // alias of the Fig. 14 walkthrough
	for _, id := range charexp.FigureIDs() {
		if q.Figure == id {
			known = true
			break
		}
	}
	if !known {
		return q, fmt.Errorf("unknown figure %q; valid: %s",
			q.Figure, strings.Join(charexp.FigureIDs(), ", "))
	}
	if q.Sets <= 0 {
		q.Sets = 200
	}
	if q.Figure != "15" {
		// Sets only affects Fig. 15; normalizing it away keeps one cache
		// entry per figure regardless of the requested value.
		q.Sets = 0
	}
	return q, nil
}

// config builds the charexp configuration exactly as cmd/simra-char does
// for the same parameters, so the rendered bytes match the CLI's.
func (q SweepRequest) config() charexp.Config {
	cfg := charexp.DefaultConfig()
	fleetCfg := fleet.DefaultConfig()
	fleetCfg.Columns = 512
	if q.Columns > 0 {
		fleetCfg.Columns = q.Columns
	}
	if q.Full {
		cfg.Fleet = fleet.Modules(fleetCfg)
	} else {
		cfg.Fleet = fleet.Representative(fleetCfg)
	}
	if q.Trials > 0 {
		cfg.Trials = q.Trials
	}
	if q.Groups > 0 {
		cfg.GroupsPerSubarray = q.Groups
	}
	if q.Banks > 0 {
		cfg.Banks = q.Banks
	}
	if q.Seed != 0 {
		cfg.Seed = q.Seed
	}
	return cfg
}

// key is the normalized request's content hash: the whole-response cache
// address.
func (q SweepRequest) key() cache.Key {
	return cache.NewHasher().
		Str(keyTag("sweep", q.Format)).
		Str(q.Figure).Bool(q.Full).
		Int(q.Trials).Int(q.Groups).Int(q.Banks).Int(q.Columns).
		U64(q.Seed).Int(q.Sets).Str(q.Format).
		Sum()
}

// WorkloadRequest asks for a fleet-wide workload run, with the same
// parameter surface as cmd/simra-work (minus -workers; see SweepRequest).
type WorkloadRequest struct {
	// Workloads is "all" (default) or a comma-separated list of names.
	Workloads string `json:"workloads,omitempty"`
	// Modules is "representative" (default), "full", "samsung" or "all".
	Modules string `json:"modules,omitempty"`
	// MaxX, Columns and Seed override the defaults (0 = default).
	MaxX    int    `json:"maxx,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// normalize fills defaults and validates the request by resolving it.
func (q WorkloadRequest) normalize() (WorkloadRequest, error) {
	if q.Workloads == "" {
		q.Workloads = "all"
	}
	if q.Modules == "" {
		q.Modules = "representative"
	}
	if q.Format = normalizeFormat(q.Format); !validFormat(q.Format) {
		return q, fmt.Errorf("unknown format %q; valid: text, csv, columnar", q.Format)
	}
	if _, err := q.options().Resolve(); err != nil {
		return q, err
	}
	return q, nil
}

// options maps the request onto the shared CLI resolution.
func (q WorkloadRequest) options() workload.Options {
	return workload.Options{
		Workloads: q.Workloads,
		Modules:   q.Modules,
		MaxX:      q.MaxX,
		Columns:   q.Columns,
		Seed:      q.Seed,
	}
}

// key is the normalized request's content hash.
func (q WorkloadRequest) key() cache.Key {
	return cache.NewHasher().
		Str(keyTag("workload", q.Format)).
		Str(q.Workloads).Str(q.Modules).
		Int(q.MaxX).Int(q.Columns).U64(q.Seed).Str(q.Format).
		Sum()
}

// TRNGRequest asks for health-screened random bytes from the simulated
// TRNG, with the same parameter surface as cmd/simra-trng. The response
// is the deterministic hex dump for the requested (seed, rows) stream.
type TRNGRequest struct {
	// Bytes is the number of random bytes (default 32, max 1 MiB).
	Bytes int `json:"bytes,omitempty"`
	// Seed is the module's process-variation seed (default 0x7e57).
	Seed uint64 `json:"seed,omitempty"`
	// Rows is the activation group size, a power of two in [2, 32]
	// (default 32).
	Rows int `json:"rows,omitempty"`
}

// normalize fills defaults and validates bounds.
func (q TRNGRequest) normalize() (TRNGRequest, error) {
	if q.Bytes == 0 {
		q.Bytes = 32
	}
	if q.Seed == 0 {
		q.Seed = 0x7e57
	}
	if q.Rows == 0 {
		q.Rows = 32
	}
	if q.Bytes < 0 || q.Bytes > 1<<20 {
		return q, fmt.Errorf("bytes must be in (0, 1Mi]")
	}
	if q.Rows < 2 || q.Rows&(q.Rows-1) != 0 || q.Rows > 32 {
		return q, fmt.Errorf("rows must be a power of two in [2, 32]")
	}
	return q, nil
}

// options maps the request onto the shared generation loop.
func (q TRNGRequest) options() trng.Options {
	return trng.Options{Bytes: q.Bytes, Seed: q.Seed, Rows: q.Rows}
}

// key is the normalized request's content hash.
func (q TRNGRequest) key() cache.Key {
	return cache.NewHasher().
		Str("serve/trng/v1").
		Int(q.Bytes).U64(q.Seed).Int(q.Rows).
		Sum()
}

// ScenarioRequest asks for an operating-envelope scenario run — a grid
// scan or an adaptive envelope search — with the same parameter surface
// as cmd/simra-scan (minus -workers; see SweepRequest). The response is
// byte-identical to the CLI's stdout for the same parameters.
type ScenarioRequest struct {
	// Op is the operation family: "activation" (default), "maj" or "copy".
	Op string `json:"op,omitempty"`
	// Grid names a preset axis matrix ("nominal", "timing" — the default —
	// "thermal", "voltage", "pattern", "aging", "full").
	Grid string `json:"grid,omitempty"`
	// Axes overrides preset axes, e.g. "t2=1.5,3;temp=50,90".
	Axes string `json:"axes,omitempty"`
	// Envelope selects adaptive envelope search on the named axis
	// ("" = grid scan); Target is its success threshold (0 = 0.9).
	Envelope string  `json:"envelope,omitempty"`
	Target   float64 `json:"target,omitempty"`
	// Modules is "representative" (default) or "full".
	Modules string `json:"modules,omitempty"`
	// X, N, Trials, Groups, Banks, Columns and Seed override the defaults
	// (0 = default), exactly as the CLI flags do.
	X       int    `json:"x,omitempty"`
	N       int    `json:"n,omitempty"`
	Trials  int    `json:"trials,omitempty"`
	Groups  int    `json:"groups,omitempty"`
	Banks   int    `json:"banks,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// normalize fills defaults and validates the request by resolving it.
func (q ScenarioRequest) normalize() (ScenarioRequest, error) {
	if q.Op == "" {
		q.Op = "activation"
	}
	if q.Grid == "" {
		q.Grid = "timing"
	}
	if q.Modules == "" {
		q.Modules = "representative"
	}
	if q.Format = normalizeFormat(q.Format); !validFormat(q.Format) {
		return q, fmt.Errorf("unknown format %q; valid: text, csv, columnar", q.Format)
	}
	if q.Envelope != "" && q.Target == 0 {
		// Explicit default so {"envelope":"t2"} and
		// {"envelope":"t2","target":0.9} share one cache entry.
		q.Target = 0.9
	}
	if _, err := q.options().Resolve(); err != nil {
		return q, err
	}
	return q, nil
}

// options maps the request onto the shared CLI resolution.
func (q ScenarioRequest) options() scenario.Options {
	return scenario.Options{
		Op:       q.Op,
		Grid:     q.Grid,
		Axes:     q.Axes,
		Envelope: q.Envelope,
		Target:   q.Target,
		Modules:  q.Modules,
		X:        q.X,
		N:        q.N,
		Trials:   q.Trials,
		Groups:   q.Groups,
		Banks:    q.Banks,
		Columns:  q.Columns,
		Seed:     q.Seed,
	}
}

// key is the normalized request's content hash.
func (q ScenarioRequest) key() cache.Key {
	return cache.NewHasher().
		Str(keyTag("scenario", q.Format)).
		Str(q.Op).Str(q.Grid).Str(q.Axes).
		Str(q.Envelope).F64(q.Target).Str(q.Modules).
		Int(q.X).Int(q.N).
		Int(q.Trials).Int(q.Groups).Int(q.Banks).Int(q.Columns).
		U64(q.Seed).Str(q.Format).
		Sum()
}

// CampaignRequest asks for a fleet-design campaign — the ranked search
// over Table-2 module mixes for the best reliable throughput per watt on
// a target workload — with the same parameter surface as
// cmd/simra-campaign (minus -workers; see SweepRequest). The response is
// byte-identical to the CLI's stdout for the same parameters.
type CampaignRequest struct {
	// Workload is the target workload's name (default "bitmap-scan").
	Workload string `json:"workload,omitempty"`
	// FleetSize is the number of modules per candidate mix (0 = 3, max 6).
	FleetSize int `json:"size,omitempty"`
	// Top bounds the ranked candidates in the report (0 = 10).
	Top int `json:"top,omitempty"`
	// MaxX, Columns and Seed override the defaults (0 = default).
	MaxX    int    `json:"maxx,omitempty"`
	Columns int    `json:"cols,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	// Format is "text" (default), "csv" or "columnar".
	Format string `json:"format,omitempty"`
}

// normalize fills defaults and validates the request by resolving it.
func (q CampaignRequest) normalize() (CampaignRequest, error) {
	if q.Workload == "" {
		q.Workload = "bitmap-scan"
	}
	if q.Format = normalizeFormat(q.Format); !validFormat(q.Format) {
		return q, fmt.Errorf("unknown format %q; valid: text, csv, columnar", q.Format)
	}
	if _, err := q.options().Resolve(); err != nil {
		return q, err
	}
	return q, nil
}

// options maps the request onto the shared CLI resolution.
func (q CampaignRequest) options() campaign.Options {
	return campaign.Options{
		Workload:  q.Workload,
		FleetSize: q.FleetSize,
		Top:       q.Top,
		MaxX:      q.MaxX,
		Columns:   q.Columns,
		Seed:      q.Seed,
	}
}

// key is the normalized request's content hash.
func (q CampaignRequest) key() cache.Key {
	return cache.NewHasher().
		Str(keyTag("campaign", q.Format)).
		Str(q.Workload).Int(q.FleetSize).Int(q.Top).
		Int(q.MaxX).Int(q.Columns).U64(q.Seed).Str(q.Format).
		Sum()
}

// BatchItem is one request of a batch, discriminated by Kind.
type BatchItem struct {
	Kind     string           `json:"kind"` // "sweep", "workload", "trng", "scenario" or "campaign"
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Workload *WorkloadRequest `json:"workload,omitempty"`
	TRNG     *TRNGRequest     `json:"trng,omitempty"`
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
	Campaign *CampaignRequest `json:"campaign,omitempty"`
}

// format returns the item's requested render format, "" when the inner
// request is absent or the kind has none.
func (b BatchItem) format() string {
	switch b.Kind {
	case "sweep":
		if b.Sweep != nil {
			return b.Sweep.Format
		}
	case "workload":
		if b.Workload != nil {
			return b.Workload.Format
		}
	case "scenario":
		if b.Scenario != nil {
			return b.Scenario.Format
		}
	case "campaign":
		if b.Campaign != nil {
			return b.Campaign.Format
		}
	}
	return ""
}

// BatchRequest submits several requests in one round trip. Items execute
// in order; each one goes through the same cache + coalescing path as its
// dedicated endpoint, so a batch of identical items still costs one
// engine run.
type BatchRequest struct {
	Requests []BatchItem `json:"requests"`
}

// Response is the JSON envelope of every serving result.
type Response struct {
	// Kind echoes the request kind.
	Kind string `json:"kind"`
	// Key is the canonical content hash the result is cached under.
	Key string `json:"key"`
	// Cached reports whether this response was served without running the
	// engine (a cache hit, or coalesced onto a concurrent identical run).
	Cached bool `json:"cached"`
	// Output is the rendered result: for sweep and workload requests it is
	// byte-identical to the corresponding CLI's stdout for the same
	// parameters.
	Output string `json:"output"`
	// Error is set (with an empty Output) when the item failed; batch
	// siblings still execute.
	Error string `json:"error,omitempty"`
}

// BatchResponse carries one Response per batch item, in request order.
type BatchResponse struct {
	Responses []Response `json:"responses"`
}
