package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a race-free audit-log sink for tests.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// doReq issues one request with optional bearer token and returns the
// response.
func doReq(t *testing.T, method, url, token, body string) (*http.Response, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(b)
}

// decodeEnvelope parses an error envelope body.
func decodeEnvelope(t *testing.T, body string) ErrorBody {
	t.Helper()
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("body %q is not an error envelope: %v", body, err)
	}
	return e.Error
}

// TestRequestIDPropagation: the chain echoes a sane incoming
// X-Request-ID, generates one otherwise, and stamps it into error
// bodies.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := testServer(t, Config{})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/trng", strings.NewReader("not json"))
	req.Header.Set("X-Request-ID", "my-trace-1234")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my-trace-1234" {
		t.Fatalf("echoed request ID %q; want the incoming one", got)
	}
	if e := decodeEnvelope(t, string(body)); e.RequestID != "my-trace-1234" {
		t.Fatalf("error body request_id %q; want my-trace-1234", e.RequestID)
	}
	// Without an incoming ID, one is generated.
	resp2, _ := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if got := resp2.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("generated request ID %q; want 16 hex chars", got)
	}
	// A header with whitespace (log-injection shaped) is replaced.
	req3, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	req3.Header.Set("X-Request-ID", "evil id")
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got == "evil id" || got == "" {
		t.Fatalf("unsafe incoming ID echoed as %q; want a generated one", got)
	}
}

// TestAuth pins the bearer-token surface: 401 without or with an unknown
// token, per-client identity with a valid one, public paths open.
func TestAuth(t *testing.T) {
	_, ts := testServer(t, Config{
		AuthTokens:   map[string]string{"alice-token": "alice"},
		ClusterToken: "fleet-secret",
	})
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: status %d; want 401", resp.StatusCode)
	}
	if e := decodeEnvelope(t, body); e.Code != "unauthorized" || e.RequestID == "" {
		t.Fatalf("401 envelope %+v; want code unauthorized with a request_id", e)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "wrong", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unknown token: status %d; want 401", resp.StatusCode)
	}
	if resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "alice-token", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid token: status %d (%s); want 200", resp.StatusCode, body)
	}
	// Public paths stay open without credentials.
	for _, p := range []string{"/healthz", "/metrics"} {
		if resp, _ := doReq(t, http.MethodGet, ts.URL+p, "", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without token: status %d; want 200 (public)", p, resp.StatusCode)
		}
	}
	// /v1/version requires client auth like every versioned route.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/version", "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("GET /v1/version without token: status %d; want 401", resp.StatusCode)
	}
}

// TestInternalRouteAuthorization: fleet-internal routes accept only the
// cluster token — a valid *client* token is authenticated but not
// authorized (403), anything else is 401.
func TestInternalRouteAuthorization(t *testing.T) {
	_, ts := testServer(t, Config{
		AuthTokens:   map[string]string{"alice-token": "alice"},
		ClusterToken: "fleet-secret",
	})
	key := strings.Repeat("ab", 32)
	url := ts.URL + "/v1/internal/cache/" + key
	resp, body := doReq(t, http.MethodGet, url, "alice-token", "")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("client token on internal route: status %d; want 403", resp.StatusCode)
	}
	if e := decodeEnvelope(t, body); e.Code != "forbidden" {
		t.Fatalf("403 envelope code %q; want forbidden", e.Code)
	}
	if resp, _ := doReq(t, http.MethodGet, url, "", ""); resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token on internal route: status %d; want 401", resp.StatusCode)
	}
	// The cluster token passes auth; the empty hosted backend answers 404.
	resp, body = doReq(t, http.MethodGet, url, "fleet-secret", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cluster token on internal route: status %d (%s); want 404 (authorized, empty tier)", resp.StatusCode, body)
	}
	if e := decodeEnvelope(t, body); e.Code != "not_found" {
		t.Fatalf("404 envelope code %q; want not_found", e.Code)
	}
}

// TestAuditLog: every request — served or rejected — lands as one JSON
// line carrying the request ID, client identity, method, path and
// status.
func TestAuditLog(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{
		AuthTokens: map[string]string{"alice-token": "alice"},
		AuditLog:   log,
	})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs", nil)
	req.Header.Set("X-Request-ID", "audit-rid-1")
	req.Header.Set("Authorization", "Bearer alice-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", "") // rejected: audited too

	var entries []auditEntry
	deadline := time.Now().Add(2 * time.Second)
	for {
		entries = entries[:0]
		for _, line := range strings.Split(strings.TrimSpace(log.String()), "\n") {
			if line == "" {
				continue
			}
			var e auditEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				t.Fatalf("audit line %q is not JSON: %v", line, err)
			}
			entries = append(entries, e)
		}
		if len(entries) >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if len(entries) != 2 {
		t.Fatalf("audit log has %d entries; want 2:\n%s", len(entries), log.String())
	}
	ok := entries[0]
	if ok.RequestID != "audit-rid-1" || ok.Client != "alice" || ok.Method != "GET" ||
		ok.Path != "/v1/jobs" || ok.Status != http.StatusOK || ok.Time == "" {
		t.Fatalf("audit entry %+v; want the authenticated request's identity", ok)
	}
	rejected := entries[1]
	if rejected.Status != http.StatusUnauthorized || rejected.Client != "" {
		t.Fatalf("rejected-request audit entry %+v; want status 401 with no client", rejected)
	}
}

// TestRateLimit: the per-client bucket admits the burst then sheds with
// 429 + Retry-After and the envelope.
func TestRateLimit(t *testing.T) {
	_, ts := testServer(t, Config{RatePerSec: 0.001, RateBurst: 2})
	for i := 0; i < 2; i++ {
		if resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%s); want 200 (inside burst)", i, resp.StatusCode, body)
		}
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted request: status %d; want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if e := decodeEnvelope(t, body); e.Code != "rate_limited" || e.RequestID == "" {
		t.Fatalf("429 envelope %+v; want code rate_limited with a request_id", e)
	}
	// Public paths are never limited.
	for i := 0; i < 4; i++ {
		if resp, _ := doReq(t, http.MethodGet, ts.URL+"/healthz", "", ""); resp.StatusCode != http.StatusOK {
			t.Fatal("rate limiter throttled /healthz")
		}
	}
}

// TestAuthRejectsBeforeRateLimit pins the chain ordering: an
// unauthenticated request must never spend a client's tokens.
func TestAuthRejectsBeforeRateLimit(t *testing.T) {
	_, ts := testServer(t, Config{
		AuthTokens: map[string]string{"alice-token": "alice"},
		RatePerSec: 0.001,
		RateBurst:  1,
	})
	for i := 0; i < 5; i++ {
		if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "", ""); resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("unauthenticated request %d: status %d; want 401 (never 429)", i, resp.StatusCode)
		}
	}
	// Alice's single burst token is still unspent.
	if resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "alice-token", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("alice's first request: status %d (%s); want 200 — 401s must not spend her tokens", resp.StatusCode, body)
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/v1/jobs", "alice-token", ""); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice's second request: status %d; want 429 (burst 1)", resp.StatusCode)
	}
}

// TestSSEThroughMiddleware: the audit middleware's status recorder must
// forward http.Flusher, or the jobs event stream dies with 500.
func TestSSEThroughMiddleware(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{AuditLog: log})
	status, body := postJSON(t, ts.URL+"/v1/jobs", `{"kind":"trng","trng":{"bytes":16,"seed":7}}`)
	if status != http.StatusAccepted && status != http.StatusOK {
		t.Fatalf("submit: status %d (%s)", status, body)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &st); err != nil || st.ID == "" {
		t.Fatalf("submit response %q carries no job id", body)
	}
	resp, events := doReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d (%s); want 200 — Flusher lost in the chain?", resp.StatusCode, events)
	}
	if !strings.Contains(events, "event: done") {
		t.Fatalf("event stream %q never reached done", events)
	}
}

// TestErrorCodeTable pins the status → code mapping and the
// valid-options extraction of the envelope across every status the API
// uses.
func TestErrorCodeTable(t *testing.T) {
	cases := []struct {
		status int
		code   string
	}{
		{http.StatusBadRequest, "bad_request"},
		{http.StatusUnauthorized, "unauthorized"},
		{http.StatusForbidden, "forbidden"},
		{http.StatusNotFound, "not_found"},
		{http.StatusMethodNotAllowed, "method_not_allowed"},
		{http.StatusGone, "gone"},
		{http.StatusUnprocessableEntity, "invalid_argument"},
		{http.StatusTooManyRequests, "rate_limited"},
		{http.StatusServiceUnavailable, "unavailable"},
		{http.StatusInternalServerError, "internal"},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/x", nil)
		req = req.WithContext(context.WithValue(req.Context(), ridCtxKey, "rid-table"))
		writeError(rec, req, fmt.Errorf("boom"), c.status)
		if rec.Code != c.status {
			t.Errorf("status %d: wrote %d", c.status, rec.Code)
		}
		e := decodeEnvelope(t, rec.Body.String())
		if e.Code != c.code || e.Message != "boom" || e.RequestID != "rid-table" {
			t.Errorf("status %d: envelope %+v; want code %q", c.status, e, c.code)
		}
	}
	rec := httptest.NewRecorder()
	writeError(rec, httptest.NewRequest(http.MethodGet, "/x", nil),
		fmt.Errorf("unknown figure \"99\"; valid: 3, 4a, 4b"), http.StatusUnprocessableEntity)
	e := decodeEnvelope(t, rec.Body.String())
	if fmt.Sprint(e.ValidOptions) != fmt.Sprint([]string{"3", "4a", "4b"}) {
		t.Fatalf("valid_options = %v; want [3 4a 4b]", e.ValidOptions)
	}
	// The busy sentinel remaps to 503 + Retry-After regardless of the
	// caller's status.
	rec = httptest.NewRecorder()
	writeError(rec, httptest.NewRequest(http.MethodGet, "/x", nil),
		fmt.Errorf("wrapped: %w", errBusy), http.StatusInternalServerError)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("busy error wrote %d (Retry-After %q); want 503 with Retry-After",
			rec.Code, rec.Header().Get("Retry-After"))
	}
	if e := decodeEnvelope(t, rec.Body.String()); e.Code != "unavailable" {
		t.Fatalf("busy envelope code %q; want unavailable", e.Code)
	}
}

// TestMethodNotAllowedEnvelope: even 405s speak the envelope.
func TestMethodNotAllowedEnvelope(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/sweep", "", "")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/sweep: status %d; want 405", resp.StatusCode)
	}
	if e := decodeEnvelope(t, body); e.Code != "method_not_allowed" || e.RequestID == "" {
		t.Fatalf("405 envelope %+v; want code method_not_allowed with request_id", e)
	}
}
