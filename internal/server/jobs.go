package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/scenario"
	"repro/internal/trng"
	"repro/internal/workload"
)

// JobRequest submits one request family for asynchronous execution: the
// discriminated payload mirrors BatchItem, plus an optional completion
// webhook. The job's identity is the inner request's canonical cache key,
// so a job and the corresponding blocking POST address the same cache
// entry and produce byte-identical output.
type JobRequest struct {
	Kind     string           `json:"kind"` // "sweep", "workload", "trng", "scenario" or "campaign"
	Sweep    *SweepRequest    `json:"sweep,omitempty"`
	Workload *WorkloadRequest `json:"workload,omitempty"`
	TRNG     *TRNGRequest     `json:"trng,omitempty"`
	Scenario *ScenarioRequest `json:"scenario,omitempty"`
	Campaign *CampaignRequest `json:"campaign,omitempty"`
	// Webhook, when set, receives the signed terminal job status (see
	// DESIGN.md §11 for the signature scheme).
	Webhook *jobs.WebhookSpec `json:"webhook,omitempty"`
}

// normalize validates the envelope and the inner request, reusing each
// family's 422 contract.
func (q JobRequest) normalize() (JobRequest, error) {
	switch q.Kind {
	case "sweep":
		inner := SweepRequest{}
		if q.Sweep != nil {
			inner = *q.Sweep
		}
		n, err := inner.normalize()
		if err != nil {
			return q, err
		}
		q.Sweep = &n
	case "workload":
		inner := WorkloadRequest{}
		if q.Workload != nil {
			inner = *q.Workload
		}
		n, err := inner.normalize()
		if err != nil {
			return q, err
		}
		q.Workload = &n
	case "trng":
		inner := TRNGRequest{}
		if q.TRNG != nil {
			inner = *q.TRNG
		}
		n, err := inner.normalize()
		if err != nil {
			return q, err
		}
		q.TRNG = &n
	case "scenario":
		inner := ScenarioRequest{}
		if q.Scenario != nil {
			inner = *q.Scenario
		}
		n, err := inner.normalize()
		if err != nil {
			return q, err
		}
		q.Scenario = &n
	case "campaign":
		inner := CampaignRequest{}
		if q.Campaign != nil {
			inner = *q.Campaign
		}
		n, err := inner.normalize()
		if err != nil {
			return q, err
		}
		q.Campaign = &n
	default:
		return q, fmt.Errorf("unknown kind %q; valid: sweep, workload, trng, scenario, campaign", q.Kind)
	}
	if q.Webhook != nil && q.Webhook.URL == "" {
		return q, fmt.Errorf("webhook needs a url")
	}
	return q, nil
}

// key returns the normalized inner request's cache key: the job's
// content address, shared with the blocking route.
func (q JobRequest) key() cache.Key {
	switch q.Kind {
	case "sweep":
		return q.Sweep.key()
	case "workload":
		return q.Workload.key()
	case "trng":
		return q.TRNG.key()
	case "campaign":
		return q.Campaign.key()
	default:
		return q.Scenario.key()
	}
}

// jobID derives the job identifier from the kind and content key.
func jobID(kind string, key cache.Key) string {
	return kind + "-" + cache.KeyString(key)
}

// kindExec is one request family's execution pipeline with the job tier's
// observability hooks threaded through: st receives live shard progress,
// pool supplies warm module instances. The blocking routes call it with
// (nil, nil) — both hooks never affect result bytes.
type kindExec func(ctx context.Context, st *engine.Stats, pool dram.ModulePool) (string, error)

// sweepExec builds the sweep pipeline for one normalized request.
func (s *Server) sweepExec(q SweepRequest) kindExec {
	return func(ctx context.Context, st *engine.Stats, pool dram.ModulePool) (string, error) {
		cfg := q.config()
		cfg.Engine.Workers = s.cfg.Workers
		cfg.ShardMemo = s.sweepMemo
		cfg.Dispatch = s.dispatch(ctx)
		cfg.Stats = st
		cfg.Pool = pool
		runner, err := charexp.NewRunner(cfg)
		if err != nil {
			return "", err
		}
		defer runner.Release()
		return runner.RunFigure(q.Figure, q.Sets, q.Format)
	}
}

// workloadExec builds the workload pipeline for one normalized request.
func (s *Server) workloadExec(q WorkloadRequest) kindExec {
	return func(ctx context.Context, st *engine.Stats, pool dram.ModulePool) (string, error) {
		cfg, err := q.options().Resolve()
		if err != nil {
			return "", err
		}
		cfg.Engine.Workers = s.cfg.Workers
		cfg.Memo = s.workloadMemo
		cfg.Dispatch = s.dispatch(ctx)
		cfg.Stats = st
		cfg.Pool = pool
		results, err := workload.RunFleet(ctx, cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := workload.WriteReport(&b, results, q.Format); err != nil {
			return "", err
		}
		return b.String(), nil
	}
}

// scenarioExec builds the scenario pipeline for one normalized request.
func (s *Server) scenarioExec(q ScenarioRequest) kindExec {
	return func(ctx context.Context, st *engine.Stats, pool dram.ModulePool) (string, error) {
		cfg, err := q.options().Resolve()
		if err != nil {
			return "", err
		}
		cfg.Engine.Workers = s.cfg.Workers
		cfg.Memo = s.sweepMemo
		cfg.Dispatch = s.dispatch(ctx)
		cfg.Stats = st
		cfg.Pool = pool
		res, err := scenario.Run(ctx, cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := scenario.WriteReport(&b, res, q.Format); err != nil {
			return "", err
		}
		return b.String(), nil
	}
}

// campaignExec builds the campaign pipeline for one normalized request.
// Phase-1 module shards share workloadMemo with the workload family;
// phase-2 candidate evaluations memoize under campaignMemo.
func (s *Server) campaignExec(q CampaignRequest) kindExec {
	return func(ctx context.Context, st *engine.Stats, pool dram.ModulePool) (string, error) {
		cfg, err := q.options().Resolve()
		if err != nil {
			return "", err
		}
		cfg.Engine.Workers = s.cfg.Workers
		cfg.ModMemo = s.workloadMemo
		cfg.Memo = s.campaignMemo
		cfg.Dispatch = s.dispatch(ctx)
		cfg.Stats = st
		cfg.Pool = pool
		res, err := campaign.Run(ctx, cfg)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		if err := campaign.WriteReport(&b, res, q.Format); err != nil {
			return "", err
		}
		return b.String(), nil
	}
}

// trngExec builds the TRNG pipeline for one normalized request. The
// generator runs on a private throwaway module, so the warmpool and
// progress hooks don't apply.
func (s *Server) trngExec(q TRNGRequest) kindExec {
	return func(context.Context, *engine.Stats, dram.ModulePool) (string, error) {
		out, err := trng.Generate(q.options())
		if err != nil {
			return "", err
		}
		return trng.FormatHex(out), nil
	}
}

// exec maps the normalized job request onto its family pipeline.
func (q JobRequest) exec(s *Server) kindExec {
	switch q.Kind {
	case "sweep":
		return s.sweepExec(*q.Sweep)
	case "workload":
		return s.workloadExec(*q.Workload)
	case "trng":
		return s.trngExec(*q.TRNG)
	case "campaign":
		return s.campaignExec(*q.Campaign)
	default:
		return s.scenarioExec(*q.Scenario)
	}
}

// jobExec wraps a family pipeline for the job tier: it shares the
// response cache and coalesces with blocking requests through the same
// store.Do, incrementing the kind's executions counter only when this
// call actually computes — so a job whose result another request already
// produced (or is producing) completes without an execution, and the
// second identical submission leaves executions_total unchanged. Unlike
// the blocking path, no inflight slot is claimed: the job worker pool is
// the job tier's concurrency bound.
func (s *Server) jobExec(kind string, key cache.Key, run kindExec) jobs.Exec {
	return func(ctx context.Context, st *engine.Stats) (string, error) {
		v, err := s.tier.Do(key, func() (any, int64, error) {
			s.counters[kind].executions.Add(1)
			out, err := run(ctx, st, s.pool)
			if err != nil {
				return nil, 0, err
			}
			return out, int64(len(out)), nil
		})
		if err != nil {
			return "", err
		}
		return v.(string), nil
	}
}

// submit validates and enqueues one job request (the shared path of the
// HTTP handler and the in-process facade).
func (s *Server) submit(q JobRequest) (*jobs.Job, bool, error) {
	key := q.key()
	req := jobs.Request{
		ID:      jobID(q.Kind, key),
		Kind:    q.Kind,
		Exec:    s.jobExec(q.Kind, key, q.exec(s)),
		Webhook: q.Webhook,
	}
	if v, ok := s.tier.Get(key); ok {
		out := v.(string)
		req.Cached = &out
	}
	return s.jobs.Submit(req)
}

// SubmitJob validates and submits a job in-process (the facade's
// surface); the HTTP handler shares its path.
func (s *Server) SubmitJob(q JobRequest) (st jobs.Status, existing bool, err error) {
	q, err = q.normalize()
	if err != nil {
		return jobs.Status{}, false, err
	}
	j, existing, err := s.submit(q)
	if err != nil {
		return jobs.Status{}, false, err
	}
	return j.Status(), existing, nil
}

// JobStatus returns a job's current status by ID.
func (s *Server) JobStatus(id string) (jobs.Status, error) {
	j, err := s.jobs.Get(id)
	if err != nil {
		return jobs.Status{}, err
	}
	return j.Status(), nil
}

// WaitJob blocks until the job is terminal or ctx is done.
func (s *Server) WaitJob(ctx context.Context, id string) (jobs.Status, error) {
	return s.jobs.Wait(ctx, id)
}

// handleSubmitJob is POST /v1/jobs: validate synchronously (the blocking
// routes' 400/422 contract), then either complete instantly from the
// response cache or enqueue. 202 for queued work, 200 when the job is
// already terminal or deduped onto an existing one.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var q JobRequest
	if err := decodeJSON(r, &q); err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	q, err := q.normalize()
	if err != nil {
		writeError(w, r, err, http.StatusUnprocessableEntity)
		return
	}
	j, existing, err := s.submit(q)
	if err != nil {
		if errors.Is(err, jobs.ErrBusy) {
			err = fmt.Errorf("job queue full: %w", errBusy)
		}
		writeError(w, r, err, http.StatusInternalServerError)
		return
	}
	st := j.Status()
	code := http.StatusAccepted
	if existing || st.State.Terminal() {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleListJobs is GET /v1/jobs.
func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.Jobs()})
}

// handleGetJob is GET /v1/jobs/{id}.
func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleCancelJob is DELETE /v1/jobs/{id}.
func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.jobs.Cancel(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err, http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleJobResult is GET /v1/jobs/{id}/result: the raw rendered bytes,
// byte-identical to the blocking route's ?raw=1 response for the same
// request. Columnar job results (the submitted request asked for
// "format":"columnar") are served with the columnar media type and honor
// the same ?batch / ?batch_rows continuation parameters as the blocking
// routes; an explicit ?format= parameter must match the format the job
// was submitted with (422 otherwise). A job still in flight is 202, a
// failed one 500, a canceled one 410.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err, http.StatusNotFound)
		return
	}
	st := j.Status()
	switch st.State {
	case jobs.StateSucceeded:
		out, _ := j.Output()
		columnar := strings.HasPrefix(out, colenc.Magic)
		if want := r.URL.Query().Get("format"); want != "" {
			if !validFormat(want) {
				writeError(w, r, fmt.Errorf("unknown format %q; valid: text, csv, columnar", want),
					http.StatusUnprocessableEntity)
				return
			}
			if (want == "columnar") != columnar {
				got := "text or csv"
				if columnar {
					got = "columnar"
				}
				writeError(w, r, fmt.Errorf(
					"job %s was submitted with a %s format; resubmit with \"format\":%q to get %s output",
					st.ID, got, want, want), http.StatusUnprocessableEntity)
				return
			}
		}
		if columnar {
			writeColumnar(w, r, out, map[string]string{
				"X-Simra-Job":    st.ID,
				"X-Simra-Cached": fmt.Sprint(st.Cached),
			})
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Simra-Job", st.ID)
		w.Header().Set("X-Simra-Cached", fmt.Sprint(st.Cached))
		io.WriteString(w, out)
	case jobs.StateFailed:
		writeError(w, r, fmt.Errorf("job failed: %s", st.Error), http.StatusInternalServerError)
	case jobs.StateCanceled:
		writeError(w, r, fmt.Errorf("job canceled"), http.StatusGone)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// lastEventID parses the subscriber's replay cursor: the standard
// Last-Event-ID header (set by reconnecting EventSource clients), with a
// last_event_id query fallback for plain HTTP clients.
func lastEventID(r *http.Request) int64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	id, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || id < 0 {
		return 0
	}
	return id
}

// sseClient resolves the identity the per-client SSE cap keys on: the
// authenticated bearer client when auth is on, the remote address host
// otherwise (with auth off every request is "anonymous", which would
// collapse the per-client cap back into a global one).
func (s *Server) sseClient(r *http.Request) string {
	if client := ClientFrom(r.Context()); len(s.cfg.AuthTokens) > 0 && client != "" {
		return client
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// handleJobEvents is GET /v1/jobs/{id}/events: the job's progress stream
// as Server-Sent Events. Reconnects resume from Last-Event-ID; beyond
// the per-client cap or the global ceiling the request sheds with 503 +
// Retry-After; the stream ends after the "done" event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, err := s.jobs.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, r, err, http.StatusNotFound)
		return
	}
	release, reason, ok := s.jobs.AcquireSSE(s.sseClient(r))
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, fmt.Errorf("event stream connection cap reached (%s)", reason), http.StatusServiceUnavailable)
		return
	}
	defer release()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, r, fmt.Errorf("streaming unsupported"), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Simra-Job", j.ID())
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	after := lastEventID(r)
	for {
		evs, changed, closed := j.EventsSince(after)
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data)
			after = e.ID
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if closed {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
