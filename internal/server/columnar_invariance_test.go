package server

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/core"
	"repro/internal/invariance"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// decodedCSVPath POSTs the columnar route, decodes the stream and
// re-renders it as csv — the metamorphic half of the text-rows ≡
// columnar-rows equivalence: whatever bytes the csv route serves, the
// columnar stream must decode back to them.
func decodedCSVPath(route, body string, decode func(*colenc.Table) (string, error)) invariance.Path {
	return invariance.Path{Name: "columnar-decoded", Run: func(t *testing.T, v invariance.Variant) string {
		t.Helper()
		_, url := jobPathServer(t, v)
		code, resp := postJSON(t, url+route, body)
		if code != http.StatusOK {
			t.Fatalf("POST %s: %d %s", route, code, resp)
		}
		tab, err := colenc.Decode([]byte(resp))
		if err != nil {
			t.Fatal(err)
		}
		out, err := decode(tab)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}}
}

// TestColumnarInvariance extends the metamorphic suite to the columnar
// format: for every tabular family the direct package pipeline, the
// blocking HTTP route and the async job tier emit one byte-identical
// columnar stream under workers 1 and 8, with and without a shared
// shard memo — and that stream decodes back to the exact rows the csv
// route serves under the same variants.
func TestColumnarInvariance(t *testing.T) {
	t.Run("sweep", func(t *testing.T) {
		req := SweepRequest{Figure: "3", Trials: 1, Groups: 1, Banks: 1, Columns: 64, Format: "columnar"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg := q.config()
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.ShardMemo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
			}
			runner, err := charexp.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer runner.Release()
			out, err := runner.RunFigure(q.Figure, q.Sets, q.Format)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}}
		body := `{"figure":"3","trials":1,"groups":1,"banks":1,"cols":64,"format":"columnar"}`
		invariance.CheckPaths(t, "sweep-columnar", true, []invariance.Path{
			cli, blockingPath("/v1/sweep", body), jobPath(`{"kind":"sweep","sweep":` + body + `}`),
		})

		csvBody := strings.Replace(body, "columnar", "csv", 1)
		invariance.CheckPaths(t, "sweep-metamorphic", true, []invariance.Path{
			blockingPath("/v1/sweep", csvBody),
			decodedCSVPath("/v1/sweep", body, func(tab *colenc.Table) (string, error) {
				return charexp.ColumnarStrings(tab).CSV(), nil
			}),
		})
	})

	t.Run("workload", func(t *testing.T) {
		req := WorkloadRequest{Modules: "representative", Columns: 64, MaxX: 3, Format: "columnar"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]workload.Result](v.Store, nil)
			}
			results, err := workload.RunFleet(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := workload.WriteReport(&b, results, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"modules":"representative","cols":64,"maxx":3,"format":"columnar"}`
		invariance.CheckPaths(t, "workload-columnar", true, []invariance.Path{
			cli, blockingPath("/v1/workload", body), jobPath(`{"kind":"workload","workload":` + body + `}`),
		})

		csvBody := strings.Replace(body, "columnar", "csv", 1)
		invariance.CheckPaths(t, "workload-metamorphic", true, []invariance.Path{
			blockingPath("/v1/workload", csvBody),
			decodedCSVPath("/v1/workload", body, func(tab *colenc.Table) (string, error) {
				rt, err := workload.ColumnarStrings(tab)
				if err != nil {
					return "", err
				}
				return rt.CSV(), nil
			}),
		})
	})

	t.Run("mitigation-grid", func(t *testing.T) {
		req := ScenarioRequest{Axes: "t2=1.5,3;mitigation=none,tmr:3,ecc:2",
			Columns: 64, Groups: 1, Banks: 1, Trials: 1, Format: "columnar"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
			}
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := scenario.WriteReport(&b, res, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"axes":"t2=1.5,3;mitigation=none,tmr:3,ecc:2","cols":64,"groups":1,"banks":1,"trials":1,"format":"columnar"}`
		invariance.CheckPaths(t, "mitigation-columnar", true, []invariance.Path{
			cli, blockingPath("/v1/scenario", body), jobPath(`{"kind":"scenario","scenario":` + body + `}`),
		})

		csvBody := strings.Replace(body, "columnar", "csv", 1)
		invariance.CheckPaths(t, "mitigation-metamorphic", true, []invariance.Path{
			blockingPath("/v1/scenario", csvBody),
			decodedCSVPath("/v1/scenario", body, func(tab *colenc.Table) (string, error) {
				rt, err := scenario.ColumnarStrings(tab)
				if err != nil {
					return "", err
				}
				return rt.CSV(), nil
			}),
		})
	})

	t.Run("campaign", func(t *testing.T) {
		req := CampaignRequest{Workload: "bitmap-scan", Top: 5, Columns: 64, Format: "columnar"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.ModMemo = cache.NewTyped[[]workload.Result](v.Store, nil)
				cfg.Memo = cache.NewTyped[campaign.Eval](v.Store, nil)
			}
			res, err := campaign.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := campaign.WriteReport(&b, res, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"workload":"bitmap-scan","top":5,"cols":64,"format":"columnar"}`
		invariance.CheckPaths(t, "campaign-columnar", true, []invariance.Path{
			cli, blockingPath("/v1/campaign", body), jobPath(`{"kind":"campaign","campaign":` + body + `}`),
		})

		csvBody := strings.Replace(body, "columnar", "csv", 1)
		invariance.CheckPaths(t, "campaign-metamorphic", true, []invariance.Path{
			blockingPath("/v1/campaign", csvBody),
			decodedCSVPath("/v1/campaign", body, func(tab *colenc.Table) (string, error) {
				rt, err := campaign.ColumnarStrings(tab)
				if err != nil {
					return "", err
				}
				return rt.CSV(), nil
			}),
		})
	})

	t.Run("scenario", func(t *testing.T) {
		req := ScenarioRequest{Axes: "t2=1.5,3", Columns: 64, Groups: 1, Banks: 1, Trials: 1, Format: "columnar"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
			}
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := scenario.WriteReport(&b, res, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"axes":"t2=1.5,3","cols":64,"groups":1,"banks":1,"trials":1,"format":"columnar"}`
		invariance.CheckPaths(t, "scenario-columnar", true, []invariance.Path{
			cli, blockingPath("/v1/scenario", body), jobPath(`{"kind":"scenario","scenario":` + body + `}`),
		})

		csvBody := strings.Replace(body, "columnar", "csv", 1)
		invariance.CheckPaths(t, "scenario-metamorphic", true, []invariance.Path{
			blockingPath("/v1/scenario", csvBody),
			decodedCSVPath("/v1/scenario", body, func(tab *colenc.Table) (string, error) {
				rt, err := scenario.ColumnarStrings(tab)
				if err != nil {
					return "", err
				}
				return rt.CSV(), nil
			}),
		})
	})
}
