package server

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/charexp"
	"repro/internal/core"
	"repro/internal/invariance"
	"repro/internal/scenario"
	"repro/internal/trng"
	"repro/internal/workload"
)

// jobPathServer builds a fresh server honouring the variant's worker
// count. Server-owned paths carry their own internal caches, so the
// variant's external store only backs the direct path's memo.
func jobPathServer(t *testing.T, v invariance.Variant) (*Server, string) {
	t.Helper()
	s, ts := testServer(t, Config{Workers: v.Workers, JobPoll: time.Millisecond})
	return s, ts.URL
}

// blockingPath POSTs the raw blocking route and returns the body.
func blockingPath(route, body string) invariance.Path {
	return invariance.Path{Name: "blocking", Run: func(t *testing.T, v invariance.Variant) string {
		t.Helper()
		_, url := jobPathServer(t, v)
		code, resp := postJSON(t, url+route+"?raw=1", body)
		if code != http.StatusOK {
			t.Fatalf("POST %s: %d %s", route, code, resp)
		}
		return resp
	}}
}

// jobPath submits the request to the async tier, waits for the terminal
// state and fetches /result.
func jobPath(body string) invariance.Path {
	return invariance.Path{Name: "job", Run: func(t *testing.T, v invariance.Variant) string {
		t.Helper()
		s, url := jobPathServer(t, v)
		code, st := submitJob(t, url, body)
		if code >= 300 {
			t.Fatalf("submit: %d", code)
		}
		final, err := s.WaitJob(context.Background(), st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Error != "" {
			t.Fatalf("job failed: %s", final.Error)
		}
		resp, err := http.Get(url + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result: %d %s", resp.StatusCode, body)
		}
		return string(body)
	}}
}

// TestJobBlockingCLIEquivalence is the job tier's metamorphic suite: for
// every request family, the async job tier, the blocking HTTP route and
// the direct package pipeline (the CLI's rendering path) produce
// byte-identical output under every worker count and cache mode
// (DESIGN.md §11). The determinism contract is what makes job results
// interchangeable with blocking responses and committed CLI goldens.
func TestJobBlockingCLIEquivalence(t *testing.T) {
	t.Run("sweep", func(t *testing.T) {
		req := SweepRequest{Figure: "3", Trials: 1, Groups: 1, Banks: 1, Columns: 64, Format: "csv"}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg := q.config()
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.ShardMemo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
			}
			runner, err := charexp.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer runner.Release()
			out, err := runner.RunFigure(q.Figure, q.Sets, q.Format)
			if err != nil {
				t.Fatal(err)
			}
			return out
		}}
		body := `{"figure":"3","trials":1,"groups":1,"banks":1,"cols":64,"format":"csv"}`
		invariance.CheckPaths(t, "sweep", true, []invariance.Path{
			cli, blockingPath("/v1/sweep", body), jobPath(`{"kind":"sweep","sweep":` + body + `}`),
		})
	})

	t.Run("workload", func(t *testing.T) {
		req := WorkloadRequest{Modules: "representative", Columns: 64, MaxX: 3}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]workload.Result](v.Store, nil)
			}
			results, err := workload.RunFleet(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := workload.WriteReport(&b, results, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"modules":"representative","cols":64,"maxx":3}`
		invariance.CheckPaths(t, "workload", true, []invariance.Path{
			cli, blockingPath("/v1/workload", body), jobPath(`{"kind":"workload","workload":` + body + `}`),
		})
	})

	t.Run("trng", func(t *testing.T) {
		req := TRNGRequest{Bytes: 64, Seed: 2024, Rows: 32}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			out, err := trng.Generate(q.options())
			if err != nil {
				t.Fatal(err)
			}
			return trng.FormatHex(out)
		}}
		body := `{"bytes":64,"seed":2024,"rows":32}`
		invariance.CheckPaths(t, "trng", false, []invariance.Path{
			cli, blockingPath("/v1/trng", body), jobPath(`{"kind":"trng","trng":` + body + `}`),
		})
	})

	t.Run("scenario", func(t *testing.T) {
		req := ScenarioRequest{Axes: "t2=1.5,3", Columns: 64, Groups: 1, Banks: 1, Trials: 1}
		q, err := req.normalize()
		if err != nil {
			t.Fatal(err)
		}
		cli := invariance.Path{Name: "cli", Run: func(t *testing.T, v invariance.Variant) string {
			t.Helper()
			cfg, err := q.options().Resolve()
			if err != nil {
				t.Fatal(err)
			}
			cfg.Engine.Workers = v.Workers
			if v.Store != nil {
				cfg.Memo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
			}
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := scenario.WriteReport(&b, res, q.Format); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}}
		body := `{"axes":"t2=1.5,3","cols":64,"groups":1,"banks":1,"trials":1}`
		invariance.CheckPaths(t, "scenario", true, []invariance.Path{
			cli, blockingPath("/v1/scenario", body), jobPath(`{"kind":"scenario","scenario":` + body + `}`),
		})
	})
}
