package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/cache"
)

// trngBody is a cheap deterministic request reused across fleet tests.
const trngBody = `{"bytes":64,"seed":2024,"rows":32}`

// TestFleetWideCacheHit: two nodes sharing a cache backend — the second
// node answers an already-computed request from the shared tier without
// executing.
func TestFleetWideCacheHit(t *testing.T) {
	shared := cache.NewMemBackend()
	a, tsA := testServer(t, Config{Backend: shared})
	b, tsB := testServer(t, Config{Backend: shared})

	status, bodyA := postJSON(t, tsA.URL+"/v1/trng", trngBody)
	if status != http.StatusOK {
		t.Fatalf("node A: status %d (%s)", status, bodyA)
	}
	if a.Executions("trng") != 1 {
		t.Fatalf("node A executions = %d; want 1", a.Executions("trng"))
	}
	status, bodyB := postJSON(t, tsB.URL+"/v1/trng", trngBody)
	if status != http.StatusOK {
		t.Fatalf("node B: status %d (%s)", status, bodyB)
	}
	if b.Executions("trng") != 0 {
		t.Fatalf("node B executions = %d; want 0 (fleet-wide hit)", b.Executions("trng"))
	}
	var ra, rb Response
	if err := json.Unmarshal([]byte(bodyA), &ra); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(bodyB), &rb); err != nil {
		t.Fatal(err)
	}
	if !rb.Cached {
		t.Fatal("node B response not marked cached")
	}
	if ra.Output != rb.Output || ra.Key != rb.Key {
		t.Fatal("fleet-wide hit returned different bytes than the computing node")
	}
	if st := b.CacheStats(); st.RemoteHits == 0 {
		t.Fatalf("node B tier stats %+v; want at least one remote hit", st)
	}
}

// TestFleetWideRateLimit: the token bucket lives in the shared cache
// tier, so a client's budget spans nodes — exhausting it on A throttles
// the same client on B.
func TestFleetWideRateLimit(t *testing.T) {
	shared := cache.NewMemBackend()
	cfg := Config{Backend: shared, RatePerSec: 0.001, RateBurst: 2}
	_, tsA := testServer(t, cfg)
	_, tsB := testServer(t, cfg)

	if resp, _ := doReq(t, http.MethodGet, tsA.URL+"/v1/jobs", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("A first request: %d; want 200", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodGet, tsB.URL+"/v1/jobs", "", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("B second request: %d; want 200", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, tsA.URL+"/v1/jobs", "", "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("A third request: %d (%s); want 429 — bucket must be fleet-wide", resp.StatusCode, body)
	}
}

// TestVersionEndpoint pins the /v1/version document.
func TestVersionEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, body := doReq(t, http.MethodGet, ts.URL+"/v1/version", "", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, body)
	}
	var v VersionInfo
	if err := json.Unmarshal([]byte(body), &v); err != nil {
		t.Fatal(err)
	}
	if v.Service != "simra-serve" || v.APIRevision != "v1" || v.GoVersion == "" {
		t.Fatalf("version document %+v; want service/api_revision/go_version filled", v)
	}
}

// TestHealthRoles: /healthz reports each node's cluster role and group
// count.
func TestHealthRoles(t *testing.T) {
	readHealth := func(url string) healthResponse {
		t.Helper()
		resp, body := doReq(t, http.MethodGet, url+"/healthz", "", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz: %d (%s)", resp.StatusCode, body)
		}
		var h healthResponse
		if err := json.Unmarshal([]byte(body), &h); err != nil {
			t.Fatal(err)
		}
		if h.Status != "ok" {
			t.Fatalf("status %q; want ok", h.Status)
		}
		return h
	}

	_, tsSingle := testServer(t, Config{})
	if h := readHealth(tsSingle.URL); h.Role != "single" || h.Groups != 1 {
		t.Fatalf("single node health %+v; want role single, 1 group", h)
	}

	_, tsMulti := testServer(t, Config{Groups: 2})
	if h := readHealth(tsMulti.URL); h.Role != "coordinator" || h.Groups != 2 {
		t.Fatalf("multi-group health %+v; want role coordinator, 2 groups", h)
	}

	// A coordinator with peers probes them.
	_, tsWorker := testServer(t, Config{CachePeer: tsSingle.URL})
	if h := readHealth(tsWorker.URL); h.Role != "worker" {
		t.Fatalf("worker health %+v; want role worker", h)
	}
	_, tsCoord := testServer(t, Config{Peers: []string{tsWorker.URL}})
	h := readHealth(tsCoord.URL)
	if h.Role != "coordinator" || len(h.Peers) != 1 {
		t.Fatalf("coordinator health %+v; want role coordinator with 1 peer", h)
	}
	if !h.Peers[0].Healthy {
		t.Fatalf("peer %+v reported unhealthy", h.Peers[0])
	}
	// A dead peer degrades the peer entry, never the node itself.
	_, tsLonely := testServer(t, Config{Peers: []string{"http://127.0.0.1:1"}})
	h = readHealth(tsLonely.URL)
	if len(h.Peers) != 1 || h.Peers[0].Healthy {
		t.Fatalf("health with dead peer %+v; want the peer marked unhealthy", h)
	}
}

// TestGroupsByteIdentity: a multi-group coordinator must answer public
// requests byte-identically to a plain single node, at every fleet width
// the deployment docs mention (1, 2 and 4 groups).
func TestGroupsByteIdentity(t *testing.T) {
	_, tsPlain := testServer(t, Config{})
	var fleets []*httptest.Server
	for _, groups := range []int{2, 4} {
		_, ts := testServer(t, Config{Groups: groups})
		fleets = append(fleets, ts)
	}
	for _, tc := range []struct{ path, body string }{
		{"/v1/sweep", smallSweep()},
		{"/v1/workload", `{"workloads":"bitmap-scan","modules":"representative","cols":64,"maxx":3,"format":"csv"}`},
		{"/v1/campaign", `{"workload":"bitmap-scan","top":5,"cols":64,"format":"csv"}`},
	} {
		stP, bodyP := postJSON(t, tsPlain.URL+tc.path, tc.body)
		if stP != http.StatusOK {
			t.Fatalf("%s: plain node status %d (%s)", tc.path, stP, bodyP)
		}
		var rp Response
		if err := json.Unmarshal([]byte(bodyP), &rp); err != nil {
			t.Fatal(err)
		}
		for i, tsFleet := range fleets {
			stF, bodyF := postJSON(t, tsFleet.URL+tc.path, tc.body)
			if stF != http.StatusOK {
				t.Fatalf("%s: fleet %d status %d (%s)", tc.path, i, stF, bodyF)
			}
			var rf Response
			if err := json.Unmarshal([]byte(bodyF), &rf); err != nil {
				t.Fatal(err)
			}
			if rp.Output != rf.Output || rp.Key != rf.Key {
				t.Fatalf("%s: multi-group output diverged from single-node", tc.path)
			}
		}
	}
}

// TestPeerTopology drives a real two-node HTTP fleet: a worker whose
// shared tier points at a cache host, and a coordinator fanning shards
// to the worker over the internal shard route. The coordinator's answer
// must be byte-identical to a plain single node's, and the computed
// shards must be visible fleet-wide afterwards.
func TestPeerTopology(t *testing.T) {
	_, tsHost := testServer(t, Config{Groups: 2}) // hosts a shared tier
	w, tsWorker := testServer(t, Config{CachePeer: tsHost.URL, ClusterToken: "fleet-secret"})
	c, tsCoord := testServer(t, Config{
		CachePeer:    tsHost.URL,
		Peers:        []string{tsWorker.URL},
		ClusterToken: "fleet-secret",
	})
	_, tsPlain := testServer(t, Config{})

	stP, bodyP := postJSON(t, tsPlain.URL+"/v1/sweep", smallSweep())
	stC, bodyC := postJSON(t, tsCoord.URL+"/v1/sweep", smallSweep())
	if stP != http.StatusOK || stC != http.StatusOK {
		t.Fatalf("plain %d coordinator %d (%s)", stP, stC, bodyC)
	}
	var rp, rc Response
	if err := json.Unmarshal([]byte(bodyP), &rp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(bodyC), &rc); err != nil {
		t.Fatal(err)
	}
	if rp.Output != rc.Output || rp.Key != rc.Key {
		t.Fatal("two-node fleet output diverged from single-node")
	}
	cs := c.ClusterStats()
	var remote int64
	for name, n := range cs.Dispatched {
		if name != "group-0" {
			remote += n
		}
	}
	if remote == 0 {
		t.Fatalf("coordinator dispatched nothing to the HTTP peer: %+v", cs.Dispatched)
	}
	if got := w.worker.Stats().Requests; got == 0 {
		t.Fatal("worker group served no shard requests")
	}

	// The same request against the worker's public route is now a
	// fleet-wide cache hit: shards were written through to the host tier.
	stW, bodyW := postJSON(t, tsWorker.URL+"/v1/sweep", smallSweep())
	if stW != http.StatusOK {
		t.Fatalf("worker public request: %d (%s)", stW, bodyW)
	}
	if got := w.Executions("sweep"); got != 0 {
		t.Fatalf("worker executed %d sweeps; want 0 — shard bytes should come from the shared tier", got)
	}
	var rw Response
	if err := json.Unmarshal([]byte(bodyW), &rw); err != nil {
		t.Fatal(err)
	}
	if rw.Output != rp.Output {
		t.Fatal("worker's tier-served output diverged")
	}
}

// TestRemoteCacheErrorSurfacing: a worker whose shared tier points at a
// dead cache host must still serve requests (degraded to local compute),
// but the failure has to be visible — a warn line on the audit log and a
// nonzero simra_cache_remote_errors_total in /metrics — instead of
// masquerading as an endless cold cache.
func TestRemoteCacheErrorSurfacing(t *testing.T) {
	log := &syncBuffer{}
	_, ts := testServer(t, Config{CachePeer: "http://127.0.0.1:1", AuditLog: log})

	status, body := postJSON(t, ts.URL+"/v1/trng", `{"bytes":16,"seed":7}`)
	if status != http.StatusOK {
		t.Fatalf("trng through dead cache host: status %d (%s); want 200 (degraded, not broken)", status, body)
	}

	_, metrics := doReq(t, http.MethodGet, ts.URL+"/metrics", "", "")
	line := ""
	for _, l := range strings.Split(metrics, "\n") {
		if strings.HasPrefix(l, "simra_cache_remote_errors_total ") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("/metrics has no simra_cache_remote_errors_total line:\n%s", metrics)
	}
	if n, err := strconv.Atoi(strings.TrimPrefix(line, "simra_cache_remote_errors_total ")); err != nil || n < 1 {
		t.Fatalf("remote errors metric %q; want >= 1 after a dead-host request", line)
	}

	audit := log.String()
	if !strings.Contains(audit, `"level":"warn"`) || !strings.Contains(audit, `"event":"cache_remote_error"`) {
		t.Fatalf("audit log carries no cache_remote_error warn line:\n%s", audit)
	}
}

// TestInternalShardErrors pins the internal route's error surface.
func TestInternalShardErrors(t *testing.T) {
	_, ts := testServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/internal/shard", "not json")
	if status != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d (%s); want 400", status, body)
	}
	status, body = postJSON(t, ts.URL+"/v1/internal/shard", `{"key":"zz","kind":"core","spec":{}}`)
	if status != http.StatusBadRequest {
		t.Fatalf("bad key: %d (%s); want 400", status, body)
	}
	key := "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff"
	status, body = postJSON(t, ts.URL+"/v1/internal/shard", `{"key":"`+key+`","kind":"martian","spec":{}}`)
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("unknown kind: %d (%s); want 422", status, body)
	}
	var e ErrorEnvelope
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatal(err)
	}
	if e.Error.Code != "invalid_argument" || len(e.Error.ValidOptions) == 0 {
		t.Fatalf("422 envelope %+v; want invalid_argument with valid_options", e.Error)
	}
}
