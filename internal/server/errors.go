package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
)

// ErrorBody is the versioned error payload every non-2xx JSON response
// carries, uniform across 400/401/403/404/405/410/422/429/503 on every
// route (blocking, batch, jobs, SSE, internal).
type ErrorBody struct {
	// Code is a stable machine-readable identifier for the status class
	// (see errorCode).
	Code string `json:"code"`
	// Message is the human-readable error.
	Message string `json:"message"`
	// RequestID echoes the request's ID (the X-Request-ID header), tying
	// the response to the audit trail.
	RequestID string `json:"request_id"`
	// ValidOptions lists the accepted values when the error names an
	// unknown option (the repository-wide "; valid: a, b, c" convention).
	ValidOptions []string `json:"valid_options,omitempty"`
}

// ErrorEnvelope is the error response document: {"error": {...}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// errorCode maps an HTTP status onto its stable error code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnauthorized:
		return "unauthorized"
	case http.StatusForbidden:
		return "forbidden"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusGone:
		return "gone"
	case http.StatusUnprocessableEntity:
		return "invalid_argument"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// validOptions extracts the accepted values from an error message using
// the repository-wide "; valid: a, b, c" convention (nil when absent).
func validOptions(msg string) []string {
	i := strings.LastIndex(msg, "valid: ")
	if i < 0 {
		return nil
	}
	var opts []string
	for _, o := range strings.Split(msg[i+len("valid: "):], ",") {
		if o = strings.TrimSpace(o); o != "" {
			opts = append(opts, o)
		}
	}
	return opts
}

// writeError renders err as the versioned error envelope. Shed load
// (errBusy) is remapped to 503 + Retry-After regardless of the caller's
// status, preserving the backpressure contract.
func writeError(w http.ResponseWriter, r *http.Request, err error, status int) {
	if errors.Is(err, errBusy) {
		w.Header().Set("Retry-After", "1")
		status = http.StatusServiceUnavailable
	}
	msg := err.Error()
	body := ErrorBody{
		Code:         errorCode(status),
		Message:      msg,
		RequestID:    RequestIDFrom(r.Context()),
		ValidOptions: validOptions(msg),
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ErrorEnvelope{Error: body})
}
