package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/charexp"
	"repro/internal/colenc"
	"repro/internal/jobs"
	"repro/internal/scenario"
)

// colReq issues one request with optional headers and returns the full
// response plus its body bytes (columnar responses are raw binary, so the
// string-returning postJSON helper is not enough here).
func colReq(t *testing.T, method, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestColumnarSweepResponse drives the sweep endpoint in columnar format:
// the payload is a raw colenc stream (never a JSON envelope), metadata
// travels in X-Simra-* headers, decoded rows match the csv rendering of
// the same request, and a repeat request is a byte-identical cache hit.
func TestColumnarSweepResponse(t *testing.T) {
	_, ts := testServer(t, Config{})

	resp, body := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1","format":"columnar"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ColumnarContentType {
		t.Fatalf("Content-Type %q; want %q", ct, ColumnarContentType)
	}
	if !strings.HasPrefix(string(body), colenc.Magic) {
		t.Fatal("columnar response does not start with the colenc magic")
	}
	if resp.Header.Get("X-Simra-Key") == "" {
		t.Fatal("missing X-Simra-Key")
	}
	if got := resp.Header.Get("X-Simra-Cached"); got != "false" {
		t.Fatalf("first response X-Simra-Cached = %q; want false", got)
	}
	info, err := colenc.Info(body)
	if err != nil {
		t.Fatal(err)
	}
	if hdr := resp.Header.Get("X-Simra-Total-Rows"); hdr != strconv.Itoa(info.TotalRows) {
		t.Fatalf("X-Simra-Total-Rows %q; stream says %d", hdr, info.TotalRows)
	}
	if hdr := resp.Header.Get("X-Simra-Batch-Count"); hdr != strconv.Itoa(info.BatchCount) {
		t.Fatalf("X-Simra-Batch-Count %q; stream says %d", hdr, info.BatchCount)
	}

	// Metamorphic: decoded columnar rows reformatted ≡ the csv rendering.
	dec, err := colenc.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	_, csvEnv := postJSON(t, ts.URL+"/v1/sweep", `{"figure":"table1","format":"csv"}`)
	var csvResp Response
	if err := json.Unmarshal([]byte(csvEnv), &csvResp); err != nil {
		t.Fatal(err)
	}
	if got := charexp.ColumnarStrings(dec).CSV(); got != csvResp.Output {
		t.Fatalf("columnar-decoded csv differs from the csv route:\n%s\n--- vs ---\n%s", got, csvResp.Output)
	}

	// Repeat request: cache hit, byte-identical stream.
	resp2, body2 := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1","format":"columnar"}`, nil)
	if got := resp2.Header.Get("X-Simra-Cached"); got != "true" {
		t.Fatalf("repeat response X-Simra-Cached = %q; want true", got)
	}
	if string(body2) != string(body) {
		t.Fatal("cache hit returned different columnar bytes")
	}
}

// TestColumnarAcceptNegotiation covers the Accept header path: an empty
// body format plus Accept: application/vnd.simra.columnar selects the
// columnar encoding, while an explicit body format always wins.
func TestColumnarAcceptNegotiation(t *testing.T) {
	_, ts := testServer(t, Config{})

	explicit, explicitBody := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1","format":"columnar"}`, nil)
	if explicit.StatusCode != http.StatusOK {
		t.Fatalf("explicit status %d", explicit.StatusCode)
	}

	neg, negBody := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1"}`,
		map[string]string{"Accept": "text/plain;q=0.5, " + ColumnarContentType})
	if ct := neg.Header.Get("Content-Type"); ct != ColumnarContentType {
		t.Fatalf("Accept negotiation served Content-Type %q", ct)
	}
	if string(negBody) != string(explicitBody) {
		t.Fatal("Accept-negotiated stream differs from the explicit-format stream")
	}

	// Explicit body format wins over Accept.
	over, overBody := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1","format":"csv"}`,
		map[string]string{"Accept": ColumnarContentType})
	if ct := over.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("explicit csv format yielded Content-Type %q; want the JSON envelope", ct)
	}
	var env Response
	if err := json.Unmarshal(overBody, &env); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(env.Output, colenc.Magic) {
		t.Fatal("explicit csv format was overridden by the Accept header")
	}
}

// TestColumnarPaging pages one columnar response through
// ?batch/?batch_rows: every page is a standalone decodable stream,
// X-Simra-Batch-* continuation headers chain the pages, the concatenated
// pages reproduce the full table, and malformed or out-of-range paging
// parameters map onto 400/422.
func TestColumnarPaging(t *testing.T) {
	_, ts := testServer(t, Config{})
	const req = `{"figure":"table1","format":"columnar"}`

	full, fullBody := colReq(t, http.MethodPost, ts.URL+"/v1/sweep", req, nil)
	if full.StatusCode != http.StatusOK {
		t.Fatalf("status %d", full.StatusCode)
	}
	want, err := colenc.Decode(fullBody)
	if err != nil {
		t.Fatal(err)
	}
	total := want.NumRows()
	if total < 3 {
		t.Fatalf("need ≥3 rows to page, got %d", total)
	}

	const rows = 2
	batches := (total + rows - 1) / rows
	var got [][]string
	for b := 0; b < batches; b++ {
		url := fmt.Sprintf("%s/v1/sweep?batch=%d&batch_rows=%d", ts.URL, b, rows)
		resp, body := colReq(t, http.MethodPost, url, req, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d: %s", b, resp.StatusCode, body)
		}
		h := resp.Header
		if h.Get("X-Simra-Batch") != strconv.Itoa(b) ||
			h.Get("X-Simra-Batch-Count") != strconv.Itoa(batches) ||
			h.Get("X-Simra-Total-Rows") != strconv.Itoa(total) {
			t.Fatalf("batch %d headers: batch=%q count=%q total=%q", b,
				h.Get("X-Simra-Batch"), h.Get("X-Simra-Batch-Count"), h.Get("X-Simra-Total-Rows"))
		}
		next := h.Get("X-Simra-Batch-Next")
		if b < batches-1 && next != strconv.Itoa(b+1) {
			t.Fatalf("batch %d: X-Simra-Batch-Next = %q; want %d", b, next, b+1)
		}
		if b == batches-1 && next != "" {
			t.Fatalf("last batch advertises a next batch %q", next)
		}
		page, err := colenc.Decode(body)
		if err != nil {
			t.Fatalf("batch %d does not decode standalone: %v", b, err)
		}
		_, pageRows := page.Strings()
		got = append(got, pageRows...)
	}
	_, wantRows := want.Strings()
	if !reflect.DeepEqual(got, wantRows) {
		t.Fatal("concatenated pages differ from the full stream")
	}

	// Out-of-range batch is a 422; malformed paging parameters are 400s.
	for _, tc := range []struct {
		query string
		code  int
	}{
		{"?batch=99", http.StatusUnprocessableEntity},
		{"?batch=-1", http.StatusUnprocessableEntity},
		{"?batch=abc", http.StatusBadRequest},
		{"?batch=0&batch_rows=0", http.StatusBadRequest},
		{"?batch=0&batch_rows=x", http.StatusBadRequest},
		{"?batch_rows=2", http.StatusBadRequest},
	} {
		resp, body := colReq(t, http.MethodPost, ts.URL+"/v1/sweep"+tc.query, req, nil)
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.query, resp.StatusCode, tc.code, body)
		}
		var e ErrorEnvelope
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatalf("%s: error is not the JSON envelope: %v", tc.query, err)
		}
		if e.Error.Message == "" || e.Error.RequestID == "" {
			t.Fatalf("%s: incomplete error envelope %+v", tc.query, e.Error)
		}
	}
}

// TestColumnarValidOptionsContract is the format-error contract: an
// unknown format on every format-bearing family is a 422 whose
// valid_options enumerate exactly text, csv and columnar.
func TestColumnarValidOptionsContract(t *testing.T) {
	_, ts := testServer(t, Config{})
	want := []string{"text", "csv", "columnar"}
	for _, path := range []string{"/v1/sweep", "/v1/workload", "/v1/scenario", "/v1/campaign"} {
		code, body := postJSON(t, ts.URL+path, `{"format":"parquet"}`)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422", path, code)
		}
		var e ErrorEnvelope
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Code != "invalid_argument" {
			t.Fatalf("%s: code %q", path, e.Error.Code)
		}
		if !reflect.DeepEqual(e.Error.ValidOptions, want) {
			t.Fatalf("%s: valid_options %v; want %v", path, e.Error.ValidOptions, want)
		}
	}
}

// TestAxisValidOptionsContract extends the 422 contract to the PR's new
// knobs: mitigation tokens on the scenario envelope and the campaign's
// workload/fleet-size parameters all answer invalid input with the full
// enumerated valid_options list, exactly like the older families.
func TestAxisValidOptionsContract(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		name, path, body string
		exact            []string // full expected list (nil = check contains instead)
		contains         string
	}{
		{
			name: "scenario unknown mitigation", path: "/v1/scenario",
			body:  `{"axes":"mitigation=frob"}`,
			exact: scenario.MitigationNames(),
		},
		{
			name: "scenario even TMR width", path: "/v1/scenario",
			body:  `{"axes":"mitigation=tmr:4"}`,
			exact: scenario.MitigationNames(),
		},
		{
			name: "scenario unknown grid", path: "/v1/scenario",
			body:  `{"grid":"martian"}`,
			exact: scenario.GridNames(),
		},
		{
			name: "campaign unknown workload", path: "/v1/campaign",
			body:     `{"workload":"quantum-sort"}`,
			contains: "bitmap-scan",
		},
		{
			name: "campaign fleet size out of range", path: "/v1/campaign",
			body:  `{"size":9}`,
			exact: []string{"1", "2", "3", "4", "5", "6"},
		},
	}
	for _, tc := range cases {
		code, body := postJSON(t, ts.URL+tc.path, tc.body)
		if code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d (%s); want 422", tc.name, code, body)
		}
		var e ErrorEnvelope
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Fatal(err)
		}
		if e.Error.Code != "invalid_argument" || e.Error.RequestID == "" {
			t.Fatalf("%s: envelope %+v; want invalid_argument with request id", tc.name, e.Error)
		}
		if tc.exact != nil && !reflect.DeepEqual(e.Error.ValidOptions, tc.exact) {
			t.Fatalf("%s: valid_options %v; want %v", tc.name, e.Error.ValidOptions, tc.exact)
		}
		if tc.contains != "" {
			found := false
			for _, v := range e.Error.ValidOptions {
				if v == tc.contains {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: valid_options %v; want list containing %q", tc.name, e.Error.ValidOptions, tc.contains)
			}
		}
	}
}

// TestColumnarBatchRefused pins the batch contract: the columnar
// encoding is binary and the batch envelope is JSON, so a columnar batch
// item fails in-band (siblings still execute) instead of mangling bytes
// through a JSON string.
func TestColumnarBatchRefused(t *testing.T) {
	_, ts := testServer(t, Config{})
	code, body := postJSON(t, ts.URL+"/v1/batch",
		`{"requests":[
			{"kind":"sweep","sweep":{"figure":"table1","format":"columnar"}},
			{"kind":"sweep","sweep":{"figure":"table1","format":"csv"}}]}`)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, body)
	}
	var out BatchResponse
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Responses) != 2 {
		t.Fatalf("got %d responses, want 2", len(out.Responses))
	}
	if !strings.Contains(out.Responses[0].Error, "columnar format is not available on /v1/batch") {
		t.Fatalf("columnar item error = %q", out.Responses[0].Error)
	}
	if out.Responses[1].Error != "" || out.Responses[1].Output == "" {
		t.Fatalf("csv sibling did not execute: %+v", out.Responses[1])
	}
}

// TestColumnarScenarioSharesShardMemo runs the same scenario first as csv
// and then as columnar: the two formats cache whole responses under
// distinct keys (both execute), but the second run replays the first
// run's per-shard engine memo instead of recomputing, and the decoded
// columnar rows reformat to the exact csv bytes.
func TestColumnarScenarioSharesShardMemo(t *testing.T) {
	s, ts := testServer(t, Config{})
	const params = `"envelope":"t2","grid":"nominal","cols":128,"groups":2,"banks":1,"trials":2`

	code, csvEnv := postJSON(t, ts.URL+"/v1/scenario", `{`+params+`,"format":"csv"}`)
	if code != http.StatusOK {
		t.Fatalf("csv status %d: %s", code, csvEnv)
	}
	var csvResp Response
	if err := json.Unmarshal([]byte(csvEnv), &csvResp); err != nil {
		t.Fatal(err)
	}
	if got := s.Executions("scenario"); got != 1 {
		t.Fatalf("csv run: %d executions, want 1", got)
	}
	hitsBefore := s.CacheStats().Hits

	resp, body := colReq(t, http.MethodPost, ts.URL+"/v1/scenario",
		`{`+params+`,"format":"columnar"}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("columnar status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Simra-Key") == csvResp.Key {
		t.Fatal("columnar response reused the csv cache key")
	}
	if got := s.Executions("scenario"); got != 2 {
		t.Fatalf("columnar run: %d executions, want 2 (distinct response keys)", got)
	}
	if hits := s.CacheStats().Hits; hits <= hitsBefore {
		t.Fatalf("columnar run hit no shard memos (hits %d → %d); formats must share engine shards",
			hitsBefore, hits)
	}

	dec, err := colenc.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := scenario.ColumnarStrings(dec)
	if err != nil {
		t.Fatal(err)
	}
	if tab.CSV() != csvResp.Output {
		t.Fatalf("columnar-decoded csv differs from the csv route:\n%s\n--- vs ---\n%s",
			tab.CSV(), csvResp.Output)
	}
}

// TestColumnarJobResult submits a columnar-format job and fetches its
// result: the bytes are identical to the blocking route's stream, the
// result pages like any columnar response, and a ?format= that
// contradicts the submission is a 422 rather than a silent re-render.
func TestColumnarJobResult(t *testing.T) {
	_, ts := testServer(t, Config{JobPoll: time.Millisecond})

	_, blocking := colReq(t, http.MethodPost, ts.URL+"/v1/sweep",
		`{"figure":"table1","format":"columnar"}`, nil)

	code, st := submitJob(t, ts.URL,
		`{"kind":"sweep","sweep":{"figure":"table1","format":"columnar"}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit status %d", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for st.State != jobs.StateSucceeded {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(2 * time.Millisecond)
		var body string
		_, body = postJSONGet(t, ts.URL+"/v1/jobs/"+st.ID)
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
	}

	res, resBody := colReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result", "", nil)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", res.StatusCode, resBody)
	}
	if ct := res.Header.Get("Content-Type"); ct != ColumnarContentType {
		t.Fatalf("result Content-Type %q", ct)
	}
	if res.Header.Get("X-Simra-Job") != st.ID {
		t.Fatalf("X-Simra-Job %q; want %s", res.Header.Get("X-Simra-Job"), st.ID)
	}
	if string(resBody) != string(blocking) {
		t.Fatal("job result bytes differ from the blocking columnar route")
	}

	// The job result pages exactly like the blocking route.
	page, pageBody := colReq(t, http.MethodGet,
		ts.URL+"/v1/jobs/"+st.ID+"/result?batch=0&batch_rows=2", "", nil)
	if page.StatusCode != http.StatusOK || page.Header.Get("X-Simra-Batch") != "0" {
		t.Fatalf("paged result: status %d batch %q", page.StatusCode, page.Header.Get("X-Simra-Batch"))
	}
	if _, err := colenc.Decode(pageBody); err != nil {
		t.Fatalf("paged job result does not decode: %v", err)
	}

	// Explicit matching format is fine; a contradictory or unknown format
	// is a 422.
	ok, _ := colReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?format=columnar", "", nil)
	if ok.StatusCode != http.StatusOK {
		t.Fatalf("matching ?format=columnar: status %d", ok.StatusCode)
	}
	for _, q := range []string{"format=text", "format=parquet"} {
		bad, badBody := colReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/result?"+q, "", nil)
		if bad.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("?%s: status %d, want 422 (%s)", q, bad.StatusCode, badBody)
		}
	}

	// And the reverse: a text job's result refuses ?format=columnar.
	code, tst := submitJob(t, ts.URL, `{"kind":"sweep","sweep":{"figure":"table1"}}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("text submit status %d", code)
	}
	deadline = time.Now().Add(10 * time.Second)
	for tst.State != jobs.StateSucceeded {
		if time.Now().After(deadline) {
			t.Fatalf("text job stuck in %s", tst.State)
		}
		time.Sleep(2 * time.Millisecond)
		var body string
		_, body = postJSONGet(t, ts.URL+"/v1/jobs/"+tst.ID)
		if err := json.Unmarshal([]byte(body), &tst); err != nil {
			t.Fatal(err)
		}
	}
	bad, _ := colReq(t, http.MethodGet, ts.URL+"/v1/jobs/"+tst.ID+"/result?format=columnar", "", nil)
	if bad.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("text job ?format=columnar: status %d, want 422", bad.StatusCode)
	}
}

// postJSONGet issues a GET and returns status + body, mirroring postJSON.
func postJSONGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}
