package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
)

// apiRoute is one row of the service's route table — the single source of
// truth both Handler() (mux registration) and OpenAPI() (the generated
// docs/openapi.json) walk, so the committed spec can only describe routes
// that actually exist and CI's spec-sync job catches any drift.
type apiRoute struct {
	// Method is the lowercase OpenAPI verb ("post", "get", "delete").
	Method string
	// Path is the OpenAPI path, with {id}-style parameters.
	Path string
	// Pattern overrides the mux registration pattern when it differs from
	// Path — method-qualified patterns ("GET /v1/jobs/{id}") or
	// cluster-internal prefixes. Empty means register Path bare (the
	// handler enforces the method itself, keeping the 405 error envelope).
	Pattern string
	// Summary is the route's one-line description.
	Summary string
	// Request is the JSON request body type (nil = no body).
	Request reflect.Type
	// Response is the 200-response schema type (nil = no JSON schema:
	// binary, SSE or text payloads described by Produces).
	Response reflect.Type
	// Produces lists extra response media types beyond application/json
	// (the columnar encoding, SSE, plain text).
	Produces []string
	// Columnar marks routes that serve application/vnd.simra.columnar
	// when the request negotiates it.
	Columnar bool
	// Internal marks fleet-internal routes, excluded from the public spec.
	Internal bool

	handler http.HandlerFunc
}

// routes builds the route table. Handlers are bound per call; the
// documentation fields are static.
func (s *Server) routes() []apiRoute {
	return []apiRoute{
		{
			Method: "post", Path: "/v1/sweep",
			Summary: "Run one characterization figure/table (charexp sweep)",
			Request: reflect.TypeOf(SweepRequest{}), Response: reflect.TypeOf(Response{}),
			Columnar: true,
			handler: endpoint(SweepRequest.normalize, s.runSweep,
				func(r *http.Request, q SweepRequest) SweepRequest {
					q.Format = acceptFormat(r, q.Format)
					return q
				}),
		},
		{
			Method: "post", Path: "/v1/workload",
			Summary: "Run a fleet-wide workload sweep",
			Request: reflect.TypeOf(WorkloadRequest{}), Response: reflect.TypeOf(Response{}),
			Columnar: true,
			handler: endpoint(WorkloadRequest.normalize, s.runWorkload,
				func(r *http.Request, q WorkloadRequest) WorkloadRequest {
					q.Format = acceptFormat(r, q.Format)
					return q
				}),
		},
		{
			Method: "post", Path: "/v1/trng",
			Summary: "Draw health-screened random bytes from the simulated TRNG",
			Request: reflect.TypeOf(TRNGRequest{}), Response: reflect.TypeOf(Response{}),
			handler: endpoint(TRNGRequest.normalize, s.runTRNG),
		},
		{
			Method: "post", Path: "/v1/scenario",
			Summary: "Run an operating-envelope scenario: grid scan or adaptive envelope search",
			Request: reflect.TypeOf(ScenarioRequest{}), Response: reflect.TypeOf(Response{}),
			Columnar: true,
			handler: endpoint(ScenarioRequest.normalize, s.runScenario,
				func(r *http.Request, q ScenarioRequest) ScenarioRequest {
					q.Format = acceptFormat(r, q.Format)
					return q
				}),
		},
		{
			Method: "post", Path: "/v1/campaign",
			Summary: "Run a fleet-design campaign: rank Table-2 module mixes by reliable throughput per watt",
			Request: reflect.TypeOf(CampaignRequest{}), Response: reflect.TypeOf(Response{}),
			Columnar: true,
			handler: endpoint(CampaignRequest.normalize, s.runCampaign,
				func(r *http.Request, q CampaignRequest) CampaignRequest {
					q.Format = acceptFormat(r, q.Format)
					return q
				}),
		},
		{
			Method: "post", Path: "/v1/batch",
			Summary: "Run several requests in one round trip, each through the cache + coalescing path",
			Request: reflect.TypeOf(BatchRequest{}), Response: reflect.TypeOf(BatchResponse{}),
			handler: post(s.handleBatch),
		},
		{
			Method: "post", Path: "/v1/jobs", Pattern: "POST /v1/jobs",
			Summary: "Submit a request for asynchronous execution on the job tier",
			Request: reflect.TypeOf(JobRequest{}), Response: reflect.TypeOf(jobs.Status{}),
			handler: s.handleSubmitJob,
		},
		{
			Method: "get", Path: "/v1/jobs", Pattern: "GET /v1/jobs",
			Summary: "List live and recently finished jobs",
			handler: s.handleListJobs,
		},
		{
			Method: "get", Path: "/v1/jobs/{id}", Pattern: "GET /v1/jobs/{id}",
			Summary:  "Get one job's status snapshot",
			Response: reflect.TypeOf(jobs.Status{}),
			handler:  s.handleGetJob,
		},
		{
			Method: "delete", Path: "/v1/jobs/{id}", Pattern: "DELETE /v1/jobs/{id}",
			Summary:  "Cancel a queued or running job",
			Response: reflect.TypeOf(jobs.Status{}),
			handler:  s.handleCancelJob,
		},
		{
			Method: "get", Path: "/v1/jobs/{id}/events", Pattern: "GET /v1/jobs/{id}/events",
			Summary:  "Stream the job's progress as Server-Sent Events (resumable via Last-Event-ID)",
			Produces: []string{"text/event-stream"},
			handler:  s.handleJobEvents,
		},
		{
			Method: "get", Path: "/v1/jobs/{id}/result", Pattern: "GET /v1/jobs/{id}/result",
			Summary:  "Fetch a succeeded job's rendered result bytes",
			Produces: []string{"text/plain"},
			Columnar: true,
			handler:  s.handleJobResult,
		},
		{
			Method: "get", Path: "/v1/version", Pattern: "GET /v1/version",
			Summary:  "Service identity, API revision and build provenance",
			Response: reflect.TypeOf(VersionInfo{}),
			handler:  s.handleVersion,
		},
		{
			Method: "get", Path: "/v1/openapi.json", Pattern: "GET /v1/openapi.json",
			Summary: "This document: the machine-readable API description",
			handler: func(w http.ResponseWriter, r *http.Request) {
				w.Header().Set("Content-Type", "application/json")
				w.Write(s.OpenAPI())
			},
		},
		{
			Method: "get", Path: "/healthz",
			Summary: "Liveness plus the node's cluster role and peer reachability",
			handler: s.handleHealth,
		},
		{
			Method: "get", Path: "/metrics",
			Summary:  "Prometheus-style counter page",
			Produces: []string{"text/plain"},
			handler: func(w http.ResponseWriter, r *http.Request) {
				s.writeMetrics(w)
			},
		},
		{
			Method: "post", Path: cluster.ShardPath, Pattern: "POST " + cluster.ShardPath,
			Internal: true,
			handler:  s.handleInternalShard,
		},
		{
			Method: "get", Path: cluster.CachePathPrefix + "{key}",
			Pattern: "GET " + cluster.CachePathPrefix + "{key}", Internal: true,
			handler: s.handleCacheGet,
		},
		{
			Method: "put", Path: cluster.CachePathPrefix + "{key}",
			Pattern: "PUT " + cluster.CachePathPrefix + "{key}", Internal: true,
			handler: s.handleCachePut,
		},
	}
}

// OpenAPI renders the public route table as an OpenAPI 3.0 document:
// deterministic, pretty-printed JSON with a trailing newline, identical
// to the committed docs/openapi.json (CI's spec-sync job regenerates it
// via simra-serve -dump-openapi and fails on any diff).
func (s *Server) OpenAPI() []byte {
	schemas := map[string]any{}
	paths := map[string]any{}
	for _, rt := range s.routes() {
		if rt.Internal {
			continue
		}
		op := map[string]any{
			"summary":   rt.Summary,
			"responses": routeResponses(rt, schemas),
		}
		if rt.Request != nil {
			op["requestBody"] = map[string]any{
				"required": true,
				"content": map[string]any{
					"application/json": map[string]any{
						"schema": schemaRef(rt.Request, schemas),
					},
				},
			}
		}
		if params := pathParams(rt.Path); len(params) > 0 {
			op["parameters"] = params
		}
		item, _ := paths[rt.Path].(map[string]any)
		if item == nil {
			item = map[string]any{}
			paths[rt.Path] = item
		}
		item[rt.Method] = op
	}
	doc := map[string]any{
		"openapi": "3.0.3",
		"info": map[string]any{
			"title":       "simra-serve",
			"description": "HTTP/JSON API over the DRAM processing-using-memory reproduction's experiment pipelines: characterization sweeps, fleet workload runs, TRNG draws and operating-envelope scenarios, with content-addressed result caching and an async job tier. Bulk tabular results are also served in the columnar colenc encoding (application/vnd.simra.columnar) negotiated per request; see docs/api-spec.md.",
			"version":     Version().APIRevision,
		},
		"paths":      paths,
		"components": map[string]any{"schemas": schemas},
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	enc.Encode(doc) // map-keyed document: deterministic, cannot fail
	return buf.Bytes()
}

// routeResponses documents a route's response surface: the JSON schema
// (when typed), the error envelope, and any negotiated media types.
func routeResponses(rt apiRoute, schemas map[string]any) map[string]any {
	content := map[string]any{}
	if rt.Response != nil {
		content["application/json"] = map[string]any{"schema": schemaRef(rt.Response, schemas)}
	}
	for _, mt := range rt.Produces {
		content[mt] = map[string]any{}
	}
	if rt.Columnar {
		content[ColumnarContentType] = map[string]any{
			"schema": map[string]any{"type": "string", "format": "binary"},
		}
	}
	ok := map[string]any{"description": "success"}
	if len(content) > 0 {
		ok["content"] = content
	}
	return map[string]any{
		"200": ok,
		"default": map[string]any{
			"description": "error envelope",
			"content": map[string]any{
				"application/json": map[string]any{
					"schema": schemaRef(reflect.TypeOf(ErrorEnvelope{}), schemas),
				},
			},
		},
	}
}

// pathParams documents the {id}-style path parameters of an OpenAPI path.
func pathParams(path string) []any {
	var out []any
	for _, seg := range strings.Split(path, "/") {
		if len(seg) > 2 && seg[0] == '{' && seg[len(seg)-1] == '}' {
			out = append(out, map[string]any{
				"name": seg[1 : len(seg)-1], "in": "path", "required": true,
				"schema": map[string]any{"type": "string"},
			})
		}
	}
	return out
}

// schemaRef returns a $ref to t's component schema, reflecting the type
// into components/schemas on first use. Named struct types become
// components; everything else inlines.
func schemaRef(t reflect.Type, schemas map[string]any) map[string]any {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t.Kind() != reflect.Struct || t == reflect.TypeOf(time.Time{}) {
		return schemaOf(t, schemas)
	}
	name := t.Name()
	if _, done := schemas[name]; !done {
		schemas[name] = map[string]any{} // placeholder breaks reference cycles
		props := map[string]any{}
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				continue
			}
			tag, _, _ := strings.Cut(f.Tag.Get("json"), ",")
			if tag == "-" {
				continue
			}
			if tag == "" {
				tag = f.Name
			}
			props[tag] = schemaOf(f.Type, schemas)
		}
		schemas[name] = map[string]any{"type": "object", "properties": props}
	}
	return map[string]any{"$ref": "#/components/schemas/" + name}
}

// schemaOf maps one Go type onto its OpenAPI schema.
func schemaOf(t reflect.Type, schemas map[string]any) map[string]any {
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == reflect.TypeOf(time.Time{}) {
		return map[string]any{"type": "string", "format": "date-time"}
	}
	switch t.Kind() {
	case reflect.Bool:
		return map[string]any{"type": "boolean"}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return map[string]any{"type": "integer"}
	case reflect.Float32, reflect.Float64:
		return map[string]any{"type": "number"}
	case reflect.String:
		return map[string]any{"type": "string"}
	case reflect.Slice, reflect.Array:
		return map[string]any{"type": "array", "items": schemaOf(t.Elem(), schemas)}
	case reflect.Map:
		return map[string]any{"type": "object", "additionalProperties": schemaOf(t.Elem(), schemas)}
	case reflect.Struct:
		return schemaRef(t, schemas)
	default:
		return map[string]any{}
	}
}
