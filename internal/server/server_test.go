package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/scenario"
)

// testServer spins a serving instance over httptest.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// smallSweep is a deliberately tiny sweep request for concurrency tests.
func smallSweep() string {
	return `{"figure":"3","trials":1,"groups":1,"banks":1,"cols":64,"format":"csv"}`
}

func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestCoalescingExecutesOnce is the acceptance criterion: N concurrent
// identical requests execute exactly one engine run, and every response —
// coalesced, cached or computed — carries byte-identical output.
func TestCoalescingExecutesOnce(t *testing.T) {
	s, ts := testServer(t, Config{})
	const n = 12
	outputs := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, body := postJSON(t, ts.URL+"/v1/sweep", smallSweep())
			if status != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, status, body)
				return
			}
			var r Response
			if err := json.Unmarshal([]byte(body), &r); err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			outputs[i] = r.Output
		}(i)
	}
	wg.Wait()
	if got := s.Executions("sweep"); got != 1 {
		t.Fatalf("%d concurrent identical requests executed %d engine runs; want exactly 1", n, got)
	}
	for i := 1; i < n; i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
	if outputs[0] == "" {
		t.Fatal("empty sweep output")
	}
	// A later identical request is a pure cache hit.
	_, body := postJSON(t, ts.URL+"/v1/sweep", smallSweep())
	var r Response
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if !r.Cached || r.Output != outputs[0] {
		t.Fatalf("follow-up request: cached=%v, identical=%v; want true, true", r.Cached, r.Output == outputs[0])
	}
	if got := s.Executions("sweep"); got != 1 {
		t.Fatalf("cache hit triggered another execution (%d total)", got)
	}
}

// TestSweepMatchesCharexpGolden pins the serving layer's byte contract:
// the raw response for the default Fig. 3 sweep equals the committed
// charexp golden — the same bytes an uncached direct run renders.
func TestSweepMatchesCharexpGolden(t *testing.T) {
	golden, err := os.ReadFile("../charexp/testdata/figure3.golden")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{})
	for i, label := range []string{"computed", "cached"} {
		status, body := postJSON(t, ts.URL+"/v1/sweep?raw=1", `{"figure":"3","format":"text"}`)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, status, body)
		}
		if body != string(golden) {
			t.Fatalf("%s (pass %d): served sweep bytes differ from charexp golden", label, i)
		}
	}
}

// TestWorkloadMatchesCLIGolden asserts a served workload response is
// byte-identical to cmd/simra-work's stdout for the same parameters (the
// committed CLI golden), cached and uncached.
func TestWorkloadMatchesCLIGolden(t *testing.T) {
	golden, err := os.ReadFile("../../cmd/simra-work/testdata/simra-work.golden")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{})
	req := `{"workloads":"all","modules":"all","cols":256,"format":"text"}`
	for i, label := range []string{"computed", "cached"} {
		status, body := postJSON(t, ts.URL+"/v1/workload?raw=1", req)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", label, status, body)
		}
		if body != string(golden) {
			t.Fatalf("%s (pass %d): served workload bytes differ from the simra-work golden", label, i)
		}
	}
}

// TestTRNGMatchesCLIGolden asserts the TRNG endpoint serves the same
// deterministic hex dump the CLI prints for the same seed.
func TestTRNGMatchesCLIGolden(t *testing.T) {
	golden, err := os.ReadFile("../../cmd/simra-trng/testdata/simra-trng.golden")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{})
	status, body := postJSON(t, ts.URL+"/v1/trng?raw=1", `{"bytes":64,"seed":2024,"rows":32}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	if body != string(golden) {
		t.Fatal("served TRNG bytes differ from the simra-trng golden")
	}
}

// TestScenarioMatchesCLI asserts a served scenario response — grid scan
// and envelope search, computed and cached — is byte-identical to what
// cmd/simra-scan prints on stdout for the same parameters (both render
// through scenario.WriteReport).
func TestScenarioMatchesCLI(t *testing.T) {
	s, ts := testServer(t, Config{})
	cases := []struct {
		name, req string
		opts      scenario.Options
	}{
		{"grid", `{"axes":"t2=1.5,3","cols":128,"groups":2,"banks":1,"trials":2}`,
			scenario.Options{Grid: "timing", Axes: "t2=1.5,3", Columns: 128, Groups: 2, Banks: 1, Trials: 2}},
		{"envelope", `{"envelope":"t2","grid":"nominal","cols":128,"groups":2,"banks":1,"trials":2}`,
			scenario.Options{Grid: "nominal", Envelope: "t2", Target: 0.9, Columns: 128, Groups: 2, Banks: 1, Trials: 2}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := c.opts.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var want strings.Builder
			if err := scenario.WriteReport(&want, res, "text"); err != nil {
				t.Fatal(err)
			}
			for i, label := range []string{"computed", "cached"} {
				status, body := postJSON(t, ts.URL+"/v1/scenario?raw=1", c.req)
				if status != http.StatusOK {
					t.Fatalf("%s: status %d: %s", label, status, body)
				}
				if body != want.String() {
					t.Fatalf("%s (pass %d): served scenario bytes differ from the CLI render", label, i)
				}
			}
		})
	}
	if got := s.Executions("scenario"); got != 2 {
		t.Fatalf("scenario executions = %d; want 2 (one per distinct request)", got)
	}
}

// TestScenarioKeyNormalization pins the cache-key defaulting: requests
// that spell out a default (modules, op, grid, format, envelope target)
// must hash to the same whole-response key as requests that omit it.
func TestScenarioKeyNormalization(t *testing.T) {
	norm := func(q ScenarioRequest) ScenarioRequest {
		t.Helper()
		n, err := q.normalize()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	base := norm(ScenarioRequest{Envelope: "t2"})
	spelled := norm(ScenarioRequest{
		Op: "activation", Grid: "timing", Modules: "representative",
		Envelope: "t2", Target: 0.9, Format: "text",
	})
	if base.key() != spelled.key() {
		t.Fatal("spelled-out defaults fragment the scenario response cache")
	}
	if other := norm(ScenarioRequest{Envelope: "t2", Modules: "full"}); other.key() == base.key() {
		t.Fatal("distinct fleets must not share a response key")
	}
}

// TestScenarioSharesShardMemo pins the cross-request shard sharing: two
// distinct scenario requests whose grids overlap reuse each other's point
// shards through the server's shared memo.
func TestScenarioSharesShardMemo(t *testing.T) {
	s, ts := testServer(t, Config{})
	base := `{"grid":"nominal","axes":"t2=1.5,3","cols":128,"groups":2,"banks":1,"trials":2}`
	wider := `{"grid":"nominal","axes":"t2=1.5,3,4.5","cols":128,"groups":2,"banks":1,"trials":2}`
	if status, body := postJSON(t, ts.URL+"/v1/scenario", base); status != http.StatusOK {
		t.Fatalf("base: status %d: %s", status, body)
	}
	before := s.CacheStats().Hits
	if status, body := postJSON(t, ts.URL+"/v1/scenario", wider); status != http.StatusOK {
		t.Fatalf("wider: status %d: %s", status, body)
	}
	if s.CacheStats().Hits <= before {
		t.Fatal("overlapping scenario request reused no point shards")
	}
}

// TestBatch runs a heterogeneous batch, with one failing item reported
// in-band.
func TestBatch(t *testing.T) {
	s, ts := testServer(t, Config{})
	body := `{"requests":[
		{"kind":"trng","trng":{"bytes":16,"seed":7}},
		{"kind":"trng","trng":{"bytes":16,"seed":7}},
		{"kind":"sweep","sweep":{"figure":"14"}},
		{"kind":"nope"}
	]}`
	status, out := postJSON(t, ts.URL+"/v1/batch", body)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	var batch BatchResponse
	if err := json.Unmarshal([]byte(out), &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Responses) != 4 {
		t.Fatalf("%d responses; want 4", len(batch.Responses))
	}
	if batch.Responses[0].Output == "" || batch.Responses[0].Output != batch.Responses[1].Output {
		t.Fatal("identical batch items returned different outputs")
	}
	if !batch.Responses[1].Cached {
		t.Fatal("second identical batch item was not served from cache")
	}
	if batch.Responses[2].Error != "" || batch.Responses[2].Output == "" {
		t.Fatalf("walkthrough item failed: %+v", batch.Responses[2])
	}
	if batch.Responses[3].Error == "" {
		t.Fatal("unknown kind did not report an error")
	}
	if got := s.Executions("trng"); got != 1 {
		t.Fatalf("batch executed %d TRNG runs; want 1", got)
	}
}

// TestBackpressure exercises the slot/queue accounting directly: with one
// slot and no queue, a second concurrent execution is shed with errBusy,
// and the shed counter advances.
func TestBackpressure(t *testing.T) {
	s := New(Config{MaxInflight: 1, MaxQueue: -1})
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.acquire(context.Background()); err != errBusy {
		t.Fatalf("second acquire = %v; want errBusy", err)
	}
	release()
	release2, err := s.acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
	release2()
	if s.busy.Load() != 1 {
		t.Fatalf("shed counter = %d; want 1", s.busy.Load())
	}
	if s.inflight.Load() != 0 {
		t.Fatalf("inflight = %d after releases; want 0", s.inflight.Load())
	}
}

// TestBlockingRetriesWhenCoalescedExecutionCanceled pins the blocking
// path's coalescing guarantee against the job tier: a job execution runs
// under its job's cancelable context in the same store, so a blocking
// request that coalesces onto it inherits context.Canceled when the job
// is DELETEd. The blocking caller must not surface that foreign
// cancellation — it re-enters the store and computes itself.
func TestBlockingRetriesWhenCoalescedExecutionCanceled(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)
	key := cache.Key{0xca}
	started := make(chan struct{})
	release := make(chan struct{})
	// Stand in for a job execution holding the key that ends canceled.
	go s.store.Do(key, func() (any, int64, error) {
		close(started)
		<-release
		return nil, 0, context.Canceled
	})
	<-started
	type result struct {
		resp Response
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := s.respond(context.Background(), "trng", key,
			func(context.Context) (string, error) { return "recomputed", nil })
		done <- result{resp, err}
	}()
	// Only release the fake execution once the blocking request has
	// coalesced onto it, so the retry path is actually exercised.
	deadline := time.Now().Add(5 * time.Second)
	for s.store.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("blocking request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	r := <-done
	if r.err != nil {
		t.Fatalf("blocking request inherited the job's cancellation: %v", r.err)
	}
	if r.resp.Output != "recomputed" {
		t.Fatalf("output %q, want %q", r.resp.Output, "recomputed")
	}
	if got := s.Executions("trng"); got != 1 {
		t.Fatalf("executions = %d; want 1 (the retry's own compute)", got)
	}
}

// TestBusyMapsTo503 asserts the HTTP mapping of shed load: 503 with a
// Retry-After header and a JSON error body.
func TestBusyMapsTo503(t *testing.T) {
	s, ts := testServer(t, Config{MaxInflight: 1, MaxQueue: -1})
	// Occupy the only slot so any execution is shed.
	release, err := s.acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	resp, err := http.Post(ts.URL+"/v1/trng", "application/json",
		strings.NewReader(`{"bytes":16,"seed":99}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (%s); want 503", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response carries no Retry-After header")
	}
	var e ErrorEnvelope
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Message == "" {
		t.Fatalf("shed response body %q is not a JSON error envelope", body)
	}
}

// TestCacheEviction bounds the response cache tightly and checks LRU
// accounting under distinct requests.
func TestCacheEviction(t *testing.T) {
	s, ts := testServer(t, Config{CacheBytes: 600})
	for seed := 1; seed <= 4; seed++ {
		status, body := postJSON(t, ts.URL+"/v1/trng",
			fmt.Sprintf(`{"bytes":64,"seed":%d}`, seed))
		if status != http.StatusOK {
			t.Fatalf("seed %d: status %d: %s", seed, status, body)
		}
	}
	st := s.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 600-byte budget: %+v", st)
	}
	if st.Bytes > 600 {
		t.Fatalf("cache grew past its budget: %+v", st)
	}
}

// TestValidation covers the 4xx surface.
// TestValidation pins the error contract of every endpoint: a malformed
// body is 400, a well-formed body naming unknown figures/workloads/ops/
// axes (or out-of-range values) is 422, and both carry a JSON error body
// — for unknown names, one listing the valid options.
func TestValidation(t *testing.T) {
	_, ts := testServer(t, Config{})
	cases := []struct {
		path, body string
		want       int
		errHas     string // substring the JSON "error" field must contain
	}{
		// Malformed bodies: 400.
		{"/v1/sweep", `not json`, http.StatusBadRequest, ""},
		{"/v1/sweep", `{"figure":"3","bogus":1}`, http.StatusBadRequest, "bogus"},
		{"/v1/workload", `{"modules":`, http.StatusBadRequest, ""},
		{"/v1/trng", `[1,2,3]`, http.StatusBadRequest, ""},
		{"/v1/scenario", `{"op":3}`, http.StatusBadRequest, ""},
		{"/v1/batch", `{"requests":"nope"}`, http.StatusBadRequest, ""},
		// Well-formed but invalid values: 422 listing valid options.
		{"/v1/sweep", `{"figure":"99"}`, http.StatusUnprocessableEntity, "valid: table1"},
		{"/v1/sweep", `{"figure":"3","format":"yaml"}`, http.StatusUnprocessableEntity, "valid: text, csv, columnar"},
		{"/v1/workload", `{"format":"parquet"}`, http.StatusUnprocessableEntity, "valid: text, csv, columnar"},
		{"/v1/scenario", `{"format":"arrow"}`, http.StatusUnprocessableEntity, "valid: text, csv, columnar"},
		{"/v1/workload", `{"modules":"martian"}`, http.StatusUnprocessableEntity, "valid: representative, full, samsung, all"},
		{"/v1/workload", `{"workloads":"no-such-workload"}`, http.StatusUnprocessableEntity, "have bitmap-scan"},
		{"/v1/trng", `{"rows":3}`, http.StatusUnprocessableEntity, "power of two"},
		{"/v1/trng", `{"bytes":-5}`, http.StatusUnprocessableEntity, "bytes"},
		{"/v1/scenario", `{"op":"refresh"}`, http.StatusUnprocessableEntity, "valid: activation, maj, copy"},
		{"/v1/scenario", `{"grid":"galactic"}`, http.StatusUnprocessableEntity, "valid: nominal, timing"},
		{"/v1/scenario", `{"axes":"freq=1"}`, http.StatusUnprocessableEntity, "unknown axis"},
		{"/v1/scenario", `{"envelope":"pattern"}`, http.StatusUnprocessableEntity, "valid: t1, t2, temp, vpp, aging"},
	}
	for _, c := range cases {
		status, body := postJSON(t, ts.URL+c.path, c.body)
		if status != c.want {
			t.Errorf("POST %s %s: status %d; want %d", c.path, c.body, status, c.want)
			continue
		}
		var e ErrorEnvelope
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error.Message == "" {
			t.Errorf("POST %s %s: error body %q is not a JSON error envelope", c.path, c.body, body)
			continue
		}
		if c.errHas != "" && !strings.Contains(e.Error.Message, c.errHas) {
			t.Errorf("POST %s %s: error %q does not mention %q", c.path, c.body, e.Error.Message, c.errHas)
		}
		if e.Error.RequestID == "" {
			t.Errorf("POST %s %s: error body carries no request_id", c.path, c.body)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sweep")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/sweep: status %d; want 405", resp.StatusCode)
	}
}

// TestHealthAndMetrics covers the observability endpoints.
func TestHealthAndMetrics(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"status":"ok"`)) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, b)
	}

	postJSON(t, ts.URL+"/v1/trng", `{"bytes":16,"seed":5}`)
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(b)
	for _, want := range []string{
		`simra_serve_requests_total{kind="trng"} 1`,
		`simra_serve_executions_total{kind="trng"} 1`,
		"simra_cache_entries 1",
		"simra_serve_inflight 0",
		"simra_cache_capacity_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestListenAndServeGracefulShutdown drives the real listener: readiness
// handshake, one request, then context-cancelled shutdown.
func TestListenAndServeGracefulShutdown(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe(ctx, ready) }()
	addr := <-ready
	status, _ := postJSON(t, "http://"+addr+"/v1/trng", `{"bytes":16,"seed":3}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown returned %v; want nil", err)
	}
}
