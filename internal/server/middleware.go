package server

import (
	"context"
	"crypto/rand"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/cache"
)

// ctxKey namespaces the middleware's context values.
type ctxKey int

const (
	ridCtxKey ctxKey = iota
	clientCtxKey
	auditCtxKey
)

// RequestIDFrom returns the request ID injected by the middleware chain
// ("" outside a request).
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ridCtxKey).(string)
	return id
}

// ClientFrom returns the authenticated client identity ("anonymous" when
// auth is disabled, "" outside a request).
func ClientFrom(ctx context.Context) string {
	c, _ := ctx.Value(clientCtxKey).(string)
	return c
}

// newRequestID generates a fresh 16-hex-char request ID.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// requestID is the outermost middleware: it honors a syntactically sane
// incoming X-Request-ID (propagation from an upstream proxy or a
// coordinator's cross-node shard call), generates one otherwise, stores
// it in the context for handlers, the audit log and error envelopes, and
// echoes it on the response.
func requestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" || len(id) > 128 || strings.ContainsAny(id, " \t\r\n\"") {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), ridCtxKey, id)))
	})
}

// statusRecorder captures the response status for the audit log while
// forwarding http.Flusher — the SSE route requires flushing through the
// whole middleware chain.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (rec *statusRecorder) WriteHeader(code int) {
	rec.status = code
	rec.ResponseWriter.WriteHeader(code)
}

func (rec *statusRecorder) Write(b []byte) (int, error) {
	if rec.status == 0 {
		rec.status = http.StatusOK
	}
	return rec.ResponseWriter.Write(b)
}

// Flush implements http.Flusher when the underlying writer does.
func (rec *statusRecorder) Flush() {
	if f, ok := rec.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// auditEntry is one append-only audit-log line. The auth middleware
// (which runs inside audit) fills Client via the context pointer.
type auditEntry struct {
	Time       string `json:"time"`
	RequestID  string `json:"request_id"`
	Client     string `json:"client,omitempty"`
	Method     string `json:"method"`
	Path       string `json:"path"`
	Status     int    `json:"status"`
	DurationMS int64  `json:"duration_ms"`
}

// audit wraps the chain in append-only JSON-line audit logging. It sits
// outside auth and rate limiting so rejected requests (401/403/429) are
// recorded too; the entry carries the request ID and, once auth ran, the
// client identity. A nil Config.AuditLog disables it.
func (s *Server) audit(next http.Handler) http.Handler {
	if s.cfg.AuditLog == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		e := &auditEntry{
			RequestID: RequestIDFrom(r.Context()),
			Method:    r.Method,
			Path:      r.URL.Path,
		}
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), auditCtxKey, e)))
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		e.Time = start.UTC().Format(time.RFC3339Nano)
		e.Status = rec.status
		e.DurationMS = time.Since(start).Milliseconds()
		line, err := json.Marshal(e)
		if err != nil {
			return
		}
		s.auditMu.Lock()
		fmt.Fprintf(s.cfg.AuditLog, "%s\n", line)
		s.auditMu.Unlock()
	})
}

// auditWarn emits one out-of-band operational warning line on the audit
// log (a no-op when audit logging is off). Warnings share the request
// log's append-only stream and serialization, so e.g. remote cache-tier
// failures appear interleaved with the requests they degraded.
func (s *Server) auditWarn(event, detail string) {
	if s.cfg.AuditLog == nil {
		return
	}
	line, err := json.Marshal(map[string]string{
		"time":   time.Now().UTC().Format(time.RFC3339Nano),
		"level":  "warn",
		"event":  event,
		"detail": detail,
	})
	if err != nil {
		return
	}
	s.auditMu.Lock()
	fmt.Fprintf(s.cfg.AuditLog, "%s\n", line)
	s.auditMu.Unlock()
}

// auditClient records the authenticated client on the in-flight audit
// entry (a no-op without audit logging).
func auditClient(ctx context.Context, client string) {
	if e, ok := ctx.Value(auditCtxKey).(*auditEntry); ok {
		e.Client = client
	}
}

// isPublicPath reports whether the path bypasses auth and rate limiting
// (liveness and metrics must stay scrapeable without credentials).
func isPublicPath(p string) bool { return p == "/healthz" || p == "/metrics" }

// isInternalPath reports whether the path is fleet-internal (shard
// execution, shared cache tier): cluster-token auth, no client rate
// limiting — one public request may legitimately fan out into many
// internal ones.
func isInternalPath(p string) bool { return strings.HasPrefix(p, "/v1/internal/") }

// tokenEqual compares secrets in constant time.
func tokenEqual(a, b string) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare([]byte(a), []byte(b)) == 1
}

// bearerToken extracts the Authorization bearer token ("" when absent).
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// auth enforces bearer-token authentication with per-client identity.
// Public paths pass through; internal paths require the fleet's cluster
// token (a valid client token there is authenticated but not authorized:
// 403); every other /v1 route requires one of Config.AuthTokens when any
// are configured. Rejections happen before the rate limiter runs, so an
// unauthenticated request never spends a client's tokens.
func (s *Server) auth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isPublicPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		tok := bearerToken(r)
		if isInternalPath(r.URL.Path) {
			if s.cfg.ClusterToken == "" || tokenEqual(tok, s.cfg.ClusterToken) {
				auditClient(r.Context(), "cluster")
				next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), clientCtxKey, "cluster")))
				return
			}
			if client, ok := s.lookupClient(tok); ok {
				// Authenticated as a client, but client tokens don't grant
				// fleet-internal access.
				auditClient(r.Context(), client)
				writeError(w, r, fmt.Errorf("client %q is not authorized for fleet-internal routes", client),
					http.StatusForbidden)
				return
			}
			writeError(w, r, fmt.Errorf("fleet-internal routes require the cluster token"),
				http.StatusUnauthorized)
			return
		}
		if len(s.cfg.AuthTokens) == 0 {
			auditClient(r.Context(), "anonymous")
			next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), clientCtxKey, "anonymous")))
			return
		}
		client, ok := s.lookupClient(tok)
		if !ok {
			msg := "missing bearer token"
			if tok != "" {
				msg = "invalid bearer token"
			}
			writeError(w, r, fmt.Errorf("%s", msg), http.StatusUnauthorized)
			return
		}
		auditClient(r.Context(), client)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), clientCtxKey, client)))
	})
}

// lookupClient resolves a bearer token to its client identity in
// constant time per candidate.
func (s *Server) lookupClient(tok string) (string, bool) {
	if tok == "" {
		return "", false
	}
	client, ok := "", false
	for t, c := range s.cfg.AuthTokens {
		if tokenEqual(tok, t) {
			client, ok = c, true
		}
	}
	return client, ok
}

// bucketState is the serialized token-bucket state of one client, stored
// in the shared cache tier so the limit holds fleet-wide.
type bucketState struct {
	Tokens   float64 `json:"tokens"`
	UnixNano int64   `json:"unix_nano"`
}

// rateLimiter is a per-client token bucket backed by a cache.Backend.
// With the fleet's shared tier as the store, every node debits the same
// bucket, so the limit is enforced across the fleet. The read-modify-
// write is serialized per node but best-effort across nodes (two nodes
// racing may each admit a request — an approximation DESIGN.md §12
// documents); the bucket converges because every node writes
// monotonically advancing timestamps.
type rateLimiter struct {
	mu    sync.Mutex
	store cache.Backend
	rate  float64
	burst float64
}

// newRateLimiter builds a limiter admitting rate requests/second with
// the given burst (min 1).
func newRateLimiter(store cache.Backend, rate float64, burst int) *rateLimiter {
	b := float64(burst)
	if b < 1 {
		b = math.Max(1, math.Ceil(rate))
	}
	return &rateLimiter{store: store, rate: rate, burst: b}
}

// clientBucketKey addresses a client's bucket in the shared tier.
func clientBucketKey(client string) cache.Key {
	return cache.NewHasher().Str("ratelimit/v1").Str(client).Sum()
}

// allow debits one token from the client's bucket, reporting the
// Retry-After seconds when the bucket is empty.
func (l *rateLimiter) allow(client string, now time.Time) (retryAfter int, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	key := clientBucketKey(client)
	st := bucketState{Tokens: l.burst, UnixNano: now.UnixNano()}
	if b, found := l.store.Get(key); found {
		var prev bucketState
		if err := json.Unmarshal(b, &prev); err == nil && prev.UnixNano > 0 {
			elapsed := float64(now.UnixNano()-prev.UnixNano) / float64(time.Second)
			if elapsed < 0 {
				elapsed = 0
			}
			st.Tokens = math.Min(l.burst, prev.Tokens+elapsed*l.rate)
		}
	}
	if st.Tokens < 1 {
		l.put(key, st)
		return int(math.Max(1, math.Ceil((1-st.Tokens)/l.rate))), false
	}
	st.Tokens--
	l.put(key, st)
	return 0, true
}

func (l *rateLimiter) put(key cache.Key, st bucketState) {
	if b, err := json.Marshal(st); err == nil {
		l.store.Put(key, b)
	}
}

// rateLimit enforces the per-client token bucket on every public /v1
// route. It runs inside auth, so only authenticated requests spend
// tokens; 429 responses carry Retry-After and the error envelope.
func (s *Server) rateLimit(next http.Handler) http.Handler {
	if s.limiter == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if isPublicPath(r.URL.Path) || isInternalPath(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		client := ClientFrom(r.Context())
		if client == "" {
			client = "anonymous"
		}
		if retry, ok := s.limiter.allow(client, time.Now()); !ok {
			s.rateLimited.Add(1)
			w.Header().Set("Retry-After", fmt.Sprint(retry))
			writeError(w, r, fmt.Errorf("client %q exceeded %g requests/second", client, s.limiter.rate),
				http.StatusTooManyRequests)
			return
		}
		next.ServeHTTP(w, r)
	})
}
