// Package server is the serving layer of the reproduction: an HTTP/JSON
// batch API over the experiment facade, fronted by the content-addressed
// result cache (internal/cache) at two levels — whole-request responses
// and per-shard engine results — with singleflight request coalescing and
// bounded in-flight concurrency with backpressure.
//
// Endpoints:
//
//	POST /v1/sweep     one characterization figure/table (cmd/simra-char's surface)
//	POST /v1/workload  a fleet-wide workload run (cmd/simra-work's surface)
//	POST /v1/trng      health-screened random bytes (cmd/simra-trng's surface)
//	POST /v1/scenario  an operating-envelope scan or envelope search (cmd/simra-scan's surface)
//	POST /v1/campaign  a fleet-design campaign over Table-2 module mixes (cmd/simra-campaign's surface)
//	POST /v1/batch     several of the above in one round trip
//	GET  /healthz      liveness
//	GET  /metrics      Prometheus-style counters
//
// Malformed request bodies return 400; well-formed requests naming
// unknown figures, workloads, modules, ops or axes return 422 with an
// error listing the valid options.
//
// Responses are JSON envelopes (Response); appending ?raw=1 returns the
// rendered output bytes alone. Workload responses equal cmd/simra-work's
// stdout byte for byte; sweep responses equal the rendered figure table
// (what simra-char prints before its text-mode timing/engine lines);
// TRNG responses equal simra-trng's hex dump — the properties the CI e2e
// job asserts against the committed goldens. Because every simulation
// result is bit-identical for any worker count, cached, coalesced and
// freshly computed responses are all byte-identical too (DESIGN.md §9).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/colenc"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/jobs"
	"repro/internal/workload"
)

// DefaultCacheBytes bounds the shared result cache when Config.CacheBytes
// is zero.
const DefaultCacheBytes = 64 << 20

// Config parameterizes a serving instance. The zero value is usable.
type Config struct {
	// Addr is the listen address for ListenAndServe (default
	// "127.0.0.1:8077").
	Addr string
	// CacheBytes bounds the shared result cache (responses + engine
	// shards; 0 = DefaultCacheBytes, negative = unbounded).
	CacheBytes int64
	// MaxInflight bounds concurrently executing engine runs (0 =
	// GOMAXPROCS). Identical concurrent requests coalesce onto one run
	// and consume one slot.
	MaxInflight int
	// MaxQueue bounds executions waiting for a slot; beyond it requests
	// are shed with 503 + Retry-After (0 = 64, negative = no queue).
	MaxQueue int
	// Workers bounds each engine run's shard parallelism (0 = GOMAXPROCS).
	// It never affects response bytes.
	Workers int
	// JobWorkers bounds the async job tier's executor pool (0 = 2). Jobs
	// don't claim MaxInflight slots: this pool is their concurrency bound.
	JobWorkers int
	// JobQueue bounds admitted-but-not-executing jobs (0 = 64); beyond it
	// submissions are shed with 503 + Retry-After.
	JobQueue int
	// JobTTL is how long a terminal job stays queryable (0 = 15m).
	JobTTL time.Duration
	// JobPoll is the progress monitor's sampling interval (0 = 100ms);
	// SSE progress events coalesce to this rate.
	JobPoll time.Duration
	// MaxSSE caps concurrent job event-stream subscribers (0 = 32).
	MaxSSE int
	// MaxSSEPerClient caps concurrent job event-stream subscribers per
	// client identity (0 = 8) — the authenticated bearer client, or the
	// remote address when client auth is off — so one client cannot
	// exhaust the global subscriber pool.
	MaxSSEPerClient int
	// WarmpoolPerKey caps idle warm module instances kept per module
	// identity for job executions (0 = 4).
	WarmpoolPerKey int

	// Groups is the number of in-process worker groups shard execution
	// fans out over (each an independent cache domain with its own module
	// pool). 0 keeps single-node in-process execution — no coordinator at
	// all — unless Peers makes one necessary.
	Groups int
	// Peers are base URLs of remote worker nodes (e.g.
	// "http://10.0.0.2:8077"); shards rendezvous-hash across the local
	// group(s) and every peer. Results are byte-identical for every fleet
	// composition.
	Peers []string
	// CachePeer, when set, is the base URL of the node hosting the fleet's
	// shared cache tier; this node's misses consult it and its results are
	// written through to it. Typically the coordinator's URL on workers.
	CachePeer string
	// Backend, when non-nil, is the shared cache tier directly (tests
	// inject a cache.MemBackend two Servers share). Takes precedence over
	// CachePeer. When neither is set and the node is part of a fleet
	// (Groups > 1 or Peers non-empty), the node hosts its own in-process
	// backend, which it also serves at /v1/internal/cache/{key}.
	Backend cache.Backend
	// ClusterToken authenticates fleet-internal routes (/v1/internal/*)
	// and outgoing peer calls. Empty leaves internal routes open (dev
	// fleets on a trusted network).
	ClusterToken string
	// AuthTokens maps bearer tokens to client identities. Empty disables
	// client auth: every request is the "anonymous" client.
	AuthTokens map[string]string
	// RatePerSec, when > 0, rate-limits each client with a token bucket
	// shared through the cache tier, so the limit holds fleet-wide.
	RatePerSec float64
	// RateBurst is the bucket capacity (0 = max(1, ceil(RatePerSec))).
	RateBurst int
	// AuditLog, when non-nil, receives one JSON line per request
	// (append-only; writes are serialized).
	AuditLog io.Writer
}

// withDefaults resolves zero-value fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8077"
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = DefaultCacheBytes
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // unbounded for cache.New
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// errBusy sheds load when the execution queue is full.
var errBusy = errors.New("server: execution queue full")

// kinds are the request families the counters track.
var kinds = []string{"sweep", "workload", "trng", "scenario", "campaign", "batch"}

// kindCounters tracks one request family.
type kindCounters struct {
	requests   atomic.Int64
	executions atomic.Int64
	errors     atomic.Int64
}

// Server serves the experiment facade over HTTP. Create with New.
type Server struct {
	cfg   Config
	store *cache.Cache
	// tier layers store over the fleet's shared cache backend (a
	// transparent view of store on a single node): the response cache
	// every request family goes through.
	tier *cache.Tiered
	// hosted is this node's in-process shared-tier store, served at
	// /v1/internal/cache/{key} so other nodes can use this node as their
	// CachePeer; backend is the tier this node itself reads/writes (nil,
	// Config.Backend, a RemoteCache client, or hosted).
	hosted  *cache.MemBackend
	backend cache.Backend
	// sweepMemo, workloadMemo and campaignMemo are typed views of store
	// used as engine shard memos, so shard results are shared across
	// requests that only partially overlap (e.g. two figures sweeping the
	// same cell, or a campaign warming later workload requests).
	sweepMemo    engine.Memo[[]core.GroupOutcome]
	workloadMemo engine.Memo[[]workload.Result]
	campaignMemo engine.Memo[campaign.Eval]

	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	busy     atomic.Int64
	counters map[string]*kindCounters
	start    time.Time

	// jobs is the async tier (POST /v1/jobs …); pool is its warmpool of
	// reusable module instances.
	jobs *jobs.Manager
	pool *jobs.Warmpool

	// groups are the in-process worker groups; worker (= groups[0]) serves
	// /v1/internal/shard; coord fans shards across groups and peers (nil on
	// a single node — families then execute shards in-process, exactly the
	// pre-cluster path).
	groups []*cluster.Group
	worker *cluster.Group
	coord  *cluster.Coordinator
	peers  []*cluster.Peer
	// shardSlots bounds concurrent fleet-internal shard executions
	// (independent of MaxInflight, which bounds public-request runs).
	shardSlots chan struct{}

	// limiter enforces the per-client rate limit; auditMu serializes
	// audit-log lines; rateLimited counts 429s.
	limiter     *rateLimiter
	auditMu     sync.Mutex
	rateLimited atomic.Int64
}

// New builds a serving instance.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	store := cache.New(cfg.CacheBytes)
	s := &Server{
		cfg:   cfg,
		store: store,
		sweepMemo: cache.NewTyped[[]core.GroupOutcome](store, func(outs []core.GroupOutcome) int64 {
			n := int64(64)
			for _, o := range outs {
				n += 96 + int64(8*len(o.Group.Rows))
			}
			return n
		}),
		workloadMemo: cache.NewTyped[[]workload.Result](store, func(rs []workload.Result) int64 {
			return 64 + int64(len(rs))*360
		}),
		campaignMemo: cache.NewTyped[campaign.Eval](store, func(campaign.Eval) int64 {
			return 96
		}),
		slots:    make(chan struct{}, cfg.MaxInflight),
		counters: make(map[string]*kindCounters, len(kinds)),
		start:    time.Now(),
	}
	for _, k := range kinds {
		s.counters[k] = &kindCounters{}
	}
	s.pool = jobs.NewWarmpool(cfg.WarmpoolPerKey)
	s.jobs = jobs.NewManager(jobs.Config{
		Workers:         cfg.JobWorkers,
		QueueDepth:      cfg.JobQueue,
		TTL:             cfg.JobTTL,
		Poll:            cfg.JobPoll,
		MaxSSE:          cfg.MaxSSE,
		MaxSSEPerClient: cfg.MaxSSEPerClient,
	})

	// Cluster wiring. The shared backend resolves by priority: an injected
	// Backend (tests), a CachePeer client, or — when this node is part of a
	// fleet — its own hosted in-process backend. A lone node gets none:
	// tier stays a transparent view of store.
	s.hosted = cache.NewMemBackend()
	fleetNode := cfg.Groups > 1 || len(cfg.Peers) > 0
	switch {
	case cfg.Backend != nil:
		s.backend = cfg.Backend
	case cfg.CachePeer != "":
		rc := cluster.NewRemoteCache(cfg.CachePeer, cfg.ClusterToken)
		// Remote-tier failures degrade to misses by contract, but not
		// silently: each one lands in the audit log (and the error counter
		// feeds simra_cache_remote_errors_total), so a down or
		// misconfigured cache host is visible instead of looking like a
		// cold cache.
		rc.OnError = func(op string, err error) {
			s.auditWarn("cache_remote_error", fmt.Sprintf("%s %s: %v", op, cfg.CachePeer, err))
		}
		s.backend = rc
	case fleetNode:
		s.backend = s.hosted
	}
	s.tier = cache.NewTiered(store, s.backend)

	// Worker groups: group-0 shares the server's store and warmpool (a
	// lone worker node executes incoming shards against its main cache);
	// further groups are independent cache domains with their own pools.
	n := cfg.Groups
	if n < 1 {
		n = 1
	}
	for i := 0; i < n; i++ {
		gstore, gpool := store, dram.ModulePool(s.pool)
		if i > 0 {
			gstore, gpool = cache.New(cfg.CacheBytes), jobs.NewWarmpool(cfg.WarmpoolPerKey)
		}
		s.groups = append(s.groups, cluster.NewGroup(fmt.Sprintf("group-%d", i), gstore, s.backend, gpool))
	}
	s.worker = s.groups[0]
	s.shardSlots = make(chan struct{}, cfg.MaxInflight)

	// A coordinator exists only when there is a fleet to coordinate
	// (Groups >= 1 explicitly, or any peer). Groups == 0 with no peers
	// keeps the families' in-process shard path.
	if cfg.Groups >= 1 || len(cfg.Peers) > 0 {
		workers := make([]cluster.Worker, 0, len(s.groups)+len(cfg.Peers))
		for _, g := range s.groups {
			workers = append(workers, g)
		}
		for _, p := range cfg.Peers {
			pe := cluster.NewPeer(p, cfg.ClusterToken)
			s.peers = append(s.peers, pe)
			workers = append(workers, pe)
		}
		s.coord = cluster.New(s.worker, workers...)
	}

	if cfg.RatePerSec > 0 {
		lstore := s.backend
		if lstore == nil {
			lstore = s.hosted
		}
		s.limiter = newRateLimiter(lstore, cfg.RatePerSec, cfg.RateBurst)
	}
	return s
}

// dispatch returns the engine dispatcher for an execution started under
// ctx: nil on a single node (families run shards in-process), otherwise
// the coordinator stamped with the originating request's ID so remote
// workers' audit trails tie back to it. Detached execution contexts
// preserve values, so coalesced and job executions resolve correctly.
func (s *Server) dispatch(ctx context.Context) engine.Dispatcher {
	if s.coord == nil {
		return nil
	}
	return s.coord.WithRequestID(RequestIDFrom(ctx))
}

// Close stops the job tier: running jobs are cancelled, the executor
// workers and GC loop exit, and pending webhook deliveries settle.
func (s *Server) Close() { s.jobs.Close() }

// JobMetrics exposes the job tier's counters (tests assert them; /metrics
// renders them).
func (s *Server) JobMetrics() jobs.Metrics { return s.jobs.Metrics() }

// CacheStats exposes the cache tier's counters (local store plus the
// remote backend's hit/miss counts when one is configured).
func (s *Server) CacheStats() cache.Stats { return s.tier.Stats() }

// ClusterStats exposes the coordinator's per-worker dispatch counters
// (zero-valued on a single node).
func (s *Server) ClusterStats() cluster.Stats {
	if s.coord == nil {
		return cluster.Stats{Dispatched: map[string]int64{}}
	}
	return s.coord.Stats()
}

// Executions returns how many engine runs the given request kind has
// actually executed (coalesced and cached requests excluded): the counter
// the coalescing tests and the CI e2e job assert.
func (s *Server) Executions(kind string) int64 {
	c, ok := s.counters[kind]
	if !ok {
		return 0
	}
	return c.executions.Load()
}

// acquire claims an execution slot, queueing up to MaxQueue waiters and
// shedding load with errBusy beyond that. The returned release function
// must be called when the execution finishes.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	claim := func() func() {
		s.inflight.Add(1)
		return func() {
			s.inflight.Add(-1)
			<-s.slots
		}
	}
	select {
	case s.slots <- struct{}{}:
		return claim(), nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.busy.Add(1)
		return nil, errBusy
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return claim(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// respond runs one request through the response cache: a hit returns the
// stored bytes, concurrent identical requests coalesce onto a single
// execution, and a fresh execution claims an in-flight slot first. The
// execution runs on a context detached from the initiating request:
// coalesced waiters share it, so one client's disconnect must not fail
// the others (or waste the nearly finished result). The returned Cached
// flag reports whether this call avoided executing.
//
// The shared store is also the job tier's, and a job execution runs
// under its job's cancelable context — so a blocking request can
// coalesce onto an execution that a DELETE /v1/jobs/{id} then kills.
// That cancellation is the job's, not this caller's: when a coalesced
// wait ends in context.Canceled while our own caller is still live, we
// re-enter the store and compute (detached, as always) ourselves.
func (s *Server) respond(ctx context.Context, kind string, key cache.Key, exec func(ctx context.Context) (string, error)) (Response, error) {
	s.counters[kind].requests.Add(1)
	detached := context.WithoutCancel(ctx)
	var (
		v        any
		err      error
		executed bool
	)
	for {
		executed = false
		v, err = s.tier.Do(key, func() (any, int64, error) {
			executed = true
			release, err := s.acquire(detached)
			if err != nil {
				return nil, 0, err
			}
			defer release()
			s.counters[kind].executions.Add(1)
			out, err := exec(detached)
			if err != nil {
				return nil, 0, err
			}
			return out, int64(len(out)), nil
		})
		if err != nil && !executed && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			// Inherited from a canceled job execution we coalesced onto.
			// Our own execution can't be canceled (it runs detached), so
			// retrying terminates: either we hit the cache, coalesce onto
			// a live execution, or become the executor ourselves.
			continue
		}
		break
	}
	if err != nil {
		s.counters[kind].errors.Add(1)
		return Response{Kind: kind, Key: cache.KeyString(key)}, err
	}
	return Response{
		Kind:   kind,
		Key:    cache.KeyString(key),
		Cached: !executed,
		Output: v.(string),
	}, nil
}

// runSweep executes one normalized sweep request.
func (s *Server) runSweep(ctx context.Context, q SweepRequest) (Response, error) {
	return s.respond(ctx, "sweep", q.key(), blocking(s.sweepExec(q)))
}

// runWorkload executes one normalized workload request.
func (s *Server) runWorkload(ctx context.Context, q WorkloadRequest) (Response, error) {
	return s.respond(ctx, "workload", q.key(), blocking(s.workloadExec(q)))
}

// runScenario executes one normalized scenario request. Point shards are
// memoized in the same store as sweep shards (both are []core.GroupOutcome
// under distinct key families), so an envelope search warms later grid
// scans and vice versa.
func (s *Server) runScenario(ctx context.Context, q ScenarioRequest) (Response, error) {
	return s.respond(ctx, "scenario", q.key(), blocking(s.scenarioExec(q)))
}

// runTRNG executes one normalized TRNG request.
func (s *Server) runTRNG(ctx context.Context, q TRNGRequest) (Response, error) {
	return s.respond(ctx, "trng", q.key(), blocking(s.trngExec(q)))
}

// runCampaign executes one normalized campaign request. Phase-1 module
// shards share the workload memo (a campaign warms workload requests and
// vice versa); phase-2 candidate evaluations memoize under their own
// campaign/candidate keys.
func (s *Server) runCampaign(ctx context.Context, q CampaignRequest) (Response, error) {
	return s.respond(ctx, "campaign", q.key(), blocking(s.campaignExec(q)))
}

// blocking adapts a family pipeline to the blocking routes: no progress
// accumulator, no warmpool — neither affects result bytes, so the
// blocking response, the job-tier result and the CLI stdout stay
// byte-identical (the invariance suite asserts it).
func blocking(run kindExec) func(ctx context.Context) (string, error) {
	return func(ctx context.Context) (string, error) {
		return run(ctx, nil, nil)
	}
}

// decodeJSON strictly parses the request body.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// writeResponse renders one Response: the columnar stream when the
// output carries the colenc magic, the JSON envelope otherwise, or the
// raw output bytes under ?raw=1.
func writeResponse(w http.ResponseWriter, r *http.Request, resp Response) {
	if strings.HasPrefix(resp.Output, colenc.Magic) {
		writeColumnar(w, r, resp.Output, map[string]string{
			"X-Simra-Key":    resp.Key,
			"X-Simra-Cached": fmt.Sprint(resp.Cached),
		})
		return
	}
	if raw := r.URL.Query().Get("raw"); raw == "1" || raw == "true" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Simra-Key", resp.Key)
		w.Header().Set("X-Simra-Cached", fmt.Sprint(resp.Cached))
		io.WriteString(w, resp.Output)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// writeJSON renders v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// post guards the mutation endpoints.
func post(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, r, fmt.Errorf("%s not allowed; POST only", r.Method), http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

// endpoint builds the standard POST handler shape shared by every request
// family: a malformed body is 400, a well-formed body that fails
// normalization (unknown figure/workload/op/axis names, out-of-range
// values) is 422 with an error listing the valid options, and an
// execution failure is 500.
// The optional prep hooks run between decode and normalization — the
// format-bearing families use one to default an empty format from the
// Accept header (content negotiation never overrides an explicit body
// format).
func endpoint[Q any](normalize func(Q) (Q, error), run func(context.Context, Q) (Response, error), prep ...func(*http.Request, Q) Q) http.HandlerFunc {
	return post(func(w http.ResponseWriter, r *http.Request) {
		var q Q
		if err := decodeJSON(r, &q); err != nil {
			writeError(w, r, err, http.StatusBadRequest)
			return
		}
		for _, p := range prep {
			q = p(r, q)
		}
		q, err := normalize(q)
		if err != nil {
			writeError(w, r, err, http.StatusUnprocessableEntity)
			return
		}
		resp, err := run(r.Context(), q)
		if err != nil {
			writeError(w, r, err, http.StatusInternalServerError)
			return
		}
		writeResponse(w, r, resp)
	})
}

// Handler returns the serving mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	// Registration walks the same route table OpenAPI() documents — the
	// served surface and the published spec cannot drift apart.
	for _, rt := range s.routes() {
		pattern := rt.Pattern
		if pattern == "" {
			// Bare path: the handler enforces the method itself, keeping
			// the 405 error envelope instead of the mux's plain rejection.
			pattern = rt.Path
		}
		mux.HandleFunc(pattern, rt.handler)
	}
	// The production middleware chain, outermost first: request-ID
	// injection, audit logging, auth, rate limiting. Every route — blocking,
	// batch, jobs, SSE, internal — passes through the whole chain.
	return requestID(s.audit(s.auth(s.rateLimit(mux))))
}

// handleBatch is POST /v1/batch: each item runs through the same cache +
// coalescing path as its dedicated endpoint, failures reported in-band.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var batch BatchRequest
	if err := decodeJSON(r, &batch); err != nil {
		writeError(w, r, err, http.StatusBadRequest)
		return
	}
	s.counters["batch"].requests.Add(1)
	out := BatchResponse{Responses: make([]Response, 0, len(batch.Requests))}
	for _, item := range batch.Requests {
		out.Responses = append(out.Responses, s.runBatchItem(r.Context(), item))
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// runBatchItem routes one batch item; failures are reported in-band so
// sibling items still execute.
func (s *Server) runBatchItem(ctx context.Context, item BatchItem) Response {
	fail := func(kind string, err error) Response {
		return Response{Kind: kind, Error: err.Error()}
	}
	// The columnar encoding is binary and the batch envelope is JSON:
	// riding a JSON string would mangle the bytes, so batch items refuse
	// it in-band and point at the dedicated endpoints.
	if f := item.format(); f == "columnar" {
		return fail(item.Kind, fmt.Errorf(
			"columnar format is not available on /v1/batch (binary output cannot ride the JSON envelope); use POST /v1/%s or a job; valid: text, csv", item.Kind))
	}
	switch item.Kind {
	case "sweep":
		q := SweepRequest{}
		if item.Sweep != nil {
			q = *item.Sweep
		}
		q, err := q.normalize()
		if err != nil {
			return fail("sweep", err)
		}
		resp, err := s.runSweep(ctx, q)
		if err != nil {
			return fail("sweep", err)
		}
		return resp
	case "workload":
		q := WorkloadRequest{}
		if item.Workload != nil {
			q = *item.Workload
		}
		q, err := q.normalize()
		if err != nil {
			return fail("workload", err)
		}
		resp, err := s.runWorkload(ctx, q)
		if err != nil {
			return fail("workload", err)
		}
		return resp
	case "trng":
		q := TRNGRequest{}
		if item.TRNG != nil {
			q = *item.TRNG
		}
		q, err := q.normalize()
		if err != nil {
			return fail("trng", err)
		}
		resp, err := s.runTRNG(ctx, q)
		if err != nil {
			return fail("trng", err)
		}
		return resp
	case "scenario":
		q := ScenarioRequest{}
		if item.Scenario != nil {
			q = *item.Scenario
		}
		q, err := q.normalize()
		if err != nil {
			return fail("scenario", err)
		}
		resp, err := s.runScenario(ctx, q)
		if err != nil {
			return fail("scenario", err)
		}
		return resp
	case "campaign":
		q := CampaignRequest{}
		if item.Campaign != nil {
			q = *item.Campaign
		}
		q, err := q.normalize()
		if err != nil {
			return fail("campaign", err)
		}
		resp, err := s.runCampaign(ctx, q)
		if err != nil {
			return fail("campaign", err)
		}
		return resp
	default:
		return fail(item.Kind, fmt.Errorf("unknown kind %q; valid: sweep, workload, trng, scenario, campaign", item.Kind))
	}
}

// writeMetrics renders the Prometheus-style counter page.
func (s *Server) writeMetrics(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "simra_serve_uptime_seconds %.0f\n", time.Since(s.start).Seconds())
	for _, k := range kinds {
		c := s.counters[k]
		fmt.Fprintf(&b, "simra_serve_requests_total{kind=%q} %d\n", k, c.requests.Load())
		fmt.Fprintf(&b, "simra_serve_executions_total{kind=%q} %d\n", k, c.executions.Load())
		fmt.Fprintf(&b, "simra_serve_errors_total{kind=%q} %d\n", k, c.errors.Load())
	}
	fmt.Fprintf(&b, "simra_serve_inflight %d\n", s.inflight.Load())
	fmt.Fprintf(&b, "simra_serve_max_inflight %d\n", s.cfg.MaxInflight)
	fmt.Fprintf(&b, "simra_serve_queued %d\n", s.queued.Load())
	fmt.Fprintf(&b, "simra_serve_max_queue %d\n", s.cfg.MaxQueue)
	fmt.Fprintf(&b, "simra_serve_shed_total %d\n", s.busy.Load())
	jm := s.jobs.Metrics()
	fmt.Fprintf(&b, "simra_jobs_submitted_total %d\n", jm.Submitted)
	fmt.Fprintf(&b, "simra_jobs_deduped_total %d\n", jm.Deduped)
	fmt.Fprintf(&b, "simra_jobs_cache_hits_total %d\n", jm.CacheHits)
	fmt.Fprintf(&b, "simra_jobs_queued %d\n", jm.Queued)
	fmt.Fprintf(&b, "simra_jobs_running %d\n", jm.Running)
	fmt.Fprintf(&b, "simra_jobs_completed_total %d\n", jm.Completed)
	fmt.Fprintf(&b, "simra_jobs_failed_total %d\n", jm.Failed)
	fmt.Fprintf(&b, "simra_jobs_canceled_total %d\n", jm.Canceled)
	fmt.Fprintf(&b, "simra_jobs_sse_connections %d\n", jm.SSEConnections)
	fmt.Fprintf(&b, "simra_jobs_sse_rejected_total{reason=\"client\"} %d\n", jm.SSERejectedClient)
	fmt.Fprintf(&b, "simra_jobs_sse_rejected_total{reason=\"global\"} %d\n", jm.SSERejectedGlobal)
	fmt.Fprintf(&b, "simra_jobs_webhook_deliveries_total %d\n", jm.WebhookDeliveries)
	fmt.Fprintf(&b, "simra_jobs_webhook_retries_total %d\n", jm.WebhookRetries)
	fmt.Fprintf(&b, "simra_jobs_webhook_failures_total %d\n", jm.WebhookFailures)
	ws := s.pool.Stats()
	fmt.Fprintf(&b, "simra_warmpool_hits_total %d\n", ws.Hits)
	fmt.Fprintf(&b, "simra_warmpool_misses_total %d\n", ws.Misses)
	fmt.Fprintf(&b, "simra_warmpool_discarded_total %d\n", ws.Discarded)
	fmt.Fprintf(&b, "simra_warmpool_idle %d\n", ws.Idle)
	cs := s.tier.Stats()
	fmt.Fprintf(&b, "simra_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(&b, "simra_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(&b, "simra_cache_coalesced_total %d\n", cs.Coalesced)
	fmt.Fprintf(&b, "simra_cache_executions_total %d\n", cs.Executions)
	fmt.Fprintf(&b, "simra_cache_errors_total %d\n", cs.Errors)
	fmt.Fprintf(&b, "simra_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(&b, "simra_cache_entries %d\n", cs.Entries)
	fmt.Fprintf(&b, "simra_cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(&b, "simra_cache_capacity_bytes %d\n", cs.Capacity)
	fmt.Fprintf(&b, "simra_cache_remote_hits_total %d\n", cs.RemoteHits)
	fmt.Fprintf(&b, "simra_cache_remote_misses_total %d\n", cs.RemoteMisses)
	fmt.Fprintf(&b, "simra_cache_remote_errors_total %d\n", cs.RemoteErrors)
	fmt.Fprintf(&b, "simra_serve_rate_limited_total %d\n", s.rateLimited.Load())
	for _, g := range s.groups {
		gs := g.Stats()
		fmt.Fprintf(&b, "simra_cluster_group_requests_total{group=%q} %d\n", g.Name(), gs.Requests)
		fmt.Fprintf(&b, "simra_cluster_group_executions_total{group=%q} %d\n", g.Name(), gs.Executions)
	}
	if s.coord != nil {
		st := s.coord.Stats()
		for _, name := range s.coord.Workers() {
			fmt.Fprintf(&b, "simra_cluster_dispatched_total{worker=%q} %d\n", name, st.Dispatched[name])
		}
		fmt.Fprintf(&b, "simra_cluster_fallbacks_total %d\n", st.Fallbacks)
	}
	io.WriteString(w, b.String())
}

// ListenAndServe serves on cfg.Addr until ctx is cancelled, then shuts
// down gracefully (in-flight requests get up to 10 s to finish). ready,
// if non-nil, receives the bound address once listening — tests and
// scripts use it instead of polling.
func (s *Server) ListenAndServe(ctx context.Context, ready chan<- string) error {
	defer s.Close()
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	srv := &http.Server{Handler: s.Handler()}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return err
		}
		<-done // http.ErrServerClosed
		return nil
	case err := <-done:
		return err
	}
}
