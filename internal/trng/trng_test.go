package trng

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
)

func newGen(t *testing.T, profile dram.Profile, n int) *Generator {
	t.Helper()
	spec := dram.NewSpec("trng-test", profile, 0x777)
	spec.Columns = 256
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mod, sa, n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	spec := dram.NewSpec("trng-v", dram.ProfileH, 1)
	spec.Columns = 64
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 64} {
		if _, err := NewGenerator(mod, sa, n); err == nil {
			t.Fatalf("n=%d should fail", n)
		}
	}
}

func TestSamsungRejected(t *testing.T) {
	spec := dram.NewSpec("trng-s", dram.ProfileS, 1)
	spec.Columns = 64
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGenerator(mod, sa, 4); err == nil {
		t.Fatal("Samsung chips should be rejected")
	}
}

func TestDrawsDiffer(t *testing.T) {
	g := newGen(t, dram.ProfileH, 32)
	a, err := g.Draw()
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.Draw()
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range a {
		if a[i] != b[i] {
			diff++
		}
	}
	if diff < len(a)/10 {
		t.Fatalf("only %d/%d columns toggled between draws", diff, len(a))
	}
}

func TestBitsBalanced(t *testing.T) {
	g := newGen(t, dram.ProfileH, 32)
	bits, err := g.Bits(40)
	if err != nil {
		t.Fatal(err)
	}
	if len(bits) < 500 {
		t.Fatalf("too few entropy bits: %d", len(bits))
	}
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	frac := float64(ones) / float64(len(bits))
	if frac < 0.40 || frac > 0.60 {
		t.Fatalf("entropy bias = %.3f, want ~0.5", frac)
	}
}

func TestBitsValidation(t *testing.T) {
	g := newGen(t, dram.ProfileH, 4)
	if _, err := g.Bits(2); err == nil {
		t.Fatal("too few draws should fail")
	}
}
