package trng

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/xrand"
)

func TestVonNeumannRemovesBias(t *testing.T) {
	// A 75%-ones biased stream.
	src := xrand.NewSource(1)
	raw := make([]bool, 40000)
	for i := range raw {
		raw[i] = src.Float64() < 0.75
	}
	out := VonNeumann(raw)
	if len(out) < 1000 {
		t.Fatalf("extractor kept only %d bits", len(out))
	}
	ones := 0
	for _, b := range out {
		if b {
			ones++
		}
	}
	frac := float64(ones) / float64(len(out))
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("extracted bias = %.3f, want ~0.5", frac)
	}
}

func TestVonNeumannKnownPairs(t *testing.T) {
	raw := []bool{false, true, true, false, true, true, false, false}
	out := VonNeumann(raw)
	// Pairs: (0,1)->0, (1,0)->1, (1,1) discard, (0,0) discard.
	if len(out) != 2 || out[0] != false || out[1] != true {
		t.Fatalf("VonNeumann = %v", out)
	}
}

func TestAnalyzeTooShort(t *testing.T) {
	if _, err := Analyze(make([]bool, 10)); err == nil {
		t.Fatal("short stream should error")
	}
}

func TestAnalyzeConstantStreamUnhealthy(t *testing.T) {
	stream := make([]bool, 1024)
	rep, err := Analyze(stream)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Healthy() {
		t.Fatal("constant stream must be unhealthy")
	}
	if rep.MaxRunLen != 1024 || rep.OnesFrac != 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestAnalyzeAlternatingStreamUnhealthy(t *testing.T) {
	stream := make([]bool, 1024)
	for i := range stream {
		stream[i] = i%2 == 0
	}
	rep, err := Analyze(stream)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect alternation has strong negative lag-1 correlation.
	if rep.SerialCorr > -0.9 {
		t.Fatalf("alternating correlation = %v", rep.SerialCorr)
	}
	if rep.Healthy() {
		t.Fatal("alternating stream must be unhealthy")
	}
}

func TestAnalyzePRNGStreamHealthy(t *testing.T) {
	src := xrand.NewSource(9)
	stream := make([]bool, 8192)
	for i := range stream {
		stream[i] = src.Bool()
	}
	rep, err := Analyze(stream)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("uniform stream flagged unhealthy: %+v", rep)
	}
}

// TestDRAMEntropyHealthy: the full pipeline — metastable 32-row draws,
// von Neumann extraction, health screens.
func TestDRAMEntropyHealthy(t *testing.T) {
	spec := dram.NewSpec("trng-health", dram.ProfileH, 0xfeed1)
	spec.Columns = 256
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(mod, sa, 32)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := g.Bits(60)
	if err != nil {
		t.Fatal(err)
	}
	extracted := VonNeumann(raw)
	if len(extracted) < 256 {
		t.Fatalf("only %d extracted bits", len(extracted))
	}
	rep, err := Analyze(extracted)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("DRAM entropy flagged unhealthy: %+v", rep)
	}
	if got := Bytes(extracted); len(got) != len(extracted)/8 {
		t.Fatalf("Bytes packed %d of %d bits", len(got)*8, len(extracted))
	}
}

func TestBytesKnown(t *testing.T) {
	bits := []bool{true, false, true, false, true, false, true, false, true}
	got := Bytes(bits)
	if len(got) != 1 || got[0] != 0xAA {
		t.Fatalf("Bytes = %x", got)
	}
}
