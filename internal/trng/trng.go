// Package trng is the extension the paper's related-work discussion points
// at (§10, QUAC-TRNG): true-random-number generation from the metastable
// sensing of simultaneously activated rows storing opposing values.
//
// Activating a balanced group — half the rows charged, half discharged —
// leaves the bitline perturbation at ~0, so the sense amplifier resolves
// from thermal noise: a fresh random bit per column per activation. The
// paper's 32-row activation widens the QUAC idea from 4 to 32 rows.
package trng

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/timing"
)

// Generator produces random bits from one subarray.
type Generator struct {
	sa    *dram.Subarray
	group bender.Group
	env   analog.Env
	trial int
}

// NewGenerator reserves an n-row activation group for entropy extraction.
func NewGenerator(mod *dram.Module, sa *dram.Subarray, n int) (*Generator, error) {
	if mod.Spec().Profile.APAGuarded {
		return nil, fmt.Errorf("trng: %s chips cannot multi-activate",
			mod.Spec().Profile.Manufacturer)
	}
	if n < 2 || n&(n-1) != 0 || n > 32 {
		return nil, fmt.Errorf("trng: group size %d must be a power of two in [2,32]", n)
	}
	groups, err := bender.SampleGroups(sa, mod, n, 1, 0x7e9)
	if err != nil {
		return nil, err
	}
	return &Generator{sa: sa, group: groups[0], env: analog.NominalEnv()}, nil
}

// Draw performs one balanced activation and returns the sensed bits. The
// metastable columns resolve differently draw to draw; stable columns
// (process variation biases them to a fixed value) carry no entropy and
// are filtered by Bits, as QUAC-TRNG's post-processing does.
func (g *Generator) Draw() ([]bool, error) {
	v, err := g.DrawVec()
	if err != nil {
		return nil, err
	}
	return v.Bools(), nil
}

// DrawVec is Draw returning the sensed bits packed.
func (g *Generator) DrawVec() (bitvec.Vec, error) {
	cols := g.sa.Cols()
	ones := bitvec.New(cols)
	ones.Fill(true)
	zeros := bitvec.New(cols)
	// Balanced fill: alternating charged/discharged rows.
	for i, r := range g.group.Rows {
		bits := ones
		if i%2 == 1 {
			bits = zeros
		}
		if err := g.sa.WriteRowVec(r, bits); err != nil {
			return bitvec.Vec{}, err
		}
	}
	g.trial++
	if _, err := g.sa.APA(g.group.RF, g.group.RS, dram.APAOptions{
		Timings: timing.BestMAJ(),
		Env:     g.env,
		Trial:   g.trial,
	}); err != nil {
		return bitvec.Vec{}, err
	}
	g.sa.Precharge()
	return g.sa.ReadRowVec(g.group.RF)
}

// Bits draws `draws` times and returns the concatenated entropy bits of
// columns that toggled at least once across a calibration pass (the
// metastable columns). The first two draws are used for calibration.
func (g *Generator) Bits(draws int) ([]bool, error) {
	if draws < 3 {
		return nil, fmt.Errorf("trng: need at least 3 draws, got %d", draws)
	}
	cols := g.sa.Cols()
	first, err := g.DrawVec()
	if err != nil {
		return nil, err
	}
	second, err := g.DrawVec()
	if err != nil {
		return nil, err
	}
	toggled := bitvec.New(cols)
	toggled.Xor(first, second)
	var out []bool
	for i := 2; i < draws; i++ {
		bits, err := g.DrawVec()
		if err != nil {
			return nil, err
		}
		for c := 0; c < cols; c++ {
			if toggled.Get(c) {
				out = append(out, bits.Get(c))
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("trng: no metastable columns found in group")
	}
	return out, nil
}
