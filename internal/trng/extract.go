package trng

import (
	"fmt"
	"math"
)

// VonNeumann applies the classic von Neumann extractor to a raw bit
// stream: consecutive pairs (0,1) → 0, (1,0) → 1, equal pairs discarded.
// The output is unbiased whenever pairs are independent and identically
// biased, which is what QUAC-style post-processing assumes.
func VonNeumann(raw []bool) []bool {
	out := make([]bool, 0, len(raw)/4)
	for i := 0; i+1 < len(raw); i += 2 {
		if raw[i] != raw[i+1] {
			out = append(out, raw[i])
		}
	}
	return out
}

// HealthReport summarizes the statistical health of a bit stream, after
// the continuous-health-test style of SP 800-90B.
type HealthReport struct {
	Bits       int
	OnesFrac   float64 // monobit proportion
	MaxRunLen  int     // longest run of identical bits
	SerialCorr float64 // lag-1 serial correlation coefficient
}

// Analyze computes a HealthReport. It returns an error for streams too
// short to say anything (fewer than 64 bits).
func Analyze(bitstream []bool) (HealthReport, error) {
	n := len(bitstream)
	if n < 64 {
		return HealthReport{}, fmt.Errorf("trng: %d bits too short to analyze", n)
	}
	ones := 0
	run, maxRun := 1, 1
	for i, b := range bitstream {
		if b {
			ones++
		}
		if i > 0 {
			if b == bitstream[i-1] {
				run++
				if run > maxRun {
					maxRun = run
				}
			} else {
				run = 1
			}
		}
	}
	mean := float64(ones) / float64(n)
	// Lag-1 serial correlation.
	var num, den float64
	for i := 0; i < n; i++ {
		xi := bit01(bitstream[i]) - mean
		den += xi * xi
		if i+1 < n {
			num += xi * (bit01(bitstream[i+1]) - mean)
		}
	}
	corr := 0.0
	if den > 0 {
		corr = num / den
	}
	return HealthReport{
		Bits:       n,
		OnesFrac:   mean,
		MaxRunLen:  maxRun,
		SerialCorr: corr,
	}, nil
}

// Healthy reports whether the stream passes loose randomness screens: a
// monobit proportion within 4σ of 1/2, no run longer than expected for
// the stream length (with slack), and negligible lag-1 correlation.
func (h HealthReport) Healthy() bool {
	sigma := 0.5 / math.Sqrt(float64(h.Bits))
	if math.Abs(h.OnesFrac-0.5) > 4*sigma {
		return false
	}
	expectedMaxRun := math.Log2(float64(h.Bits)) + 4
	if float64(h.MaxRunLen) > expectedMaxRun+4 {
		return false
	}
	return math.Abs(h.SerialCorr) < 0.1
}

func bit01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Bytes packs a bit stream into bytes, MSB first, dropping the incomplete
// tail.
func Bytes(bitstream []bool) []byte {
	out := make([]byte, 0, len(bitstream)/8)
	for i := 0; i+8 <= len(bitstream); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if bitstream[i+j] {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}
