package trng

import (
	"testing"

	"repro/internal/invariance"
)

// TestInvariances runs the shared metamorphic suite over the TRNG
// generation loop. The TRNG has no fleet and no engine shards — the
// invariance that matters is strict stream determinism: repeated runs of
// the same (seed, rows) options must emit byte-identical hex dumps (the
// contract that lets the serving layer cache TRNG responses at all).
func TestInvariances(t *testing.T) {
	invariance.Check(t, invariance.Subject{
		Name: "trng/generate",
		Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
			t.Helper()
			out, err := Generate(Options{Bytes: 128, Seed: 0x7e57, Rows: 32})
			if err != nil {
				t.Fatal(err)
			}
			return FormatHex(out), nil
		},
	})
}

// TestSeedSensitivity is the complementary property: distinct seeds and
// group sizes must produce distinct streams (determinism must not
// collapse the keyspace).
func TestSeedSensitivity(t *testing.T) {
	base, err := Generate(Options{Bytes: 64, Seed: 0x7e57, Rows: 32})
	if err != nil {
		t.Fatal(err)
	}
	other, err := Generate(Options{Bytes: 64, Seed: 0x7e58, Rows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if string(base) == string(other) {
		t.Fatal("distinct seeds produced identical streams")
	}
	narrow, err := Generate(Options{Bytes: 64, Seed: 0x7e57, Rows: 16})
	if err != nil {
		t.Fatal(err)
	}
	if string(base) == string(narrow) {
		t.Fatal("distinct group sizes produced identical streams")
	}
}
