package trng

import (
	"fmt"
	"strings"

	"repro/internal/analog"
	"repro/internal/dram"
)

// Emit returns exactly n von-Neumann-extracted random bytes from the
// generator, screening each sufficiently large extracted batch with the
// SP 800-90B-style health checks. The per-iteration draw count doubles
// (16 up to 1024) so small requests stay cheap and large ones amortize
// the activation overhead. This is the single generation loop behind
// cmd/simra-trng and the serving layer's TRNG endpoint; for a fixed
// module seed and group size the byte stream is deterministic.
func Emit(g *Generator, n int) ([]byte, error) {
	if n <= 0 || n > 1<<20 {
		return nil, fmt.Errorf("trng: byte count must be in (0, 1Mi]")
	}
	var out []byte
	draws := 16
	for len(out) < n {
		bits, err := g.Bits(draws)
		if err != nil {
			return nil, err
		}
		extracted := VonNeumann(bits)
		if len(extracted) >= 256 {
			report, err := Analyze(extracted)
			if err != nil {
				return nil, err
			}
			if !report.Healthy() {
				return nil, fmt.Errorf("trng: entropy source failed health checks: %+v", report)
			}
		}
		out = append(out, Bytes(extracted)...)
		if draws < 1024 {
			draws *= 2
		}
	}
	return out[:n], nil
}

// Options mirrors the cmd/simra-trng CLI surface and the serving layer's
// TRNG-request parameters. Every value is taken literally — defaults live
// in the CLI flags and the serving layer's request normalization, so an
// explicit zero seed means seed zero, not "pick one for me".
type Options struct {
	// Bytes is the number of random bytes to emit, in (0, 1 MiB].
	Bytes int
	// Seed is the simulated module's process-variation seed.
	Seed uint64
	// Rows is the activation group size, a power of two in [2, 32].
	Rows int
}

// Generate builds the simulated SK Hynix module behind the TRNG and emits
// o.Bytes health-screened random bytes: the single entry point shared by
// cmd/simra-trng and the serving layer. The stream is deterministic for a
// given (seed, rows) pair.
func Generate(o Options) ([]byte, error) {
	spec := dram.NewSpec("trng", dram.ProfileH, o.Seed)
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		return nil, err
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		return nil, err
	}
	g, err := NewGenerator(mod, sa, o.Rows)
	if err != nil {
		return nil, err
	}
	return Emit(g, o.Bytes)
}

// FormatHex renders bytes as the 16-per-line offset hex dump
// cmd/simra-trng prints (and the serving layer returns for hex-format
// TRNG requests).
func FormatHex(b []byte) string {
	var sb strings.Builder
	for i := 0; i < len(b); i += 16 {
		end := i + 16
		if end > len(b) {
			end = len(b)
		}
		fmt.Fprintf(&sb, "%04x  % x\n", i, b[i:end])
	}
	return sb.String()
}
