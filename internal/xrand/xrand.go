// Package xrand provides deterministic, splittable pseudo-random utilities.
//
// Every source of "randomness" in the simulator is derived by hashing a
// structural coordinate (chip, bank, subarray, row, column, trial, ...)
// together with a user seed. This makes all static process variation and
// all per-trial transient noise exactly reproducible: the same seed always
// yields the same fleet, the same unstable cells, and the same experiment
// results, independent of iteration order or goroutine scheduling.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by splitmix64.
const golden = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a bijective mixing of a 64-bit value
// with good avalanche behaviour. It is the core primitive every other
// function in this package builds on.
func mix64(z uint64) uint64 {
	z += golden
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// hashInit is the initial state of the Hash chain.
const hashInit = 0x5851f42d4c957f2d

// Hash combines any number of 64-bit coordinates into a single well-mixed
// 64-bit value. Hash is deterministic and order-sensitive.
func Hash(parts ...uint64) uint64 {
	h := uint64(hashInit)
	for _, p := range parts {
		h = mix64(h ^ p)
	}
	return mix64(h)
}

// Chain is the incremental form of Hash: mixing coordinates one at a time
// without a parts slice. Begin().Mix(a).Mix(b).Sum() == Hash(a, b) for
// every coordinate sequence, so hot paths can precompute the chain over a
// fixed coordinate prefix and extend it per call with zero allocations.
type Chain uint64

// Begin returns the empty hash chain.
func Begin() Chain { return Chain(hashInit) }

// Mix folds one coordinate into the chain.
func (c Chain) Mix(p uint64) Chain { return Chain(mix64(uint64(c) ^ p)) }

// Sum finalizes the chain into the Hash value of the mixed coordinates.
func (c Chain) Sum() uint64 { return mix64(uint64(c)) }

// Float64 maps a hash value to the half-open interval [0, 1) with 53 bits
// of precision.
func Float64(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// Uniform returns a deterministic uniform variate in [0, 1) for the given
// coordinates.
func Uniform(parts ...uint64) float64 {
	return Float64(Hash(parts...))
}

// Norm returns a deterministic standard-normal variate for the given
// coordinates, via the Box-Muller transform over two derived uniforms.
func Norm(parts ...uint64) float64 {
	return NormOf(Hash(parts...))
}

// NormOf returns the standard-normal variate derived from an already
// computed Hash value: NormOf(Hash(parts...)) == Norm(parts...). Chain
// users call it to draw normals without materializing a parts slice.
func NormOf(h uint64) float64 {
	u1 := Float64(mix64(h ^ 0xa5a5a5a5a5a5a5a5))
	u2 := Float64(mix64(h ^ 0x5a5a5a5a5a5a5a5a))
	// Guard against log(0).
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Source is a deterministic stream of pseudo-random values produced by
// repeatedly applying splitmix64 to an internal counter. The zero value is
// a valid source seeded with zero.
type Source struct {
	state uint64
}

// NewSource returns a Source seeded from the given coordinates.
func NewSource(parts ...uint64) *Source {
	return &Source{state: Hash(parts...)}
}

// Uint64 returns the next 64-bit value in the stream.
func (s *Source) Uint64() uint64 {
	s.state += golden
	return mix64(s.state)
}

// Float64 returns the next uniform variate in [0, 1).
func (s *Source) Float64() float64 {
	return Float64(s.Uint64())
}

// Intn returns a uniform integer in [0, n). It returns 0 when n <= 0 so
// that callers need not special-case degenerate ranges.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns the next standard-normal variate in the stream.
func (s *Source) Norm() float64 {
	u1 := s.Float64()
	u2 := s.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bool returns the next fair coin flip.
func (s *Source) Bool() bool {
	return s.Uint64()&1 == 1
}

// Perm returns a deterministic pseudo-random permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct deterministic pseudo-random integers drawn
// without replacement from [0, n). If k >= n it returns a permutation of
// the full range.
func (s *Source) Sample(n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	p := s.Perm(n)
	return p[:k]
}
