package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHashDeterministic(t *testing.T) {
	a := Hash(1, 2, 3)
	b := Hash(1, 2, 3)
	if a != b {
		t.Fatalf("Hash not deterministic: %x != %x", a, b)
	}
}

func TestHashOrderSensitive(t *testing.T) {
	if Hash(1, 2) == Hash(2, 1) {
		t.Fatal("Hash should be order-sensitive")
	}
}

func TestHashDistinctCoordinates(t *testing.T) {
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		for j := uint64(0); j < 10; j++ {
			h := Hash(i, j)
			if seen[h] {
				t.Fatalf("collision at (%d,%d)", i, j)
			}
			seen[h] = true
		}
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(h uint64) bool {
		v := Float64(h)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	f := func(a, b uint64) bool {
		v := Uniform(a, b)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformMean(t *testing.T) {
	const n = 100000
	sum := 0.0
	for i := uint64(0); i < n; i++ {
		sum += Uniform(i, 42)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestNormMoments(t *testing.T) {
	const n = 100000
	var sum, sumSq float64
	for i := uint64(0); i < n; i++ {
		v := Norm(i, 7)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormFinite(t *testing.T) {
	f := func(a, b uint64) bool {
		v := Norm(a, b)
		return !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSourceDeterministic(t *testing.T) {
	s1 := NewSource(99)
	s2 := NewSource(99)
	for i := 0; i < 100; i++ {
		if s1.Uint64() != s2.Uint64() {
			t.Fatalf("sources diverged at step %d", i)
		}
	}
}

func TestSourceZeroValueUsable(t *testing.T) {
	var s Source
	v := s.Float64()
	if v < 0 || v >= 1 {
		t.Fatalf("zero-value Source produced %v", v)
	}
}

func TestSourceIntnRange(t *testing.T) {
	s := NewSource(1)
	for i := 0; i < 1000; i++ {
		v := s.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestSourceIntnDegenerate(t *testing.T) {
	s := NewSource(1)
	if got := s.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := s.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource(5)
	p := s.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	s := NewSource(6)
	got := s.Sample(100, 10)
	if len(got) != 10 {
		t.Fatalf("Sample length = %d, want 10", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if v < 0 || v >= 100 {
			t.Fatalf("sample value %d out of range", v)
		}
		if seen[v] {
			t.Fatalf("duplicate sample value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleKTooLarge(t *testing.T) {
	s := NewSource(7)
	got := s.Sample(5, 10)
	if len(got) != 5 {
		t.Fatalf("Sample(5,10) length = %d, want 5", len(got))
	}
}

func TestSourceBoolBalanced(t *testing.T) {
	s := NewSource(8)
	trues := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.Bool() {
			trues++
		}
	}
	if trues < n/2-300 || trues > n/2+300 {
		t.Fatalf("Bool produced %d trues out of %d", trues, n)
	}
}

// TestChainMatchesHash pins the Chain API to Hash exactly: the hot paths
// precompute chains over fixed coordinate prefixes, so any divergence
// would silently change every derived draw.
func TestChainMatchesHash(t *testing.T) {
	if got, want := Begin().Sum(), Hash(); got != want {
		t.Fatalf("empty chain = %#x, want %#x", got, want)
	}
	err := quick.Check(func(parts []uint64) bool {
		c := Begin()
		for _, p := range parts {
			c = c.Mix(p)
		}
		return c.Sum() == Hash(parts...)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A prefix chain extended per call equals the flat hash of the full
	// coordinate list — the exact pattern dram.Subarray uses for its keys.
	prefix := Begin().Mix(0xd5a).Mix(3).Mix(17)
	if got, want := prefix.Mix(42).Mix(7).Sum(), Hash(0xd5a, 3, 17, 42, 7); got != want {
		t.Fatalf("prefix chain = %#x, want %#x", got, want)
	}
}
