package bender

import (
	"repro/internal/timing"
)

// LatencyModel computes the wall-clock cost (ns) of the command sequences
// used by the case studies, from tightly scheduled DRAM Bender programs
// (§8 "we use DRAM Bender to tightly schedule the DRAM commands ... and
// measure their latency").
type LatencyModel struct {
	P timing.Params
	// BurstBytes is the number of bytes one WR/RD burst transfers at module
	// level (64 B for a standard DDR4 DIMM burst of 8 over a 64-bit bus).
	BurstBytes int
	// RowBytes is the row size in bytes at module level (8 KB).
	RowBytes int
	// RestorePerRowNS is the extra restore time the sense amplifiers need
	// per simultaneously driven row after a multi-row copy.
	RestorePerRowNS float64
}

// NewLatencyModel returns the model for a standard DDR4 module.
func NewLatencyModel() LatencyModel {
	return LatencyModel{
		P:               timing.DDR4(),
		BurstBytes:      64,
		RowBytes:        8 * 1024,
		RestorePerRowNS: 1.55,
	}
}

// APA returns the latency of one ACT→PRE→ACT sequence with the given
// timings, including the trailing restore (tRAS) and precharge (tRP) the
// bank needs before the next operation.
func (l LatencyModel) APA(t timing.APATimings) float64 {
	return t.Total() + l.P.TRAS + l.P.TRP
}

// RowClone returns the latency of one in-DRAM row copy (one APA at the
// best copy timings).
func (l LatencyModel) RowClone() float64 {
	return l.APA(timing.BestCopy())
}

// MultiRowCopy returns the latency of copying one row into the other rows
// of an n-row activation group: the APA plus the amplifier's extra restore
// load for n simultaneously driven rows.
func (l LatencyModel) MultiRowCopy(n int) float64 {
	return l.APA(timing.BestCopy()) + l.RestorePerRowNS*float64(n)
}

// Frac returns the latency of one Frac operation (ACT interrupted by PRE,
// leaving the row's cells at VDD/2; the row is not restored, so no tRAS is
// paid).
func (l LatencyModel) Frac() float64 {
	return l.P.TRAS // empirical FracDRAM schedule: interrupted ACT + settle
}

// MAJ returns the latency of one in-DRAM majority operation: the APA at
// the best majority timings (input placement is accounted separately via
// RowClone/MultiRowCopy).
func (l LatencyModel) MAJ() float64 {
	return l.APA(timing.BestMAJ())
}

// WriteRow returns the latency of writing a full row over the memory
// channel: activate, stream the bursts, write-recover, precharge.
func (l LatencyModel) WriteRow() float64 {
	bursts := float64(l.RowBytes / l.BurstBytes)
	return l.P.TRCD + bursts*l.P.TCCD + l.P.TWR + l.P.TRP
}

// ReadRow returns the latency of reading a full row over the channel.
func (l LatencyModel) ReadRow() float64 {
	bursts := float64(l.RowBytes / l.BurstBytes)
	return l.P.TRCD + bursts*l.P.TCCD + l.P.TBL + l.P.TRP
}

// MAJSetup returns the latency of placing and replicating the inputs of a
// MAJX operation with n-row activation: RowClone each of the x operands
// into the group, then one Multi-RowCopy per operand to replicate it
// across its copies, then Frac operations for the n%x neutral rows.
func (l LatencyModel) MAJSetup(x, n int, fracSupported bool) float64 {
	copies := n / x
	setup := float64(x) * l.RowClone()
	if copies > 1 {
		setup += float64(x) * l.MultiRowCopy(copies)
	}
	neutral := n % x
	if neutral > 0 {
		if fracSupported {
			setup += float64(neutral) * l.Frac()
		} else {
			// Mfr. M: neutral rows are written with solid values instead.
			setup += l.WriteRow() + float64(neutral-1)*l.RowClone()
		}
	}
	return setup
}
