package bender

import (
	"strings"
	"testing"

	"repro/internal/timing"
)

func TestAPAProgramSchedule(t *testing.T) {
	p := APAProgram(0, 7, timing.APATimings{T1: 1.5, T2: 3})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Steps) != 3 {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	if p.Steps[0].Cmd != timing.CmdACT || p.Steps[0].At != 0 {
		t.Fatalf("first step = %+v", p.Steps[0])
	}
	if p.Steps[1].Cmd != timing.CmdPRE || p.Steps[1].At != 1.5 {
		t.Fatalf("second step = %+v", p.Steps[1])
	}
	if p.Steps[2].Cmd != timing.CmdACT || p.Steps[2].At != 4.5 || p.Steps[2].Row != 7 {
		t.Fatalf("third step = %+v", p.Steps[2])
	}
}

func TestProgramQuantizesDelays(t *testing.T) {
	var p Program
	p.Append(timing.CmdACT, 0, 0)
	p.Append(timing.CmdPRE, -1, 2.2) // quantizes to 1.5-grid: 3.0? (nearest)
	if p.Steps[1].At != timing.Quantize(2.2) {
		t.Fatalf("At = %v", p.Steps[1].At)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProgramValidateRejectsRegressions(t *testing.T) {
	p := Program{Steps: []Step{
		{At: 0, Cmd: timing.CmdACT, Row: 0},
		{At: 0, Cmd: timing.CmdPRE, Row: -1}, // same cycle: not issuable
	}}
	if err := p.Validate(); err == nil {
		t.Fatal("same-cycle steps should fail validation")
	}
}

func TestProgramDuration(t *testing.T) {
	p := APAProgram(0, 1, timing.BestCopy())
	jedec := timing.DDR4()
	got := p.Duration(jedec.TRAS + jedec.TRP)
	want := NewLatencyModel().RowClone()
	if got != want {
		t.Fatalf("program duration %v != latency model RowClone %v", got, want)
	}
	var empty Program
	if empty.Duration(10) != 0 {
		t.Fatal("empty program should have zero duration")
	}
}

func TestActivationProgram(t *testing.T) {
	p := ActivationProgram(0, 7, timing.BestSiMRA(), timing.DDR4())
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// APA then WR then PRE.
	cmds := []timing.Command{timing.CmdACT, timing.CmdPRE, timing.CmdACT,
		timing.CmdWR, timing.CmdPRE}
	if len(p.Steps) != len(cmds) {
		t.Fatalf("steps = %d", len(p.Steps))
	}
	for i, c := range cmds {
		if p.Steps[i].Cmd != c {
			t.Fatalf("step %d = %v, want %v", i, p.Steps[i].Cmd, c)
		}
	}
}

func TestMAJProgramStructure(t *testing.T) {
	jedec := timing.DDR4()
	p := MAJProgram(3, 32, timing.BestMAJ(), jedec, true)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// 3 RowClones (3 cmds each) + 3 replications (3 each) + 2 Fracs (2
	// each) + final APA (3) = 9 + 9 + 4 + 3 = 25 commands.
	if len(p.Steps) != 25 {
		t.Fatalf("MAJ3@32 program has %d commands, want 25", len(p.Steps))
	}
	// Without Frac support the neutralization is not scheduled in-DRAM.
	pm := MAJProgram(3, 32, timing.BestMAJ(), jedec, false)
	if len(pm.Steps) != 21 {
		t.Fatalf("non-Frac program has %d commands, want 21", len(pm.Steps))
	}
	// No replication needed at N == X.
	p4 := MAJProgram(3, 3, timing.BestMAJ(), jedec, true)
	if len(p4.Steps) != 12 {
		t.Fatalf("MAJ3@3 program has %d commands, want 12", len(p4.Steps))
	}
}

func TestProgramString(t *testing.T) {
	p := RowCloneProgram(4, 5)
	s := p.String()
	if !strings.Contains(s, "RowClone(4→5)") || !strings.Contains(s, "ACT") ||
		!strings.Contains(s, "PRE") {
		t.Fatalf("trace missing content:\n%s", s)
	}
}
