package bender

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/timing"
)

func testModule(t *testing.T, profile dram.Profile) *dram.Module {
	t.Helper()
	spec := dram.NewSpec("bender-test", profile, 42)
	spec.Columns = 128
	m, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSampleGroupsCountsAndSizes(t *testing.T) {
	m := testModule(t, dram.ProfileH)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 4, 8, 16, 32} {
		groups, err := SampleGroups(sa, m, n, 20, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if len(groups) != 20 {
			t.Fatalf("n=%d: got %d groups", n, len(groups))
		}
		for _, g := range groups {
			if g.N() != n {
				t.Fatalf("n=%d: group %+v has %d rows", n, g, g.N())
			}
			if g.RF == g.RS {
				t.Fatalf("n=%d: degenerate pair", n)
			}
		}
	}
}

func TestSampleGroupsDistinct(t *testing.T) {
	m := testModule(t, dram.ProfileH)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := SampleGroups(sa, m, 8, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[[2]int]bool)
	for _, g := range groups {
		lo, hi := g.RF, g.RS
		if lo > hi {
			lo, hi = hi, lo
		}
		k := [2]int{lo, hi}
		if seen[k] {
			t.Fatalf("duplicate group %v", k)
		}
		seen[k] = true
	}
}

func TestSampleGroupsDeterministic(t *testing.T) {
	m := testModule(t, dram.ProfileH)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := SampleGroups(sa, m, 16, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := SampleGroups(sa, m, 16, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := range g1 {
		if g1[i].RF != g2[i].RF || g1[i].RS != g2[i].RS {
			t.Fatal("sampling must be deterministic")
		}
	}
}

func TestSampleGroupsRejectsBadN(t *testing.T) {
	m := testModule(t, dram.ProfileH)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SampleGroups(sa, m, 3, 5, 1); err == nil {
		t.Fatal("non-power-of-two should fail")
	}
	if _, err := SampleGroups(sa, m, 64, 5, 1); err == nil {
		t.Fatal("beyond decoder limit should fail")
	}
}

func TestSampleGroups640(t *testing.T) {
	m := testModule(t, dram.ProfileH640)
	sa, err := m.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := SampleGroups(sa, m, 32, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		for _, r := range g.Rows {
			if r >= 640 {
				t.Fatalf("group includes unpopulated row %d", r)
			}
		}
	}
}

func TestSampleSubarrays(t *testing.T) {
	m := testModule(t, dram.ProfileH)
	samples := SampleSubarrays(m, 3, 5)
	if len(samples) != m.Spec().Banks*3 {
		t.Fatalf("got %d samples", len(samples))
	}
	perBank := make(map[int]map[int]bool)
	for _, s := range samples {
		if perBank[s.Bank] == nil {
			perBank[s.Bank] = make(map[int]bool)
		}
		if perBank[s.Bank][s.Subarray] {
			t.Fatalf("duplicate subarray %+v", s)
		}
		perBank[s.Bank][s.Subarray] = true
	}
}

func TestInferSubarraySize(t *testing.T) {
	for _, tc := range []struct {
		profile dram.Profile
		want    int
	}{
		{dram.ProfileH, 512},
		{dram.ProfileH640, 640},
		{dram.ProfileM, 1024},
	} {
		m := testModule(t, tc.profile)
		got, err := InferSubarraySize(m)
		if err != nil {
			t.Fatalf("%s: %v", tc.profile.Name, err)
		}
		if got != tc.want {
			t.Fatalf("%s: inferred %d rows, want %d", tc.profile.Name, got, tc.want)
		}
	}
}

func TestInferSubarraySizeSamsung(t *testing.T) {
	m := testModule(t, dram.ProfileS)
	if _, err := InferSubarraySize(m); err == nil {
		t.Fatal("Samsung probing should fail")
	}
}

func TestLatencyModelBasics(t *testing.T) {
	l := NewLatencyModel()
	if l.RowClone() <= 0 || l.Frac() <= 0 || l.MAJ() <= 0 {
		t.Fatal("latencies must be positive")
	}
	// The whole point of in-DRAM copy: RowClone is much cheaper than
	// streaming a row over the channel.
	if l.RowClone() >= l.WriteRow()/4 {
		t.Fatalf("RowClone %.1f ns should be well below WriteRow %.1f ns",
			l.RowClone(), l.WriteRow())
	}
	// Multi-row copy grows mildly with row count but stays near one APA.
	if l.MultiRowCopy(32) <= l.MultiRowCopy(2) {
		t.Fatal("restore load must grow with rows")
	}
	if l.MultiRowCopy(32) > 2*l.RowClone() {
		t.Fatal("32-row copy should stay within 2x a RowClone")
	}
	// Frac is cheaper than RowClone (no restore).
	if l.Frac() >= l.RowClone() {
		t.Fatal("Frac should be cheaper than RowClone")
	}
}

func TestLatencyAPAMatchesComponents(t *testing.T) {
	l := NewLatencyModel()
	apa := timing.APATimings{T1: 1.5, T2: 3}
	want := 4.5 + l.P.TRAS + l.P.TRP
	if got := l.APA(apa); got != want {
		t.Fatalf("APA latency = %v, want %v", got, want)
	}
}

func TestMAJSetupScalesWithInputs(t *testing.T) {
	l := NewLatencyModel()
	if l.MAJSetup(5, 32, true) <= l.MAJSetup(3, 32, true) {
		t.Fatal("more operands must cost more setup")
	}
	// Non-Frac fallback (Mfr. M) costs more for neutral rows.
	if l.MAJSetup(3, 32, false) <= l.MAJSetup(3, 32, true) {
		t.Fatal("solid-value neutral rows must cost more than Frac")
	}
	// No replication and no neutral rows: just operand placement.
	if got, want := l.MAJSetup(3, 3, true), 3*l.RowClone(); got != want {
		t.Fatalf("MAJSetup(3,3) = %v, want %v", got, want)
	}
}
