package bender

import (
	"fmt"
	"strings"

	"repro/internal/timing"
)

// Step is one DRAM command issued at an absolute time on the tester's
// 1.5 ns command grid.
type Step struct {
	At  float64 // ns from program start
	Cmd timing.Command
	Row int // row address for ACT; -1 where not applicable
}

// Program is a tightly scheduled DRAM command sequence, the unit DRAM
// Bender executes. Programs are how the case studies account latencies
// and how tests verify that the PUD operations issue exactly the command
// sequences the paper describes.
type Program struct {
	Name  string
	Steps []Step
}

// Append schedules a command `delay` ns after the previous one (quantized
// to the tester grid). The first command is issued at t = 0.
func (p *Program) Append(cmd timing.Command, row int, delay float64) {
	at := 0.0
	if len(p.Steps) > 0 {
		at = p.Steps[len(p.Steps)-1].At + timing.Quantize(delay)
	}
	p.Steps = append(p.Steps, Step{At: at, Cmd: cmd, Row: row})
}

// Duration returns the time from the first command to the last, plus the
// trailing settle the caller provides (e.g. tRAS+tRP to return the bank
// to precharged state).
func (p *Program) Duration(trailing float64) float64 {
	if len(p.Steps) == 0 {
		return 0
	}
	return p.Steps[len(p.Steps)-1].At + trailing
}

// Validate checks the schedule is issuable: strictly increasing times on
// the command grid.
func (p *Program) Validate() error {
	prev := -timing.Tick
	for i, s := range p.Steps {
		if s.At < 0 || !timing.IsIssuable(s.At+timing.Tick) && s.At != 0 {
			return fmt.Errorf("bender: step %d at %.2f ns off the command grid", i, s.At)
		}
		if s.At <= prev {
			return fmt.Errorf("bender: step %d at %.2f ns not after %.2f ns", i, s.At, prev)
		}
		prev = s.At
	}
	return nil
}

// String renders the command trace.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", p.Name)
	for _, s := range p.Steps {
		if s.Row >= 0 {
			fmt.Fprintf(&b, "  %7.1f ns  %-4s row %d\n", s.At, s.Cmd, s.Row)
		} else {
			fmt.Fprintf(&b, "  %7.1f ns  %s\n", s.At, s.Cmd)
		}
	}
	return b.String()
}

// APAProgram builds the ACT→PRE→ACT sequence with the given timings — the
// fundamental PUD command sequence (§2.2).
func APAProgram(rf, rs int, t timing.APATimings) Program {
	p := Program{Name: fmt.Sprintf("APA(%d,%d) %v", rf, rs, t)}
	p.Append(timing.CmdACT, rf, 0)
	p.Append(timing.CmdPRE, -1, t.T1)
	p.Append(timing.CmdACT, rs, t.T2)
	return p
}

// RowCloneProgram builds the in-DRAM copy schedule: a full tRAS before the
// PRE so the amplifiers latch the source, then the violated-tRP ACT.
func RowCloneProgram(src, dst int) Program {
	p := APAProgram(src, dst, timing.BestCopy())
	p.Name = fmt.Sprintf("RowClone(%d→%d)", src, dst)
	return p
}

// ActivationProgram builds the §3.2 characterization schedule: APA, the
// overdriving WR, then the closing PRE at nominal timing.
func ActivationProgram(rf, rs int, t timing.APATimings, jedec timing.Params) Program {
	p := APAProgram(rf, rs, t)
	p.Name = fmt.Sprintf("ManyRowActivation(%d,%d)", rf, rs)
	p.Append(timing.CmdWR, -1, jedec.TRCD)
	p.Append(timing.CmdPRE, -1, jedec.TWR)
	return p
}

// MAJProgram builds the complete §3.3 schedule for one MAJX operation with
// n-row activation: RowClone each operand in, Multi-RowCopy to replicate,
// Frac the leftovers (or skip on non-Frac chips, whose neutral rows are
// written over the channel and not scheduled here), then the majority APA.
func MAJProgram(x, n int, t timing.APATimings, jedec timing.Params, fracSupported bool) Program {
	p := Program{Name: fmt.Sprintf("MAJ%d@%d-row", x, n)}
	copies := n / x
	step := jedec.TRAS + jedec.TRP // bank settle between sub-operations
	// Operand placement.
	for j := 0; j < x; j++ {
		p.Append(timing.CmdACT, j, step)
		p.Append(timing.CmdPRE, -1, timing.BestCopy().T1)
		p.Append(timing.CmdACT, j, timing.BestCopy().T2)
	}
	// Replication (one Multi-RowCopy per operand).
	if copies > 1 {
		for j := 0; j < x; j++ {
			p.Append(timing.CmdACT, j, step)
			p.Append(timing.CmdPRE, -1, timing.BestCopy().T1)
			p.Append(timing.CmdACT, j, timing.BestCopy().T2)
		}
	}
	// Neutralization.
	if fracSupported {
		for k := 0; k < n%x; k++ {
			p.Append(timing.CmdACT, -1, step)
			p.Append(timing.CmdPRE, -1, timing.BestMAJ().T1)
		}
	}
	// The majority activation itself.
	p.Append(timing.CmdACT, 0, step)
	p.Append(timing.CmdPRE, -1, t.T1)
	p.Append(timing.CmdACT, 1, t.T2)
	return p
}
