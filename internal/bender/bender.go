// Package bender is the software equivalent of the DRAM Bender FPGA
// testing infrastructure the paper uses: it drives a module with
// precisely-timed command sequences, samples the row groups the
// characterization iterates over, reverse-engineers subarray boundaries
// with RowClone probing (§3.1), and accounts command latencies for the
// case-study evaluations (§8).
package bender

import (
	"fmt"
	"sync"

	"repro/internal/analog"
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/timing"
	"repro/internal/xrand"
)

// Group is one sampled set of simultaneously activated rows: the (RF, RS)
// address pair of the APA sequence and the decoder's resulting row set.
type Group struct {
	RF, RS int
	Rows   []int
}

// N returns the number of simultaneously activated rows.
func (g Group) N() int { return len(g.Rows) }

// Sampling registry: SampleGroups and SampleSubarrays are pure functions
// of the module's simulation identity (dram.Module.IdentityKey) and the
// sampling coordinates, and the characterization harnesses re-enumerate
// the identical samples for every sweep cell, scenario grid point and
// warmpool recycle. The registry shares one enumeration process-wide,
// mirroring dram's static-table registry. Cached slices (including each
// Group.Rows) are handed out shared and are read-only by contract.
type groupsRegKey struct {
	mod      cache.Key
	bank, sa int
	n, count int
	seed     uint64
}

type samplesRegKey struct {
	mod     cache.Key
	perBank int
	seed    uint64
}

// samplingRegMax bounds each registry map; beyond it the map resets
// (everything is recomputable, eviction only costs re-derivation).
const samplingRegMax = 1 << 14

var samplingReg = struct {
	sync.Mutex
	groups  map[groupsRegKey][]Group
	samples map[samplesRegKey][]SubarraySample
}{
	groups:  make(map[groupsRegKey][]Group),
	samples: make(map[samplesRegKey][]SubarraySample),
}

// SampleGroups deterministically samples `count` distinct row groups of
// exactly n simultaneously activated rows in the given subarray. It
// mirrors the paper's methodology of randomly testing 100 groups per
// (subarray, N) combination. Enumerations are shared process-wide by
// module identity (see samplingReg); the returned slice and the groups'
// Rows are read-only.
func SampleGroups(sa *dram.Subarray, mod *dram.Module, n, count int, seed uint64) ([]Group, error) {
	key := groupsRegKey{mod: mod.IdentityKey(), bank: sa.Bank(), sa: sa.Index(), n: n, count: count, seed: seed}
	samplingReg.Lock()
	cached, ok := samplingReg.groups[key]
	samplingReg.Unlock()
	if ok {
		return cached, nil
	}
	groups, err := sampleGroupsUncached(sa, mod, n, count, seed)
	if err != nil {
		return nil, err
	}
	samplingReg.Lock()
	if len(samplingReg.groups) >= samplingRegMax {
		samplingReg.groups = make(map[groupsRegKey][]Group)
	}
	samplingReg.groups[key] = groups
	samplingReg.Unlock()
	return groups, nil
}

func sampleGroupsUncached(sa *dram.Subarray, mod *dram.Module, n, count int, seed uint64) ([]Group, error) {
	dec := mod.Decoder()
	if n < 1 || n > dec.MaxSimultaneousRows() {
		return nil, fmt.Errorf("bender: cannot activate %d rows (max %d)",
			n, dec.MaxSimultaneousRows())
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("bender: %d rows not reachable (powers of two only)", n)
	}
	fields := 0
	for m := n; m > 1; m >>= 1 {
		fields++
	}

	src := xrand.NewSource(seed, uint64(sa.Bank()), uint64(sa.Index()), uint64(n), 0xb37)
	groups := make([]Group, 0, count)
	seen := make(map[uint64]bool, count)
	const maxTries = 20000
	for tries := 0; len(groups) < count && tries < maxTries; tries++ {
		rf := src.Intn(dec.Rows())
		// Flip a random distinct subset of predecoder fields to a
		// different value in each, giving exactly 2^fields activated rows.
		rs := rf
		fieldPerm := src.Perm(dec.NumFields())
		for _, f := range fieldPerm[:fields] {
			cur := dec.FieldValue(rs, f)
			nv := src.Intn((1 << dec.FieldWidth(f)) - 1)
			if nv >= cur {
				nv++ // skip the current value: the field must differ
			}
			rs = dec.SetField(rs, f, nv)
		}
		rows, err := dec.ActivatedRows(rf, rs)
		if err != nil || len(rows) != n {
			continue // fell outside a partially populated subarray
		}
		lo, hi := rf, rs
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if seen[key] {
			continue
		}
		seen[key] = true
		groups = append(groups, Group{RF: rf, RS: rs, Rows: rows})
	}
	if len(groups) < count {
		return nil, fmt.Errorf("bender: sampled only %d/%d groups of %d rows",
			len(groups), count, n)
	}
	return groups, nil
}

// SubarraySample identifies one sampled subarray within a module.
type SubarraySample struct {
	Bank, Subarray int
}

// SampleSubarrays picks `perBank` subarrays in each of the module's banks,
// mirroring the paper's "three randomly selected subarrays in each bank".
// Enumerations are shared process-wide by module identity; the returned
// slice is read-only — callers that filter it must copy.
func SampleSubarrays(mod *dram.Module, perBank int, seed uint64) []SubarraySample {
	key := samplesRegKey{mod: mod.IdentityKey(), perBank: perBank, seed: seed}
	samplingReg.Lock()
	cached, ok := samplingReg.samples[key]
	samplingReg.Unlock()
	if ok {
		return cached
	}
	spec := mod.Spec()
	out := make([]SubarraySample, 0, spec.Banks*perBank)
	for b := 0; b < spec.Banks; b++ {
		src := xrand.NewSource(seed, spec.Seed, uint64(b), 0x5a17)
		for _, idx := range src.Sample(spec.SubarraysPerBank, perBank) {
			out = append(out, SubarraySample{Bank: b, Subarray: idx})
		}
	}
	samplingReg.Lock()
	if len(samplingReg.samples) >= samplingRegMax {
		samplingReg.samples = make(map[samplesRegKey][]SubarraySample)
	}
	samplingReg.samples[key] = out
	samplingReg.Unlock()
	return out
}

// InferSubarraySize reverse-engineers the subarray height of a module the
// way §3.1 does: attempt RowClone between row 0 and rows at increasing
// distance; the copy succeeds only within a subarray (rows share local
// bitlines and sense amplifiers), so the first failing distance is the
// subarray boundary.
func InferSubarraySize(mod *dram.Module) (int, error) {
	if mod.Spec().Profile.APAGuarded {
		return 0, fmt.Errorf("bender: %s chips do not support RowClone probing",
			mod.Spec().Profile.Manufacturer)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		return 0, err
	}
	works := func(dist int) bool { return rowCloneWorks(sa, 0, dist) }
	if !works(1) {
		return 0, fmt.Errorf("bender: no RowClone pair works; cannot infer size")
	}
	// Exponential probe, then binary-search the first failing distance.
	lo := 1 // works
	hi := 2
	for works(hi) {
		lo = hi
		hi *= 2
		if hi > 1<<20 {
			return 0, fmt.Errorf("bender: no subarray boundary found below %d rows", hi)
		}
	}
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if works(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, nil
}

// rowCloneWorks attempts an intra-subarray RowClone from src to dst and
// reports whether dst received src's data. Distances beyond the subarray
// cannot be addressed, which models the silent failure of an
// inter-subarray copy attempt on real hardware.
func rowCloneWorks(sa *dram.Subarray, src, dst int) bool {
	if dst < 0 || dst >= sa.Rows() || dst == src {
		return false
	}
	data := dram.PatternRandom.FillRow(uint64(dst)*2654435761, 0, sa.Cols())
	if err := sa.WriteRow(src, data); err != nil {
		return false
	}
	if err := sa.WriteRow(dst, dram.Invert(data)); err != nil {
		return false
	}
	if _, err := sa.APA(src, dst, dram.APAOptions{
		Timings: timing.BestCopy(),
		Env:     analog.NominalEnv(),
	}); err != nil {
		return false
	}
	sa.Precharge()
	got, err := sa.ReadRow(dst)
	if err != nil {
		return false
	}
	match := 0
	for c := range got {
		if got[c] == data[c] {
			match++
		}
	}
	return float64(match)/float64(len(got)) > 0.9
}
