package core

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/dram"
	"repro/internal/timing"
)

func testTester(t *testing.T, profile dram.Profile, opts ...Option) *Tester {
	t.Helper()
	spec := dram.NewSpec("core-test", profile, 0xfeed)
	spec.Columns = 256
	m, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(m, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

func firstGroup(t *testing.T, tester *Tester, n int) (*dram.Subarray, bender.Group) {
	t.Helper()
	sa, err := tester.Module().Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := bender.SampleGroups(sa, tester.Module(), n, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	return sa, groups[0]
}

func TestNewTesterValidation(t *testing.T) {
	if _, err := NewTester(nil); err == nil {
		t.Fatal("nil module should fail")
	}
	spec := dram.NewSpec("x", dram.ProfileH, 1)
	m, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTester(m, WithTrials(0)); err == nil {
		t.Fatal("zero trials should fail")
	}
	if _, err := NewTester(m, WithEnv(analog.Env{TempC: -50, VPP: 2.5})); err == nil {
		t.Fatal("invalid env should fail")
	}
	tester, err := NewTester(m, WithTrials(4), WithSeed(9),
		WithEnv(analog.Env{TempC: 70, VPP: 2.3}))
	if err != nil {
		t.Fatal(err)
	}
	if tester.Trials() != 4 || tester.Env().TempC != 70 {
		t.Fatal("options not applied")
	}
}

func TestSuccessResultRate(t *testing.T) {
	if (SuccessResult{}).Rate() != 0 {
		t.Fatal("empty result rate should be 0")
	}
	r := SuccessResult{Cells: 200, Stable: 150}
	if r.Rate() != 0.75 {
		t.Fatalf("rate = %v", r.Rate())
	}
}

func TestManyRowActivationBestTimings(t *testing.T) {
	tester := testTester(t, dram.ProfileH, WithTrials(4))
	sa, g := firstGroup(t, tester, 8)
	res, err := tester.ManyRowActivation(sa, g, timing.BestSiMRA(), dram.PatternRandom)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() < 0.99 {
		t.Fatalf("8-row activation at best timings = %.4f, want >= 0.99 (Obs. 1)", res.Rate())
	}
}

func TestManyRowActivationLowTimingsDegrade(t *testing.T) {
	tester := testTester(t, dram.ProfileH, WithTrials(4))
	sa, g := firstGroup(t, tester, 8)
	good, err := tester.ManyRowActivation(sa, g, timing.BestSiMRA(), dram.PatternRandom)
	if err != nil {
		t.Fatal(err)
	}
	// Average over several groups for the bad config: per-group assert
	// failures are row-wise and lumpy.
	sweep, err := tester.RunSweep(SweepConfig{
		Op: OpManyRowActivation, N: 8,
		Timings: timing.APATimings{T1: 1.5, T2: 1.5},
		Pattern: dram.PatternRandom,
		Banks:   1, GroupsPerSubarray: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	bad := sweep.Summary().Mean
	if bad >= good.Rate()-0.05 {
		t.Fatalf("t1=t2=1.5 should drop success well below best: bad=%.3f good=%.3f (Obs. 2)",
			bad, good.Rate())
	}
}

func TestMAJValidation(t *testing.T) {
	tester := testTester(t, dram.ProfileH)
	sa, g := firstGroup(t, tester, 4)
	if _, err := tester.MAJ(sa, g, 2, timing.BestMAJ(), dram.PatternRandom); err == nil {
		t.Fatal("even MAJ width should fail")
	}
	if _, err := tester.MAJ(sa, g, 5, timing.BestMAJ(), dram.PatternRandom); err == nil {
		t.Fatal("MAJ5 on a 4-row group should fail")
	}
}

func TestMAJ3ReplicationHelps(t *testing.T) {
	tester := testTester(t, dram.ProfileH, WithTrials(4))
	rate := func(n int) float64 {
		sweep, err := tester.RunSweep(SweepConfig{
			Op: OpMAJ, X: 3, N: n,
			Timings: timing.BestMAJ(),
			Pattern: dram.PatternRandom,
			Banks:   2, GroupsPerSubarray: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sweep.Summary().Mean
	}
	r4, r32 := rate(4), rate(32)
	if r32 <= r4+0.10 {
		t.Fatalf("MAJ3: 32-row %.3f should beat 4-row %.3f by >10pp (Obs. 6)", r32, r4)
	}
	if r32 < 0.90 {
		t.Fatalf("MAJ3 at 32-row = %.3f, want >= 0.90", r32)
	}
}

func TestMultiRowCopyBestTimings(t *testing.T) {
	tester := testTester(t, dram.ProfileH, WithTrials(4))
	for _, n := range []int{2, 8, 32} {
		sa, g := firstGroup(t, tester, n)
		res, err := tester.MultiRowCopy(sa, g, timing.BestCopy(), dram.PatternRandom)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rate() < 0.99 {
			t.Fatalf("copy to %d dests = %.4f, want >= 0.99 (Obs. 14)", n-1, res.Rate())
		}
	}
}

func TestMultiRowCopyLowT1Halves(t *testing.T) {
	tester := testTester(t, dram.ProfileH, WithTrials(4))
	sa, g := firstGroup(t, tester, 8)
	res, err := tester.MultiRowCopy(sa, g, timing.APATimings{T1: 1.5, T2: 3}, dram.PatternRandom)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rate() > 0.75 {
		t.Fatalf("t1=1.5 copy = %.3f, want around 0.5 (Obs. 15)", res.Rate())
	}
}

func TestRowClone(t *testing.T) {
	tester := testTester(t, dram.ProfileH)
	sa, err := tester.Module().Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := dram.PatternRandom.FillRow(3, 0, sa.Cols())
	if err := sa.WriteRow(4, src); err != nil {
		t.Fatal(err)
	}
	rate, err := tester.RowClone(sa, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rate < 0.99 {
		t.Fatalf("RowClone success = %.4f", rate)
	}
	// Rows 0 and 7 differ in two predecoder fields: not a 2-row group.
	if _, err := tester.RowClone(sa, 0, 7); err == nil {
		t.Fatal("non-pair group should fail RowClone")
	}
}

func TestSamsungNoPUD(t *testing.T) {
	tester := testTester(t, dram.ProfileS, WithTrials(2))
	sa, err := tester.Module().Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := bender.SampleGroups(sa, tester.Module(), 8, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := tester.ManyRowActivation(sa, groups[0], timing.BestSiMRA(), dram.Pattern00FF)
	if err != nil {
		t.Fatal(err)
	}
	// Only the second row of the APA opens, so at most 1/8 of the group's
	// cells take the WR data.
	if res.Rate() > 0.2 {
		t.Fatalf("Samsung many-row activation = %.3f, want <= 1/8 plus noise", res.Rate())
	}
}

func TestRunSweepDeterministic(t *testing.T) {
	run := func() []float64 {
		tester := testTester(t, dram.ProfileH, WithTrials(2))
		sweep, err := tester.RunSweep(SweepConfig{
			Op: OpMultiRowCopy, N: 4,
			Timings: timing.BestCopy(),
			Pattern: dram.PatternRandom,
			Banks:   2, GroupsPerSubarray: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sweep.Rates()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different sample sizes")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sweep not deterministic at group %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRunSweepValidation(t *testing.T) {
	tester := testTester(t, dram.ProfileH)
	if _, err := tester.RunSweep(SweepConfig{Op: OpMAJ, X: 4, N: 8}); err == nil {
		t.Fatal("even MAJ width should fail")
	}
	if _, err := tester.RunSweep(SweepConfig{Op: OpMAJ, X: 3, N: 1}); err == nil {
		t.Fatal("N=1 should fail")
	}
}

func TestSweepResultAccessors(t *testing.T) {
	r := SweepResult{Outcomes: []GroupOutcome{
		{Result: SuccessResult{Cells: 10, Stable: 5}},
		{Result: SuccessResult{Cells: 10, Stable: 9}},
	}}
	rates := r.Rates()
	if len(rates) != 2 || rates[0] != 0.5 || rates[1] != 0.9 {
		t.Fatalf("rates = %v", rates)
	}
	if r.BestRate() != 0.9 {
		t.Fatalf("best = %v", r.BestRate())
	}
	if s := r.Summary(); s.Mean != 0.7 {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestOpKindString(t *testing.T) {
	if OpManyRowActivation.String() == "" || OpMAJ.String() == "" ||
		OpMultiRowCopy.String() == "" {
		t.Fatal("empty op names")
	}
	if OpKind(99).String() != "OpKind(99)" {
		t.Fatal("unknown op name")
	}
}
