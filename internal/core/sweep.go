package core

import (
	"context"
	"fmt"

	"repro/internal/bender"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/stats"
	"repro/internal/timing"
)

// OpKind selects the characterized operation family.
type OpKind uint8

// The characterized PUD operation families.
const (
	OpManyRowActivation OpKind = iota
	OpMAJ
	OpMultiRowCopy
)

func (k OpKind) String() string {
	switch k {
	case OpManyRowActivation:
		return "many-row-activation"
	case OpMAJ:
		return "MAJ"
	case OpMultiRowCopy:
		return "multi-row-copy"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// SweepConfig describes one characterization cell: an operation at a fixed
// configuration, measured over sampled row groups of a module.
type SweepConfig struct {
	Op      OpKind
	X       int // MAJ width (OpMAJ only)
	N       int // simultaneously activated rows
	Timings timing.APATimings
	Pattern dram.Pattern
	// SubarraysPerBank and GroupsPerSubarray bound the sample; the paper
	// uses 3 and 100.
	SubarraysPerBank  int
	GroupsPerSubarray int
	// Banks limits how many banks are sampled (0 = all). Experiments use a
	// subset by default to bound runtime; the sampling is deterministic.
	Banks int
	// Mitigation selects a redundancy co-simulation in place of the bare
	// operation ("" = none, the pre-mitigation behaviour): "tmr" votes
	// MitLevel replicated copies through an in-DRAM MAJ at the cell's
	// environment and timings; "ecc" reconstructs a corrupted lane
	// register from MitLevel data registers plus an in-DRAM parity row.
	// The zero value leaves every existing sweep bit-identical.
	Mitigation string
	// MitLevel is the redundancy degree: the vote width for "tmr" (odd,
	// ≥ 3) or the number of data registers sharing one parity row for
	// "ecc" (≥ 2).
	MitLevel int
}

// withDefaults fills unset sampling bounds.
func (c SweepConfig) withDefaults() SweepConfig {
	if c.SubarraysPerBank == 0 {
		c.SubarraysPerBank = 1
	}
	if c.GroupsPerSubarray == 0 {
		c.GroupsPerSubarray = 8
	}
	if c.Banks == 0 {
		c.Banks = 2
	}
	return c
}

// GroupOutcome is the measured success of one row group.
type GroupOutcome struct {
	Sample bender.SubarraySample
	Group  bender.Group
	Result SuccessResult
}

// SweepResult aggregates one characterization cell across all sampled
// groups of a module.
type SweepResult struct {
	Config   SweepConfig
	Module   string
	Outcomes []GroupOutcome
}

// Rates returns the per-group success rates.
func (r SweepResult) Rates() []float64 {
	out := make([]float64, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Result.Rate()
	}
	return out
}

// Summary returns the box-whisker statistics across groups.
func (r SweepResult) Summary() stats.Summary { return stats.MustSummarize(r.Rates()) }

// BestRate returns the highest per-group success rate — the quantity the
// case studies use ("we choose the group of rows ... which produces the
// highest throughput", §8.1).
func (r SweepResult) BestRate() float64 {
	best := 0.0
	for _, o := range r.Outcomes {
		if rate := o.Result.Rate(); rate > best {
			best = rate
		}
	}
	return best
}

// validate rejects malformed sweep configurations.
func (c SweepConfig) validate() error {
	if c.Op == OpMAJ && (c.X < 3 || c.X%2 == 0) {
		return fmt.Errorf("core: sweep MAJ width %d invalid", c.X)
	}
	if c.N < 2 {
		return fmt.Errorf("core: sweep needs N >= 2, got %d", c.N)
	}
	switch c.Mitigation {
	case "":
	case "tmr":
		if c.MitLevel < 3 || c.MitLevel%2 == 0 {
			return fmt.Errorf("core: tmr vote width %d must be odd and >= 3", c.MitLevel)
		}
	case "ecc":
		if c.MitLevel < 2 {
			return fmt.Errorf("core: ecc data lanes %d must be >= 2", c.MitLevel)
		}
	default:
		return fmt.Errorf("core: unknown mitigation %q", c.Mitigation)
	}
	return nil
}

// SweepSamples returns the deterministic (bank, subarray) samples a sweep
// characterizes on this tester's module: one engine shard each. The
// enumeration is memoized per sampling bounds (every cell of a figure
// re-enumerates the same samples); the returned slice is shared and
// read-only.
func (t *Tester) SweepSamples(cfg SweepConfig) []bender.SubarraySample {
	cfg = cfg.withDefaults()
	key := samplesCacheKey{perBank: cfg.SubarraysPerBank, banks: cfg.Banks}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cached, ok := t.samplesCache[key]; ok {
		return cached
	}
	samples := bender.SampleSubarrays(t.mod, cfg.SubarraysPerBank, t.seed)
	if cfg.Banks > 0 {
		// SampleSubarrays returns a shared read-only slice — filter into a
		// fresh one.
		filtered := make([]bender.SubarraySample, 0, len(samples))
		for _, s := range samples {
			if s.Bank < cfg.Banks {
				filtered = append(filtered, s)
			}
		}
		samples = filtered
	}
	if t.samplesCache == nil {
		t.samplesCache = make(map[samplesCacheKey][]bender.SubarraySample)
	}
	t.samplesCache[key] = samples
	return samples
}

// SweepShard characterizes one sampled subarray — the unit of work the
// execution engine schedules. Outcomes depend only on the tester's seed
// and the shard's structural coordinates, never on scheduling.
func (t *Tester) SweepShard(cfg SweepConfig, s bender.SubarraySample) ([]GroupOutcome, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return t.sweepSubarray(cfg, s)
}

// RunSweep measures one configuration across the module's sampled
// subarrays and row groups. Subarrays are characterized in parallel on
// the execution engine (bounded by WithWorkers); results are
// deterministic regardless of worker count or scheduling.
func (t *Tester) RunSweep(cfg SweepConfig) (SweepResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return SweepResult{}, err
	}

	samples := t.SweepSamples(cfg)
	tasks := make([]engine.Task[[]GroupOutcome], len(samples))
	for i, s := range samples {
		s := s
		tasks[i] = func(context.Context) ([]GroupOutcome, error) {
			return t.sweepSubarray(cfg, s)
		}
	}
	outcomes, err := engine.Run(context.Background(), engine.Config{Workers: t.workers}, nil, tasks)
	if err != nil {
		return SweepResult{}, err
	}

	res := SweepResult{Config: cfg, Module: t.mod.Spec().ID}
	for _, out := range outcomes {
		res.Outcomes = append(res.Outcomes, out...)
	}
	return res, nil
}

// sweepSubarray characterizes all sampled groups of one subarray.
//
// Each goroutine works on distinct subarrays, and module subarray lookup
// is the only shared structure — guard it with the tester's mutex.
func (t *Tester) sweepSubarray(cfg SweepConfig, s bender.SubarraySample) ([]GroupOutcome, error) {
	sa, err := t.subarray(s)
	if err != nil {
		return nil, err
	}
	if cfg.Mitigation != "" {
		return t.mitigationSubarray(cfg, s, sa)
	}
	groups, err := t.sampleGroups(sa, cfg.N, cfg.GroupsPerSubarray)
	if err != nil {
		return nil, err
	}
	out := make([]GroupOutcome, 0, len(groups))
	for _, g := range groups {
		var r SuccessResult
		switch cfg.Op {
		case OpManyRowActivation:
			r, err = t.ManyRowActivation(sa, g, cfg.Timings, cfg.Pattern)
		case OpMAJ:
			r, err = t.MAJ(sa, g, cfg.X, cfg.Timings, cfg.Pattern)
		case OpMultiRowCopy:
			r, err = t.MultiRowCopy(sa, g, cfg.Timings, cfg.Pattern)
		default:
			err = fmt.Errorf("core: unknown op kind %v", cfg.Op)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, GroupOutcome{Sample: s, Group: g, Result: r})
	}
	return out, nil
}

// subarray fetches a subarray with the module map guarded against
// concurrent lazy allocation.
func (t *Tester) subarray(s bender.SubarraySample) (*dram.Subarray, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.mod.Subarray(s.Bank, s.Subarray)
}

// sampleGroups memoizes bender.SampleGroups per (subarray, n, count):
// group sampling rederives the same decoder walk for every sweep cell of
// a figure, which used to dominate the allocation profile. Groups are
// shared and read-only (the kernels only read Group.Rows).
func (t *Tester) sampleGroups(sa *dram.Subarray, n, count int) ([]bender.Group, error) {
	key := groupsCacheKey{bank: sa.Bank(), sa: sa.Index(), n: n, count: count}
	t.mu.Lock()
	defer t.mu.Unlock()
	if cached, ok := t.groupsCache[key]; ok {
		return cached, nil
	}
	groups, err := bender.SampleGroups(sa, t.mod, n, count, t.seed)
	if err != nil {
		return nil, err
	}
	if t.groupsCache == nil {
		t.groupsCache = make(map[groupsCacheKey][]bender.Group)
	}
	t.groupsCache[key] = groups
	return groups, nil
}
