package core

import (
	"sync"
	"testing"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/dram"
	"repro/internal/timing"
)

// Arena-reuse safety: results must not depend on what a pooled arena's
// buffers held before. The differential suite covers kernel correctness;
// these tests pin the pooling itself — back-to-back characterizations on
// one reused arena, and concurrent shards drawing from one shared pool
// (run under -race in the nightly job).

func arenaTester(t *testing.T, opts ...Option) *Tester {
	t.Helper()
	spec := dram.NewSpec("arena-test", dram.ProfileH, 0xa12e)
	spec.Columns = 192
	m, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(m, append(opts, WithTrials(16), WithSeed(3))...)
	if err != nil {
		t.Fatal(err)
	}
	return tester
}

// TestArenaReuseBackToBack interleaves different characterizations on one
// pooled arena (same tester, same private pool) and checks every result
// against fresh-pool testers that never reuse a dirty arena.
func TestArenaReuseBackToBack(t *testing.T) {
	shared := arenaTester(t, WithArenaPool(NewArenaPool()))
	sa, g := firstGroup(t, shared, 8)

	type op func(*Tester, *dram.Subarray) (SuccessResult, error)
	ops := []struct {
		name string
		run  op
	}{
		{"mra-share", func(ts *Tester, s *dram.Subarray) (SuccessResult, error) {
			return ts.ManyRowActivation(s, g, timing.APATimings{T1: 6, T2: 3}, dram.PatternRandom)
		}},
		{"maj3", func(ts *Tester, s *dram.Subarray) (SuccessResult, error) {
			return ts.MAJ(s, g, 3, timing.APATimings{T1: 6, T2: 3}, dram.PatternSplit)
		}},
		{"copy", func(ts *Tester, s *dram.Subarray) (SuccessResult, error) {
			return ts.MultiRowCopy(s, g, timing.APATimings{T1: 40, T2: 3}, dram.Pattern00FF)
		}},
		{"mra-copy", func(ts *Tester, s *dram.Subarray) (SuccessResult, error) {
			return ts.ManyRowActivation(s, g, timing.APATimings{T1: 40, T2: 3}, dram.PatternAll1)
		}},
	}

	// Two full rounds: the second round runs every op on arena state left
	// behind by a *different* op.
	for round := 0; round < 2; round++ {
		for _, o := range ops {
			got, err := o.run(shared, sa)
			if err != nil {
				t.Fatal(o.name, err)
			}
			fresh := arenaTester(t, WithArenaPool(NewArenaPool()))
			fsa, err := fresh.Module().Subarray(sa.Bank(), sa.Index())
			if err != nil {
				t.Fatal(err)
			}
			want, err := o.run(fresh, fsa)
			if err != nil {
				t.Fatal(o.name, err)
			}
			if got != want {
				t.Fatalf("round %d %s: reused arena %+v != fresh arena %+v",
					round, o.name, got, want)
			}
		}
	}
}

// TestArenaPoolConcurrentShards stresses one shared pool from concurrent
// shard goroutines — distinct subarrays, same ArenaPool — and compares
// every result with a sequential fresh-pool baseline. Meaningful under
// -race: it would flag any arena accidentally handed to two shards.
func TestArenaPoolConcurrentShards(t *testing.T) {
	const shards = 8
	pool := NewArenaPool()
	tester := arenaTester(t, WithArenaPool(pool))

	type shardResult struct {
		mra, cp SuccessResult
	}
	run := func(ts *Tester, bank, idx int) (shardResult, error) {
		sa, err := ts.Module().Subarray(bank, idx)
		if err != nil {
			return shardResult{}, err
		}
		groups, err := bender.SampleGroups(sa, ts.Module(), 8, 1, 31)
		if err != nil {
			return shardResult{}, err
		}
		var out shardResult
		out.mra, err = ts.ManyRowActivation(sa, groups[0], timing.APATimings{T1: 6, T2: 3}, dram.PatternRandom)
		if err != nil {
			return shardResult{}, err
		}
		out.cp, err = ts.MultiRowCopy(sa, groups[0], timing.APATimings{T1: 40, T2: 3}, dram.PatternRandom)
		return out, err
	}

	// Pre-allocate the lazily created subarrays: engine sweeps guard that
	// map with the tester mutex, this test calls run() directly.
	for i := 0; i < shards; i++ {
		if _, err := tester.Module().Subarray(i%2, i/2); err != nil {
			t.Fatal(err)
		}
	}

	baseline := make([]shardResult, shards)
	for i := 0; i < shards; i++ {
		fresh := arenaTester(t, WithArenaPool(NewArenaPool()))
		r, err := run(fresh, i%2, i/2)
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = r
	}

	// Several rounds so arenas actually cycle through the pool while other
	// goroutines are mid-kernel.
	for round := 0; round < 4; round++ {
		results := make([]shardResult, shards)
		errs := make([]error, shards)
		var wg sync.WaitGroup
		for i := 0; i < shards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i], errs[i] = run(tester, i%2, i/2)
			}(i)
		}
		wg.Wait()
		for i := 0; i < shards; i++ {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			if results[i] != baseline[i] {
				t.Fatalf("round %d shard %d: concurrent %+v != baseline %+v",
					round, i, results[i], baseline[i])
			}
		}
	}
}
