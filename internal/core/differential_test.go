package core

import (
	"fmt"
	"testing"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/dram"
	"repro/internal/timing"
)

// The differential suite is the acceptance bar of the trial-plane kernels:
// for every profile, timing mode, operation family, data pattern and trial
// count it runs the scalar per-trial reference and the packed kernel on
// identically built modules and requires byte-identical SuccessResults.
// Any divergence — a draw keyed differently, a fail mask composed wrong, a
// trial regrouping that isn't sound — shows up as a counter mismatch here.

// diffTrialCounts exercises the plane packing at word boundaries: a single
// trial, partial words, exactly one word, and one-beyond.
var diffTrialCounts = []int{1, 7, 8, 63, 64, 65}

// diffTimings covers all three electrical modes plus the share-mode
// viability cliff (t2 = 1.2 draws non-viable groups on some seeds).
var diffTimings = []struct {
	name string
	at   timing.APATimings
}{
	{"share", timing.APATimings{T1: 6, T2: 3}},
	{"share-cliff", timing.APATimings{T1: 6, T2: 1.2}},
	{"copy", timing.APATimings{T1: 40, T2: 3}},
	{"single", timing.APATimings{T1: 6, T2: 30}},
}

var diffProfiles = []dram.Profile{dram.ProfileH, dram.ProfileH640, dram.ProfileM, dram.ProfileS}

// diffPair builds scalar and plane testers over separate but identically
// seeded modules (shared static tables, independent cell state).
func diffPair(t *testing.T, profile dram.Profile, trials int) (scalar, planes *Tester) {
	t.Helper()
	build := func(opts ...Option) *Tester {
		spec := dram.NewSpec("diff-test", profile, 0xd1ff)
		spec.Columns = 192 // partial tail word: tail handling is under test
		m, err := dram.NewModule(spec, analog.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		tester, err := NewTester(m, append(opts, WithTrials(trials), WithSeed(7))...)
		if err != nil {
			t.Fatal(err)
		}
		return tester
	}
	return build(WithScalarKernel()), build()
}

func diffGroups(t *testing.T, tester *Tester, n int) (*dram.Subarray, []bender.Group) {
	t.Helper()
	sa, err := tester.Module().Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := bender.SampleGroups(sa, tester.Module(), n, 2, 23)
	if err != nil {
		t.Fatal(err)
	}
	return sa, groups
}

func requireEqualResults(t *testing.T, label string, want, got SuccessResult) {
	t.Helper()
	if want != got {
		t.Errorf("%s: scalar %+v != planes %+v", label, want, got)
	}
}

func TestDifferentialManyRowActivation(t *testing.T) {
	for _, profile := range diffProfiles {
		for _, trials := range diffTrialCounts {
			sc, pl := diffPair(t, profile, trials)
			saS, groups := diffGroups(t, sc, 8)
			saP, _ := diffGroups(t, pl, 8)
			for _, tm := range diffTimings {
				for _, p := range []dram.Pattern{dram.PatternRandom, dram.Pattern00FF} {
					for gi, g := range groups {
						label := fmt.Sprintf("%s/%s trials=%d %s g%d",
							profile.Name, tm.name, trials, p, gi)
						want, err := sc.ManyRowActivation(saS, g, tm.at, p)
						if err != nil {
							t.Fatal(label, err)
						}
						got, err := pl.ManyRowActivation(saP, g, tm.at, p)
						if err != nil {
							t.Fatal(label, err)
						}
						requireEqualResults(t, label, want, got)
					}
				}
			}
		}
	}
}

func TestDifferentialMAJ(t *testing.T) {
	cases := []struct{ n, x int }{
		{8, 3},   // replicated MAJ3 with Frac leftovers
		{16, 5},  // MAJ5
		{16, 7},  // MAJ7 (at Mfr. M's MaxMAJ)
		{16, 11}, // beyond every profile's MaxMAJ: viability-bias path
	}
	for _, profile := range diffProfiles {
		if profile.APAGuarded {
			continue // Samsung: no share mode; covered by MRA single-mode
		}
		for _, trials := range diffTrialCounts {
			sc, pl := diffPair(t, profile, trials)
			for _, c := range cases {
				saS, groups := diffGroups(t, sc, c.n)
				saP, _ := diffGroups(t, pl, c.n)
				for _, tm := range diffTimings {
					for _, p := range []dram.Pattern{dram.PatternRandom, dram.PatternSplit} {
						for gi, g := range groups {
							label := fmt.Sprintf("%s/MAJ%d/%s trials=%d %s g%d",
								profile.Name, c.x, tm.name, trials, p, gi)
							want, err := sc.MAJ(saS, g, c.x, tm.at, p)
							if err != nil {
								t.Fatal(label, err)
							}
							got, err := pl.MAJ(saP, g, c.x, tm.at, p)
							if err != nil {
								t.Fatal(label, err)
							}
							requireEqualResults(t, label, want, got)
						}
					}
				}
			}
		}
	}
}

func TestDifferentialMultiRowCopy(t *testing.T) {
	for _, profile := range diffProfiles {
		for _, trials := range diffTrialCounts {
			sc, pl := diffPair(t, profile, trials)
			for _, n := range []int{2, 8} {
				saS, groups := diffGroups(t, sc, n)
				saP, _ := diffGroups(t, pl, n)
				for _, tm := range diffTimings {
					for _, p := range []dram.Pattern{dram.PatternRandom, dram.PatternAll1} {
						for gi, g := range groups {
							label := fmt.Sprintf("%s/copy%d/%s trials=%d %s g%d",
								profile.Name, n, tm.name, trials, p, gi)
							want, err := sc.MultiRowCopy(saS, g, tm.at, p)
							if err != nil {
								t.Fatal(label, err)
							}
							got, err := pl.MultiRowCopy(saP, g, tm.at, p)
							if err != nil {
								t.Fatal(label, err)
							}
							requireEqualResults(t, label, want, got)
						}
					}
				}
			}
		}
	}
}

// TestDifferentialSweep runs full sweeps — the integration path through
// engine sharding — under both kernels and requires identical outcome
// streams.
func TestDifferentialSweep(t *testing.T) {
	for _, tm := range []timing.APATimings{{T1: 6, T2: 3}, {T1: 40, T2: 3}} {
		cfg := SweepConfig{
			Op: OpManyRowActivation, N: 8,
			Timings: tm, Pattern: dram.PatternRandom,
			GroupsPerSubarray: 2, SubarraysPerBank: 1, Banks: 2,
		}
		sc, pl := diffPair(t, dram.ProfileH, 8)
		want, err := sc.RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pl.RunSweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(want.Outcomes) != len(got.Outcomes) {
			t.Fatalf("outcome counts differ: %d vs %d", len(want.Outcomes), len(got.Outcomes))
		}
		for i := range want.Outcomes {
			w, g := want.Outcomes[i], got.Outcomes[i]
			if w.Sample != g.Sample || w.Group.RF != g.Group.RF ||
				w.Group.RS != g.Group.RS || w.Result != g.Result {
				t.Fatalf("outcome %d differs:\nscalar %+v\nplanes %+v", i, w, g)
			}
		}
	}
}
