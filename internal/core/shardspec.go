package core

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/dram"
)

// ShardSpec is the serializable form of one characterization sweep shard:
// everything a worker needs to recompute the shard's []GroupOutcome from
// scratch, with no shared state. It is the wire format of the cluster
// fan-out for the sweep and scenario families — all fields are exported
// plain data, so the JSON round trip is exact (ints and strings are
// lossless, and encoding/json renders float64s in the shortest form that
// parses back to identical bits).
//
// Exec builds a private module instance; per DESIGN.md §2 a module's
// static tables derive deterministically from its spec seed, so a private
// instance is bit-identical to a shared or pooled one (the scenario and
// warmpool invariance suites assert this).
type ShardSpec struct {
	// Spec and Params rebuild the module and its electrical model.
	Spec   dram.Spec
	Params analog.Params
	// Env is the operating environment the sweep runs under.
	Env analog.Env
	// Sweep is the fully bounded sweep configuration (sampling bounds
	// included).
	Sweep SweepConfig
	// Trials and Seed parameterize the tester exactly as the coordinator's
	// runner would.
	Trials int
	Seed   uint64
	// Sample is the (bank, subarray) coordinate this shard characterizes.
	Sample bender.SubarraySample
}

// Exec recomputes the shard on a private (or pooled) module instance,
// mirroring the in-process shard bodies of internal/charexp and
// internal/scenario: same tester options, same sweep cell, same sample —
// therefore bit-identical outcomes.
func (s ShardSpec) Exec(pool dram.ModulePool) ([]GroupOutcome, error) {
	mod, release, err := dram.PoolModule(pool, s.Spec, s.Params)
	if err != nil {
		return nil, fmt.Errorf("core: shard module %s: %w", s.Spec.ID, err)
	}
	defer release()
	tester, err := NewTester(mod,
		WithEnv(s.Env), WithTrials(s.Trials), WithSeed(s.Seed), WithWorkers(1))
	if err != nil {
		return nil, fmt.Errorf("core: shard module %s: %w", s.Spec.ID, err)
	}
	return tester.SweepShard(s.Sweep, s.Sample)
}
