// Package core implements the paper's contribution: the
// simultaneous-many-row-activation PUD operations on COTS DRAM chips and
// the methodology that characterizes their robustness.
//
// The three operation families follow §3.2–§3.4 exactly:
//
//   - ManyRowActivation: APA with violated timings, then a WR that
//     overdrives the bitlines; success = activated cells store the WR data.
//   - MAJ (MAJX, X ∈ {3,5,7,9}): operands replicated ⌊N/X⌋ times across the
//     activated rows, leftovers neutralized with Frac (or solid values on
//     chips without Frac support); success = cells store the majority of
//     the X operands.
//   - MultiRowCopy: t1 = tRAS latches the source into the sense amps, the
//     violated-tRP second ACT opens the destinations; success = destination
//     cells store the source data.
//
// Success rate is the paper's metric: the percentage of cells that produce
// the correct result in *all* trials of an operation (§3.1).
package core

import (
	"fmt"
	"sync"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/timing"
	"repro/internal/xrand"
)

// SuccessResult counts the outcome of one characterized row group.
type SuccessResult struct {
	// Cells is the number of cells whose result was checked.
	Cells int
	// Stable is the number of cells correct in every trial.
	Stable int
	// Viable reports whether the operation's group resolved
	// deterministically in every trial (majority operations only; true
	// otherwise).
	Viable bool
}

// Rate returns the success rate in [0, 1].
func (r SuccessResult) Rate() float64 {
	if r.Cells == 0 {
		return 0
	}
	return float64(r.Stable) / float64(r.Cells)
}

// Tester drives PUD characterization on one module.
type Tester struct {
	mod     *dram.Module
	env     analog.Env
	trials  int
	seed    uint64
	workers int
	scalar  bool
	arenas  *ArenaPool

	// mu guards the module's lazy subarray allocation during parallel
	// sweeps and the sampling caches below; distinct subarrays are
	// otherwise independent.
	mu sync.Mutex
	// Sampling caches: group and subarray sampling are pure functions of
	// (module, coordinates, bounds, seed), and a figure sweep re-enumerates
	// the identical samples for every one of its cells. Cached slices are
	// handed out aliased and are read-only by contract.
	groupsCache  map[groupsCacheKey][]bender.Group
	samplesCache map[samplesCacheKey][]bender.SubarraySample
}

// groupsCacheKey identifies one deterministic SampleGroups call on this
// tester (the seed is the tester's own).
type groupsCacheKey struct{ bank, sa, n, count int }

// samplesCacheKey identifies one deterministic SweepSamples enumeration.
type samplesCacheKey struct{ perBank, banks int }

// Option configures a Tester.
type Option func(*Tester)

// WithEnv sets the operating conditions (default: 50 °C, nominal VPP).
func WithEnv(env analog.Env) Option { return func(t *Tester) { t.env = env } }

// WithTrials sets the per-group trial count (default 8). The paper runs
// 10000; the success-rate metric converges quickly because most
// instability is static in origin (see DESIGN.md §5 "Scaling").
func WithTrials(n int) Option { return func(t *Tester) { t.trials = n } }

// WithSeed sets the experiment seed feeding data patterns.
func WithSeed(seed uint64) Option { return func(t *Tester) { t.seed = seed } }

// WithWorkers bounds RunSweep's shard parallelism (0 = GOMAXPROCS,
// 1 = sequential). Results are identical for every setting.
func WithWorkers(n int) Option { return func(t *Tester) { t.workers = n } }

// WithScalarKernel selects the scalar per-trial reference kernels instead
// of the default trial-plane kernels. Both produce bit-identical results
// (locked down by the differential test suite); the scalar path exists as
// the executable specification the plane kernels are checked against.
func WithScalarKernel() Option { return func(t *Tester) { t.scalar = true } }

// WithArenaPool sets the scratch-arena pool the trial-plane kernels draw
// from (default: a process-shared pool). Long-running harnesses pass
// their own so concurrent runs with different widths don't contend.
func WithArenaPool(p *ArenaPool) Option {
	return func(t *Tester) {
		if p != nil {
			t.arenas = p
		}
	}
}

// NewTester builds a tester for the module.
func NewTester(mod *dram.Module, opts ...Option) (*Tester, error) {
	if mod == nil {
		return nil, fmt.Errorf("core: nil module")
	}
	t := &Tester{mod: mod, env: analog.NominalEnv(), trials: 8, seed: 1, arenas: sharedArenas}
	for _, o := range opts {
		o(t)
	}
	if t.trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive, got %d", t.trials)
	}
	if err := t.env.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// Module returns the module under test.
func (t *Tester) Module() *dram.Module { return t.mod }

// Env returns the tester's operating conditions.
func (t *Tester) Env() analog.Env { return t.env }

// Trials returns the per-group trial count.
func (t *Tester) Trials() int { return t.trials }

// ManyRowActivation characterizes simultaneous many-row activation on one
// row group (§3.2): initialize the group's rows with the pattern, issue
// APA(RF, RS) with the given timings, issue a WR with the inverted
// pattern, then read every row of the group back with nominal timings. A
// cell succeeds in a trial iff it stores the WR data.
func (t *Tester) ManyRowActivation(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {
	if t.scalar {
		return t.manyRowActivationScalar(sa, g, at, p)
	}
	return t.manyRowActivationPlanes(sa, g, at, p)
}

// manyRowActivationScalar is the per-trial reference implementation of
// ManyRowActivation.
func (t *Tester) manyRowActivationScalar(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	cols := sa.Cols()
	// §3.2: the subarray is initialized with one predefined data pattern
	// and the WR carries a different one — the complement, so that a cell
	// that misses the overdrive is always detected as a failure.
	seed := t.groupSeed(sa, g)
	initData := p.FillRowVec(seed, 0, cols)
	wrData := bitvec.New(cols)
	wrData.Not(initData)
	failed := newFailSet(len(g.Rows), cols)
	got := bitvec.New(cols)

	for trial := 0; trial < t.trials; trial++ {
		for _, r := range g.Rows {
			if err := sa.WriteRowVec(r, initData); err != nil {
				return SuccessResult{}, err
			}
		}
		if _, err := sa.APA(g.RF, g.RS, dram.APAOptions{
			Timings:         at,
			Env:             t.env,
			Trial:           trial,
			PatternCoupling: p.CouplingFactor(),
		}); err != nil {
			return SuccessResult{}, err
		}
		if err := sa.WriteOpenRowsVec(wrData); err != nil {
			return SuccessResult{}, err
		}
		sa.Precharge()
		for i, r := range g.Rows {
			if err := sa.ReadRowInto(got, r); err != nil {
				return SuccessResult{}, err
			}
			failed.accumulate(i, got, wrData)
		}
	}
	return SuccessResult{Cells: len(g.Rows) * cols, Stable: failed.stable(), Viable: true}, nil
}

// MAJ characterizes an X-input majority with the group's N-row activation
// (§3.3). Operands take their data from the pattern (operand j is pattern
// row j); each operand is replicated ⌊N/X⌋ times; the N%X leftover rows
// are neutralized. A cell succeeds in a trial iff the group's rows end up
// storing the bitwise majority of the X operands.
func (t *Tester) MAJ(sa *dram.Subarray, g bender.Group, x int,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {
	if t.scalar {
		return t.majScalar(sa, g, x, at, p)
	}
	return t.majPlanes(sa, g, x, at, p)
}

// majScalar is the per-trial reference implementation of MAJ.
func (t *Tester) majScalar(sa *dram.Subarray, g bender.Group, x int,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	if x < 3 || x%2 == 0 {
		return SuccessResult{}, fmt.Errorf("core: MAJ width %d must be odd and >= 3", x)
	}
	n := g.N()
	if n < x {
		return SuccessResult{}, fmt.Errorf("core: MAJ%d needs at least %d rows, group has %d", x, x, n)
	}
	copies := n / x
	cols := sa.Cols()
	seed := t.groupSeed(sa, g)

	// Operand data and the expected bitwise majority, computed with the
	// packed popcount-threshold kernel (64 columns per word).
	operands := make([]bitvec.Vec, x)
	for j := range operands {
		operands[j] = p.FillRowVec(seed, j, cols)
	}
	expected := bitvec.New(cols)
	bitvec.Majority(expected, operands)

	solid0 := bitvec.New(cols)
	solid1 := bitvec.New(cols)
	solid1.Fill(true)

	fracOK := t.mod.Spec().Profile.FracSupported
	failed := newFailSet(1, cols)
	got := bitvec.New(cols)
	viable := true

	for trial := 0; trial < t.trials; trial++ {
		// Row assignment: the first copies*x rows hold the replicated
		// operands round-robin; the leftover rows are neutral.
		for i, r := range g.Rows {
			switch {
			case i < copies*x:
				if err := sa.WriteRowVec(r, operands[i%x]); err != nil {
					return SuccessResult{}, err
				}
			case fracOK:
				if err := sa.SetFracRow(r); err != nil {
					return SuccessResult{}, err
				}
			default:
				// Mfr. M fallback (footnote 5): balanced solid rows that
				// the biased sense amplifiers cancel out.
				bits := solid0
				if (i-copies*x)%2 == 1 {
					bits = solid1
				}
				if err := sa.WriteRowVec(r, bits); err != nil {
					return SuccessResult{}, err
				}
			}
		}
		res, err := sa.APA(g.RF, g.RS, dram.APAOptions{
			Timings:         at,
			Env:             t.env,
			Trial:           trial,
			PatternCoupling: p.CouplingFactor(),
			MAJ:             &dram.MAJSpec{X: x, Copies: copies},
		})
		if err != nil {
			return SuccessResult{}, err
		}
		viable = viable && res.Viable
		sa.Precharge()
		if err := sa.ReadRowInto(got, g.RF); err != nil {
			return SuccessResult{}, err
		}
		failed.accumulate(0, got, expected)
	}
	return SuccessResult{Cells: cols, Stable: failed.stable(), Viable: viable}, nil
}

// MultiRowCopy characterizes copying the group's RF row into the group's
// other rows (§3.4): destinations are initialized with the pattern, the
// source with a different pattern, then APA with a restore-compliant t1
// and violated t2. A destination cell succeeds in a trial iff it stores
// the source data.
func (t *Tester) MultiRowCopy(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {
	if t.scalar {
		return t.multiRowCopyScalar(sa, g, at, p)
	}
	return t.multiRowCopyPlanes(sa, g, at, p)
}

// multiRowCopyScalar is the per-trial reference implementation of
// MultiRowCopy.
func (t *Tester) multiRowCopyScalar(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	cols := sa.Cols()
	seed := t.groupSeed(sa, g)
	// §3.4: the source row carries the tested data pattern (Fig. 11's
	// "copying all-1s to 31 rows" series names the *copied* data) and the
	// destinations are initialized with a different pattern. For solid
	// patterns that is the complement, so a cell the copy misses is always
	// detected; for Random, each destination gets its own random row (the
	// §3.1 random methodology).
	src := p.FillRowVec(seed, 0, cols)
	srcInv := bitvec.New(cols)
	srcInv.Not(src)

	dests := make([]int, 0, len(g.Rows)-1)
	for _, r := range g.Rows {
		if r != g.RF {
			dests = append(dests, r)
		}
	}
	destInit := make([]bitvec.Vec, len(dests))
	for i := range destInit {
		if p == dram.PatternRandom {
			destInit[i] = p.FillRowVec(seed, i+1, cols)
		} else {
			destInit[i] = srcInv
		}
	}
	failed := newFailSet(len(dests), cols)
	got := bitvec.New(cols)

	for trial := 0; trial < t.trials; trial++ {
		for i, r := range dests {
			if err := sa.WriteRowVec(r, destInit[i]); err != nil {
				return SuccessResult{}, err
			}
		}
		if err := sa.WriteRowVec(g.RF, src); err != nil {
			return SuccessResult{}, err
		}
		if _, err := sa.APA(g.RF, g.RS, dram.APAOptions{
			Timings:         at,
			Env:             t.env,
			Trial:           trial,
			PatternCoupling: p.CouplingFactor(),
		}); err != nil {
			return SuccessResult{}, err
		}
		sa.Precharge()
		for i, r := range dests {
			if err := sa.ReadRowInto(got, r); err != nil {
				return SuccessResult{}, err
			}
			failed.accumulate(i, got, src)
		}
	}
	return SuccessResult{Cells: len(dests) * cols, Stable: failed.stable(), Viable: true}, nil
}

// RowClone copies row src to row dst with the best copy timings,
// returning the fraction of correctly copied cells. src and dst must
// belong to the same subarray and form a 2-row decoder group.
func (t *Tester) RowClone(sa *dram.Subarray, src, dst int) (float64, error) {
	rows, err := t.mod.Decoder().ActivatedRows(src, dst)
	if err != nil {
		return 0, err
	}
	if len(rows) != 2 {
		return 0, fmt.Errorf("core: rows %d and %d activate %d rows; RowClone needs exactly 2",
			src, dst, len(rows))
	}
	want, err := sa.ReadRowVec(src)
	if err != nil {
		return 0, err
	}
	if _, err := sa.APA(src, dst, dram.APAOptions{
		Timings: timing.BestCopy(),
		Env:     t.env,
	}); err != nil {
		return 0, err
	}
	sa.Precharge()
	got, err := sa.ReadRowVec(dst)
	if err != nil {
		return 0, err
	}
	diff := bitvec.New(got.Len())
	diff.Xor(got, want)
	match := got.Len() - diff.PopCount()
	return float64(match) / float64(got.Len()), nil
}

// groupSeed derives the data seed for one row group: the paper
// re-generates the tested data for every group instance, so operand values
// (and the fixed-pattern byte choices) vary group to group.
func (t *Tester) groupSeed(sa *dram.Subarray, g bender.Group) uint64 {
	return xrand.Hash(t.seed, uint64(sa.Bank()), uint64(sa.Index()),
		uint64(g.RF), uint64(g.RS))
}

// failSet tracks which cells have failed any trial, as one packed failure
// vector per characterized row: accumulating a trial is one Xor+Or pass
// over the packed words rather than a per-cell comparison loop.
type failSet struct {
	rows []bitvec.Vec
	diff bitvec.Vec
}

func newFailSet(rows, cols int) *failSet {
	s := &failSet{rows: make([]bitvec.Vec, rows), diff: bitvec.New(cols)}
	for i := range s.rows {
		s.rows[i] = bitvec.New(cols)
	}
	return s
}

// accumulate marks every cell of row i where got differs from want.
func (s *failSet) accumulate(i int, got, want bitvec.Vec) {
	s.diff.Xor(got, want)
	s.rows[i].Or(s.rows[i], s.diff)
}

// stable returns the number of cells that were correct in every trial.
func (s *failSet) stable() int {
	n := 0
	for _, r := range s.rows {
		n += r.Len() - r.PopCount()
	}
	return n
}
