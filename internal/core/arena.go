package core

import (
	"sync"

	"repro/internal/bitvec"
	"repro/internal/engine"
)

// Arena is a per-shard scratch buffer set for the characterization
// kernels: packed row vectors and one trial-plane stack, all of a single
// column width. Kernels take vectors with vec() — handed out zeroed, in
// deterministic order — and the whole arena rewinds with reset() when the
// next kernel begins, so a shard's steady state allocates nothing.
//
// Ownership: an arena belongs to exactly one kernel invocation at a time
// (Tester methods get one from the pool and put it back on return);
// vectors obtained from it are invalid after the kernel returns. Arenas
// are not safe for concurrent use — concurrency comes from the pool
// handing distinct arenas to distinct shards.
type Arena struct {
	cols   int
	vecs   []bitvec.Vec
	next   int
	planes bitvec.Planes
}

func newArena(cols int) *Arena { return &Arena{cols: cols} }

// reset rewinds the arena: every previously handed-out vector becomes
// free again (and will be re-zeroed before reuse).
func (a *Arena) reset() { a.next = 0 }

// vec hands out a zeroed packed vector of the arena's width.
func (a *Arena) vec() bitvec.Vec {
	if a.next == len(a.vecs) {
		a.vecs = append(a.vecs, bitvec.New(a.cols))
	}
	v := a.vecs[a.next]
	a.next++
	v.Fill(false)
	return v
}

// planeStack hands out a t-plane stack of the arena's width. Planes are
// not zeroed: callers overwrite every plane they reduce. Only one stack
// is live at a time (a later call invalidates the previous one), which is
// all the kernels need — each asserted set's trials are materialized and
// reduced before the next set begins.
func (a *Arena) planeStack(t int) bitvec.Planes {
	if a.planes.T() < t || a.planes.Len() != a.cols {
		a.planes = bitvec.NewPlanes(t, a.cols)
	}
	return a.planes.Slice(t)
}

// ArenaPool shares arenas between shards, one free-list per column width.
// The zero value is not usable; construct with NewArenaPool. Testers use
// a process-shared default pool unless WithArenaPool overrides it (the
// charexp runner owns one per run, so concurrent runs don't contend).
type ArenaPool struct {
	pools sync.Map // cols int -> *engine.Pool[*Arena]
}

// NewArenaPool returns an empty arena pool.
func NewArenaPool() *ArenaPool { return &ArenaPool{} }

func (p *ArenaPool) get(cols int) *Arena {
	pl, ok := p.pools.Load(cols)
	if !ok {
		pl, _ = p.pools.LoadOrStore(cols, engine.NewPool(func() *Arena { return newArena(cols) }))
	}
	a := pl.(*engine.Pool[*Arena]).Get()
	a.reset()
	return a
}

func (p *ArenaPool) put(a *Arena) {
	if pl, ok := p.pools.Load(a.cols); ok {
		pl.(*engine.Pool[*Arena]).Put(a)
	}
}

// sharedArenas is the default process-wide pool.
var sharedArenas = NewArenaPool()
