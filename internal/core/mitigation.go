package core

import (
	"errors"
	"fmt"

	"repro/internal/bender"
	"repro/internal/bitserial"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/tmr"
	"repro/internal/xrand"
)

// Mitigation co-simulation (§8.1 case studies folded into the sweep
// machinery): instead of characterizing the bare operation, the shard
// measures whether a redundancy scheme recovers a payload at the cell's
// operating point. Both schemes execute their redundant computation
// *through* in-DRAM majority operations at the point's environment and
// timings — a harsher envelope degrades the mitigation itself, which is
// exactly the margin question the scenario subsystem answers.
//
//   - "tmr": the payload is replicated into MitLevel copy registers,
//     ⌊(MitLevel−1)/2⌋ copies take injected faults, and a single
//     MAJ(MitLevel) vote recovers the payload (the paper's in-DRAM
//     modular-redundancy case study).
//   - "ecc": MitLevel data registers share one parity row computed with
//     in-DRAM XOR; one corrupted register per trial is reconstructed from
//     the parity and the surviving lanes (redundancy overhead 1/MitLevel
//     versus TMR's (MitLevel−1)/MitLevel).
//
// The success metric matches §3.1: the fraction of usable SIMD lanes whose
// recovered value is correct in every trial.

// mitFaultDivisor sets the injected-fault density: cols/mitFaultDivisor
// flipped bits per corrupted register.
const mitFaultDivisor = 16

// mitigationSeed derives the payload/fault seed of one mitigation shard,
// disjoint from the group-data tag space by the trailing constant.
func (t *Tester) mitigationSeed(sa *dram.Subarray) uint64 {
	return xrand.Hash(t.seed, uint64(sa.Bank()), uint64(sa.Index()), 0x317a)
}

// mitigationInfeasible is the outcome of a subarray where the redundancy
// scheme cannot run at all at this operating point (no reliable compute
// group, or the required vote width is unavailable): every lane fails,
// and the group is marked non-viable.
func mitigationInfeasible(sa *dram.Subarray, s bender.SubarraySample) []GroupOutcome {
	return []GroupOutcome{{
		Sample: s,
		Result: SuccessResult{Cells: sa.Cols(), Stable: 0, Viable: false},
	}}
}

// mitigationSubarray runs the configured redundancy co-simulation on one
// sampled subarray, producing one GroupOutcome (the computer's compute
// group plays the role of the sweep's row groups).
func (t *Tester) mitigationSubarray(cfg SweepConfig, s bender.SubarraySample,
	sa *dram.Subarray) ([]GroupOutcome, error) {

	maxX := 3
	if cfg.Mitigation == "tmr" {
		maxX = cfg.MitLevel
	}
	c, err := bitserial.NewComputerAt(t.mod, sa, maxX, t.env, cfg.Timings)
	if err != nil {
		if errors.Is(err, bitserial.ErrNoReliableGroup) {
			return mitigationInfeasible(sa, s), nil
		}
		return nil, err
	}
	switch cfg.Mitigation {
	case "tmr":
		return t.mitigationTMR(cfg, s, sa, c)
	case "ecc":
		return t.mitigationECC(cfg, s, sa, c)
	default:
		return nil, fmt.Errorf("core: unknown mitigation %q", cfg.Mitigation)
	}
}

// mitFaults returns the injected-fault count per corrupted register.
func mitFaults(cols int) int {
	if f := cols / mitFaultDivisor; f > 0 {
		return f
	}
	return 1
}

// mitOutcome folds a per-lane failure vector into the shard's outcome,
// restricted to the lanes the computer's reliability probe admitted.
func mitOutcome(c *bitserial.Computer, s bender.SubarraySample, failed bitvec.Vec) []GroupOutcome {
	reliable := c.ReliableVec()
	masked := bitvec.New(failed.Len())
	masked.And(failed, reliable)
	cells := reliable.PopCount()
	return []GroupOutcome{{
		Sample: s,
		Group:  c.Group(),
		Result: SuccessResult{Cells: cells, Stable: cells - masked.PopCount(), Viable: true},
	}}
}

// mitigationTMR votes MitLevel payload copies — ⌊(MitLevel−1)/2⌋ of them
// fault-injected — through a single in-DRAM MAJ at the cell's operating
// point, trials times.
func (t *Tester) mitigationTMR(cfg SweepConfig, s bender.SubarraySample,
	sa *dram.Subarray, c *bitserial.Computer) ([]GroupOutcome, error) {

	v, err := tmr.NewVoter(c, cfg.MitLevel)
	if err != nil {
		// The probe degraded the usable width below the requested vote:
		// the mitigation is infeasible at this point, not a caller error.
		return mitigationInfeasible(sa, s), nil
	}
	cols := c.Cols()
	copies, err := v.Protect(make([]bool, cols))
	if err != nil {
		return nil, err
	}
	dst, err := c.AllocReg()
	if err != nil {
		return nil, err
	}
	seed := t.mitigationSeed(sa)
	failed := bitvec.New(cols)
	diff := bitvec.New(cols)
	for trial := 0; trial < t.trials; trial++ {
		payload := dram.PatternRandom.FillRowVec(xrand.Hash(seed, uint64(trial)), 0, cols)
		for _, reg := range copies {
			if err := c.WriteRowVecDirect(reg, payload); err != nil {
				return nil, err
			}
		}
		if _, err := v.InjectFaults(copies, v.Correctable(), mitFaults(cols),
			xrand.Hash(seed, uint64(trial), 0x7f1)); err != nil {
			return nil, err
		}
		if err := v.Vote(dst, copies); err != nil {
			return nil, err
		}
		got, err := c.ReadRowVecDirect(dst)
		if err != nil {
			return nil, err
		}
		diff.Xor(got, payload)
		failed.Or(failed, diff)
	}
	return mitOutcome(c, s, failed), nil
}

// mitigationECC protects MitLevel data registers with one in-DRAM parity
// row and reconstructs a corrupted register per trial from the parity and
// the surviving lanes. Both the parity computation and the reconstruction
// run as stressed in-DRAM XOR chains, so deeper levels trade lower
// redundancy overhead for more exposure to the operating point.
func (t *Tester) mitigationECC(cfg SweepConfig, s bender.SubarraySample,
	sa *dram.Subarray, c *bitserial.Computer) ([]GroupOutcome, error) {

	lanes := cfg.MitLevel
	cols := c.Cols()
	data := make([]int, lanes)
	var err error
	for i := range data {
		if data[i], err = c.AllocReg(); err != nil {
			return nil, err
		}
	}
	parity, err := c.AllocReg()
	if err != nil {
		return nil, err
	}
	recon, err := c.AllocReg()
	if err != nil {
		return nil, err
	}
	seed := t.mitigationSeed(sa)
	failed := bitvec.New(cols)
	diff := bitvec.New(cols)
	payloads := make([]bitvec.Vec, lanes)
	for trial := 0; trial < t.trials; trial++ {
		for i := range data {
			payloads[i] = dram.PatternRandom.FillRowVec(
				xrand.Hash(seed, uint64(trial), uint64(i)), 0, cols)
			if err := c.WriteRowVecDirect(data[i], payloads[i]); err != nil {
				return nil, err
			}
		}
		if err := c.XOR(parity, data[0], data[1]); err != nil {
			return nil, err
		}
		for i := 2; i < lanes; i++ {
			if err := c.XOR(parity, parity, data[i]); err != nil {
				return nil, err
			}
		}
		victim := trial % lanes
		row, err := c.ReadRowDirect(data[victim])
		if err != nil {
			return nil, err
		}
		positions := xrand.NewSource(xrand.Hash(seed, uint64(trial), 0x7f2),
			uint64(victim), 0x7a1).Sample(cols, mitFaults(cols))
		for _, p := range positions {
			row[p] = !row[p]
		}
		if err := c.WriteRowDirect(data[victim], row); err != nil {
			return nil, err
		}
		first := true
		for i := 0; i < lanes; i++ {
			if i == victim {
				continue
			}
			if first {
				err = c.XOR(recon, parity, data[i])
				first = false
			} else {
				err = c.XOR(recon, recon, data[i])
			}
			if err != nil {
				return nil, err
			}
		}
		got, err := c.ReadRowVecDirect(recon)
		if err != nil {
			return nil, err
		}
		diff.Xor(got, payloads[victim])
		failed.Or(failed, diff)
	}
	return mitOutcome(c, s, failed), nil
}
