package core

import (
	"math"
	"testing"

	"repro/internal/analog"
	"repro/internal/dram"
	"repro/internal/timing"
)

// TestPredictorMatchesSimulation cross-checks the closed-form success
// predictor (analog.PredictMAJSuccess) against the full simulation: the
// two share the model constants but compute through entirely different
// paths (numeric integration vs per-cell Monte-Carlo execution), so
// agreement within a few percentage points validates both.
func TestPredictorMatchesSimulation(t *testing.T) {
	spec := dram.NewSpec("crosscheck", dram.ProfileH, 0xcc01)
	spec.Columns = 512
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(mod, WithTrials(4))
	if err != nil {
		t.Fatal(err)
	}
	params := analog.DefaultParams()
	for _, x := range []int{3, 5, 7, 9} {
		sweep, err := tester.RunSweep(SweepConfig{
			Op: OpMAJ, X: x, N: 32,
			Timings: timing.BestMAJ(),
			Pattern: dram.PatternRandom,
			Banks:   2, GroupsPerSubarray: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		simulated := sweep.Summary().Mean
		predicted := params.PredictMAJSuccess(x, 32, 1, 0)
		if diff := math.Abs(simulated - predicted); diff > 0.12 {
			t.Errorf("MAJ%d: simulation %.4f vs prediction %.4f (|diff| %.4f > 0.12)",
				x, simulated, predicted, diff)
		}
	}
}

// TestPredictorMatchesReplicationTrend: the predictor tracks the simulated
// replication curve for MAJ3.
func TestPredictorMatchesReplicationTrend(t *testing.T) {
	spec := dram.NewSpec("crosscheck2", dram.ProfileH, 0xcc02)
	spec.Columns = 256
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(mod, WithTrials(4))
	if err != nil {
		t.Fatal(err)
	}
	params := analog.DefaultParams()
	for _, n := range []int{4, 8, 16, 32} {
		sweep, err := tester.RunSweep(SweepConfig{
			Op: OpMAJ, X: 3, N: n,
			Timings: timing.BestMAJ(),
			Pattern: dram.PatternRandom,
			Banks:   2, GroupsPerSubarray: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		simulated := sweep.Summary().Mean
		predicted := params.PredictMAJSuccess(3, n, 1, 0)
		if diff := math.Abs(simulated - predicted); diff > 0.15 {
			t.Errorf("MAJ3@%d: simulation %.4f vs prediction %.4f (|diff| %.4f > 0.15)",
				n, simulated, predicted, diff)
		}
	}
}
