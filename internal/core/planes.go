package core

import (
	"fmt"

	"repro/internal/bender"
	"repro/internal/bitvec"
	"repro/internal/dram"
	"repro/internal/timing"
)

// Trial-plane kernels: the packed successors of the scalar per-trial
// loops in core.go (retained there as the differential reference, see
// WithScalarKernel). Each kernel asks the subarray for the
// trial-invariant plan of its T trials (dram.PlanAPA), evaluates the
// expensive resolution once per distinct asserted set, materializes the
// per-trial outcomes as bit-planes, and reduces the paper's all-trials
// success criterion with word-wise plane reduction: a cell is stable iff
// its failure bit is clear in the OR across trial planes (the De Morgan
// dual of ANDing success planes).
//
// Bit-identity with the scalar path holds because every draw the
// simulator makes is a stateless hash of structural coordinates — the
// plan draws exactly the values the scalar path would draw for the same
// (row, column, trial), so regrouping the loops cannot change any bit
// (see DESIGN.md §13). The kernels never mutate array state beyond the
// initial row writes; all trials observe the same initial state, exactly
// as the scalar path re-establishes it at every trial start.

// inSet reports whether row r is in the (≤ 32-entry) asserted set.
func inSet(rows []int, r int) bool {
	for _, x := range rows {
		if x == r {
			return true
		}
	}
	return false
}

// failPlanes materializes one asserted set's share-mode trial outcomes as
// planes, XORs each against want, and ORs the planes into a combined
// any-trial failure mask written to dst.
func failPlanes(a *Arena, sa *dram.Subarray, plan *dram.APAPlan, set dram.AssertSet,
	det, meta, want, dst bitvec.Vec) {

	ps := a.planeStack(len(set.Trials))
	for k, trial := range set.Trials {
		pl := ps.Plane(k)
		sa.ShareOut(pl, det, meta, plan, trial)
		pl.Xor(pl, want)
	}
	ps.ReduceOr(dst)
}

// manyRowActivationPlanes is the trial-plane ManyRowActivation kernel.
// The WR failure of an asserted row r is wrFail(r) & (sensed ^ wrData):
// a weak cell keeps the post-APA sensed value, which is wrong unless it
// happens to equal the WR bit. Rows not asserted in a trial keep the
// initial pattern, whose complement is the WR data — every cell fails.
func (t *Tester) manyRowActivationPlanes(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	cols := sa.Cols()
	a := t.arenas.get(cols)
	defer t.arenas.put(a)

	seed := t.groupSeed(sa, g)
	initData := a.vec()
	p.FillRowInto(initData, seed, 0)
	wrData := a.vec()
	wrData.Not(initData)

	opts := dram.APAOptions{Timings: at, Env: t.env, PatternCoupling: p.CouplingFactor()}
	plan, err := sa.PlanAPA(g.RF, g.RS, t.trials, opts)
	if err != nil {
		return SuccessResult{}, err
	}
	for _, r := range g.Rows {
		if err := sa.WriteRowVec(r, initData); err != nil {
			return SuccessResult{}, err
		}
	}

	fails := make([]bitvec.Vec, len(g.Rows))
	for i := range fails {
		fails[i] = a.vec()
	}
	det, meta, diff, wf := a.vec(), a.vec(), a.vec(), a.vec()

	for _, set := range plan.Sets {
		if plan.Mode == dram.ModeShare {
			if plan.Viable {
				sa.ShareResolve(det, meta, set, plan, opts)
			}
			failPlanes(a, sa, plan, set, det, meta, wrData, diff)
		} else {
			// Single and copy modes leave every cell at the initial
			// pattern before the WR, so sensed ^ wrData is all-ones and
			// only the weak-write mask decides failure.
			diff.Fill(true)
		}
		for i, r := range g.Rows {
			if !inSet(set.Rows, r) {
				fails[i].Fill(true)
				continue
			}
			sa.WRFail(wf, r, len(set.Rows))
			wf.And(wf, diff)
			fails[i].Or(fails[i], wf)
		}
	}

	stable := 0
	for _, f := range fails {
		stable += cols - f.PopCount()
	}
	return SuccessResult{Cells: len(g.Rows) * cols, Stable: stable, Viable: true}, nil
}

// majPlanes is the trial-plane MAJ kernel. Share mode senses the
// charge-shared majority into every asserted row (read back at RF);
// single and copy modes never alter RF's readout, so their outcome is
// trial-invariant: the resolved initial RF data versus the expected
// majority.
func (t *Tester) majPlanes(sa *dram.Subarray, g bender.Group, x int,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	if x < 3 || x%2 == 0 {
		return SuccessResult{}, fmt.Errorf("core: MAJ width %d must be odd and >= 3", x)
	}
	n := g.N()
	if n < x {
		return SuccessResult{}, fmt.Errorf("core: MAJ%d needs at least %d rows, group has %d", x, x, n)
	}
	copies := n / x
	cols := sa.Cols()
	seed := t.groupSeed(sa, g)
	a := t.arenas.get(cols)
	defer t.arenas.put(a)

	operands := make([]bitvec.Vec, x)
	for j := range operands {
		operands[j] = a.vec()
		p.FillRowInto(operands[j], seed, j)
	}
	expected := a.vec()
	bitvec.Majority(expected, operands)

	solid0 := a.vec()
	solid1 := a.vec()
	solid1.Fill(true)
	fracOK := t.mod.Spec().Profile.FracSupported

	// Row assignment, written once: replicated operands round-robin, then
	// neutral leftovers (identical to the scalar path's per-trial writes).
	for i, r := range g.Rows {
		switch {
		case i < copies*x:
			if err := sa.WriteRowVec(r, operands[i%x]); err != nil {
				return SuccessResult{}, err
			}
		case fracOK:
			if err := sa.SetFracRow(r); err != nil {
				return SuccessResult{}, err
			}
		default:
			bits := solid0
			if (i-copies*x)%2 == 1 {
				bits = solid1
			}
			if err := sa.WriteRowVec(r, bits); err != nil {
				return SuccessResult{}, err
			}
		}
	}

	opts := dram.APAOptions{
		Timings:         at,
		Env:             t.env,
		PatternCoupling: p.CouplingFactor(),
		MAJ:             &dram.MAJSpec{X: x, Copies: copies},
	}
	plan, err := sa.PlanAPA(g.RF, g.RS, t.trials, opts)
	if err != nil {
		return SuccessResult{}, err
	}

	failAcc := a.vec()
	if plan.Mode == dram.ModeShare {
		det, meta, diff := a.vec(), a.vec(), a.vec()
		for _, set := range plan.Sets {
			if plan.Viable {
				sa.ShareResolve(det, meta, set, plan, opts)
			}
			failPlanes(a, sa, plan, set, det, meta, expected, diff)
			failAcc.Or(failAcc, diff)
		}
	} else {
		// Single mode opens only RS; copy mode latches RF's own data back
		// into RF. Either way RF reads back its resolved initial data.
		got := a.vec()
		if err := sa.ReadRowInto(got, g.RF); err != nil {
			return SuccessResult{}, err
		}
		failAcc.Xor(got, expected)
	}
	return SuccessResult{Cells: cols, Stable: cols - failAcc.PopCount(), Viable: plan.Viable}, nil
}

// multiRowCopyPlanes is the trial-plane MultiRowCopy kernel. In copy mode
// an asserted destination fails where its weak-copy mask keeps an initial
// bit that differs from the source; unasserted (or single-mode)
// destinations keep their full initial pattern.
func (t *Tester) multiRowCopyPlanes(sa *dram.Subarray, g bender.Group,
	at timing.APATimings, p dram.Pattern) (SuccessResult, error) {

	cols := sa.Cols()
	seed := t.groupSeed(sa, g)
	a := t.arenas.get(cols)
	defer t.arenas.put(a)

	src := a.vec()
	p.FillRowInto(src, seed, 0)
	srcInv := a.vec()
	srcInv.Not(src)

	dests := make([]int, 0, len(g.Rows)-1)
	for _, r := range g.Rows {
		if r != g.RF {
			dests = append(dests, r)
		}
	}
	destInit := make([]bitvec.Vec, len(dests))
	for i := range destInit {
		if p == dram.PatternRandom {
			destInit[i] = a.vec()
			p.FillRowInto(destInit[i], seed, i+1)
		} else {
			destInit[i] = srcInv
		}
	}

	opts := dram.APAOptions{Timings: at, Env: t.env, PatternCoupling: p.CouplingFactor()}
	plan, err := sa.PlanAPA(g.RF, g.RS, t.trials, opts)
	if err != nil {
		return SuccessResult{}, err
	}
	for i, r := range dests {
		if err := sa.WriteRowVec(r, destInit[i]); err != nil {
			return SuccessResult{}, err
		}
	}
	if err := sa.WriteRowVec(g.RF, src); err != nil {
		return SuccessResult{}, err
	}

	fails := make([]bitvec.Vec, len(dests))
	for i := range fails {
		fails[i] = a.vec()
	}
	det, meta, diff, cf := a.vec(), a.vec(), a.vec(), a.vec()

	for _, set := range plan.Sets {
		switch plan.Mode {
		case dram.ModeCopy:
			for i, d := range dests {
				diff.Xor(destInit[i], src)
				if inSet(set.Rows, d) {
					sa.CopyFail(cf, d, src, len(set.Rows), plan, opts)
					cf.And(cf, diff)
					fails[i].Or(fails[i], cf)
				} else {
					fails[i].Or(fails[i], diff)
				}
			}
		case dram.ModeSingle:
			for i := range dests {
				diff.Xor(destInit[i], src)
				fails[i].Or(fails[i], diff)
			}
		case dram.ModeShare:
			if plan.Viable {
				sa.ShareResolve(det, meta, set, plan, opts)
			}
			failPlanes(a, sa, plan, set, det, meta, src, diff)
			for i, d := range dests {
				if inSet(set.Rows, d) {
					fails[i].Or(fails[i], diff)
					continue
				}
				cf.Xor(destInit[i], src)
				fails[i].Or(fails[i], cf)
			}
		}
	}

	stable := 0
	for _, f := range fails {
		stable += cols - f.PopCount()
	}
	return SuccessResult{Cells: len(dests) * cols, Stable: stable, Viable: true}, nil
}
