package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/dram"
	"repro/internal/fleet"
	"repro/internal/timing"
)

// testShardSpec builds a small but non-trivial shard spec.
func testShardSpec(t *testing.T) ShardSpec {
	t.Helper()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	entry := fleet.Representative(fc)[0]
	params := analog.DefaultParams()
	mod, err := dram.NewModule(entry.Spec, params)
	if err != nil {
		t.Fatal(err)
	}
	samples := bender.SampleSubarrays(mod, 1, 0xd5a)
	if len(samples) == 0 {
		t.Fatal("no subarray samples")
	}
	env := analog.NominalEnv()
	env.TempC = 60.5
	return ShardSpec{
		Spec:   entry.Spec,
		Params: params,
		Env:    env,
		Sweep: SweepConfig{
			Op: OpManyRowActivation, X: 0, N: 4,
			Timings:          timing.APATimings{T1: 4.5, T2: 1.5},
			SubarraysPerBank: 1, GroupsPerSubarray: 3, Banks: 1,
		},
		Trials: 2,
		Seed:   0xd5a,
		Sample: samples[0],
	}
}

// TestShardSpecExecMatchesDirect: Exec must reproduce the same outcomes
// as a directly constructed tester over the same cell.
func TestShardSpecExecMatchesDirect(t *testing.T) {
	s := testShardSpec(t)
	got, err := s.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := dram.NewModule(s.Spec, s.Params)
	if err != nil {
		t.Fatal(err)
	}
	tester, err := NewTester(mod,
		WithEnv(s.Env), WithTrials(s.Trials), WithSeed(s.Seed), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	want, err := tester.SweepShard(s.Sweep, s.Sample)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("shard spec exec diverged from direct run\n got: %+v\nwant: %+v", got, want)
	}
}

// TestShardSpecJSONRoundTrip: the wire codec must be exact — a
// deserialized spec recomputes bit-identical outcomes, and the result
// encoding itself round-trips.
func TestShardSpecJSONRoundTrip(t *testing.T) {
	s := testShardSpec(t)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardSpec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("spec round trip drifted\n got: %+v\nwant: %+v", back, s)
	}
	want, err := s.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Exec(nil)
	if err != nil {
		t.Fatal(err)
	}
	wb, _ := json.Marshal(want)
	gb, _ := json.Marshal(got)
	if string(wb) != string(gb) {
		t.Fatal("outcome bytes diverge after the spec round trip")
	}
	var decoded []GroupOutcome
	if err := json.Unmarshal(wb, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, want) {
		t.Fatal("outcome JSON round trip drifted")
	}
}
