package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func key(parts ...string) Key {
	h := NewHasher()
	for _, p := range parts {
		h.Str(p)
	}
	return h.Sum()
}

func TestHasherFieldBoundaries(t *testing.T) {
	if key("ab", "c") == key("a", "bc") {
		t.Fatal("string concatenation ambiguity: (ab,c) and (a,bc) collide")
	}
	if key("a") == key("a", "") {
		t.Fatal("field count ambiguity: (a) and (a,\"\") collide")
	}
	if NewHasher().U64(1).Sum() == NewHasher().Int(1).Sum() {
		t.Fatal("type tag ambiguity: U64(1) and Int(1) collide")
	}
	if NewHasher().F64(0).Sum() == NewHasher().U64(0).Sum() {
		t.Fatal("type tag ambiguity: F64(0) and U64(0) collide")
	}
	if key("a") != key("a") {
		t.Fatal("hashing is not deterministic")
	}
}

func TestGetPutStats(t *testing.T) {
	c := New(0)
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key("a"), "va", 10)
	v, ok := c.Get(key("a"))
	if !ok || v.(string) != "va" {
		t.Fatalf("Get(a) = %v, %v; want va, true", v, ok)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 || s.Bytes != 10 {
		t.Fatalf("stats = %+v; want 1 hit, 1 miss, 1 entry, 10 bytes", s)
	}
	// Replacing a key adjusts bytes rather than leaking the old size.
	c.Put(key("a"), "va2", 4)
	if s := c.Stats(); s.Entries != 1 || s.Bytes != 4 {
		t.Fatalf("after replace: %+v; want 1 entry, 4 bytes", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(100)
	c.Put(key("a"), "a", 60)
	c.Put(key("b"), "b", 30)
	// Touch a so b becomes least recently used.
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a missing before eviction")
	}
	c.Put(key("c"), "c", 40) // 130 > 100: evicts b (LRU), keeps a+c
	if _, ok := c.Get(key("b")); ok {
		t.Fatal("b survived eviction; LRU order not respected")
	}
	if _, ok := c.Get(key("a")); !ok {
		t.Fatal("a evicted despite being recently used")
	}
	if _, ok := c.Get(key("c")); !ok {
		t.Fatal("c evicted immediately after insert")
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Entries != 2 || s.Bytes != 100 {
		t.Fatalf("stats = %+v; want 1 eviction, 2 entries, 100 bytes", s)
	}
}

func TestOversizeEntryNotStored(t *testing.T) {
	c := New(10)
	c.Put(key("big"), "big", 11)
	if _, ok := c.Get(key("big")); ok {
		t.Fatal("entry larger than the whole budget was stored")
	}
	if s := c.Stats(); s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("stats = %+v; want empty cache", s)
	}
}

// TestDoCoalesces is the coalescing contract: N concurrent Do calls with
// the same key execute compute exactly once and all observe its result.
func TestDoCoalesces(t *testing.T) {
	c := New(0)
	const n = 16
	gate := make(chan struct{})
	execs := 0
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := c.Do(key("k"), func() (any, int64, error) {
				execs++ // safe: only one compute may run
				<-gate
				return "value", 5, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Wait until the single execution started and the other callers have
	// coalesced onto it, then release.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := c.Stats()
		if s.Executions == 1 && s.Coalesced == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("coalescing never converged: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if execs != 1 {
		t.Fatalf("compute ran %d times; want exactly 1", execs)
	}
	for i, v := range results {
		if v.(string) != "value" {
			t.Fatalf("caller %d got %v; want value", i, v)
		}
	}
	// A later Do is a pure cache hit: still one execution.
	if _, err := c.Do(key("k"), func() (any, int64, error) {
		t.Fatal("compute ran on a cached key")
		return nil, 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.Executions != 1 {
		t.Fatalf("executions = %d after cached Do; want 1", s.Executions)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(0)
	boom := errors.New("boom")
	if _, err := c.Do(key("k"), func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	v, err := c.Do(key("k"), func() (any, int64, error) { return "ok", 2, nil })
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after error = %v, %v; want ok", v, err)
	}
	s := c.Stats()
	if s.Executions != 2 || s.Errors != 1 {
		t.Fatalf("stats = %+v; want 2 executions, 1 error", s)
	}
}

// TestDoPanicDoesNotWedgeKey pins the cleanup contract: a panicking
// compute must propagate to its caller, release any coalesced waiters
// with an error, and leave the key usable.
func TestDoPanicDoesNotWedgeKey(t *testing.T) {
	c := New(0)
	started := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		defer func() { recover() }()
		c.Do(key("k"), func() (any, int64, error) {
			close(started)
			// Give the waiter time to coalesce before panicking.
			for {
				if c.Stats().Coalesced == 1 {
					panic("boom")
				}
				time.Sleep(time.Millisecond)
			}
		})
	}()
	<-started
	go func() {
		_, err := c.Do(key("k"), func() (any, int64, error) { return "fresh", 1, nil })
		waiterDone <- err
	}()
	select {
	case err := <-waiterDone:
		// The waiter either coalesced onto the panicked call (error) or
		// arrived after cleanup and computed fresh (nil); both prove the
		// key is not wedged.
		_ = err
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung: panic left the inflight entry registered")
	}
	v, err := c.Do(key("k"), func() (any, int64, error) { return "ok", 2, nil })
	if err != nil {
		t.Fatalf("key unusable after panic: %v", err)
	}
	if s, _ := v.(string); s != "ok" && s != "fresh" {
		t.Fatalf("unexpected value %v after panic recovery", v)
	}
}

func TestTypedAdapter(t *testing.T) {
	c := New(100)
	ty := NewTyped(c, func(s []int) int64 { return int64(8 * len(s)) })
	ty.Put(key("v"), []int{1, 2, 3})
	got, ok := ty.Get(key("v"))
	if !ok || len(got) != 3 || got[2] != 3 {
		t.Fatalf("typed round-trip = %v, %v", got, ok)
	}
	if s := c.Stats(); s.Bytes != 24 {
		t.Fatalf("bytes = %d; want 24 from size func", s.Bytes)
	}
	// A value of the wrong dynamic type under the key reads as a miss.
	c.Put(key("v"), "not-a-slice", 1)
	if _, ok := ty.Get(key("v")); ok {
		t.Fatal("typed Get returned a foreign value")
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(1 << 10)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprint(i % 17))
				switch i % 3 {
				case 0:
					c.Put(k, i, int64(i%97))
				case 1:
					c.Get(k)
				default:
					c.Do(k, func() (any, int64, error) { return i, 8, nil })
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Bytes > 1<<10 {
		t.Fatalf("bytes %d exceed capacity under concurrency", s.Bytes)
	}
}
