package cache

import (
	"sync"
	"sync/atomic"
)

// Backend is a remote cache tier: a byte-oriented key-value store shared
// by the nodes of a serving fleet. Implementations must be safe for
// concurrent use and best-effort — a Get that fails (network error,
// remote down) reports a miss, and a Put that fails is silently dropped.
// Correctness never depends on the backend: keys are content addresses,
// so the worst a lost entry costs is a recomputation, and the engine's
// determinism contract makes any stored value bit-identical to a fresh
// one.
type Backend interface {
	Get(k Key) ([]byte, bool)
	Put(k Key, v []byte)
}

// ErrorCounter is optionally implemented by backends that can tell a
// real miss from a degraded one (transport failure, bad status). Tiered
// surfaces the count as Stats.RemoteErrors so operators can distinguish
// a cold remote tier from a broken one.
type ErrorCounter interface {
	// Errors returns how many remote operations failed and silently
	// degraded to misses or dropped writes.
	Errors() int64
}

// MemBackend is an in-memory Backend: the fake remote tier used by tests
// and by a node hosting the fleet's shared tier in-process. The zero
// value is not usable; create with NewMemBackend.
type MemBackend struct {
	mu      sync.RWMutex
	entries map[Key][]byte
	hits    atomic.Int64
	misses  atomic.Int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{entries: make(map[Key][]byte)}
}

// Get returns the stored bytes for k.
func (m *MemBackend) Get(k Key) ([]byte, bool) {
	m.mu.RLock()
	v, ok := m.entries[k]
	m.mu.RUnlock()
	if !ok {
		m.misses.Add(1)
		return nil, false
	}
	m.hits.Add(1)
	return v, true
}

// Put stores v under k, copying it so callers may reuse the slice.
func (m *MemBackend) Put(k Key, v []byte) {
	cp := make([]byte, len(v))
	copy(cp, v)
	m.mu.Lock()
	m.entries[k] = cp
	m.mu.Unlock()
}

// Len returns the number of stored entries.
func (m *MemBackend) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// Tiered layers a local Cache over an optional remote Backend for
// string-valued response entries: Get and Do check the local LRU first,
// then the remote tier, and only then compute. Singleflight coalescing is
// preserved — the remote lookup runs inside the local cache's inflight
// section, so concurrent identical requests still cost at most one remote
// round trip or one computation. A remote hit inside Do short-circuits
// the caller's compute function entirely: the caller observes a cached
// result (its compute never ran), which is what keeps a fleet-wide cache
// hit from counting as an execution. A nil Backend makes Tiered a
// transparent view of the local cache.
type Tiered struct {
	local        *Cache
	remote       Backend
	remoteHits   atomic.Int64
	remoteMisses atomic.Int64
}

// NewTiered layers local over remote (remote may be nil).
func NewTiered(local *Cache, remote Backend) *Tiered {
	return &Tiered{local: local, remote: remote}
}

// Local returns the underlying local cache.
func (t *Tiered) Local() *Cache { return t.local }

// Get returns the value for k from the local tier, falling back to the
// remote tier (promoting a remote hit into the local LRU).
func (t *Tiered) Get(k Key) (any, bool) {
	if v, ok := t.local.Get(k); ok {
		return v, true
	}
	if t.remote == nil {
		return nil, false
	}
	b, ok := t.remote.Get(k)
	if !ok {
		t.remoteMisses.Add(1)
		return nil, false
	}
	t.remoteHits.Add(1)
	s := string(b)
	t.local.Put(k, s, int64(len(s)))
	return s, true
}

// Do returns the value for k with the Cache.Do contract (singleflight,
// error passthrough), consulting the remote tier before running compute.
// A successful computation is written through to both tiers; a remote hit
// is promoted locally without running compute.
func (t *Tiered) Do(k Key, compute func() (any, int64, error)) (any, error) {
	if t.remote == nil {
		return t.local.Do(k, compute)
	}
	return t.local.Do(k, func() (any, int64, error) {
		if b, ok := t.remote.Get(k); ok {
			t.remoteHits.Add(1)
			s := string(b)
			return s, int64(len(s)), nil
		}
		t.remoteMisses.Add(1)
		v, size, err := compute()
		if err == nil {
			if s, ok := v.(string); ok {
				t.remote.Put(k, []byte(s))
			}
		}
		return v, size, err
	})
}

// Stats returns the local cache's counters with the remote-tier counters
// filled in.
func (t *Tiered) Stats() Stats {
	s := t.local.Stats()
	s.RemoteHits = t.remoteHits.Load()
	s.RemoteMisses = t.remoteMisses.Load()
	if ec, ok := t.remote.(ErrorCounter); ok {
		s.RemoteErrors = ec.Errors()
	}
	return s
}
