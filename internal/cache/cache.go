package cache

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits and Misses count Get outcomes (Do counts its fast-path lookup
	// the same way).
	Hits, Misses int64
	// Executions counts compute functions actually run by Do; Coalesced
	// counts Do calls that waited on a concurrent identical execution
	// instead of running their own.
	Executions, Coalesced int64
	// Errors counts failed executions (their results are not cached).
	Errors int64
	// Evictions counts entries dropped to respect the byte budget.
	Evictions int64
	// RemoteHits and RemoteMisses count remote-tier lookups by a Tiered
	// store (always zero on a plain Cache). RemoteErrors counts remote
	// operations that failed and degraded to misses or dropped writes —
	// reported by backends implementing ErrorCounter, so a down cache
	// host is visible instead of masquerading as a cold cache.
	RemoteHits, RemoteMisses, RemoteErrors int64
	// Entries and Bytes describe the current contents; Capacity is the
	// configured byte budget (0 = unbounded).
	Entries  int
	Bytes    int64
	Capacity int64
}

// entry is one resident cache line.
type entry struct {
	key   Key
	value any
	size  int64
}

// call is one in-flight Do execution that later arrivals coalesce onto.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Cache is a content-addressed memoization store: a byte-bounded LRU map
// with singleflight request coalescing. All methods are safe for
// concurrent use.
type Cache struct {
	mu       sync.Mutex
	capacity int64
	bytes    int64
	lru      *list.List // front = most recently used; values are *entry
	entries  map[Key]*list.Element
	inflight map[Key]*call
	stats    Stats
}

// New returns a cache bounded to capacity bytes of stored values
// (capacity <= 0 means unbounded). Sizes are caller-reported via Put.
func New(capacity int64) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	return &Cache{
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[Key]*list.Element),
		inflight: make(map[Key]*call),
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.getLocked(k)
}

func (c *Cache) getLocked(k Key) (any, bool) {
	if el, ok := c.entries[k]; ok {
		c.lru.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry).value, true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores v under k, reporting its size for the byte budget. An entry
// larger than the whole budget is not stored. Storing evicts
// least-recently-used entries until the budget holds.
func (c *Cache) Put(k Key, v any, size int64) {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.putLocked(k, v, size)
}

func (c *Cache) putLocked(k Key, v any, size int64) {
	if c.capacity > 0 && size > c.capacity {
		return
	}
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*entry)
		c.bytes += size - e.size
		e.value, e.size = v, size
		c.lru.MoveToFront(el)
	} else {
		c.entries[k] = c.lru.PushFront(&entry{key: k, value: v, size: size})
		c.bytes += size
	}
	for c.capacity > 0 && c.bytes > c.capacity {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		e := tail.Value.(*entry)
		c.lru.Remove(tail)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.stats.Evictions++
	}
}

// Do returns the value for k, computing it at most once across concurrent
// callers: the first caller with a given key runs compute while later
// identical callers block and share its result (singleflight). Successful
// results are stored with the size compute reports; errors are returned to
// every coalesced caller and not cached.
func (c *Cache) Do(k Key, compute func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if v, ok := c.getLocked(k); ok {
		c.mu.Unlock()
		return v, nil
	}
	if cl, ok := c.inflight[k]; ok {
		c.stats.Coalesced++
		c.mu.Unlock()
		<-cl.done
		return cl.val, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[k] = cl
	c.stats.Executions++
	c.mu.Unlock()

	// The cleanup must run even if compute panics: otherwise the key's
	// inflight entry would never clear and every waiter (present and
	// future) would block forever. A panic propagates to this caller only;
	// coalesced waiters observe it as a plain error.
	var v any
	var size int64
	var err error
	finished := false
	defer func() {
		if !finished {
			err = fmt.Errorf("cache: compute panicked")
			cl.err = err
		}
		c.mu.Lock()
		delete(c.inflight, k)
		if err != nil {
			c.stats.Errors++
		} else {
			c.putLocked(k, v, size)
		}
		c.mu.Unlock()
		close(cl.done)
	}()
	v, size, err = compute()
	cl.val, cl.err = v, err
	finished = true
	return v, err
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = len(c.entries)
	s.Bytes = c.bytes
	s.Capacity = c.capacity
	return s
}

// Typed adapts a Cache to a statically typed view, satisfying
// engine.Memo[T]: values round-trip through the cache's any-typed store,
// and sizes come from the size function given at construction.
type Typed[T any] struct {
	c    *Cache
	size func(T) int64
}

// NewTyped wraps c; size reports the byte cost of a value for the LRU
// budget (nil sizes every value as 1 byte, making the budget an entry
// count).
func NewTyped[T any](c *Cache, size func(T) int64) *Typed[T] {
	if size == nil {
		size = func(T) int64 { return 1 }
	}
	return &Typed[T]{c: c, size: size}
}

// Get returns the cached value for k.
func (t *Typed[T]) Get(k Key) (T, bool) {
	v, ok := t.c.Get(k)
	if !ok {
		var zero T
		return zero, false
	}
	tv, ok := v.(T)
	if !ok {
		// A foreign value under the same key means the keying scheme is
		// broken; fail closed as a miss.
		var zero T
		return zero, false
	}
	return tv, true
}

// Put stores v under k.
func (t *Typed[T]) Put(k Key, v T) { t.c.Put(k, v, t.size(v)) }
