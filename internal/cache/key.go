// Package cache is the result-memoization layer of the serving stack: a
// content-addressed, byte-bounded LRU store with request coalescing
// (singleflight) semantics, shared by the HTTP serving layer
// (internal/server) for whole-request responses and by the execution
// engine (engine.RunKeyed) for per-shard sweep results.
//
// Keys are canonical content hashes of everything a result depends on —
// module profile and spec, electrical parameters, sweep/workload
// configuration, environment and seed — built with the tagged Hasher so
// that distinct inputs can never collide by concatenation ambiguity.
// Because every simulation result in this repository is bit-identical for
// any worker count, worker configuration is deliberately excluded from
// keys: a cached response is byte-identical to an uncached one (see
// DESIGN.md §9).
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
)

// Key is a canonical content hash addressing one cached result. The alias
// (rather than a defined type) keeps the engine's Memo interface free of a
// dependency on this package.
type Key = [sha256.Size]byte

// KeyString renders a key as hex for logs, responses and metrics.
func KeyString(k Key) string { return hex.EncodeToString(k[:]) }

// Hasher builds canonical keys from typed fields. Every write is tagged
// with a type byte and fixed-width or length-prefixed, so field boundaries
// are unambiguous: Str("ab").Str("c") and Str("a").Str("bc") yield
// different keys. The zero value is not usable; start with NewHasher.
type Hasher struct {
	h hash.Hash
}

// NewHasher returns an empty canonical hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

// tag bytes disambiguate field types in the hashed stream.
const (
	tagStr  = 0x01
	tagU64  = 0x02
	tagI64  = 0x03
	tagF64  = 0x04
	tagBool = 0x05
)

func (h *Hasher) writeTagged(tag byte, payload []byte) *Hasher {
	var buf [9]byte
	buf[0] = tag
	h.h.Write(buf[:1])
	h.h.Write(payload)
	return h
}

// Str hashes a length-prefixed string field.
func (h *Hasher) Str(s string) *Hasher {
	var n [9]byte
	n[0] = tagStr
	binary.BigEndian.PutUint64(n[1:], uint64(len(s)))
	h.h.Write(n[:])
	h.h.Write([]byte(s))
	return h
}

// U64 hashes an unsigned integer field.
func (h *Hasher) U64(v uint64) *Hasher {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return h.writeTagged(tagU64, b[:])
}

// Int hashes a signed integer field.
func (h *Hasher) Int(v int) *Hasher {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(int64(v)))
	return h.writeTagged(tagI64, b[:])
}

// F64 hashes a float field by its IEEE-754 bits.
func (h *Hasher) F64(v float64) *Hasher {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	return h.writeTagged(tagF64, b[:])
}

// Bool hashes a boolean field.
func (h *Hasher) Bool(v bool) *Hasher {
	b := []byte{0}
	if v {
		b[0] = 1
	}
	return h.writeTagged(tagBool, b)
}

// Sum finalizes the key. The hasher must not be reused afterwards.
func (h *Hasher) Sum() Key {
	var k Key
	h.h.Sum(k[:0])
	return k
}
