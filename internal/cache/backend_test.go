package cache

import (
	"errors"
	"testing"
)

func TestMemBackend(t *testing.T) {
	m := NewMemBackend()
	k := NewHasher().Str("k").Sum()
	if _, ok := m.Get(k); ok {
		t.Fatal("empty backend reported a hit")
	}
	v := []byte("value")
	m.Put(k, v)
	v[0] = 'X' // Put must have copied
	got, ok := m.Get(k)
	if !ok || string(got) != "value" {
		t.Fatalf("Get = (%q, %v); want the un-mutated value", got, ok)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d; want 1", m.Len())
	}
}

func TestTieredNilBackendIsTransparent(t *testing.T) {
	local := New(0)
	tiered := NewTiered(local, nil)
	k := NewHasher().Str("k").Sum()
	calls := 0
	v, err := tiered.Do(k, func() (any, int64, error) {
		calls++
		return "out", 3, nil
	})
	if err != nil || v.(string) != "out" || calls != 1 {
		t.Fatalf("Do = (%v, %v), calls %d", v, err, calls)
	}
	if got, ok := tiered.Get(k); !ok || got.(string) != "out" {
		t.Fatalf("Get = (%v, %v)", got, ok)
	}
	if st := tiered.Stats(); st.RemoteHits != 0 || st.RemoteMisses != 0 {
		t.Fatalf("nil backend counted remote traffic: %+v", st)
	}
}

// TestTieredRemoteHitSkipsCompute pins the property the fleet-wide
// cache-hit metric rests on: a remote hit must resolve Do without ever
// invoking the caller's compute function.
func TestTieredRemoteHitSkipsCompute(t *testing.T) {
	remote := NewMemBackend()
	k := NewHasher().Str("k").Sum()
	remote.Put(k, []byte("fleet"))
	tiered := NewTiered(New(0), remote)
	v, err := tiered.Do(k, func() (any, int64, error) {
		t.Fatal("compute ran despite a remote hit")
		return nil, 0, nil
	})
	if err != nil || v.(string) != "fleet" {
		t.Fatalf("Do = (%v, %v); want the remote value", v, err)
	}
	if st := tiered.Stats(); st.RemoteHits != 1 {
		t.Fatalf("remote hits = %d; want 1", st.RemoteHits)
	}
	// Promoted locally: a second Do is a pure local hit.
	if _, err := tiered.Do(k, func() (any, int64, error) {
		t.Fatal("compute ran despite a local promotion")
		return nil, 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if st := tiered.Stats(); st.RemoteHits != 1 || st.Hits != 1 {
		t.Fatalf("stats %+v; want one remote hit then one local hit", st)
	}
}

func TestTieredWriteThrough(t *testing.T) {
	remote := NewMemBackend()
	tiered := NewTiered(New(0), remote)
	k := NewHasher().Str("k").Sum()
	if _, err := tiered.Do(k, func() (any, int64, error) {
		return "computed", 8, nil
	}); err != nil {
		t.Fatal(err)
	}
	if b, ok := remote.Get(k); !ok || string(b) != "computed" {
		t.Fatalf("remote after write-through = (%q, %v); want the computed value", b, ok)
	}
	if st := tiered.Stats(); st.RemoteMisses != 1 {
		t.Fatalf("remote misses = %d; want 1 (the pre-compute probe)", st.RemoteMisses)
	}
	// A second tier over the same backend sees the value without
	// computing: the fleet-wide hit.
	other := NewTiered(New(0), remote)
	v, ok := other.Get(k)
	if !ok || v.(string) != "computed" {
		t.Fatalf("sibling tier Get = (%v, %v); want the shared value", v, ok)
	}
}

func TestTieredErrorNotCachedRemotely(t *testing.T) {
	remote := NewMemBackend()
	tiered := NewTiered(New(0), remote)
	k := NewHasher().Str("k").Sum()
	boom := errors.New("boom")
	if _, err := tiered.Do(k, func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("Do error = %v; want boom", err)
	}
	if remote.Len() != 0 {
		t.Fatal("a failed computation leaked into the remote tier")
	}
}
