// Package cluster is the horizontal-serving layer of the harness: a
// coordinator that fans content-addressed engine shards out across a
// fleet of workers — in-process worker groups, remote peers over HTTP, or
// a mix — and merges the results in submission order.
//
// The determinism contract (DESIGN.md §2/§6) is what makes this safe:
// every shard's result is a pure function of its serialized spec, and its
// engine.ShardKey content-addresses that spec, so any worker may compute
// any shard and the merged output is bit-identical to a single-node run
// for every worker count and fleet composition. Shard placement uses
// rendezvous (highest-random-weight) hashing of the key across worker
// names, so repeated requests land on the same worker's warm cache;
// placement affects only locality, never bytes.
//
// Workers cache the encoded shard bytes in their local store and, when
// configured, share them through a cache.Backend — the fleet's shared
// tier — so a shard computed by one node is a hit on every node.
package cluster

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/workload"
)

// Shard-spec kinds on the wire: KindCore covers the sweep and scenario
// families (both dispatch core.ShardSpec), KindWorkload the workload
// family.
const (
	KindCore     = "core"
	KindWorkload = "workload"
)

// Request is one shard execution on the wire (POST /v1/internal/shard).
type Request struct {
	// Key is the shard's content hash in hex — the cache address the
	// result is stored under on every tier.
	Key string `json:"key"`
	// Kind discriminates Spec: KindCore or KindWorkload.
	Kind string `json:"kind"`
	// Spec is the serialized shard spec (core.ShardSpec or
	// workload.ShardSpec).
	Spec json.RawMessage `json:"spec"`
	// RequestID propagates the originating request's ID into the worker's
	// audit trail (the X-Request-ID header carries it cross-node).
	RequestID string `json:"request_id,omitempty"`
}

// ParseKey decodes the hex key of a request.
func (r Request) ParseKey() (engine.ShardKey, error) {
	var k engine.ShardKey
	b, err := hex.DecodeString(r.Key)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("cluster: bad shard key %q", r.Key)
	}
	copy(k[:], b)
	return k, nil
}

// Worker executes shards. Group is the in-process implementation, Peer
// the HTTP client side. Exec returns the canonical JSON encoding of the
// shard's result; implementations must be safe for concurrent use.
type Worker interface {
	Name() string
	Exec(ctx context.Context, req Request) ([]byte, error)
}

// GroupStats is a point-in-time snapshot of one worker group's counters.
type GroupStats struct {
	// Requests counts Exec calls; Executions counts shards actually
	// computed (the rest were local or remote cache hits).
	Requests   int64
	Executions int64
}

// Group is an in-process worker: it executes shard specs on its own
// module pool, caches the encoded result bytes in its own local cache,
// and shares them through an optional remote backend. Each group is an
// independent cache domain — the in-process fleet tests exercise 1, 2
// and 4 groups to show placement never affects bytes.
type Group struct {
	name   string
	store  *cache.Cache
	remote cache.Backend
	pool   dram.ModulePool
	reqs   atomic.Int64
	execs  atomic.Int64
}

// NewGroup builds a worker group. store must be non-nil; remote and pool
// may be nil (no shared tier / fresh module instances per shard).
func NewGroup(name string, store *cache.Cache, remote cache.Backend, pool dram.ModulePool) *Group {
	return &Group{name: name, store: store, remote: remote, pool: pool}
}

// Name implements Worker.
func (g *Group) Name() string { return g.name }

// Stats returns the group's counters.
func (g *Group) Stats() GroupStats {
	return GroupStats{Requests: g.reqs.Load(), Executions: g.execs.Load()}
}

// storeKey namespaces a shard key for the group's local cache: the same
// cache may also hold decoded typed values under the raw shard key (the
// server's engine memos), so encoded bytes live under a distinct family.
func storeKey(k engine.ShardKey) cache.Key {
	return cache.NewHasher().Str("cluster/shard-bytes/v1").Str(string(k[:])).Sum()
}

// Exec implements Worker: local cache → shared tier → compute, with
// singleflight coalescing on the local store, writing a fresh result
// through to the shared tier under the raw shard key.
func (g *Group) Exec(ctx context.Context, req Request) ([]byte, error) {
	g.reqs.Add(1)
	key, err := req.ParseKey()
	if err != nil {
		return nil, err
	}
	v, err := g.store.Do(storeKey(key), func() (any, int64, error) {
		if g.remote != nil {
			if b, ok := g.remote.Get(key); ok {
				return b, int64(len(b)), nil
			}
		}
		g.execs.Add(1)
		b, err := execSpec(ctx, req, g.pool)
		if err != nil {
			return nil, 0, err
		}
		if g.remote != nil {
			g.remote.Put(key, b)
		}
		return b, int64(len(b)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]byte), nil
}

// execSpec decodes and executes one shard spec.
func execSpec(_ context.Context, req Request, pool dram.ModulePool) ([]byte, error) {
	switch req.Kind {
	case KindCore:
		var spec core.ShardSpec
		if err := json.Unmarshal(req.Spec, &spec); err != nil {
			return nil, fmt.Errorf("cluster: bad %s spec: %w", req.Kind, err)
		}
		out, err := spec.Exec(pool)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	case KindWorkload:
		var spec workload.ShardSpec
		if err := json.Unmarshal(req.Spec, &spec); err != nil {
			return nil, fmt.Errorf("cluster: bad %s spec: %w", req.Kind, err)
		}
		out, err := spec.Exec(pool)
		if err != nil {
			return nil, err
		}
		return json.Marshal(out)
	default:
		return nil, fmt.Errorf("cluster: unknown shard kind %q; valid: %s, %s",
			req.Kind, KindCore, KindWorkload)
	}
}

// Stats is a point-in-time snapshot of a coordinator's counters.
type Stats struct {
	// Dispatched counts shards routed per worker name.
	Dispatched map[string]int64
	// Fallbacks counts shards rerouted to the local group after a remote
	// worker failed.
	Fallbacks int64
}

// Coordinator fans shards out across a worker fleet. It satisfies
// engine.Dispatcher (via WithRequestID) and is safe for concurrent use.
type Coordinator struct {
	workers    []Worker
	local      Worker // fallback target when a remote worker fails
	dispatched []atomic.Int64
	fallbacks  atomic.Int64
}

// New builds a coordinator over the fleet. local is the in-process
// fallback worker — shards whose assigned remote worker fails are retried
// on it, so a dead peer degrades throughput, not availability. local must
// be among workers (or nil to disable fallback).
func New(local Worker, workers ...Worker) *Coordinator {
	return &Coordinator{
		workers:    workers,
		local:      local,
		dispatched: make([]atomic.Int64, len(workers)),
	}
}

// Workers returns the fleet's worker names in placement order.
func (c *Coordinator) Workers() []string {
	names := make([]string, len(c.workers))
	for i, w := range c.workers {
		names[i] = w.Name()
	}
	return names
}

// Stats returns the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	s := Stats{Dispatched: make(map[string]int64, len(c.workers)), Fallbacks: c.fallbacks.Load()}
	for i, w := range c.workers {
		s.Dispatched[w.Name()] += c.dispatched[i].Load()
	}
	return s
}

// score is the rendezvous weight of (key, worker): FNV-1a over the key's
// leading bytes and the worker's name. Deterministic in the pair alone,
// so every node computes the same placement.
func score(key engine.ShardKey, name string) uint64 {
	h := fnv.New64a()
	h.Write(key[:8])
	h.Write([]byte(name))
	return h.Sum64()
}

// pick returns the index of the highest-scoring worker for the key, with
// name order as the deterministic tie-break.
func (c *Coordinator) pick(key engine.ShardKey) int {
	best := 0
	bestScore := score(key, c.workers[0].Name())
	for i := 1; i < len(c.workers); i++ {
		if s := score(key, c.workers[i].Name()); s > bestScore ||
			(s == bestScore && c.workers[i].Name() < c.workers[best].Name()) {
			best, bestScore = i, s
		}
	}
	return best
}

// ExecShard implements engine.Dispatcher without a request ID (jobs and
// in-process callers); WithRequestID stamps one on every request.
func (c *Coordinator) ExecShard(ctx context.Context, key engine.ShardKey, kind string, spec any) ([]byte, error) {
	return c.exec(ctx, key, kind, spec, "")
}

// WithRequestID returns a Dispatcher view that stamps the given request
// ID onto every shard request, propagating the originating HTTP request's
// identity into remote workers' audit trails. An empty ID returns the
// coordinator itself.
func (c *Coordinator) WithRequestID(id string) engine.Dispatcher {
	if id == "" {
		return c
	}
	return ridDispatcher{c: c, rid: id}
}

// ridDispatcher is a per-request Coordinator view carrying a request ID.
type ridDispatcher struct {
	c   *Coordinator
	rid string
}

func (d ridDispatcher) ExecShard(ctx context.Context, key engine.ShardKey, kind string, spec any) ([]byte, error) {
	return d.c.exec(ctx, key, kind, spec, d.rid)
}

// exec serializes the spec, routes it to its rendezvous worker, and falls
// back to the local group when a remote worker fails.
func (c *Coordinator) exec(ctx context.Context, key engine.ShardKey, kind string, spec any, rid string) ([]byte, error) {
	data, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cluster: encode %s spec: %w", kind, err)
	}
	req := Request{
		Key:       hex.EncodeToString(key[:]),
		Kind:      kind,
		Spec:      data,
		RequestID: rid,
	}
	i := c.pick(key)
	w := c.workers[i]
	c.dispatched[i].Add(1)
	out, err := w.Exec(ctx, req)
	if err != nil && c.local != nil && w != c.local {
		c.fallbacks.Add(1)
		return c.local.Exec(ctx, req)
	}
	return out, err
}
