package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cache"
)

// ShardPath is the internal shard-execution route every node serves.
const ShardPath = "/v1/internal/shard"

// CachePathPrefix is the internal shared-tier route: GET/PUT
// {prefix}{hex key}.
const CachePathPrefix = "/v1/internal/cache/"

// Peer is the HTTP client side of a remote worker: it executes shards by
// POSTing them to the peer's internal shard route, authenticated with the
// fleet's cluster token and carrying the originating request's ID.
type Peer struct {
	base   string
	token  string
	client *http.Client
}

// NewPeer builds a worker client for the peer at base (scheme://host:port;
// trailing slashes are trimmed). token is the fleet's shared cluster
// bearer token ("" = unauthenticated fleet).
func NewPeer(base, token string) *Peer {
	return &Peer{
		base:   strings.TrimRight(base, "/"),
		token:  token,
		client: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Name implements Worker: the peer's base URL, which doubles as its
// stable placement name.
func (p *Peer) Name() string { return p.base }

// Exec implements Worker over HTTP.
func (p *Peer) Exec(ctx context.Context, req Request) ([]byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, p.base+ShardPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	if p.token != "" {
		hreq.Header.Set("Authorization", "Bearer "+p.token)
	}
	if req.RequestID != "" {
		hreq.Header.Set("X-Request-ID", req.RequestID)
	}
	resp, err := p.client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", p.base, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: %w", p.base, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: worker %s: %s: %s",
			p.base, resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}

// Health probes the peer's liveness endpoint.
func (p *Peer) Health(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, p.base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %s", resp.Status)
	}
	return nil
}

// RemoteCache is a cache.Backend over HTTP: the client side of a node
// hosting the fleet's shared tier. Per the Backend contract it is
// best-effort — a failure degrades to a miss (Get) or a dropped write
// (Put), never an error, so a down cache host costs recomputation, not
// availability. But degradation is not silence: only a 404 is a true
// miss; transport errors, unexpected statuses and truncated bodies
// increment the error counter (surfaced as
// simra_cache_remote_errors_total) and fire OnError, so operators see a
// down or misconfigured cache host instead of a quietly cold fleet.
type RemoteCache struct {
	base   string
	token  string
	client *http.Client
	errors atomic.Int64
	// OnError, when non-nil, observes every degraded-to-miss failure (op
	// is "get" or "put"). Set it before the first use; it must not block.
	OnError func(op string, err error)
}

// NewRemoteCache builds a shared-tier client for the host at base. token
// is the fleet's cluster bearer token ("" = unauthenticated fleet).
func NewRemoteCache(base, token string) *RemoteCache {
	return &RemoteCache{
		base:   strings.TrimRight(base, "/"),
		token:  token,
		client: &http.Client{Timeout: 10 * time.Second},
	}
}

func (r *RemoteCache) request(method string, k cache.Key, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequest(method, r.base+CachePathPrefix+cache.KeyString(k), body)
	if err != nil {
		return nil, err
	}
	if r.token != "" {
		req.Header.Set("Authorization", "Bearer "+r.token)
	}
	return req, nil
}

// fail records one degraded remote operation: counted, reported to the
// hook, and turned into a miss/dropped write by the caller.
func (r *RemoteCache) fail(op string, err error) {
	r.errors.Add(1)
	if r.OnError != nil {
		r.OnError(op, err)
	}
}

// Errors implements cache.ErrorCounter: how many remote operations
// failed and silently degraded to misses or dropped writes.
func (r *RemoteCache) Errors() int64 { return r.errors.Load() }

// Get implements cache.Backend. A 404 from the cache host is a true
// miss; every other failure counts as a remote error before degrading.
func (r *RemoteCache) Get(k cache.Key) ([]byte, bool) {
	req, err := r.request(http.MethodGet, k, nil)
	if err != nil {
		r.fail("get", err)
		return nil, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail("get", err)
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		r.fail("get", fmt.Errorf("cluster: cache host %s: %s", r.base, resp.Status))
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		r.fail("get", fmt.Errorf("cluster: cache host %s: %w", r.base, err))
		return nil, false
	}
	return data, true
}

// Put implements cache.Backend. Failed writes are dropped per the
// Backend contract, but counted as remote errors first.
func (r *RemoteCache) Put(k cache.Key, v []byte) {
	req, err := r.request(http.MethodPut, k, bytes.NewReader(v))
	if err != nil {
		r.fail("put", err)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.client.Do(req)
	if err != nil {
		r.fail("put", err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.fail("put", fmt.Errorf("cluster: cache host %s: %s", r.base, resp.Status))
	}
}
