package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/charexp"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// fleetCoord builds a coordinator over n in-process worker groups, each
// an independent cache domain, sharing an optional backend tier.
func fleetCoord(n int, backend cache.Backend) (*cluster.Coordinator, []*cluster.Group) {
	groups := make([]*cluster.Group, n)
	workers := make([]cluster.Worker, n)
	for i := range groups {
		groups[i] = cluster.NewGroup(fmt.Sprintf("group-%d", i), cache.New(0), backend, nil)
		workers[i] = groups[i]
	}
	return cluster.New(groups[0], workers...), groups
}

// charCfg is the reduced-scale sweep configuration (mirrors the charexp
// suite's small config).
func charCfg() charexp.Config {
	cfg := charexp.DefaultConfig()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	reps := fleet.Representative(fc)
	cfg.Fleet = []fleet.Entry{reps[0], reps[3]} // one H, one M
	cfg.Trials = 2
	cfg.GroupsPerSubarray = 3
	cfg.Banks = 1
	return cfg
}

// scenCfg is the reduced-scale scenario configuration.
func scenCfg() scenario.Config {
	cfg := scenario.DefaultConfig()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	reps := fleet.Representative(fc)
	cfg.Fleet = []fleet.Entry{reps[0], reps[3]}
	cfg.Trials = 2
	cfg.GroupsPerSubarray = 2
	cfg.Banks = 1
	cfg.Grid = scenario.Grid{T2: []float64{1.5, 3.0}, Temp: []float64{50, 90}}
	return cfg
}

// workCfg is the reduced-scale workload fleet configuration.
func workCfg() workload.FleetConfig {
	cfg := workload.DefaultFleetConfig()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	cfg.Entries = fleet.Representative(fc)[:2]
	cfg.Workloads = workload.All()[:1]
	return cfg
}

// TestClusterInvariance is the cluster path of the determinism contract:
// for every request family, fanning shards out over 1, 2 or 4 in-process
// worker groups — with and without a shared tiered-cache backend — must
// reproduce the single-node output byte for byte.
func TestClusterInvariance(t *testing.T) {
	families := []struct {
		name string
		run  func(t *testing.T, d engine.Dispatcher) string
	}{
		{"sweep", func(t *testing.T, d engine.Dispatcher) string {
			cfg := charCfg()
			cfg.Dispatch = d
			r, err := charexp.NewRunner(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Figure3()
			if err != nil {
				t.Fatal(err)
			}
			return res.Table().Render()
		}},
		{"scenario-grid", func(t *testing.T, d engine.Dispatcher) string {
			cfg := scenCfg()
			cfg.Dispatch = d
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := scenario.WriteReport(&b, res, "csv"); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
		{"envelope", func(t *testing.T, d engine.Dispatcher) string {
			cfg := scenCfg()
			cfg.Grid = scenario.Grid{Temp: []float64{50, 90}}
			cfg.Envelope = &scenario.Envelope{Axis: "t2", Steps: 2}
			cfg.Dispatch = d
			res, err := scenario.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := scenario.WriteReport(&b, res, "csv"); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
		{"workload", func(t *testing.T, d engine.Dispatcher) string {
			cfg := workCfg()
			cfg.Dispatch = d
			results, err := workload.RunFleet(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			var b strings.Builder
			if err := workload.WriteReport(&b, results, "csv"); err != nil {
				t.Fatal(err)
			}
			return b.String()
		}},
	}
	for _, f := range families {
		f := f
		t.Run(f.name, func(t *testing.T) {
			t.Parallel()
			want := f.run(t, nil) // single-node in-process baseline
			shared := cache.NewMemBackend()
			variants := []struct {
				name    string
				groups  int
				backend cache.Backend
			}{
				{"groups-1", 1, nil},
				{"groups-2", 2, nil},
				{"groups-4", 4, nil},
				{"groups-2-tiered", 2, shared},
				{"groups-4-tiered", 4, shared}, // warm: reuses the tier the 2-group fleet filled
			}
			for _, v := range variants {
				coord, groups := fleetCoord(v.groups, v.backend)
				got := f.run(t, coord)
				if got != want {
					t.Errorf("%s: dispatched output diverges from single-node run\n got: %q\nwant: %q",
						v.name, got, want)
				}
				if v.groups > 1 {
					st := coord.Stats()
					busy, total := 0, int64(0)
					for _, n := range st.Dispatched {
						total += n
						if n > 0 {
							busy++
						}
					}
					// With only a handful of shards one worker may win them
					// all; demand spread only when there is enough work.
					if total >= 8 && busy < 2 {
						t.Errorf("%s: rendezvous placement used %d workers; want >= 2 (%v)",
							v.name, busy, st.Dispatched)
					}
				}
				// The 4-group tiered fleet runs after the 2-group one filled
				// the shared tier: every shard must be a backend hit.
				if v.name == "groups-4-tiered" {
					for _, g := range groups {
						if ex := g.Stats().Executions; ex != 0 {
							t.Errorf("%s: %s executed %d shards; want 0 (shared tier warm)",
								v.name, g.Name(), ex)
						}
					}
				}
			}
		})
	}
}

// recordWorker is a fake Worker recording which keys it was assigned.
type recordWorker struct {
	name string
	keys []string
	fail bool
}

func (w *recordWorker) Name() string { return w.name }
func (w *recordWorker) Exec(_ context.Context, req cluster.Request) ([]byte, error) {
	if w.fail {
		return nil, fmt.Errorf("worker %s down", w.name)
	}
	w.keys = append(w.keys, req.Key)
	return []byte(w.name), nil
}

// testKey derives a distinct shard key from an index.
func testKey(i int) engine.ShardKey {
	return cache.NewHasher().Str("cluster-test").Int(i).Sum()
}

// TestRendezvousPlacement pins the placement properties: determinism
// across coordinator instances, the minimal-disruption property of HRW
// hashing (growing the fleet only moves keys onto the new worker), and a
// non-degenerate spread.
func TestRendezvousPlacement(t *testing.T) {
	const n = 64
	assign := func(names ...string) map[int]string {
		workers := make([]cluster.Worker, len(names))
		for i, name := range names {
			workers[i] = &recordWorker{name: name}
		}
		c := cluster.New(nil, workers...)
		out := make(map[int]string, n)
		for i := 0; i < n; i++ {
			k := testKey(i)
			got, err := c.ExecShard(context.Background(), k, "kind", struct{}{})
			if err != nil {
				t.Fatal(err)
			}
			out[i] = string(got)
		}
		return out
	}
	a := assign("alpha", "beta")
	if b := assign("alpha", "beta"); fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("placement is not deterministic across coordinator instances")
	}
	grown := assign("alpha", "beta", "gamma")
	moved := 0
	for i, w := range grown {
		if w != a[i] {
			moved++
			if w != "gamma" {
				t.Fatalf("key %d moved %s -> %s; HRW growth may only move keys to the new worker", i, a[i], w)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no key moved to the new worker; placement is degenerate")
	}
	spread := map[string]int{}
	for _, w := range grown {
		spread[w]++
	}
	for _, name := range []string{"alpha", "beta", "gamma"} {
		if spread[name] == 0 {
			t.Fatalf("worker %s received no keys out of %d (%v)", name, n, spread)
		}
	}
}

// TestCoordinatorFallback: a dead remote worker degrades to local
// execution, counted in Stats.Fallbacks.
func TestCoordinatorFallback(t *testing.T) {
	local := &recordWorker{name: "local"}
	dead := &recordWorker{name: "dead", fail: true}
	c := cluster.New(local, local, dead)
	deadServed := 0
	for i := 0; i < 32; i++ {
		out, err := c.ExecShard(context.Background(), testKey(i), "kind", struct{}{})
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "local" {
			t.Fatalf("key %d served by %q; want local (fallback)", i, out)
		}
		if c.Stats().Dispatched["dead"] > int64(deadServed) {
			deadServed++
		}
	}
	st := c.Stats()
	if st.Fallbacks == 0 || st.Dispatched["dead"] == 0 {
		t.Fatalf("stats %+v; want dead-worker dispatches rerouted as fallbacks", st)
	}
	if st.Fallbacks != st.Dispatched["dead"] {
		t.Fatalf("fallbacks %d != dead dispatches %d", st.Fallbacks, st.Dispatched["dead"])
	}
}

// TestGroupCaching pins the worker-side cache path: a repeated shard is a
// local hit, and a shard computed by one group is a shared-tier hit on
// another — no re-execution either way.
func TestGroupCaching(t *testing.T) {
	cfg := workCfg()
	cfg.Entries = cfg.Entries[:1]
	spec := workload.ShardSpec{
		Entry:     cfg.Entries[0],
		Params:    cfg.Params,
		Workloads: []string{cfg.Workloads[0].Name()},
		MaxX:      cfg.MaxX,
		Seed:      cfg.Seed,
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	key := cache.NewHasher().Str("group-caching-test").Sum()
	req := cluster.Request{Key: cache.KeyString(key), Kind: cluster.KindWorkload, Spec: raw}

	shared := cache.NewMemBackend()
	g1 := cluster.NewGroup("g1", cache.New(0), shared, nil)
	first, err := g1.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := g1.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("cached shard bytes diverge from computed ones")
	}
	if st := g1.Stats(); st.Requests != 2 || st.Executions != 1 {
		t.Fatalf("g1 stats %+v; want 2 requests, 1 execution (local hit)", st)
	}
	g2 := cluster.NewGroup("g2", cache.New(0), shared, nil)
	third, err := g2.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if string(third) != string(first) {
		t.Fatal("shared-tier shard bytes diverge from computed ones")
	}
	if st := g2.Stats(); st.Executions != 0 {
		t.Fatalf("g2 stats %+v; want 0 executions (shared-tier hit)", st)
	}
}

// TestPeerHTTP exercises the HTTP worker transport and the RemoteCache
// backend client against an inline node.
func TestPeerHTTP(t *testing.T) {
	group := cluster.NewGroup("remote", cache.New(0), nil, nil)
	backend := cache.NewMemBackend()
	var gotAuth, gotRID string
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+cluster.ShardPath, func(w http.ResponseWriter, r *http.Request) {
		gotAuth = r.Header.Get("Authorization")
		gotRID = r.Header.Get("X-Request-ID")
		var req cluster.Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := group.Exec(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(out)
	})
	mux.HandleFunc("GET "+cluster.CachePathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		k := parseHexKey(t, r.PathValue("key"))
		b, ok := backend.Get(k)
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(b)
	})
	mux.HandleFunc("PUT "+cluster.CachePathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		backend.Put(parseHexKey(t, r.PathValue("key")), []byte(readAll(r)))
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cfg := workCfg()
	spec := workload.ShardSpec{
		Entry:     cfg.Entries[0],
		Params:    cfg.Params,
		Workloads: []string{cfg.Workloads[0].Name()},
		MaxX:      cfg.MaxX,
		Seed:      cfg.Seed,
	}
	raw, _ := json.Marshal(spec)
	key := testKey(1)
	req := cluster.Request{Key: cache.KeyString(key), Kind: cluster.KindWorkload, Spec: raw, RequestID: "rid-42"}

	peer := cluster.NewPeer(ts.URL, "fleet-secret")
	out, err := peer.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := group.Exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(want) {
		t.Fatal("peer-transported shard bytes diverge from local execution")
	}
	if gotAuth != "Bearer fleet-secret" {
		t.Fatalf("peer sent Authorization %q; want the cluster bearer token", gotAuth)
	}
	if gotRID != "rid-42" {
		t.Fatalf("peer sent X-Request-ID %q; want rid-42", gotRID)
	}
	if err := peer.Health(context.Background()); err == nil {
		t.Fatal("Health against a mux without /healthz should fail")
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) { w.Write([]byte("ok")) })
	if err := peer.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}

	rc := cluster.NewRemoteCache(ts.URL, "fleet-secret")
	if _, ok := rc.Get(key); ok {
		t.Fatal("RemoteCache.Get hit an empty backend")
	}
	rc.Put(key, []byte("payload"))
	if b, ok := rc.Get(key); !ok || string(b) != "payload" {
		t.Fatalf("RemoteCache round trip = (%q, %v); want payload", b, ok)
	}

	// A bad status degrades Exec to an error carrying the body.
	bad := cluster.NewPeer(ts.URL+"/missing", "")
	if _, err := bad.Exec(context.Background(), req); err == nil {
		t.Fatal("Exec against a missing route should fail")
	}
}

// TestRemoteCacheErrorDiscrimination pins the degraded-but-not-silent
// contract: a 404 from the cache host is a true miss (no error), while
// transport failures and unexpected statuses degrade to misses but
// increment the error counter and fire the OnError hook.
func TestRemoteCacheErrorDiscrimination(t *testing.T) {
	mux := http.NewServeMux()
	status := http.StatusNotFound
	mux.HandleFunc(cluster.CachePathPrefix+"{key}", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(status)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	rc := cluster.NewRemoteCache(ts.URL, "")
	var hooked []string
	rc.OnError = func(op string, err error) {
		hooked = append(hooked, op+": "+err.Error())
	}

	// 404 is a miss, not an error.
	if _, ok := rc.Get(testKey(7)); ok {
		t.Fatal("Get hit on a 404 backend")
	}
	if rc.Errors() != 0 || len(hooked) != 0 {
		t.Fatalf("404 miss counted as error: %d (%v)", rc.Errors(), hooked)
	}

	// A 500 is a degraded miss: counted and hooked.
	status = http.StatusInternalServerError
	if _, ok := rc.Get(testKey(7)); ok {
		t.Fatal("Get hit on a 500 backend")
	}
	if rc.Errors() != 1 || len(hooked) != 1 || !strings.Contains(hooked[0], "get:") {
		t.Fatalf("500 not surfaced: errors=%d hooked=%v", rc.Errors(), hooked)
	}

	// A rejected Put is a dropped write: counted and hooked.
	rc.Put(testKey(7), []byte("payload"))
	if rc.Errors() != 2 || len(hooked) != 2 || !strings.Contains(hooked[1], "put:") {
		t.Fatalf("rejected Put not surfaced: errors=%d hooked=%v", rc.Errors(), hooked)
	}

	// A dead host degrades every operation, each counted.
	dead := cluster.NewRemoteCache("http://127.0.0.1:1", "")
	if _, ok := dead.Get(testKey(7)); ok {
		t.Fatal("Get hit on a dead host")
	}
	dead.Put(testKey(7), []byte("payload"))
	if dead.Errors() != 2 {
		t.Fatalf("dead host errors = %d, want 2", dead.Errors())
	}
}

// parseHexKey decodes a hex cache key (test helper).
func parseHexKey(t *testing.T, s string) cache.Key {
	t.Helper()
	k, err := (cluster.Request{Key: s}).ParseKey()
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// readAll drains a request body (test helper).
func readAll(r *http.Request) string {
	var b strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Body.Read(buf)
		b.Write(buf[:n])
		if err != nil {
			return b.String()
		}
	}
}

// TestRequestParseKey pins the wire key codec.
func TestRequestParseKey(t *testing.T) {
	k := testKey(7)
	req := cluster.Request{Key: cache.KeyString(k)}
	got, err := req.ParseKey()
	if err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatal("ParseKey round trip drifted")
	}
	for _, bad := range []string{"", "zz", cache.KeyString(k)[:10]} {
		if _, err := (cluster.Request{Key: bad}).ParseKey(); err == nil {
			t.Fatalf("ParseKey(%q) should fail", bad)
		}
	}
}

// TestUnknownKind pins the 422-surface error for undispatchable specs.
func TestUnknownKind(t *testing.T) {
	g := cluster.NewGroup("g", cache.New(0), nil, nil)
	req := cluster.Request{Key: cache.KeyString(testKey(0)), Kind: "martian", Spec: []byte("{}")}
	if _, err := g.Exec(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "valid: core, workload") {
		t.Fatalf("unknown kind error %v; want the valid-options suffix", err)
	}
}
