package tmr

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/bitserial"
	"repro/internal/dram"
)

func newVoter(t *testing.T, x int) *Voter {
	t.Helper()
	spec := dram.NewSpec("tmr-test", dram.ProfileH, 0x73a)
	spec.Columns = 128
	mod, err := dram.NewModule(spec, analog.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sa, err := mod.Subarray(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := bitserial.NewComputer(mod, sa, x)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxX() < x {
		t.Skipf("compute group only supports MAJ%d", c.MaxX())
	}
	v, err := NewVoter(c, x)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewVoterValidation(t *testing.T) {
	v := newVoter(t, 3)
	if _, err := NewVoter(nil, 3); err == nil {
		t.Fatal("nil computer should fail")
	}
	if _, err := NewVoter(v.c, 4); err == nil {
		t.Fatal("even copies should fail")
	}
	if _, err := NewVoter(v.c, 11); err == nil {
		t.Fatal("copies beyond computer width should fail")
	}
}

func TestCorrectable(t *testing.T) {
	cases := map[int]int{3: 1, 5: 2}
	for x, want := range cases {
		v := newVoter(t, x)
		if got := v.Correctable(); got != want {
			t.Fatalf("MAJ%d correctable = %d, want %d", x, got, want)
		}
	}
}

// TestTMRCorrectsSingleFault: the classic TMR property, voted in DRAM.
func TestTMRCorrectsSingleFault(t *testing.T) {
	v := newVoter(t, 3)
	data := v.RandomData(1)
	copies, err := v.Protect(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.InjectFaults(copies, 1, 12, 99); err != nil {
		t.Fatal(err)
	}
	dst, err := v.c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Vote(dst, copies); err != nil {
		t.Fatal(err)
	}
	got, err := v.Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Mismatches(got, data); n != 0 {
		t.Fatalf("TMR left %d mismatches after a single-copy fault", n)
	}
}

// TestMAJ5CorrectsTwoFaultyCopies: wider in-DRAM votes tolerate more
// faulty copies (the paper's up-to-three-faults claim for MAJ9).
func TestMAJ5CorrectsTwoFaultyCopies(t *testing.T) {
	v := newVoter(t, 5)
	data := v.RandomData(2)
	copies, err := v.Protect(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.InjectFaults(copies, 2, 20, 7); err != nil {
		t.Fatal(err)
	}
	dst, err := v.c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Vote(dst, copies); err != nil {
		t.Fatal(err)
	}
	got, err := v.Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n := v.Mismatches(got, data); n != 0 {
		t.Fatalf("MAJ5 vote left %d mismatches after two faulty copies", n)
	}
}

// TestTMRFailsBeyondBudget: two faulty copies at the same positions defeat
// TMR — the vote follows the (wrong) majority, as it must.
func TestTMRFailsBeyondBudget(t *testing.T) {
	v := newVoter(t, 3)
	data := v.RandomData(3)
	copies, err := v.Protect(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the same position in two copies.
	for _, reg := range copies[:2] {
		row, err := v.c.ReadRowDirect(reg)
		if err != nil {
			t.Fatal(err)
		}
		row[0] = !row[0]
		if err := v.c.WriteRowDirect(reg, row); err != nil {
			t.Fatal(err)
		}
	}
	dst, err := v.c.AllocReg()
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Vote(dst, copies); err != nil {
		t.Fatal(err)
	}
	got, err := v.Recover(dst)
	if err != nil {
		t.Fatal(err)
	}
	mask := v.c.ReliableMask()
	if mask[0] && got[0] == data[0] {
		t.Fatal("two colluding faults should defeat TMR at that position")
	}
}

func TestInjectFaultsValidation(t *testing.T) {
	v := newVoter(t, 3)
	copies, err := v.Protect(v.RandomData(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.InjectFaults(copies, 4, 1, 1); err == nil {
		t.Fatal("more faulty copies than copies should fail")
	}
	if err := v.Vote(0, copies[:2]); err == nil {
		t.Fatal("wrong copy count should fail")
	}
}
