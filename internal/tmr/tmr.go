// Package tmr implements the paper's majority-based error-correction case
// study (§8.1 "Majority-based Error Correction Operations"): triple (and
// wider) modular redundancy where the voting is performed *inside DRAM*
// with a single MAJX operation over the replicated copies.
//
// A MAJX vote over X copies corrects up to (X−1)/2 corrupted copies per
// bit: TMR (MAJ3) corrects one fault, MAJ9-based voting corrects four.
// (The paper quotes three faults for MAJ9 by reserving margin; the
// combinatorial bound is (X−1)/2.)
package tmr

import (
	"fmt"

	"repro/internal/bitserial"
	"repro/internal/dram"
	"repro/internal/xrand"
)

// Voter performs in-DRAM modular-redundancy voting.
type Voter struct {
	c *bitserial.Computer
	x int
}

// NewVoter builds a voter over X copies (odd, 3..computer width).
func NewVoter(c *bitserial.Computer, x int) (*Voter, error) {
	if c == nil {
		return nil, fmt.Errorf("tmr: nil computer")
	}
	if x < 3 || x%2 == 0 {
		return nil, fmt.Errorf("tmr: copies %d must be odd and >= 3", x)
	}
	if x > c.MaxX() {
		return nil, fmt.Errorf("tmr: MAJ%d unavailable (computer supports up to MAJ%d)",
			x, c.MaxX())
	}
	return &Voter{c: c, x: x}, nil
}

// Copies returns the redundancy degree.
func (v *Voter) Copies() int { return v.x }

// Correctable returns the number of per-bit faulty copies the vote
// tolerates: (X−1)/2.
func (v *Voter) Correctable() int { return (v.x - 1) / 2 }

// Protect stores the data into X freshly allocated copy registers and
// returns them.
func (v *Voter) Protect(data []bool) ([]int, error) {
	regs := make([]int, v.x)
	for i := range regs {
		r, err := v.c.AllocReg()
		if err != nil {
			return nil, err
		}
		regs[i] = r
		if err := v.c.WriteRowDirect(r, data); err != nil {
			return nil, err
		}
	}
	return regs, nil
}

// Vote performs the in-DRAM majority over the copy registers and writes
// the corrected value into dst.
func (v *Voter) Vote(dst int, copies []int) error {
	if len(copies) != v.x {
		return fmt.Errorf("tmr: %d copies, want %d", len(copies), v.x)
	}
	return v.c.MAJ(dst, copies...)
}

// InjectFaults flips `faults` deterministic pseudo-random bit positions in
// each of the selected copy registers (distinct positions per register),
// modeling radiation-induced upsets. It returns the flipped positions per
// register for verification.
func (v *Voter) InjectFaults(copies []int, faultyCopies, faults int, seed uint64) (map[int][]int, error) {
	if faultyCopies > len(copies) {
		return nil, fmt.Errorf("tmr: %d faulty copies exceed %d", faultyCopies, len(copies))
	}
	out := make(map[int][]int, faultyCopies)
	cols := v.c.Cols()
	for i := 0; i < faultyCopies; i++ {
		reg := copies[i]
		src := xrand.NewSource(seed, uint64(reg), 0x7a0)
		positions := src.Sample(cols, faults)
		row, err := v.c.ReadRowDirect(reg)
		if err != nil {
			return nil, err
		}
		for _, p := range positions {
			row[p] = !row[p]
		}
		if err := v.c.WriteRowDirect(reg, row); err != nil {
			return nil, err
		}
		out[reg] = positions
	}
	return out, nil
}

// Recover reads a voted register back.
func (v *Voter) Recover(reg int) ([]bool, error) {
	return v.c.ReadRowDirect(reg)
}

// Mismatches counts positions where got differs from want, restricted to
// the computer's reliable columns.
func (v *Voter) Mismatches(got, want []bool) int {
	mask := v.c.ReliableMask()
	n := 0
	for i := range got {
		if i < len(mask) && !mask[i] {
			continue
		}
		if got[i] != want[i] {
			n++
		}
	}
	return n
}

// RandomData produces a deterministic random payload of the computer's
// column width.
func (v *Voter) RandomData(seed uint64) []bool {
	return dram.PatternRandom.FillRow(seed, 0, v.c.Cols())
}
