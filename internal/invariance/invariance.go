// Package invariance is the shared metamorphic test harness of the
// repository's determinism contracts (DESIGN.md §2/§6/§9): one reusable
// checker asserting, for any runner, that
//
//   - workers=1 ≡ workers=N — rendered output (and per-unit results) are
//     byte-identical for every engine worker count;
//   - cache-on ≡ cache-off — a run against a shard memo is byte-identical
//     to an unmemoized run, on both the all-miss first pass and a repeat
//     pass served from the cache (which must actually hit);
//   - fleet permutation/composition invariance — per-unit results (keyed
//     by module identity) are unchanged when the fleet is reordered, and
//     a subset fleet reports exactly the full fleet's results for the
//     modules it shares.
//
// Each runner package (charexp figures, workloads, TRNG, scenario) keeps
// a table of Subjects in its own test file and calls Check on each; the
// harness owns the comparison logic, so the three invariances are stated
// once instead of re-implemented per package.
package invariance

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/cache"
)

// Variant selects one execution configuration of a subject. Subjects
// without a matching degree of freedom (e.g. the TRNG has no fleet)
// ignore the fields that do not apply.
type Variant struct {
	// Workers bounds the engine parallelism (1 = sequential).
	Workers int
	// Store, when non-nil, backs the subject's shard memo (caching on).
	// The subject builds its typed memo view over it.
	Store *cache.Cache
	// Permute asks the subject to reverse its fleet order.
	Permute bool
	// Subset asks the subject to run on a strict non-empty subset of its
	// fleet (conventionally the first entry).
	Subset bool
}

// Subject is one deterministic runner under test.
type Subject struct {
	Name string
	// Run executes the subject under v and returns its rendered output
	// plus optional per-unit canonical results keyed by a stable identity
	// (e.g. module spec ID). Output is compared byte-for-byte across
	// worker counts and cache modes; units additionally across fleet
	// permutations and compositions, where overall row order may
	// legitimately change.
	Run func(t *testing.T, v Variant) (output string, units map[string]string)
	// Cacheable enables the cache-on ≡ cache-off check (the subject must
	// honour Variant.Store).
	Cacheable bool
	// Permutable enables the fleet-permutation check (the subject must
	// honour Variant.Permute and return units).
	Permutable bool
	// PermutationKeepsOutput additionally asserts byte-identical rendered
	// output under permutation — true for pooled reports, whose
	// aggregation sorts before summarizing; false for per-module tables,
	// whose row order follows the fleet.
	PermutationKeepsOutput bool
	// Subsettable enables the composition check (the subject must honour
	// Variant.Subset and return units).
	Subsettable bool
}

// Check runs every applicable invariance of the subject as subtests.
func Check(t *testing.T, s Subject) {
	t.Helper()
	base, baseUnits := s.Run(t, Variant{Workers: 1})
	if base == "" {
		t.Fatalf("%s: subject produced empty output", s.Name)
	}

	t.Run("workers", func(t *testing.T) {
		par, parUnits := s.Run(t, Variant{Workers: 8})
		if par != base {
			t.Fatalf("%s: output differs between workers=1 and workers=8", s.Name)
		}
		if err := diffUnits(baseUnits, parUnits, false); err != nil {
			t.Fatalf("%s: workers=8: %v", s.Name, err)
		}
		// Scheduling is fresh on every run: repeat to catch flakiness.
		again, _ := s.Run(t, Variant{Workers: 8})
		if again != base {
			t.Fatalf("%s: output differs between two workers=8 runs", s.Name)
		}
	})

	if s.Cacheable {
		t.Run("cache", func(t *testing.T) {
			store := cache.New(0)
			cold, coldUnits := s.Run(t, Variant{Workers: 4, Store: store})
			if cold != base {
				t.Fatalf("%s: cache-off and cache-miss outputs differ", s.Name)
			}
			if err := diffUnits(baseUnits, coldUnits, false); err != nil {
				t.Fatalf("%s: cache-miss: %v", s.Name, err)
			}
			if st := store.Stats(); st.Entries == 0 {
				t.Fatalf("%s: cold run stored nothing in the memo: %+v", s.Name, st)
			}
			warm, warmUnits := s.Run(t, Variant{Workers: 4, Store: store})
			if warm != base {
				t.Fatalf("%s: cache-off and cache-hit outputs differ", s.Name)
			}
			if err := diffUnits(baseUnits, warmUnits, false); err != nil {
				t.Fatalf("%s: cache-hit: %v", s.Name, err)
			}
			if st := store.Stats(); st.Hits == 0 {
				t.Fatalf("%s: warm run never hit the memo: %+v", s.Name, st)
			}
		})
	}

	if s.Permutable {
		t.Run("permutation", func(t *testing.T) {
			perm, permUnits := s.Run(t, Variant{Workers: 4, Permute: true})
			if s.PermutationKeepsOutput && perm != base {
				t.Fatalf("%s: pooled output changed under fleet permutation", s.Name)
			}
			if err := diffUnits(baseUnits, permUnits, false); err != nil {
				t.Fatalf("%s: permuted fleet: %v", s.Name, err)
			}
		})
	}

	if s.Subsettable {
		t.Run("composition", func(t *testing.T) {
			_, subUnits := s.Run(t, Variant{Workers: 4, Subset: true})
			if len(subUnits) == 0 || len(subUnits) >= len(baseUnits) {
				t.Fatalf("%s: subset run returned %d units of %d; want a strict non-empty subset",
					s.Name, len(subUnits), len(baseUnits))
			}
			if err := diffUnits(baseUnits, subUnits, true); err != nil {
				t.Fatalf("%s: subset fleet: %v", s.Name, err)
			}
		})
	}
}

// diffUnits reports whether got's per-unit results match want's. With
// subset set, got may cover fewer units, but every unit it reports must
// equal want's.
func diffUnits(want, got map[string]string, subset bool) error {
	if !subset && len(got) != len(want) {
		return fmt.Errorf("%d units, want %d (%v vs %v)",
			len(got), len(want), keys(got), keys(want))
	}
	for k, g := range got {
		w, ok := want[k]
		if !ok {
			return fmt.Errorf("unexpected unit %q", k)
		}
		if g != w {
			return fmt.Errorf("unit %q drifted:\n--- got ---\n%s\n--- want ---\n%s", k, g, w)
		}
	}
	return nil
}

// keys lists a unit map's keys, sorted, for failure messages.
func keys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// UnitKey joins identity coordinates into a canonical unit-map key.
func UnitKey(parts ...string) string {
	key := ""
	for i, p := range parts {
		if i > 0 {
			key += "/"
		}
		key += p
	}
	return key
}

// Sprint renders any value canonically for a unit map.
func Sprint(v any) string { return fmt.Sprintf("%+v", v) }
