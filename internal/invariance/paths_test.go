package invariance

import (
	"fmt"
	"testing"
)

// TestCheckPathsAgreement exercises the harness with two deterministic
// paths that agree (and honour the worker knob without changing bytes),
// mirroring how the server's job-vs-blocking suite uses it.
func TestCheckPathsAgreement(t *testing.T) {
	render := func(v Variant) string {
		// A worker-invariant computation: the variant must not leak into
		// the bytes, like the real engines.
		sum := 0
		for i := 0; i < 100; i++ {
			sum += i * i
		}
		if v.Store != nil {
			// Cached variants share the store across paths; the bytes stay
			// the same regardless.
			v.Store.Put([32]byte{1}, sum, 8)
		}
		return fmt.Sprintf("sum=%d\n", sum)
	}
	CheckPaths(t, "toy", true, []Path{
		{Name: "direct", Run: func(t *testing.T, v Variant) string { return render(v) }},
		{Name: "indirect", Run: func(t *testing.T, v Variant) string { return render(v) }},
	})
}

// TestCheckPathsVariantPlumbing asserts each declared variant reaches
// every path with the right worker count and store presence.
func TestCheckPathsVariantPlumbing(t *testing.T) {
	type call struct {
		workers int
		cached  bool
	}
	var calls []call
	record := func(t *testing.T, v Variant) string {
		calls = append(calls, call{v.Workers, v.Store != nil})
		return "ok"
	}
	CheckPaths(t, "plumbing", true, []Path{
		{Name: "a", Run: record},
		{Name: "b", Run: record},
	})
	// Base probe + 4 variants × 2 paths.
	if len(calls) != 9 {
		t.Fatalf("%d path invocations, want 9", len(calls))
	}
	sawCached := 0
	for _, c := range calls {
		if c.workers != 1 && c.workers != 8 {
			t.Fatalf("unexpected worker count %d", c.workers)
		}
		if c.cached {
			sawCached++
		}
	}
	if sawCached != 4 {
		t.Fatalf("%d cached invocations, want 4", sawCached)
	}
}
