package invariance

import (
	"fmt"
	"testing"

	"repro/internal/cache"
)

// TestCheckHappyPath runs the harness over a well-behaved fake subject
// and verifies every applicable dimension executes.
func TestCheckHappyPath(t *testing.T) {
	calls := map[string]int{}
	Check(t, Subject{
		Name: "fake",
		Run: func(t *testing.T, v Variant) (string, map[string]string) {
			switch {
			case v.Subset:
				calls["subset"]++
				return "subset", map[string]string{"a": "1"}
			case v.Permute:
				calls["permute"]++
			case v.Store != nil:
				calls["cache"]++
				// A real subject routes shards through the store; the fake
				// mimics one stored entry and one warm hit.
				key := cache.NewHasher().Str("fake").Sum()
				if _, ok := v.Store.Get(key); !ok {
					v.Store.Put(key, "x", 1)
				}
			default:
				calls["plain"]++
			}
			return "output", map[string]string{"a": "1", "b": "2"}
		},
		Cacheable:              true,
		Permutable:             true,
		PermutationKeepsOutput: true,
		Subsettable:            true,
	})
	if calls["plain"] < 3 { // base + two workers=8 runs
		t.Fatalf("plain runs = %d; want >= 3", calls["plain"])
	}
	for _, k := range []string{"cache", "permute", "subset"} {
		if calls[k] == 0 {
			t.Fatalf("dimension %q never executed (calls: %v)", k, calls)
		}
	}
}

// TestDiffUnits pins the unit-comparison semantics the suites rely on.
func TestDiffUnits(t *testing.T) {
	want := map[string]string{"m1/op": "a", "m2/op": "b"}
	ok := func(got map[string]string, subset bool) bool {
		return diffUnits(want, got, subset) == nil
	}
	if !ok(map[string]string{"m1/op": "a", "m2/op": "b"}, false) {
		t.Fatal("identical units must pass")
	}
	if !ok(map[string]string{"m1/op": "a"}, true) {
		t.Fatal("strict subset must pass in subset mode")
	}
	if ok(map[string]string{"m1/op": "a"}, false) {
		t.Fatal("missing unit must fail outside subset mode")
	}
	if ok(map[string]string{"m1/op": "DRIFT", "m2/op": "b"}, false) {
		t.Fatal("drifted unit must fail")
	}
	if ok(map[string]string{"m3/op": "a"}, true) {
		t.Fatal("unknown unit must fail even in subset mode")
	}
}

// TestUnitKey pins the canonical key join.
func TestUnitKey(t *testing.T) {
	if got := UnitKey("mod", "op"); got != "mod/op" {
		t.Fatalf("UnitKey = %q", got)
	}
	if got := UnitKey("solo"); got != "solo" {
		t.Fatalf("UnitKey = %q", got)
	}
	if Sprint(struct{ A int }{3}) != fmt.Sprintf("%+v", struct{ A int }{3}) {
		t.Fatal("Sprint drifted from the canonical struct rendering")
	}
}
