package invariance

import (
	"testing"

	"repro/internal/cache"
)

// Path is one route to the same logical result — e.g. the CLI's shared
// render pipeline, the blocking HTTP route and the async job tier all
// produce one scenario report. CheckPaths asserts the routes are
// byte-equivalent under every execution configuration, which is what
// makes the job tier's results interchangeable with the blocking API's
// and the CLI's (DESIGN.md §11).
type Path struct {
	Name string
	// Run executes this path under v and returns its rendered bytes.
	// Paths that own their execution environment (HTTP servers) apply
	// v.Workers when building it; v.Store, when non-nil, backs the shard
	// memo of paths that honour external caches.
	Run func(t *testing.T, v Variant) string
}

// CheckPaths runs every path under workers=1, workers=8, and (when
// useCache) both against a shared shard memo, asserting all outputs are
// byte-identical to the first path's workers=1 output. One store is
// shared across paths within a cached variant, so a path warming the
// memo must not change any sibling's bytes.
func CheckPaths(t *testing.T, name string, useCache bool, paths []Path) {
	t.Helper()
	if len(paths) < 2 {
		t.Fatalf("%s: CheckPaths needs at least two paths", name)
	}
	variants := []struct {
		name string
		v    Variant
	}{
		{"workers=1", Variant{Workers: 1}},
		{"workers=8", Variant{Workers: 8}},
	}
	if useCache {
		variants = append(variants,
			struct {
				name string
				v    Variant
			}{"workers=1/cached", Variant{Workers: 1, Store: cache.New(0)}},
			struct {
				name string
				v    Variant
			}{"workers=8/cached", Variant{Workers: 8, Store: cache.New(0)}},
		)
	}
	base := paths[0].Run(t, variants[0].v)
	if base == "" {
		t.Fatalf("%s: path %s produced empty output", name, paths[0].Name)
	}
	for _, vr := range variants {
		vr := vr
		t.Run(vr.name, func(t *testing.T) {
			for _, p := range paths {
				if got := p.Run(t, vr.v); got != base {
					t.Fatalf("%s: path %q under %s diverged from %q under workers=1:\n--- got ---\n%s\n--- want ---\n%s",
						name, p.Name, vr.name, paths[0].Name, got, base)
				}
			}
		})
	}
}
