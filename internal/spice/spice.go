// Package spice is the circuit-level transient simulator standing in for
// the paper's LTspice + Rambus-model setup (§3.5): an RC model of one
// bitline with N simultaneously connected DRAM cells and a regenerative
// sense amplifier, Monte-Carlo-sampled over capacitor and transistor
// parameter variation.
//
// It regenerates Fig. 15: (a) the bitline perturbation distribution right
// before sensing for MAJ3(1,1,0) with N-row activation, and (b) the MAJ3
// success rate across process-variation percentages.
package spice

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// Circuit holds the nominal electrical parameters of the simulated
// bitline. Values are scaled from the Rambus reference model to a
// 22 nm-class node as the paper does; only ratios matter for the
// perturbation results.
type Circuit struct {
	VDD     float64 // core voltage, V
	CellFF  float64 // cell capacitance, fF
	BitFF   float64 // bitline capacitance, fF
	GOnUS   float64 // access-transistor on-conductance, µS
	ShareNS float64 // charge-sharing window before the amplifier fires, ns
	StepNS  float64 // integration step, ns
	// GVarLambda is the exponential sensitivity of the on-conductance to
	// process variation: g = g0·exp(λ·δ). Threshold-voltage shifts act
	// exponentially on the transistor's drive in the short sharing window,
	// which is what collapses 4-row MAJ3 at high variation (Fig. 15b).
	GVarLambda float64
}

// DefaultCircuit returns the nominal 22 nm-class model.
func DefaultCircuit() Circuit {
	return Circuit{
		VDD:        1.2,
		CellFF:     22,
		BitFF:      88,
		GOnUS:      30,
		ShareNS:    1.5,
		StepNS:     0.01,
		GVarLambda: 5.0,
	}
}

// Validate reports whether the circuit is integrable.
func (c Circuit) Validate() error {
	switch {
	case c.VDD <= 0, c.CellFF <= 0, c.BitFF <= 0, c.GOnUS <= 0:
		return fmt.Errorf("spice: parameters must be positive: %+v", c)
	case c.StepNS <= 0 || c.StepNS > c.ShareNS:
		return fmt.Errorf("spice: bad integration step %v", c.StepNS)
	}
	return nil
}

// cell is one DRAM cell connected to the bitline during the transient.
type cell struct {
	v    float64 // stored voltage
	capF float64 // capacitance, fF
	g    float64 // access conductance, µS
}

// Transient integrates the charge-sharing transient of the given cells
// against a VDD/2-precharged bitline and returns the bitline deviation
// from VDD/2 at the end of the sharing window.
//
// The network is dVb/dt = Σ gᵢ(Vᵢ−Vb)/Cb, dVᵢ/dt = gᵢ(Vb−Vᵢ)/Cᵢ, a
// well-behaved RC star integrated with forward Euler at a small step. In
// (V, ns, fF, µS) units the equations carry no scale factors: µS/fF =
// 1/ns, so a 22 fF cell through a 30 µS transistor has τ ≈ 0.73 ns,
// matching real charge-sharing time scales.
func (c Circuit) Transient(cells []cell) float64 {
	vb := c.VDD / 2
	vs := make([]float64, len(cells))
	for i, cl := range cells {
		vs[i] = cl.v
	}
	steps := int(c.ShareNS / c.StepNS)
	for s := 0; s < steps; s++ {
		for i, cl := range cells {
			// Exact single-cell relaxation toward the (slow) bitline over
			// one step: unconditionally stable for any conductance draw.
			alpha := 1 - math.Exp(-cl.g/cl.capF*c.StepNS)
			dv := (vb - vs[i]) * alpha
			vs[i] += dv
			vb -= dv * cl.capF / c.BitFF // charge conservation
		}
	}
	return vb - c.VDD/2
}

// MonteCarlo runs the Fig. 15 experiment: `sets` independent samples of an
// N-row MAJ3(1,1,0) activation at the given process-variation fraction
// (e.g. 0.4 for ±40%), returning the per-sample bitline perturbations and
// the fraction of samples whose amplifier resolves the correct majority
// (logic 1 for two 1-operands vs one 0-operand).
type MonteCarlo struct {
	Circuit Circuit
	Seed    uint64
	// SenseOffsetV is the amplifier's input-referred offset sigma (V).
	SenseOffsetV float64
}

// NewMonteCarlo returns a simulator with the default circuit.
func NewMonteCarlo(seed uint64) *MonteCarlo {
	return &MonteCarlo{Circuit: DefaultCircuit(), Seed: seed, SenseOffsetV: 0.035}
}

// Result holds one Monte-Carlo sweep cell of Fig. 15.
type Result struct {
	N             int
	Variation     float64
	Perturbations []float64
	SuccessRate   float64
}

// Run simulates `sets` samples of MAJ3(1,1,0) with n-row activation at the
// given variation fraction. For n == 1 a single charged cell is simulated
// (the paper's single-row reference distribution); n must otherwise be a
// multiple-of-activation count ≥ 3 (4, 8, 16 or 32).
func (mc *MonteCarlo) Run(n int, variation float64, sets int) (Result, error) {
	if err := mc.Circuit.Validate(); err != nil {
		return Result{}, err
	}
	if sets <= 0 {
		return Result{}, fmt.Errorf("spice: sets must be positive")
	}
	if variation < 0 || variation >= 1 {
		return Result{}, fmt.Errorf("spice: variation %v outside [0,1)", variation)
	}
	if n != 1 && n < 3 {
		return Result{}, fmt.Errorf("spice: unsupported row count %d", n)
	}

	res := Result{N: n, Variation: variation, Perturbations: make([]float64, 0, sets)}
	correct := 0
	for set := 0; set < sets; set++ {
		src := xrand.NewSource(mc.Seed, uint64(n), uint64(set),
			uint64(math.Float64bits(variation)))
		cells := mc.buildCells(n, variation, src)
		delta := mc.Circuit.Transient(cells)
		res.Perturbations = append(res.Perturbations, delta)
		if n != 1 {
			// The amplifier resolves sign(delta + offset); MAJ3(1,1,0) = 1.
			offset := mc.SenseOffsetV * src.Norm()
			if delta+offset > 0 {
				correct++
			}
		}
	}
	if n != 1 {
		res.SuccessRate = float64(correct) / float64(sets)
	}
	return res, nil
}

// buildCells constructs the MAJ3(1,1,0) cell population for n-row
// activation: ⌊n/3⌋ copies of each operand (1,1,0) and n%3 neutral VDD/2
// cells, parameters varied uniformly by ±variation.
func (mc *MonteCarlo) buildCells(n int, variation float64, src *xrand.Source) []cell {
	c := mc.Circuit
	varyCap := func() float64 {
		f := 1 + variation*src.Norm()
		if f < 0.15 {
			f = 0.15
		}
		return c.CellFF * f
	}
	varyG := func() float64 {
		return c.GOnUS * math.Exp(c.GVarLambda*variation*src.Norm())
	}
	mk := func(v float64) cell { return cell{v: v, capF: varyCap(), g: varyG()} }
	if n == 1 {
		return []cell{mk(c.VDD)}
	}
	copies := n / 3
	cells := make([]cell, 0, n)
	for i := 0; i < copies; i++ {
		cells = append(cells, mk(c.VDD), mk(c.VDD), mk(0))
	}
	for i := 0; i < n%3; i++ {
		cells = append(cells, mk(c.VDD/2))
	}
	return cells
}

// Variations lists Fig. 15's process-variation fractions.
var Variations = []float64{0, 0.10, 0.20, 0.30, 0.40}

// RowCounts lists Fig. 15's activation counts (1 is the single-row
// reference of Fig. 15a; success is reported for the rest).
var RowCounts = []int{1, 4, 8, 16, 32}
