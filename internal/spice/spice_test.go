package spice

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestDefaultCircuitValid(t *testing.T) {
	if err := DefaultCircuit().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitValidateRejects(t *testing.T) {
	c := DefaultCircuit()
	c.BitFF = 0
	if err := c.Validate(); err == nil {
		t.Fatal("zero bitline cap should fail")
	}
	c = DefaultCircuit()
	c.StepNS = 100
	if err := c.Validate(); err == nil {
		t.Fatal("step above window should fail")
	}
}

// TestTransientSingleCellApproachesChargeShare: with a long window the
// transient converges to the analytic charge-sharing limit
// (VDD/2)·Cc/(Cb+Cc).
func TestTransientSingleCellConverges(t *testing.T) {
	c := DefaultCircuit()
	c.ShareNS = 50 // long enough to fully settle
	got := c.Transient([]cell{{v: c.VDD, capF: c.CellFF, g: c.GOnUS}})
	want := c.VDD / 2 * c.CellFF / (c.BitFF + c.CellFF)
	if math.Abs(got-want)/want > 0.02 {
		t.Fatalf("settled perturbation %v, analytic %v", got, want)
	}
}

func TestTransientBalancedCellsCancel(t *testing.T) {
	c := DefaultCircuit()
	got := c.Transient([]cell{
		{v: c.VDD, capF: c.CellFF, g: c.GOnUS},
		{v: 0, capF: c.CellFF, g: c.GOnUS},
	})
	if math.Abs(got) > 1e-3 {
		t.Fatalf("balanced perturbation = %v, want ~0", got)
	}
}

func TestRunValidation(t *testing.T) {
	mc := NewMonteCarlo(1)
	if _, err := mc.Run(4, 0.1, 0); err == nil {
		t.Fatal("zero sets should fail")
	}
	if _, err := mc.Run(4, -0.1, 10); err == nil {
		t.Fatal("negative variation should fail")
	}
	if _, err := mc.Run(2, 0.1, 10); err == nil {
		t.Fatal("row count 2 should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := NewMonteCarlo(7).Run(8, 0.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMonteCarlo(7).Run(8, 0.2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.SuccessRate != b.SuccessRate {
		t.Fatal("Monte-Carlo must be deterministic per seed")
	}
	for i := range a.Perturbations {
		if a.Perturbations[i] != b.Perturbations[i] {
			t.Fatal("perturbations must be deterministic")
		}
	}
}

// TestFig15aPerturbationGrowsWithN: replication raises the mean bitline
// perturbation; 32-row MAJ3 sits far above 4-row (paper: +159%).
func TestFig15aPerturbationGrowsWithN(t *testing.T) {
	mc := NewMonteCarlo(3)
	mean := func(n int) float64 {
		r, err := mc.Run(n, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		return stats.Mean(r.Perturbations)
	}
	m4, m8, m16, m32 := mean(4), mean(8), mean(16), mean(32)
	if !(m4 < m8 && m8 < m16 && m16 < m32) {
		t.Fatalf("perturbations not increasing: %v %v %v %v", m4, m8, m16, m32)
	}
	gain := (m32 - m4) / m4
	if gain < 0.8 || gain > 3.5 {
		t.Fatalf("32-vs-4-row gain = %.2f, want within [0.8, 3.5] (paper 1.59)", gain)
	}
}

// TestFig15aManyRowsBeatSingleRow: the paper observes that activating more
// than eight rows always yields a higher perturbation than single-row
// activation.
func TestFig15aManyRowsBeatSingleRow(t *testing.T) {
	mc := NewMonteCarlo(3)
	r1, err := mc.Run(1, 0.2, 100)
	if err != nil {
		t.Fatal(err)
	}
	single := stats.Mean(r1.Perturbations)
	for _, n := range []int{16, 32} {
		rn, err := mc.Run(n, 0.2, 100)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Mean(rn.Perturbations) <= single {
			t.Fatalf("%d-row perturbation below single-row", n)
		}
	}
}

// TestFig15bSuccessCollapsesAt4Rows: 4-row MAJ3 success drops sharply
// under process variation (paper: −46.58% at 40%), while 32-row is nearly
// flat (−0.01%).
func TestFig15bSuccessUnderVariation(t *testing.T) {
	mc := NewMonteCarlo(9)
	run := func(n int, v float64) float64 {
		r, err := mc.Run(n, v, 400)
		if err != nil {
			t.Fatal(err)
		}
		return r.SuccessRate
	}
	s4at0, s4at40 := run(4, 0), run(4, 0.40)
	s32at0, s32at40 := run(32, 0), run(32, 0.40)
	drop4 := s4at0 - s4at40
	drop32 := s32at0 - s32at40
	if drop4 < 0.10 {
		t.Fatalf("4-row success drop = %.3f, want a collapse (paper: 0.466)", drop4)
	}
	if drop32 > 0.03 {
		t.Fatalf("32-row success drop = %.3f, want ~flat (paper: 0.0001)", drop32)
	}
	// The differential is the paper's key claim: replication makes MAJ3
	// orders of magnitude more robust to process variation.
	if drop4 < 5*drop32 {
		t.Fatalf("4-row drop %.3f should dwarf 32-row drop %.3f", drop4, drop32)
	}
	if s32at40 < 0.97 {
		t.Fatalf("32-row success at 40%% PV = %.3f, want ~1", s32at40)
	}
}

// TestSuccessMonotoneInN: at fixed variation, more replication never
// hurts.
func TestSuccessMonotoneInN(t *testing.T) {
	mc := NewMonteCarlo(5)
	prev := 0.0
	for _, n := range []int{4, 8, 16, 32} {
		r, err := mc.Run(n, 0.3, 300)
		if err != nil {
			t.Fatal(err)
		}
		if r.SuccessRate+0.03 < prev { // small MC tolerance
			t.Fatalf("success fell from %.3f to %.3f at n=%d", prev, r.SuccessRate, n)
		}
		prev = r.SuccessRate
	}
}

func TestSweepAxes(t *testing.T) {
	if len(Variations) != 5 || Variations[4] != 0.40 {
		t.Fatalf("Variations = %v", Variations)
	}
	if len(RowCounts) != 5 || RowCounts[0] != 1 || RowCounts[4] != 32 {
		t.Fatalf("RowCounts = %v", RowCounts)
	}
}
