package charexp

import "repro/internal/colenc"

// Columnar encodes the table as a columnar stream. Sweep tables are
// string-rendered rows, so the schema comes from colenc.FromStrings's
// round-trip-safe inference; the id and title travel as stream metadata.
// Decoding and re-rendering via colenc's Strings reproduces the CSV
// cells byte for byte.
func (t Table) Columnar() (string, error) {
	tab := colenc.FromStrings(t.ID,
		[][2]string{{"id", t.ID}, {"title", t.Title}}, t.Columns, t.Rows)
	enc, err := colenc.Encode(tab, 0)
	return string(enc), err
}

// ColumnarStrings is the reverse of Columnar's encoding: it rebuilds the
// rendered table from a decoded columnar stream.
func ColumnarStrings(t *colenc.Table) Table {
	columns, rows := t.Strings()
	return Table{
		ID:      t.MetaValue("id"),
		Title:   t.MetaValue("title"),
		Columns: columns,
		Rows:    rows,
	}
}
