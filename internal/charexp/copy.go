package charexp

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/stats"
	"repro/internal/timing"
)

// CopyDestinations lists Fig. 10–12's destination-row counts; the
// activation group is one row larger (the source).
var CopyDestinations = []int{1, 3, 7, 15, 31}

// CopyCell is one Multi-RowCopy measurement.
type CopyCell struct {
	T1, T2  float64
	Dests   int
	Pattern dram.Pattern
	Level   float64
	Summary stats.Summary
}

// Figure10Result is the Fig. 10 Multi-RowCopy timing sweep.
type Figure10Result struct {
	Cells []CopyCell
}

// Cell returns the summary at (t1, t2, dests).
func (f Figure10Result) Cell(t1, t2 float64, dests int) (stats.Summary, bool) {
	for _, c := range f.Cells {
		if c.T1 == t1 && c.T2 == t2 && c.Dests == dests {
			return c.Summary, true
		}
	}
	return stats.Summary{}, false
}

// Figure10 characterizes the effect of timing delays on Multi-RowCopy
// (Obs. 14–15).
func (r *Runner) Figure10() (Figure10Result, error) {
	var out Figure10Result
	for _, t1 := range timing.SweepT1Copy {
		for _, t2 := range timing.SweepT2 {
			for _, dests := range CopyDestinations {
				rates, err := r.pooledSweep(core.SweepConfig{
					Op: core.OpMultiRowCopy, N: dests + 1,
					Timings: timing.APATimings{T1: t1, T2: t2},
					Pattern: dram.PatternRandom,
				}, analog.NominalEnv())
				if err != nil {
					return Figure10Result{}, err
				}
				out.Cells = append(out.Cells, CopyCell{
					T1: t1, T2: t2, Dests: dests, Summary: stats.MustSummarize(rates),
				})
			}
		}
	}
	return out, nil
}

// Table renders Fig. 10.
func (f Figure10Result) Table() Table {
	t := Table{
		ID:      "Fig10",
		Title:   "Effect of t1 and t2 on Multi-RowCopy success rate",
		Columns: append([]string{"t1(ns)", "t2(ns)", "dests"}, summaryColumns...),
	}
	for _, c := range f.Cells {
		row := []string{
			fmt.Sprintf("%.1f", c.T1), fmt.Sprintf("%.1f", c.T2), fmt.Sprint(c.Dests),
		}
		t.Rows = append(t.Rows, append(row, summaryCells(c.Summary)...))
	}
	return t
}

// Figure11Result is the Fig. 11 data-pattern dependence of Multi-RowCopy.
type Figure11Result struct {
	Cells []CopyCell
}

// Mean returns the mean success rate at (pattern, dests).
func (f Figure11Result) Mean(p dram.Pattern, dests int) (float64, bool) {
	for _, c := range f.Cells {
		if c.Pattern == p && c.Dests == dests {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// Figure11 characterizes Multi-RowCopy under all-0s, all-1s and random
// data (Obs. 16).
func (r *Runner) Figure11() (Figure11Result, error) {
	var out Figure11Result
	for _, p := range dram.CopyPatterns {
		for _, dests := range CopyDestinations {
			rates, err := r.pooledSweep(core.SweepConfig{
				Op: core.OpMultiRowCopy, N: dests + 1,
				Timings: timing.BestCopy(),
				Pattern: p,
			}, analog.NominalEnv())
			if err != nil {
				return Figure11Result{}, err
			}
			out.Cells = append(out.Cells, CopyCell{
				T1: timing.BestCopy().T1, T2: timing.BestCopy().T2,
				Dests: dests, Pattern: p, Summary: stats.MustSummarize(rates),
			})
		}
	}
	return out, nil
}

// Table renders Fig. 11.
func (f Figure11Result) Table() Table {
	t := Table{
		ID:      "Fig11",
		Title:   "Data-pattern dependence of Multi-RowCopy",
		Columns: []string{"pattern", "dests", "mean"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			c.Pattern.String(), fmt.Sprint(c.Dests), pct(c.Summary.Mean),
		})
	}
	return t
}

// Figure12Result is one environmental sweep of Multi-RowCopy (Fig. 12a:
// temperature, Fig. 12b: VPP).
type Figure12Result struct {
	Axis  string
	Cells []CopyCell
}

// Mean returns the mean success rate at (level, dests).
func (f Figure12Result) Mean(level float64, dests int) (float64, bool) {
	for _, c := range f.Cells {
		if c.Level == level && c.Dests == dests {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// Figure12a characterizes Multi-RowCopy across temperature (Obs. 17).
func (r *Runner) Figure12a() (Figure12Result, error) {
	return r.copyEnvSweep("temperature", timing.SweepTemperature,
		func(level float64) analog.Env { return analog.Env{TempC: level, VPP: 2.5} })
}

// Figure12b characterizes Multi-RowCopy across wordline voltage (Obs. 18).
func (r *Runner) Figure12b() (Figure12Result, error) {
	return r.copyEnvSweep("VPP", timing.SweepVPP,
		func(level float64) analog.Env { return analog.Env{TempC: 50, VPP: level} })
}

func (r *Runner) copyEnvSweep(axis string, levels []float64,
	env func(float64) analog.Env) (Figure12Result, error) {

	out := Figure12Result{Axis: axis}
	for _, level := range levels {
		for _, dests := range CopyDestinations {
			rates, err := r.pooledSweep(core.SweepConfig{
				Op: core.OpMultiRowCopy, N: dests + 1,
				Timings: timing.BestCopy(),
				Pattern: dram.PatternRandom,
			}, env(level))
			if err != nil {
				return Figure12Result{}, err
			}
			out.Cells = append(out.Cells, CopyCell{
				Dests: dests, Level: level, Summary: stats.MustSummarize(rates),
			})
		}
	}
	return out, nil
}

// Table renders Fig. 12a or 12b.
func (f Figure12Result) Table() Table {
	id := "Fig12a"
	if f.Axis == "VPP" {
		id = "Fig12b"
	}
	t := Table{
		ID:      id,
		Title:   "Multi-RowCopy success rate vs " + f.Axis,
		Columns: []string{f.Axis, "dests", "mean"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", c.Level), fmt.Sprint(c.Dests), pct(c.Summary.Mean),
		})
	}
	return t
}
