package charexp

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
)

// sweepShard binds one engine shard to the module tester and subarray
// sample that execute it. key is the shard's content hash for the
// optional ShardMemo and for cluster dispatch; spec is the serialized
// form dispatched to remote workers (filled only when Config.Dispatch is
// set).
type sweepShard struct {
	shard  engine.Shard
	tester *core.Tester
	sample bender.SubarraySample
	key    cache.Key
	spec   core.ShardSpec
}

// shardKey hashes everything one sweep shard's outcome depends on: the
// module's identity and electrical model (the shared dram.Spec.HashModule
// block), the operating environment, the (bounded) sweep configuration,
// the runner's trial count and seed, and the shard's (bank, subarray)
// coordinates. The engine worker count is deliberately absent — results
// are bit-identical for every worker count, so it must not fragment the
// cache.
func (r *Runner) shardKey(spec dram.Spec, sc core.SweepConfig, env analog.Env, s bender.SubarraySample) cache.Key {
	return spec.HashModule(cache.NewHasher().Str("charexp/sweep-shard/v1"), r.cfg.Params).
		F64(env.TempC).F64(env.VPP).F64(env.Aging).
		F64(env.Disturb).F64(env.Retention).
		Int(int(sc.Op)).Int(sc.X).Int(sc.N).
		F64(sc.Timings.T1).F64(sc.Timings.T2).Int(int(sc.Pattern)).
		Int(sc.SubarraysPerBank).Int(sc.GroupsPerSubarray).Int(sc.Banks).
		Int(r.cfg.Trials).U64(r.cfg.Seed).
		Int(s.Bank).Int(s.Subarray).
		Sum()
}

// boundSweep applies the runner's sampling bounds to a sweep cell.
func (r *Runner) boundSweep(sc core.SweepConfig) core.SweepConfig {
	sc.GroupsPerSubarray = r.cfg.GroupsPerSubarray
	sc.SubarraysPerBank = r.cfg.SubarraysPerBank
	sc.Banks = r.cfg.Banks
	return sc
}

// applies reports whether a module profile can run the sweep
// configuration (guarded chips and over-wide MAJ are skipped).
func applies(profile dram.Profile, sc core.SweepConfig) bool {
	if profile.APAGuarded {
		return false
	}
	if sc.Op == core.OpMAJ && sc.X > profile.MaxMAJ {
		return false
	}
	return true
}

// sweepShards enumerates the engine shards of one sweep configuration:
// one per applicable (module, bank, subarray), in fleet order. mfr
// restricts the fleet to one manufacturer ("" = all). The enumeration is
// deterministic, so the merged results match a sequential run exactly.
// applicable counts the modules that can run the configuration, letting
// callers distinguish "no capable module" from "no sampled subarrays".
func (r *Runner) sweepShards(sc core.SweepConfig, env analog.Env, mfr string) (shards []sweepShard, applicable int, err error) {
	for mi, mod := range r.mods {
		profile := mod.Spec().Profile
		if mfr != "" && profile.Name != mfr {
			continue
		}
		if !applies(profile, sc) {
			continue
		}
		applicable++
		// Shards of one module share a tester; the tester's per-group seeds
		// hash the (bank, subarray, row) coordinates, so a shard's outcome
		// is independent of scheduling. The tester runs its own sweep
		// sequentially — parallelism lives at the shard level.
		tester, err := core.NewTester(mod,
			core.WithEnv(env), core.WithTrials(r.cfg.Trials), core.WithSeed(r.cfg.Seed),
			core.WithWorkers(1), core.WithArenaPool(r.arenas))
		if err != nil {
			return nil, 0, err
		}
		for _, s := range tester.SweepSamples(sc) {
			sh := sweepShard{
				shard:  engine.NewShard(r.cfg.Seed, mi, s.Bank, s.Subarray),
				tester: tester,
				sample: s,
			}
			if r.cfg.ShardMemo != nil || r.cfg.Dispatch != nil {
				sh.key = r.shardKey(mod.Spec(), sc, env, s)
			}
			if r.cfg.Dispatch != nil {
				sh.spec = core.ShardSpec{
					Spec:   mod.Spec(),
					Params: r.cfg.Params,
					Env:    env,
					Sweep:  sc,
					Trials: r.cfg.Trials,
					Seed:   r.cfg.Seed,
					Sample: s,
				}
			}
			shards = append(shards, sh)
		}
	}
	return shards, applicable, nil
}

// runShards executes the shards on the engine's worker pool and returns
// the per-shard group outcomes in enumeration order. With a ShardMemo
// configured, previously computed shards are served from it without
// re-simulating (engine.RunKeyed); with Config.Dispatch set, shard misses
// fan out to the worker fleet instead of executing in-process — both are
// bit-identical to a plain local run. Activations are only accounted for
// shards that actually execute (locally or via dispatch).
func (r *Runner) runShards(sc core.SweepConfig, shards []sweepShard) ([][]core.GroupOutcome, error) {
	tasks := make([]engine.Task[[]core.GroupOutcome], len(shards))
	for i, sh := range shards {
		sh := sh
		if d := r.cfg.Dispatch; d != nil {
			tasks[i] = func(ctx context.Context) ([]core.GroupOutcome, error) {
				b, err := d.ExecShard(ctx, sh.key, "core", sh.spec)
				if err != nil {
					return nil, fmt.Errorf("charexp: module %s: %w", sh.spec.Spec.ID, err)
				}
				var out []core.GroupOutcome
				if err := json.Unmarshal(b, &out); err != nil {
					return nil, fmt.Errorf("charexp: module %s: decode shard: %w", sh.spec.Spec.ID, err)
				}
				// One APA per trial per characterized group (§3.1).
				r.stats.AddActivations(len(out) * r.cfg.Trials)
				return out, nil
			}
			continue
		}
		tasks[i] = func(context.Context) ([]core.GroupOutcome, error) {
			out, err := sh.tester.SweepShard(sc, sh.sample)
			if err != nil {
				return nil, fmt.Errorf("charexp: module %s: %w",
					sh.tester.Module().Spec().ID, err)
			}
			// One APA per trial per characterized group (§3.1).
			r.stats.AddActivations(len(out) * r.cfg.Trials)
			return out, nil
		}
	}
	if r.cfg.ShardMemo == nil {
		return engine.Run(context.Background(), r.cfg.Engine, r.stats, tasks)
	}
	keys := make([]engine.ShardKey, len(shards))
	for i, sh := range shards {
		keys[i] = sh.key
	}
	return engine.RunKeyed(context.Background(), r.cfg.Engine, r.stats, r.cfg.ShardMemo, keys, tasks)
}
