package charexp

import (
	"fmt"

	"repro/internal/decoder"
	"repro/internal/fleet"
	"repro/internal/spice"
	"repro/internal/stats"
)

// TablePopulation renders Table 1/2: the tested module population.
func TablePopulation(entries []fleet.Entry) Table {
	t := Table{
		ID:    "Table1",
		Title: "Tested DDR4 DRAM modules",
		Columns: []string{
			"module", "vendor", "chip", "mfr", "die", "density",
			"freq", "chips", "subarray",
		},
	}
	for _, e := range entries {
		t.Rows = append(t.Rows, []string{
			e.Spec.ID, e.ModuleVendor, e.ChipIdentifier,
			e.Spec.Profile.Manufacturer, e.Spec.DieRev,
			fmt.Sprintf("%dGb", e.Spec.DensityGbit),
			fmt.Sprint(e.Spec.FreqMTps), fmt.Sprint(e.Spec.Chips),
			fmt.Sprint(e.Spec.Profile.Decoder.Rows),
		})
	}
	t.Rows = append(t.Rows, []string{
		"TOTAL", "", "", "", "", "",
		"", fmt.Sprint(fleet.TotalChips(entries)), "",
	})
	return t
}

// DecoderWalkthrough renders the Fig. 13/14 decoder analysis for a
// configuration: the activated-row sets of the paper's two APA examples.
func DecoderWalkthrough(cfg decoder.Config) (Table, error) {
	dec, err := decoder.New(cfg)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "Fig14",
		Title:   "Hypothetical row decoder: APA activation walkthrough",
		Columns: []string{"APA", "differing fields", "activated rows"},
	}
	examples := [][2]int{{0, 7}, {0, 1}, {5, 2}, {127, 128}}
	for _, ex := range examples {
		rf, rs := ex[0], ex[1]
		if rs >= dec.Rows() || rf >= dec.Rows() {
			continue
		}
		rows, err := dec.ActivatedRows(rf, rs)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("ACT %d → PRE → ACT %d", rf, rs),
			fmt.Sprint(dec.DifferingFields(rf, rs)),
			fmt.Sprintf("%d: %v", len(rows), rows),
		})
	}
	return t, nil
}

// Figure15Result is the SPICE Monte-Carlo sweep of Fig. 15.
type Figure15Result struct {
	// Perturbation[N][pv] summarizes the bitline deviation distribution.
	Perturbation map[int]map[float64]stats.Summary
	// Success[N][pv] is the MAJ3 success rate (N >= 4 only).
	Success map[int]map[float64]float64
}

// Figure15 runs the circuit-level Monte-Carlo analysis of input
// replication (§7.2). Sets is the number of Monte-Carlo samples per cell
// (the paper uses 1000).
func (r *Runner) Figure15(sets int) (Figure15Result, error) {
	mc := spice.NewMonteCarlo(r.cfg.Seed)
	out := Figure15Result{
		Perturbation: make(map[int]map[float64]stats.Summary),
		Success:      make(map[int]map[float64]float64),
	}
	for _, n := range spice.RowCounts {
		out.Perturbation[n] = make(map[float64]stats.Summary)
		if n > 1 {
			out.Success[n] = make(map[float64]float64)
		}
		for _, pv := range spice.Variations {
			res, err := mc.Run(n, pv, sets)
			if err != nil {
				return Figure15Result{}, err
			}
			out.Perturbation[n][pv] = stats.MustSummarize(res.Perturbations)
			if n > 1 {
				out.Success[n][pv] = res.SuccessRate
			}
		}
	}
	return out, nil
}

// Table renders Fig. 15.
func (f Figure15Result) Table() Table {
	t := Table{
		ID:      "Fig15",
		Title:   "SPICE Monte-Carlo: bitline perturbation and MAJ3 success vs process variation",
		Columns: []string{"rows", "variation", "mean pert (V)", "min", "max", "MAJ3 success"},
	}
	for _, n := range sortedKeys(f.Perturbation) {
		for _, pv := range sortedKeys(f.Perturbation[n]) {
			s := f.Perturbation[n][pv]
			success := "-"
			if sr, ok := f.Success[n][pv]; ok {
				success = pct(sr)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(n), fmt.Sprintf("%.0f%%", pv*100),
				fmt.Sprintf("%.4f", s.Mean), fmt.Sprintf("%.4f", s.Min),
				fmt.Sprintf("%.4f", s.Max), success,
			})
		}
	}
	return t
}
