package charexp

import (
	"reflect"
	"testing"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/timing"
)

// runnerWithWorkers builds a small runner with the engine bounded to the
// given worker count.
func runnerWithWorkers(t *testing.T, workers int) *Runner {
	t.Helper()
	cfg := smallConfig()
	cfg.Engine.Workers = workers
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestEngineDeterminismFigure3 is the engine's determinism property test:
// for a fixed seed, a sequential run and a heavily parallel run must
// produce identical structured results and byte-identical rendered
// tables.
func TestEngineDeterminismFigure3(t *testing.T) {
	seq := runnerWithWorkers(t, 1)
	par := runnerWithWorkers(t, 8)

	got1, err := seq.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	got8, err := par.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, got8) {
		t.Fatal("Figure3 results differ between workers=1 and workers=8")
	}
	if got1.Table().Render() != got8.Table().Render() {
		t.Fatal("Figure3 rendered tables differ between workers=1 and workers=8")
	}
	if got1.Table().CSV() != got8.Table().CSV() {
		t.Fatal("Figure3 CSV tables differ between workers=1 and workers=8")
	}
}

// TestEngineDeterminismFigure4 repeats the property on the environmental
// sweep, including a repeated parallel run (scheduling is fresh each
// time).
func TestEngineDeterminismFigure4(t *testing.T) {
	seq := runnerWithWorkers(t, 1)
	par := runnerWithWorkers(t, 8)

	got1, err := seq.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	got8, err := par.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	again, err := par.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, got8) {
		t.Fatal("Figure4a results differ between workers=1 and workers=8")
	}
	if !reflect.DeepEqual(got8, again) {
		t.Fatal("Figure4a results differ between two workers=8 runs")
	}
	if got1.Table().Render() != got8.Table().Render() {
		t.Fatal("Figure4a rendered tables differ between workers=1 and workers=8")
	}
}

// TestEngineDeterminismPerModule covers the per-module breakdown, which
// runs all three headline ops inside each subarray shard.
func TestEngineDeterminismPerModule(t *testing.T) {
	seq := runnerWithWorkers(t, 1)
	par := runnerWithWorkers(t, 8)

	got1, err := seq.PerModule()
	if err != nil {
		t.Fatal(err)
	}
	got8, err := par.PerModule()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got1, got8) {
		t.Fatal("PerModule results differ between workers=1 and workers=8")
	}
}

// TestPerModuleMatchesDirectSweeps pins the shard decomposition against
// the obvious sequential implementation: every cell's mean must equal
// running that op's sweep directly with core.Tester.RunSweep. This is
// the regression test for shards racing on shared subarray state — ops
// of one module sample the same subarrays, so they must never run in
// concurrent shards.
func TestPerModuleMatchesDirectSweeps(t *testing.T) {
	r := runnerWithWorkers(t, 8)
	got, err := r.PerModule()
	if err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		label string
		cfg   core.SweepConfig
	}{
		{"activation32", core.SweepConfig{
			Op: core.OpManyRowActivation, N: 32,
			Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
		}},
		{"maj3x32", core.SweepConfig{
			Op: core.OpMAJ, X: 3, N: 32,
			Timings: timing.BestMAJ(), Pattern: dram.PatternRandom,
		}},
		{"copy31", core.SweepConfig{
			Op: core.OpMultiRowCopy, N: 32,
			Timings: timing.BestCopy(), Pattern: dram.PatternRandom,
		}},
	}
	for _, mod := range r.Modules() {
		tester, err := core.NewTester(mod,
			core.WithTrials(r.cfg.Trials), core.WithSeed(r.cfg.Seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			res, err := tester.RunSweep(r.boundSweep(op.cfg))
			if err != nil {
				t.Fatal(err)
			}
			want := res.Summary().Mean
			mean, ok := got.Mean(mod.Spec().ID, op.label)
			if !ok {
				t.Fatalf("no %s cell for module %s", op.label, mod.Spec().ID)
			}
			if mean != want {
				t.Errorf("module %s %s: PerModule mean %v, direct sweep %v",
					mod.Spec().ID, op.label, mean, want)
			}
		}
	}
}

// TestRunnerStats verifies the progress counters advance with the work.
func TestRunnerStats(t *testing.T) {
	r := smallRunner(t)
	if s := r.Stats(); s.ShardsTotal != 0 || s.Activations != 0 {
		t.Fatalf("fresh runner already has stats: %+v", s)
	}
	if _, err := r.Figure11(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Runs == 0 || s.ShardsTotal == 0 || s.ShardsDone != s.ShardsTotal {
		t.Fatalf("stats after Figure11: %+v, want completed shards", s)
	}
	if s.Activations == 0 {
		t.Fatalf("stats after Figure11: %+v, want issued activations", s)
	}
	if s.Wall <= 0 {
		t.Fatalf("stats after Figure11: wall = %s, want > 0", s.Wall)
	}
}

// TestSweepShardsEnumeration checks the shard split: fleet order,
// stable sub-seeds, and manufacturer filtering.
func TestSweepShardsEnumeration(t *testing.T) {
	r := smallRunner(t)
	sc := r.boundSweep(core.SweepConfig{
		Op: core.OpManyRowActivation, N: 8,
		Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
	})
	all, applicable, err := r.sweepShards(sc, analog.NominalEnv(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no shards enumerated")
	}
	if applicable != len(r.Modules()) {
		t.Fatalf("applicable = %d, want all %d modules", applicable, len(r.Modules()))
	}
	seen := make(map[uint64]bool)
	for _, sh := range all {
		if seen[sh.shard.Seed] {
			t.Fatalf("duplicate shard seed %#x", sh.shard.Seed)
		}
		seen[sh.shard.Seed] = true
		if sh.tester == nil {
			t.Fatal("shard without tester")
		}
	}
	hOnly, _, err := r.sweepShards(sc, analog.NominalEnv(), "H")
	if err != nil {
		t.Fatal(err)
	}
	if len(hOnly) == 0 || len(hOnly) >= len(all) {
		t.Fatalf("manufacturer filter: %d H shards of %d total", len(hOnly), len(all))
	}
	for _, sh := range hOnly {
		if sh.tester.Module().Spec().Profile.Name != "H" {
			t.Fatal("manufacturer filter leaked a non-H module")
		}
	}
}
