package charexp

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/bender"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/timing"
)

// runnerWithWorkers builds a small runner with the engine bounded to the
// given worker count.
func runnerWithWorkers(t *testing.T, workers int) *Runner {
	t.Helper()
	cfg := smallConfig()
	cfg.Engine.Workers = workers
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// The engine-determinism and cache byte-identity properties formerly
// asserted here per figure now live in the shared metamorphic suite:
// see invariance_test.go and internal/invariance.

// TestPerModuleMatchesDirectSweeps pins the shard decomposition against
// the obvious sequential implementation: every cell's mean must equal
// running that op's sweep directly with core.Tester.RunSweep. This is
// the regression test for shards racing on shared subarray state — ops
// of one module sample the same subarrays, so they must never run in
// concurrent shards.
func TestPerModuleMatchesDirectSweeps(t *testing.T) {
	r := runnerWithWorkers(t, 8)
	got, err := r.PerModule()
	if err != nil {
		t.Fatal(err)
	}
	ops := []struct {
		label string
		cfg   core.SweepConfig
	}{
		{"activation32", core.SweepConfig{
			Op: core.OpManyRowActivation, N: 32,
			Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
		}},
		{"maj3x32", core.SweepConfig{
			Op: core.OpMAJ, X: 3, N: 32,
			Timings: timing.BestMAJ(), Pattern: dram.PatternRandom,
		}},
		{"copy31", core.SweepConfig{
			Op: core.OpMultiRowCopy, N: 32,
			Timings: timing.BestCopy(), Pattern: dram.PatternRandom,
		}},
	}
	for _, mod := range r.Modules() {
		tester, err := core.NewTester(mod,
			core.WithTrials(r.cfg.Trials), core.WithSeed(r.cfg.Seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range ops {
			res, err := tester.RunSweep(r.boundSweep(op.cfg))
			if err != nil {
				t.Fatal(err)
			}
			want := res.Summary().Mean
			mean, ok := got.Mean(mod.Spec().ID, op.label)
			if !ok {
				t.Fatalf("no %s cell for module %s", op.label, mod.Spec().ID)
			}
			if mean != want {
				t.Errorf("module %s %s: PerModule mean %v, direct sweep %v",
					mod.Spec().ID, op.label, mean, want)
			}
		}
	}
}

// sampleAt builds a subarray sample for key-sensitivity checks.
func sampleAt(bank, subarray int) bender.SubarraySample {
	return bender.SubarraySample{Bank: bank, Subarray: subarray}
}

// TestShardMemoKeySensitivity pins the keying scheme: any change to an
// input that affects a shard's outcome must change its key, while the
// worker count must not.
func TestShardMemoKeySensitivity(t *testing.T) {
	r := smallRunner(t)
	mod := r.Modules()[0]
	sc := r.boundSweep(core.SweepConfig{
		Op: core.OpManyRowActivation, N: 8,
		Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
	})
	env := analog.NominalEnv()
	base := r.shardKey(mod.Spec(), sc, env, sampleAt(0, 0))

	if r.shardKey(mod.Spec(), sc, env, sampleAt(0, 0)) != base {
		t.Fatal("shard key is not deterministic")
	}
	if r.shardKey(mod.Spec(), sc, env, sampleAt(0, 1)) == base {
		t.Fatal("key ignores the subarray coordinate")
	}
	sc2 := sc
	sc2.N = 16
	if r.shardKey(mod.Spec(), sc2, env, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the activation row count")
	}
	sc3 := sc
	sc3.Timings.T1 += 0.5
	if r.shardKey(mod.Spec(), sc3, env, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the APA timings")
	}
	env2 := env
	env2.TempC = 85
	if r.shardKey(mod.Spec(), sc, env2, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the environment")
	}
	env3 := env
	env3.Aging = 5
	if r.shardKey(mod.Spec(), sc, env3, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the aging axis")
	}
	spec2 := mod.Spec()
	spec2.Seed++
	if r.shardKey(spec2, sc, env, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the module's process-variation seed")
	}
	r2cfg := smallConfig()
	r2cfg.Seed++
	r2, err := NewRunner(r2cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r2.shardKey(mod.Spec(), sc, env, sampleAt(0, 0)) == base {
		t.Fatal("key ignores the experiment seed")
	}
	// Worker count is excluded by design: results are worker-invariant.
	rw := smallConfig()
	rw.Engine.Workers = 13
	rWorkers, err := NewRunner(rw)
	if err != nil {
		t.Fatal(err)
	}
	if rWorkers.shardKey(mod.Spec(), sc, env, sampleAt(0, 0)) != base {
		t.Fatal("key depends on the worker count; it must not")
	}
}

// TestRunnerStats verifies the progress counters advance with the work.
func TestRunnerStats(t *testing.T) {
	r := smallRunner(t)
	if s := r.Stats(); s.ShardsTotal != 0 || s.Activations != 0 {
		t.Fatalf("fresh runner already has stats: %+v", s)
	}
	if _, err := r.Figure11(); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Runs == 0 || s.ShardsTotal == 0 || s.ShardsDone != s.ShardsTotal {
		t.Fatalf("stats after Figure11: %+v, want completed shards", s)
	}
	if s.Activations == 0 {
		t.Fatalf("stats after Figure11: %+v, want issued activations", s)
	}
	if s.Wall <= 0 {
		t.Fatalf("stats after Figure11: wall = %s, want > 0", s.Wall)
	}
}

// TestSweepShardsEnumeration checks the shard split: fleet order,
// stable sub-seeds, and manufacturer filtering.
func TestSweepShardsEnumeration(t *testing.T) {
	r := smallRunner(t)
	sc := r.boundSweep(core.SweepConfig{
		Op: core.OpManyRowActivation, N: 8,
		Timings: timing.BestSiMRA(), Pattern: dram.PatternRandom,
	})
	all, applicable, err := r.sweepShards(sc, analog.NominalEnv(), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no shards enumerated")
	}
	if applicable != len(r.Modules()) {
		t.Fatalf("applicable = %d, want all %d modules", applicable, len(r.Modules()))
	}
	seen := make(map[uint64]bool)
	for _, sh := range all {
		if seen[sh.shard.Seed] {
			t.Fatalf("duplicate shard seed %#x", sh.shard.Seed)
		}
		seen[sh.shard.Seed] = true
		if sh.tester == nil {
			t.Fatal("shard without tester")
		}
	}
	hOnly, _, err := r.sweepShards(sc, analog.NominalEnv(), "H")
	if err != nil {
		t.Fatal(err)
	}
	if len(hOnly) == 0 || len(hOnly) >= len(all) {
		t.Fatalf("manufacturer filter: %d H shards of %d total", len(hOnly), len(all))
	}
	for _, sh := range hOnly {
		if sh.tester.Module().Spec().Profile.Name != "H" {
			t.Fatal("manufacturer filter leaked a non-H module")
		}
	}
}
