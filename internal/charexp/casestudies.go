package charexp

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/bitserial"
	"repro/internal/coldboot"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/timing"
)

// SpeedupCell is one bar of Fig. 16.
type SpeedupCell struct {
	Mfr       string
	Benchmark bitserial.Benchmark
	X         int
	Speedup   float64
	// SuccessX and SuccessBase are the best-group success rates that fed
	// the retry model.
	SuccessX    float64
	SuccessBase float64
}

// Figure16Result holds the §8.1 microbenchmark evaluation.
type Figure16Result struct {
	Cells []SpeedupCell
	// Elements is the evaluated working-set size (the paper's 8 KB of
	// 32-bit elements).
	Elements int
}

// Speedup returns the modeled speedup for (mfr, benchmark, x).
func (f Figure16Result) Speedup(mfr string, b bitserial.Benchmark, x int) (float64, bool) {
	for _, c := range f.Cells {
		if c.Mfr == mfr && c.Benchmark == b && c.X == x {
			return c.Speedup, true
		}
	}
	return 0, false
}

// AverageSpeedup averages a manufacturer's speedups over the benchmarks
// for one majority width.
func (f Figure16Result) AverageSpeedup(mfr string, x int) float64 {
	sum, n := 0.0, 0
	for _, c := range f.Cells {
		if c.Mfr == mfr && c.X == x {
			sum += c.Speedup
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// mfrWidths lists the majority widths evaluated per manufacturer
// (§8.1: MAJ3/5/7 for Mfr. M, MAJ3/5/7/9 for Mfr. H).
func mfrWidths(mfr string) []int {
	if mfr == "M" {
		return []int{3, 5, 7}
	}
	return []int{3, 5, 7, 9}
}

// Figure16 evaluates the seven arithmetic & logic microbenchmarks: the
// measured best-group MAJX success rates drive the analytical
// execution-time model, normalized to the MAJ3-with-4-row-activation
// baseline (the state of the art prior to this paper).
func (r *Runner) Figure16() (Figure16Result, error) {
	const elements = 2048 // 8 KB of 32-bit elements
	model := bitserial.NewCostModel()
	out := Figure16Result{Elements: elements}

	for _, mfr := range []string{"M", "H"} {
		fracOK := mfr == "H"
		lanes := 0
		for _, m := range r.mods {
			if m.Spec().Profile.Name == mfr {
				lanes = m.Spec().Columns
				break
			}
		}
		if lanes == 0 {
			continue // manufacturer not in this fleet
		}
		// Computation workloads exercise worst-case one-vote margins (AND
		// gates, carry chains), so throughput is measured on the
		// adversarial split pattern rather than the characterization's
		// random mixture.
		base, err := r.bestSweepRate(mfr, core.SweepConfig{
			Op: core.OpMAJ, X: 3, N: 4,
			Timings: timing.BestMAJ(), Pattern: dram.PatternSplit,
		}, analog.NominalEnv())
		if err != nil {
			return Figure16Result{}, err
		}
		for _, x := range mfrWidths(mfr) {
			sx, err := r.bestSweepRate(mfr, core.SweepConfig{
				Op: core.OpMAJ, X: x, N: 32,
				Timings: timing.BestMAJ(), Pattern: dram.PatternSplit,
			}, analog.NominalEnv())
			if err != nil {
				return Figure16Result{}, err
			}
			for _, b := range bitserial.Benchmarks {
				speedup, err := model.Speedup(b, x, elements, lanes, sx, base, fracOK)
				if err != nil {
					return Figure16Result{}, err
				}
				out.Cells = append(out.Cells, SpeedupCell{
					Mfr: mfr, Benchmark: b, X: x,
					Speedup: speedup, SuccessX: sx, SuccessBase: base,
				})
			}
		}
	}
	if len(out.Cells) == 0 {
		return Figure16Result{}, fmt.Errorf("charexp: fleet has no MAJ-capable manufacturer")
	}
	return out, nil
}

// Table renders Fig. 16.
func (f Figure16Result) Table() Table {
	t := Table{
		ID:      "Fig16",
		Title:   "Microbenchmark speedup of MAJX over the MAJ3@4-row baseline",
		Columns: []string{"mfr", "benchmark", "MAJ", "speedup", "best success"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			c.Mfr, string(c.Benchmark), fmt.Sprint(c.X),
			fmt.Sprintf("%.2fx", c.Speedup), pct(c.SuccessX),
		})
	}
	return t
}

// DestructionCell is one bar of Fig. 17.
type DestructionCell struct {
	Technique coldboot.Technique
	BankNS    float64
	Speedup   float64 // over RowClone-based destruction
}

// Figure17Result holds the §8.2 content-destruction evaluation.
type Figure17Result struct {
	Cells []DestructionCell
}

// Speedup returns the speedup of a technique over RowClone.
func (f Figure17Result) Speedup(t coldboot.Technique) (float64, bool) {
	for _, c := range f.Cells {
		if c.Technique == t {
			return c.Speedup, true
		}
	}
	return 0, false
}

// Figure17 measures content-destruction operation counts functionally on a
// Frac-capable module's subarray, scales them to a 4 Gb bank, and reports
// speedups over RowClone-based destruction.
func (r *Runner) Figure17() (Figure17Result, error) {
	var mod *dram.Module
	for _, m := range r.mods {
		if m.Spec().Profile.FracSupported && !m.Spec().Profile.APAGuarded {
			mod = m
			break
		}
	}
	if mod == nil {
		return Figure17Result{}, fmt.Errorf("charexp: fleet has no Frac-capable module")
	}
	model := coldboot.NewModel()
	model.RowsPerBank = mod.RowsPerSubarray() * model.SubarraysPerBank

	times := make([]float64, len(coldboot.Techniques))
	for i, tech := range coldboot.Techniques {
		// A fresh subarray per technique so destruction runs are
		// independent; the op counts are deterministic.
		sa, err := mod.Subarray(r.cfg.Banks%mod.Spec().Banks, i+8)
		if err != nil {
			return Figure17Result{}, err
		}
		d, err := coldboot.NewDestroyer(mod)
		if err != nil {
			return Figure17Result{}, err
		}
		counts, err := d.DestroySubarray(sa, tech)
		if err != nil {
			return Figure17Result{}, err
		}
		times[i] = model.BankTime(counts)
	}
	base := times[0] // RowClone is first in coldboot.Techniques
	out := Figure17Result{}
	for i, tech := range coldboot.Techniques {
		out.Cells = append(out.Cells, DestructionCell{
			Technique: tech,
			BankNS:    times[i],
			Speedup:   base / times[i],
		})
	}
	return out, nil
}

// Table renders Fig. 17.
func (f Figure17Result) Table() Table {
	t := Table{
		ID:      "Fig17",
		Title:   "Content-destruction speedup over RowClone-based destruction (4 Gb bank)",
		Columns: []string{"technique", "bank time (ms)", "speedup"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			c.Technique.String(),
			fmt.Sprintf("%.3f", c.BankNS/1e6),
			fmt.Sprintf("%.2fx", c.Speedup),
		})
	}
	return t
}
