package charexp

import (
	"strings"
	"testing"

	"repro/internal/bitserial"
	"repro/internal/coldboot"
	"repro/internal/decoder"
	"repro/internal/dram"
	"repro/internal/fleet"
)

// smallConfig keeps harness tests fast: two modules, minimal sampling.
func smallConfig() Config {
	cfg := DefaultConfig()
	fc := fleet.DefaultConfig()
	fc.Columns = 128
	reps := fleet.Representative(fc)
	cfg.Fleet = []fleet.Entry{reps[0], reps[3]} // one H, one M
	cfg.Trials = 2
	cfg.GroupsPerSubarray = 3
	cfg.Banks = 1
	return cfg
}

func smallRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRunnerValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.Fleet = nil
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("empty fleet should fail")
	}
	cfg = smallConfig()
	cfg.Trials = 0
	if _, err := NewRunner(cfg); err == nil {
		t.Fatal("zero trials should fail")
	}
}

func TestSmallConfigFleetMix(t *testing.T) {
	r := smallRunner(t)
	names := map[string]bool{}
	for _, m := range r.Modules() {
		names[m.Spec().Profile.Name] = true
	}
	if !names["H"] || !names["M"] {
		t.Fatalf("test fleet should span both manufacturers: %v", names)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
	}
	got := tab.Render()
	if !strings.Contains(got, "T — demo") || !strings.Contains(got, "long-column") {
		t.Fatalf("render missing headers:\n%s", got)
	}
	if len(strings.Split(strings.TrimSpace(got), "\n")) != 5 {
		t.Fatalf("unexpected line count:\n%s", got)
	}
}

func TestTablePopulation(t *testing.T) {
	tab := TablePopulation(fleet.Modules(fleet.DefaultConfig()))
	if tab.ID != "Table1" || len(tab.Rows) != 19 { // 18 modules + total
		t.Fatalf("population table rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Render(), "120") {
		t.Fatal("total chips missing")
	}
}

func TestDecoderWalkthrough(t *testing.T) {
	tab, err := DecoderWalkthrough(decoder.Hynix512())
	if err != nil {
		t.Fatal(err)
	}
	rendered := tab.Render()
	if !strings.Contains(rendered, "ACT 127 → PRE → ACT 128") ||
		!strings.Contains(rendered, "32:") {
		t.Fatalf("walkthrough missing the 32-row example:\n%s", rendered)
	}
}

func TestFigure4aTrend(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure4a()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(ActivationRows)*5 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	m50, ok := res.Mean(50, 8)
	if !ok {
		t.Fatal("missing cell")
	}
	if m50 < 0.99 {
		t.Fatalf("8-row at 50C = %.4f", m50)
	}
	if res.Table().ID != "Fig4a" {
		t.Fatal("bad table ID")
	}
}

func TestFigure5(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if res.Margin32 < 0.15 || res.Margin32 > 0.30 {
		t.Fatalf("margin below REF = %v", res.Margin32)
	}
	if len(res.SiMRAmW) != 5 || len(res.StandardMW) != 4 {
		t.Fatalf("unexpected sizes: %v %v", res.SiMRAmW, res.StandardMW)
	}
	if res.Table().ID != "Fig5" {
		t.Fatal("bad table ID")
	}
}

func TestFigure11Shape(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 3*len(CopyDestinations) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	for _, p := range dram.CopyPatterns {
		m, ok := res.Mean(p, 7)
		if !ok || m < 0.98 {
			t.Fatalf("copy to 7 dests with %v = %v", p, m)
		}
	}
}

func TestFigure15(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure15(60)
	if err != nil {
		t.Fatal(err)
	}
	p4 := res.Perturbation[4][0].Mean
	p32 := res.Perturbation[32][0].Mean
	if p32 <= p4 {
		t.Fatalf("32-row perturbation %v not above 4-row %v", p32, p4)
	}
	if _, ok := res.Success[1]; ok {
		t.Fatal("single-row should have no success entry")
	}
	if res.Table().ID != "Fig15" {
		t.Fatal("bad table ID")
	}
}

func TestFigure16Shape(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure16()
	if err != nil {
		t.Fatal(err)
	}
	// Mfr. M is evaluated without MAJ9; Mfr. H includes it.
	if _, ok := res.Speedup("M", bitserial.BenchADD, 9); ok {
		t.Fatal("Mfr. M should not report MAJ9")
	}
	s5, ok := res.Speedup("H", bitserial.BenchADD, 5)
	if !ok {
		t.Fatal("missing H/ADD/5")
	}
	if s5 <= 1 {
		t.Fatalf("MAJ5 ADD speedup = %.2f, want > 1", s5)
	}
	if res.Table().ID != "Fig16" {
		t.Fatal("bad table ID")
	}
}

func TestFigure17Shape(t *testing.T) {
	r := smallRunner(t)
	res, err := r.Figure17()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(coldboot.Techniques) {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	s32, ok := res.Speedup(coldboot.Technique{Kind: "mrc", N: 32})
	if !ok {
		t.Fatal("missing 32-row cell")
	}
	if s32 < 8 {
		t.Fatalf("32-row destruction speedup = %.1f, want order 10-30", s32)
	}
	if res.Table().ID != "Fig17" {
		t.Fatal("bad table ID")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[int]string{3: "c", 1: "a", 2: "b"}
	keys := sortedKeys(m)
	if keys[0] != 1 || keys[1] != 2 || keys[2] != 3 {
		t.Fatalf("keys = %v", keys)
	}
}
