package charexp

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/invariance"
)

// invariantRunner builds a small runner under one harness variant.
func invariantRunner(t *testing.T, v invariance.Variant) *Runner {
	t.Helper()
	cfg := smallConfig()
	cfg.Engine.Workers = v.Workers
	if v.Store != nil {
		cfg.ShardMemo = cache.NewTyped[[]core.GroupOutcome](v.Store, nil)
	}
	if v.Permute {
		for i, j := 0, len(cfg.Fleet)-1; i < j; i, j = i+1, j-1 {
			cfg.Fleet[i], cfg.Fleet[j] = cfg.Fleet[j], cfg.Fleet[i]
		}
	}
	if v.Subset {
		cfg.Fleet = cfg.Fleet[:1]
	}
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestInvariances runs the shared metamorphic suite over the charexp
// runners: pooled figures must keep byte-identical tables under every
// worker count, cache mode and fleet order (their aggregation sorts
// before summarizing), and the per-module breakdown must keep its
// per-module cells under permutation and composition changes.
func TestInvariances(t *testing.T) {
	pooled := func(name string, run func(*Runner) (Table, error)) invariance.Subject {
		return invariance.Subject{
			Name: name,
			Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
				t.Helper()
				tab, err := run(invariantRunner(t, v))
				if err != nil {
					t.Fatal(err)
				}
				return tab.Render() + tab.CSV(), nil
			},
			Cacheable:              true,
			Permutable:             true,
			PermutationKeepsOutput: true,
		}
	}
	subjects := []invariance.Subject{
		pooled("charexp/figure3", func(r *Runner) (Table, error) {
			res, err := r.Figure3()
			return res.Table(), err
		}),
		pooled("charexp/figure4a", func(r *Runner) (Table, error) {
			res, err := r.Figure4a()
			return res.Table(), err
		}),
		{
			Name: "charexp/permodule",
			Run: func(t *testing.T, v invariance.Variant) (string, map[string]string) {
				t.Helper()
				res, err := invariantRunner(t, v).PerModule()
				if err != nil {
					t.Fatal(err)
				}
				units := make(map[string]string, len(res.Cells))
				for _, c := range res.Cells {
					units[invariance.UnitKey(c.Module, c.Op)] = invariance.Sprint(c.Summary)
				}
				return res.Table().Render(), units
			},
			Cacheable:   true,
			Permutable:  true, // row order follows the fleet; cells must not
			Subsettable: true,
		},
	}
	for _, s := range subjects {
		t.Run(s.Name, func(t *testing.T) { invariance.Check(t, s) })
	}
}

// TestShardMemoWarmRunStats pins the engine accounting the harness does
// not cover: a warm repeat run executes nothing — every shard is served
// from the memo and no activation is issued.
func TestShardMemoWarmRunStats(t *testing.T) {
	store := cache.New(0)
	run := func() *Runner {
		cfg := smallConfig()
		cfg.Engine.Workers = 4
		cfg.ShardMemo = cache.NewTyped[[]core.GroupOutcome](store, nil)
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Figure3(); err != nil {
			t.Fatal(err)
		}
		return r
	}
	if s := run().Stats(); s.ShardsCached != 0 {
		t.Fatalf("cold run reported %d cached shards; want 0", s.ShardsCached)
	}
	s := run().Stats()
	if s.ShardsCached == 0 || s.ShardsCached != s.ShardsTotal {
		t.Fatalf("warm run stats %+v; want every shard served from the memo", s)
	}
	if s.Activations != 0 {
		t.Fatalf("warm run issued %d activations; want 0 (pure cache)", s.Activations)
	}
}
