package charexp

import (
	"fmt"

	"repro/internal/decoder"
)

// FigureIDs lists the ids RunFigure accepts, in the print order
// cmd/simra-char uses for -fig all. "table1" and "14" need no simulation;
// the rest execute sweeps on the runner's engine.
func FigureIDs() []string {
	return []string{
		"table1", "14", "3", "4a", "4b", "5", "6", "7", "8", "9", "10",
		"11", "12a", "12b", "15", "modules", "16", "17",
	}
}

// RunFigure executes one figure or table by id and renders it in the
// given format ("text" for the aligned table, "csv" for plotting). sets
// bounds the Fig. 15 Monte-Carlo sampling (0 = 200). The rendering is the
// single source of truth shared by cmd/simra-char and the serving layer
// (internal/server), so a served sweep response is byte-identical to the
// CLI's table output.
func (r *Runner) RunFigure(id string, sets int, format string) (string, error) {
	if format != "text" && format != "csv" && format != "columnar" {
		return "", fmt.Errorf("charexp: unknown format %q; valid: text, csv, columnar", format)
	}
	if sets <= 0 {
		sets = 200
	}
	render := func(t Table) (string, error) {
		switch format {
		case "csv":
			return t.CSV(), nil
		case "columnar":
			return t.Columnar()
		default:
			return t.Render(), nil
		}
	}
	switch id {
	case "table1":
		return render(TablePopulation(r.cfg.Fleet))
	case "13", "14":
		tab, err := DecoderWalkthrough(decoder.Hynix512())
		if err != nil {
			return "", err
		}
		return render(tab)
	}
	runners := map[string]func() (interface{ Table() Table }, error){
		"3":       func() (interface{ Table() Table }, error) { return r.Figure3() },
		"4a":      func() (interface{ Table() Table }, error) { return r.Figure4a() },
		"4b":      func() (interface{ Table() Table }, error) { return r.Figure4b() },
		"5":       func() (interface{ Table() Table }, error) { return r.Figure5() },
		"6":       func() (interface{ Table() Table }, error) { return r.Figure6() },
		"7":       func() (interface{ Table() Table }, error) { return r.Figure7() },
		"8":       func() (interface{ Table() Table }, error) { return r.Figure8() },
		"9":       func() (interface{ Table() Table }, error) { return r.Figure9() },
		"10":      func() (interface{ Table() Table }, error) { return r.Figure10() },
		"11":      func() (interface{ Table() Table }, error) { return r.Figure11() },
		"12a":     func() (interface{ Table() Table }, error) { return r.Figure12a() },
		"12b":     func() (interface{ Table() Table }, error) { return r.Figure12b() },
		"15":      func() (interface{ Table() Table }, error) { return r.Figure15(sets) },
		"modules": func() (interface{ Table() Table }, error) { return r.PerModule() },
		"16":      func() (interface{ Table() Table }, error) { return r.Figure16() },
		"17":      func() (interface{ Table() Table }, error) { return r.Figure17() },
	}
	run, ok := runners[id]
	if !ok {
		return "", fmt.Errorf("charexp: unknown figure %q", id)
	}
	res, err := run()
	if err != nil {
		return "", fmt.Errorf("charexp: figure %s: %w", id, err)
	}
	return render(res.Table())
}
