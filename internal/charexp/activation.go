package charexp

import (
	"fmt"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/timing"
)

// ActivationRows lists the simultaneously-activated-row counts of Figs.
// 3 and 4.
var ActivationRows = []int{2, 4, 8, 16, 32}

// TimingCell is one (t1, t2, N) cell of a timing-sweep figure.
type TimingCell struct {
	T1, T2  float64
	N       int
	Summary stats.Summary
}

// Figure3Result is the Fig. 3 timing sweep of simultaneous many-row
// activation.
type Figure3Result struct {
	Cells []TimingCell
}

// Cell returns the summary for a (t1, t2, n) combination.
func (f Figure3Result) Cell(t1, t2 float64, n int) (stats.Summary, bool) {
	for _, c := range f.Cells {
		if c.T1 == t1 && c.T2 == t2 && c.N == n {
			return c.Summary, true
		}
	}
	return stats.Summary{}, false
}

// Figure3 characterizes the effect of t1 and t2 on the success rate of
// simultaneous many-row activation (§4, Obs. 1–2).
func (r *Runner) Figure3() (Figure3Result, error) {
	var out Figure3Result
	for _, t1 := range timing.SweepT1SiMRA {
		for _, t2 := range timing.SweepT2 {
			for _, n := range ActivationRows {
				rates, err := r.pooledSweep(core.SweepConfig{
					Op:      core.OpManyRowActivation,
					N:       n,
					Timings: timing.APATimings{T1: t1, T2: t2},
					Pattern: dram.PatternRandom,
				}, analog.NominalEnv())
				if err != nil {
					return Figure3Result{}, err
				}
				out.Cells = append(out.Cells, TimingCell{
					T1: t1, T2: t2, N: n, Summary: stats.MustSummarize(rates),
				})
			}
		}
	}
	return out, nil
}

// Table renders Fig. 3's subplot grid as rows.
func (f Figure3Result) Table() Table {
	t := Table{
		ID:      "Fig3",
		Title:   "Effect of t1 and t2 on simultaneous many-row activation success rate",
		Columns: append([]string{"t1(ns)", "t2(ns)", "rows"}, summaryColumns...),
	}
	for _, c := range f.Cells {
		row := []string{
			fmt.Sprintf("%.1f", c.T1), fmt.Sprintf("%.1f", c.T2), fmt.Sprint(c.N),
		}
		t.Rows = append(t.Rows, append(row, summaryCells(c.Summary)...))
	}
	return t
}

// EnvCell is one (environment level, N) cell of Fig. 4/8/9/12.
type EnvCell struct {
	Level   float64 // temperature (°C) or VPP (V)
	N       int
	Summary stats.Summary
}

// Figure4Result holds one environmental sweep of simultaneous many-row
// activation (Fig. 4a: temperature; Fig. 4b: VPP).
type Figure4Result struct {
	Axis  string // "temperature" or "VPP"
	Cells []EnvCell
}

// Mean returns the average success rate at (level, n).
func (f Figure4Result) Mean(level float64, n int) (float64, bool) {
	for _, c := range f.Cells {
		if c.Level == level && c.N == n {
			return c.Summary.Mean, true
		}
	}
	return 0, false
}

// Figure4a sweeps temperature at the best activation timings (Obs. 3).
func (r *Runner) Figure4a() (Figure4Result, error) {
	return r.activationEnvSweep("temperature", timing.SweepTemperature,
		func(level float64) analog.Env { return analog.Env{TempC: level, VPP: 2.5} })
}

// Figure4b sweeps wordline voltage at the best activation timings
// (Obs. 4). The paper restricts voltage experiments to two modules
// (footnote 9); the runner uses whatever fleet it was configured with.
func (r *Runner) Figure4b() (Figure4Result, error) {
	return r.activationEnvSweep("VPP", timing.SweepVPP,
		func(level float64) analog.Env { return analog.Env{TempC: 50, VPP: level} })
}

func (r *Runner) activationEnvSweep(axis string, levels []float64,
	env func(float64) analog.Env) (Figure4Result, error) {

	out := Figure4Result{Axis: axis}
	for _, level := range levels {
		for _, n := range ActivationRows {
			rates, err := r.pooledSweep(core.SweepConfig{
				Op:      core.OpManyRowActivation,
				N:       n,
				Timings: timing.BestSiMRA(),
				Pattern: dram.PatternRandom,
			}, env(level))
			if err != nil {
				return Figure4Result{}, err
			}
			out.Cells = append(out.Cells, EnvCell{
				Level: level, N: n, Summary: stats.MustSummarize(rates),
			})
		}
	}
	return out, nil
}

// Table renders the environmental sweep.
func (f Figure4Result) Table() Table {
	id := "Fig4a"
	if f.Axis == "VPP" {
		id = "Fig4b"
	}
	t := Table{
		ID:      id,
		Title:   "Many-row activation success rate vs " + f.Axis,
		Columns: []string{f.Axis, "rows", "mean"},
	}
	for _, c := range f.Cells {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", c.Level), fmt.Sprint(c.N), pct(c.Summary.Mean),
		})
	}
	return t
}

// Figure5Result is the power comparison of Fig. 5.
type Figure5Result struct {
	SiMRAmW    map[int]float64    // rows → mW
	StandardMW map[string]float64 // op label → mW
	Margin32   float64            // fraction 32-row sits below REF
}

// Figure5 evaluates the power model (Obs. 5).
func (r *Runner) Figure5() (Figure5Result, error) {
	m := power.Default()
	if err := m.Validate(); err != nil {
		return Figure5Result{}, err
	}
	out := Figure5Result{
		SiMRAmW:    make(map[int]float64, len(ActivationRows)),
		StandardMW: make(map[string]float64, len(power.Ops)),
	}
	for _, n := range ActivationRows {
		p, err := m.SiMRA(n)
		if err != nil {
			return Figure5Result{}, err
		}
		out.SiMRAmW[n] = p
	}
	for _, op := range power.Ops {
		p, err := m.Standard(op)
		if err != nil {
			return Figure5Result{}, err
		}
		out.StandardMW[op.String()] = p
	}
	margin, err := m.MarginBelowRef(32)
	if err != nil {
		return Figure5Result{}, err
	}
	out.Margin32 = margin
	return out, nil
}

// Table renders Fig. 5.
func (f Figure5Result) Table() Table {
	t := Table{
		ID:      "Fig5",
		Title:   "Power of simultaneous many-row activation vs standard DRAM operations",
		Columns: []string{"operation", "power (mW)"},
	}
	for _, n := range sortedKeys(f.SiMRAmW) {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("SiMRA %d-row", n), fmt.Sprintf("%.1f", f.SiMRAmW[n]),
		})
	}
	for _, op := range []string{"ACT+PRE", "RD", "WR", "REF"} {
		t.Rows = append(t.Rows, []string{op, fmt.Sprintf("%.1f", f.StandardMW[op])})
	}
	t.Rows = append(t.Rows, []string{
		"32-row margin below REF", fmt.Sprintf("%.2f%%", f.Margin32*100),
	})
	return t
}
