// Package charexp is the characterization harness: one runner per table
// and figure of the paper's evaluation, producing the same rows/series the
// paper reports. Each FigureN method reproduces the corresponding figure;
// results carry both structured data (asserted by the observation tests)
// and a rendered table (printed by cmd/simra-char and recorded in
// EXPERIMENTS.md).
package charexp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/analog"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/stats"
)

// Config scopes a characterization run.
type Config struct {
	// Fleet is the module population (default: fleet.Representative — one
	// module per die group; use fleet.Modules for the full Table 1/2 run).
	Fleet []fleet.Entry
	// Params is the electrical model (default: analog.DefaultParams).
	Params analog.Params
	// Trials per row group (default 4; the paper uses 10000 — see
	// DESIGN.md §5 on why the metric converges quickly here).
	Trials int
	// GroupsPerSubarray, SubarraysPerBank and Banks bound the sampling per
	// module (paper: 100 groups × 3 subarrays × 16 banks).
	GroupsPerSubarray int
	SubarraysPerBank  int
	Banks             int
	// Seed feeds group sampling and data generation.
	Seed uint64
	// Engine bounds the execution engine's shard parallelism (see
	// internal/engine and DESIGN.md §6). The zero value uses GOMAXPROCS
	// workers; results are bit-identical for every worker count.
	Engine engine.Config
	// ShardMemo optionally memoizes per-(module, bank, subarray) sweep
	// shard outcomes across runs and runners (internal/cache.NewTyped over
	// a shared cache satisfies it; see DESIGN.md §9). Keys capture the
	// module spec, electrical parameters, environment, sweep configuration,
	// sampling bounds and seed, so a memoized sweep is bit-identical to an
	// uncached one. nil disables memoization.
	ShardMemo engine.Memo[[]core.GroupOutcome]
	// Dispatch, when non-nil, routes shard execution through a worker
	// fleet (internal/cluster's Coordinator satisfies it) instead of
	// running shard bodies in-process. Shards travel as serialized
	// core.ShardSpec values keyed by the same content hashes ShardMemo
	// uses, so a dispatched run is bit-identical to a local one. nil
	// executes every shard in-process.
	Dispatch engine.Dispatcher
	// Stats, when non-nil, is the runner's progress accumulator — shared
	// with the caller so the job tier can poll live per-shard progress
	// while a figure runs. nil keeps a runner-private accumulator. Never
	// affects result bytes.
	Stats *engine.Stats
	// Pool, when non-nil, supplies the runner's fleet instances (the job
	// executor's warmpool); callers that set it must Release the runner
	// when done. Pooled instances are reset before reuse, so results are
	// bit-identical to freshly built modules.
	Pool dram.ModulePool
}

// DefaultConfig returns the standard reduced-scale configuration used by
// the examples and benchmarks. It samples ~2 orders of magnitude fewer
// (group × trial) instances than the paper; sampling is deterministic.
func DefaultConfig() Config {
	fc := fleet.DefaultConfig()
	fc.Columns = 512
	return Config{
		Fleet:             fleet.Representative(fc),
		Params:            analog.DefaultParams(),
		Trials:            4,
		GroupsPerSubarray: 6,
		SubarraysPerBank:  1,
		Banks:             2,
		Seed:              0xd5a,
	}
}

// Runner executes experiments against an instantiated fleet. Sweeps are
// sharded per (module, bank, subarray) and executed on the engine's
// worker pool; the runner accumulates progress counters across them.
type Runner struct {
	cfg   Config
	mods  []*dram.Module
	stats *engine.Stats
	// arenas is the run-scoped scratch pool handed to every tester the
	// runner builds, so concurrent shard kernels reuse arenas within the
	// run without contending with unrelated runs.
	arenas *core.ArenaPool
}

// NewRunner instantiates the fleet of the configuration.
func NewRunner(cfg Config) (*Runner, error) {
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("charexp: empty fleet")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("charexp: trials must be positive")
	}
	mods, err := fleet.BuildFrom(cfg.Pool, cfg.Fleet, cfg.Params)
	if err != nil {
		return nil, err
	}
	st := cfg.Stats
	if st == nil {
		st = new(engine.Stats)
	}
	return &Runner{cfg: cfg, mods: mods, stats: st, arenas: core.NewArenaPool()}, nil
}

// Modules exposes the instantiated fleet (used by the case studies).
func (r *Runner) Modules() []*dram.Module { return r.mods }

// Release returns the runner's fleet instances to Config.Pool (a no-op
// without one). The runner must not be used afterwards.
func (r *Runner) Release() {
	fleet.Release(r.cfg.Pool, r.mods)
	r.mods = nil
}

// Config returns the runner's configuration.
func (r *Runner) Config() Config { return r.cfg }

// Stats returns a snapshot of the execution engine's progress counters
// accumulated across every sweep this runner has executed.
func (r *Runner) Stats() engine.Snapshot { return r.stats.Snapshot() }

// pooledSweep runs one sweep configuration across every applicable module
// of the fleet under the given environment and pools the per-group success
// rates, mirroring the paper's "distribution across all tested row groups
// in all DRAM chips". Modules whose profile cannot run the configuration
// (MAJ width beyond MaxMAJ, guarded chips) are skipped; an error is
// returned if no module applies. The per-(module, bank, subarray) shards
// execute on the engine's worker pool.
func (r *Runner) pooledSweep(sc core.SweepConfig, env analog.Env) ([]float64, error) {
	sc = r.boundSweep(sc)
	shards, applicable, err := r.sweepShards(sc, env, "")
	if err != nil {
		return nil, err
	}
	if applicable == 0 {
		return nil, fmt.Errorf("charexp: no module in the fleet can run %v (X=%d)", sc.Op, sc.X)
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("charexp: %v (X=%d): no subarrays sampled; check the sampling bounds", sc.Op, sc.X)
	}
	outcomes, err := r.runShards(sc, shards)
	if err != nil {
		return nil, err
	}
	var pooled []float64
	for _, out := range outcomes {
		for _, o := range out {
			pooled = append(pooled, o.Result.Rate())
		}
	}
	return pooled, nil
}

// bestSweepRate returns the highest per-group success rate across modules
// of one manufacturer for a MAJ configuration (the §8.1 "highest
// throughput group" selection).
func (r *Runner) bestSweepRate(mfr string, sc core.SweepConfig, env analog.Env) (float64, error) {
	sc = r.boundSweep(sc)
	shards, applicable, err := r.sweepShards(sc, env, mfr)
	if err != nil {
		return 0, err
	}
	if applicable == 0 {
		return 0, fmt.Errorf("charexp: no %s module can run MAJ%d", mfr, sc.X)
	}
	if len(shards) == 0 {
		return 0, fmt.Errorf("charexp: %s MAJ%d: no subarrays sampled; check the sampling bounds", mfr, sc.X)
	}
	outcomes, err := r.runShards(sc, shards)
	if err != nil {
		return 0, err
	}
	best := 0.0
	for _, out := range outcomes {
		for _, o := range out {
			if rate := o.Result.Rate(); rate > best {
				best = rate
			}
		}
	}
	return best, nil
}

// Table is a rendered experiment result: the rows/series a figure reports.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
}

// Render returns the table in aligned plain text.
func (t Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header row,
// for downstream plotting.
func (t Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	return b.String()
}

// pct formats a rate as a percentage.
func pct(rate float64) string { return fmt.Sprintf("%.2f%%", rate*100) }

// summaryCells renders a stats summary as distribution columns.
func summaryCells(s stats.Summary) []string {
	return []string{
		pct(s.Mean), pct(s.Min), pct(s.Q1), pct(s.Median), pct(s.Q3), pct(s.Max),
	}
}

var summaryColumns = []string{"mean", "min", "q1", "median", "q3", "max"}

// sortedKeys returns map keys in sorted order for deterministic rendering.
func sortedKeys[K int | float64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
