package charexp

import (
	"testing"

	"repro/internal/analog"
	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/goldenfile"
)

// TestGoldenFigure3Sweep pins one full characterization sweep: the Fig. 3
// timing sweep over the representative fleet, rendered as the paper-style
// table. The run must be byte-identical for 1 and 8 workers (the engine's
// determinism contract) and byte-identical to the committed golden (the
// cross-session regression anchor the unit tests cannot provide).
func TestGoldenFigure3Sweep(t *testing.T) {
	render := func(workers int) string {
		fc := fleet.DefaultConfig()
		fc.Columns = 512
		cfg := Config{
			Fleet:             fleet.Representative(fc),
			Params:            analog.DefaultParams(),
			Trials:            4,
			GroupsPerSubarray: 6,
			SubarraysPerBank:  1,
			Banks:             2,
			Seed:              0xd5a,
			Engine:            engine.Config{Workers: workers},
		}
		r, err := NewRunner(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Figure3()
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().Render()
	}
	r1 := render(1)
	r8 := render(8)
	if r1 != r8 {
		t.Fatal("Figure 3 table differs between 1 and 8 workers")
	}
	goldenfile.Check(t, "testdata", "figure3.golden", r1)
}
